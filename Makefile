# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-full bench-index bench-trace bench-daemon overload restart prop examples clean doc lint lint-json lint-baseline lint-sarif trace metrics analyze trace-analytics

all: build

build:
	dune build @all

test:
	dune runtest

# bwclint: determinism/robustness/complexity invariants (see DESIGN.md).
# Per-file rules plus whole-program passes (interprocedural determinism
# taint, domain-safety audit), gated on the committed baseline: fresh
# findings and stale baseline entries both fail.
lint:
	dune exec bin/bwclint.exe -- --baseline bwclint-baseline.json lib bin bench test examples

lint-json:
	dune exec bin/bwclint.exe -- --baseline bwclint-baseline.json --json bwclint-report.json lib bin bench test examples

lint-sarif:
	dune exec bin/bwclint.exe -- --baseline bwclint-baseline.json --sarif bwclint.sarif lib bin bench test examples

# regenerate the audited-findings baseline after reviewing new findings
lint-baseline:
	dune exec bin/bwclint.exe -- --baseline bwclint-baseline.json --update-baseline lib bin bench test examples

test-verbose:
	dune runtest --force --no-buffer

# deterministic observability surfaces (see DESIGN.md, "Observability"):
# a JSONL event trace and a metrics-registry snapshot of the default
# fault scenario; same seed => byte-identical output
trace:
	dune exec bin/bwcluster.exe -- trace --out trace.jsonl

metrics:
	dune exec bin/bwcluster.exe -- metrics

# causal analytics over the default recovery scenario: happens-before
# critical path + byte attribution; E16 gates on per-kind sends summing
# exactly to the engine counter (exit 3 on violation)
analyze:
	dune exec bin/bwcluster.exe -- analyze

trace-analytics:
	dune exec bin/bwcluster.exe -- trace-analytics

bench:
	dune exec bench/main.exe

bench-full:
	BWC_BENCH_FULL=1 dune exec bench/main.exe

# E14 only: churn the incremental index, emit BENCH_index.json, fail on
# any incremental-vs-rebuild divergence
bench-index:
	dune exec bench/main.exe -- --index-only

# E16 only: trace-sink overhead arms (off / ring / unbounded), emit
# BENCH_trace_overhead.json, fail if tracing perturbs the send counter
bench-trace:
	dune exec bench/main.exe -- --trace-only

# E17 only: daemon offered-load sweep (admission/deadlines/degradation),
# emit BENCH_daemon.json, fail if goodput collapses past the plateau or a
# replay diverges
bench-daemon:
	dune exec bench/main.exe -- --daemon-only

# E17 via the CLI: prints the sweep table, exits 3 on gate failure
overload:
	dune exec bin/bwcluster.exe -- overload

# E15: snapshot round trip (byte-identity checked with cmp) plus the
# warm-vs-cold restart experiment with its acceptance gate (exit 3)
restart:
	dune exec bin/bwcluster.exe -- snapshot --dataset hp-small --hosts 40 -o system.bwcsnap
	dune exec bin/bwcluster.exe -- restore -i system.bwcsnap --resnapshot system-2.bwcsnap
	cmp system.bwcsnap system-2.bwcsnap
	dune exec bin/bwcluster.exe -- restart --dataset hp-small --hosts 64 --seed 3 --json restart.json

# seeded property harness (differential churn + Alg1-vs-oracle); replay
# a failure with BWC_PROP_SEED=<seed> BWC_PROP_CASES=<cases> make prop
prop:
	dune exec test/prop.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/desktop_grid.exe
	dune exec examples/cdn_distribution.exe
	dune exec examples/latency_cluster.exe
	dune exec examples/dynamic_network.exe
	dune exec examples/replica_placement.exe

doc:
	dune build @doc

clean:
	dune clean
