(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper's evaluation
   (Sec. IV) at bench scale and prints the same series the paper reports;
   `BWC_BENCH_FULL=1 dune exec bench/main.exe` runs paper-scale
   parameters.  Part 2 is a Bechamel micro-benchmark suite for the core
   algorithms, including the O(n^3) scaling claim for Algorithm 1 (E6 in
   DESIGN.md). *)

module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

let full = Sys.getenv_opt "BWC_BENCH_FULL" = Some "1"

let section title =
  Format.printf "@.==================================================================@.";
  Format.printf "== %s@." title;
  Format.printf "==================================================================@."

let hp_dataset ~seed =
  if full then Bwc_dataset.Planetlab.hp_like ~seed
  else
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed) ~name:"HP-like-small"
      { Bwc_dataset.Planetlab.hp_target with n = 120 }

let umd_dataset ~seed =
  if full then Bwc_dataset.Planetlab.umd_like ~seed
  else
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed) ~name:"UMD-like-small"
      { Bwc_dataset.Planetlab.umd_target with n = 150 }

let fig3 () =
  section "Fig. 3 (a,c) -- clustering accuracy: WPR vs b  [E1]";
  let rounds, queries = if full then (10, 1000) else (3, 250) in
  List.iter
    (fun ds ->
      let out = Bwc_experiments.Accuracy.run ~rounds ~queries_per_round:queries ~seed:1 ds in
      Bwc_experiments.Accuracy.print out)
    [ hp_dataset ~seed:11; umd_dataset ~seed:12 ];
  section "Fig. 3 (b,d) -- relative prediction-error CDFs  [E2]";
  let rounds = if full then 10 else 2 in
  List.iter
    (fun ds ->
      let out = Bwc_experiments.Relerr.run ~rounds ~seed:1 ds in
      Bwc_experiments.Relerr.print ~resolution:10 out;
      Format.printf "median gap (eucl - tree): %.4f@."
        (Bwc_experiments.Relerr.median_gap out))
    [ hp_dataset ~seed:11; umd_dataset ~seed:12 ]

let fig4 () =
  section "Fig. 4 -- tradeoff of decentralization: RR vs k  [E3]";
  let rounds, per_k = if full then (20, 5) else (4, 4) in
  List.iter
    (fun ds ->
      let out = Bwc_experiments.Tradeoff.run ~rounds ~per_k ~seed:2 ds in
      Bwc_experiments.Tradeoff.print out)
    [ hp_dataset ~seed:11; umd_dataset ~seed:12 ]

let fig5 () =
  section "Fig. 5 -- effect of treeness: WPR vs f_b, normalized by f_a*  [E4]";
  let rounds, queries = if full then (10, 2000) else (2, 300) in
  let out = Bwc_experiments.Treeness.run ~n:100 ~rounds ~queries_per_round:queries ~seed:3 () in
  Bwc_experiments.Treeness.print out

let fig6 () =
  section "Fig. 6 -- scalability: mean routing hops vs n  [E5]";
  let base = umd_dataset ~seed:12 in
  let n = Dataset.size base in
  let sizes, subsets, queries, rounds =
    if full then ([ 50; 100; 150; 200; 250; 300 ], 10, 1000, 10)
    else ([ 40; 80; 120; 150 ], 2, 80, 1)
  in
  let sizes = List.filter (fun s -> s <= n) sizes in
  let out =
    Bwc_experiments.Scalability.run ~sizes ~subsets_per_size:subsets
      ~queries_per_subset:queries ~rounds ~seed:4 base
  in
  Bwc_experiments.Scalability.print out

let ablations () =
  section "Ablation -- decentralized RR vs n_cut  [E7]";
  let ds = hp_dataset ~seed:11 in
  let rounds = if full then 10 else 2 in
  let rows = Bwc_experiments.Tradeoff.ncut_ablation ~rounds ~seed:5 ds in
  Bwc_experiments.Tradeoff.print_ablation ~dataset:ds.Dataset.name rows;
  section "Ablation -- embedding error vs construction mode  [E8]";
  let rows = Bwc_experiments.Embedding.run ~rounds:(if full then 5 else 2) ~seed:6 ds in
  Bwc_experiments.Embedding.print ~dataset:ds.Dataset.name rows;
  section "Ablation -- Algorithm 1 vs exact k-clique oracle  [E9]";
  let queries = if full then 100 else 30 in
  List.iter
    (fun sigma ->
      let noisy =
        if Float.equal sigma 0.0 then ds
        else Bwc_dataset.Noise.multiplicative ~rng:(Rng.create 61) ~sigma ds
      in
      let out = Bwc_experiments.Oracle.run ~queries_per_k:queries ~seed:7 noisy in
      Bwc_experiments.Oracle.print out)
    [ 0.0; 0.3 ];
  section "Ablation -- forwarding policy  [E11]";
  let out =
    Bwc_experiments.Routing.run
      ~rounds:(if full then 5 else 2)
      ~queries_per_k:(if full then 200 else 60)
      ~seed:9 ds
  in
  Bwc_experiments.Routing.print out;
  section "Background overhead vs system size  [E10]";
  let base = umd_dataset ~seed:12 in
  let sizes =
    List.filter (fun s -> s <= Dataset.size base)
      (if full then [ 50; 100; 150; 200; 250; 300 ] else [ 40; 80; 120; 150 ])
  in
  let out = Bwc_experiments.Overhead.run ~sizes ~repeats:2 ~seed:8 base in
  Bwc_experiments.Overhead.print out;
  section "Robustness under injected faults  [E12]";
  let small =
    let want = if full then Dataset.size ds else 60 in
    if want < Dataset.size ds then Dataset.random_subset ds ~rng:(Rng.create 62) want
    else ds
  in
  let out =
    Bwc_experiments.Robustness.run
      ~queries:(if full then 200 else 60)
      ~seed:10 small
  in
  Bwc_experiments.Robustness.print out

let restart () =
  section "Crash-consistent restart: warm restore vs cold reconvergence  [E15]";
  let ds = hp_dataset ~seed:11 in
  let want = if full then Dataset.size ds else 64 in
  let small =
    if want < Dataset.size ds then Dataset.random_subset ds ~rng:(Rng.create 63) want
    else ds
  in
  let out =
    Bwc_experiments.Robustness.restart
      ~queries:(if full then 200 else 60)
      ~seed:3 small
  in
  Bwc_experiments.Robustness.print_restart out

let index_churn () =
  section "Incremental index maintenance under churn  [E14]";
  let sizes =
    if full then [ 64; 128; 256; 384; 1024; 4096 ]
    else [ 64; 128; 256; 1024; 4096 ]
  in
  let rows =
    Bwc_experiments.Scalability.churn_sweep ~sizes
      ~events_per_size:(if full then 32 else 16)
      ~seed:1 ()
  in
  Bwc_experiments.Scalability.print_churn rows;
  Bwc_experiments.Scalability.save_churn_json rows ~seed:1 "BENCH_index.json";
  Format.printf "churn sweep written to BENCH_index.json@.";
  let diverged = Bwc_experiments.Scalability.churn_divergence rows in
  if diverged > 0 then begin
    Format.eprintf "E14: %d differential divergences between incremental and rebuilt index@."
      diverged;
    exit 1
  end;
  let violations = Bwc_experiments.Scalability.churn_bound_violations rows in
  if violations > 0 then begin
    Format.eprintf
      "E14: %d coreset interval bound violations against exact/spot ground truth@."
      violations;
    exit 3
  end

(* Cost of structured tracing on the hot path: the same seeded
   aggregation + query workload with the sink disabled, bounded to a
   ring, and unbounded.  Tracing must never perturb the protocol, so the
   engine send counter is asserted identical across arms before any
   timing is reported. *)
let trace_overhead () =
  section "Trace overhead: sink off vs bounded ring vs unbounded  [E16]";
  let ds =
    let base = hp_dataset ~seed:11 in
    let want = if full then Dataset.size base else 64 in
    if want < Dataset.size base then
      Dataset.random_subset base ~rng:(Rng.create 64) want
    else base
  in
  let n = Dataset.size ds in
  let queries = if full then 400 else 120 in
  let repeats = if full then 5 else 3 in
  let capacity = 1024 in
  let lo, hi = Bwc_experiments.Workload.bandwidth_range ds in
  let classes = Bwc_core.Classes.of_percentiles ~count:5 ds in
  let space = Dataset.metric ds in
  let run_arm trace =
    let ens = Bwc_predtree.Ensemble.build ~rng:(Rng.create 21) space in
    let p =
      Bwc_core.Protocol.create ~rng:(Rng.create 22) ~n_cut:4 ?trace ~classes ens
    in
    let (_ : int) = Bwc_core.Protocol.run_aggregation p in
    let qrng = Rng.create 23 in
    for _ = 1 to queries do
      ignore
        (Bwc_core.Protocol.query_bandwidth p ~at:(Rng.int qrng n)
           ~k:(2 + Rng.int qrng 6) ~b:(Rng.uniform qrng lo hi))
    done;
    Bwc_core.Protocol.messages_sent p
  in
  let time_arm mk =
    (* fresh sink per repeat so ring/unbounded arms never amortize
       allocation across repeats; best-of-N damps scheduler noise *)
    let best = ref Float.infinity and sum = ref 0.0 in
    let sends = ref 0 and emitted = ref 0 and retained = ref 0 in
    for _ = 1 to repeats do
      let trace = mk () in
      let t0 = Unix.gettimeofday () in
      sends := run_arm trace;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      sum := !sum +. dt;
      match trace with
      | None -> ()
      | Some t ->
          emitted := Bwc_obs.Trace.emitted t;
          retained := List.length (Bwc_obs.Trace.events t)
    done;
    (!best, !sum /. float_of_int repeats, !sends, !emitted, !retained)
  in
  let arms =
    [
      ("off", fun () -> None);
      ("ring", fun () -> Some (Bwc_obs.Trace.create ~capacity ()));
      ("unbounded", fun () -> Some (Bwc_obs.Trace.create ()));
    ]
  in
  let rows = List.map (fun (name, mk) -> (name, time_arm mk)) arms in
  let base_best, _, base_sends, _, _ = List.assoc "off" rows in
  List.iter
    (fun (name, (_, _, sends, _, _)) ->
      if sends <> base_sends then begin
        Format.eprintf
          "E16: tracing perturbed the protocol (%s arm sent %d messages, off arm %d)@."
          name sends base_sends;
        exit 1
      end)
    rows;
  let overhead_pct best =
    if base_best <= 0.0 then 0.0 else 100.0 *. (best -. base_best) /. base_best
  in
  Bwc_experiments.Report.table
    ~title:
      (Printf.sprintf
         "trace sink overhead -- %s n=%d, %d queries, best of %d" ds.Dataset.name
         n queries repeats)
    ~headers:[ "sink"; "best"; "mean"; "overhead"; "events"; "retained" ]
    (List.map
       (fun (name, (best, mean, _, emitted, retained)) ->
         [
           name;
           Printf.sprintf "%.1f ms" (best *. 1e3);
           Printf.sprintf "%.1f ms" (mean *. 1e3);
           Printf.sprintf "%+.1f%%" (overhead_pct best);
           string_of_int emitted;
           string_of_int retained;
         ])
       rows);
  let oc = open_out "BENCH_trace_overhead.json" in
  let arm_json (name, (best, mean, sends, emitted, retained)) =
    Printf.sprintf
      "    {\"sink\": \"%s\", \"best_s\": %.6f, \"mean_s\": %.6f, \
       \"overhead_pct\": %.2f, \"engine_sends\": %d, \"events_emitted\": %d, \
       \"events_retained\": %d}"
      name best mean (overhead_pct best) sends emitted retained
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"trace_overhead\",\n  \"dataset\": \"%s\",\n  \"hosts\": \
     %d,\n  \"queries\": %d,\n  \"repeats\": %d,\n  \"ring_capacity\": %d,\n  \
     \"arms\": [\n%s\n  ]\n}\n"
    ds.Dataset.name n queries repeats capacity
    (String.concat ",\n" (List.map arm_json rows));
  close_out oc;
  Format.printf "trace overhead written to BENCH_trace_overhead.json@."

(* ----- Bechamel micro-benchmarks ----- *)

open Bechamel
open Toolkit

let tree_space ~seed n =
  Bwc_metric.Space.of_dmatrix
    (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create seed) ~n ())

let micro_tests () =
  let spaces = List.map (fun n -> (n, tree_space ~seed:7 n)) [ 50; 100; 200 ] in
  let alg1 =
    List.map
      (fun (n, space) ->
        Test.make
          ~name:(Printf.sprintf "alg1-find n=%d" n)
          (Staged.stage (fun () ->
               ignore (Bwc_core.Find_cluster.find space ~k:(n / 10) ~l:200.0))))
      spaces
  in
  let index_build =
    List.map
      (fun (n, space) ->
        Test.make
          ~name:(Printf.sprintf "alg1-index-build n=%d" n)
          (Staged.stage (fun () -> ignore (Bwc_core.Find_cluster.Index.build space))))
      spaces
  in
  let ds = hp_dataset ~seed:11 in
  let sys = Bwc_core.System.create ~seed:8 ds in
  let protocol = Bwc_core.System.protocol sys in
  let rng = Rng.create 9 in
  let n = Bwc_core.System.size sys in
  let query_bench =
    Test.make ~name:"decentralized-query"
      (Staged.stage (fun () ->
           let at = Rng.int rng n in
           ignore (Bwc_core.Protocol.query protocol ~at ~k:8 ~cls:3)))
  in
  let ens = Bwc_core.System.framework sys in
  let labels_a = Bwc_predtree.Ensemble.labels ens 0 in
  let labels_b = Bwc_predtree.Ensemble.labels ens (n - 1) in
  let label_bench =
    Test.make ~name:"ensemble-label-dist"
      (Staged.stage (fun () -> ignore (Bwc_predtree.Ensemble.label_dist labels_a labels_b)))
  in
  let viv = Bwc_vivaldi.Vivaldi.embed ~rng:(Rng.create 10) (Dataset.metric ds) in
  let kidx = Bwc_euclid.Kdiam.Index.build (Bwc_vivaldi.Vivaldi.coords viv) in
  let kdiam_bench =
    Test.make ~name:"kdiam-find"
      (Staged.stage (fun () -> ignore (Bwc_euclid.Kdiam.Index.find kidx ~k:8 ~l:250.0)))
  in
  Test.make_grouped ~name:"bwcluster"
    (List.concat [ alg1; index_build; [ query_bench; label_bench; kdiam_bench ] ])

let run_micro () =
  section "Micro-benchmarks (Bechamel)  [E6: Algorithm 1 is O(n^3)]";
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if full then 1.0 else 0.4))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (micro_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    (* sorted traversal keeps the printed table deterministic *)
    List.rev
      (Bwc_stats.Tbl.fold_sorted
         (fun name ols acc ->
           let ns =
             match Analyze.OLS.estimates ols with
             | Some (t :: _) -> t
             | Some [] | None -> Float.nan
           in
           let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
           (name, ns, r2) :: acc)
         results [])
  in
  Bwc_experiments.Report.table ~title:"per-run cost (monotonic clock)"
    ~headers:[ "benchmark"; "time/run"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         let time =
           if Float.is_nan ns then "n/a"
           else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
           else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; time; Printf.sprintf "%.3f" r2 ])
       rows)

let daemon () =
  section "Daemon overload sweep  [E17]";
  let ds =
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create 5) ~name:"daemon-bench"
      { Bwc_dataset.Planetlab.hp_target with n = (if full then 96 else 48) }
  in
  let out =
    Bwc_experiments.Overload.run ~ticks:(if full then 600 else 200) ~seed:5 ds
  in
  Bwc_experiments.Overload.print out;
  Bwc_experiments.Overload.save_json out "BENCH_daemon.json";
  Format.printf "overload sweep written to BENCH_daemon.json@.";
  match Bwc_experiments.Overload.gate out with
  | [] -> ()
  | failures ->
      List.iter (fun m -> Format.eprintf "E17: %s@." m) failures;
      exit 1

(* Wall-clock phase profile via Bwc_obs.Span — the opt-in timing layer
   that is deliberately kept out of registries and traces (bench output
   is the one place wall time belongs). *)
let spans =
  List.map Bwc_obs.Span.create
    [ "fig3"; "fig4"; "fig5"; "fig6"; "ablations"; "restart"; "index-churn";
      "trace-overhead"; "daemon"; "micro" ]

let timed name f =
  let span = List.find (fun s -> Bwc_obs.Span.name s = name) spans in
  Bwc_obs.Span.time span f

(* `bench/main.exe -- --index-only` runs just the E14 churn sweep (the CI
   bench smoke job wants BENCH_index.json without paying for the full
   harness); `--trace-only` likewise runs just the E16 trace-overhead
   arms and emits BENCH_trace_overhead.json; `--daemon-only` just the E17
   overload sweep and emits BENCH_daemon.json *)
let index_only = Array.exists (String.equal "--index-only") Sys.argv
let trace_only = Array.exists (String.equal "--trace-only") Sys.argv
let daemon_only = Array.exists (String.equal "--daemon-only") Sys.argv
let fast_path = index_only || trace_only || daemon_only

let () =
  let t0 = Unix.gettimeofday () in
  Format.printf "bwcluster benchmark harness (%s scale)@."
    (if full then "paper" else "bench");
  if not fast_path then begin
    timed "fig3" fig3;
    timed "fig4" fig4;
    timed "fig5" fig5;
    timed "fig6" fig6;
    timed "ablations" ablations;
    timed "restart" restart
  end;
  if not (trace_only || daemon_only) then timed "index-churn" index_churn;
  if not (index_only || daemon_only) then timed "trace-overhead" trace_overhead;
  if not (index_only || trace_only) then timed "daemon" daemon;
  if not fast_path then timed "micro" run_micro;
  section "Phase profile (wall clock)";
  List.iter (fun s -> Format.printf "%a@." Bwc_obs.Span.pp s) spans;
  Format.printf "@.total wall time: %.1f s@." (Unix.gettimeofday () -. t0)
