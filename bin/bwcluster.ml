(* Command-line driver: regenerate any of the paper's experiments, create
   synthetic datasets, or run one-off cluster queries.

   Every experiment takes --full to run at paper-scale parameters (slower);
   the defaults are scaled down but preserve the qualitative shapes. *)

open Cmdliner

(* Exit codes (documented in README.md): bad arguments, I/O failures and
   experiment-gate failures must be distinguishable to CI.

     0    success
     1    an I/O failure (unreadable dataset/trace/snapshot file,
          unwritable output path)
     3    an experiment's acceptance gate failed (divergence, missed
          speedup target, corrupted arm restored, ...)
     4    `restore` rejected the snapshot and no --cold-fallback was given
     124  bad command line (Cmdliner's cli_error)

   Everything that validates user input exits with
   [Cmd.Exit.cli_error]; everything that touches the filesystem exits
   with [exit_io] on [Sys_error]; everything that checks a result exits
   with [exit_gate].  Gate diagnostics go to stderr, never stdout, so
   piped report output stays parseable. *)
let exit_io = 1
let exit_gate = 3
let exit_snapshot_rejected = 4

let seed_arg =
  let doc = "Random seed (experiments derive per-round seeds from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let full_arg =
  let doc = "Run with the paper-scale parameters (slower)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let csv_arg =
  let doc = "Also write the series as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let maybe_csv csv save output =
  match csv with
  | Some path ->
      (try save output path
       with Sys_error msg ->
         Format.eprintf "bwcluster: cannot write %s: %s@." path msg;
         exit exit_io);
      Format.printf "csv written to %s@." path
  | None -> ()

let dataset_arg =
  let doc =
    "Dataset: 'hp' (HP-PlanetLab-like, 190 hosts), 'umd' (UMD-PlanetLab-like, \
     317 hosts), 'hp-small'/'umd-small' (120-host variants for quick runs), or \
     a path to a CSV bandwidth matrix."
  in
  Arg.(value & opt string "hp-small" & info [ "dataset" ] ~docv:"NAME" ~doc)

let load_dataset ~seed name =
  match name with
  | "hp" -> Bwc_dataset.Planetlab.hp_like ~seed
  | "umd" -> Bwc_dataset.Planetlab.umd_like ~seed
  | "hp-small" ->
      Bwc_dataset.Planetlab.generate
        ~rng:(Bwc_stats.Rng.create seed)
        ~name:"HP-like-small"
        { Bwc_dataset.Planetlab.hp_target with n = 120 }
  | "umd-small" ->
      Bwc_dataset.Planetlab.generate
        ~rng:(Bwc_stats.Rng.create seed)
        ~name:"UMD-like-small"
        { Bwc_dataset.Planetlab.umd_target with n = 120 }
  | path -> (
      try Bwc_dataset.Dataset.load_csv ~name:(Filename.basename path) path
      with Sys_error msg ->
        Format.eprintf "bwcluster: cannot read dataset: %s@." msg;
        exit exit_io)

(* ----- accuracy (E1) ----- *)

let accuracy seed full dataset csv =
  let ds = load_dataset ~seed dataset in
  let rounds, queries = if full then (10, 1000) else (3, 250) in
  let out = Bwc_experiments.Accuracy.run ~rounds ~queries_per_round:queries ~seed ds in
  Bwc_experiments.Accuracy.print out;
  maybe_csv csv Bwc_experiments.Accuracy.save_csv out

let accuracy_cmd =
  let doc = "Fig. 3(a,c): WPR vs bandwidth constraint for the three approaches." in
  Cmd.v
    (Cmd.info "accuracy" ~doc)
    Term.(const accuracy $ seed_arg $ full_arg $ dataset_arg $ csv_arg)

(* ----- relative error CDF (E2) ----- *)

let relerr seed full dataset csv =
  let ds = load_dataset ~seed dataset in
  let rounds = if full then 10 else 3 in
  let out = Bwc_experiments.Relerr.run ~rounds ~seed ds in
  Bwc_experiments.Relerr.print ~resolution:10 out;
  Format.printf "median gap (eucl - tree): %.4f@." (Bwc_experiments.Relerr.median_gap out);
  maybe_csv csv (fun o p -> Bwc_experiments.Relerr.save_csv o p) out

let relerr_cmd =
  let doc = "Fig. 3(b,d): CDF of relative bandwidth-prediction errors." in
  Cmd.v (Cmd.info "relerr" ~doc)
    Term.(const relerr $ seed_arg $ full_arg $ dataset_arg $ csv_arg)

(* ----- tradeoff (E3 + E7) ----- *)

let tradeoff seed full dataset ablate csv =
  let ds = load_dataset ~seed dataset in
  let rounds, per_k = if full then (20, 5) else (4, 4) in
  if ablate then begin
    let rows = Bwc_experiments.Tradeoff.ncut_ablation ~rounds ~per_k ~seed ds in
    Bwc_experiments.Tradeoff.print_ablation ~dataset:ds.Bwc_dataset.Dataset.name rows
  end
  else begin
    let out = Bwc_experiments.Tradeoff.run ~rounds ~per_k ~seed ds in
    Bwc_experiments.Tradeoff.print out;
    maybe_csv csv Bwc_experiments.Tradeoff.save_csv out
  end

let tradeoff_cmd =
  let doc = "Fig. 4: return rate vs k, centralized vs decentralized." in
  let ablate =
    Arg.(value & flag & info [ "ablate-ncut" ] ~doc:"Sweep n_cut instead (E7 ablation).")
  in
  Cmd.v
    (Cmd.info "tradeoff" ~doc)
    Term.(const tradeoff $ seed_arg $ full_arg $ dataset_arg $ ablate $ csv_arg)

(* ----- treeness (E4) ----- *)

let treeness seed full csv =
  let rounds, queries = if full then (10, 2000) else (2, 300) in
  let out =
    Bwc_experiments.Treeness.run ~n:100 ~rounds ~queries_per_round:queries ~seed ()
  in
  Bwc_experiments.Treeness.print out;
  maybe_csv csv Bwc_experiments.Treeness.save_csv out

let treeness_cmd =
  let doc = "Fig. 5: effect of dataset treeness (epsilon) on WPR." in
  Cmd.v (Cmd.info "treeness" ~doc) Term.(const treeness $ seed_arg $ full_arg $ csv_arg)

(* ----- scalability (E5) ----- *)

let scalability seed full dataset churn coreset_k json csv =
  if churn then begin
    let sizes =
      if full then [ 64; 128; 256; 384; 1024; 4096 ] else [ 64; 128; 256 ]
    in
    let rows =
      Bwc_experiments.Scalability.churn_sweep ~sizes
        ~events_per_size:(if full then 32 else 16)
        ~coreset_k ~seed ()
    in
    Bwc_experiments.Scalability.print_churn rows;
    (match json with
    | Some path ->
        Bwc_experiments.Scalability.save_churn_json rows ~seed path;
        Format.printf "json written to %s@." path
    | None -> ());
    let diverged = Bwc_experiments.Scalability.churn_divergence rows in
    if diverged > 0 then begin
      Format.eprintf "churn sweep: %d differential divergences@." diverged;
      exit exit_gate
    end;
    let violations = Bwc_experiments.Scalability.churn_bound_violations rows in
    if violations > 0 then begin
      Format.eprintf "churn sweep: %d coreset bound violations@." violations;
      exit exit_gate
    end
  end
  else begin
    let ds = load_dataset ~seed dataset in
    let sizes, subsets, queries, rounds =
      if full then ([ 50; 100; 150; 200; 250; 300 ], 10, 1000, 10)
      else ([ 40; 80; 120 ], 2, 80, 1)
    in
    let n = Bwc_dataset.Dataset.size ds in
    let sizes = List.filter (fun s -> s <= n) sizes in
    let out =
      Bwc_experiments.Scalability.run ~sizes ~subsets_per_size:subsets
        ~queries_per_subset:queries ~rounds ~seed ds
    in
    Bwc_experiments.Scalability.print out;
    maybe_csv csv Bwc_experiments.Scalability.save_csv out
  end

let scalability_cmd =
  let doc = "Fig. 6: mean query routing hops vs system size." in
  let churn =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Run the E14 churn sweep instead: incremental index maintenance \
             vs rebuild-from-scratch plus the approximate coreset arm, with \
             differential and certified-interval checking (exits non-zero \
             on any divergence or bound violation).")
  in
  let coreset_k =
    Arg.(
      value
      & opt int Bwc_core.Find_cluster.Coreset.default_k
      & info [ "coreset-k" ] ~docv:"K"
          ~doc:"With $(b,--churn): per-subtree coreset summary size.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"With $(b,--churn): also write the sweep as JSON (BENCH_index.json schema).")
  in
  Cmd.v
    (Cmd.info "scalability" ~doc)
    Term.(
      const scalability $ seed_arg $ full_arg $ dataset_arg $ churn $ coreset_k
      $ json $ csv_arg)

(* ----- embedding ablation (E8) ----- *)

let embedding seed full dataset =
  let ds = load_dataset ~seed dataset in
  let rounds = if full then 5 else 2 in
  let rows = Bwc_experiments.Embedding.run ~rounds ~seed ds in
  Bwc_experiments.Embedding.print ~dataset:ds.Bwc_dataset.Dataset.name rows

let embedding_cmd =
  let doc = "Ablation: embedding error vs construction mode and ensemble size." in
  Cmd.v
    (Cmd.info "embedding" ~doc)
    Term.(const embedding $ seed_arg $ full_arg $ dataset_arg)

(* ----- oracle ablation (E9) ----- *)

let oracle seed full dataset csv =
  let ds = load_dataset ~seed dataset in
  let queries = if full then 100 else 30 in
  let out = Bwc_experiments.Oracle.run ~queries_per_k:queries ~seed ds in
  Bwc_experiments.Oracle.print out;
  maybe_csv csv Bwc_experiments.Oracle.save_csv out

let oracle_cmd =
  let doc = "Ablation: Algorithm 1 on real data vs the exact k-clique oracle." in
  Cmd.v (Cmd.info "oracle" ~doc)
    Term.(const oracle $ seed_arg $ full_arg $ dataset_arg $ csv_arg)

(* ----- overhead (E10) ----- *)

let overhead seed full dataset csv =
  let ds = load_dataset ~seed dataset in
  let n = Bwc_dataset.Dataset.size ds in
  let sizes =
    List.filter (fun s -> s <= n)
      (if full then [ 50; 100; 150; 200; 250; 300 ] else [ 40; 80; 120 ])
  in
  let out = Bwc_experiments.Overhead.run ~sizes ~repeats:(if full then 5 else 2) ~seed ds in
  Bwc_experiments.Overhead.print out;
  maybe_csv csv Bwc_experiments.Overhead.save_csv out

let overhead_cmd =
  let doc = "Background protocol overhead (measurements, messages) vs system size." in
  Cmd.v (Cmd.info "overhead" ~doc)
    Term.(const overhead $ seed_arg $ full_arg $ dataset_arg $ csv_arg)

(* ----- routing-policy ablation (E11) ----- *)

let routing seed full dataset csv =
  let ds = load_dataset ~seed dataset in
  let rounds, queries = if full then (5, 200) else (2, 60) in
  let out = Bwc_experiments.Routing.run ~rounds ~queries_per_k:queries ~seed ds in
  Bwc_experiments.Routing.print out;
  maybe_csv csv Bwc_experiments.Routing.save_csv out

let routing_cmd =
  let doc = "Ablation: forwarding-policy comparison (best-CRT vs first neighbor)." in
  Cmd.v (Cmd.info "routing" ~doc)
    Term.(const routing $ seed_arg $ full_arg $ dataset_arg $ csv_arg)

(* ----- robustness under faults (E12) ----- *)

let robustness seed full dataset hosts recover csv =
  (match hosts with
  | Some h when h < 2 ->
      Format.eprintf "bwcluster: --hosts must be at least 2@.";
      exit Cmdliner.Cmd.Exit.cli_error
  | _ -> ());
  let ds = load_dataset ~seed dataset in
  let ds =
    match hosts with
    | Some h when h < Bwc_dataset.Dataset.size ds ->
        Bwc_dataset.Dataset.random_subset ds ~rng:(Bwc_stats.Rng.create seed) h
    | _ -> ds
  in
  if recover then begin
    let victim_counts, queries =
      if full then ([ 1; 2; 3; 4 ], 200) else ([ 1; 2 ], 60)
    in
    let out = Bwc_experiments.Robustness.recovery ~victim_counts ~queries ~seed ds in
    Bwc_experiments.Robustness.print_recovery out;
    maybe_csv csv Bwc_experiments.Robustness.save_recovery_csv out
  end
  else begin
    let drops, crash_rates, queries =
      if full then ([ 0.0; 0.05; 0.1; 0.2; 0.3 ], [ 0.0; 0.1; 0.2 ], 200)
      else ([ 0.0; 0.1; 0.2 ], [ 0.0; 0.15 ], 60)
    in
    let out = Bwc_experiments.Robustness.run ~drops ~crash_rates ~queries ~seed ds in
    Bwc_experiments.Robustness.print out;
    maybe_csv csv Bwc_experiments.Robustness.save_csv out
  end

let robustness_cmd =
  let doc =
    "Robustness: aggregation fixed point and query recall under message loss, \
     duplication, jitter and crash/restart windows.  With $(b,--recovery), \
     the E13 crash-recovery comparison instead: detector-driven incremental \
     self-healing vs oracle eviction with full re-propagation."
  in
  let hosts =
    Arg.(
      value
      & opt (some int) None
      & info [ "hosts" ] ~docv:"N"
          ~doc:"Restrict the dataset to a random N-host subset (smoke runs).")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recovery" ]
          ~doc:
            "Run the crash-recovery experiment (failure detection, \
             self-healing repair, messages saved vs full stabilization).")
  in
  Cmd.v
    (Cmd.info "robustness" ~doc)
    Term.(
      const robustness $ seed_arg $ full_arg $ dataset_arg $ hosts $ recover
      $ csv_arg)

(* ----- crash-consistent restart (E15) ----- *)

let hosts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hosts" ] ~docv:"N"
        ~doc:"Restrict the dataset to a random N-host subset (quick runs).")

let subset_hosts ~seed hosts ds =
  (match hosts with
  | Some h when h < 2 ->
      Format.eprintf "bwcluster: --hosts must be at least 2@.";
      exit Cmdliner.Cmd.Exit.cli_error
  | _ -> ());
  match hosts with
  | Some h when h < Bwc_dataset.Dataset.size ds ->
      Bwc_dataset.Dataset.random_subset ds ~rng:(Bwc_stats.Rng.create seed) h
  | _ -> ds

let restart seed full dataset hosts json csv =
  let ds = subset_hosts ~seed hosts (load_dataset ~seed dataset) in
  let queries = if full then 200 else 60 in
  let out = Bwc_experiments.Robustness.restart ~queries ~seed ds in
  Bwc_experiments.Robustness.print_restart out;
  maybe_csv csv Bwc_experiments.Robustness.save_restart_csv out;
  (match json with
  | Some path ->
      Bwc_experiments.Robustness.save_restart_json out ~seed path;
      Format.printf "json written to %s@." path
  | None -> ());
  (* acceptance gate: the warm restore must verify and land on the
     reference fixed point, every corrupted image must be rejected, and
     at experiment scale the restart must actually be cheap *)
  let module R = Bwc_experiments.Robustness in
  let failures =
    List.concat_map
      (fun (r : R.restart_row) ->
        match r.R.mode with
        | "warm" ->
            (if r.R.restore_ok then [] else [ "warm restore was rejected" ])
            @ (if r.R.fixpoint_match then []
               else [ "warm restore missed the reference fixed point" ])
            @ (if out.R.n < 64 then []
               else if r.R.round_speedup < 5.0 then
                 [
                   Printf.sprintf "warm round speedup %.2f < 5 at n=%d"
                     r.R.round_speedup out.R.n;
                 ]
               else if r.R.msg_speedup < 5.0 then
                 [
                   Printf.sprintf "warm message speedup %.2f < 5 at n=%d"
                     r.R.msg_speedup out.R.n;
                 ]
               else [])
        | "cold" -> []
        | mode ->
            if r.R.restore_ok then [ mode ^ " snapshot was not rejected" ]
            else [])
      out.R.rows
  in
  if failures <> [] then begin
    List.iter (fun m -> Format.eprintf "restart gate: %s@." m) failures;
    exit exit_gate
  end

let restart_cmd =
  let doc =
    "E15: whole-system crash and restart.  Warm restore from a verified \
     snapshot vs cold reconvergence, plus corrupted-snapshot arms \
     (truncation, bit flips, stale format version) that must degrade \
     gracefully.  Exits 3 when the acceptance gate fails."
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON.")
  in
  Cmd.v (Cmd.info "restart" ~doc)
    Term.(
      const restart $ seed_arg $ full_arg $ dataset_arg $ hosts_arg $ json
      $ csv_arg)

(* ----- overload (E17) ----- *)

let overload seed full dataset hosts json csv =
  let ds = subset_hosts ~seed hosts (load_dataset ~seed dataset) in
  let ds =
    (* the sweep runs 8 daemon instances (4 loads x 2 replay runs); keep
       the default system small enough that the arm cost is the scripted
       load, not index construction *)
    match hosts with
    | Some _ -> ds
    | None ->
        let cap = if full then 96 else 48 in
        if Bwc_dataset.Dataset.size ds > cap then
          Bwc_dataset.Dataset.random_subset ds
            ~rng:(Bwc_stats.Rng.create seed)
            cap
        else ds
  in
  let ticks = if full then 600 else 200 in
  let out = Bwc_experiments.Overload.run ~ticks ~seed ds in
  Bwc_experiments.Overload.print out;
  maybe_csv csv Bwc_experiments.Overload.save_csv out;
  (match json with
  | Some path ->
      (try Bwc_experiments.Overload.save_json out path
       with Sys_error msg ->
         Format.eprintf "bwcluster: cannot write %s: %s@." path msg;
         exit exit_io);
      Format.printf "json written to %s@." path
  | None -> ());
  match Bwc_experiments.Overload.gate out with
  | [] -> ()
  | failures ->
      List.iter (fun m -> Format.eprintf "overload gate: %s@." m) failures;
      exit exit_gate

let overload_cmd =
  let doc =
    "E17: the daemon reactor under an offered-load sweep.  Goodput must \
     plateau at service capacity instead of collapsing, every request must \
     resolve to exactly one typed response (answer, shed, timeout, or \
     rejection — never a silent drop), degraded answers must carry an \
     explicit staleness bound, and same-seed replays must be \
     byte-identical.  Exits 3 when the acceptance gate fails."
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON.")
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(
      const overload $ seed_arg $ full_arg $ dataset_arg $ hosts_arg $ json
      $ csv_arg)

(* ----- snapshot / restore ----- *)

let snapshot seed dataset hosts output =
  let ds = subset_hosts ~seed hosts (load_dataset ~seed dataset) in
  let sys = Bwc_core.System.create ~seed ds in
  let image = Bwc_persist.Snapshot.encode (`System sys) in
  Bwc_persist.Codec.write_file output image;
  Format.printf "wrote %s: %d bytes, %d hosts, converged in %d rounds@." output
    (String.length image) (Bwc_core.System.size sys)
    (Bwc_core.Protocol.rounds_run (Bwc_core.System.protocol sys))

let snapshot_cmd =
  let doc =
    "Stand up a system over a dataset, run aggregation to quiescence and \
     write a crash-consistent snapshot of the whole system state."
  in
  let output =
    Arg.(
      value
      & opt string "system.bwcsnap"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Snapshot output path.")
  in
  Cmd.v (Cmd.info "snapshot" ~doc)
    Term.(const snapshot $ seed_arg $ dataset_arg $ hosts_arg $ output)

let restore seed dataset hosts input resnapshot cold_fallback k b =
  let bytes =
    try Bwc_persist.Codec.read_file input
    with Sys_error msg ->
      Format.eprintf "bwcluster: cannot read snapshot: %s@." msg;
      exit exit_io
  in
  (* re-snapshot before the proving query: the query draws a submission
     point from the system RNG, and the restored image must stay
     byte-identical to what was on disk *)
  let resnap source =
    match resnapshot with
    | Some path ->
        Bwc_persist.Codec.write_file path (Bwc_persist.Snapshot.encode source);
        Format.printf "re-snapshot written to %s@." path
    | None -> ()
  in
  let prove_system ~warm sys =
    Format.printf "%s: %d hosts live at round %d@."
      (if warm then "restored warm" else "cold start")
      (Bwc_core.System.size sys)
      (Bwc_core.Protocol.current_round (Bwc_core.System.protocol sys));
    resnap (`System sys);
    Format.printf "query: %a@." Bwc_core.Query.pp_result
      (Bwc_core.System.query sys ~k ~b)
  in
  match Bwc_persist.Snapshot.decode bytes with
  | Ok (Bwc_persist.Snapshot.Restored_system sys) -> prove_system ~warm:true sys
  | Ok (Bwc_persist.Snapshot.Restored_dynamic dyn) ->
      Format.printf "restored warm: %d members live@."
        (Bwc_core.Dynamic.member_count dyn);
      resnap (`Dynamic dyn);
      Format.printf "query: %a@." Bwc_core.Query.pp_result
        (Bwc_core.Dynamic.query dyn ~k ~b)
  | Error e ->
      Format.eprintf "bwcluster: persist.restore_rejected: %s@."
        (Bwc_persist.Codec.error_to_string e);
      if not cold_fallback then exit exit_snapshot_rejected;
      Format.printf "falling back to cold reconvergence over --dataset %s@."
        dataset;
      prove_system ~warm:false
        (Bwc_core.System.create ~seed
           (subset_hosts ~seed hosts (load_dataset ~seed dataset)))

let restore_cmd =
  let doc =
    "Restore a system from a snapshot file and prove it is live with one \
     query.  A rejected snapshot (truncated, bit-flipped, stale version, or \
     semantically invalid) exits 4 — or, with $(b,--cold-fallback), rebuilds \
     the system from $(b,--dataset) with full reconvergence and exits 0."
  in
  let input =
    Arg.(
      required
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Snapshot file to restore from.")
  in
  let resnapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "resnapshot" ] ~docv:"FILE"
          ~doc:
            "Write the restored system's own snapshot to $(docv); it must be \
             byte-identical to the input (CI checks with cmp).")
  in
  let cold_fallback =
    Arg.(
      value & flag
      & info [ "cold-fallback" ]
          ~doc:
            "On a rejected snapshot, rebuild from $(b,--dataset) instead of \
             exiting 4.")
  in
  let k =
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Proving-query cluster size.")
  in
  let b =
    Arg.(
      value
      & opt float 40.0
      & info [ "b" ] ~docv:"MBPS" ~doc:"Proving-query bandwidth constraint (Mbps).")
  in
  Cmd.v (Cmd.info "restore" ~doc)
    Term.(
      const restore $ seed_arg $ dataset_arg $ hosts_arg $ input $ resnapshot
      $ cold_fallback $ k $ b)

(* ----- dynamic membership demo ----- *)

let dynamic seed dataset epochs =
  let ds = load_dataset ~seed dataset in
  let n = Bwc_dataset.Dataset.size ds in
  let initial = List.init (2 * n / 3) (fun i -> i) in
  let dyn = Bwc_core.Dynamic.create ~seed ~initial_members:initial ds in
  let churn =
    Bwc_sim.Churn.random
      ~rng:(Bwc_stats.Rng.create (seed + 1))
      ~n ~rounds:epochs ~leave_prob:0.05 ~rejoin_prob:0.15
  in
  let rng = Bwc_stats.Rng.create (seed + 2) in
  let lo, hi = Bwc_dataset.Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  Bwc_core.Dynamic.run_scenario dyn ~churn ~rounds:epochs ~on_round:(fun epoch dyn ->
      let found = ref 0 and total = 30 in
      for _ = 1 to total do
        let b = Bwc_stats.Rng.uniform rng lo hi in
        if Bwc_core.Query.found (Bwc_core.Dynamic.query dyn ~k:6 ~b) then incr found
      done;
      Format.printf "epoch %2d: members=%3d RR=%d/%d@." epoch
        (Bwc_core.Dynamic.member_count dyn)
        !found total)

let dynamic_cmd =
  let doc = "Run a churn scenario: hosts join and leave while queries keep flowing." in
  let epochs =
    Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"N" ~doc:"Churn epochs to run.")
  in
  Cmd.v (Cmd.info "dynamic" ~doc) Term.(const dynamic $ seed_arg $ dataset_arg $ epochs)

(* ----- dataset generation ----- *)

let gen seed dataset output =
  let ds = load_dataset ~seed dataset in
  Bwc_dataset.Dataset.save_csv ds output;
  let lo, hi = Bwc_dataset.Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  Format.printf "wrote %s: %d hosts, bandwidth p20=%.1f p80=%.1f Mbps@." output
    (Bwc_dataset.Dataset.size ds) lo hi

let gen_cmd =
  let doc = "Generate a synthetic dataset and write it as CSV." in
  let output =
    Arg.(
      value
      & opt string "dataset.csv"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const gen $ seed_arg $ dataset_arg $ output)

(* ----- overlay export ----- *)

let export_tree seed dataset output =
  let ds = load_dataset ~seed dataset in
  let sys = Bwc_core.System.create ~seed ds in
  let fw = Bwc_predtree.Ensemble.primary (Bwc_core.System.framework sys) in
  let write path contents =
    try
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc contents)
    with Sys_error msg ->
      Format.eprintf "bwcluster: cannot write %s: %s@." path msg;
      exit exit_io
  in
  let pred_path = output ^ ".prediction.dot" in
  let anchor_path = output ^ ".anchor.dot" in
  write pred_path
    (Bwc_predtree.Tree.to_dot ~label:ds.Bwc_dataset.Dataset.name
       (Bwc_predtree.Framework.tree fw));
  write anchor_path
    (Bwc_predtree.Anchor.to_dot ~label:ds.Bwc_dataset.Dataset.name
       (Bwc_predtree.Framework.anchor fw));
  Format.printf "wrote %s and %s (render with graphviz)@." pred_path anchor_path

let export_tree_cmd =
  let doc = "Export the prediction tree and anchor overlay as Graphviz DOT files." in
  let output =
    Arg.(value & opt string "overlay" & info [ "o"; "output" ] ~docv:"PREFIX"
           ~doc:"Output filename prefix.")
  in
  Cmd.v (Cmd.info "export-tree" ~doc)
    Term.(const export_tree $ seed_arg $ dataset_arg $ output)

(* ----- dataset diagnostics ----- *)

let inspect seed dataset =
  let ds = load_dataset ~seed dataset in
  let n = Bwc_dataset.Dataset.size ds in
  Format.printf "dataset %s: %d hosts, %d pairs@." ds.Bwc_dataset.Dataset.name n
    (n * (n - 1) / 2);
  let values = Bwc_dataset.Dataset.bandwidth_values ds in
  (match Bwc_stats.Summary.of_array values with
  | Some d -> Format.printf "bandwidth (Mbps): %a@." Bwc_stats.Summary.pp d
  | None -> ());
  let rng = Bwc_stats.Rng.create seed in
  let space = Bwc_dataset.Dataset.metric ds in
  let report = Bwc_metric.Check.verify ~rng space in
  Format.printf "metric properties: %a@." Bwc_metric.Check.pp report;
  let eps = Bwc_metric.Fourpoint.epsilon_avg ~samples:30_000 ~rng space in
  Format.printf "treeness: epsilon_avg = %.4f (epsilon* = %.4f)@." eps
    (Bwc_metric.Fourpoint.epsilon_star eps);
  let hist = Bwc_stats.Histogram.create ~lo:(Bwc_stats.Summary.min values)
      ~hi:(Bwc_stats.Summary.max values +. 1e-9) ~bins:12 in
  Bwc_stats.Histogram.add_all hist values;
  Format.printf "bandwidth distribution:@.%a" Bwc_stats.Histogram.pp hist

let inspect_cmd =
  let doc = "Print dataset diagnostics: metric checks, treeness, distribution." in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const inspect $ seed_arg $ dataset_arg)

(* ----- one-off query ----- *)

let query seed dataset k b =
  let ds = load_dataset ~seed dataset in
  let sys = Bwc_core.System.create ~seed ds in
  Format.printf "system of %d hosts up (aggregation: %d rounds, %d messages)@."
    (Bwc_core.System.size sys)
    (Bwc_core.Protocol.rounds_run (Bwc_core.System.protocol sys))
    (Bwc_core.Protocol.messages_sent (Bwc_core.System.protocol sys));
  let result = Bwc_core.System.query sys ~k ~b in
  Format.printf "decentralized: %a@." Bwc_core.Query.pp_result result;
  (match result.Bwc_core.Query.cluster with
  | Some cluster ->
      let bad = Bwc_core.System.verify_cluster sys ~b cluster in
      Format.printf "real-bandwidth violations: %d of %d pairs@." (List.length bad)
        (List.length cluster * (List.length cluster - 1) / 2)
  | None -> ());
  match Bwc_core.System.query_centralized sys ~k ~b with
  | Some cluster ->
      Format.printf "centralized:   found {%s}@."
        (String.concat ", " (List.map string_of_int cluster))
  | None -> Format.printf "centralized:   not found@."

let query_cmd =
  let doc = "Stand up a system and run one bandwidth-constrained cluster query." in
  let k =
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Cluster size constraint.")
  in
  let b =
    Arg.(
      value
      & opt float 40.0
      & info [ "b" ] ~docv:"MBPS" ~doc:"Minimum pairwise bandwidth constraint (Mbps).")
  in
  Cmd.v (Cmd.info "query" ~doc) Term.(const query $ seed_arg $ dataset_arg $ k $ b)

(* ----- observability: trace + metrics ----- *)

(* One deterministic scenario shared by `trace` and `metrics`: stand up an
   ensemble + protocol (optionally under a fault plan) on one registry and
   one trace sink, run the aggregation, then replay a seeded query
   stream.  Everything derives from --seed, so two runs with the same
   arguments produce byte-identical output. *)
let build_observed ~seed ~dataset ~hosts ~drop ~duplicate ~jitter ~queries =
  (match hosts with
  | Some h when h < 2 ->
      Format.eprintf "bwcluster: --hosts must be at least 2@.";
      exit Cmdliner.Cmd.Exit.cli_error
  | _ -> ());
  if drop < 0.0 || drop > 1.0 || duplicate < 0.0 || duplicate > 1.0 then begin
    Format.eprintf "bwcluster: --drop and --duplicate must be in [0,1]@.";
    exit Cmdliner.Cmd.Exit.cli_error
  end;
  let ds = load_dataset ~seed dataset in
  let ds =
    match hosts with
    | Some h when h < Bwc_dataset.Dataset.size ds ->
        Bwc_dataset.Dataset.random_subset ds ~rng:(Bwc_stats.Rng.create seed) h
    | _ -> ds
  in
  let n = Bwc_dataset.Dataset.size ds in
  let space = Bwc_dataset.Dataset.metric ds in
  let metrics = Bwc_obs.Registry.create () in
  let trace = Bwc_obs.Trace.create () in
  let faults =
    Bwc_sim.Fault.create ~drop ~duplicate ~jitter ~metrics
      ~rng:(Bwc_stats.Rng.create (seed + 1)) ()
  in
  let ens = Bwc_predtree.Ensemble.build ~rng:(Bwc_stats.Rng.create (seed + 2)) ~metrics space in
  let classes = Bwc_core.Classes.of_percentiles ~count:5 ds in
  let protocol =
    Bwc_core.Protocol.create ~rng:(Bwc_stats.Rng.create (seed + 3)) ~n_cut:4 ~faults
      ~metrics ~trace ~classes ens
  in
  let (_ : int) = Bwc_core.Protocol.run_aggregation protocol in
  let lo, hi = Bwc_dataset.Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  let qrng = Bwc_stats.Rng.create (seed + 4) in
  for _ = 1 to queries do
    let at = Bwc_stats.Rng.int qrng n in
    let k = 2 + Bwc_stats.Rng.int qrng 6 in
    let b = Bwc_stats.Rng.uniform qrng lo hi in
    ignore (Bwc_core.Protocol.query_bandwidth protocol ~at ~k ~b)
  done;
  (metrics, trace)

let write_or_print output contents =
  match output with
  | Some path ->
      (try
         let oc = open_out path in
         Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
             output_string oc contents)
       with Sys_error msg ->
         Format.eprintf "bwcluster: cannot write %s: %s@." path msg;
         exit exit_io);
      Format.printf "wrote %s@." path
  | None -> print_string contents

let drop_arg =
  Arg.(value & opt float 0.1
       & info [ "drop" ] ~docv:"P" ~doc:"Per-message loss probability.")

let duplicate_arg =
  Arg.(value & opt float 0.05
       & info [ "duplicate" ] ~docv:"P" ~doc:"Per-message duplication probability.")

let jitter_arg =
  Arg.(value & opt int 1
       & info [ "jitter" ] ~docv:"R" ~doc:"Maximum extra delivery delay in rounds.")

let queries_arg =
  Arg.(value & opt int 20
       & info [ "queries" ] ~docv:"N" ~doc:"Queries to replay after aggregation.")

let out_arg doc = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace seed dataset hosts drop duplicate jitter queries output =
  let _, tr =
    build_observed ~seed ~dataset ~hosts ~drop ~duplicate ~jitter ~queries
  in
  write_or_print output (Bwc_obs.Trace.to_jsonl tr)

let trace_cmd =
  let doc =
    "Run a deterministic fault scenario and emit its structured event trace as \
     JSONL (one event per line, clocked by simulation rounds).  Identical \
     arguments produce byte-identical traces."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace $ seed_arg $ dataset_arg $ hosts_arg $ drop_arg $ duplicate_arg
      $ jitter_arg $ queries_arg
      $ out_arg "Write the JSONL trace to $(docv) instead of stdout.")

let metrics_report seed dataset hosts drop duplicate jitter queries json output =
  let reg, _ =
    build_observed ~seed ~dataset ~hosts ~drop ~duplicate ~jitter ~queries
  in
  let snap = Bwc_obs.Registry.snapshot reg in
  let contents =
    if json then Bwc_obs.Registry.to_json snap ^ "\n"
    else Bwc_obs.Registry.to_text snap
  in
  write_or_print output contents

let metrics_cmd =
  let doc =
    "Run a deterministic fault scenario and print the full metrics registry \
     snapshot (engine, fault, protocol, query and prediction-tree series)."
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the snapshot as JSON.")
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const metrics_report $ seed_arg $ dataset_arg $ hosts_arg $ drop_arg
      $ duplicate_arg $ jitter_arg $ queries_arg $ json
      $ out_arg "Write the report to $(docv) instead of stdout.")

(* ----- causal trace analytics ----- *)

let analyze seed dataset hosts input json output =
  let events =
    match input with
    | Some path ->
        let contents =
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with Sys_error msg ->
            Format.eprintf "bwcluster: cannot read %s: %s@." path msg;
            exit exit_io
        in
        (match Bwc_obs.Trace.of_jsonl contents with
        | Ok evs -> evs
        | Error msg ->
            Format.eprintf "bwcluster: %s: %s@." path msg;
            exit Cmdliner.Cmd.Exit.cli_error)
    | None ->
        (* default scenario: the seeded E13-style crash-recovery run *)
        let ds = load_dataset ~seed dataset in
        let ds =
          match hosts with
          | Some h when h < Bwc_dataset.Dataset.size ds ->
              Bwc_dataset.Dataset.random_subset ds
                ~rng:(Bwc_stats.Rng.create seed) h
          | _ -> ds
        in
        fst (Bwc_experiments.Trace_analytics.recovery_events ~seed ds)
  in
  let report = Bwc_obs.Causal.analyze events in
  let contents =
    if json then Bwc_obs.Causal.to_json report ^ "\n"
    else Bwc_obs.Causal.to_text report
  in
  write_or_print output contents

let analyze_cmd =
  let doc =
    "Reconstruct happens-before over a structured trace and report the \
     convergence critical path (the witness chain of messages convergence \
     actually waited for), per-kind byte attribution, busiest links and a \
     round waterfall.  Without $(b,--input), runs the seeded crash-recovery \
     scenario (detector + crashes) and analyzes its own trace; identical \
     arguments produce byte-identical reports."
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE"
          ~doc:"Analyze an existing JSONL trace instead of running a scenario.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ seed_arg $ dataset_arg $ hosts_arg $ input $ json
      $ out_arg "Write the report to $(docv) instead of stdout.")

let trace_diff left right =
  let result =
    try Bwc_obs.Trace_diff.diff_files left right
    with Sys_error msg ->
      Format.eprintf "bwcluster: %s@." msg;
      exit exit_io
  in
  print_string
    (Bwc_obs.Trace_diff.to_string ~left_name:left ~right_name:right result);
  match result with
  | Bwc_obs.Trace_diff.Identical -> ()
  | Bwc_obs.Trace_diff.Diverges _ -> exit exit_gate

let trace_diff_cmd =
  let doc =
    "Compare two JSONL traces line by line and report the first divergence.  \
     Exits 0 when byte-identical, 3 with the divergent line quoted from both \
     sides otherwise -- the dynamic end of the determinism contract."
  in
  let file n doc = Arg.(required & pos n (some string) None & info [] ~docv:"FILE" ~doc) in
  Cmd.v (Cmd.info "trace-diff" ~doc)
    Term.(
      const trace_diff
      $ file 0 "Left trace (JSONL)."
      $ file 1 "Right trace (JSONL).")

let trace_analytics seed dataset hosts kinds_csv csv =
  let ds = load_dataset ~seed dataset in
  let ds =
    match hosts with
    | Some h when h < Bwc_dataset.Dataset.size ds ->
        Bwc_dataset.Dataset.random_subset ds ~rng:(Bwc_stats.Rng.create seed) h
    | _ -> ds
  in
  let out = Bwc_experiments.Trace_analytics.run ~seed ds in
  Bwc_experiments.Trace_analytics.print out;
  maybe_csv csv Bwc_experiments.Trace_analytics.save_csv out;
  maybe_csv kinds_csv Bwc_experiments.Trace_analytics.save_kinds_csv out;
  if
    not
      (List.for_all
         (fun r -> r.Bwc_experiments.Trace_analytics.send_sum_matches)
         out.Bwc_experiments.Trace_analytics.rows)
  then begin
    Format.eprintf
      "GATE FAILED: per-kind send attribution does not sum to the engine \
       counter@.";
    exit exit_gate
  end

let trace_analytics_cmd =
  let doc =
    "E16: causal trace analytics over the standard fault scenarios (clean, \
     faulty, crash-recovery).  Reports the fraction of convergence rounds \
     explained by the critical path and the per-kind byte budget, and gates \
     on the exact-sum invariant (non-query attribution = engine send \
     counter)."
  in
  let kinds_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "kinds-csv" ] ~docv:"FILE"
          ~doc:"Also write the per-(scenario, kind) attribution table as CSV.")
  in
  Cmd.v
    (Cmd.info "trace-analytics" ~doc)
    Term.(
      const trace_analytics $ seed_arg $ dataset_arg $ hosts_arg $ kinds_csv
      $ csv_arg)

let main_cmd =
  let doc = "Bandwidth-constrained cluster search (ICDCS 2011 reproduction)." in
  Cmd.group
    (Cmd.info "bwcluster" ~version:"1.0.0" ~doc)
    [
      accuracy_cmd;
      relerr_cmd;
      tradeoff_cmd;
      treeness_cmd;
      scalability_cmd;
      embedding_cmd;
      oracle_cmd;
      overhead_cmd;
      routing_cmd;
      robustness_cmd;
      restart_cmd;
      overload_cmd;
      snapshot_cmd;
      restore_cmd;
      dynamic_cmd;
      trace_cmd;
      metrics_cmd;
      analyze_cmd;
      trace_diff_cmd;
      trace_analytics_cmd;
      gen_cmd;
      export_tree_cmd;
      inspect_cmd;
      query_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
