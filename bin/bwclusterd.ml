(* bwclusterd: the transport shell around the deterministic daemon core.

   Everything impure lives here — Unix domain sockets, the wall clock,
   signals — mapped onto the pure Bwc_daemon.Reactor interface: wall
   time is quantized into ticks, socket lines are fed through
   Reactor.handle_line, and each tick's outputs are written back to the
   connections that asked.  The reactor itself (admission, deadlines,
   backpressure, degradation, watchdog) never sees a file descriptor,
   which is what makes the scripted tests and E17 byte-replayable.

   Exit codes follow bwcluster's convention: 0 success, 1 I/O failure
   (socket bind, snapshot write), 124 bad command line. *)

open Cmdliner
module Rng = Bwc_stats.Rng
module Tbl = Bwc_stats.Tbl
module Registry = Bwc_obs.Registry
module Dynamic = Bwc_core.Dynamic
module Codec = Bwc_persist.Codec
module Reactor = Bwc_daemon.Reactor
module Wire = Bwc_daemon.Wire
module Lifecycle = Bwc_daemon.Lifecycle

let exit_io = 1

let logf fmt = Printf.eprintf ("bwclusterd: " ^^ fmt ^^ "\n%!")

(* ----- dataset (same names as bwcluster) ----- *)

let load_dataset ~seed name =
  match name with
  | "hp" -> Bwc_dataset.Planetlab.hp_like ~seed
  | "umd" -> Bwc_dataset.Planetlab.umd_like ~seed
  | "hp-small" ->
      Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed)
        ~name:"HP-like-small"
        { Bwc_dataset.Planetlab.hp_target with n = 120 }
  | "umd-small" ->
      Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed)
        ~name:"UMD-like-small"
        { Bwc_dataset.Planetlab.umd_target with n = 120 }
  | path -> (
      try Bwc_dataset.Dataset.load_csv ~name:(Filename.basename path) path
      with Sys_error msg ->
        logf "cannot read dataset: %s" msg;
        exit exit_io)

(* ----- serve ----- *)

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let send_response fd response =
  let line = Wire.render response ^ "\n" in
  let len = String.length line in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd line off (len - off) in
      go (off + n)
  in
  go 0

let serve socket_path dataset seed snapshot_path keep tick_ms snapshot_every
    hosts index_mode =
  let ds = load_dataset ~seed dataset in
  let ds =
    match hosts with
    | Some h when h < Bwc_dataset.Dataset.size ds ->
        Bwc_dataset.Dataset.random_subset ds ~rng:(Rng.create seed) h
    | _ -> ds
  in
  let metrics = Registry.create () in
  let cold () =
    logf "cold start: building %s (n=%d) from scratch"
      ds.Bwc_dataset.Dataset.name
      (Bwc_dataset.Dataset.size ds);
    Dynamic.create ~seed ~index_mode ds
  in
  let boot = Lifecycle.boot ~metrics ~keep ~path:snapshot_path ~cold () in
  List.iter
    (fun (g, e) ->
      logf "snapshot generation %d rejected: %s" g (Codec.error_to_string e))
    boot.Lifecycle.rejected;
  (match boot.Lifecycle.generation with
  | Some g ->
      logf "warm restart from snapshot generation %d (%d members, ready now)"
        g
        (Dynamic.member_count boot.Lifecycle.system)
  | None -> logf "serving cold (%d members)" (Dynamic.member_count boot.Lifecycle.system));
  (match Dynamic.index_mode boot.Lifecycle.system with
  | Dynamic.Exact -> logf "index mode: exact"
  | Dynamic.Coreset k ->
      logf "index mode: coreset (k=%d; degraded answers carry lo/hi bounds)" k);
  let config =
    { Reactor.default_config with Reactor.snapshot_every; seed }
  in
  let reactor = Reactor.create ~metrics config boot.Lifecycle.system in
  (* the listener *)
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     if Sys.file_exists socket_path then Sys.remove socket_path;
     Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
     Unix.listen listen_fd 16
   with
  | Unix.Unix_error (err, _, _) ->
      logf "cannot bind %s: %s" socket_path (Unix.error_message err);
      exit exit_io
  | Sys_error msg ->
      logf "cannot bind %s: %s" socket_path msg;
      exit exit_io);
  logf "listening on %s (tick %dms, snapshot %s, keep %d)" socket_path tick_ms
    snapshot_path keep;
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_conn = ref 0 in
  let want_drain = ref false in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> want_drain := true)))
    [ Sys.sigterm; Sys.sigint ];
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let tick_len = float_of_int tick_ms /. 1000. in
  let tick_of_wall () =
    int_of_float ((Unix.gettimeofday () -. t0) /. tick_len)
  in
  let last_tick = ref (-1) in
  let close_conn id c =
    Hashtbl.remove conns id;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let deliver (o : Reactor.output) =
    match Hashtbl.find_opt conns o.Reactor.conn with
    | None -> () (* connection went away; the response is dropped at the door *)
    | Some c -> (
        try send_response c.fd o.Reactor.response
        with Unix.Unix_error _ -> close_conn o.Reactor.conn c)
  in
  let maybe_snapshot () =
    if Reactor.take_snapshot_request reactor then
      match
        Lifecycle.snapshot ~metrics ~keep ~path:snapshot_path
          (Reactor.system reactor)
      with
      | Ok bytes -> logf "snapshot written (%d bytes)" bytes
      | Error e -> logf "snapshot failed: %s" (Codec.error_to_string e)
  in
  let advance_clock () =
    let now = tick_of_wall () in
    (* never skip tick numbers: queued deadlines are measured in ticks *)
    while !last_tick < now do
      incr last_tick;
      List.iter deliver (Reactor.tick reactor ~now:!last_tick);
      maybe_snapshot ()
    done
  in
  let handle_input id c =
    let bytes = Bytes.create 4096 in
    let n = try Unix.read c.fd bytes 0 4096 with Unix.Unix_error _ -> 0 in
    if n = 0 then close_conn id c
    else begin
      Buffer.add_subbytes c.buf bytes 0 n;
      let data = Buffer.contents c.buf in
      let parts = String.split_on_char '\n' data in
      let rec feed = function
        | [] -> ()
        | [ rest ] ->
            Buffer.clear c.buf;
            Buffer.add_string c.buf rest
        | line :: tl ->
            let line = String.trim line in
            if line <> "" then
              List.iter deliver
                (Reactor.handle_line reactor ~now:(max 0 !last_tick) ~conn:id
                   line);
            feed tl
      in
      feed parts
    end
  in
  let rec loop () =
    advance_clock ();
    if !want_drain then begin
      want_drain := false;
      logf "drain requested: refusing new work, finishing the queue";
      Reactor.drain reactor ~now:(max 0 !last_tick)
    end;
    if Reactor.mode reactor = Reactor.Draining && Reactor.drained reactor then begin
      (match
         Lifecycle.snapshot ~metrics ~keep ~path:snapshot_path
           (Reactor.system reactor)
       with
      | Ok bytes -> logf "final snapshot written (%d bytes)" bytes
      | Error e ->
          logf "final snapshot failed: %s" (Codec.error_to_string e);
          exit exit_io);
      Tbl.iter_sorted
        (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Sys.remove socket_path with Sys_error _ -> ());
      logf "drained and stopped"
    end
    else begin
      let fds =
        listen_fd :: Tbl.fold_sorted (fun _ c acc -> c.fd :: acc) conns []
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let next_boundary = (float_of_int (!last_tick + 1) *. tick_len) -. elapsed in
      let timeout = Float.max 0.001 (Float.min next_boundary tick_len) in
      let readable, _, _ =
        try Unix.select fds [] [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = listen_fd then begin
            match Unix.accept listen_fd with
            | cfd, _ ->
                incr next_conn;
                Hashtbl.replace conns !next_conn
                  { fd = cfd; buf = Buffer.create 256 }
            | exception Unix.Unix_error _ -> ()
          end
          else
            (* accept-order traversal: lines that raced into the same
               tick are fed to the reactor oldest connection first *)
            Tbl.iter_sorted
              (fun id c -> if c.fd = fd then handle_input id c)
              (Hashtbl.copy conns))
        readable;
      loop ()
    end
  in
  loop ()

(* ----- client ----- *)

let client socket_path timeout lines =
  let lines =
    match lines with
    | [] ->
        let rec slurp acc =
          match In_channel.input_line In_channel.stdin with
          | Some l -> slurp (l :: acc)
          | None -> List.rev acc
        in
        slurp []
    | ls -> ls
  in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  if lines = [] then begin
    logf "nothing to send";
    exit Cmd.Exit.cli_error
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with Unix.Unix_error (err, _, _) ->
     logf "cannot connect to %s: %s" socket_path (Unix.error_message err);
     exit exit_io);
  List.iter
    (fun l ->
      let msg = l ^ "\n" in
      ignore (Unix.write_substring fd msg 0 (String.length msg)))
    lines;
  (* the protocol is strictly one response line per request line *)
  let expect = List.length lines in
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 1024 in
  let received = ref 0 in
  let bytes = Bytes.create 4096 in
  let rec pump () =
    if !received < expect then begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then begin
        logf "timed out after %d/%d responses" !received expect;
        exit exit_io
      end;
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ ->
          logf "timed out after %d/%d responses" !received expect;
          exit exit_io
      | _ -> (
          let n = try Unix.read fd bytes 0 4096 with Unix.Unix_error _ -> 0 in
          if n = 0 then begin
            logf "server closed the connection after %d/%d responses"
              !received expect;
            exit exit_io
          end
          else begin
            Buffer.add_subbytes buf bytes 0 n;
            let data = Buffer.contents buf in
            let parts = String.split_on_char '\n' data in
            let rec consume = function
              | [] -> ()
              | [ rest ] ->
                  Buffer.clear buf;
                  Buffer.add_string buf rest
              | line :: tl ->
                  print_endline line;
                  incr received;
                  consume tl
            in
            consume parts;
            pump ()
          end)
    end
  in
  pump ();
  Unix.close fd

(* ----- cmdliner ----- *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/bwclusterd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let serve_cmd =
  let doc =
    "Serve the line protocol on a Unix domain socket.  Boots warm from the \
     newest verifiable snapshot generation (cold otherwise), quantizes wall \
     time into reactor ticks, sheds overload with typed refusals, serves \
     index answers with an explicit staleness bound while the aggregation \
     reconverges, and drains then snapshots on SIGTERM/SIGINT or a \
     SHUTDOWN request."
  in
  let dataset =
    Arg.(
      value
      & opt string "hp-small"
      & info [ "dataset" ] ~docv:"NAME"
          ~doc:"Dataset for a cold start: hp, umd, hp-small, umd-small, or a \
                CSV path.")
  in
  let snapshot =
    Arg.(
      value
      & opt string "/tmp/bwclusterd.bwcsnap"
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:"Snapshot image path (rotated generations live beside it).")
  in
  let keep =
    Arg.(
      value & opt int 3
      & info [ "keep" ] ~docv:"K" ~doc:"Rotated snapshot generations to keep.")
  in
  let tick_ms =
    Arg.(
      value & opt int 20
      & info [ "tick-ms" ] ~docv:"MS" ~doc:"Milliseconds per reactor tick.")
  in
  let snapshot_every =
    Arg.(
      value
      & opt (some int) (Some 500)
      & info [ "snapshot-every" ] ~docv:"TICKS"
          ~doc:"Periodic snapshot cadence in ticks (omit for none).")
  in
  let hosts =
    Arg.(
      value
      & opt (some int) (Some 48)
      & info [ "hosts" ] ~docv:"N"
          ~doc:"Subset the dataset to N hosts before serving.")
  in
  let index_mode =
    let parse s =
      match s with
      | "exact" -> Ok Dynamic.Exact
      | "coreset" -> Ok (Dynamic.Coreset Bwc_core.Find_cluster.Coreset.default_k)
      | _ when String.length s > 8 && String.sub s 0 8 = "coreset:" -> (
          match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
          | Some k when k >= 1 -> Ok (Dynamic.Coreset k)
          | _ -> Error (`Msg "coreset summary size must be a positive integer"))
      | _ -> Error (`Msg "expected 'exact', 'coreset' or 'coreset:K'")
    in
    let print ppf = function
      | Dynamic.Exact -> Format.pp_print_string ppf "exact"
      | Dynamic.Coreset k -> Format.fprintf ppf "coreset:%d" k
    in
    Arg.(
      value
      & opt (conv (parse, print)) Dynamic.Exact
      & info [ "index-mode" ] ~docv:"MODE"
          ~doc:
            "Cluster index for a cold start: $(b,exact) (O(n^2) maintained \
             all-pairs index) or $(b,coreset)[:K] (O(n*K) sharded summaries; \
             degraded answers carry certified lo/hi size bounds).  A warm \
             restart keeps the snapshot's mode.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg $ dataset $ seed_arg $ snapshot $ keep
      $ tick_ms $ snapshot_every $ hosts $ index_mode)

let client_cmd =
  let doc =
    "Send request lines to a running daemon and print one response line per \
     request (reads stdin when no lines are given).  Exits 1 on timeout or \
     a dropped connection."
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"How long to wait for all responses.")
  in
  let lines =
    Arg.(value & pos_all string [] & info [] ~docv:"LINE" ~doc:"Request lines.")
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const client $ socket_arg $ timeout $ lines)

let main_cmd =
  let doc =
    "Deterministic bandwidth-cluster daemon: admission control, deadlines, \
     backpressure, graceful degradation under overload."
  in
  Cmd.group (Cmd.info "bwclusterd" ~version:"1.0.0" ~doc) [ serve_cmd; client_cmd ]

let () = exit (Cmd.eval main_cmd)
