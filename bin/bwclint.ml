(* bwclint — determinism/robustness/complexity linter for this codebase.

   Two analysis layers: per-file syntactic rules over the Parsetree, and
   whole-program passes (cross-module call graph, interprocedural
   determinism taint with witness paths, domain-safety audit) over all
   files in one run.  Exit codes: 0 clean, 1 findings (fresh relative to
   the baseline, when one is given), 2 internal error / parse failure,
   124 usage error. *)

module Engine = Bwc_analysis.Engine
module Report = Bwc_analysis.Report
module Baseline = Bwc_analysis.Baseline
module Sarif = Bwc_analysis.Sarif
module Taint = Bwc_analysis.Taint
module Callgraph = Bwc_analysis.Callgraph
module Effects = Bwc_analysis.Effects
module Finding = Bwc_analysis.Finding

open Cmdliner

let paths_arg =
  let doc = "Files or directories to lint (expanded recursively)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench"; "test"; "examples" ]
       & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc =
    "Also write a JSON report to $(docv) (use $(b,-) for stdout)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let sarif_arg =
  let doc =
    "Also write a SARIF 2.1.0 report to $(docv) (use $(b,-) for stdout); \
     witness paths become code flows, audited suppressions carry their \
     justification."
  in
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let baseline_arg =
  let doc =
    "Compare findings against the committed baseline $(docv): findings \
     already in the baseline are carried (reported but not fatal); fresh \
     findings and baseline entries no longer produced fail the run."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_baseline_arg =
  let doc =
    "Rewrite the $(b,--baseline) file from the current findings (canonical \
     sorted JSON) and exit 0."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let taint_arg =
  let doc =
    "Print the closed per-function effect table (which functions \
     transitively read the clock, use randomness, iterate unordered \
     tables, ...) before the findings."
  in
  Arg.(value & flag & info [ "taint" ] ~doc)

let no_wp_arg =
  let doc =
    "Disable the whole-program passes (call graph, determinism taint, \
     domain-safety audit); run only the per-file syntactic rules."
  in
  Arg.(value & flag & info [ "no-wp" ] ~doc)

let list_rules_arg =
  let doc = "Print the rule catalog and exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let quiet_arg =
  let doc = "Suppress the human-readable report on stdout." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let with_out file k =
  match file with
  | None -> ()
  | Some "-" ->
      k Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          k ppf;
          Format.pp_print_flush ppf ())

let print_taint_table ppf paths =
  let sources =
    List.map (fun p -> (p, Engine.read_file p)) (Engine.discover paths)
  in
  let parsed =
    List.filter_map
      (fun (path, src) ->
        match Engine.parse ~path src with
        | Ok file -> Some (path, file, Bwc_analysis.Suppress.scan src)
        | Error _ -> None)
      sources
  in
  let supp_of = Hashtbl.create 16 in
  List.iter (fun (p, _, s) -> Hashtbl.replace supp_of p s) parsed;
  let audited ~rule ~file ~line =
    match Hashtbl.find_opt supp_of file with
    | None -> None
    | Some supp -> (
        match Bwc_analysis.Suppress.find supp ~rule ~line with
        | Some e -> Some e.Bwc_analysis.Suppress.reason
        | None -> None)
  in
  let cg = Callgraph.build (List.map (fun (p, f, _) -> (p, f)) parsed) in
  let summaries = Taint.summaries ~audited cg in
  Format.fprintf ppf "effect summaries (%d tainted function%s):@."
    (List.length summaries)
    (if List.length summaries = 1 then "" else "s");
  List.iter
    (fun (s : Taint.summary) ->
      Format.fprintf ppf "  %s (%s)@." s.sum_def.Callgraph.name
        s.sum_def.Callgraph.def_file;
      List.iter
        (fun ((kind : Effects.kind), (e : Taint.entry)) ->
          let witness =
            List.map
              (fun id ->
                match Callgraph.find cg id with
                | Some d -> d.Callgraph.name
                | None -> id)
              e.Taint.e_path
          in
          Format.fprintf ppf "    %-36s %s (%s:%d) via %s@."
            (Effects.kind_label kind) e.Taint.e_src.Effects.s_detail
            e.Taint.e_src.Effects.s_file e.Taint.e_src.Effects.s_line
            (String.concat " -> " witness))
        s.Taint.sum_effects)
    summaries

let usage_error fmt =
  Format.kfprintf
    (fun _ ->
      Format.pp_print_flush Format.err_formatter ();
      Cmd.Exit.cli_error)
    Format.err_formatter
    ("bwclint: " ^^ fmt ^^ "@.")

let run paths json sarif baseline update_baseline taint no_wp list_rules quiet
    =
  if list_rules then begin
    Report.rule_catalog Format.std_formatter ();
    0
  end
  else begin
    let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
    match missing with
    | p :: _ -> usage_error "no such file or directory: %s" p
    | [] when update_baseline && baseline = None ->
        usage_error "--update-baseline requires --baseline FILE"
    | [] -> (
        let result = Engine.lint_paths ~whole_program:(not no_wp) paths in
        if taint then print_taint_table Format.std_formatter paths;
        (* the gate: everything, or only what the baseline doesn't audit *)
        let baseline_entries =
          match baseline with
          | None -> Ok None
          | Some file when update_baseline -> Ok (Some (file, []))
          | Some file -> (
              match Baseline.load ~path:file with
              | Ok entries -> Ok (Some (file, entries))
              | Error msg -> Error msg)
        in
        match baseline_entries with
        | Error msg ->
            Format.eprintf "bwclint: cannot read baseline: %s@." msg;
            2
        | Ok None ->
            if not quiet then begin
              Report.human Format.std_formatter result;
              Report.suppression_audit Format.std_formatter result
            end;
            with_out json (fun ppf -> Report.json ppf result);
            with_out sarif (fun ppf ->
                Format.pp_print_string ppf
                  (Sarif.to_string ~suppressed:result.Engine.suppressed
                     result.Engine.findings));
            if result.Engine.parse_failed then 2
            else if result.Engine.findings <> [] then 1
            else 0
        | Ok (Some (file, entries)) ->
            if update_baseline then begin
              Baseline.save ~path:file
                (Baseline.of_findings result.Engine.findings);
              if not quiet then
                Format.printf "bwclint: baseline %s updated (%d entr%s)@." file
                  (List.length (Baseline.of_findings result.Engine.findings))
                  (if
                     List.length (Baseline.of_findings result.Engine.findings)
                     = 1
                   then "y"
                   else "ies");
              if result.Engine.parse_failed then 2 else 0
            end
            else begin
              let diff = Baseline.apply entries result.Engine.findings in
              let gated =
                { result with Engine.findings = diff.Baseline.fresh }
              in
              if not quiet then begin
                Report.human Format.std_formatter gated;
                if diff.Baseline.matched <> [] then
                  Format.printf "%d finding%s carried by baseline %s@."
                    (List.length diff.Baseline.matched)
                    (if List.length diff.Baseline.matched = 1 then "" else "s")
                    file;
                List.iter
                  (fun (e : Baseline.entry) ->
                    Format.printf
                      "baseline entry no longer produced: %s %s %s (run \
                       --update-baseline)@."
                      e.Baseline.b_rule e.Baseline.b_file e.Baseline.b_key)
                  diff.Baseline.gone;
                Report.suppression_audit Format.std_formatter result
              end;
              with_out json (fun ppf -> Report.json ppf gated);
              with_out sarif (fun ppf ->
                  Format.pp_print_string ppf
                    (Sarif.to_string
                       ~suppressed:
                         (result.Engine.suppressed
                         @ List.map
                             (fun ((f : Finding.t), _) ->
                               (f, "carried by committed baseline"))
                             diff.Baseline.matched)
                       diff.Baseline.fresh));
              if result.Engine.parse_failed then 2
              else if diff.Baseline.fresh <> [] || diff.Baseline.gone <> []
              then 1
              else 0
            end)
  end

let cmd =
  let doc =
    "static lint pass enforcing determinism, robustness and complexity \
     invariants"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Walks the Parsetree of every OCaml source under PATH..., runs the \
         per-file rule catalog, then builds the cross-module call graph and \
         runs the whole-program passes: interprocedural determinism taint \
         (hot-path functions transitively reaching nondeterminism sources, \
         with full witness paths) and the domain-safety audit (module-level \
         mutable state that blocks multicore sharding).  See \
         $(b,--list-rules).";
      `P
        "Findings are suppressed inline with \
         (* bwclint: allow <rule> -- <reason> *) on the offending line or \
         the line above.  The reason is required (its absence is itself \
         reported) and is surfaced by the JSON/SARIF reporters; stale \
         suppressions that match nothing in any pass are reported too.";
      `P
        "With $(b,--baseline), pre-existing audited findings are carried \
         while anything fresh — or any baseline entry that no longer \
         reproduces — fails the run.";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 on findings, 2 on internal/parse errors, 124 \
          on usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "bwclint" ~version:"%%VERSION%%" ~doc ~man)
    Term.(
      const run $ paths_arg $ json_arg $ sarif_arg $ baseline_arg
      $ update_baseline_arg $ taint_arg $ no_wp_arg $ list_rules_arg
      $ quiet_arg)

let () = Stdlib.exit (Cmd.eval' cmd)
