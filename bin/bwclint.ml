(* bwclint — determinism/robustness/complexity linter for this codebase.

   Parses every .ml/.mli under the given paths with compiler-libs and
   checks them against the Bwc_analysis rule catalog.  Exit codes:
   0 clean, 1 findings, 2 parse failure (CI treats both 1 and 2 as red). *)

module Engine = Bwc_analysis.Engine
module Report = Bwc_analysis.Report

open Cmdliner

let paths_arg =
  let doc = "Files or directories to lint (expanded recursively)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench"; "test" ]
       & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc =
    "Also write a JSON report to $(docv) (use $(b,-) for stdout)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let list_rules_arg =
  let doc = "Print the rule catalog and exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let quiet_arg =
  let doc = "Suppress the human-readable report on stdout." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let write_json result = function
  | None -> ()
  | Some "-" -> Report.json Format.std_formatter result
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          Report.json ppf result;
          Format.pp_print_flush ppf ())

let run paths json list_rules quiet =
  if list_rules then begin
    Report.rule_catalog Format.std_formatter ();
    0
  end
  else begin
    let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
    match missing with
    | p :: _ ->
        Format.eprintf "bwclint: no such file or directory: %s@." p;
        2
    | [] ->
        let result = Engine.lint_paths paths in
        if not quiet then Report.human Format.std_formatter result;
        write_json result json;
        if result.Engine.parse_failed then 2
        else if result.Engine.findings <> [] then 1
        else 0
  end

let cmd =
  let doc =
    "static lint pass enforcing determinism, robustness and complexity \
     invariants"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Walks the Parsetree of every OCaml source under PATH... and \
         reports violations of the bwcluster invariant catalog (seeded \
         determinism, total functions in protocol paths, linear-time \
         accumulation, library purity).  See $(b,--list-rules).";
      `P
        "Findings are suppressed inline with (* bwclint: allow <rule> *) \
         on the offending line or the line above; stale suppressions are \
         themselves reported.";
    ]
  in
  Cmd.v
    (Cmd.info "bwclint" ~version:"%%VERSION%%" ~doc ~man)
    Term.(const run $ paths_arg $ json_arg $ list_rules_arg $ quiet_arg)

let () = Stdlib.exit (Cmd.eval' cmd)
