(** Bandwidth datasets: a named full symmetric matrix of pairwise available
    bandwidth (Mbps) between hosts, plus the preprocessing steps the paper
    applies to its PlanetLab measurements (Sec. IV):
    symmetrization by averaging forward/reverse, and extraction of complete
    submatrices. *)

type t = {
  name : string;
  bw : Bwc_metric.Dmatrix.t;  (** pairwise bandwidth, [infinity] diagonal *)
}

val make : name:string -> Bwc_metric.Dmatrix.t -> t
(** Validates that all off-diagonal bandwidths are positive and finite. *)

val size : t -> int

val bw : t -> int -> int -> float
(** Pairwise bandwidth; [infinity] for [i = j]. *)

val metric : ?c:float -> t -> Bwc_metric.Space.t
(** The dataset under the rational transform [d = C / BW]. *)

val symmetrize_asymmetric :
  name:string -> (int -> int -> float) -> int -> t
(** [symmetrize_asymmetric ~name raw n] builds a dataset from an asymmetric
    measurement function by averaging [raw i j] and [raw j i]
    (the paper's preprocessing of pathChirp matrices). *)

val subset : t -> ?name:string -> int array -> t
(** Principal sub-dataset on the given host indices. *)

val random_subset : t -> rng:Bwc_stats.Rng.t -> int -> t
(** [random_subset t ~rng m] keeps [m] uniformly chosen hosts (used by the
    scalability experiment, Sec. IV-D). *)

val complete_submatrix : name:string -> (int -> int -> float option) -> int -> t
(** [complete_submatrix ~name raw n] mimics the paper's extraction of a full
    n-to-n matrix from an incomplete measurement set: greedily drops the
    host with the most missing measurements until the remaining matrix is
    complete, then symmetrizes.  Raises [Failure] if fewer than two hosts
    survive. *)

val bandwidth_values : t -> float array
(** All off-diagonal bandwidths (each unordered pair once). *)

val bandwidth_cdf : t -> Bwc_stats.Cdf.t

val percentile_range : t -> lo:float -> hi:float -> float * float
(** [percentile_range t ~lo ~hi] is the [(lo, hi)] percentile pair of the
    bandwidth distribution — the paper draws query constraints [b] between
    the 20th and 80th percentiles. *)

val save_csv : t -> string -> unit
(** Writes the full square matrix, one row per line, [inf] on the
    diagonal. *)

val load_csv : name:string -> string -> t
(** Reads a matrix written by {!save_csv} (or any full square CSV of
    positive bandwidths); enforces symmetry by averaging. *)
