module Rng = Bwc_stats.Rng

type params = {
  routers : int;
  core_weight_lo : float;
  core_weight_hi : float;
  access_mu : float;
  access_sigma : float;
}

let default_params =
  {
    routers = 24;
    core_weight_lo = 1.0;
    core_weight_hi = 40.0;
    access_mu = 4.6;
    access_sigma = 0.7;
  }

(* Router topology: random recursive tree (router r > 0 attaches to a
   uniform earlier router), which yields realistic skewed degrees. *)
let build_routers ~rng p =
  let parent = Array.make p.routers (-1) in
  let weight = Array.make p.routers 0.0 in
  for r = 1 to p.routers - 1 do
    parent.(r) <- Rng.int rng r;
    let log_lo = log p.core_weight_lo and log_hi = log p.core_weight_hi in
    weight.(r) <- exp (Rng.uniform rng log_lo log_hi)
  done;
  (parent, weight)

(* Distance between routers via root paths: depth arrays are tiny, so the
   naive LCA walk is fine. *)
let router_distances ~parent ~weight routers =
  let dist_to_root = Array.make routers 0.0 in
  let depth = Array.make routers 0 in
  for r = 1 to routers - 1 do
    dist_to_root.(r) <- dist_to_root.(parent.(r)) +. weight.(r);
    depth.(r) <- depth.(parent.(r)) + 1
  done;
  let dist a b =
    let rec lca a b =
      if a = b then a
      else if depth.(a) >= depth.(b) then lca parent.(a) b
      else lca a parent.(b)
    in
    let l = lca a b in
    dist_to_root.(a) +. dist_to_root.(b) -. (2.0 *. dist_to_root.(l))
  in
  dist

let distance_matrix ~rng ?(params = default_params) ~n () =
  if params.routers < 1 then invalid_arg "Hier_tree: routers < 1";
  let parent, weight = build_routers ~rng params in
  let router_dist = router_distances ~parent ~weight params.routers in
  let host_router = Array.init n (fun _ -> Rng.int rng params.routers) in
  let host_access =
    Array.init n (fun _ -> Rng.log_normal rng ~mu:params.access_mu ~sigma:params.access_sigma)
  in
  Bwc_metric.Dmatrix.of_fun n ~diag:0.0 (fun i j ->
      host_access.(i) +. router_dist host_router.(i) host_router.(j) +. host_access.(j))

let generate ~rng ?params ?(c = Bwc_metric.Bandwidth.default_c) ~n ~name () =
  let dm = distance_matrix ~rng ?params ~n () in
  let bwm =
    Bwc_metric.Dmatrix.of_fun n ~diag:Float.infinity (fun i j ->
        c /. Bwc_metric.Dmatrix.get dm i j)
  in
  Dataset.make ~name bwm
