(** Latency datasets for the future-work extension (Sec. VI): latency is
    also approximately a tree metric, so the same clustering machinery
    answers latency-constrained queries.

    The encoding reuses {!Dataset}: a latency of [ms] milliseconds is
    stored as the pseudo-bandwidth [C / ms], so the rational transform
    recovers distances proportional to latency and a latency bound of
    [d] ms becomes the bandwidth constraint [C / d]. *)

type params = {
  routers : int;
  core_ms_lo : float;    (** router-router delays, log-uniform, ms *)
  core_ms_hi : float;
  access_mu : float;     (** host access delays, log-normal (log-ms) *)
  access_sigma : float;
  jitter_sigma : float;  (** multiplicative log-normal measurement jitter *)
}

val default_params : params
(** Metro access of a few ms, long-haul up to ~60 ms, mild jitter. *)

val generate :
  rng:Bwc_stats.Rng.t -> ?params:params -> ?c:float -> n:int -> name:string -> unit ->
  Dataset.t

val latency_ms : ?c:float -> Dataset.t -> int -> int -> float
(** Decodes the stored pseudo-bandwidth back to milliseconds. *)

val bandwidth_constraint_for : ?c:float -> float -> float
(** [bandwidth_constraint_for ms] is the pseudo-bandwidth constraint
    expressing "latency at most [ms] milliseconds". *)
