(** Controlled degradation of treeness.

    Real PlanetLab bandwidth is only {e approximately} a tree metric.  We
    reproduce that by applying independent multiplicative log-normal noise
    to each unordered pair of a perfect tree-metric dataset; [sigma = 0]
    leaves the dataset untouched and increasing [sigma] increases the
    paper's [epsilon_avg] treeness statistic monotonically (verified by
    tests and swept by {!Treeness}). *)

val multiplicative :
  rng:Bwc_stats.Rng.t -> sigma:float -> ?name:string -> Dataset.t -> Dataset.t
(** [multiplicative ~rng ~sigma ds] multiplies each pairwise bandwidth by
    an independent [exp (sigma * N(0,1))] factor. *)

val relative_clamp :
  rng:Bwc_stats.Rng.t -> amplitude:float -> ?name:string -> Dataset.t -> Dataset.t
(** [relative_clamp ~rng ~amplitude ds] perturbs each bandwidth uniformly
    in [[bw*(1-amplitude), bw*(1+amplitude)]]; a bounded alternative used
    for the dynamic-network simulations, where drift must not explode. *)

val host_drift :
  rng:Bwc_stats.Rng.t -> amplitude:float -> ?name:string -> Dataset.t -> Dataset.t
(** [host_drift ~rng ~amplitude ds] models changing load on access links:
    each host [i] gets a drift term [a_i] added to its leaf distance, so
    the distance of every pair moves by [a_i + a_j] (with
    [d' = C/bw' = C/bw + a_i + a_j]).  Unlike per-pair noise this
    preserves an exact tree metric exactly, which is what physically
    changing link capacities do.  [amplitude] scales the drift relative
    to a quarter of the median pairwise distance; negative drifts are
    clamped so every bandwidth stays positive and finite. *)
