(** The access-link bottleneck model (Sec. II-C, second evidence).

    Each host has an access-link capacity and the bandwidth between two
    hosts is the minimum of their capacities — the theoretical topology
    model for which the induced space is a {e perfect} tree metric
    (Ramasubramanian et al., MSR-TR-2008-124).  Used as a ground-truth
    tree-metric generator in tests and as the epsilon = 0 extreme of the
    treeness sweep. *)

val of_capacities : name:string -> float array -> Dataset.t
(** [of_capacities ~name caps] has [BW(u,v) = min caps.(u) caps.(v)].
    Capacities must be positive and finite. *)

val generate :
  rng:Bwc_stats.Rng.t -> ?mu:float -> ?sigma:float -> n:int -> unit -> Dataset.t
(** [generate ~rng ~mu ~sigma ~n ()] draws capacities from a log-normal
    distribution ([mu] and [sigma] in log-space; defaults give a median of
    ~55 Mbps with a heavy tail, a shape similar to PlanetLab access
    links). *)
