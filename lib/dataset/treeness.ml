module Rng = Bwc_stats.Rng

type entry = {
  dataset : Dataset.t;
  sigma : float;
  epsilon_avg : float;
}

let default_sigmas = [ 0.0; 0.1; 0.2; 0.4; 0.8; 1.6 ]

let measure ?(epsilon_samples = 20_000) ~rng ds =
  Bwc_metric.Fourpoint.epsilon_avg ~samples:epsilon_samples ~rng (Dataset.metric ds)

let sweep ~rng ?(sigmas = default_sigmas) ?epsilon_samples ~n () =
  let base =
    Hier_tree.generate ~rng ~n ~name:(Printf.sprintf "tree-base-%d" n) ()
  in
  List.map
    (fun sigma ->
      let dataset =
        if Float.equal sigma 0.0 then base
        else
          Noise.multiplicative ~rng:(Rng.split rng) ~sigma
            ~name:(Printf.sprintf "treeness-sigma%.2f" sigma)
            base
      in
      { dataset; sigma; epsilon_avg = measure ?epsilon_samples ~rng dataset })
    sigmas

let subset_with_treeness ~rng ?epsilon_samples ds ~size ~tries ~high =
  if tries < 1 then invalid_arg "Treeness.subset_with_treeness: tries < 1";
  let better a b = if high then a > b else a < b in
  let best = ref None in
  for _ = 1 to tries do
    let sub = Dataset.random_subset ds ~rng size in
    let eps = measure ?epsilon_samples ~rng sub in
    match !best with
    | Some (_, e) when not (better eps e) -> ()
    | _ -> best := Some (sub, eps)
  done;
  match !best with
  | Some (dataset, epsilon_avg) -> { dataset; sigma = Float.nan; epsilon_avg }
  | None -> assert false
