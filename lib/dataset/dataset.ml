module Dmatrix = Bwc_metric.Dmatrix

type t = {
  name : string;
  bw : Dmatrix.t;
}

let validate bwm =
  Dmatrix.iter_pairs bwm (fun i j v ->
      if not (Float.is_finite v) || v <= 0.0 then
        invalid_arg
          (Printf.sprintf "Dataset: bandwidth (%d,%d) = %g must be positive and finite" i j v))

let make ~name bwm =
  validate bwm;
  { name; bw = bwm }

let size t = Dmatrix.size t.bw
let bw t i j = if i = j then Float.infinity else Dmatrix.get t.bw i j
let metric ?c t = Bwc_metric.Space.of_bandwidth ?c t.bw

let symmetrize_asymmetric ~name raw n =
  let bwm =
    Dmatrix.of_fun n ~diag:Float.infinity (fun i j ->
        Bwc_metric.Bandwidth.symmetrize (raw i j) (raw j i))
  in
  make ~name bwm

let subset t ?name idx =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s/sub%d" t.name (Array.length idx)
  in
  make ~name (Dmatrix.sub t.bw idx)

let random_subset t ~rng m =
  let idx = Bwc_stats.Rng.sample_without_replacement rng m (size t) in
  subset t idx

let complete_submatrix ~name raw n =
  let alive = Array.make n true in
  let missing i j = alive.(i) && alive.(j) && i <> j && raw i j = None in
  let missing_count i =
    let c = ref 0 in
    for j = 0 to n - 1 do
      if missing i j || missing j i then incr c
    done;
    !c
  in
  let rec prune () =
    let worst = ref (-1) and worst_count = ref 0 in
    for i = 0 to n - 1 do
      if alive.(i) then begin
        let c = missing_count i in
        if c > !worst_count then begin
          worst := i;
          worst_count := c
        end
      end
    done;
    if !worst_count > 0 then begin
      alive.(!worst) <- false;
      prune ()
    end
  in
  prune ();
  let idx = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  let k = Array.length idx in
  if k < 2 then failwith "Dataset.complete_submatrix: fewer than two complete hosts";
  let value i j =
    match raw idx.(i) idx.(j) with
    | Some v -> v
    | None -> assert false
  in
  symmetrize_asymmetric ~name value k

let bandwidth_values t = Dmatrix.off_diagonal_values t.bw
let bandwidth_cdf t = Bwc_stats.Cdf.make (bandwidth_values t)

let percentile_range t ~lo ~hi =
  let values = bandwidth_values t in
  (Bwc_stats.Summary.percentile values lo, Bwc_stats.Summary.percentile values hi)

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let n = size t in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if j > 0 then output_char oc ',';
          if i = j then output_string oc "inf"
          else output_string oc (Printf.sprintf "%.6f" (Dmatrix.get t.bw i j))
        done;
        output_char oc '\n'
      done)

let load_csv ~name path =
  let ic = open_in path in
  let rows =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rows = ref [] in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" then begin
               let cells = String.split_on_char ',' line in
               let parse s =
                 let s = String.trim s in
                 if s = "inf" then Float.infinity else float_of_string s
               in
               rows := Array.of_list (List.map parse cells) :: !rows
             end
           done
         with End_of_file -> ());
        Array.of_list (List.rev !rows))
  in
  let n = Array.length rows in
  if n = 0 then failwith "Dataset.load_csv: empty file";
  Array.iter
    (fun r -> if Array.length r <> n then failwith "Dataset.load_csv: non-square matrix")
    rows;
  symmetrize_asymmetric ~name (fun i j -> rows.(i).(j)) n
