module Rng = Bwc_stats.Rng
module Dmatrix = Bwc_metric.Dmatrix

type target = {
  n : int;
  p20 : float;
  p80 : float;
  noise_sigma : float;
}

let hp_target = { n = 190; p20 = 15.0; p80 = 75.0; noise_sigma = 0.05 }
let umd_target = { n = 317; p20 = 30.0; p80 = 110.0; noise_sigma = 0.04 }

(* One candidate dataset for a given access-link spread.  The rng is copied
   so that every calibration probe sees the same random stream and the
   search is a deterministic function of the seed. *)
let candidate ~rng ~name ~access_sigma target =
  let rng = Rng.copy rng in
  let params = { Hier_tree.default_params with access_sigma } in
  let base = Hier_tree.generate ~rng ~params ~n:target.n ~name () in
  if target.noise_sigma > 0.0 then
    Noise.multiplicative ~rng ~sigma:target.noise_sigma ~name base
  else base

let spread ds =
  let lo, hi = Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  hi /. lo

(* Uniformly scaling all bandwidths preserves the metric structure exactly
   (distances scale by 1/s), so percentile position can be fixed after the
   spread is right. *)
let rescale ~factor ~name ds =
  Dataset.make ~name (Dmatrix.map_off_diagonal ds.Dataset.bw (fun _ _ v -> v *. factor))

let generate ~rng ~name target =
  if target.n < 4 then invalid_arg "Planetlab.generate: n < 4";
  if target.p20 <= 0.0 || target.p80 <= target.p20 then
    invalid_arg "Planetlab.generate: need 0 < p20 < p80";
  let target_ratio = target.p80 /. target.p20 in
  (* Secant search on the access-link spread parameter: the p80/p20 ratio
     grows monotonically with it. *)
  let f sigma = log (spread (candidate ~rng ~name ~access_sigma:sigma target)) in
  let goal = log target_ratio in
  let rec secant s0 y0 s1 y1 iter =
    if iter = 0 || Float.abs (y1 -. goal) < 0.02 then s1
    else begin
      let slope = (y1 -. y0) /. (s1 -. s0) in
      let s2 =
        if Float.abs slope < 1e-6 then s1 *. 1.5
        else Float.max 0.05 (s1 +. ((goal -. y1) /. slope))
      in
      secant s1 y1 s2 (f s2) (iter - 1)
    end
  in
  let s0 = 0.3 and s1 = 1.0 in
  let sigma = secant s0 (f s0) s1 (f s1) 8 in
  let ds = candidate ~rng ~name ~access_sigma:sigma target in
  let lo, hi = Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  let factor = sqrt (target.p20 *. target.p80) /. sqrt (lo *. hi) in
  rescale ~factor ~name ds

let hp_like ~seed = generate ~rng:(Rng.create seed) ~name:"HP-PlanetLab-like" hp_target
let umd_like ~seed = generate ~rng:(Rng.create seed) ~name:"UMD-PlanetLab-like" umd_target
