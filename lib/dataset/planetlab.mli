(** Synthetic stand-ins for the paper's two PlanetLab datasets.

    The originals (HP-PlanetLab, 190 hosts, and UMD-PlanetLab, 317 hosts;
    pathChirp available-bandwidth matrices) are not publicly available, so
    we generate datasets with the properties the experiments actually
    depend on: the host count, the bandwidth range the paper draws query
    constraints from (20th-80th percentile: 15-75 Mbps for HP, 30-110 Mbps
    for UMD), and approximate treeness.  The generator is a hierarchical
    ISP tree (a perfect tree metric) degraded by multiplicative noise and
    calibrated so that the bandwidth percentiles match the targets.  See
    DESIGN.md, "Substitutions". *)

type target = {
  n : int;
  p20 : float;          (** 20th-percentile bandwidth, Mbps *)
  p80 : float;          (** 80th-percentile bandwidth, Mbps *)
  noise_sigma : float;  (** log-normal noise level; controls epsilon_avg *)
}

val hp_target : target
(** 190 hosts, 15-75 Mbps. *)

val umd_target : target
(** 317 hosts, 30-110 Mbps. *)

val generate : rng:Bwc_stats.Rng.t -> name:string -> target -> Dataset.t
(** Calibrated generation: matches [p20]/[p80] within a few percent. *)

val hp_like : seed:int -> Dataset.t
(** [generate] with {!hp_target}, named ["HP-PlanetLab-like"]. *)

val umd_like : seed:int -> Dataset.t
(** [generate] with {!umd_target}, named ["UMD-PlanetLab-like"]. *)
