module Rng = Bwc_stats.Rng
module Dmatrix = Bwc_metric.Dmatrix

let perturb ~factor ~name ds =
  let bwm = Dmatrix.map_off_diagonal ds.Dataset.bw (fun _ _ v -> v *. factor ()) in
  Dataset.make ~name bwm

let multiplicative ~rng ~sigma ?name ds =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s+noise%.2f" ds.Dataset.name sigma
  in
  perturb ~factor:(fun () -> exp (sigma *. Rng.gaussian rng)) ~name ds

let relative_clamp ~rng ~amplitude ?name ds =
  if amplitude < 0.0 || amplitude >= 1.0 then
    invalid_arg "Noise.relative_clamp: amplitude must be in [0, 1)";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s+drift%.2f" ds.Dataset.name amplitude
  in
  perturb ~factor:(fun () -> Rng.uniform rng (1.0 -. amplitude) (1.0 +. amplitude)) ~name ds

let host_drift ~rng ~amplitude ?name ds =
  if amplitude < 0.0 then invalid_arg "Noise.host_drift: negative amplitude";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s+hostdrift%.2f" ds.Dataset.name amplitude
  in
  let c = Bwc_metric.Bandwidth.default_c in
  let n = Dataset.size ds in
  let dist i j = c /. Dataset.bw ds i j in
  let all = Array.make (n * (n - 1) / 2) 0.0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      all.(!pos) <- dist i j;
      incr pos
    done
  done;
  let scale = amplitude *. Bwc_stats.Summary.median all /. 4.0 in
  (* Clamp each host's negative drift to half its closest distance, so
     perturbed distances stay strictly positive. *)
  let closest = Array.make n Float.infinity in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then closest.(i) <- Float.min closest.(i) (dist i j)
    done
  done;
  let drift =
    Array.init n (fun i ->
        let a = Rng.uniform rng (-.scale) scale in
        Float.max a (-.(closest.(i) /. 2.0 -. 1e-9)))
  in
  let bwm =
    Bwc_metric.Dmatrix.of_fun n ~diag:Float.infinity (fun i j ->
        c /. (dist i j +. drift.(i) +. drift.(j)))
  in
  Dataset.make ~name bwm
