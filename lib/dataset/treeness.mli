(** Dataset families with swept treeness, for the Fig. 5 experiment.

    The paper builds six 100-node datasets with different [epsilon_avg] by
    selecting subsets of HP-PlanetLab; we instead sweep the noise level of
    the synthetic generator, which provides direct, monotonic control of
    [epsilon_avg] over a comparable range. *)

type entry = {
  dataset : Dataset.t;
  sigma : float;        (** the noise level that produced it *)
  epsilon_avg : float;  (** measured treeness (sampled) *)
}

val default_sigmas : float list
(** Six levels: [0.0; 0.1; 0.2; 0.4; 0.8; 1.6]. *)

val sweep :
  rng:Bwc_stats.Rng.t -> ?sigmas:float list -> ?epsilon_samples:int -> n:int -> unit ->
  entry list
(** [sweep ~rng ~sigmas ~n ()] generates one dataset per noise level from a
    shared perfect-tree base (same hosts, same base topology), measures
    [epsilon_avg] of each and returns them ordered as given. *)

val subset_with_treeness :
  rng:Bwc_stats.Rng.t -> ?epsilon_samples:int -> Dataset.t -> size:int -> tries:int ->
  high:bool -> entry
(** The paper's original mechanism, also provided: draw [tries] random
    subsets of [size] hosts and keep the one with the highest (or lowest,
    [high = false]) measured [epsilon_avg]. *)
