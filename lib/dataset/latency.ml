type params = {
  routers : int;
  core_ms_lo : float;
  core_ms_hi : float;
  access_mu : float;
  access_sigma : float;
  jitter_sigma : float;
}

let default_params =
  {
    routers = 20;
    core_ms_lo = 2.0;
    core_ms_hi = 60.0;
    access_mu = 1.2;
    access_sigma = 0.5;
    jitter_sigma = 0.04;
  }

let generate ~rng ?(params = default_params) ?(c = Bwc_metric.Bandwidth.default_c) ~n
    ~name () =
  let hier =
    {
      Hier_tree.routers = params.routers;
      core_weight_lo = params.core_ms_lo;
      core_weight_hi = params.core_ms_hi;
      access_mu = params.access_mu;
      access_sigma = params.access_sigma;
    }
  in
  let ms = Hier_tree.distance_matrix ~rng ~params:hier ~n () in
  let bwm =
    Bwc_metric.Dmatrix.of_fun n ~diag:Float.infinity (fun i j ->
        let jitter =
          if params.jitter_sigma > 0.0 then
            exp (params.jitter_sigma *. Bwc_stats.Rng.gaussian rng)
          else 1.0
        in
        c /. (Bwc_metric.Dmatrix.get ms i j *. jitter))
  in
  Dataset.make ~name bwm

let latency_ms ?(c = Bwc_metric.Bandwidth.default_c) ds i j =
  if i = j then 0.0 else c /. Dataset.bw ds i j

let bandwidth_constraint_for ?(c = Bwc_metric.Bandwidth.default_c) ms =
  if ms <= 0.0 then invalid_arg "Latency.bandwidth_constraint_for: ms <= 0";
  c /. ms
