let of_capacities ~name caps =
  let n = Array.length caps in
  Array.iter
    (fun c ->
      if not (Float.is_finite c) || c <= 0.0 then
        invalid_arg "Access_link.of_capacities: capacities must be positive and finite")
    caps;
  let bwm =
    Bwc_metric.Dmatrix.of_fun n ~diag:Float.infinity (fun i j -> Float.min caps.(i) caps.(j))
  in
  Dataset.make ~name bwm

let generate ~rng ?(mu = 4.0) ?(sigma = 0.9) ~n () =
  let caps = Array.init n (fun _ -> Bwc_stats.Rng.log_normal rng ~mu ~sigma) in
  of_capacities ~name:(Printf.sprintf "access-link-%d" n) caps
