(** Hierarchical ISP-topology generator: a random edge-weighted tree of
    routers with hosts attached as leaves.

    Distances are path lengths in the tree, so the induced metric is a
    perfect tree metric by construction (Theorem 2.1); the rational
    transform turns it into a bandwidth matrix.  Compared to the
    access-link model this produces a richer internal structure (shared
    backbone paths), which is what makes decentralized aggregation and
    query routing non-trivial. *)

type params = {
  routers : int;        (** inner routers; at least 1 *)
  core_weight_lo : float;
  core_weight_hi : float;  (** router-router edge weights, log-uniform *)
  access_mu : float;
  access_sigma : float;    (** host access edges, log-normal *)
}

val default_params : params

val generate :
  rng:Bwc_stats.Rng.t -> ?params:params -> ?c:float -> n:int -> name:string -> unit ->
  Dataset.t
(** [generate ~rng ~params ~c ~n ~name ()] builds the topology, computes
    all pairwise host distances and returns bandwidths [c / d].  [c]
    defaults to {!Bwc_metric.Bandwidth.default_c}. *)

val distance_matrix :
  rng:Bwc_stats.Rng.t -> ?params:params -> n:int -> unit -> Bwc_metric.Dmatrix.t
(** The raw tree-metric distance matrix, before the bandwidth transform;
    exposed for tests that need a guaranteed tree metric. *)
