type base_strategy = [ `Root | `Random ]
type end_strategy = [ `Exact | `Anchor_guided of int ]

let gromov ~d ~x ~y ~z = (d z x +. d z y -. d x y) /. 2.0

type outcome = {
  base : int;
  end_node : int;
  measurements : int;
}

let select_end ~d ~anchor ~strategy ~x ~z ~candidates =
  let measured = ref 0 in
  let score y =
    measured := !measured + 1;
    gromov ~d ~x ~y ~z
  in
  match strategy with
  | `Exact ->
      let best = ref None in
      List.iter
        (fun y ->
          if y <> z && y <> x then begin
            let g = score y in
            match !best with
            | Some (_, bg) when bg >= g -> ()
            | _ -> best := Some (y, g)
          end)
        candidates;
      (match !best with
      | Some (y, _) -> (y, !measured)
      | None -> invalid_arg "Builder.select_end: no candidate")
  | `Anchor_guided budget ->
      (* Budgeted best-first search over the anchor tree.  A plain greedy
         descent stalls on Gromov-product plateaus (every host whose path
         from the base diverges from [x] at the same point ties), so we
         expand the most promising frontier host until the measurement
         budget is spent, returning the best host seen.  Each expansion
         costs one measurement of [d x _], which is exactly what a real
         joining node would probe. *)
      let root = Anchor.root anchor in
      let eval y = if y = z || y = x then Float.neg_infinity else score y in
      (* Frontier as a sorted association list: tiny compared to n. *)
      let best_host = ref root and best_g = ref (eval root) in
      let frontier = ref [ (!best_g, root) ] in
      let expansions = ref 0 in
      let pop () =
        match !frontier with
        | [] -> None
        | (g, h) :: rest ->
            frontier := rest;
            Some (g, h)
      in
      let push g h =
        let rec ins = function
          | [] -> [ (g, h) ]
          | (g', h') :: rest when g' > g -> (g', h') :: ins rest
          | l -> (g, h) :: l
        in
        frontier := ins !frontier
      in
      let continue = ref true in
      while !continue do
        match pop () with
        | None -> continue := false
        | Some (_, h) ->
            incr expansions;
            if !expansions > budget then continue := false
            else
              List.iter
                (fun c ->
                  let g = eval c in
                  if g > !best_g || (Float.equal !best_g Float.neg_infinity && g > Float.neg_infinity)
                  then begin
                    best_g := g;
                    best_host := c
                  end;
                  if g > Float.neg_infinity then push g c)
                (Anchor.children anchor h)
      done;
      if Float.equal !best_g Float.neg_infinity then invalid_arg "Builder.select_end: no candidate"
      else (!best_host, !measured)

let add_host ~d ~rng ~base ~strategy ~tree ~anchor ~labels x =
  let present = Tree.hosts tree in
  match present with
  | [] ->
      let (_ : Tree.vertex) = Tree.add_first_host tree ~host:x in
      Anchor.set_root anchor x;
      Hashtbl.replace labels x Label.root;
      { base = x; end_node = x; measurements = 0 }
  | [ only ] ->
      let w = d only x in
      let _hv, _inner, anchor_host, offset =
        Tree.add_host tree ~host:x
          ~between:(Tree.vertex_of_host tree only, Tree.vertex_of_host tree only)
          ~at:0.0 ~leaf_weight:w
      in
      (* [Tree.add_host] special-cases the two-vertex tree and ignores
         [between]/[at]; the root acts as the inner node. *)
      Anchor.add anchor ~parent:anchor_host x;
      Hashtbl.replace labels x
        (Label.extend (Hashtbl.find labels anchor_host) ~host:x ~offset ~leaf:w);
      { base = only; end_node = only; measurements = 1 }
  | _ :: _ :: _ ->
      let z =
        match base with
        | `Root -> Anchor.root anchor
        | `Random -> Bwc_stats.Rng.choose rng (Array.of_list present)
      in
      let y, m = select_end ~d ~anchor ~strategy ~x ~z ~candidates:present in
      let gp = gromov ~d ~x ~y ~z in
      let leaf = Float.max 0.0 (gromov ~d ~x:y ~y:z ~z:x) in
      let _hv, _inner, anchor_host, offset =
        Tree.add_host tree ~host:x
          ~between:(Tree.vertex_of_host tree z, Tree.vertex_of_host tree y)
          ~at:gp ~leaf_weight:leaf
      in
      Anchor.add anchor ~parent:anchor_host x;
      Hashtbl.replace labels x
        (Label.extend (Hashtbl.find labels anchor_host) ~host:x ~offset ~leaf);
      (* +2 accounts for measuring x against the base and the end node
         during placement (already counted if the search touched them). *)
      { base = z; end_node = y; measurements = m + 1 }
