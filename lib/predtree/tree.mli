(** The prediction tree: a growable edge-weighted tree whose leaves are
    hosts and whose inner nodes are created by node additions (Sec. II-D).

    Every edge remembers its {e owner}: the host whose addition created it.
    When an edge is split by a later insertion both halves keep the owner;
    this is exactly the information needed to define anchor nodes ("the
    node that was previously added along with the edge that the new node's
    inner node is located on").

    Vertices are identified by dense integer ids.  Distances are exact path
    sums; the tree is small (at most [2n] vertices for [n] hosts) so the
    O(tree) traversals here are never a bottleneck — hot paths use
    {!Label} distances instead. *)

type t

type vertex = int

type kind =
  | Host of int  (** a participating host, identified by its host id *)
  | Inner        (** an attachment point created by an insertion *)

val create : unit -> t

val add_first_host : t -> host:int -> vertex
(** Initialises the tree with its first (root) host.  Must be called
    exactly once, first. *)

val add_host :
  t -> host:int -> between:vertex * vertex -> at:float -> leaf_weight:float ->
  vertex * vertex * int * float
(** [add_host t ~host ~between:(z, y) ~at ~leaf_weight] places the new
    host's inner node on the path from [z] to [y] at distance [at] from
    [z] (clamped into [[0, dist z y]]), splitting the edge it lands on, and
    hangs the host leaf off it with [leaf_weight] (clamped to
    non-negative).  With a single-vertex tree (only the root host), [at]
    is ignored and the host is attached directly to the root with the
    root as its inner node.

    Returns [(host_vertex, inner_vertex, anchor_host, anchor_offset)]
    where [anchor_host] owns the edge the inner node landed on (the root
    host for the second insertion) and [anchor_offset] is the tree
    distance from the anchor host's own vertex to the inner node. *)

val remove_host : t -> host:int -> (unit, [ `Has_dependents ]) result
(** Removes a host leaf and splices out its inner node.  Fails with
    [`Has_dependents] if other subtrees are attached to edges this host
    owns (their anchor would dangle); the caller then falls back to a
    rebuild.  Removing the root host is also refused this way. *)

val vertex_of_host : t -> int -> vertex
(** Raises [Not_found] for unknown hosts. *)

val kind : t -> vertex -> kind
val hosts : t -> int list
(** All host ids currently in the tree. *)

val vertex_count : t -> int

val dist : t -> vertex -> vertex -> float
(** Exact path-sum distance. *)

val host_dist : t -> int -> int -> float
(** [dist] between two hosts' vertices. *)

val neighbors : t -> vertex -> (vertex * float * int) list
(** Adjacent vertices with edge weight and owner host. *)

val degree : t -> vertex -> int

val is_tree : t -> bool
(** Structural sanity: connected and acyclic (used by tests). *)

val total_weight : t -> float

(** {2 Persistence}

    A structural dump of the geometry, exact enough that
    [of_dump (dump t)] is indistinguishable from [t]: edge slots keep
    their ids (dead slots included, preserving adjacency-list order) and
    the host map is dumped separately from the vertex kinds (a crash
    eviction can orphan a [Host] kind).  All floats round-trip exactly
    when the caller serializes them losslessly. *)

type edge_dump = {
  e_a : vertex;
  e_b : vertex;
  e_weight : float;
  e_owner : int;
  e_live : bool;
}

type dump = {
  d_kinds : int array;  (** host id per vertex; [-1] = inner *)
  d_edges : edge_dump list;  (** in edge-id order, dead slots included *)
  d_hosts : (int * vertex) list;  (** host -> vertex, ascending host id *)
}

val dump : t -> dump

val of_dump : dump -> t
(** Validates vertex ranges, edge weights, host-map consistency and
    treeness; raises [Invalid_argument] on any violation (a corrupt
    snapshot must never build a broken tree). *)

val pp : Format.formatter -> t -> unit

val to_dot : ?label:string -> t -> string
(** Graphviz rendering of the live tree: hosts as boxes, inner nodes as
    points, edges annotated with weight and owner. *)
