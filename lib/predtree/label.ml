type entry = {
  host : int;
  offset : float;
  leaf : float;
}

type t = entry array

let root = [||]

let extend label ~host ~offset ~leaf =
  Array.append label [| { host; offset; leaf } |]

let host label =
  let m = Array.length label in
  if m = 0 then None else Some label.(m - 1).host

let depth = Array.length

(* Distance from the labelled host up to the inner node of entry [i]:
   climb the own leaf edge, then hop from inner node to inner node along
   each intermediate anchor's leaf edge. *)
let descent label i =
  let m = Array.length label in
  let acc = ref label.(m - 1).leaf in
  for k = m - 2 downto i do
    acc := !acc +. (label.(k).leaf -. label.(k + 1).offset)
  done;
  !acc

let common_prefix la lb =
  let m = Stdlib.min (Array.length la) (Array.length lb) in
  let rec loop i = if i < m && la.(i).host = lb.(i).host then loop (i + 1) else i in
  loop 0

let dist la lb =
  let ma = Array.length la and mb = Array.length lb in
  let j = common_prefix la lb in
  if j = ma && j = mb then 0.0
  else if j = ma then lb.(j).offset +. descent lb j
  else if j = mb then la.(j).offset +. descent la j
  else descent la j +. descent lb j +. Float.abs (la.(j).offset -. lb.(j).offset)

let dist_to_root label = dist label root

let chain label = Array.to_list (Array.map (fun e -> e.host) label)

let valid label =
  let ok = ref true in
  Array.iteri
    (fun i e ->
      if e.offset < 0.0 || e.leaf < 0.0 then ok := false;
      let parent_leaf = if i = 0 then 0.0 else label.(i - 1).leaf in
      if e.offset > parent_leaf +. 1e-6 then ok := false)
    label;
  !ok

let pp ppf label =
  Format.fprintf ppf "(root)";
  Array.iter
    (fun e -> Format.fprintf ppf " -%.2f-[t]-%.2f-> h%d" e.offset e.leaf e.host)
    label
