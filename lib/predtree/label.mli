(** Distance labels (Sec. II-D).

    A host's distance label records its anchor chain — all anchor nodes on
    the path from the root to the host in the anchor tree — together with
    the geometry of each hop: where the host's inner node sits on its
    anchor's leaf edge, and the weight of its own leaf edge.  A label "is
    equivalent to a partial prediction tree", so the distance between two
    hosts is computable from their two labels alone, with no global state;
    this is what lets Algorithm 2 rank remote nodes by predicted distance
    locally.

    Entry [i] of a label describes anchor-chain member [w_{i+1}] (the root
    [w_0] is implicit and has an empty label):
    its inner node sits on the leaf edge of [w_i] at distance [offset]
    from the host [w_i], and its own leaf edge has weight [leaf].
    Invariant: [0 <= offset <= leaf of the previous entry] (the root's
    conceptual leaf edge has length 0, so first entries carry
    [offset = 0]). *)

type entry = {
  host : int;     (** the anchor-chain member this entry describes *)
  offset : float; (** distance from the previous anchor's host vertex to
                      this member's inner node, along that anchor's leaf
                      edge *)
  leaf : float;   (** weight of this member's own leaf edge *)
}

type t = entry array
(** Chain from just below the root down to the labelled host itself; the
    root's label is [[||]]. *)

val root : t

val extend : t -> host:int -> offset:float -> leaf:float -> t
(** [extend anchor_label ~host ~offset ~leaf] is the label of a node
    anchored under the host labelled by [anchor_label]. *)

val host : t -> int option
(** The labelled host ([None] for the root's label). *)

val depth : t -> int
(** Anchor-tree depth (0 for the root). *)

val dist : t -> t -> float
(** Predicted tree distance between the two labelled hosts.  Exact: equals
    {!Tree.dist} on the tree both labels came from (property-tested). *)

val dist_to_root : t -> float

val chain : t -> int list
(** Anchor chain host ids, root child first, labelled host last. *)

val valid : t -> bool
(** Checks the geometric invariant above. *)

val pp : Format.formatter -> t -> unit
