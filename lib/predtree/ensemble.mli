(** An ensemble of prediction trees with median aggregation.

    A single Gromov-product tree commits to each node placement based on a
    handful of measurements, so measurement noise produces a heavy tail of
    pairs embedded far too close together ("false close" pairs) — and a
    clustering algorithm then eagerly collects exactly those pairs.  The
    authors' prediction framework counters this with heuristics; we use
    the classic ensemble form: build a few independent trees (different
    insertion orders and bases) and predict with the {e median} of their
    distances.  Three trees already cut the rate of 2x-overestimated
    bandwidths by an order of magnitude (see the E8 ablation).

    Each host's state is one distance label {e per tree} — still constant
    per-host information, just a small constant factor more of it.  The
    anchor-tree overlay of the {e primary} (first) tree is the one the
    clustering protocols run on. *)

type t

val default_size : int
(** 3. *)

val build :
  rng:Bwc_stats.Rng.t -> ?mode:Framework.mode -> ?size:int -> ?members:int list ->
  ?metrics:Bwc_obs.Registry.t -> Bwc_metric.Space.t -> t
(** [metrics] is shared by every tree; tree [i] charges its construction
    cost to [predtree.measurements{tree=i}], so per-tree counts stay
    distinct and {!measurements_total} still sums them. *)

val size : t -> int
(** Number of trees. *)

val hosts : t -> int
(** Size of the underlying space (the id range), not the member count. *)

val members : t -> int list
(** Current members, insertion order of the primary tree. *)

val is_member : t -> int -> bool

val add_host : rng:Bwc_stats.Rng.t -> t -> int -> unit
(** Joins the host into every tree of the ensemble. *)

val remove_host : rng:Bwc_stats.Rng.t -> t -> int -> unit
(** Removes the host from every tree (see {!Framework.remove_host}). *)

val evict_host : t -> int -> (int * int) list
(** Crash repair: evicts the host from every tree without a rebuild (see
    {!Framework.evict_host}); orphaned overlay children regraft to their
    grandparent.  Returns the {e primary} overlay's
    [(child, new_parent)] regrafts — the repair the clustering protocols
    must re-aggregate over. *)

val primary : t -> Framework.t
val frameworks : t -> Framework.t array

val labels : t -> int -> Label.t array
(** One label per tree, tree-index aligned across hosts. *)

val label_dist : Label.t array -> Label.t array -> float
(** Median over tree-wise label distances.  Both arrays must have the
    same length (labels of two hosts from the same ensemble). *)

val predicted : t -> int -> int -> float
val predicted_bw : ?c:float -> t -> int -> int -> float
val measured : t -> int -> int -> float

val anchor_neighbors : t -> int -> int list
(** Overlay neighborhood in the primary tree. *)

val measurements_total : t -> int
(** Summed over trees: the ensemble's full construction cost. *)

val relative_errors : ?c:float -> t -> float array
(** Per-pair relative bandwidth-prediction error of the median
    predictor. *)

(** {2 Persistence} *)

type dump = Framework.dump array

val dump : t -> dump

val of_dump : ?metrics:Bwc_obs.Registry.t -> Bwc_metric.Space.t -> dump -> t
(** Reconstructs every tree over [space] (tree [i] charges future
    maintenance to [predtree.measurements{tree=i}] in [metrics], as
    {!build} does) and validates that all trees agree on membership;
    raises [Invalid_argument] otherwise. *)
