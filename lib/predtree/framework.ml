module Rng = Bwc_stats.Rng
module Space = Bwc_metric.Space
module Registry = Bwc_obs.Registry

type mode = {
  base : Builder.base_strategy;
  end_search : Builder.end_strategy;
}

let default_mode = { base = `Random; end_search = `Anchor_guided 16 }
let centralized_mode = { base = `Root; end_search = `Exact }

type t = {
  space : Space.t;
  mode : mode;
  mutable tree : Tree.t;
  mutable anchor : Anchor.t;
  labels : (int, Label.t) Hashtbl.t;
  (* reverse insertion order (newest member first): joins prepend in
     O(1) instead of copying the whole list with [@ [h]]; [members]
     flips it back to root-first order on demand *)
  mutable rev_order : int list;
  c_measurements : Registry.Counter.t;
}

let insert ~rng t host =
  let outcome =
    Builder.add_host ~d:t.space.Space.dist ~rng ~base:t.mode.base
      ~strategy:t.mode.end_search ~tree:t.tree ~anchor:t.anchor ~labels:t.labels host
  in
  Registry.Counter.incr ~by:outcome.Builder.measurements t.c_measurements

let check_host t h =
  if h < 0 || h >= t.space.Space.n then invalid_arg "Framework: host id out of range"

let build ~rng ?(mode = default_mode) ?members ?metrics ?(metric_labels = []) space =
  let order =
    match members with
    | None -> Array.to_list (Rng.permutation rng space.Space.n)
    | Some ms ->
        let ms = Array.of_list (List.sort_uniq compare ms) in
        Rng.shuffle rng ms;
        Array.to_list ms
  in
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  let t =
    {
      space;
      mode;
      tree = Tree.create ();
      anchor = Anchor.create ();
      labels = Hashtbl.create space.Space.n;
      rev_order = List.rev order;
      c_measurements =
        Registry.counter metrics ~labels:metric_labels "predtree.measurements";
    }
  in
  List.iter
    (fun h ->
      check_host t h;
      insert ~rng t h)
    order;
  t

let size t = Hashtbl.length t.labels
let tree t = t.tree
let anchor t = t.anchor
let is_member t h = Hashtbl.mem t.labels h
let members t = List.rev t.rev_order

let label t h =
  match Hashtbl.find_opt t.labels h with
  | Some l -> l
  | None -> invalid_arg "Framework.label: unknown host"

let insertion_order t = Array.of_list (members t)
let predicted t i j = Label.dist (label t i) (label t j)

let predicted_bw ?c t i j =
  if i = j then Float.infinity else Bwc_metric.Bandwidth.of_distance ?c (predicted t i j)

let measured t i j = t.space.Space.dist i j
let measurements_total t = Registry.Counter.value t.c_measurements

let relative_errors ?c t =
  let members = Array.of_list (members t) in
  let m = Array.length members in
  let out = Array.make (Stdlib.max 1 (m * (m - 1) / 2)) 0.0 in
  let pos = ref 0 in
  for a = 0 to m - 1 do
    for b = a + 1 to m - 1 do
      let i = members.(a) and j = members.(b) in
      let real = Bwc_metric.Bandwidth.of_distance ?c (measured t i j) in
      let pred = Bwc_metric.Bandwidth.of_distance ?c (predicted t i j) in
      out.(!pos) <- Float.abs (real -. pred) /. real;
      incr pos
    done
  done;
  Array.sub out 0 !pos

let rebuild ~rng t =
  t.tree <- Tree.create ();
  Hashtbl.reset t.labels;
  t.anchor <- Anchor.create ();
  List.iter (insert ~rng t) (members t)

let add_host ~rng t h =
  check_host t h;
  if is_member t h then invalid_arg "Framework.add_host: already a member";
  t.rev_order <- h :: t.rev_order;
  insert ~rng t h

(* Splice the leaf out when nothing anchors beneath it; otherwise rebuild
   the whole framework from the remaining members (their labels would
   dangle). *)
let remove_host ~rng t h =
  check_host t h;
  if not (is_member t h) then invalid_arg "Framework.remove_host: not a member";
  if size t <= 1 then invalid_arg "Framework.remove_host: cannot empty the framework";
  t.rev_order <- List.filter (fun x -> x <> h) t.rev_order;
  if Anchor.root t.anchor = h then rebuild ~rng t
  else begin
    match Tree.remove_host t.tree ~host:h with
    | Ok () -> (
        match Anchor.remove_leaf t.anchor h with
        | Ok () -> Hashtbl.remove t.labels h
        | Error `Not_leaf ->
            (* the two structures disagree; cannot happen, but fail safe *)
            rebuild ~rng t)
    | Error `Has_dependents -> rebuild ~rng t
  end

(* Crash-time removal: a dead host cannot be asked to hand over its role
   in the embedding, so (unlike [remove_host]) eviction never rebuilds.
   Membership and the label are dropped, the anchor overlay is repaired
   locally (orphans regraft to the grandparent), and the prediction-tree
   geometry the host contributed is retained whenever other placements
   depend on it — survivors' labels stay valid, the dead host just can no
   longer be queried. *)
let evict_host t h =
  check_host t h;
  if not (is_member t h) then invalid_arg "Framework.evict_host: not a member";
  if size t <= 1 then invalid_arg "Framework.evict_host: cannot empty the framework";
  t.rev_order <- List.filter (fun x -> x <> h) t.rev_order;
  Hashtbl.remove t.labels h;
  (match Tree.remove_host t.tree ~host:h with
  | Ok () | Error `Has_dependents -> ());
  match Anchor.remove_node t.anchor h with
  | Ok regrafts -> regrafts
  | Error `Last_host ->
      (* unreachable: [size t > 1] means the anchor holds another host *)
      assert false

(* Labels depend on ancestors' geometry, so after a leaf-level change only
   the re-added host's label is recomputed by [insert]; a structural change
   (dependents) invalidates descendants' labels and forces a rebuild. *)
let refresh_host ~rng t h =
  check_host t h;
  if not (is_member t h) then invalid_arg "Framework.refresh_host: not a member";
  if Anchor.root t.anchor = h then rebuild ~rng t
  else begin
    let removable =
      match Tree.remove_host t.tree ~host:h with
      | Ok () -> (
          match Anchor.remove_leaf t.anchor h with
          | Ok () ->
              Hashtbl.remove t.labels h;
              true
          | Error `Not_leaf -> false)
      | Error `Has_dependents -> false
    in
    if removable then insert ~rng t h else rebuild ~rng t
  end

let anchor_neighbors t h = Anchor.neighbors t.anchor h

(* ----- persistence ----- *)

type dump = {
  d_mode : mode;
  d_tree : Tree.dump;
  d_anchor : Anchor.dump;
  d_labels : (int * Label.t) list; (* ascending host id *)
  d_rev_order : int list;
}

let dump t =
  {
    d_mode = t.mode;
    d_tree = Tree.dump t.tree;
    d_anchor = Anchor.dump t.anchor;
    d_labels =
      List.map (fun h -> (h, Hashtbl.find t.labels h)) (Bwc_stats.Tbl.sorted_keys t.labels);
    d_rev_order = t.rev_order;
  }

let of_dump ?metrics ?(metric_labels = []) space d =
  let fail msg = invalid_arg ("Framework.of_dump: " ^ msg) in
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  let tree = Tree.of_dump d.d_tree in
  let anchor = Anchor.of_dump d.d_anchor in
  let labels = Hashtbl.create space.Space.n in
  List.iter
    (fun (h, l) ->
      if h < 0 || h >= space.Space.n then fail "label host out of range";
      if Hashtbl.mem labels h then fail "duplicate label";
      if not (Label.valid l) then fail "invalid label geometry";
      Hashtbl.replace labels h l)
    d.d_labels;
  (* membership must agree across all three views of the framework *)
  let members_sorted = List.sort_uniq compare d.d_rev_order in
  if List.length members_sorted <> List.length d.d_rev_order then
    fail "duplicate member";
  if members_sorted <> Bwc_stats.Tbl.sorted_keys labels then
    fail "labels disagree with membership";
  List.iter
    (fun h -> if not (Anchor.mem anchor h) then fail "member missing from overlay")
    members_sorted;
  {
    space;
    mode = d.d_mode;
    tree;
    anchor;
    labels;
    rev_order = d.d_rev_order;
    c_measurements =
      Registry.counter metrics ~labels:metric_labels "predtree.measurements";
  }
