type t = {
  parents : (int, int) Hashtbl.t; (* child -> parent *)
  kids : (int, int list) Hashtbl.t;
  mutable root : int option;
}

let create () = { parents = Hashtbl.create 64; kids = Hashtbl.create 64; root = None }

let set_root t h =
  (match t.root with
  | Some _ -> invalid_arg "Anchor.set_root: root already set"
  | None -> ());
  t.root <- Some h;
  Hashtbl.replace t.kids h []

let root t =
  match t.root with
  | Some r -> r
  | None -> invalid_arg "Anchor.root: empty tree"

let mem t h = Hashtbl.mem t.kids h

let add t ~parent h =
  if not (mem t parent) then invalid_arg "Anchor.add: unknown parent";
  if mem t h then invalid_arg "Anchor.add: host already present";
  Hashtbl.replace t.parents h parent;
  Hashtbl.replace t.kids h [];
  Hashtbl.replace t.kids parent (h :: Hashtbl.find t.kids parent)

let children t h = match Hashtbl.find_opt t.kids h with Some c -> c | None -> []

let parent t h = Hashtbl.find_opt t.parents h

let remove_leaf t h =
  if not (mem t h) then invalid_arg "Anchor.remove_leaf: unknown host";
  if children t h <> [] || t.root = Some h then Error `Not_leaf
  else begin
    (match parent t h with
    | Some p -> Hashtbl.replace t.kids p (List.filter (fun c -> c <> h) (Hashtbl.find t.kids p))
    | None -> ());
    Hashtbl.remove t.parents h;
    Hashtbl.remove t.kids h;
    Ok ()
  end

let size t = Hashtbl.length t.kids

(* ----- self-healing repair primitives -----

   Crash repair re-wires the overlay locally instead of rebuilding it:
   a dead node's orphaned children are re-attached to their grandparent
   (or, for a dead root, to a promoted sibling).  The primitives below
   only move subtrees around — they never touch hosts outside the edited
   neighborhood, which is what makes incremental re-aggregation sound. *)

(* detach [h] from its current parent's child list (root: no-op) *)
let detach t h =
  match parent t h with
  | Some p ->
      Hashtbl.replace t.kids p (List.filter (fun c -> c <> h) (Hashtbl.find t.kids p));
      Hashtbl.remove t.parents h
  | None -> ()

(* re-attach [h] (and implicitly its whole subtree) under [p]; the caller
   guarantees [p] is not inside [h]'s subtree *)
let reattach t h p =
  detach t h;
  Hashtbl.replace t.parents h p;
  Hashtbl.replace t.kids p (h :: Hashtbl.find t.kids p)

(* is [x] inside the subtree rooted at [r]?  Walks the ancestor chain of
   [x]; tree depth bounds the walk. *)
let in_subtree t ~root:r x =
  let rec up y = y = r || (match parent t y with Some p -> up p | None -> false) in
  up x

let regraft t ~host ~parent:p =
  if not (mem t host) then invalid_arg "Anchor.regraft: unknown host";
  if not (mem t p) then invalid_arg "Anchor.regraft: unknown parent";
  if t.root = Some host then Error `Is_root
  else if in_subtree t ~root:host p then Error `Would_cycle
  else begin
    reattach t host p;
    Ok ()
  end

let remove_subtree t h =
  if not (mem t h) then invalid_arg "Anchor.remove_subtree: unknown host";
  if t.root = Some h then Error `Is_root
  else begin
    let rec collect acc x = List.fold_left collect (x :: acc) (children t x) in
    let doomed = collect [] h in
    detach t h;
    List.iter
      (fun x ->
        Hashtbl.remove t.parents x;
        Hashtbl.remove t.kids x)
      doomed;
    Ok (List.sort compare doomed)
  end

let remove_node t h =
  if not (mem t h) then invalid_arg "Anchor.remove_node: unknown host";
  (* ascending child order keeps the regraft sequence (and everything
     derived from it: trace events, dirty marks) deterministic *)
  let cs = List.sort compare (children t h) in
  match parent t h with
  | Some p ->
      let moves = List.map (fun c -> (c, p)) cs in
      List.iter (fun (c, np) -> reattach t c np) moves;
      (* h is a leaf now *)
      detach t h;
      Hashtbl.remove t.kids h;
      Ok moves
  | None -> (
      match cs with
      | [] -> Error `Last_host
      | new_root :: rest ->
          (* promote the smallest orphan to root, regraft its siblings
             beneath it *)
          detach t new_root;
          let moves = List.map (fun c -> (c, new_root)) rest in
          List.iter (fun (c, np) -> reattach t c np) moves;
          Hashtbl.remove t.kids h;
          t.root <- Some new_root;
          Ok moves)

let neighbors t h =
  match parent t h with
  | Some p -> p :: children t h
  | None -> children t h

let degree t h = List.length (neighbors t h)

let depth t h =
  let rec up h acc = match parent t h with Some p -> up p (acc + 1) | None -> acc in
  up h 0

let hosts t = Bwc_stats.Tbl.sorted_keys t.kids

let max_depth t = List.fold_left (fun acc h -> Stdlib.max acc (depth t h)) 0 (hosts t)
let max_degree t = List.fold_left (fun acc h -> Stdlib.max acc (degree t h)) 0 (hosts t)

let iter_edges t f =
  Bwc_stats.Tbl.iter_sorted (fun child p -> f p child) t.parents

(* ----- persistence -----

   Children lists are dumped in stored order (newest first): overlay
   neighbor order is derived from them and decides send order, query
   fallback order and trace order, so a round trip must preserve it
   exactly, not just as a set. *)

type dump = {
  d_root : int option;
  d_nodes : (int * int list) list; (* host -> children (stored order), ascending host *)
}

let dump t =
  {
    d_root = t.root;
    d_nodes = List.map (fun h -> (h, children t h)) (hosts t);
  }

let of_dump d =
  let fail msg = invalid_arg ("Anchor.of_dump: " ^ msg) in
  let t = create () in
  List.iter
    (fun (h, _) ->
      if Hashtbl.mem t.kids h then fail "duplicate host";
      Hashtbl.replace t.kids h [])
    d.d_nodes;
  (match d.d_root with
  | None -> if d.d_nodes <> [] then fail "hosts without a root"
  | Some r -> if not (Hashtbl.mem t.kids r) then fail "root is not a host");
  t.root <- d.d_root;
  List.iter
    (fun (h, cs) ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem t.kids c) then fail "unknown child";
          if Hashtbl.mem t.parents c then fail "child has two parents";
          if c = h then fail "self-parenting";
          Hashtbl.replace t.parents c h)
        cs;
      Hashtbl.replace t.kids h cs)
    d.d_nodes;
  (* every non-root host needs a parent, and parent chains must reach the
     root (no detached cycles) *)
  List.iter
    (fun (h, _) ->
      if d.d_root <> Some h && not (Hashtbl.mem t.parents h) then
        fail "host detached from the root";
      let rec up steps x =
        if steps > Hashtbl.length t.kids then fail "parent cycle"
        else match Hashtbl.find_opt t.parents x with
          | Some p -> up (steps + 1) p
          | None -> if t.root <> Some x then fail "chain misses the root"
      in
      up 0 h)
    d.d_nodes;
  t

let pp ppf t =
  match t.root with
  | None -> Format.fprintf ppf "<empty anchor tree>"
  | Some r ->
      let rec show indent h =
        Format.fprintf ppf "%sh%d@." indent h;
        List.iter (show (indent ^ "  ")) (List.rev (children t h))
      in
      show "" r

let to_dot ?(label = "anchor tree") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph anchor_tree {\n";
  Buffer.add_string buf (Printf.sprintf "  label=%S;\n" label);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  (match t.root with
  | Some r -> Buffer.add_string buf (Printf.sprintf "  h%d [shape=doublecircle];\n" r)
  | None -> ());
  iter_edges t (fun parent child ->
      Buffer.add_string buf (Printf.sprintf "  h%d -> h%d;\n" parent child));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
