type t = {
  parents : (int, int) Hashtbl.t; (* child -> parent *)
  kids : (int, int list) Hashtbl.t;
  mutable root : int option;
}

let create () = { parents = Hashtbl.create 64; kids = Hashtbl.create 64; root = None }

let set_root t h =
  (match t.root with
  | Some _ -> invalid_arg "Anchor.set_root: root already set"
  | None -> ());
  t.root <- Some h;
  Hashtbl.replace t.kids h []

let root t =
  match t.root with
  | Some r -> r
  | None -> invalid_arg "Anchor.root: empty tree"

let mem t h = Hashtbl.mem t.kids h

let add t ~parent h =
  if not (mem t parent) then invalid_arg "Anchor.add: unknown parent";
  if mem t h then invalid_arg "Anchor.add: host already present";
  Hashtbl.replace t.parents h parent;
  Hashtbl.replace t.kids h [];
  Hashtbl.replace t.kids parent (h :: Hashtbl.find t.kids parent)

let children t h = match Hashtbl.find_opt t.kids h with Some c -> c | None -> []

let parent t h = Hashtbl.find_opt t.parents h

let remove_leaf t h =
  if not (mem t h) then invalid_arg "Anchor.remove_leaf: unknown host";
  if children t h <> [] || t.root = Some h then Error `Not_leaf
  else begin
    (match parent t h with
    | Some p -> Hashtbl.replace t.kids p (List.filter (fun c -> c <> h) (Hashtbl.find t.kids p))
    | None -> ());
    Hashtbl.remove t.parents h;
    Hashtbl.remove t.kids h;
    Ok ()
  end

let size t = Hashtbl.length t.kids

let neighbors t h =
  match parent t h with
  | Some p -> p :: children t h
  | None -> children t h

let degree t h = List.length (neighbors t h)

let depth t h =
  let rec up h acc = match parent t h with Some p -> up p (acc + 1) | None -> acc in
  up h 0

let hosts t = Bwc_stats.Tbl.sorted_keys t.kids

let max_depth t = List.fold_left (fun acc h -> Stdlib.max acc (depth t h)) 0 (hosts t)
let max_degree t = List.fold_left (fun acc h -> Stdlib.max acc (degree t h)) 0 (hosts t)

let iter_edges t f =
  Bwc_stats.Tbl.iter_sorted (fun child p -> f p child) t.parents

let pp ppf t =
  match t.root with
  | None -> Format.fprintf ppf "<empty anchor tree>"
  | Some r ->
      let rec show indent h =
        Format.fprintf ppf "%sh%d@." indent h;
        List.iter (show (indent ^ "  ")) (List.rev (children t h))
      in
      show "" r

let to_dot ?(label = "anchor tree") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph anchor_tree {\n";
  Buffer.add_string buf (Printf.sprintf "  label=%S;\n" label);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  (match t.root with
  | Some r -> Buffer.add_string buf (Printf.sprintf "  h%d [shape=doublecircle];\n" r)
  | None -> ());
  iter_edges t (fun parent child ->
      Buffer.add_string buf (Printf.sprintf "  h%d -> h%d;\n" parent child));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
