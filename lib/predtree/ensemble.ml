module Rng = Bwc_stats.Rng
module Space = Bwc_metric.Space

type t = {
  space : Space.t;
  frameworks : Framework.t array;
}

let default_size = 3

let build ~rng ?mode ?(size = default_size) ?members ?metrics space =
  if size < 1 then invalid_arg "Ensemble.build: size < 1";
  {
    space;
    frameworks =
      Array.init size (fun i ->
          Framework.build ~rng:(Rng.split rng) ?mode ?members ?metrics
            ~metric_labels:[ ("tree", string_of_int i) ]
            space);
  }

let size t = Array.length t.frameworks
let hosts t = t.space.Space.n
let members t = Framework.members t.frameworks.(0)
let is_member t h = Framework.is_member t.frameworks.(0) h

let add_host ~rng t h = Array.iter (fun fw -> Framework.add_host ~rng fw h) t.frameworks
let remove_host ~rng t h = Array.iter (fun fw -> Framework.remove_host ~rng fw h) t.frameworks

(* crash repair: every tree evicts; the primary's regrafts describe the
   overlay the protocols run on *)
let evict_host t h =
  let primary_regrafts = ref [] in
  Array.iteri
    (fun i fw ->
      let regrafts = Framework.evict_host fw h in
      if i = 0 then primary_regrafts := regrafts)
    t.frameworks;
  !primary_regrafts
let primary t = t.frameworks.(0)
let frameworks t = Array.copy t.frameworks

let labels t host = Array.map (fun fw -> Framework.label fw host) t.frameworks

let median values =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let m = Array.length sorted in
  if m land 1 = 1 then sorted.(m / 2)
  else (sorted.((m / 2) - 1) +. sorted.(m / 2)) /. 2.0

let label_dist la lb =
  let m = Array.length la in
  if m <> Array.length lb then invalid_arg "Ensemble.label_dist: label arity mismatch";
  median (Array.init m (fun i -> Label.dist la.(i) lb.(i)))

let predicted t i j =
  median (Array.map (fun fw -> Framework.predicted fw i j) t.frameworks)

let predicted_bw ?c t i j =
  if i = j then Float.infinity else Bwc_metric.Bandwidth.of_distance ?c (predicted t i j)

let measured t i j = t.space.Space.dist i j

let anchor_neighbors t h = Framework.anchor_neighbors (primary t) h

let measurements_total t =
  Array.fold_left (fun acc fw -> acc + Framework.measurements_total fw) 0 t.frameworks

(* ----- persistence ----- *)

type dump = Framework.dump array

let dump t = Array.map Framework.dump t.frameworks

let of_dump ?metrics space (d : dump) =
  if Array.length d < 1 then invalid_arg "Ensemble.of_dump: empty ensemble";
  let frameworks =
    Array.mapi
      (fun i fd ->
        Framework.of_dump ?metrics ~metric_labels:[ ("tree", string_of_int i) ] space fd)
      d
  in
  let primary_members = List.sort compare (Framework.members frameworks.(0)) in
  Array.iter
    (fun fw ->
      if List.sort compare (Framework.members fw) <> primary_members then
        invalid_arg "Ensemble.of_dump: trees disagree on membership")
    frameworks;
  { space; frameworks }

let relative_errors ?c t =
  let mem = Array.of_list (members t) in
  let m = Array.length mem in
  let out = Array.make (Stdlib.max 1 (m * (m - 1) / 2)) 0.0 in
  let pos = ref 0 in
  for a = 0 to m - 1 do
    for b = a + 1 to m - 1 do
      let i = mem.(a) and j = mem.(b) in
      let real = Bwc_metric.Bandwidth.of_distance ?c (measured t i j) in
      let pred = Bwc_metric.Bandwidth.of_distance ?c (predicted t i j) in
      out.(!pos) <- Float.abs (real -. pred) /. real;
      incr pos
    done
  done;
  Array.sub out 0 !pos
