type vertex = int

type kind =
  | Host of int
  | Inner

type edge = {
  a : vertex;
  b : vertex;
  weight : float;
  owner : int;
  mutable live : bool;
}

type t = {
  mutable kinds : kind array;
  mutable vcount : int;
  mutable edges : edge array;
  mutable ecount : int;
  mutable adj : int list array; (* vertex -> live edge ids *)
  host_vertex : (int, vertex) Hashtbl.t;
}

let create () =
  {
    kinds = Array.make 16 Inner;
    vcount = 0;
    edges = Array.make 16 { a = 0; b = 0; weight = 0.0; owner = 0; live = false };
    ecount = 0;
    adj = Array.make 16 [];
    host_vertex = Hashtbl.create 64;
  }

let grow_vertices t =
  if t.vcount = Array.length t.kinds then begin
    let k = Array.make (2 * t.vcount) Inner in
    Array.blit t.kinds 0 k 0 t.vcount;
    t.kinds <- k;
    let a = Array.make (2 * t.vcount) [] in
    Array.blit t.adj 0 a 0 t.vcount;
    t.adj <- a
  end

let new_vertex t kind =
  grow_vertices t;
  let v = t.vcount in
  t.kinds.(v) <- kind;
  t.adj.(v) <- [];
  t.vcount <- t.vcount + 1;
  (match kind with Host h -> Hashtbl.replace t.host_vertex h v | Inner -> ());
  v

let new_edge t ~a ~b ~weight ~owner =
  if t.ecount = Array.length t.edges then begin
    let e =
      Array.make (2 * t.ecount) { a = 0; b = 0; weight = 0.0; owner = 0; live = false }
    in
    Array.blit t.edges 0 e 0 t.ecount;
    t.edges <- e
  end;
  let id = t.ecount in
  t.edges.(id) <- { a; b; weight; owner; live = true };
  t.ecount <- t.ecount + 1;
  t.adj.(a) <- id :: t.adj.(a);
  t.adj.(b) <- id :: t.adj.(b);
  id

let kill_edge t id =
  let e = t.edges.(id) in
  e.live <- false;
  t.adj.(e.a) <- List.filter (fun x -> x <> id) t.adj.(e.a);
  t.adj.(e.b) <- List.filter (fun x -> x <> id) t.adj.(e.b)

let other_end e v = if e.a = v then e.b else e.a

let vertex_of_host t h = Hashtbl.find t.host_vertex h

let kind t v =
  if v < 0 || v >= t.vcount then invalid_arg "Tree.kind: bad vertex";
  t.kinds.(v)

let hosts t = Bwc_stats.Tbl.sorted_keys t.host_vertex
let vertex_count t = t.vcount

let neighbors t v =
  List.map
    (fun id ->
      let e = t.edges.(id) in
      (other_end e v, e.weight, e.owner))
    t.adj.(v)

let degree t v = List.length t.adj.(v)

(* Path from [u] to [v] as a list of edge ids, found by DFS (the graph is a
   tree, so the unique simple path). *)
let path_edges t u v =
  if u = v then []
  else begin
    let visited = Array.make t.vcount false in
    let rec dfs cur acc =
      if cur = v then Some (List.rev acc)
      else begin
        visited.(cur) <- true;
        let rec try_edges = function
          | [] -> None
          | id :: rest ->
              let e = t.edges.(id) in
              let nxt = other_end e cur in
              if visited.(nxt) then try_edges rest
              else begin
                match dfs nxt (id :: acc) with
                | Some p -> Some p
                | None -> try_edges rest
              end
        in
        try_edges t.adj.(cur)
      end
    in
    match dfs u [] with
    | Some p -> p
    | None -> invalid_arg "Tree.path_edges: disconnected vertices"
  end

let dist t u v =
  List.fold_left (fun acc id -> acc +. t.edges.(id).weight) 0.0 (path_edges t u v)

let host_dist t h1 h2 = dist t (vertex_of_host t h1) (vertex_of_host t h2)

let add_first_host t ~host =
  if t.vcount <> 0 then invalid_arg "Tree.add_first_host: tree not empty";
  new_vertex t (Host host)

(* Splits edge [id] at distance [at] from endpoint [from] (0 <= at <=
   weight), returning the new inner vertex.  Both halves keep the owner. *)
let split_edge t id ~from ~at =
  let e = t.edges.(id) in
  let far = other_end e from in
  let m = new_vertex t Inner in
  kill_edge t id;
  let (_ : int) = new_edge t ~a:from ~b:m ~weight:at ~owner:e.owner in
  let (_ : int) = new_edge t ~a:m ~b:far ~weight:(e.weight -. at) ~owner:e.owner in
  m

let add_host t ~host ~between:(z, y) ~at ~leaf_weight =
  if Hashtbl.mem t.host_vertex host then invalid_arg "Tree.add_host: host already present";
  let leaf_weight = Float.max 0.0 leaf_weight in
  if t.vcount = 1 then begin
    (* Second host: the root vertex acts as its inner node. *)
    let root = 0 in
    let hv = new_vertex t (Host host) in
    let (_ : int) = new_edge t ~a:root ~b:hv ~weight:leaf_weight ~owner:host in
    match t.kinds.(root) with
    | Host anchor -> (hv, root, anchor, 0.0)
    | Inner -> assert false
  end
  else begin
    let edges = path_edges t z y in
    if edges = [] then invalid_arg "Tree.add_host: z = y";
    let total = List.fold_left (fun acc id -> acc +. t.edges.(id).weight) 0.0 edges in
    let at = Float.max 0.0 (Float.min at total) in
    (* Walk the path to the edge containing the split point. *)
    let rec locate cur remaining = function
      | [] -> assert false
      | [ id ] -> (cur, id, Float.min remaining t.edges.(id).weight)
      | id :: rest ->
          let w = t.edges.(id).weight in
          if remaining <= w then (cur, id, remaining)
          else locate (other_end t.edges.(id) cur) (remaining -. w) rest
    in
    let from, id, offset = locate z at edges in
    let owner = t.edges.(id).owner in
    let inner = split_edge t id ~from ~at:offset in
    let hv = new_vertex t (Host host) in
    let (_ : int) = new_edge t ~a:inner ~b:hv ~weight:leaf_weight ~owner:host in
    let anchor_offset = dist t (vertex_of_host t owner) inner in
    (hv, inner, owner, anchor_offset)
  end

let remove_host t ~host =
  match Hashtbl.find_opt t.host_vertex host with
  | None -> invalid_arg "Tree.remove_host: unknown host"
  | Some hv ->
      (* The host still owns edges beyond its own leaf edge iff some later
         insertion split one of them; those subtrees anchor on this host. *)
      let owned_elsewhere = ref false in
      for id = 0 to t.ecount - 1 do
        let e = t.edges.(id) in
        if e.live && e.owner = host && e.a <> hv && e.b <> hv then owned_elsewhere := true
      done;
      if !owned_elsewhere || degree t hv <> 1 then Error `Has_dependents
      else begin
        match t.adj.(hv) with
        | [ leaf_id ] ->
            let inner = other_end t.edges.(leaf_id) hv in
            kill_edge t leaf_id;
            Hashtbl.remove t.host_vertex host;
            (* Splice the inner node if it became a degree-2 pass-through. *)
            (match (t.kinds.(inner), t.adj.(inner)) with
            | Inner, [ e1; e2 ] ->
                let a = other_end t.edges.(e1) inner in
                let b = other_end t.edges.(e2) inner in
                let w = t.edges.(e1).weight +. t.edges.(e2).weight in
                let owner = t.edges.(e1).owner in
                kill_edge t e1;
                kill_edge t e2;
                let (_ : int) = new_edge t ~a ~b ~weight:w ~owner in
                ()
            | _ -> ());
            Ok ()
        | _ -> Error `Has_dependents
      end

(* ----- persistence (see below, after [is_tree]) ----- *)

type edge_dump = {
  e_a : vertex;
  e_b : vertex;
  e_weight : float;
  e_owner : int;
  e_live : bool;
}

type dump = {
  d_kinds : int array; (* host id per vertex; -1 = inner *)
  d_edges : edge_dump list; (* in edge-id order, dead slots included *)
  d_hosts : (int * vertex) list; (* host -> vertex, ascending host id *)
}

let dump t =
  let kinds =
    Array.init t.vcount (fun v ->
        match t.kinds.(v) with Host h -> h | Inner -> -1)
  in
  let edges = ref [] in
  for id = t.ecount - 1 downto 0 do
    let e = t.edges.(id) in
    edges :=
      { e_a = e.a; e_b = e.b; e_weight = e.weight; e_owner = e.owner; e_live = e.live }
      :: !edges
  done;
  let hosts =
    List.map (fun h -> (h, Hashtbl.find t.host_vertex h))
      (Bwc_stats.Tbl.sorted_keys t.host_vertex)
  in
  { d_kinds = kinds; d_edges = !edges; d_hosts = hosts }

let live_edges t =
  let acc = ref [] in
  for id = t.ecount - 1 downto 0 do
    if t.edges.(id).live then acc := t.edges.(id) :: !acc
  done;
  !acc

let is_tree t =
  let edges = live_edges t in
  let reachable = Array.make (Stdlib.max 1 t.vcount) false in
  let live_vertex = Array.make (Stdlib.max 1 t.vcount) false in
  List.iter
    (fun e ->
      live_vertex.(e.a) <- true;
      live_vertex.(e.b) <- true)
    edges;
  (* Isolated root (single-vertex tree) counts as live. *)
  if t.vcount > 0 then live_vertex.(0) <- true;
  let n_live = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 live_vertex in
  let rec bfs = function
    | [] -> ()
    | v :: rest ->
        let next =
          List.filter_map
            (fun id ->
              let e = t.edges.(id) in
              let u = other_end e v in
              if reachable.(u) then None
              else begin
                reachable.(u) <- true;
                Some u
              end)
            t.adj.(v)
        in
        (* frontier order is irrelevant here (reachability count only) *)
        bfs (List.rev_append next rest)
  in
  if t.vcount = 0 then true
  else begin
    reachable.(0) <- true;
    bfs [ 0 ];
    let n_reached = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 reachable in
    n_reached = n_live && List.length edges = n_live - 1
  end

let total_weight t = List.fold_left (fun acc e -> acc +. e.weight) 0.0 (live_edges t)

(* The dump captures the geometry exactly as stored: every edge slot ever
   allocated (dead ones included, so edge ids — and therefore adjacency
   order — survive a round trip) and the host->vertex map separately from
   the vertex kinds (eviction can leave a [Host] kind behind after the
   mapping entry is gone). *)
let of_dump d =
  let vcount = Array.length d.d_kinds in
  let fail msg = invalid_arg ("Tree.of_dump: " ^ msg) in
  let check_v v = if v < 0 || v >= vcount then fail "vertex out of range" in
  Array.iter (fun h -> if h < -1 then fail "bad vertex kind") d.d_kinds;
  let ecount = List.length d.d_edges in
  let cap n = Stdlib.max 16 n in
  let t =
    {
      kinds =
        Array.init (cap vcount) (fun v ->
            if v < vcount && d.d_kinds.(v) >= 0 then Host d.d_kinds.(v) else Inner);
      vcount;
      edges =
        Array.make (cap ecount) { a = 0; b = 0; weight = 0.0; owner = 0; live = false };
      ecount;
      adj = Array.make (cap vcount) [];
      host_vertex = Hashtbl.create 64;
    }
  in
  List.iteri
    (fun id e ->
      check_v e.e_a;
      check_v e.e_b;
      if e.e_weight < 0.0 || not (Float.is_finite e.e_weight) then fail "bad edge weight";
      t.edges.(id) <-
        { a = e.e_a; b = e.e_b; weight = e.e_weight; owner = e.e_owner; live = e.e_live };
      (* prepending live ids in ascending order reproduces the adjacency
         lists [new_edge]/[kill_edge] would have left behind *)
      if e.e_live then begin
        t.adj.(e.e_a) <- id :: t.adj.(e.e_a);
        t.adj.(e.e_b) <- id :: t.adj.(e.e_b)
      end)
    d.d_edges;
  List.iter
    (fun (h, v) ->
      check_v v;
      (match d.d_kinds.(v) with
      | k when k = h -> ()
      | _ -> fail "host map disagrees with vertex kind");
      Hashtbl.replace t.host_vertex h v)
    d.d_hosts;
  if not (is_tree t) then fail "not a tree";
  t

let pp ppf t =
  Format.fprintf ppf "prediction tree: %d vertices, %d hosts@." t.vcount
    (Hashtbl.length t.host_vertex);
  List.iter
    (fun e ->
      let show v =
        match t.kinds.(v) with
        | Host h -> Printf.sprintf "h%d" h
        | Inner -> Printf.sprintf "i%d" v
      in
      Format.fprintf ppf "  %s -- %s  w=%.3f owner=h%d@." (show e.a) (show e.b) e.weight
        e.owner)
    (live_edges t)

let to_dot ?(label = "prediction tree") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph prediction_tree {\n";
  Buffer.add_string buf (Printf.sprintf "  label=%S;\n" label);
  Buffer.add_string buf "  node [fontsize=10];\n";
  for v = 0 to t.vcount - 1 do
    match t.kinds.(v) with
    | Host h ->
        if Hashtbl.mem t.host_vertex h then
          Buffer.add_string buf
            (Printf.sprintf "  v%d [shape=box, label=\"h%d\"];\n" v h)
    | Inner ->
        if t.adj.(v) <> [] then
          Buffer.add_string buf (Printf.sprintf "  v%d [shape=point];\n" v)
  done;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -- v%d [label=\"%.2f (h%d)\"];\n" e.a e.b e.weight
           e.owner))
    (live_edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
