(** The decentralized bandwidth prediction framework (Sec. II-D), i.e. the
    substrate the clustering system runs on: a prediction tree plus the
    anchor-tree overlay plus per-host distance labels.

    [build] simulates hosts joining one at a time in a random order,
    exactly as the real system would grow; all predicted distances are
    then pure functions of the distance labels, so every later consumer
    (Algorithms 2-4) only uses information a real node would hold
    locally. *)

type mode = {
  base : Builder.base_strategy;      (** how each joining host picks its base leaf *)
  end_search : Builder.end_strategy; (** how it finds the Gromov maximiser *)
}

val default_mode : mode
(** [`Random] base, budgeted [`Anchor_guided] end search: the
    decentralised configuration. *)

val centralized_mode : mode
(** [`Root] base, [`Exact] end search: what a centralised Sequoia-style
    builder does; used by the E8 ablation. *)

type t

val build :
  rng:Bwc_stats.Rng.t ->
  ?mode:mode ->
  ?members:int list ->
  ?metrics:Bwc_obs.Registry.t ->
  ?metric_labels:(string * string) list ->
  Bwc_metric.Space.t ->
  t
(** [build ~rng ~mode ~members space] inserts the member hosts (default:
    all [space.n] hosts) in a random order.  [space] provides the
    {e measured} distances (already under the rational transform).
    Construction and maintenance cost is charged to the
    [predtree.measurements] counter in [metrics] (a private registry when
    omitted), under [metric_labels] — e.g. [("tree", "0")] keeps the
    trees of an ensemble apart when they share one registry. *)

val size : t -> int
(** Current member count. *)

val members : t -> int list
(** Current members in insertion order (root first). *)

val is_member : t -> int -> bool
val tree : t -> Tree.t
val anchor : t -> Anchor.t
val label : t -> int -> Label.t
val insertion_order : t -> int array

val predicted : t -> int -> int -> float
(** Predicted distance [d_T(i, j)], computed from the two labels. *)

val predicted_bw : ?c:float -> t -> int -> int -> float
(** [BW_T(i, j) = C / d_T(i, j)]. *)

val measured : t -> int -> int -> float
(** The underlying measured distance (for evaluation only; a real node
    does not have this). *)

val measurements_total : t -> int
(** Total pairwise measurements charged during construction and
    maintenance — the cost the framework saves compared to full n-to-n
    probing ([predtree.measurements] under this framework's labels). *)

val relative_errors : ?c:float -> t -> float array
(** Per-pair relative bandwidth-prediction error
    [|BW - BW_T| / BW] over all host pairs — the statistic plotted as a
    CDF in Fig. 3(b,d). *)

val add_host : rng:Bwc_stats.Rng.t -> t -> int -> unit
(** A host joins the system: it is placed into the prediction tree and the
    anchor overlay exactly as during [build].  The host must be a point of
    the underlying space and not yet a member. *)

val remove_host : rng:Bwc_stats.Rng.t -> t -> int -> unit
(** A host leaves.  When nothing anchors beneath it the leaf is spliced
    out in O(tree); otherwise (or for the overlay root) the framework is
    rebuilt from the remaining members.  Removing the last member is
    refused. *)

val evict_host : t -> int -> (int * int) list
(** Crash repair: drops a host that is {e gone}, without the global
    rebuild [remove_host] may fall back to.  Membership and the label are
    removed and the anchor overlay is repaired locally with
    {!Anchor.remove_node} (orphaned children regraft to the grandparent; a
    dead root promotes its smallest child).  Prediction-tree geometry the
    host anchored is retained, so surviving labels stay valid — the price
    of not being able to re-measure on a crash.  Returns the
    [(child, new_parent)] overlay regrafts.  Evicting a non-member or the
    last member raises [Invalid_argument]. *)

val refresh_host : rng:Bwc_stats.Rng.t -> t -> int -> unit
(** Re-inserts one host using current measurements (network conditions
    changed).  Falls back to removing and re-adding; if the host anchors
    other subtrees the whole framework is rebuilt with the original
    insertion order. *)

val anchor_neighbors : t -> int -> int list
(** Overlay neighborhood of a host. *)

(** {2 Persistence} *)

type dump = {
  d_mode : mode;
  d_tree : Tree.dump;
  d_anchor : Anchor.dump;
  d_labels : (int * Label.t) list;  (** ascending host id *)
  d_rev_order : int list;  (** reverse insertion order, newest first *)
}

val dump : t -> dump

val of_dump :
  ?metrics:Bwc_obs.Registry.t ->
  ?metric_labels:(string * string) list ->
  Bwc_metric.Space.t ->
  dump ->
  t
(** Reconstructs the framework over [space] (the measured metric the dump
    was built on; the dump itself carries no distance function).  The
    measurement counter restarts at zero — a restore performs no probes.
    Validates label geometry and the agreement of membership across
    labels, overlay and insertion order; raises [Invalid_argument] on any
    violation. *)
