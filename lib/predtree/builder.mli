(** Node-addition machinery for the prediction tree (Sec. II-D).

    To add host [x]: pick a {e base} leaf [z], pick the {e end} node [y]
    maximising the Gromov product [(x|y)_z], place [x]'s inner node on the
    path [z ~ y] at distance [(x|y)_z] from [z], and hang [x] off it with
    edge weight [(y|z)_x].

    Two end-node search strategies are provided:
    - [`Exact]: argmax over every present host — what a centralised
      builder with full measurements would do;
    - [`Anchor_guided budget]: budgeted best-first search over the
      anchor tree, the decentralised strategy of the authors' prediction
      framework: it only measures against the hosts it visits, at most
      [budget] expansions. *)

type base_strategy = [ `Root | `Random ]
type end_strategy = [ `Exact | `Anchor_guided of int ]
(** [`Anchor_guided budget] expands at most [budget] anchor-tree hosts. *)

val gromov : d:(int -> int -> float) -> x:int -> y:int -> z:int -> float
(** [(x|y)_z = (d z x + d z y - d x y) / 2]. *)

type outcome = {
  base : int;
  end_node : int;
  measurements : int;  (** pairwise measurements charged to this addition *)
}

val select_end :
  d:(int -> int -> float) -> anchor:Anchor.t -> strategy:end_strategy ->
  x:int -> z:int -> candidates:int list -> int * int
(** [select_end ~d ~anchor ~strategy ~x ~z ~candidates] returns the chosen
    end node and the number of measurements performed.  [candidates] are
    the hosts currently present ([`Exact] scans them; [`Anchor_guided]
    ignores the list and walks [anchor]).  There must be at least one
    candidate different from [z]. *)

val add_host :
  d:(int -> int -> float) ->
  rng:Bwc_stats.Rng.t ->
  base:base_strategy ->
  strategy:end_strategy ->
  tree:Tree.t ->
  anchor:Anchor.t ->
  labels:(int, Label.t) Hashtbl.t ->
  int ->
  outcome
(** Performs the full addition of one host: updates [tree], [anchor] and
    [labels].  The first two hosts are handled specially (root, then the
    root's single child). *)
