(** The anchor tree: the rooted, unweighted overlay that hosts organise
    themselves into (Sec. II-D).

    The first host is the root; every later host becomes a child of its
    anchor node.  The clustering protocols (Algorithms 2-4) run over the
    edges of this tree: a node's overlay neighbors are its anchor parent
    and its anchor children. *)

type t

val create : unit -> t
val set_root : t -> int -> unit
(** Must be called once, before any [add]. *)

val add : t -> parent:int -> int -> unit
(** [add t ~parent h] attaches host [h] under [parent].  [parent] must be
    present already; [h] must not. *)

val remove_leaf : t -> int -> (unit, [ `Not_leaf ]) result
(** Removes a childless, non-root host. *)

val regraft : t -> host:int -> parent:int -> (unit, [ `Is_root | `Would_cycle ]) result
(** [regraft t ~host ~parent] detaches [host] (with its whole subtree)
    from its current parent and re-attaches it under [parent] — the
    self-healing repair primitive.  The root cannot be regrafted
    ([`Is_root]); a parent inside [host]'s own subtree is rejected
    ([`Would_cycle]).  Unknown hosts raise [Invalid_argument]. *)

val remove_subtree : t -> int -> (int list, [ `Is_root ]) result
(** Removes the host and its entire subtree; returns the removed hosts in
    ascending order.  Unknown hosts raise [Invalid_argument]. *)

val remove_node : t -> int -> ((int * int) list, [ `Last_host ]) result
(** Crash repair: removes a (possibly interior) host, re-grafting each
    orphaned child to the host's own parent — the grandparent.  A dead
    root promotes its smallest child to root and regrafts the remaining
    children beneath it.  Returns the [(child, new_parent)] regrafts in
    ascending child order; [`Last_host] when the host is the only one
    left.  Unknown hosts raise [Invalid_argument]. *)

val root : t -> int
val mem : t -> int -> bool
val size : t -> int
val parent : t -> int -> int option
(** [None] for the root. *)

val children : t -> int -> int list
val neighbors : t -> int -> int list
(** Parent (if any) plus children: the overlay neighborhood. *)

val degree : t -> int -> int
val depth : t -> int -> int
(** Hops from the root. *)

val max_depth : t -> int
val max_degree : t -> int

val hosts : t -> int list

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges t f] calls [f parent child] once per overlay edge. *)

(** {2 Persistence} *)

type dump = {
  d_root : int option;
  d_nodes : (int * int list) list;
      (** host -> children in stored order, ascending host id.  Child
          order is significant: overlay neighbor order (and everything
          downstream of it) derives from it. *)
}

val dump : t -> dump

val of_dump : dump -> t
(** Validates rootedness, unique parentage and acyclicity; raises
    [Invalid_argument] on any violation. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?label:string -> t -> string
(** Graphviz rendering of the anchor overlay (a rooted tree of hosts). *)
