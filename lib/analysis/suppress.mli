(** Per-line lint suppressions.

    A comment [(* bwclint: allow <rule> *)] (comma-separated rule ids,
    or [all]) suppresses matching findings on its own line and on the
    line directly below, so both trailing comments and a standalone
    comment above the offending expression work. *)

type t

val scan : string -> t
(** Collect suppression comments from raw source text. *)

val suppressed : t -> rule:string -> line:int -> bool
(** Whether a finding of [rule] at [line] is suppressed.  Marks the
    matching suppression as used. *)

val count : t -> int

val unused : t -> (int * string list) list
(** Suppressions that never matched a finding (line, rule ids) — stale
    comments that should be deleted. *)
