(** Per-line lint suppressions.

    A comment [(* bwclint: allow <rule> -- <reason> *)] (comma-separated
    rule ids, or [all]) suppresses matching findings on its own line and
    on the line directly below, so both trailing comments and a
    standalone comment above the offending expression work.  The
    [-- <reason>] clause is the audit justification surfaced by the
    JSON/SARIF reporters; omitting it is itself a finding. *)

type entry = {
  s_line : int;  (** line the comment appears on, 1-based *)
  rules : string list;  (** [[]] means all rules *)
  reason : string option;
  mutable used : bool;
}

type t

val scan : string -> t
(** Collect suppression comments from raw source text. *)

val find : t -> rule:string -> line:int -> entry option
(** The suppression entry covering a finding of [rule] at [line], if
    any.  Marks the matching entry as used — both the per-file rule pass
    and the whole-program passes consult this, so a suppression
    justified only by an interprocedural finding is still "used" and not
    reported stale. *)

val suppressed : t -> rule:string -> line:int -> bool
(** [find <> None]. *)

val count : t -> int

val entries : t -> entry list

val unused : t -> (int * string list) list
(** Suppressions that never matched a finding in any pass (line, rule
    ids) — stale comments that should be deleted. *)
