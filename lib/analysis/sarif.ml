(* SARIF 2.1.0 output so findings land in code-scanning UIs (GitHub
   "Security" tab) with witness paths rendered as code flows.

   Suppressed findings are still emitted, carrying an inSource
   suppression object with the audit justification — the scanning UI is
   the audit trail; only unsuppressed, non-baselined findings affect the
   exit code (that logic lives in bin/bwclint, not here). *)

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let all_rules () =
  List.map (fun (r : Rules.t) -> (r.id, r.severity, r.doc)) Rules.all
  @ Taint.rules @ Report.meta_rules

let level = function Finding.Error -> "error" | Finding.Warning -> "warning"

let str = Report.json_string

let location (f : Finding.t) =
  Printf.sprintf
    "{ \"physicalLocation\": { \"artifactLocation\": { \"uri\": %s }, \
     \"region\": { \"startLine\": %d, \"startColumn\": %d } } }"
    (str f.file) (max 1 f.line)
    (max 1 (f.col + 1))

let code_flow (f : Finding.t) =
  if List.length f.witness < 2 then None
  else
    let step i name =
      let physical =
        if i = 0 then
          Printf.sprintf
            " \"physicalLocation\": { \"artifactLocation\": { \"uri\": %s }, \
             \"region\": { \"startLine\": %d } },"
            (str f.file) (max 1 f.line)
        else ""
      in
      Printf.sprintf
        "{ \"location\": {%s \"logicalLocations\": [ { \
         \"fullyQualifiedName\": %s } ], \"message\": { \"text\": %s } } }"
        physical (str name) (str name)
    in
    Some
      (Printf.sprintf
         "\"codeFlows\": [ { \"threadFlows\": [ { \"locations\": [ %s ] } ] } \
          ], "
         (String.concat ", " (List.mapi step f.witness)))

let result ?suppression (f : Finding.t) =
  let flow = match code_flow f with Some s -> s | None -> "" in
  let sup =
    match suppression with
    | None -> ""
    | Some reason ->
        Printf.sprintf
          ", \"suppressions\": [ { \"kind\": \"inSource\", \"justification\": \
           %s } ]"
          (str (if reason = "" then "(no reason recorded)" else reason))
  in
  Printf.sprintf
    "{ \"ruleId\": %s, \"level\": %s, %s\"message\": { \"text\": %s }, \
     \"locations\": [ %s ]%s }"
    (str f.rule)
    (str (level f.severity))
    flow (str f.message) (location f) sup

let to_string ?(suppressed = []) findings =
  let rules =
    List.map
      (fun (id, sev, doc) ->
        Printf.sprintf
          "{ \"id\": %s, \"shortDescription\": { \"text\": %s }, \
           \"defaultConfiguration\": { \"level\": %s } }"
          (str id) (str doc)
          (str (level sev)))
      (all_rules ())
  in
  let results =
    List.map (fun f -> result f) findings
    @ List.map (fun (f, reason) -> result ~suppression:reason f) suppressed
  in
  Printf.sprintf
    "{\n\
    \  \"$schema\": %s,\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [ {\n\
    \    \"tool\": { \"driver\": {\n\
    \      \"name\": \"bwclint\",\n\
    \      \"informationUri\": \
     \"https://example.invalid/bwcluster/docs/DESIGN.md\",\n\
    \      \"version\": \"2.0.0\",\n\
    \      \"rules\": [ %s ]\n\
    \    } },\n\
    \    \"results\": [ %s ]\n\
    \  } ]\n\
     }\n"
    (str schema)
    (String.concat ", " rules)
    (String.concat ", " results)
