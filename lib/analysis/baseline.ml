(* Committed-baseline support: audit-then-gate.

   A baseline file is canonical JSON — entries sorted, two-space
   indent — so regenerating it on an unchanged tree is byte-identical
   and diffs review cleanly.  Matching is by (rule, file, stable key):
   symbolic keys (witness anchors, def names) survive line drift, the
   "L<line>" fallback pins purely positional findings.

   The parser below is a minimal recursive-descent JSON reader: the
   analysis library deliberately depends only on compiler-libs, and the
   subset we emit (objects, arrays, strings, ints) is all we accept. *)

type entry = { b_rule : string; b_file : string; b_key : string }

let compare_entry a b =
  let c = String.compare a.b_rule b.b_rule in
  if c <> 0 then c
  else
    let c = String.compare a.b_file b.b_file in
    if c <> 0 then c else String.compare a.b_key b.b_key

let of_finding (f : Finding.t) =
  { b_rule = f.rule; b_file = f.file; b_key = Finding.stable_key f }

let of_findings fs = List.sort_uniq compare_entry (List.map of_finding fs)

(* ----- writing ----- *)

let to_json entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n  \"version\": 1,\n  \"findings\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    { \"rule\": ";
      Buffer.add_string buf (Report.json_string e.b_rule);
      Buffer.add_string buf ", \"file\": ";
      Buffer.add_string buf (Report.json_string e.b_file);
      Buffer.add_string buf ", \"key\": ";
      Buffer.add_string buf (Report.json_string e.b_key);
      Buffer.add_string buf " }")
    entries;
  if entries <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let save ~path entries =
  let oc = open_out path in
  output_string oc (to_json (List.sort_uniq compare_entry entries));
  close_out oc

(* ----- reading: a minimal JSON subset parser ----- *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_int of int

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected '%c' at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Bad "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'u' ->
              (* we never emit non-ASCII escapes; decode latin-1 subset *)
              if !pos + 4 >= n then raise (Bad "bad \\u escape");
              let hex = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> raise (Bad "bad \\u escape")
              in
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> raise (Bad "bad escape"));
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> raise (Bad "expected ',' or '}'")
          in
          members ();
          J_obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> raise (Bad "expected ',' or ']'")
          in
          elements ();
          J_arr (List.rev !items)
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        if c = '-' then advance ();
        let rec digits () =
          match peek () with
          | Some c when c >= '0' && c <= '9' ->
              advance ();
              digits ()
          | _ -> ()
        in
        digits ();
        J_int (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise (Bad (Printf.sprintf "unexpected input at offset %d" !pos))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let load ~path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | s -> (
      match parse_json s with
      | exception Bad msg -> Error (path ^ ": " ^ msg)
      | J_obj fields -> (
          match List.assoc_opt "findings" fields with
          | Some (J_arr items) -> (
              let entry_of = function
                | J_obj fs -> (
                    let str k =
                      match List.assoc_opt k fs with
                      | Some (J_str s) -> Some s
                      | _ -> None
                    in
                    match (str "rule", str "file", str "key") with
                    | Some b_rule, Some b_file, Some b_key ->
                        Some { b_rule; b_file; b_key }
                    | _ -> None)
                | _ -> None
              in
              let entries = List.map entry_of items in
              if List.exists (fun e -> e = None) entries then
                Error (path ^ ": malformed baseline entry")
              else
                Ok
                  (List.sort_uniq compare_entry
                     (List.filter_map (fun e -> e) entries)))
          | _ -> Error (path ^ ": missing \"findings\" array"))
      | _ -> Error (path ^ ": expected a JSON object"))

(* ----- diffing ----- *)

type diff = {
  fresh : Finding.t list;  (* not in the baseline: fail *)
  matched : (Finding.t * entry) list;  (* audited, carried *)
  gone : entry list;  (* baseline entries no longer produced: fail *)
}

let apply entries findings =
  let used = ref [] in
  let fresh = ref [] and matched = ref [] in
  List.iter
    (fun f ->
      let e = of_finding f in
      if List.exists (fun b -> compare_entry b e = 0) entries then begin
        if not (List.exists (fun b -> compare_entry b e = 0) !used) then
          used := e :: !used;
        matched := (f, e) :: !matched
      end
      else fresh := f :: !fresh)
    findings;
  let gone =
    List.filter
      (fun b -> not (List.exists (fun u -> compare_entry u b = 0) !used))
      entries
  in
  {
    fresh = List.rev !fresh;
    matched = List.rev !matched;
    gone = List.sort compare_entry gone;
  }
