(** A single lint finding: a rule violation anchored to a source location. *)

type severity =
  | Error  (** breaks a hard invariant (determinism, robustness) *)
  | Warning  (** complexity or hygiene concern; still fails CI *)

type t = {
  rule : string;  (** rule id, e.g. ["no-stdlib-random"] *)
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as reported by the compiler *)
  message : string;
  key : string option;
      (** stable symbolic identity for baseline matching (whole-program
          findings use function names, which survive unrelated edits);
          [None] falls back to the line anchor *)
  witness : string list;
      (** interprocedural findings: the call chain from the reported
          function down to the primitive source, as qualified names *)
}

val severity_label : severity -> string

val make :
  ?key:string ->
  ?witness:string list ->
  rule:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  message:string ->
  unit ->
  t

val of_location :
  ?key:string ->
  ?witness:string list ->
  rule:string ->
  severity:severity ->
  message:string ->
  Location.t ->
  t

val stable_key : t -> string
(** [key] if present, else ["L<line>"] — the identity used by
    {!Baseline} matching. *)

val compare : t -> t -> int
(** Orders by (file, line, col, rule, stable key). *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity [rule] message] — editor-friendly; multi-hop
    witness paths are printed on a continuation line. *)
