(** A single lint finding: a rule violation anchored to a source location. *)

type severity =
  | Error  (** breaks a hard invariant (determinism, robustness) *)
  | Warning  (** complexity or hygiene concern; still fails CI *)

type t = {
  rule : string;  (** rule id, e.g. ["no-stdlib-random"] *)
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as reported by the compiler *)
  message : string;
}

val severity_label : severity -> string

val make :
  rule:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  message:string ->
  t

val of_location :
  rule:string -> severity:severity -> message:string -> Location.t -> t

val compare : t -> t -> int
(** Orders by (file, line, col, rule). *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity [rule] message] — editor-friendly. *)
