(* Whole-program passes: interprocedural effect taint and the
   domain-safety audit.

   A fixed-point worklist propagates effect summaries (Effects.direct)
   backwards over the call graph, keeping for each (function, effect
   kind) the best witness — shortest call chain, ties broken
   lexicographically so reruns are byte-identical.  On top of the
   closure sit two rule families:

   determinism-taint (error): a function in a hot-path unit (Engine,
   Protocol, Find_cluster) transitively reaches a nondeterminism
   primitive — ambient randomness, a wall-clock read, unordered Hashtbl
   traversal, physical equality — through any depth of calls.  The
   finding carries the full witness path.  Sources whose site carries an
   audited suppression (for the underlying syntactic rule or for
   determinism-taint itself) are cut before propagation, so the five
   audited iteration sites do not taint their callers.

   domain-unsafe-global / domain-unsafe-capture (warning): module-level
   mutable state (top-level refs, Hashtbls, Buffers, arrays — including
   records/tuples holding them) and top-level closures over fresh
   mutable state (memoization caches).  These are exactly the bindings
   that become shared across cores once rounds execute on multiple
   OCaml 5 domains, i.e. the concrete blocker list for the multicore
   refactor. *)

let determinism_rule = "determinism-taint"
let global_rule = "domain-unsafe-global"
let capture_rule = "domain-unsafe-capture"

let rules =
  [
    ( determinism_rule,
      Finding.Error,
      "A function reachable from the Engine/Protocol/Find_cluster hot paths \
       transitively hits a nondeterminism source (Random.*, wall clock, \
       unordered Hashtbl traversal, physical equality) through any depth of \
       calls; the finding carries the witness path.  Audit the primitive \
       site or the hot-path function with an allow comment carrying a \
       reason, or cut the path." );
    ( global_rule,
      Finding.Warning,
      "Module-level mutable state (top-level ref/Hashtbl/Buffer/array, \
       records or tuples holding them) is shared by every domain after the \
       multicore refactor; thread it through a constructor or suppress \
       with an audited reason." );
    ( capture_rule,
      Finding.Warning,
      "A top-level closure captures freshly created mutable state (the \
       memoization-cache pattern); the cache is shared across domains \
       while the closure looks pure to callers." );
  ]

let hot_units = [ "Engine"; "Protocol"; "Find_cluster" ]

type audited = rule:string -> file:string -> line:int -> string option option
(* None: no suppression.  Some reason_opt: suppressed (reason_opt is the
   justification, None when the comment lacks one).  Calling marks the
   suppression used. *)

type outcome = {
  findings : Finding.t list;
  suppressed : (Finding.t * string) list;
}

(* ----- domain safety ----- *)

let mutable_ctor_idents =
  [
    ("ref", "ref");
    ("Hashtbl.create", "Hashtbl.create");
    ("Buffer.create", "Buffer.create");
    ("Queue.create", "Queue.create");
    ("Stack.create", "Stack.create");
    ("Array.make", "Array.make");
    ("Array.init", "Array.init");
    ("Array.create_float", "Array.create_float");
    ("Bytes.create", "Bytes.create");
    ("Bytes.make", "Bytes.make");
  ]

let rec creates_mutable (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match Ast_scan.ident_path fn with
      | Some p -> List.assoc_opt (Ast_scan.dotted p) mutable_ctor_idents
      | None -> None)
  | Pexp_record (fields, _) ->
      List.find_map (fun (_, v) -> creates_mutable v) fields
  | Pexp_tuple es -> List.find_map creates_mutable es
  | Pexp_constraint (e, _) -> creates_mutable e
  | Pexp_array [] -> None (* zero-length: nothing to mutate, sharing is safe *)
  | Pexp_array _ -> Some "array literal"
  | _ -> None

let rec is_fun (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_fun e
  | _ -> false

(* Peel the [let x = ... in] chain off a top-level binding, collecting
   mutable constructors bound on the way down to the final expression. *)
let rec peel_lets acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_let (_, vbs, body) ->
      let acc =
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            match creates_mutable vb.pvb_expr with
            | Some detail -> detail :: acc
            | None -> acc)
          acc vbs
      in
      peel_lets acc body
  | Pexp_constraint (e, _) -> peel_lets acc e
  | _ -> (List.rev acc, e)

let domain_scope file =
  let file = String.map (fun c -> if c = '\\' then '/' else c) file in
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  contains "lib/" file || contains "fixtures" file

(* Classify one top-level value binding; returns (rule, detail). *)
let classify_toplevel (d : Callgraph.def) =
  if not (d.Callgraph.is_toplevel_value && domain_scope d.Callgraph.def_file)
  then None
  else
    let peeled, final = peel_lets [] d.Callgraph.body in
    match creates_mutable final with
    | Some detail -> Some (global_rule, detail)
    | None -> (
        match peeled with
        | [] -> None
        | detail :: _ ->
            if is_fun final then Some (capture_rule, detail)
            else Some (global_rule, detail))

(* ----- effect closure ----- *)

let kind_index = function
  | Effects.Wall_clock -> 0
  | Effects.Randomness -> 1
  | Effects.Unordered_iter -> 2
  | Effects.Phys_compare -> 3
  | Effects.Global_mutation -> 4
  | Effects.Io -> 5
  | Effects.Raises -> 6

type entry = {
  e_len : int;
  e_path : string list;  (* def ids, reported def first, source def last *)
  e_src : Effects.source;
}

let better a b =
  (* strictly better: shorter path, then lexicographic path, then
     source location — a deterministic total preorder *)
  let c = Int.compare a.e_len b.e_len in
  if c <> 0 then c < 0
  else
    let c = List.compare String.compare a.e_path b.e_path in
    if c <> 0 then c < 0
    else
      compare
        (a.e_src.Effects.s_file, a.e_src.s_line, a.e_src.s_col)
        (b.e_src.Effects.s_file, b.e_src.s_line, b.e_src.s_col)
      < 0

let kind_phrase = function
  | Effects.Wall_clock -> "a wall-clock read"
  | Effects.Randomness -> "ambient randomness"
  | Effects.Unordered_iter -> "nondeterministic iteration order"
  | Effects.Phys_compare -> "physical equality on mutable values"
  | Effects.Global_mutation -> "module-level mutable state"
  | Effects.Io -> "IO"
  | Effects.Raises -> "a raising primitive"

(* The whole-program summary table, exposed for reporting/tests. *)
type summary = {
  sum_def : Callgraph.def;
  sum_effects : (Effects.kind * entry) list;  (* in kind order *)
}

let close ~audited (cg : Callgraph.t) ~mutable_globals =
  let best : (string * int, entry) Hashtbl.t = Hashtbl.create 512 in
  let work = Queue.create () in
  let improve id kind cand =
    let key = (id, kind_index kind) in
    match Hashtbl.find_opt best key with
    | Some cur when not (better cand cur) -> ()
    | _ ->
        Hashtbl.replace best key cand;
        Queue.add id work
  in
  (* seed with direct sources, cutting audited nondet sites *)
  List.iter
    (fun (d : Callgraph.def) ->
      let seen_kind = Hashtbl.create 4 in
      List.iter
        (fun (s : Effects.source) ->
          if not (Hashtbl.mem seen_kind (kind_index s.s_kind)) then begin
            let cut =
              Effects.is_nondet s.s_kind
              && (List.exists
                    (fun rule ->
                      audited ~rule ~file:s.s_file ~line:s.s_line <> None)
                    (determinism_rule
                    :: Option.to_list (Effects.rule_for s.s_kind)))
            in
            if not cut then begin
              Hashtbl.replace seen_kind (kind_index s.s_kind) ();
              improve d.id s.s_kind
                { e_len = 1; e_path = [ d.id ]; e_src = s }
            end
          end)
        (Effects.direct d);
      (* references to module-level mutable state, from the domain scan *)
      List.iter
        (fun (c : Callgraph.call) ->
          if
            Hashtbl.mem mutable_globals c.callee
            && not (Hashtbl.mem seen_kind (kind_index Effects.Global_mutation))
          then begin
            Hashtbl.replace seen_kind (kind_index Effects.Global_mutation) ();
            let target =
              match Callgraph.find cg c.callee with
              | Some g -> g.name
              | None -> c.callee
            in
            improve d.id Effects.Global_mutation
              {
                e_len = 1;
                e_path = [ d.id ];
                e_src =
                  {
                    Effects.s_kind = Effects.Global_mutation;
                    s_detail = "reference to " ^ target;
                    s_file = d.def_file;
                    s_line = c.call_line;
                    s_col = c.call_col;
                  };
              }
          end)
        d.calls)
    (Callgraph.defs cg);
  (* propagate backwards over call edges to a fixed point *)
  let rev = Callgraph.callers cg in
  let rec drain () =
    match Queue.take_opt work with
    | None -> ()
    | Some g ->
        (match Hashtbl.find_opt rev g with
        | None -> ()
        | Some caller_ids ->
            List.iter
              (fun caller ->
                List.iter
                  (fun kind ->
                    match Hashtbl.find_opt best (g, kind_index kind) with
                    | None -> ()
                    | Some e ->
                        if not (List.mem caller e.e_path) then
                          improve caller kind
                            {
                              e_len = e.e_len + 1;
                              e_path = caller :: e.e_path;
                              e_src = e.e_src;
                            })
                  Effects.all_kinds)
              caller_ids);
        drain ()
  in
  drain ();
  best

let summaries ~audited cg =
  let mutable_globals = Hashtbl.create 16 in
  List.iter
    (fun (d : Callgraph.def) ->
      match classify_toplevel d with
      | Some _ -> Hashtbl.replace mutable_globals d.Callgraph.id ()
      | None -> ())
    (Callgraph.defs cg);
  let best = close ~audited cg ~mutable_globals in
  List.filter_map
    (fun (d : Callgraph.def) ->
      let effects =
        List.filter_map
          (fun kind ->
            match Hashtbl.find_opt best (d.id, kind_index kind) with
            | Some e -> Some (kind, e)
            | None -> None)
          Effects.all_kinds
      in
      if effects = [] then None
      else Some { sum_def = d; sum_effects = effects })
    (Callgraph.defs cg)

(* ----- the passes ----- *)

let display_path cg ids =
  List.map
    (fun id ->
      match Callgraph.find cg id with Some d -> d.Callgraph.name | None -> id)
    ids

let run ~audited (cg : Callgraph.t) =
  let findings = ref [] in
  let suppressed = ref [] in
  let emit ~rule ~severity ~key ~witness (d : Callgraph.def) message =
    let f =
      Finding.make ~key ~witness ~rule ~severity ~file:d.Callgraph.def_file
        ~line:d.def_line ~col:d.def_col ~message ()
    in
    match audited ~rule ~file:d.def_file ~line:d.def_line with
    | Some reason ->
        suppressed := (f, Option.value ~default:"" reason) :: !suppressed;
        true
    | None ->
        findings := f :: !findings;
        false
  in
  (* domain-safety audit *)
  let mutable_globals = Hashtbl.create 16 in
  let flagged_globals = ref [] in
  List.iter
    (fun (d : Callgraph.def) ->
      match classify_toplevel d with
      | None -> ()
      | Some (rule, detail) ->
          Hashtbl.replace mutable_globals d.Callgraph.id ();
          flagged_globals := (d, rule, detail) :: !flagged_globals)
    (Callgraph.defs cg);
  let rev = Callgraph.callers cg in
  List.iter
    (fun ((d : Callgraph.def), rule, detail) ->
      let foreign_units =
        match Hashtbl.find_opt rev d.id with
        | None -> []
        | Some caller_ids ->
            List.sort_uniq String.compare
              (List.filter_map
                 (fun id ->
                   match Callgraph.find cg id with
                   | Some c when c.Callgraph.unit_dir <> d.unit_dir
                               || Callgraph.unit_name c.def_file
                                  <> Callgraph.unit_name d.def_file ->
                       Some (Callgraph.unit_name c.Callgraph.def_file)
                   | _ -> None)
                 caller_ids)
      in
      let crossing =
        match foreign_units with
        | [] -> ""
        | us ->
            Printf.sprintf " and crosses module boundaries (referenced from %s)"
              (String.concat ", " us)
      in
      let message =
        if rule = capture_rule then
          Printf.sprintf
            "%s is a top-level closure over fresh mutable state (%s)%s; every \
             domain will share the capture after the multicore refactor — \
             thread the cache through an explicit handle or suppress with an \
             audited reason"
            d.name detail crossing
        else
          Printf.sprintf
            "%s is module-level mutable state (%s)%s; it becomes shared \
             across domains under Domain-sharded execution — construct it \
             per-instance or suppress with an audited reason"
            d.name detail crossing
      in
      ignore
        (emit ~rule ~severity:Finding.Warning ~key:d.name ~witness:[] d message))
    (List.rev !flagged_globals);
  (* determinism taint over hot-path units *)
  let best = close ~audited cg ~mutable_globals in
  let hot_defs =
    List.filter
      (fun (d : Callgraph.def) ->
        let contains sub s =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        (not (contains "lib/analysis" d.unit_dir))
        && List.mem (Callgraph.unit_name d.def_file) hot_units)
      (Callgraph.defs cg)
  in
  (* group candidates per (unit, source site, kind); report the shortest
     witness whose anchor is not suppressed *)
  let groups : (string, (Callgraph.def * entry) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let group_keys = ref [] in
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun kind ->
          if Effects.is_nondet kind then
            match Hashtbl.find_opt best (d.id, kind_index kind) with
            | None -> ()
            | Some e ->
                (* a direct source inside the hot unit is already the
                   syntactic rule's finding; taint adds value on chains *)
                if not (e.e_len = 1 && Effects.rule_for kind <> None) then begin
                  let key =
                    Printf.sprintf "%s|%s|%s:%d:%d|%d" d.unit_dir
                      (Callgraph.unit_name d.def_file)
                      e.e_src.Effects.s_file e.e_src.s_line e.e_src.s_col
                      (kind_index kind)
                  in
                  if not (Hashtbl.mem groups key) then
                    group_keys := key :: !group_keys;
                  let cur =
                    match Hashtbl.find_opt groups key with
                    | Some l -> l
                    | None -> []
                  in
                  Hashtbl.replace groups key ((d, e) :: cur)
                end)
        Effects.all_kinds)
    hot_defs;
  List.iter
    (fun key ->
      let candidates =
        List.sort
          (fun ((a : Callgraph.def), ea) ((b : Callgraph.def), eb) ->
            let c = Int.compare ea.e_len eb.e_len in
            if c <> 0 then c else String.compare a.name b.name)
          (match Hashtbl.find_opt groups key with Some l -> l | None -> [])
      in
      let rec report = function
        | [] -> ()
        | ((d : Callgraph.def), e) :: rest ->
            let witness = display_path cg e.e_path in
            let src = e.e_src in
            let source_def =
              match List.rev witness with last :: _ -> last | [] -> d.name
            in
            let message =
              Printf.sprintf
                "%s transitively reaches %s (%s) via %s (%s:%d); audit the \
                 source with an allow comment carrying a reason, or cut the \
                 path"
                d.name src.Effects.s_detail
                (kind_phrase src.s_kind)
                (String.concat " -> " witness)
                src.s_file src.s_line
            in
            let fkey =
              Printf.sprintf "%s->%s#%s" d.name source_def src.s_detail
            in
            let was_suppressed =
              emit ~rule:determinism_rule ~severity:Finding.Error ~key:fkey
                ~witness d message
            in
            (* a suppressed anchor only audits that one function; other
               hot-path functions reaching the same source still report *)
            if was_suppressed then report rest
        in
      report candidates)
    (List.rev !group_keys);
  {
    findings = List.sort Finding.compare !findings;
    suppressed = List.rev !suppressed;
  }
