(** Committed-baseline support: audit-then-gate.

    The baseline file is canonical JSON (sorted entries, stable
    formatting) so [--update-baseline] on an unchanged tree is
    byte-identical.  Matching is by (rule, file, {!Finding.stable_key}):
    symbolic keys survive line drift; the ["L<line>"] fallback pins
    purely positional findings.  Fresh findings and stale entries both
    fail the gate — the baseline can only shrink by being regenerated,
    never rot silently. *)

type entry = { b_rule : string; b_file : string; b_key : string }

val compare_entry : entry -> entry -> int

val of_finding : Finding.t -> entry

val of_findings : Finding.t list -> entry list
(** Sorted, deduplicated. *)

val save : path:string -> entry list -> unit
(** Write canonical JSON ([{"version": 1, "findings": [...]}]). *)

val load : path:string -> (entry list, string) result
(** Parse a baseline file (self-contained JSON subset reader — the
    analysis library depends only on compiler-libs). *)

type diff = {
  fresh : Finding.t list;  (** not in the baseline: fail the gate *)
  matched : (Finding.t * entry) list;  (** audited, carried *)
  gone : entry list;  (** no longer produced: fail, regenerate *)
}

val apply : entry list -> Finding.t list -> diff
