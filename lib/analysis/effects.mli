(** Per-function direct effect summaries.

    One scan per def body over the shared primitive catalogs
    ({!Rules.hashtbl_iter_idents} etc.); the interprocedural closure
    lives in {!Taint}.  Path allowlists of the corresponding syntactic
    rules are honored (lib/stats/rng.ml, lib/obs/span.ml are audited and
    produce no sources), but only-path restrictions are not: a clock
    read in bench/ is still a source — what matters interprocedurally is
    whether a hot path can reach it. *)

type kind =
  | Wall_clock
  | Randomness
  | Unordered_iter
  | Phys_compare  (** [==]/[!=] on two non-constant operands *)
  | Global_mutation
      (** references module-level mutable state (attached by {!Taint}
          from the domain-safety scan, not by {!direct}) *)
  | Io
  | Raises

type source = {
  s_kind : kind;
  s_detail : string;  (** the primitive, e.g. ["Hashtbl.iter"] *)
  s_file : string;
  s_line : int;
  s_col : int;
}

val kind_label : kind -> string
(** e.g. ["nondeterministic-iteration-order"]. *)

val all_kinds : kind list

val is_nondet : kind -> bool
(** The kinds that break the seeded byte-identical contract. *)

val rule_for : kind -> string option
(** The syntactic rule whose allowlist and inline suppressions also
    govern this effect kind. *)

val direct : Callgraph.def -> source list
(** Direct effect sources of one def body, in source order. *)
