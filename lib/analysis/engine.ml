(* Parse, walk, propagate, filter: the lint driver.

   The run is now two-layered.  Every file is parsed exactly once; the
   per-file syntactic rules run first, then (unless [whole_program] is
   off) the call graph is built over all parsed structures and the
   whole-program passes (determinism taint, domain-safety audit) run on
   top.  All passes share one Suppress table per file, and staleness is
   computed only after every pass has had its chance to mark entries
   used — so a suppression justified purely by an interprocedural
   finding (the callee-side audit of a taint source) is not reported
   stale by the per-file layer. *)

type result = {
  findings : Finding.t list;  (* sorted; suppressed findings removed *)
  suppressed : (Finding.t * string) list;
      (* what the suppressions silenced, with the audit reason *)
  files_scanned : int;
  suppressions_used : int;
  parse_failed : bool;
}

let empty =
  {
    findings = [];
    suppressed = [];
    files_scanned = 0;
    suppressions_used = 0;
    parse_failed = false;
  }

let parse_error_rule = "parse-error"
let unused_suppression_rule = "unused-suppression"
let missing_reason_rule = "suppression-missing-reason"

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  try
    if Filename.check_suffix path ".mli" then
      Ok (Ast_scan.Signature (Parse.interface lexbuf))
    else Ok (Ast_scan.Structure (Parse.implementation lexbuf))
  with exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        let main = report.Location.main in
        Error
          (Finding.of_location ~rule:parse_error_rule ~severity:Finding.Error
             ~message:(Format.asprintf "%t" main.Location.txt)
             main.Location.loc)
    | Some `Already_displayed | None ->
        Error
          (Finding.make ~rule:parse_error_rule ~severity:Finding.Error
             ~file:path ~line:1 ~col:0
             ~message:(Printexc.to_string exn) ()))

let lint_sources ?(rules = Rules.all) ?(whole_program = true) sources =
  let parse_findings = ref [] in
  let parse_failed = ref false in
  let parsed = ref [] in
  List.iter
    (fun (path, source) ->
      match parse ~path source with
      | Error f ->
          parse_failed := true;
          parse_findings := f :: !parse_findings
      | Ok file -> parsed := (path, file, Suppress.scan source) :: !parsed)
    sources;
  let parsed = List.rev !parsed in
  let supp_of : (string, Suppress.t) Hashtbl.t =
    Hashtbl.create (List.length parsed)
  in
  List.iter (fun (path, _, supp) -> Hashtbl.replace supp_of path supp) parsed;
  let findings = ref !parse_findings in
  let suppressed = ref [] in
  let keep_or_suppress supp fs =
    List.iter
      (fun (f : Finding.t) ->
        match Suppress.find supp ~rule:f.Finding.rule ~line:f.Finding.line with
        | Some entry ->
            suppressed :=
              (f, Option.value ~default:"" entry.Suppress.reason)
              :: !suppressed
        | None -> findings := f :: !findings)
      fs
  in
  (* layer 1: per-file syntactic rules *)
  List.iter
    (fun (path, file, supp) ->
      let raw =
        List.concat_map
          (fun rule ->
            if Rules.applies rule path then rule.Rules.check ~path file else [])
          rules
      in
      keep_or_suppress supp raw)
    parsed;
  (* layer 2+3: effect summaries and whole-program passes *)
  if whole_program then begin
    let cg =
      Callgraph.build (List.map (fun (path, file, _) -> (path, file)) parsed)
    in
    let audited ~rule ~file ~line =
      match Hashtbl.find_opt supp_of file with
      | None -> None
      | Some supp -> (
          match Suppress.find supp ~rule ~line with
          | Some entry -> Some entry.Suppress.reason
          | None -> None)
    in
    let outcome = Taint.run ~audited cg in
    findings := outcome.Taint.findings @ !findings;
    suppressed := outcome.Taint.suppressed @ !suppressed
  end;
  (* only now, after every pass has marked what it uses, judge the
     suppression comments themselves *)
  let used_total = ref 0 in
  List.iter
    (fun (path, _, supp) ->
      List.iter
        (fun (entry : Suppress.entry) ->
          if entry.Suppress.used then begin
            incr used_total;
            if entry.Suppress.reason = None then
              findings :=
                Finding.make ~rule:missing_reason_rule
                  ~severity:Finding.Warning ~file:path
                  ~line:entry.Suppress.s_line ~col:0
                  ~message:
                    (Printf.sprintf
                       "suppression for %s is in use but has no reason; \
                        append ' -- <why this is safe>'"
                       (match entry.Suppress.rules with
                       | [] -> "all rules"
                       | rs -> String.concat ", " rs))
                  ()
                :: !findings
          end
          else
            findings :=
              Finding.make ~rule:unused_suppression_rule
                ~severity:Finding.Warning ~file:path ~line:entry.Suppress.s_line
                ~col:0
                ~message:
                  (Printf.sprintf
                     "suppression for %s matches no finding; delete it"
                     (match entry.Suppress.rules with
                     | [] -> "all rules"
                     | rs -> String.concat ", " rs))
                ()
              :: !findings)
        (Suppress.entries supp))
    parsed;
  {
    findings = List.sort Finding.compare !findings;
    suppressed =
      List.sort (fun (a, _) (b, _) -> Finding.compare a b) !suppressed;
    files_scanned = List.length sources;
    suppressions_used = !used_total;
    parse_failed = !parse_failed;
  }

let lint_source ?rules ?(whole_program = false) ~path source =
  lint_sources ?rules ~whole_program [ (path, source) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* Directories named "fixtures" hold deliberately-dirty lint corpora for
   the test suite; recursive discovery skips them (like _build) so
   whole-tree runs stay clean, but passing such a path explicitly still
   lints it — that is how the fixture tests and the CI regression gate
   invoke the analyzer. *)
let skip_dir entry =
  entry = "" || entry.[0] = '.' || entry = "_build" || entry = "fixtures"

let rec discover_path acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else discover_path acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if is_source path then path :: acc
  else acc

(* Explicitly passed paths are always taken — skip_dir only filters
   *children* during recursion, so `bwclint test/fixtures/taint` lints
   the corpus that `bwclint test` skips. *)
let discover paths =
  List.sort_uniq String.compare (List.fold_left discover_path [] paths)

let lint_paths ?rules ?whole_program paths =
  lint_sources ?rules ?whole_program
    (List.map (fun path -> (path, read_file path)) (discover paths))
