(* Parse, walk, filter: the lint driver. *)

type result = {
  findings : Finding.t list;  (* sorted, suppressions already removed *)
  files_scanned : int;
  suppressions_used : int;
  parse_failed : bool;
}

let empty =
  {
    findings = [];
    files_scanned = 0;
    suppressions_used = 0;
    parse_failed = false;
  }

let parse_error_rule = "parse-error"

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  try
    if Filename.check_suffix path ".mli" then
      Ok (Ast_scan.Signature (Parse.interface lexbuf))
    else Ok (Ast_scan.Structure (Parse.implementation lexbuf))
  with exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        let main = report.Location.main in
        Error
          (Finding.of_location ~rule:parse_error_rule ~severity:Finding.Error
             ~message:(Format.asprintf "%t" main.Location.txt)
             main.Location.loc)
    | Some `Already_displayed | None ->
        Error
          (Finding.make ~rule:parse_error_rule ~severity:Finding.Error
             ~file:path ~line:1 ~col:0
             ~message:(Printexc.to_string exn)))

let unused_suppression_rule = "unused-suppression"

let lint_source ?(rules = Rules.all) ~path source =
  match parse ~path source with
  | Error f ->
      { empty with findings = [ f ]; files_scanned = 1; parse_failed = true }
  | Ok file ->
      let supp = Suppress.scan source in
      let raw =
        List.concat_map
          (fun rule ->
            if Rules.applies rule path then rule.Rules.check ~path file
            else [])
          rules
      in
      let kept =
        List.filter
          (fun f ->
            not
              (Suppress.suppressed supp ~rule:f.Finding.rule
                 ~line:f.Finding.line))
          raw
      in
      (* a suppression that matches nothing is stale and must go: it
         would silently mask a future regression at that line *)
      let stale =
        List.map
          (fun (line, rules) ->
            Finding.make ~rule:unused_suppression_rule
              ~severity:Finding.Warning ~file:path ~line ~col:0
              ~message:
                (Printf.sprintf
                   "suppression for %s matches no finding; delete it"
                   (match rules with
                   | [] -> "all rules"
                   | rs -> String.concat ", " rs)))
          (Suppress.unused supp)
      in
      {
        findings = List.sort Finding.compare (kept @ stale);
        files_scanned = 1;
        suppressions_used = Suppress.count supp - List.length stale;
        parse_failed = false;
      }

let merge a b =
  {
    findings = List.merge Finding.compare a.findings b.findings;
    files_scanned = a.files_scanned + b.files_scanned;
    suppressions_used = a.suppressions_used + b.suppressions_used;
    parse_failed = a.parse_failed || b.parse_failed;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?rules path = lint_source ?rules ~path (read_file path)

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec discover_path acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else discover_path acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if is_source path then path :: acc
  else acc

let discover paths =
  List.sort_uniq String.compare
    (List.fold_left discover_path [] paths)

let lint_paths ?rules paths =
  List.fold_left
    (fun acc path -> merge acc (lint_file ?rules path))
    empty (discover paths)
