(** Shared Parsetree-walking helpers for lint rules. *)

type file =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

val flatten_longident : Longident.t -> string list

val normalize : string list -> string list
(** Strips a leading ["Stdlib"] component so [Stdlib.Random.int] and
    [Random.int] match the same rules. *)

val ident_path : Parsetree.expression -> string list option
(** The normalized dotted path of an identifier expression, if any. *)

val dotted : string list -> string

val scan_exprs :
  file -> f:(rec_depth:int -> Parsetree.expression -> unit) -> unit
(** Calls [f] on every expression; [rec_depth] is the number of
    enclosing [let rec] binding groups (0 = not inside any). *)

val plain_args :
  (Asttypes.arg_label * Parsetree.expression) list -> Parsetree.expression list
(** Positional (unlabelled) arguments of an application. *)

val is_literal_list : Parsetree.expression -> bool
(** True for syntactic list literals: [[]], [[x]], [[x; y]], ... *)
