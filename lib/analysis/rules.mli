(** The lint rule catalog.

    Rules match syntactic patterns on the untyped Parsetree by
    (Stdlib-normalized) identifier path.  Severity [Error] marks hard
    invariant breaks (determinism, robustness), [Warning] marks
    complexity/hygiene concerns; both fail the lint run. *)

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  only_paths : string list;
      (** non-empty: rule applies only to files whose path contains one
          of these fragments *)
  allow_paths : string list;
      (** files whose path contains one of these fragments are exempt *)
  check : path:string -> Ast_scan.file -> Finding.t list;
}

val applies : t -> string -> bool
(** Whether the rule runs on the given file path (only/allow lists). *)

val path_exempt : t -> string -> bool
(** Whether the path is on the rule's audited allowlist — also consulted
    by the whole-program effect pass, so e.g. [lib/obs/span.ml] is not a
    wall-clock taint source. *)

(** Shared primitive catalogs — the same ident lists seed both the
    syntactic rules and the whole-program effect pass ({!Effects}), so
    the two analysis layers agree on what counts as a source. *)

val hashtbl_iter_idents : string list
val wall_clock_idents : string list
val print_idents : string list
val partial_idents : string list

val no_stdlib_random : t
val no_unordered_hashtbl_iter : t
val no_polymorphic_compare_on_floats : t
val no_partial_stdlib : t
val no_quadratic_append : t
val no_print_in_lib : t
val no_wall_clock_in_lib : t
val naked_failwith : t
val no_obj_magic : t

val no_marshal : t
(** [Marshal.to_*]/[from_*] banned in [lib/]: snapshot bytes must go
    through [Bwc_persist.Codec]'s versioned, checksummed, validating
    format so a restore can verify and reject instead of crashing. *)

val all : t list
val find : string -> t option
