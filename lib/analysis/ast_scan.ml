(* Shared Parsetree-walking helpers for lint rules. *)

type file =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

let flatten_longident lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (a, b) -> go (go acc b) a
  in
  go [] lid

(* [Stdlib.Random.int] and [Random.int] are the same function; rules
   match on the Stdlib-stripped path. *)
let normalize = function "Stdlib" :: rest -> rest | path -> path

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (normalize (flatten_longident txt))
  | _ -> None

let dotted path = String.concat "." path

(* Calls [f] on every expression of [file]; [rec_depth] counts how many
   enclosing [let rec] binding groups the expression sits inside (the
   body of [let rec f = e in body] is depth 0, [e] is depth >= 1). *)
let scan_exprs file ~f =
  let depth = ref 0 in
  let open Ast_iterator in
  let visit_rec_bindings it vbs =
    incr depth;
    List.iter (it.value_binding it) vbs;
    decr depth
  in
  let expr it (e : Parsetree.expression) =
    f ~rec_depth:!depth e;
    match e.pexp_desc with
    | Pexp_let (Recursive, vbs, body) ->
        visit_rec_bindings it vbs;
        it.expr it body
    | _ -> default_iterator.expr it e
  in
  let structure_item it (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (Recursive, vbs) -> visit_rec_bindings it vbs
    | _ -> default_iterator.structure_item it si
  in
  let it = { default_iterator with expr; structure_item } in
  match file with
  | Structure s -> it.structure it s
  | Signature s -> it.signature it s

(* Positional (unlabelled) arguments of an application. *)
let plain_args args =
  List.filter_map
    (fun (label, arg) ->
      match label with Asttypes.Nolabel -> Some arg | _ -> None)
    args

(* Recognize literal list expressions: [], [x], [x; y], x :: [y] ... *)
let rec is_literal_list (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> true
  | Pexp_construct ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ _; tl ]; _ })
    ->
      is_literal_list tl
  | _ -> false
