(* Cross-module call graph over Parsetrees.

   Each .ml file is one compilation unit; its module name is the
   capitalized basename (lib/sim/engine.ml -> Engine).  Because several
   directories reuse unit names (lib/sim/engine.ml vs
   lib/analysis/engine.ml), defs are keyed internally by
   (directory, qualified name) while the display name stays the
   familiar "Engine.run_round".

   Reference resolution is purely syntactic, in priority order:
     1. locally-bound names (params, let patterns, let module) — the
        shadowing approximation: a body that binds [hd] never resolves
        a bare [hd] to a module-level function;
     2. submodules of the enclosing unit, innermost scope first;
     3. file-level module aliases ([module P = Protocol]), expanded
        transitively;
     4. a unit in the same directory (intra-library references are
        unqualified across units: [Protocol.send] from lib/core);
     5. a unit with that name in exactly one scanned directory;
     6. library-qualified paths: [Bwc_sim.Engine.run] maps through the
        wrapped-library naming convention bwc_<d> <-> lib/<d>.
   Anything else (functor applications, locally-opened modules, stdlib
   calls) resolves to nothing — a conservative miss, never a wrong
   edge across same-named units. *)

type call = {
  callee : string;  (* internal id of the target def *)
  call_line : int;
  call_col : int;
}

type def = {
  id : string;  (* dir ^ "//" ^ name — unique across same-named units *)
  name : string;  (* display: "Engine.run_round", "Registry.Counter.incr" *)
  unit_dir : string;
  def_file : string;
  def_line : int;
  def_col : int;
  body : Parsetree.expression;
  is_toplevel_value : bool;
      (* a plain [let x = ...] at structure level (not syntactically a
         function) — the domain-safety pass scans these *)
  mutable calls : call list;
}

type t = {
  by_id : (string, def) Hashtbl.t;
  all : def list;  (* sorted by id *)
}

let normalize_path path =
  String.map (fun c -> if c = '\\' then '/' else c) path

let unit_name path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename (normalize_path path)))

let unit_dir path = Filename.dirname (normalize_path path)
let id_of ~dir name = dir ^ "//" ^ name

let is_upper_ident s =
  String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let is_lower_ident s =
  String.length s > 0 && ((s.[0] >= 'a' && s.[0] <= 'z') || s.[0] = '_')

(* bwc_<d> wrapped-library prefix -> lib/<d> directory *)
let lib_dir_of_prefix m =
  let lower = String.lowercase_ascii m in
  if String.length lower > 4 && String.sub lower 0 4 = "bwc_" then
    Some ("lib/" ^ String.sub lower 4 (String.length lower - 4))
  else None

(* ----- pass 1: collect defs and file-level module aliases ----- *)

type proto_def = {
  p_name : string;
  p_stack : string list;  (* enclosing submodules, innermost first *)
  p_expr : Parsetree.expression;
  p_loc : Location.t;
  p_toplevel_value : bool;
}

let rec is_syntactic_fun (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_syntactic_fun e
  | _ -> false

let collect_file (str : Parsetree.structure) =
  let defs = ref [] in
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let rec item stack (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let rec pat_name (p : Parsetree.pattern) =
              match p.ppat_desc with
              | Ppat_var { txt; _ } -> Some txt
              | Ppat_constraint (p, _) -> pat_name p
              | _ -> None
            in
            let name, named =
              match pat_name vb.pvb_pat with
              | Some n -> (n, true)
              | None ->
                  (* let () = ..., let _ = ..., destructuring lets:
                     unreferencable module-initialization code *)
                  ( Printf.sprintf "(init@%d)"
                      vb.pvb_loc.Location.loc_start.pos_lnum,
                    false )
            in
            defs :=
              {
                p_name = name;
                p_stack = stack;
                p_expr = vb.pvb_expr;
                p_loc = vb.pvb_pat.ppat_loc;
                p_toplevel_value = named && not (is_syntactic_fun vb.pvb_expr);
              }
              :: !defs)
          vbs
    | Pstr_module mb -> module_binding stack mb
    | Pstr_recmodule mbs -> List.iter (module_binding stack) mbs
    | _ -> ()
  and module_binding stack (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> module_expr stack name mb.pmb_expr
  and module_expr stack name (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> List.iter (item (name :: stack)) items
    | Pmod_constraint (me, _) -> module_expr stack name me
    | Pmod_ident { txt; _ } ->
        Hashtbl.replace aliases name
          (Ast_scan.normalize (Ast_scan.flatten_longident txt))
    | _ -> ()
  in
  List.iter (item []) str;
  (List.rev !defs, aliases)

(* ----- pass 2: reference extraction per def body ----- *)

(* Every name bound anywhere inside the body (function params, let
   patterns, match cases) plus let-module names: the shadowing set. *)
let bound_names (body : Parsetree.expression) =
  let vals = Hashtbl.create 16 in
  let mods = Hashtbl.create 4 in
  let open Ast_iterator in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
        Hashtbl.replace vals txt ()
    | _ -> ());
    default_iterator.pat it p
  in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_letmodule ({ txt = Some m; _ }, _, _) -> Hashtbl.replace mods m ()
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with pat; expr } in
  it.expr it body;
  (vals, mods)

let idents_used (body : Parsetree.expression) =
  let acc = ref [] in
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        acc :=
          (Ast_scan.normalize (Ast_scan.flatten_longident txt), e.pexp_loc)
          :: !acc
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  List.rev !acc

(* innermost-first enclosing-scope prefixes: for unit U and
   innermost-first submodule stack [B; A] -> [[U;A;B]; [U;A]; [U]] *)
let scope_prefixes unit rev_stack =
  let rec go rs =
    (unit :: List.rev rs) :: (match rs with [] -> [] | _ :: tl -> go tl)
  in
  go rev_stack

(* ----- build ----- *)

let build files =
  let by_id = Hashtbl.create 256 in
  let dirs_of_unit = Hashtbl.create 32 in
  let inserted = ref [] in
  let per_file = ref [] in
  (* pass 1: register every def *)
  List.iter
    (fun (path, file) ->
      match file with
      | Ast_scan.Signature _ -> ()
      | Ast_scan.Structure str ->
          let path = normalize_path path in
          let unit = unit_name path in
          let dir = unit_dir path in
          let protos, aliases = collect_file str in
          let dirs =
            match Hashtbl.find_opt dirs_of_unit unit with
            | Some ds -> ds
            | None -> []
          in
          if not (List.mem dir dirs) then
            Hashtbl.replace dirs_of_unit unit
              (List.sort String.compare (dir :: dirs));
          let defs =
            List.filter_map
              (fun p ->
                let name =
                  String.concat "." (unit :: List.rev (p.p_name :: p.p_stack))
                in
                let id = id_of ~dir name in
                (* first binding of a rebound top-level name wins; a
                   rare shadowing rebind would otherwise overwrite the
                   node other files already resolved against *)
                if Hashtbl.mem by_id id then None
                else begin
                  let pos = p.p_loc.Location.loc_start in
                  let d =
                    {
                      id;
                      name;
                      unit_dir = dir;
                      def_file = path;
                      def_line = pos.pos_lnum;
                      def_col = pos.pos_cnum - pos.pos_bol;
                      body = p.p_expr;
                      is_toplevel_value = p.p_toplevel_value;
                      calls = [];
                    }
                  in
                  Hashtbl.replace by_id id d;
                  inserted := d :: !inserted;
                  Some (d, p)
                end)
              protos
          in
          per_file := (dir, unit, aliases, defs) :: !per_file)
    files;
  let find_id id = Hashtbl.find_opt by_id id in
  (* pass 2: resolve references *)
  List.iter
    (fun (dir, unit, aliases, defs) ->
      let expand_alias m =
        let rec go fuel m rest =
          if fuel = 0 then m :: rest
          else
            match Hashtbl.find_opt aliases m with
            | Some (m' :: rest') ->
                go (fuel - 1) m' (List.rev_append (List.rev rest') rest)
            | Some [] | None -> m :: rest
        in
        go 5 m []
      in
      let lookup_in_dir d u rest =
        if rest = [] then None
        else find_id (id_of ~dir:d (String.concat "." (u :: rest)))
      in
      let resolve_qualified stack p =
        match p with
        | [] -> None
        | m :: rest -> (
            match lib_dir_of_prefix m with
            | Some libdir -> (
                match rest with
                | u :: rest' when is_upper_ident u ->
                    lookup_in_dir libdir u rest'
                | _ -> None)
            | None -> (
                (* submodule of the enclosing unit, innermost first *)
                let sub =
                  List.find_map
                    (fun prefix ->
                      find_id
                        (id_of ~dir (String.concat "." (prefix @ (m :: rest)))))
                    (scope_prefixes unit stack)
                in
                match sub with
                | Some d -> Some d
                | None -> (
                    match lookup_in_dir dir m rest with
                    | Some d -> Some d
                    | None -> (
                        match Hashtbl.find_opt dirs_of_unit m with
                        | Some [ d ] when d <> dir -> lookup_in_dir d m rest
                        | _ -> None))))
      in
      List.iter
        (fun (d, proto) ->
          let locals, local_mods = bound_names d.body in
          let seen = Hashtbl.create 8 in
          let add callee (loc : Location.t) =
            if callee.id <> d.id && not (Hashtbl.mem seen callee.id) then begin
              Hashtbl.replace seen callee.id ();
              let pos = loc.Location.loc_start in
              d.calls <-
                {
                  callee = callee.id;
                  call_line = pos.pos_lnum;
                  call_col = pos.pos_cnum - pos.pos_bol;
                }
                :: d.calls
            end
          in
          List.iter
            (fun (path, loc) ->
              match path with
              | [ x ] when is_lower_ident x ->
                  if not (Hashtbl.mem locals x) then (
                    match
                      List.find_map
                        (fun prefix ->
                          find_id
                            (id_of ~dir (String.concat "." prefix ^ "." ^ x)))
                        (scope_prefixes unit proto.p_stack)
                    with
                    | Some callee -> add callee loc
                    | None -> ())
              | m :: rest when is_upper_ident m ->
                  if not (Hashtbl.mem local_mods m) then (
                    match resolve_qualified proto.p_stack (expand_alias m @ rest) with
                    | Some callee -> add callee loc
                    | None -> ())
              | _ -> ())
            (idents_used d.body);
          d.calls <- List.rev d.calls)
        defs)
    (List.rev !per_file);
  { by_id; all = List.sort (fun a b -> String.compare a.id b.id) !inserted }

let defs t = t.all
let find t id = Hashtbl.find_opt t.by_id id
let find_by_name t name = List.filter (fun d -> d.name = name) t.all

(* Reverse adjacency: callee id -> caller ids.  Callers may appear once
   per distinct edge; the taint worklist tolerates duplicates. *)
let callers t =
  let rev = Hashtbl.create 256 in
  List.iter
    (fun d ->
      List.iter
        (fun c ->
          let cur =
            match Hashtbl.find_opt rev c.callee with Some l -> l | None -> []
          in
          Hashtbl.replace rev c.callee (d.id :: cur))
        d.calls)
    t.all;
  rev
