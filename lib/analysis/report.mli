(** Reporters for lint results. *)

val human : Format.formatter -> Engine.result -> unit
(** One [file:line:col: severity [rule] message] line per finding, then
    a summary line. *)

val json : Format.formatter -> Engine.result -> unit
(** Machine-readable report:
    [{"files_scanned":., "errors":., "warnings":., "suppressions_used":.,
      "parse_failed":., "findings":[{file,line,col,rule,severity,message}]}] *)

val json_string : string -> string
(** JSON-quote and escape a string. *)

val rule_catalog : Format.formatter -> unit -> unit
(** Human-readable listing of every rule with severity, doc and scope. *)
