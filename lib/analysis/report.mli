(** Reporters for lint results. *)

val meta_rules : (string * Finding.severity * string) list
(** Rules emitted by the driver itself (parse-error,
    unused-suppression, suppression-missing-reason) — shared with the
    SARIF rule table. *)

val human : Format.formatter -> Engine.result -> unit
(** One [file:line:col: severity [rule] message] line per finding
    (multi-hop findings get a [witness:] continuation line), then a
    summary line. *)

val suppression_audit : Format.formatter -> Engine.result -> unit
(** The audited-suppression trail: one line per silenced finding with
    its recorded reason. *)

val json : Format.formatter -> Engine.result -> unit
(** Machine-readable report:
    [{"files_scanned":., "errors":., "warnings":., "suppressions_used":.,
      "parse_failed":., "findings":[{file,line,col,rule,severity,key,
      message,witness?}], "suppressed":[{reason,finding}]}] *)

val json_string : string -> string
(** JSON-quote and escape a string. *)

val rule_catalog : Format.formatter -> unit -> unit
(** Human-readable listing of every rule — syntactic catalog,
    whole-program families, driver meta rules — with severity and
    doc. *)
