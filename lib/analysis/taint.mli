(** Whole-program passes: interprocedural determinism taint and the
    domain-safety audit.

    Effect summaries ({!Effects.direct}) are propagated backwards over
    the call graph to a fixed point, keeping per (function, kind) the
    best witness — shortest call chain, lexicographic tie-breaks — so
    reruns are byte-identical.  Two rule families sit on the closure:

    - [determinism-taint] (error): a function in a hot-path unit
      (Engine, Protocol, Find_cluster — excluding lib/analysis's own
      engine) transitively reaches a nondeterminism primitive; the
      finding carries the full witness path.
    - [domain-unsafe-global] / [domain-unsafe-capture] (warning):
      module-level mutable state and top-level closures over fresh
      mutable state — the concrete blocker list for Domain-sharded
      multicore execution. *)

val determinism_rule : string
val global_rule : string
val capture_rule : string

val rules : (string * Finding.severity * string) list
(** (id, severity, doc) for the catalog and SARIF rule metadata. *)

type audited = rule:string -> file:string -> line:int -> string option option
(** [None]: no suppression at that site.  [Some reason_opt]: an inline
    suppression matches ([reason_opt] is its justification, [None] when
    the comment lacks one).  Implementations must mark the suppression
    used, so interprocedural-only suppressions are never reported
    stale. *)

type outcome = {
  findings : Finding.t list;
  suppressed : (Finding.t * string) list;
      (** findings silenced by an audited suppression, with the reason *)
}

val run : audited:audited -> Callgraph.t -> outcome

(** {2 Effect summaries (for reporting and tests)} *)

type entry = {
  e_len : int;
  e_path : string list;  (** def ids, reported def first, source last *)
  e_src : Effects.source;
}

type summary = {
  sum_def : Callgraph.def;
  sum_effects : (Effects.kind * entry) list;  (** in kind order *)
}

val summaries : audited:audited -> Callgraph.t -> summary list
(** The closed per-function effect table, defs sorted by id; defs with
    no effects are omitted. *)
