(* Per-function direct effect summaries.

   Each def body is scanned once for primitive effect sources; the
   interprocedural closure over the call graph happens in Taint.  The
   primitive catalogs are shared with the syntactic rules (Rules.*_idents)
   so the per-file and whole-program layers can never disagree about
   what counts as a source.

   Scoping mirrors the rule catalog's allowlists but not its only-paths:
   lib/stats/rng.ml is the audited randomness module and lib/obs/span.ml
   the audited clock reader, so uses *inside* them are not sources; a
   clock read in bench/ however is still a source, because what matters
   interprocedurally is whether a hot path can reach it, not where it
   lives. *)

type kind =
  | Wall_clock
  | Randomness
  | Unordered_iter
  | Phys_compare
  | Global_mutation
  | Io
  | Raises

type source = {
  s_kind : kind;
  s_detail : string;  (* the primitive, e.g. "Hashtbl.iter" *)
  s_file : string;
  s_line : int;
  s_col : int;
}

let kind_label = function
  | Wall_clock -> "reads-wall-clock"
  | Randomness -> "uses-randomness"
  | Unordered_iter -> "nondeterministic-iteration-order"
  | Phys_compare -> "physical-equality"
  | Global_mutation -> "mutates-global-state"
  | Io -> "performs-io"
  | Raises -> "raises"

let all_kinds =
  [
    Wall_clock;
    Randomness;
    Unordered_iter;
    Phys_compare;
    Global_mutation;
    Io;
    Raises;
  ]

(* The kinds that break the seeded byte-identical contract. *)
let is_nondet = function
  | Wall_clock | Randomness | Unordered_iter | Phys_compare -> true
  | Global_mutation | Io | Raises -> false

(* The syntactic rule whose audited-path allowlist (and inline
   suppressions) also govern this effect kind. *)
let rule_for = function
  | Wall_clock -> Some "no-wall-clock-in-lib"
  | Randomness -> Some "no-stdlib-random"
  | Unordered_iter -> Some "no-unordered-hashtbl-iter"
  | Phys_compare | Global_mutation | Io | Raises -> None

let path_exempt kind file =
  match rule_for kind with
  | None -> false
  | Some id -> (
      match Rules.find id with
      | None -> false
      | Some rule -> Rules.path_exempt rule file)

let raise_idents = [ "failwith"; "invalid_arg"; "raise"; "raise_notrace" ]
let io_extra_idents = [ "output_string"; "output_char"; "open_out"; "open_in" ]

let source_of kind detail (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    s_kind = kind;
    s_detail = detail;
    s_file = p.pos_fname;
    s_line = p.pos_lnum;
    s_col = p.pos_cnum - p.pos_bol;
  }

let is_constant (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_constant _ -> true | _ -> false

(* Direct sources of one def body, in source order. *)
let direct (d : Callgraph.def) =
  let acc = ref [] in
  let add kind detail loc =
    if not (path_exempt kind d.Callgraph.def_file) then
      acc := source_of kind detail loc :: !acc
  in
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident _ -> (
        match Ast_scan.ident_path e with
        | None -> ()
        | Some path ->
            let dotted = Ast_scan.dotted path in
            if List.mem dotted Rules.wall_clock_idents then
              add Wall_clock dotted e.pexp_loc
            else if match path with "Random" :: _ :: _ -> true | _ -> false
            then add Randomness dotted e.pexp_loc
            else if List.mem dotted Rules.hashtbl_iter_idents then
              add Unordered_iter dotted e.pexp_loc
            else if
              List.mem dotted Rules.print_idents
              || List.mem dotted io_extra_idents
            then add Io dotted e.pexp_loc
            else if
              List.mem dotted raise_idents
              || List.mem dotted Rules.partial_idents
            then add Raises dotted e.pexp_loc)
    | Pexp_apply (fn, args) -> (
        match Ast_scan.ident_path fn with
        | Some [ (("==" | "!=") as op) ] ->
            (* physical equality on two non-constant operands: observes
               sharing, which seed-identical runs need not preserve *)
            let plain = Ast_scan.plain_args args in
            if List.length plain >= 2 && not (List.exists is_constant plain)
            then add Phys_compare op fn.pexp_loc
        | _ -> ())
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it d.Callgraph.body;
  List.rev !acc
