(** Cross-module call-graph builder over untyped Parsetrees.

    Each scanned [.ml] file is a compilation unit named by its
    capitalized basename; defs are keyed by (directory, qualified name)
    so same-named units in different libraries (lib/sim/engine.ml vs
    lib/analysis/engine.ml) never alias.  Resolution handles module
    aliases ([module P = Protocol]), nested submodules, local shadowing
    (bound names and let-module), intra-directory unit references and
    wrapped-library paths ([Bwc_sim.Engine.run] via the
    bwc_<d> <-> lib/<d> convention).  Misses are conservative: an
    unresolvable reference produces no edge, never a wrong one. *)

type call = {
  callee : string;  (** internal id of the target def *)
  call_line : int;
  call_col : int;
}

type def = {
  id : string;  (** [dir ^ "//" ^ name] — unique across same-named units *)
  name : string;  (** display name, e.g. ["Engine.run_round"] *)
  unit_dir : string;
  def_file : string;
  def_line : int;
  def_col : int;
  body : Parsetree.expression;
  is_toplevel_value : bool;
      (** a structure-level [let x = ...] that is not syntactically a
          function — input to the domain-safety pass *)
  mutable calls : call list;  (** resolved, deduped, in source order *)
}

type t

val build : (string * Ast_scan.file) list -> t
(** Build the graph over every parsed structure (signatures are
    ignored).  Paths select unit names and directories. *)

val defs : t -> def list
(** All defs, sorted by id — deterministic traversal order. *)

val find : t -> string -> def option
(** Look up a def by internal id. *)

val find_by_name : t -> string -> def list
(** Look up defs by display name (may match several directories). *)

val callers : t -> (string, string list) Hashtbl.t
(** Reverse adjacency: callee id -> caller ids (possibly with
    duplicates; consumers must tolerate them). *)

val unit_name : string -> string
(** ["lib/sim/engine.ml"] -> ["Engine"]. *)

val unit_dir : string -> string
(** ["lib/sim/engine.ml"] -> ["lib/sim"]. *)
