type severity =
  | Error
  | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  key : string option;
  witness : string list;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let make ?key ?(witness = []) ~rule ~severity ~file ~line ~col ~message () =
  { rule; severity; file; line; col; message; key; witness }

let of_location ?key ?witness ~rule ~severity ~message (loc : Location.t) =
  let p = loc.loc_start in
  make ?key ?witness ~rule ~severity ~file:p.pos_fname ~line:p.pos_lnum
    ~col:(p.pos_cnum - p.pos_bol) ~message ()

(* Stable identity for baseline matching: whole-program findings carry a
   symbolic key that survives unrelated edits; syntactic findings fall
   back to their line anchor. *)
let stable_key t =
  match t.key with Some k -> k | None -> Printf.sprintf "L%d" t.line

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c
        else String.compare (stable_key a) (stable_key b)

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s" t.file t.line t.col
    (severity_label t.severity) t.rule t.message;
  match t.witness with
  | [] | [ _ ] -> ()
  | path ->
      Format.fprintf ppf "@\n    witness: %s" (String.concat " -> " path)
