type severity =
  | Error
  | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~file ~line ~col ~message =
  { rule; severity; file; line; col; message }

let of_location ~rule ~severity ~message (loc : Location.t) =
  let p = loc.loc_start in
  {
    rule;
    severity;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s" t.file t.line t.col
    (severity_label t.severity) t.rule t.message
