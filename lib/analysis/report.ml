let count sev findings =
  List.length (List.filter (fun f -> f.Finding.severity = sev) findings)

(* Meta rules emitted by the driver itself (not the catalog or the
   whole-program passes); shared with the SARIF reporter's rule table. *)
let meta_rules =
  [
    ("parse-error", Finding.Error, "The file failed to parse.");
    ( "unused-suppression",
      Finding.Warning,
      "An inline bwclint allow comment matches no finding in any pass — \
       syntactic or whole-program — and should be removed." );
    ( "suppression-missing-reason",
      Finding.Warning,
      "An inline suppression is in use but carries no '-- reason' \
       justification; audited suppressions must say why they are safe." );
  ]

let human ppf (r : Engine.result) =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) r.findings;
  let errors = count Finding.Error r.findings in
  let warnings = count Finding.Warning r.findings in
  Format.fprintf ppf "%d file%s scanned: %d error%s, %d warning%s"
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s");
  if r.suppressions_used > 0 then
    Format.fprintf ppf " (%d suppression%s in effect)" r.suppressions_used
      (if r.suppressions_used = 1 then "" else "s");
  Format.fprintf ppf "@."

let suppression_audit ppf (r : Engine.result) =
  if r.suppressed <> [] then begin
    Format.fprintf ppf "audited suppressions:@.";
    List.iter
      (fun ((f : Finding.t), reason) ->
        Format.fprintf ppf "  %s:%d [%s] -- %s@." f.file f.line f.rule
          (if reason = "" then "(no reason recorded)" else reason))
      r.suppressed
  end

(* ----- JSON ----- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_finding ppf (f : Finding.t) =
  Format.fprintf ppf
    "{\"file\":%s,\"line\":%d,\"col\":%d,\"rule\":%s,\"severity\":%s,\"key\":%s,\"message\":%s"
    (json_string f.file) f.line f.col (json_string f.rule)
    (json_string (Finding.severity_label f.severity))
    (json_string (Finding.stable_key f))
    (json_string f.message);
  if f.witness <> [] then begin
    Format.fprintf ppf ",\"witness\":[";
    List.iteri
      (fun i step ->
        if i > 0 then Format.fprintf ppf ",";
        Format.fprintf ppf "%s" (json_string step))
      f.witness;
    Format.fprintf ppf "]"
  end;
  Format.fprintf ppf "}"

let json ppf (r : Engine.result) =
  Format.fprintf ppf "{@[<v 1>@,\"files_scanned\": %d,@,\"errors\": %d,@,"
    r.files_scanned
    (count Finding.Error r.findings);
  Format.fprintf ppf "\"warnings\": %d,@,\"suppressions_used\": %d,@,"
    (count Finding.Warning r.findings)
    r.suppressions_used;
  Format.fprintf ppf "\"parse_failed\": %b,@,\"findings\": [@[<v 1>"
    r.parse_failed;
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@,%a" json_finding f)
    r.findings;
  Format.fprintf ppf "@]@,],@,\"suppressed\": [@[<v 1>";
  List.iteri
    (fun i ((f : Finding.t), reason) ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@,{\"reason\":%s,\"finding\":%a}" (json_string reason)
        json_finding f)
    r.suppressed;
  Format.fprintf ppf "@]@,]@]@,}@."

let rule_catalog ppf () =
  let line id sev doc =
    Format.fprintf ppf "%-34s %-7s %s@." id (Finding.severity_label sev) doc
  in
  List.iter
    (fun (r : Rules.t) ->
      line r.id r.severity r.doc;
      if r.only_paths <> [] then
        Format.fprintf ppf "%-34s         only: %s@." ""
          (String.concat ", " r.only_paths);
      if r.allow_paths <> [] then
        Format.fprintf ppf "%-34s         exempt: %s@." ""
          (String.concat ", " r.allow_paths))
    Rules.all;
  Format.fprintf ppf "@.whole-program rules:@.";
  List.iter (fun (id, sev, doc) -> line id sev doc) Taint.rules;
  Format.fprintf ppf "@.driver meta rules:@.";
  List.iter (fun (id, sev, doc) -> line id sev doc) meta_rules
