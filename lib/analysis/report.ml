let count sev findings =
  List.length (List.filter (fun f -> f.Finding.severity = sev) findings)

let human ppf (r : Engine.result) =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) r.findings;
  let errors = count Finding.Error r.findings in
  let warnings = count Finding.Warning r.findings in
  Format.fprintf ppf "%d file%s scanned: %d error%s, %d warning%s"
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s");
  if r.suppressions_used > 0 then
    Format.fprintf ppf " (%d finding%s suppressed inline)" r.suppressions_used
      (if r.suppressions_used = 1 then "" else "s");
  Format.fprintf ppf "@."

(* ----- JSON ----- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_finding ppf (f : Finding.t) =
  Format.fprintf ppf
    "{\"file\":%s,\"line\":%d,\"col\":%d,\"rule\":%s,\"severity\":%s,\"message\":%s}"
    (json_string f.file) f.line f.col (json_string f.rule)
    (json_string (Finding.severity_label f.severity))
    (json_string f.message)

let json ppf (r : Engine.result) =
  Format.fprintf ppf "{@[<v 1>@,\"files_scanned\": %d,@,\"errors\": %d,@,"
    r.files_scanned
    (count Finding.Error r.findings);
  Format.fprintf ppf "\"warnings\": %d,@,\"suppressions_used\": %d,@,"
    (count Finding.Warning r.findings)
    r.suppressions_used;
  Format.fprintf ppf "\"parse_failed\": %b,@,\"findings\": [@[<v 1>"
    r.parse_failed;
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@,%a" json_finding f)
    r.findings;
  Format.fprintf ppf "@]@,]@]@,}@."

let rule_catalog ppf () =
  List.iter
    (fun (r : Rules.t) ->
      Format.fprintf ppf "%-34s %-7s %s@." r.id
        (Finding.severity_label r.severity)
        r.doc;
      if r.only_paths <> [] then
        Format.fprintf ppf "%-34s         only: %s@." ""
          (String.concat ", " r.only_paths);
      if r.allow_paths <> [] then
        Format.fprintf ppf "%-34s         exempt: %s@." ""
          (String.concat ", " r.allow_paths))
    Rules.all
