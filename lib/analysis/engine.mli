(** The lint driver: parse sources with compiler-libs, run the
    syntactic rule catalog, build the cross-module call graph, run the
    whole-program passes (determinism taint, domain-safety audit), and
    judge suppressions last.

    All passes share one suppression table per file and staleness is
    computed only after every pass has marked what it used — a
    suppression justified purely by an interprocedural finding is never
    reported stale. *)

type result = {
  findings : Finding.t list;
      (** sorted by location; suppressed findings removed *)
  suppressed : (Finding.t * string) list;
      (** what inline suppressions silenced, with the audit reason
          (empty string when the comment has none) *)
  files_scanned : int;
  suppressions_used : int;
  parse_failed : bool;  (** at least one file failed to parse *)
}

val empty : result

val parse_error_rule : string
(** Rule id used for findings describing files that fail to parse. *)

val unused_suppression_rule : string
(** Rule id for stale suppression comments that match nothing in any
    pass. *)

val missing_reason_rule : string
(** Rule id for suppressions that are in use but carry no ['-- reason']
    justification. *)

val parse :
  path:string -> string -> (Ast_scan.file, Finding.t) Stdlib.result

val read_file : string -> string

val lint_sources :
  ?rules:Rules.t list ->
  ?whole_program:bool ->
  (string * string) list ->
  result
(** Lint a set of (path, source) pairs as one program.
    [whole_program] (default [true]) controls the call-graph passes. *)

val lint_source :
  ?rules:Rules.t list -> ?whole_program:bool -> path:string -> string -> result
(** Single-file convenience; [whole_program] defaults to [false] here
    (a lone file is rarely a meaningful program). *)

val discover : string list -> string list
(** Expand files/directories into a sorted list of .ml/.mli files.
    Recursive descent skips [_build], dot-directories and directories
    named [fixtures] (deliberately-dirty lint corpora); explicitly
    passed paths are always taken. *)

val lint_paths :
  ?rules:Rules.t list -> ?whole_program:bool -> string list -> result
(** [discover] then lint everything as one program. *)
