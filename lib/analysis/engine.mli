(** The lint driver: parse sources with compiler-libs, run the rule
    catalog, apply suppressions. *)

type result = {
  findings : Finding.t list;
      (** sorted by location; suppressed findings removed *)
  files_scanned : int;
  suppressions_used : int;
  parse_failed : bool;  (** at least one file failed to parse *)
}

val empty : result

val parse_error_rule : string
(** Rule id used for findings describing files that fail to parse. *)

val unused_suppression_rule : string
(** Rule id used for stale suppression comments that match nothing. *)

val lint_source : ?rules:Rules.t list -> path:string -> string -> result
(** Lint in-memory source text.  [path] selects which rules apply
    (only/allow path lists) and whether to parse as .ml or .mli. *)

val lint_file : ?rules:Rules.t list -> string -> result

val discover : string list -> string list
(** Expand files/directories into a sorted list of .ml/.mli files,
    skipping [_build] and dot-directories. *)

val lint_paths : ?rules:Rules.t list -> string list -> result
(** [discover] then lint every file, merging results. *)

val merge : result -> result -> result
