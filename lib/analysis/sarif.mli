(** SARIF 2.1.0 reporter.

    Findings become [results] with physical locations; multi-hop
    witness paths become [codeFlows]/[threadFlows] with logical
    locations per step, so code-scanning UIs render the call chain.
    Suppressed findings are emitted too, marked with an [inSource]
    suppression carrying the audit justification — the UI is the audit
    trail; exit-code policy stays in the CLI. *)

val to_string : ?suppressed:(Finding.t * string) list -> Finding.t list -> string
(** The complete SARIF document (one run, tool [bwclint], full rule
    metadata including whole-program and meta rules). *)
