(* The rule catalog.

   Each rule matches syntactic patterns on the Parsetree; no typing
   information is available, so matching is by (Stdlib-normalized)
   identifier path.  That makes the rules conservative-by-name: a local
   module shadowing [Hashtbl] would still be flagged, and a locally
   opened [Random] escapes notice — acceptable for a codebase-internal
   invariant checker, and each rule documents its intent. *)

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  only_paths : string list;
      (* non-empty: rule applies only to files whose (/-normalized)
         path contains one of these fragments *)
  allow_paths : string list;
      (* files whose path contains one of these fragments are exempt *)
  check : path:string -> Ast_scan.file -> Finding.t list;
}

let normalize_path path =
  String.map (fun c -> if c = '\\' then '/' else c) path

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let path_exempt rule path =
  let path = normalize_path path in
  List.exists (fun frag -> contains ~sub:frag path) rule.allow_paths

let applies rule path =
  let norm = normalize_path path in
  (rule.only_paths = []
  || List.exists (fun frag -> contains ~sub:frag norm) rule.only_paths)
  && not (path_exempt rule path)

(* ----- generic helpers ----- *)

let finding rule (e : Parsetree.expression) message =
  Finding.of_location ~rule:rule.id ~severity:rule.severity ~message
    e.pexp_loc

(* A rule that flags uses of identifiers from a banned set. *)
let banned_idents ~id ~severity ~doc ?(only_paths = []) ?(allow_paths = [])
    ~message idents =
  let rec rule =
    {
      id;
      severity;
      doc;
      only_paths;
      allow_paths;
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match Ast_scan.ident_path e with
              | Some p when List.mem (Ast_scan.dotted p) idents ->
                  acc := finding rule e (message (Ast_scan.dotted p)) :: !acc
              | _ -> ());
          !acc);
    }
  in
  rule

(* ----- shared primitive catalogs -----

   These ident lists are the single source of truth for "what counts as
   a nondeterminism/IO primitive": the per-file syntactic rules below
   match on them, and the whole-program effect pass (Effects) seeds its
   taint sources from the very same lists, so the two layers can never
   disagree about what is banned. *)

let hashtbl_iter_idents =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.filter_map_inplace";
    "MoreLabels.Hashtbl.iter";
    "MoreLabels.Hashtbl.fold";
  ]

let wall_clock_idents = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let print_idents =
  [
    "print_endline";
    "print_string";
    "print_newline";
    "print_int";
    "print_float";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "exit";
  ]

let partial_idents = [ "List.hd"; "List.tl"; "List.nth"; "Option.get" ]

(* ----- determinism rules ----- *)

let no_stdlib_random =
  let rec rule =
    {
      id = "no-stdlib-random";
      severity = Finding.Error;
      doc =
        "Stdlib.Random draws from ambient global state and breaks seeded \
         bit-for-bit reproducibility; use Bwc_stats.Rng (threaded \
         explicitly) instead.";
      only_paths = [];
      allow_paths = [ "lib/stats/rng.ml" ];
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match Ast_scan.ident_path e with
              | Some ("Random" :: _ :: _) ->
                  acc :=
                    finding rule e
                      "Stdlib.Random breaks seeded determinism; thread a \
                       Bwc_stats.Rng.t instead"
                    :: !acc
              | _ -> ());
          !acc);
    }
  in
  rule

let no_unordered_hashtbl_iter =
  banned_idents ~id:"no-unordered-hashtbl-iter" ~severity:Finding.Error
    ~doc:
      "Hashtbl.iter/fold/filter_map_inplace visit bindings in bucket order, \
       which can leak hash-layout nondeterminism into protocol state, \
       counters or output; traverse in sorted key order \
       (Bwc_stats.Tbl.iter_sorted/fold_sorted) or suppress with a proof of \
       order-independence."
    ~message:(fun ident ->
      ident
      ^ " visits bindings in nondeterministic bucket order; use \
         Bwc_stats.Tbl sorted traversal, or suppress with a justification \
         if the body is order-independent")
    hashtbl_iter_idents

let float_comparators = [ "="; "<>"; "compare" ]

let no_polymorphic_compare_on_floats =
  let rec rule =
    {
      id = "no-polymorphic-compare-on-floats";
      severity = Finding.Error;
      doc =
        "Polymorphic =/<>/compare on floats has surprising NaN behavior and \
         invites exact-equality bugs; use Float.equal, Float.compare or an \
         epsilon helper.";
      only_paths = [];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let is_floaty (e : Parsetree.expression) =
            match e.pexp_desc with
            | Pexp_constant (Pconst_float _) -> true
            | Pexp_ident { txt; _ } -> (
                match Ast_scan.normalize (Ast_scan.flatten_longident txt) with
                | "Float" :: _ :: _ -> true
                | _ -> false)
            | Pexp_apply (fn, _) -> (
                match Ast_scan.ident_path fn with
                | Some ("Float" :: _ :: _) -> true
                | _ -> false)
            | _ -> false
          in
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match e.pexp_desc with
              | Pexp_apply (fn, args) -> (
                  match Ast_scan.ident_path fn with
                  | Some [ op ] when List.mem op float_comparators ->
                      let plain = Ast_scan.plain_args args in
                      if List.length plain >= 2 && List.exists is_floaty plain
                      then
                        acc :=
                          finding rule e
                            (Printf.sprintf
                               "polymorphic %s on float operands; use \
                                Float.equal/Float.compare or an epsilon \
                                helper"
                               op)
                          :: !acc
                  | _ -> ())
              | _ -> ());
          !acc);
    }
  in
  rule

(* ----- robustness rules ----- *)

let no_partial_stdlib =
  banned_idents ~id:"no-partial-stdlib" ~severity:Finding.Error
    ~doc:
      "List.hd/List.tl/List.nth/Option.get raise on the empty case; in \
       protocol hot paths (lib/core, lib/sim) a malformed message or empty \
       neighbor set must degrade, not crash — pattern-match or use _opt \
       accessors."
    ~only_paths:[ "lib/core/"; "lib/sim/" ]
    ~message:(fun ident ->
      ident
      ^ " raises on the empty case; pattern-match or use an _opt accessor \
         so faults degrade instead of crashing")
    partial_idents

let naked_failwith =
  let rec rule =
    {
      id = "naked-failwith";
      severity = Finding.Warning;
      doc =
        "failwith messages must carry a \"Module.fn: \" prefix so failures \
         are greppable and attributable; prefer invalid_arg for caller \
         errors.";
      only_paths = [];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let prefixed s =
            (* "Module.fn: ..." — uppercase start, a '.' before the first
               ':', and a ':' present at all *)
            match String.index_opt s ':' with
            | None -> false
            | Some i ->
                i > 0
                && s.[0] >= 'A'
                && s.[0] <= 'Z'
                && String.contains (String.sub s 0 i) '.'
          in
          let rec literal_of (e : Parsetree.expression) =
            match e.pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) -> Some s
            | Pexp_apply (fn, args) -> (
                (* Printf.sprintf "fmt" ... — check the format literal *)
                match (Ast_scan.ident_path fn, Ast_scan.plain_args args) with
                | Some [ ("Printf" | "Format"); "sprintf" ], fmt :: _ ->
                    literal_of fmt
                | _ -> None)
            | _ -> None
          in
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match e.pexp_desc with
              | Pexp_apply (fn, args) when Ast_scan.ident_path fn = Some [ "failwith" ]
                -> (
                  match Ast_scan.plain_args args with
                  | arg :: _ -> (
                      match literal_of arg with
                      | Some s when prefixed s -> ()
                      | Some _ ->
                          acc :=
                            finding rule e
                              "failwith message lacks a \"Module.fn: \" \
                               prefix"
                            :: !acc
                      | None ->
                          acc :=
                            finding rule e
                              "failwith with a dynamic message; start it \
                               with a \"Module.fn: \" literal prefix"
                            :: !acc)
                  | [] -> ())
              | _ -> ());
          !acc);
    }
  in
  rule

let no_marshal =
  let rec rule =
    {
      id = "no-marshal";
      severity = Finding.Error;
      doc =
        "Marshal bytes are unversioned, unchecksummed and \
         compiler-layout-dependent, and reading them at the wrong type is \
         undefined behavior — the opposite of a crash-consistent snapshot.  \
         Library code serializes through Bwc_persist.Codec (versioned \
         header, CRC-32, validating readers); bin/ and bench/ are outside \
         the scope because nothing durable is written there.";
      only_paths = [ "lib/" ];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match Ast_scan.ident_path e with
              | Some ("Marshal" :: _ :: _) ->
                  acc :=
                    finding rule e
                      "Marshal output is unversioned and unchecked; \
                       serialize through Bwc_persist.Codec so restores can \
                       verify and reject"
                    :: !acc
              | _ -> ());
          !acc);
    }
  in
  rule

let no_obj_magic =
  let rec rule =
    {
      id = "no-obj-magic";
      severity = Finding.Error;
      doc = "Obj.* defeats the type system; there is no sound use here.";
      only_paths = [];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match Ast_scan.ident_path e with
              | Some ("Obj" :: _ :: _) ->
                  acc := finding rule e "Obj.* defeats the type system" :: !acc
              | _ -> ());
          !acc);
    }
  in
  rule

(* ----- complexity rules ----- *)

let append_idents fn =
  match Ast_scan.ident_path fn with
  | Some [ "@" ] | Some [ "List"; "append" ] -> true
  | _ -> false

let no_quadratic_append =
  let rec rule =
    {
      id = "no-quadratic-append";
      severity = Finding.Warning;
      doc =
        "`acc @ [x]` copies the accumulator on every step (O(n^2) overall, \
         the Churn.scripted bug class); build lists with :: and reverse \
         once.  Any @ inside a let rec is flagged as potential recursive \
         accumulation — use List.rev_append or restructure, or suppress \
         with a cost argument.";
      only_paths = [];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth e ->
              match e.pexp_desc with
              | Pexp_apply (fn, args) when append_idents fn -> (
                  match Ast_scan.plain_args args with
                  | [ _; rhs ] when Ast_scan.is_literal_list rhs ->
                      acc :=
                        finding rule e
                          "appending a literal list copies the left operand \
                           each time (O(n^2) when repeated); build with :: \
                           and List.rev once"
                        :: !acc
                  | _ :: _ when rec_depth > 0 ->
                      acc :=
                        finding rule e
                          "@ inside a recursive function is quadratic when \
                           the left operand grows with recursion; use \
                           List.rev_append/restructure or suppress with a \
                           cost argument"
                        :: !acc
                  | _ -> ())
              | _ -> ());
          !acc);
    }
  in
  rule

(* ----- hygiene rules ----- *)

let no_print_in_lib =
  banned_idents ~id:"no-print-in-lib" ~severity:Finding.Error
    ~doc:
      "Libraries must not write to std streams or call exit; return values, \
       take a Format.formatter parameter, or use Logs.  \
       lib/experiments/report.ml is the audited console-reporting module \
       and is exempt."
    ~only_paths:[ "lib/" ]
    ~allow_paths:[ "lib/experiments/report.ml" ]
    ~message:(fun ident ->
      ident
      ^ " in library code; return values, take a formatter parameter, or \
         use Logs")
    print_idents

let no_wall_clock_in_lib =
  banned_idents ~id:"no-wall-clock-in-lib" ~severity:Finding.Error
    ~doc:
      "Library code must not read the wall clock: metrics and traces are \
       clocked by simulation rounds so same-seed runs stay byte-identical.  \
       lib/obs/span.ml is the audited opt-in profiling module and is \
       exempt; benchmarks and executables outside lib/ may time freely."
    ~only_paths:[ "lib/" ]
    ~allow_paths:[ "lib/obs/span.ml" ]
    ~message:(fun ident ->
      ident
      ^ " reads the wall clock in library code; use Bwc_obs.Span for opt-in \
         profiling or clock by simulation rounds")
    wall_clock_idents

let blocking_io_idents =
  [
    "open_in";
    "open_in_bin";
    "open_out";
    "open_out_bin";
    "input_line";
    "input_char";
    "input_byte";
    "input_value";
    "really_input_string";
    "read_line";
    "read_int";
    "output_string";
    "output_char";
    "output_byte";
    "output_value";
    "close_in";
    "close_out";
    "stdin";
    "stdout";
    "stderr";
  ]

let no_blocking_io_in_daemon_core =
  let rec rule =
    {
      id = "no-blocking-io-in-daemon-core";
      severity = Finding.Error;
      doc =
        "The daemon core (lib/daemon/) is a pure reactor over injected \
         ticks and an abstract transport: any Unix.* call, channel \
         primitive, or std stream there would block the event loop and \
         break scripted replay determinism.  Sockets, wall clock, and \
         signals live only in bin/bwclusterd.ml's transport shell; file \
         IO is delegated to Bwc_persist.";
      only_paths = [ "lib/daemon/" ];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match Ast_scan.ident_path e with
              | Some (("Unix" | "In_channel" | "Out_channel") :: _ :: _ as p)
                ->
                  acc :=
                    finding rule e
                      (Ast_scan.dotted p
                      ^ " blocks the reactor; keep real IO in the \
                         bin/bwclusterd transport shell or Bwc_persist")
                    :: !acc
              | Some p when List.mem (Ast_scan.dotted p) blocking_io_idents ->
                  acc :=
                    finding rule e
                      (Ast_scan.dotted p
                      ^ " is a blocking channel primitive; the daemon core \
                         must stay transport-abstract")
                    :: !acc
              | _ -> ());
          !acc);
    }
  in
  rule

(* ----- observability rules ----- *)

let no_unlabelled_send =
  let trace_event_name lid =
    match List.rev (Ast_scan.normalize (Ast_scan.flatten_longident lid)) with
    | (("Send" | "Deliver") as ctor) :: "Trace" :: _ -> Some ctor
    | _ -> None
  in
  let rec rule =
    {
      id = "no-unlabelled-send";
      severity = Finding.Error;
      doc =
        "Every Trace.Send/Trace.Deliver event constructed in lib/ must carry \
         an explicit message `kind` and `bytes` size — attribution \
         (bwcluster analyze, E16) silently loses traffic otherwise.  Sites \
         that build the event from a variable rather than a record literal \
         are flagged conservatively.";
      only_paths = [ "lib/" ];
      allow_paths = [];
      check =
        (fun ~path:_ file ->
          let acc = ref [] in
          Ast_scan.scan_exprs file ~f:(fun ~rec_depth:_ e ->
              match e.pexp_desc with
              | Pexp_construct ({ txt; _ }, arg) -> (
                  match trace_event_name txt with
                  | None -> ()
                  | Some ctor -> (
                      match arg with
                      | Some { pexp_desc = Pexp_record (fields, _); _ } ->
                          let labels =
                            List.filter_map
                              (fun ((lid : _ Location.loc), _) ->
                                match
                                  List.rev
                                    (Ast_scan.flatten_longident lid.txt)
                                with
                                | last :: _ -> Some last
                                | [] -> None)
                              fields
                          in
                          let missing =
                            List.filter
                              (fun l -> not (List.mem l labels))
                              [ "kind"; "bytes" ]
                          in
                          if missing <> [] then
                            acc :=
                              finding rule e
                                (Printf.sprintf
                                   "Trace.%s constructed without %s; every \
                                    send/deliver event must be attributable \
                                    by payload kind and size"
                                   ctor
                                   (String.concat " and " missing))
                              :: !acc
                      | _ ->
                          acc :=
                            finding rule e
                              (Printf.sprintf
                                 "Trace.%s built from a variable, not a \
                                  record literal; construct the event with \
                                  explicit kind and bytes so attribution \
                                  stays auditable"
                                 ctor)
                            :: !acc))
              | _ -> ());
          !acc);
    }
  in
  rule

let all =
  [
    no_stdlib_random;
    no_unordered_hashtbl_iter;
    no_polymorphic_compare_on_floats;
    no_partial_stdlib;
    no_quadratic_append;
    no_print_in_lib;
    no_wall_clock_in_lib;
    no_blocking_io_in_daemon_core;
    no_unlabelled_send;
    naked_failwith;
    no_obj_magic;
    no_marshal;
  ]

let find id = List.find_opt (fun r -> r.id = id) all
