(* Per-line suppression comments:

     (* bwclint: allow <rule> -- <reason> *)
     (* bwclint: allow <rule-a>, <rule-b> -- <reason> *)

   The word "all" instead of a rule list suppresses every rule.  A
   suppression applies to findings on its own line and on the line
   directly below it, so both trailing comments and a standalone
   comment above the offending expression work.

   The "-- <reason>" clause is the audit trail: it is surfaced by the
   JSON and SARIF reporters so every escape hatch carries its
   justification with it.  A suppression without a reason is itself
   reported (suppression-missing-reason). *)

type entry = {
  s_line : int;  (* line the comment appears on, 1-based *)
  rules : string list;  (* [] means all rules *)
  reason : string option;  (* the "-- ..." justification, if any *)
  mutable used : bool;
}

type t = { entries : entry list }

let marker = "bwclint:"

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Parse " allow rule-a, rule-b -- reason *)..." starting just after
   [marker]; returns the listed rule ids ([] for "all") and the reason,
   or None if the text after the marker is not an allow clause. *)
let parse_clause text =
  let n = String.length text in
  let rec skip_ws i = if i < n && (text.[i] = ' ' || text.[i] = '\t') then skip_ws (i + 1) else i in
  let i = skip_ws 0 in
  if i + 5 > n || String.sub text i 5 <> "allow" then None
  else begin
    let rec words i acc =
      let i = skip_ws i in
      (* "--" opens the reason clause; rule ids never start with '-' *)
      if
        i >= n
        || not (is_rule_char text.[i])
        || (text.[i] = '-' && i + 1 < n && text.[i + 1] = '-')
      then (List.rev acc, i)
      else begin
        let j = ref i in
        while !j < n && is_rule_char text.[!j] do incr j done;
        let word = String.sub text i (!j - i) in
        let k = skip_ws !j in
        let k = if k < n && text.[k] = ',' then k + 1 else k in
        words k (word :: acc)
      end
    in
    let listed, after = words (i + 5) [] in
    let reason =
      let i = skip_ws after in
      if i + 2 <= n && String.sub text i 2 = "--" then begin
        let rest = String.sub text (i + 2) (n - i - 2) in
        (* the comment closer (and anything beyond) is not reason text *)
        let rest =
          let m = String.length rest in
          let rec close j =
            if j + 2 > m then rest
            else if String.sub rest j 2 = "*)" then String.sub rest 0 j
            else close (j + 1)
          in
          close 0
        in
        match String.trim rest with "" -> None | r -> Some r
      end
      else None
    in
    match listed with
    | [] -> None
    | [ "all" ] -> Some ([], reason)
    | rules -> Some (rules, reason)
  end

let scan_line ~line_no line acc =
  let rec from start acc =
    match
      (* find the next occurrence of [marker] *)
      let n = String.length line and m = String.length marker in
      let rec search i =
        if i + m > n then None
        else if String.sub line i m = marker then Some i
        else search (i + 1)
      in
      search start
    with
    | None -> acc
    | Some i ->
        let rest = String.sub line (i + String.length marker)
            (String.length line - i - String.length marker)
        in
        let acc =
          match parse_clause rest with
          | Some (rules, reason) ->
              { s_line = line_no; rules; reason; used = false } :: acc
          | None -> acc
        in
        from (i + String.length marker) acc
  in
  from 0 acc

let scan source =
  let entries = ref [] in
  let line_no = ref 0 in
  String.split_on_char '\n' source
  |> List.iter (fun line ->
         incr line_no;
         entries := scan_line ~line_no:!line_no line !entries);
  { entries = List.rev !entries }

let find t ~rule ~line =
  let matching e =
    (e.s_line = line || e.s_line = line - 1)
    && (e.rules = [] || List.mem rule e.rules)
  in
  match List.find_opt matching t.entries with
  | Some e ->
      e.used <- true;
      Some e
  | None -> None

let suppressed t ~rule ~line = find t ~rule ~line <> None
let count t = List.length t.entries
let entries t = t.entries

let unused t =
  List.filter_map
    (fun e -> if e.used then None else Some (e.s_line, e.rules))
    t.entries
