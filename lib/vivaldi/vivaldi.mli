(** Vivaldi network coordinates (Dabek et al., SIGCOMM 2004) in 2-d
    Euclidean space — the embedding behind the paper's comparison model
    (EUCL-CENTRAL, Sec. IV-A).

    Each node holds a coordinate and a confidence weight; on every sample
    of a measured distance to a peer it nudges its coordinate along the
    error gradient with the adaptive timestep of the original paper
    ([cc = ce = 0.25]).  The target distances here are bandwidths under
    the rational transform [d = C / BW]. *)

type params = {
  cc : float;      (** coordinate timestep gain *)
  ce : float;      (** confidence moving-average gain *)
  rounds : int;    (** simulation rounds *)
  samples_per_round : int; (** peers sampled by each node per round *)
}

val default_params : params
(** [cc = 0.25], [ce = 0.25], [rounds = 100], [samples_per_round = 8]. *)

type t

val embed : rng:Bwc_stats.Rng.t -> ?params:params -> Bwc_metric.Space.t -> t
(** Runs the protocol over the measured space until [rounds] have
    elapsed. *)

val coords : t -> Coord.t array

val predicted : t -> int -> int -> float
(** Euclidean distance between embedded coordinates ([0.] on the
    diagonal). *)

val predicted_bw : ?c:float -> t -> int -> int -> float

val space : t -> Bwc_metric.Space.t
(** The embedding as a metric space (cached coordinates). *)

val relative_errors : ?c:float -> t -> Bwc_metric.Space.t -> float array
(** Per-pair relative bandwidth-prediction error against the measured
    space, as in Fig. 3(b,d). *)

val mean_fit_error : t -> Bwc_metric.Space.t -> float
(** Mean relative distance error — the embedding-quality number Vivaldi
    papers report; used by convergence tests. *)
