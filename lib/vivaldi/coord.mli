(** Two-dimensional Euclidean coordinates for Vivaldi. *)

type t = {
  x : float;
  y : float;
}

val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val norm : t -> float
val dist : t -> t -> float

val unit_towards : from:t -> towards:t -> rng:Bwc_stats.Rng.t -> t
(** Unit vector from [from] to [towards]; a uniformly random unit vector
    when the two points coincide (the standard Vivaldi tie-breaker that
    lets colocated nodes repel). *)

val random_in_box : rng:Bwc_stats.Rng.t -> halfwidth:float -> t
val pp : Format.formatter -> t -> unit
