module Rng = Bwc_stats.Rng
module Space = Bwc_metric.Space

type params = {
  cc : float;
  ce : float;
  rounds : int;
  samples_per_round : int;
}

let default_params = { cc = 0.25; ce = 0.25; rounds = 100; samples_per_round = 8 }

type t = {
  pos : Coord.t array;
  err : float array;
}

(* One Vivaldi sample: node [i] observes measured distance [rtt] to node
   [j] at coordinate [xj] with confidence error [ej]. *)
let sample ~rng ~params t i j rtt =
  let xi = t.pos.(i) and xj = t.pos.(j) in
  let ei = t.err.(i) and ej = t.err.(j) in
  let w = if ei +. ej > 0.0 then ei /. (ei +. ej) else 0.5 in
  let dist = Coord.dist xi xj in
  let es = if rtt > 0.0 then Float.abs (dist -. rtt) /. rtt else 0.0 in
  t.err.(i) <- Float.min 1.0 ((es *. params.ce *. w) +. (ei *. (1.0 -. (params.ce *. w))));
  let delta = params.cc *. w in
  let dir = Coord.unit_towards ~from:xj ~towards:xi ~rng in
  t.pos.(i) <- Coord.add xi (Coord.scale (delta *. (rtt -. dist)) dir)

let embed ~rng ?(params = default_params) space =
  let n = space.Space.n in
  let t =
    {
      pos = Array.init n (fun _ -> Coord.random_in_box ~rng ~halfwidth:1.0);
      err = Array.make n 1.0;
    }
  in
  if n > 1 then
    for _ = 1 to params.rounds do
      let order = Rng.permutation rng n in
      Array.iter
        (fun i ->
          for _ = 1 to params.samples_per_round do
            let j = Rng.int rng (n - 1) in
            let j = if j >= i then j + 1 else j in
            sample ~rng ~params t i j (space.Space.dist i j)
          done)
        order
    done;
  t

let coords t = Array.copy t.pos
let predicted t i j = if i = j then 0.0 else Coord.dist t.pos.(i) t.pos.(j)

let predicted_bw ?c t i j =
  if i = j then Float.infinity
  else Bwc_metric.Bandwidth.of_distance ?c (Float.max 1e-9 (predicted t i j))

let space t = Space.make ~n:(Array.length t.pos) ~dist:(predicted t)

let relative_errors ?c t measured =
  let n = measured.Space.n in
  let out = Array.make (n * (n - 1) / 2) 0.0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let real = Bwc_metric.Bandwidth.of_distance ?c (measured.Space.dist i j) in
      let pred = predicted_bw ?c t i j in
      out.(!pos) <- Float.abs (real -. pred) /. real;
      incr pos
    done
  done;
  out

let mean_fit_error t measured =
  let n = measured.Space.n in
  let acc = ref 0.0 and cnt = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let real = measured.Space.dist i j in
      if real > 0.0 then begin
        acc := !acc +. (Float.abs (predicted t i j -. real) /. real);
        incr cnt
      end
    done
  done;
  if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt
