type t = {
  x : float;
  y : float;
}

let zero = { x = 0.0; y = 0.0 }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k a = { x = k *. a.x; y = k *. a.y }
let norm a = sqrt ((a.x *. a.x) +. (a.y *. a.y))
let dist a b = norm (sub a b)

let unit_towards ~from ~towards ~rng =
  let d = sub towards from in
  let n = norm d in
  if n > 1e-12 then scale (1.0 /. n) d
  else begin
    let angle = Bwc_stats.Rng.float rng (2.0 *. Float.pi) in
    { x = cos angle; y = sin angle }
  end

let random_in_box ~rng ~halfwidth =
  {
    x = Bwc_stats.Rng.uniform rng (-.halfwidth) halfwidth;
    y = Bwc_stats.Rng.uniform rng (-.halfwidth) halfwidth;
  }

let pp ppf a = Format.fprintf ppf "(%.3f, %.3f)" a.x a.y
