type event =
  | Join of int
  | Leave of int

type t = { by_round : (int, event list) Hashtbl.t }

let empty = { by_round = Hashtbl.create 1 }

let scripted events =
  let by_round = Hashtbl.create 16 in
  List.iter
    (fun (round, ev) ->
      let cur = match Hashtbl.find_opt by_round round with Some l -> l | None -> [] in
      Hashtbl.replace by_round round (ev :: cur))
    events;
  (* stored reversed to keep inserts O(1); flip once into schedule order.
     Order-independent: each bucket is rewritten in isolation. *)
  (* bwclint: allow no-unordered-hashtbl-iter -- each round bucket is flipped into schedule order in isolation *)
  Hashtbl.filter_map_inplace (fun _ evs -> Some (List.rev evs)) by_round;
  { by_round }

let random ~rng ~n ~rounds ~leave_prob ~rejoin_prob =
  let up = Array.make n true in
  let events = ref [] in
  for round = 0 to rounds - 1 do
    for i = 1 to n - 1 do
      if up.(i) then begin
        if Bwc_stats.Rng.float rng 1.0 < leave_prob then begin
          up.(i) <- false;
          events := (round, Leave i) :: !events
        end
      end
      else if Bwc_stats.Rng.float rng 1.0 < rejoin_prob then begin
        up.(i) <- true;
        events := (round, Join i) :: !events
      end
    done
  done;
  scripted (List.rev !events)

let events_at t round =
  match Hashtbl.find_opt t.by_round round with Some l -> l | None -> []

let all_events t =
  List.rev
    (Bwc_stats.Tbl.fold_sorted
       (fun r evs acc -> List.fold_left (fun acc e -> (r, e) :: acc) acc evs)
       t.by_round [])
