(** A discrete-event priority queue (binary heap on time, FIFO within equal
    timestamps).  The round-based {!Engine} covers the paper's
    cycle-driven simulations; this queue backs the latency-aware query
    simulations and churn schedules. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** [time] must be non-negative. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event; ties resolve in insertion order. *)

val peek_time : 'a t -> float option

val drain_until : 'a t -> time:float -> (float * 'a) list
(** Removes and returns every event with timestamp [<= time], in order. *)
