(** A cycle-driven P2P simulation engine in the PeerSim mould.

    Nodes run synchronised rounds.  Messages sent during round [r] are
    delivered at the start of round [r+1] — the classic gossip model the
    paper's aggregation protocols (Algorithms 2 and 3) assume.  Node step
    order within a round is randomised, inactive nodes neither step nor
    receive, and the engine reports both per-round activity and message
    totals so experiments can account for protocol overhead.

    An optional {!Fault} plan injects unreliable-network behaviour:
    message loss, duplication, jittered (reordering) delays, scripted
    link partitions, and node crash/restart windows. *)

type 'msg t

val create :
  ?faults:Fault.t ->
  ?edge_delay:(src:int -> dst:int -> int) ->
  rng:Bwc_stats.Rng.t ->
  int ->
  'msg t
(** [create ~rng n] allocates [n] node slots, all initially active.  [edge_delay] gives each
    directed edge a fixed delivery delay in rounds (default: 1 round for
    every edge, the classic lockstep model).  A fixed per-edge delay
    keeps links FIFO; values below 1 are clamped to 1.  [faults]
    (default {!Fault.none}) is consulted on every send and at every
    round boundary; fault jitter {e does} reorder messages, so protocols
    running under a jittering plan must tolerate non-FIFO links. *)

val n : 'msg t -> int
val round : 'msg t -> int
(** Rounds completed so far. *)

val faults : 'msg t -> Fault.t
(** The fault plan the engine was created with ({!Fault.none} when no
    plan was given). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueues for delivery next round.  The sender cannot observe the
    destination's liveness: the message is enqueued even when the
    destination is currently down, and dropped at {e delivery} time if
    the destination is down then (counted in {!dropped}).  The fault
    plan may lose, duplicate or further delay the message. *)

val set_active : 'msg t -> int -> bool -> unit
(** Deactivating a node drops its queued inbox and everything in flight
    towards it (a crash loses undelivered traffic); traffic sent while
    it is down is delivered only if it is active again by delivery
    time. *)

val is_active : 'msg t -> int -> bool
val active_count : 'msg t -> int

val clear_in_flight : 'msg t -> unit
(** Drops every undelivered message (counted in {!dropped}).  Used when
    the overlay is rebuilt and in-flight traffic belongs to a dead
    topology. *)

val run_round : 'msg t -> step:(int -> (int * 'msg) list -> bool) -> bool
(** Applies scripted crash/restart transitions, delivers every message
    whose delay has elapsed, then steps each active node in random order
    with its inbox (list of [(src, msg)], oldest first).  [step] returns
    whether the node's state changed; the round returns whether {e any}
    node changed, any message was delivered, or messages are still in
    flight. *)

val run_until_stable :
  'msg t -> max_rounds:int -> step:(int -> (int * 'msg) list -> bool) ->
  [ `Stable of int | `Max_rounds ]
(** Runs rounds until one reports no change (returns how many rounds ran),
    or gives up after [max_rounds]. *)

val messages_sent : 'msg t -> int
val dropped : 'msg t -> int
