(** A cycle-driven P2P simulation engine in the PeerSim mould.

    Nodes run synchronised rounds.  Messages sent during round [r] are
    delivered at the start of round [r+1] — the classic gossip model the
    paper's aggregation protocols (Algorithms 2 and 3) assume.  Node step
    order within a round is randomised, inactive nodes neither step nor
    receive, and the engine reports both per-round activity and message
    totals so experiments can account for protocol overhead.

    An optional {!Fault} plan injects unreliable-network behaviour:
    message loss, duplication, jittered (reordering) delays, scripted
    link partitions, and node crash/restart windows.

    Observability: every engine owns (or shares, via [?metrics]) a
    {!Bwc_obs.Registry} holding [engine.msgs_sent],
    [engine.msgs_delivered], [engine.rounds], the [engine.in_flight]
    gauge and the cause-labelled [engine.drops{cause=...}] counters, and
    can stream typed events to a {!Bwc_obs.Trace} sink.  Both are
    clocked by the simulation round, never wall time, and neither path
    touches any RNG — instrumentation cannot perturb a run. *)

type drop_cause = Bwc_obs.Trace.drop_cause =
  | Fault_loss  (** lost by the fault plan's stochastic drop at send time *)
  | Partition  (** blocked by a scripted partition at send time *)
  | Dead_dst  (** destination inactive at delivery time *)
  | Purge
      (** discarded in flight by {!set_active} [false] or {!clear_in_flight} *)

type 'msg t

val create :
  ?faults:Fault.t ->
  ?edge_delay:(src:int -> dst:int -> int) ->
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  rng:Bwc_stats.Rng.t ->
  int ->
  'msg t
(** [create ~rng n] allocates [n] node slots, all initially active.  [edge_delay] gives each
    directed edge a fixed delivery delay in rounds (default: 1 round for
    every edge, the classic lockstep model).  A fixed per-edge delay
    keeps links FIFO; values below 1 are clamped to 1.  [faults]
    (default {!Fault.none}) is consulted on every send and at every
    round boundary; fault jitter {e does} reorder messages, so protocols
    running under a jittering plan must tolerate non-FIFO links.
    [metrics] shares a registry with the rest of the stack (a private
    one is allocated when omitted); [trace] enables structured event
    emission (off when omitted). *)

val n : 'msg t -> int
val round : 'msg t -> int
(** Rounds completed so far. *)

val faults : 'msg t -> Fault.t
(** The fault plan the engine was created with ({!Fault.none} when no
    plan was given). *)

val restore_round : 'msg t -> int -> unit
(** Snapshot restore only: fast-forwards the round clock of a freshly
    created engine so round-relative protocol state (send timestamps,
    lease clocks) stays meaningful.  Raises on negative rounds.

    Trace identity (message ids, Lamport clocks) deliberately restarts
    at zero: a restored run begins a fresh trace, and causal analysis
    never spans a restore boundary. *)

val rng_state : 'msg t -> int64
(** The step-order generator's state (see {!Bwc_stats.Rng.state}), so a
    snapshot can resume the exact permutation stream. *)

val metrics : 'msg t -> Bwc_obs.Registry.t
(** The registry holding the engine's counters (the [?metrics] argument
    of {!create}, or the engine's private registry). *)

val send :
  'msg t -> src:int -> dst:int -> kind:Bwc_obs.Trace.msg_kind -> bytes:int ->
  'msg -> unit
(** Enqueues for delivery next round.  The sender cannot observe the
    destination's liveness: the message is enqueued even when the
    destination is currently down, and dropped at {e delivery} time if
    the destination is down then (counted under [Dead_dst]).  The fault
    plan may lose, duplicate or further delay the message.

    [kind] and [bytes] label the traffic for trace attribution: every
    send mints a fresh per-run message id, bumps the sender's Lamport
    clock, and emits exactly one [Trace.Send] carrying id, kind, byte
    size and stamp (which the matching [Deliver]/[Drop] then cites) —
    the 1:1 Send-event-per-send invariant E16's exact-attribution check
    rests on.  Duplicated copies share one id.  Raises on negative
    [bytes]. *)

val fresh_msg_id : 'msg t -> int
(** Draws the next id from the per-run monotone message-id counter —
    for traffic that bypasses the in-flight queue (synchronous query
    hops) but must still be causally identifiable in the trace. *)

val lamport : 'msg t -> int -> int
(** [lamport t i] is node [i]'s current Lamport clock (0 until it first
    sends or receives).  Maintained whether or not a trace is attached;
    never feeds back into protocol behaviour. *)

val set_active : 'msg t -> int -> bool -> unit
(** Deactivating a node drops its queued inbox and everything in flight
    towards it (a crash loses undelivered traffic, counted under
    [Purge]); traffic sent while it is down is delivered only if it is
    active again by delivery time. *)

val is_active : 'msg t -> int -> bool
val active_count : 'msg t -> int

val clear_in_flight : 'msg t -> unit
(** Drops every undelivered message (counted under [Purge]).  Used when
    the overlay is rebuilt and in-flight traffic belongs to a dead
    topology. *)

val run_round : 'msg t -> step:(int -> (int * 'msg) list -> bool) -> bool
(** Applies scripted crash/restart transitions, delivers every message
    whose delay has elapsed, then steps each active node in random order
    with its inbox (list of [(src, msg)], oldest first).  [step] returns
    whether the node's state changed; the round returns whether {e any}
    node changed, any message was delivered, or messages are still in
    flight. *)

val run_until_stable :
  'msg t -> max_rounds:int -> step:(int -> (int * 'msg) list -> bool) ->
  [ `Stable of int | `Max_rounds ]
(** Runs rounds until one reports no change (returns how many rounds ran),
    or gives up after [max_rounds].  Emits a [Quiesce] trace event when
    the system stabilises. *)

val messages_sent : 'msg t -> int
(** [engine.msgs_sent]. *)

val delivered : 'msg t -> int
(** Messages handed to an active destination ([engine.msgs_delivered]). *)

val dropped_by : 'msg t -> drop_cause -> int
(** One cause's [engine.drops{cause=...}] counter. *)

val dropped : 'msg t -> int
(** Total drops, summed over every cause. *)
