(** A cycle-driven P2P simulation engine in the PeerSim mould.

    Nodes run synchronised rounds.  Messages sent during round [r] are
    delivered at the start of round [r+1] — the classic gossip model the
    paper's aggregation protocols (Algorithms 2 and 3) assume.  Node step
    order within a round is randomised, inactive nodes neither step nor
    receive, and the engine reports both per-round activity and message
    totals so experiments can account for protocol overhead. *)

type 'msg t

val create : ?edge_delay:(src:int -> dst:int -> int) -> rng:Bwc_stats.Rng.t -> int -> 'msg t
(** [create ~rng n] allocates [n] node slots, all initially active.  [edge_delay] gives each
    directed edge a fixed delivery delay in rounds (default: 1 round for
    every edge, the classic lockstep model).  A fixed per-edge delay
    keeps links FIFO, which gossip protocols that only re-send on change
    rely on; values below 1 are clamped to 1. *)

val n : 'msg t -> int
val round : 'msg t -> int
(** Rounds completed so far. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueues for delivery next round.  Messages to inactive nodes are
    dropped (counted in {!dropped}). *)

val set_active : 'msg t -> int -> bool -> unit
val is_active : 'msg t -> int -> bool
val active_count : 'msg t -> int

val run_round : 'msg t -> step:(int -> (int * 'msg) list -> bool) -> bool
(** Delivers every message whose delay has elapsed, then steps each active
    node in random order with its inbox (list of [(src, msg)], oldest
    first).  [step] returns whether the node's state changed; the round
    returns whether {e any} node changed, any message was delivered, or
    messages are still in flight. *)

val run_until_stable :
  'msg t -> max_rounds:int -> step:(int -> (int * 'msg) list -> bool) ->
  [ `Stable of int | `Max_rounds ]
(** Runs rounds until one reports no change (returns how many rounds ran),
    or gives up after [max_rounds]. *)

val messages_sent : 'msg t -> int
val dropped : 'msg t -> int
