module Rng = Bwc_stats.Rng

type partition = {
  starts : int;
  heals : int;
  severs : src:int -> dst:int -> bool;
}

type crash = {
  node : int;
  down_from : int;
  up_at : int;
}

type t = {
  rng : Rng.t;
  drop : float;
  duplicate : float;
  jitter : int;
  partitions : partition list;
  transitions : (int, (int * bool) list) Hashtbl.t; (* round -> (node, up) *)
  mutable lost : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable partition_dropped : int;
}

let make ~rng ~drop ~duplicate ~jitter ~partitions ~crashes =
  if drop < 0.0 || drop > 1.0 then invalid_arg "Fault.create: drop not in [0,1]";
  if duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Fault.create: duplicate not in [0,1]";
  if jitter < 0 then invalid_arg "Fault.create: negative jitter";
  let transitions = Hashtbl.create (Stdlib.max 1 (2 * List.length crashes)) in
  let schedule round ev =
    let cur = Option.value ~default:[] (Hashtbl.find_opt transitions round) in
    Hashtbl.replace transitions round (ev :: cur)
  in
  List.iter
    (fun c ->
      if c.up_at <= c.down_from then invalid_arg "Fault.create: empty crash window";
      schedule c.down_from (c.node, false);
      if c.up_at < max_int then schedule c.up_at (c.node, true))
    crashes;
  (* downs before ups within a round, insertion order otherwise.
     Order-independent: each round's bucket is rewritten in isolation. *)
  (* bwclint: allow no-unordered-hashtbl-iter *)
  Hashtbl.filter_map_inplace
    (fun _ evs ->
      let evs = List.rev evs in
      Some (List.filter (fun (_, up) -> not up) evs @ List.filter snd evs))
    transitions;
  {
    rng;
    drop;
    duplicate;
    jitter;
    partitions;
    transitions;
    lost = 0;
    duplicated = 0;
    delayed = 0;
    partition_dropped = 0;
  }

let none =
  make ~rng:(Rng.create 0) ~drop:0.0 ~duplicate:0.0 ~jitter:0 ~partitions:[]
    ~crashes:[]

let create ?(drop = 0.0) ?(duplicate = 0.0) ?(jitter = 0) ?(partitions = [])
    ?(crashes = []) ~rng () =
  make ~rng ~drop ~duplicate ~jitter ~partitions ~crashes

let isolate ~starts ~heals ~group =
  let inside = Hashtbl.create (Stdlib.max 1 (List.length group)) in
  List.iter (fun h -> Hashtbl.replace inside h ()) group;
  { starts; heals; severs = (fun ~src ~dst -> Hashtbl.mem inside src <> Hashtbl.mem inside dst) }

let partitioned t ~round ~src ~dst =
  List.exists
    (fun p -> p.starts <= round && round < p.heals && p.severs ~src ~dst)
    t.partitions

let sample_loss t = t.drop > 0.0 && Rng.float t.rng 1.0 < t.drop

let sample_jitter t = if t.jitter = 0 then 0 else Rng.int t.rng (t.jitter + 1)

type verdict =
  | Blocked of [ `Partition | `Loss ]
  | Deliver of int list

let on_send t ~round ~src ~dst =
  if partitioned t ~round ~src ~dst then begin
    t.partition_dropped <- t.partition_dropped + 1;
    Blocked `Partition
  end
  else if sample_loss t then begin
    t.lost <- t.lost + 1;
    Blocked `Loss
  end
  else begin
    let jitter_of () =
      let j = sample_jitter t in
      if j > 0 then t.delayed <- t.delayed + 1;
      j
    in
    let first = jitter_of () in
    if t.duplicate > 0.0 && Rng.float t.rng 1.0 < t.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Deliver [ first; jitter_of () ]
    end
    else Deliver [ first ]
  end

let crashes_at t round =
  Option.value ~default:[] (Hashtbl.find_opt t.transitions round)

let lost t = t.lost
let duplicated t = t.duplicated
let delayed t = t.delayed
let partition_dropped t = t.partition_dropped
