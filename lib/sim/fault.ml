module Rng = Bwc_stats.Rng
module Registry = Bwc_obs.Registry

type partition = {
  starts : int;
  heals : int;
  severs : src:int -> dst:int -> bool;
}

type crash = {
  node : int;
  down_from : int;
  up_at : int;
}

type snapshot_corruption =
  | Truncate of int
  | Flip_bits of int
  | Stale_version

type system_crash = {
  crash_round : int;
  restore_after : int;
  corrupt : snapshot_corruption option;
}

type t = {
  rng : Rng.t;
  drop : float;
  duplicate : float;
  jitter : int;
  partitions : partition list;
  transitions : (int, (int * bool) list) Hashtbl.t; (* round -> (node, up) *)
  system_crashes : system_crash list; (* ascending crash_round *)
  metrics : Registry.t;
  c_lost : Registry.Counter.t;
  c_duplicated : Registry.Counter.t;
  c_delayed : Registry.Counter.t;
  c_partition_dropped : Registry.Counter.t;
}

let make ?metrics ~rng ~drop ~duplicate ~jitter ~partitions ~crashes
    ~system_crashes () =
  if drop < 0.0 || drop > 1.0 then invalid_arg "Fault.create: drop not in [0,1]";
  if duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Fault.create: duplicate not in [0,1]";
  if jitter < 0 then invalid_arg "Fault.create: negative jitter";
  let transitions = Hashtbl.create (Stdlib.max 1 (2 * List.length crashes)) in
  let schedule round ev =
    let cur = Option.value ~default:[] (Hashtbl.find_opt transitions round) in
    Hashtbl.replace transitions round (ev :: cur)
  in
  List.iter
    (fun c ->
      if c.up_at <= c.down_from then invalid_arg "Fault.create: empty crash window";
      schedule c.down_from (c.node, false);
      if c.up_at < max_int then schedule c.up_at (c.node, true))
    crashes;
  List.iter
    (fun sc ->
      if sc.crash_round < 1 then invalid_arg "Fault.create: system crash before round 1";
      if sc.restore_after < 0 then invalid_arg "Fault.create: negative restore delay";
      (match sc.corrupt with
      | Some (Truncate keep) when keep < 0 ->
          invalid_arg "Fault.create: negative truncation"
      | Some (Flip_bits k) when k < 1 ->
          invalid_arg "Fault.create: Flip_bits needs at least one bit"
      | Some (Truncate _ | Flip_bits _ | Stale_version) | None -> ()))
    system_crashes;
  let system_crashes =
    List.sort (fun a b -> compare a.crash_round b.crash_round) system_crashes
  in
  (let rec dup = function
     | a :: (b :: _ as rest) ->
         if a.crash_round = b.crash_round then
           invalid_arg "Fault.create: two system crashes in the same round";
         dup rest
     | [ _ ] | [] -> ()
   in
   dup system_crashes);
  (* downs before ups within a round, insertion order otherwise.
     Order-independent: each round's bucket is rewritten in isolation. *)
  (* bwclint: allow no-unordered-hashtbl-iter -- each round bucket is rewritten in isolation; relative order within a bucket is preserved *)
  Hashtbl.filter_map_inplace
    (fun _ evs ->
      let evs = List.rev evs in
      Some (List.filter (fun (_, up) -> not up) evs @ List.filter snd evs))
    transitions;
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  {
    rng;
    drop;
    duplicate;
    jitter;
    partitions;
    transitions;
    system_crashes;
    metrics;
    c_lost = Registry.counter metrics "fault.lost";
    c_duplicated = Registry.counter metrics "fault.duplicated";
    c_delayed = Registry.counter metrics "fault.delayed";
    c_partition_dropped = Registry.counter metrics "fault.partition_dropped";
  }

let none =
  make ~rng:(Rng.create 0) ~drop:0.0 ~duplicate:0.0 ~jitter:0 ~partitions:[]
    ~crashes:[] ~system_crashes:[] ()

let create ?(drop = 0.0) ?(duplicate = 0.0) ?(jitter = 0) ?(partitions = [])
    ?(crashes = []) ?(system_crashes = []) ?metrics ~rng () =
  make ?metrics ~rng ~drop ~duplicate ~jitter ~partitions ~crashes ~system_crashes ()

let isolate ~starts ~heals ~group =
  let inside = Hashtbl.create (Stdlib.max 1 (List.length group)) in
  List.iter (fun h -> Hashtbl.replace inside h ()) group;
  { starts; heals; severs = (fun ~src ~dst -> Hashtbl.mem inside src <> Hashtbl.mem inside dst) }

let partitioned t ~round ~src ~dst =
  List.exists
    (fun p -> p.starts <= round && round < p.heals && p.severs ~src ~dst)
    t.partitions

let sample_loss t = t.drop > 0.0 && Rng.float t.rng 1.0 < t.drop

let sample_jitter t = if t.jitter = 0 then 0 else Rng.int t.rng (t.jitter + 1)

type verdict =
  | Blocked of [ `Partition | `Loss ]
  | Deliver of int list

let on_send t ~round ~src ~dst =
  if partitioned t ~round ~src ~dst then begin
    Registry.Counter.incr t.c_partition_dropped;
    Blocked `Partition
  end
  else if sample_loss t then begin
    Registry.Counter.incr t.c_lost;
    Blocked `Loss
  end
  else begin
    let jitter_of () =
      let j = sample_jitter t in
      if j > 0 then Registry.Counter.incr t.c_delayed;
      j
    in
    let first = jitter_of () in
    if t.duplicate > 0.0 && Rng.float t.rng 1.0 < t.duplicate then begin
      Registry.Counter.incr t.c_duplicated;
      Deliver [ first; jitter_of () ]
    end
    else Deliver [ first ]
  end

let crashes_at t round =
  Option.value ~default:[] (Hashtbl.find_opt t.transitions round)

let system_crashes t = t.system_crashes

let system_crash_at t round =
  List.find_opt (fun sc -> sc.crash_round = round) t.system_crashes

(* Byte-mangling a snapshot image.  This is deliberately a pure function
   of (rng, mode, bytes): the chaos harness and the experiments corrupt
   in-memory images or files alike with it, and tests can assert the
   exact rejection class each mode must produce. *)
let corrupt_snapshot ~rng mode bytes =
  let len = String.length bytes in
  match mode with
  | Truncate keep -> String.sub bytes 0 (Stdlib.min keep len)
  | Flip_bits k ->
      if len = 0 then bytes
      else begin
        let b = Bytes.of_string bytes in
        for _ = 1 to k do
          let bit = Rng.int rng (len * 8) in
          let byte = bit / 8 and off = bit mod 8 in
          Bytes.set b byte
            (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl off)))
        done;
        Bytes.to_string b
      end
  | Stale_version -> (
      (* rewrite the header line to a version no decoder knows; the
         constant mirrors bwc_persist's magic (asserted by its tests) *)
      match String.index_opt bytes '\n' with
      | None -> "BWCSNAP 999"
      | Some nl ->
          "BWCSNAP 999" ^ String.sub bytes nl (len - nl))

let metrics t = t.metrics
let lost t = Registry.Counter.value t.c_lost
let duplicated t = Registry.Counter.value t.c_duplicated
let delayed t = Registry.Counter.value t.c_delayed
let partition_dropped t = Registry.Counter.value t.c_partition_dropped
