module Rng = Bwc_stats.Rng

type 'msg t = {
  rng : Rng.t;
  n : int;
  active : bool array;
  faults : Fault.t;
  edge_delay : src:int -> dst:int -> int;
  (* messages in flight: delivery round -> (dst, src, msg), FIFO within a
     round because the table holds reversed lists flipped at delivery *)
  in_flight : (int, (int * int * 'msg) list) Hashtbl.t;
  inbox : (int * 'msg) Queue.t array; (* being consumed this round *)
  mutable flying : int;
  mutable round : int;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(faults = Fault.none) ?(edge_delay = fun ~src:_ ~dst:_ -> 1) ~rng n =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  {
    rng;
    n;
    active = Array.make n true;
    faults;
    edge_delay;
    in_flight = Hashtbl.create 64;
    inbox = Array.init n (fun _ -> Queue.create ());
    flying = 0;
    round = 0;
    sent = 0;
    dropped = 0;
  }

let n t = t.n
let round t = t.round
let faults t = t.faults

let check t i = if i < 0 || i >= t.n then invalid_arg "Engine: node id out of range"

let enqueue t ~due entry =
  let waiting = Option.value ~default:[] (Hashtbl.find_opt t.in_flight due) in
  Hashtbl.replace t.in_flight due (entry :: waiting);
  t.flying <- t.flying + 1

let send t ~src ~dst msg =
  check t src;
  check t dst;
  t.sent <- t.sent + 1;
  (* The sender cannot know whether the destination is up: the message is
     enqueued unconditionally and dropped at delivery time if the
     destination is down by then (run_round's check). *)
  match Fault.on_send t.faults ~round:t.round ~src ~dst with
  | Fault.Blocked (`Partition | `Loss) -> t.dropped <- t.dropped + 1
  | Fault.Deliver extras ->
      let delay = Stdlib.max 1 (t.edge_delay ~src ~dst) in
      List.iter (fun extra -> enqueue t ~due:(t.round + delay + extra) (dst, src, msg)) extras

let set_active t i b =
  check t i;
  t.active.(i) <- b;
  if not b then begin
    (* drop queued and in-flight traffic to a departed node.
       Order-independent: each bucket is partitioned in isolation and the
       counter updates are commutative sums. *)
    (* bwclint: allow no-unordered-hashtbl-iter *)
    Hashtbl.filter_map_inplace
      (fun _ waiting ->
        let keep, drop = List.partition (fun (dst, _, _) -> dst <> i) waiting in
        t.flying <- t.flying - List.length drop;
        t.dropped <- t.dropped + List.length drop;
        if keep = [] then None else Some keep)
      t.in_flight;
    Queue.clear t.inbox.(i)
  end

let is_active t i =
  check t i;
  t.active.(i)

let active_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.active

let clear_in_flight t =
  t.dropped <- t.dropped + t.flying;
  t.flying <- 0;
  Hashtbl.reset t.in_flight;
  Array.iter Queue.clear t.inbox

let run_round t ~step =
  (* Advance the clock, then deliver everything due at the new round;
     sends during the round are stamped with the new time, so a 1-round
     delay reproduces the classic "visible next round" model. *)
  t.round <- t.round + 1;
  (* scripted crash/restart windows fire at the round boundary, before
     delivery: a node crashing this round loses its in-flight traffic, a
     node restarting this round receives traffic due now *)
  List.iter
    (fun (node, up) -> if node >= 0 && node < t.n then set_active t node up)
    (Fault.crashes_at t.faults t.round);
  let delivered = ref 0 in
  (match Hashtbl.find_opt t.in_flight t.round with
  | Some waiting ->
      Hashtbl.remove t.in_flight t.round;
      List.iter
        (fun (dst, src, msg) ->
          t.flying <- t.flying - 1;
          if t.active.(dst) then begin
            Queue.add (src, msg) t.inbox.(dst);
            incr delivered
          end
          else t.dropped <- t.dropped + 1)
        (List.rev waiting)
  | None -> ());
  let order = Rng.permutation t.rng t.n in
  let changed = ref false in
  Array.iter
    (fun i ->
      if t.active.(i) then begin
        let msgs = List.of_seq (Queue.to_seq t.inbox.(i)) in
        Queue.clear t.inbox.(i);
        if step i msgs then changed := true
      end)
    order;
  !changed || !delivered > 0 || t.flying > 0

let run_until_stable t ~max_rounds ~step =
  let rec loop r =
    if r >= max_rounds then `Max_rounds
    else if run_round t ~step then loop (r + 1)
    else `Stable (r + 1)
  in
  loop 0

let messages_sent t = t.sent
let dropped t = t.dropped
