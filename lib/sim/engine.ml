module Rng = Bwc_stats.Rng
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace

type drop_cause = Trace.drop_cause = Fault_loss | Partition | Dead_dst | Purge

(* one enqueued copy of a message, carrying the trace identity minted at
   send time so delivery/drop events cite the same id/kind/bytes/stamp *)
type 'msg flight = {
  f_dst : int;
  f_src : int;
  f_msg : 'msg;
  f_id : int;
  f_kind : Trace.msg_kind;
  f_bytes : int;
  f_lc : int;
}

type 'msg t = {
  rng : Rng.t;
  n : int;
  active : bool array;
  faults : Fault.t;
  edge_delay : src:int -> dst:int -> int;
  (* messages in flight: delivery round -> flights, FIFO within a
     round because the table holds reversed lists flipped at delivery *)
  in_flight : (int, 'msg flight list) Hashtbl.t;
  inbox : (int * 'msg) Queue.t array; (* being consumed this round *)
  (* causal stamps: per-node Lamport clocks and the per-run monotone
     message-id counter.  Maintained whether or not a trace sink is
     attached (they never feed back into protocol behaviour, so
     instrumentation still cannot perturb a run). *)
  lamport : int array;
  mutable next_msg_id : int;
  mutable flying : int;
  mutable round : int;
  metrics : Registry.t;
  trace : Trace.t option;
  c_sent : Registry.Counter.t;
  c_delivered : Registry.Counter.t;
  c_drop_fault : Registry.Counter.t;
  c_drop_partition : Registry.Counter.t;
  c_drop_dead : Registry.Counter.t;
  c_drop_purge : Registry.Counter.t;
  c_rounds : Registry.Counter.t;
  g_in_flight : Registry.Gauge.t;
}

let create ?(faults = Fault.none) ?(edge_delay = fun ~src:_ ~dst:_ -> 1) ?metrics
    ?trace ~rng n =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  let drop cause =
    Registry.counter metrics ~labels:[ ("cause", Trace.cause_to_string cause) ]
      "engine.drops"
  in
  {
    rng;
    n;
    active = Array.make n true;
    faults;
    edge_delay;
    in_flight = Hashtbl.create 64;
    inbox = Array.init n (fun _ -> Queue.create ());
    lamport = Array.make n 0;
    next_msg_id = 0;
    flying = 0;
    round = 0;
    metrics;
    trace;
    c_sent = Registry.counter metrics "engine.msgs_sent";
    c_delivered = Registry.counter metrics "engine.msgs_delivered";
    c_drop_fault = drop Fault_loss;
    c_drop_partition = drop Partition;
    c_drop_dead = drop Dead_dst;
    c_drop_purge = drop Purge;
    c_rounds = Registry.counter metrics "engine.rounds";
    g_in_flight = Registry.gauge metrics "engine.in_flight";
  }

let n t = t.n
let round t = t.round
let faults t = t.faults
let metrics t = t.metrics

let restore_round t r =
  if r < 0 then invalid_arg "Engine.restore_round: negative round";
  t.round <- r

let rng_state t = Rng.state t.rng

let emit t ev = match t.trace with Some tr -> Trace.emit tr ev | None -> ()

let drop_counter t = function
  | Fault_loss -> t.c_drop_fault
  | Partition -> t.c_drop_partition
  | Dead_dst -> t.c_drop_dead
  | Purge -> t.c_drop_purge

let record_drop t ~msg ~kind ~bytes ~src ~dst cause =
  Registry.Counter.incr (drop_counter t cause);
  emit t (Trace.Drop { round = t.round; msg; kind; bytes; src; dst; cause })

let drop_flight t f cause =
  record_drop t ~msg:f.f_id ~kind:f.f_kind ~bytes:f.f_bytes ~src:f.f_src ~dst:f.f_dst
    cause

let check t i = if i < 0 || i >= t.n then invalid_arg "Engine: node id out of range"

let fresh_msg_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- id + 1;
  id

let lamport t i =
  check t i;
  t.lamport.(i)

let enqueue t ~due entry =
  let waiting = Option.value ~default:[] (Hashtbl.find_opt t.in_flight due) in
  Hashtbl.replace t.in_flight due (entry :: waiting);
  t.flying <- t.flying + 1

let send t ~src ~dst ~kind ~bytes msg =
  check t src;
  check t dst;
  if bytes < 0 then invalid_arg "Engine.send: negative bytes";
  Registry.Counter.incr t.c_sent;
  t.lamport.(src) <- t.lamport.(src) + 1;
  let lc = t.lamport.(src) in
  let id = fresh_msg_id t in
  emit t (Trace.Send { round = t.round; msg = id; kind; bytes; lc; src; dst });
  (* The sender cannot know whether the destination is up: the message is
     enqueued unconditionally and dropped at delivery time if the
     destination is down by then (run_round's check). *)
  match Fault.on_send t.faults ~round:t.round ~src ~dst with
  | Fault.Blocked `Partition -> record_drop t ~msg:id ~kind ~bytes ~src ~dst Partition
  | Fault.Blocked `Loss -> record_drop t ~msg:id ~kind ~bytes ~src ~dst Fault_loss
  | Fault.Deliver extras ->
      let delay = Stdlib.max 1 (t.edge_delay ~src ~dst) in
      List.iter
        (fun extra ->
          enqueue t
            ~due:(t.round + delay + extra)
            { f_dst = dst; f_src = src; f_msg = msg; f_id = id; f_kind = kind;
              f_bytes = bytes; f_lc = lc })
        extras

let set_active t i b =
  check t i;
  t.active.(i) <- b;
  if not b then begin
    (* drop queued and in-flight traffic to a departed node.
       Order-independent: each bucket is partitioned in isolation and the
       counter updates are commutative sums; the trace stays deterministic
       because only messages towards the single node [i] are purged, and
       they are recorded in bucket-list order within each round bucket
       visited. *)
    let purged = ref [] in
    (* bwclint: allow no-unordered-hashtbl-iter -- each round bucket is partitioned in isolation; counter updates are commutative sums *)
    Hashtbl.filter_map_inplace
      (fun due waiting ->
        let keep, drop = List.partition (fun f -> f.f_dst <> i) waiting in
        t.flying <- t.flying - List.length drop;
        List.iter (fun f -> purged := (due, f) :: !purged) drop;
        if keep = [] then None else Some keep)
      t.in_flight;
    List.iter
      (fun (_, f) -> drop_flight t f Purge)
      (List.sort
         (fun (d1, f1) (d2, f2) ->
           compare (d1, f1.f_dst, f1.f_src, f1.f_id) (d2, f2.f_dst, f2.f_src, f2.f_id))
         !purged);
    Queue.clear t.inbox.(i)
  end

let is_active t i =
  check t i;
  t.active.(i)

let active_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.active

let clear_in_flight t =
  (* purge everything, oldest delivery round first so the trace is
     deterministic *)
  Bwc_stats.Tbl.iter_sorted
    (fun _ waiting ->
      List.iter (fun f -> drop_flight t f Purge) (List.rev waiting))
    t.in_flight;
  t.flying <- 0;
  Hashtbl.reset t.in_flight;
  Array.iter Queue.clear t.inbox

let run_round t ~step =
  (* Advance the clock, then deliver everything due at the new round;
     sends during the round are stamped with the new time, so a 1-round
     delay reproduces the classic "visible next round" model. *)
  t.round <- t.round + 1;
  Registry.Counter.incr t.c_rounds;
  emit t (Trace.Round_start { round = t.round });
  (* scripted crash/restart windows fire at the round boundary, before
     delivery: a node crashing this round loses its in-flight traffic, a
     node restarting this round receives traffic due now *)
  List.iter
    (fun (node, up) ->
      if node >= 0 && node < t.n then begin
        emit t
          (if up then Trace.Restart { round = t.round; node }
           else Trace.Crash { round = t.round; node });
        set_active t node up
      end)
    (Fault.crashes_at t.faults t.round);
  let delivered = ref 0 in
  (match Hashtbl.find_opt t.in_flight t.round with
  | Some waiting ->
      Hashtbl.remove t.in_flight t.round;
      List.iter
        (fun f ->
          t.flying <- t.flying - 1;
          if t.active.(f.f_dst) then begin
            Queue.add (f.f_src, f.f_msg) t.inbox.(f.f_dst);
            Registry.Counter.incr t.c_delivered;
            (* receive-side Lamport merge: the receiver's clock jumps past
               the stamp carried by the message *)
            t.lamport.(f.f_dst) <- Stdlib.max t.lamport.(f.f_dst) f.f_lc + 1;
            emit t
              (Trace.Deliver
                 { round = t.round; msg = f.f_id; kind = f.f_kind; bytes = f.f_bytes;
                   lc = t.lamport.(f.f_dst); src = f.f_src; dst = f.f_dst });
            incr delivered
          end
          else drop_flight t f Dead_dst)
        (List.rev waiting)
  | None -> ());
  let order = Rng.permutation t.rng t.n in
  let changed = ref false in
  Array.iter
    (fun i ->
      if t.active.(i) then begin
        let msgs = List.of_seq (Queue.to_seq t.inbox.(i)) in
        Queue.clear t.inbox.(i);
        if step i msgs then changed := true
      end)
    order;
  Registry.Gauge.set t.g_in_flight t.flying;
  !changed || !delivered > 0 || t.flying > 0

let run_until_stable t ~max_rounds ~step =
  let rec loop r =
    if r >= max_rounds then `Max_rounds
    else if run_round t ~step then loop (r + 1)
    else begin
      emit t (Trace.Quiesce { round = t.round });
      `Stable (r + 1)
    end
  in
  loop 0

let messages_sent t = Registry.Counter.value t.c_sent
let delivered t = Registry.Counter.value t.c_delivered
let dropped_by t cause = Registry.Counter.value (drop_counter t cause)

let dropped t =
  dropped_by t Fault_loss + dropped_by t Partition + dropped_by t Dead_dst
  + dropped_by t Purge
