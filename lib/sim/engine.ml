module Rng = Bwc_stats.Rng

type 'msg t = {
  rng : Rng.t;
  n : int;
  active : bool array;
  edge_delay : src:int -> dst:int -> int;
  (* messages in flight: delivery round -> (dst, src, msg), FIFO within a
     round because the table holds reversed lists flipped at delivery *)
  in_flight : (int, (int * int * 'msg) list) Hashtbl.t;
  inbox : (int * 'msg) Queue.t array; (* being consumed this round *)
  mutable flying : int;
  mutable round : int;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(edge_delay = fun ~src:_ ~dst:_ -> 1) ~rng n =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  {
    rng;
    n;
    active = Array.make n true;
    edge_delay;
    in_flight = Hashtbl.create 64;
    inbox = Array.init n (fun _ -> Queue.create ());
    flying = 0;
    round = 0;
    sent = 0;
    dropped = 0;
  }

let n t = t.n
let round t = t.round

let check t i = if i < 0 || i >= t.n then invalid_arg "Engine: node id out of range"

let send t ~src ~dst msg =
  check t src;
  check t dst;
  if t.active.(dst) then begin
    let delay = Stdlib.max 1 (t.edge_delay ~src ~dst) in
    let due = t.round + delay in
    let waiting = Option.value ~default:[] (Hashtbl.find_opt t.in_flight due) in
    Hashtbl.replace t.in_flight due ((dst, src, msg) :: waiting);
    t.flying <- t.flying + 1;
    t.sent <- t.sent + 1
  end
  else t.dropped <- t.dropped + 1

let set_active t i b =
  check t i;
  t.active.(i) <- b;
  if not b then begin
    (* drop queued and in-flight traffic to a departed node *)
    Hashtbl.filter_map_inplace
      (fun _ waiting ->
        let keep, drop = List.partition (fun (dst, _, _) -> dst <> i) waiting in
        t.flying <- t.flying - List.length drop;
        t.dropped <- t.dropped + List.length drop;
        if keep = [] then None else Some keep)
      t.in_flight;
    Queue.clear t.inbox.(i)
  end

let is_active t i =
  check t i;
  t.active.(i)

let active_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.active

let run_round t ~step =
  (* Advance the clock, then deliver everything due at the new round;
     sends during the round are stamped with the new time, so a 1-round
     delay reproduces the classic "visible next round" model. *)
  t.round <- t.round + 1;
  let delivered = ref 0 in
  (match Hashtbl.find_opt t.in_flight t.round with
  | Some waiting ->
      Hashtbl.remove t.in_flight t.round;
      List.iter
        (fun (dst, src, msg) ->
          t.flying <- t.flying - 1;
          if t.active.(dst) then begin
            Queue.add (src, msg) t.inbox.(dst);
            incr delivered
          end
          else t.dropped <- t.dropped + 1)
        (List.rev waiting)
  | None -> ());
  let order = Rng.permutation t.rng t.n in
  let changed = ref false in
  Array.iter
    (fun i ->
      if t.active.(i) then begin
        let msgs = List.of_seq (Queue.to_seq t.inbox.(i)) in
        Queue.clear t.inbox.(i);
        if step i msgs then changed := true
      end)
    order;
  !changed || !delivered > 0 || t.flying > 0

let run_until_stable t ~max_rounds ~step =
  let rec loop r =
    if r >= max_rounds then `Max_rounds
    else if run_round t ~step then loop (r + 1)
    else `Stable (r + 1)
  in
  loop 0

let messages_sent t = t.sent
let dropped t = t.dropped
