(** Fault injection for the round-based engine.

    A fault plan decides, per message, whether the network loses,
    duplicates or delays it, and scripts coarser failures: time-windowed
    link partitions and node crash/restart windows.  Every stochastic
    decision draws from the plan's own seeded {!Bwc_stats.Rng}, so a run
    with faults is exactly as reproducible as one without.

    The plan is passed to {!Engine.create}; the engine consults it on
    every send and applies crash schedules at round boundaries.  The plan
    keeps injection counters ([lost], [duplicated], [delayed],
    [partition_dropped]) so experiments can report what the fault model
    actually did to the traffic. *)

type t

type partition = {
  starts : int;  (** first round the cut is in effect *)
  heals : int;   (** first round the cut is no longer in effect *)
  severs : src:int -> dst:int -> bool;  (** which directed links are cut *)
}

type crash = {
  node : int;
  down_from : int;  (** first round the node is down *)
  up_at : int;      (** round the node restarts; [max_int] = never *)
}

(** {2 Whole-system crash/restore schedules}

    Unlike per-node [crash] windows (which the engine applies itself), a
    {!system_crash} describes the {e entire} system going down at once —
    the scenario the persistence layer exists for.  The engine ignores
    these entries; a snapshot-capable driver (the [bwc_persist] chaos
    harness, experiment E15) interprets them: at [crash_round] it
    snapshots the system, optionally corrupts the image, discards the
    live system, waits [restore_after] rounds of downtime, and restarts
    from the snapshot — falling back to a cold rebuild when the restore
    is rejected. *)

type snapshot_corruption =
  | Truncate of int  (** keep only the first [n] bytes of the image *)
  | Flip_bits of int  (** flip [n] seeded-random bit positions *)
  | Stale_version
      (** rewrite the header line to an unknown format version *)

type system_crash = {
  crash_round : int;  (** the whole system goes down at this round (>= 1) *)
  restore_after : int;  (** rounds of downtime before the restart (>= 0) *)
  corrupt : snapshot_corruption option;
      (** what happens to the snapshot image while the system is down *)
}

val none : t
(** The empty plan: no losses, no duplicates, no jitter, no partitions,
    no crashes.  Never draws from any RNG, so an engine with [none]
    behaves bit-for-bit like one built without a fault plan. *)

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?jitter:int ->
  ?partitions:partition list ->
  ?crashes:crash list ->
  ?system_crashes:system_crash list ->
  ?metrics:Bwc_obs.Registry.t ->
  rng:Bwc_stats.Rng.t ->
  unit ->
  t
(** [drop] is the per-message loss probability, [duplicate] the
    probability a delivered message is enqueued twice (the copy gets an
    independent jitter), [jitter] the maximum extra delivery delay in
    rounds (uniform in [0, jitter]; non-zero draws break link FIFO-ness,
    i.e. reorder messages).  Probabilities outside [0, 1] are rejected.
    [metrics] is the registry the injection counters live in
    ([fault.lost], [fault.duplicated], [fault.delayed],
    [fault.partition_dropped]); a private registry is allocated when
    omitted, so the counters always exist. *)

val isolate : starts:int -> heals:int -> group:int list -> partition
(** A partition cutting every link between [group] and the rest of the
    system during [\[starts, heals)]. *)

(** {2 Decisions (consulted by the engine and by query routing)} *)

type verdict =
  | Blocked of [ `Partition | `Loss ]
  | Deliver of int list
      (** extra delays, one per copy to enqueue (singleton = no duplication) *)

val on_send : t -> round:int -> src:int -> dst:int -> verdict
(** Decides the fate of one message and updates the counters. *)

val partitioned : t -> round:int -> src:int -> dst:int -> bool
(** Whether the link is cut by a scripted partition at [round].
    Deterministic; does not touch counters or the RNG. *)

val sample_loss : t -> bool
(** One Bernoulli draw of the loss probability, for traffic that does not
    go through the engine (e.g. synchronous query hops).  Does not touch
    the counters; never draws when the loss probability is zero. *)

val crashes_at : t -> int -> (int * bool) list
(** [(node, up)] transitions scheduled for the given round. *)

val system_crashes : t -> system_crash list
(** The whole-system crash schedule, ascending by round.  [create]
    validates it (rounds >= 1, non-negative delays, at most one crash per
    round). *)

val system_crash_at : t -> int -> system_crash option
(** The system crash scheduled for the given round, if any.  Consulted by
    snapshot-capable drivers, never by the engine. *)

val corrupt_snapshot :
  rng:Bwc_stats.Rng.t -> snapshot_corruption -> string -> string
(** Applies one corruption mode to a snapshot image.  Pure in (rng, mode,
    bytes); only [Flip_bits] draws from [rng].  [Stale_version] rewrites
    the header line to format version 999, which no decoder accepts. *)

(** {2 Injection counters} *)

val metrics : t -> Bwc_obs.Registry.t
(** The registry holding the injection counters (the [?metrics] argument
    of {!create}, or the plan's private registry). *)

val lost : t -> int
(** Messages lost to stochastic drop ([fault.lost]). *)

val duplicated : t -> int
(** Messages enqueued twice ([fault.duplicated]). *)

val delayed : t -> int
(** Copies given a non-zero jitter ([fault.delayed]). *)

val partition_dropped : t -> int
(** Messages blocked by a scripted partition ([fault.partition_dropped]). *)
