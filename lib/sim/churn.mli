(** Churn schedules: scripted node joins and leaves, used by the dynamic
    clustering simulations (requirement 5 of Sec. I). *)

type event =
  | Join of int
  | Leave of int

type t

val empty : t

val scripted : (int * event) list -> t
(** [(round, event)] pairs; rounds need not be sorted. *)

val random :
  rng:Bwc_stats.Rng.t -> n:int -> rounds:int -> leave_prob:float -> rejoin_prob:float -> t
(** Per-round: each currently-up node leaves with [leave_prob]; each
    currently-down node rejoins with [rejoin_prob].  Node 0 never leaves
    (it is the overlay root). *)

val events_at : t -> int -> event list
val all_events : t -> (int * event) list
(** Sorted by round. *)
