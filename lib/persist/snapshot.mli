(** Crash-consistent whole-system snapshots.

    A snapshot captures everything durable a running system holds:
    the dataset matrix, bandwidth classes, the full prediction-tree
    geometry of every tree in the ensemble (vertices, edge weights,
    anchor overlay, distance labels), the aggregation protocol's
    per-link seq/ACK/epoch state and pending out-entries, the failure
    detector's per-edge lease clocks and suspicion states, both RNG
    streams, and the centralized index counts (when materialised).  A
    {!decode} therefore yields a system that answers queries
    immediately and resumes aggregation mid-epoch — restart without
    reconvergence.

    Deliberately {e not} captured: in-flight engine messages (a crash
    loses the network; the protocol's seq/ACK + retransmission layer is
    the recovery mechanism for exactly that loss, so restored unacked
    entries simply resend) and metrics counters (observability restarts
    from zero).

    Encoding is deterministic: snapshot → restore → re-snapshot is
    byte-identical, which CI checks with [cmp].  All validation errors
    inside a structurally intact container surface as
    {!Codec.Corrupt} — decoding never raises, whatever the bytes.

    With [?metrics], entry points maintain [persist.snapshots],
    [persist.restores], [persist.restore_rejected] and
    [persist.cold_starts]; with [?trace] they emit [Snapshot_write],
    [Restore] and [Restore_rejected] events. *)

type source = [ `System of Bwc_core.System.t | `Dynamic of Bwc_core.Dynamic.t ]

type restored =
  | Restored_system of Bwc_core.System.t
  | Restored_dynamic of Bwc_core.Dynamic.t

val encode :
  ?metrics:Bwc_obs.Registry.t -> ?trace:Bwc_obs.Trace.t -> source -> string
(** The complete snapshot file image (container + payload). *)

val decode :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  string ->
  (restored, Codec.error) result
(** Verifies the container (magic, version, length, CRC-32), then decodes
    and validates every layer, then re-assembles a live system.  Any
    corruption — truncation, bit flips, stale versions, semantic
    violations — comes back as [Error]; this function never raises. *)

val save :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  source ->
  string ->
  unit
(** [save src path]: {!encode} then {!Codec.write_file} (atomic
    temp-and-rename, so a crash mid-save never tears the file). *)

val load :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  string ->
  (restored, Codec.error) result

val restore_or_cold :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  cold:(unit -> restored) ->
  string ->
  restored * [ `Warm | `Cold of Codec.error ]
(** Graceful degradation: a verified snapshot restores warm; any
    rejection falls back to [cold ()] (typically a full rebuild +
    reconvergence) and reports why.  Counts [persist.cold_starts] and
    emits [Restore {warm = false}] on the fallback path. *)

val gen_path : string -> int -> string
(** [gen_path path g] is the on-disk name of generation [g]: [path]
    itself for [g = 0] (the newest image), ["path.g"] otherwise. *)

val rotate :
  ?metrics:Bwc_obs.Registry.t ->
  ?keep:int ->
  path:string ->
  string ->
  (unit, Codec.error) result
(** [rotate ~keep ~path bytes] installs [bytes] as the newest snapshot
    image after shifting existing generations one slot down, retaining
    the last [keep] (default 3) images: [path], [path.1], ...,
    [path.(keep - 1)].  The oldest image falls off the end.

    Safety: [bytes] is container-verified (magic, version, length,
    CRC-32) {e before} anything on disk moves, and a verification
    failure is returned without touching the chain — rotation can never
    replace the only valid image with garbage.  The final write itself
    goes through {!Codec.write_file} (atomic temp-and-rename).  Counts
    [persist.rotations] / [persist.rotate_rejected].  Raises
    [Invalid_argument] if [keep < 1]. *)

val load_any :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  ?keep:int ->
  string ->
  (restored * int, (int * Codec.error) list) result
(** Walk the rotated generations newest-first and restore the first
    image that verifies; [Ok (restored, g)] names the generation that
    won.  Missing files are skipped silently; existing-but-rejected
    generations are reported (with their index) in the [Error] list
    when every generation fails — an empty list means no generation
    exists at all.  A successful fallback past generation 0 counts
    [persist.generation_fallbacks]. *)

val restored_protocol : restored -> Bwc_core.Protocol.t
val restored_round : restored -> int
