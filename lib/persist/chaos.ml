(* Crash-restart chaos: drives a running system through the
   whole-system crash schedule of a fault plan.

   The engine itself never sees these crashes — killing the whole
   process is not an in-simulation event — so this harness interprets
   them: at each scheduled crash it snapshots the system, optionally
   mangles the bytes exactly as disk rot would ({!Bwc_sim.Fault.corrupt_snapshot}),
   discards the live system (the crash), sits out the scheduled
   downtime, and then restores — warm from the snapshot when it
   verifies, cold through the caller's rebuild when it does not.  The
   invariant under test: no byte pattern ever escalates past a typed
   rejection, and the system that comes back always reaches the
   fault-free fixed point. *)

module Fault = Bwc_sim.Fault
module Protocol = Bwc_core.Protocol
module System = Bwc_core.System

type outcome = {
  ticks : int;  (** harness ticks driven (protocol rounds + downtime) *)
  crashes : int;
  warm_restores : int;
  cold_restores : int;
  downtime : int;  (** ticks spent with the system down *)
  rejections : (int * Codec.error) list;
      (** scheduled corruptions that were caught, with the tick and the
          error class each one surfaced as *)
}

let run ?metrics ?trace ~rng ~faults ~ticks ~cold sys =
  if ticks < 0 then invalid_arg "Chaos.run: negative ticks";
  let sys = ref sys in
  let crashes = ref 0 in
  let warm = ref 0 in
  let coldr = ref 0 in
  let downtime = ref 0 in
  let rejections = ref [] in
  let tick = ref 1 in
  while !tick <= ticks do
    (match Fault.system_crash_at faults !tick with
    | None -> ignore (Protocol.run_round (System.protocol !sys) : bool)
    | Some sc ->
        incr crashes;
        let bytes = Snapshot.encode ?metrics ?trace (`System !sys) in
        let bytes =
          match sc.Fault.corrupt with
          | None -> bytes
          | Some mode -> Fault.corrupt_snapshot ~rng mode bytes
        in
        (* the crash: the live system is gone; only the bytes survive *)
        downtime := !downtime + sc.Fault.restore_after;
        tick := !tick + sc.Fault.restore_after;
        let restored, status =
          Snapshot.restore_or_cold ?metrics ?trace
            ~cold:(fun () -> Snapshot.Restored_system (cold ()))
            bytes
        in
        (match status with
        | `Warm -> incr warm
        | `Cold e ->
            incr coldr;
            rejections := (!tick, e) :: !rejections);
        sys :=
          (match restored with
          | Snapshot.Restored_system s -> s
          | Snapshot.Restored_dynamic _ ->
              (* unreachable from bytes we encoded ourselves, but stay
                 total: treat a kind mismatch like any other rejection *)
              cold ()));
    incr tick
  done;
  ( !sys,
    {
      ticks;
      crashes = !crashes;
      warm_restores = !warm;
      cold_restores = !coldr;
      downtime = !downtime;
      rejections = List.rev !rejections;
    } )
