(** Crash-restart chaos harness.

    Interprets the whole-system crash schedule of a {!Bwc_sim.Fault}
    plan over a live {!Bwc_core.System}: on every scheduled crash the
    system is snapshotted, the bytes are optionally corrupted
    ({!Bwc_sim.Fault.corrupt_snapshot}), the live system is discarded,
    the scheduled downtime elapses, and the system comes back — warm
    when the snapshot verifies, cold through [cold ()] when it does
    not.  Ordinary ticks run one protocol round each.

    This is the robustness-claim driver: whatever the corruption mode,
    the run completes without an exception, every injected corruption
    shows up in [rejections] as a typed {!Codec.error}, and the
    returned system is live. *)

type outcome = {
  ticks : int;  (** harness ticks driven (protocol rounds + downtime) *)
  crashes : int;
  warm_restores : int;
  cold_restores : int;
  downtime : int;  (** ticks spent with the system down *)
  rejections : (int * Codec.error) list;
      (** scheduled corruptions that were caught, with the tick and the
          error class each surfaced as *)
}

val run :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  rng:Bwc_stats.Rng.t ->
  faults:Bwc_sim.Fault.t ->
  ticks:int ->
  cold:(unit -> Bwc_core.System.t) ->
  Bwc_core.System.t ->
  Bwc_core.System.t * outcome
(** [rng] feeds only the bit-flip corruption positions.  [cold] rebuilds
    a fresh system from scratch (full reconvergence); it is invoked once
    per rejected snapshot.  Raises [Invalid_argument] on negative
    [ticks]; never raises on account of snapshot bytes. *)
