(* Snapshot container and token codec.

   The container is three parts: a magic+version line, a length+checksum
   line, and the payload.  Everything that can go wrong with a file on
   disk — truncation, bit rot, a snapshot from a future version — is
   caught here, before any payload byte is interpreted, so the decoders
   above this layer only ever see a payload whose length and CRC-32
   already matched.

   The payload itself is a stream of typed, newline-terminated tokens
   (ints, hex floats, length-prefixed strings, counts, section tags).
   Text keeps snapshots diffable and debuggable; hex floats ("%h") make
   every float round-trip bit-exactly, which is what lets a restore
   re-snapshot to byte-identical output.  No [Marshal] anywhere: the
   format is versioned, stable across compiler versions, and every read
   is validated. *)

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated
  | Bad_checksum
  | Corrupt of string

exception Error of error

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported snapshot version %d" v
  | Truncated -> "truncated"
  | Bad_checksum -> "checksum mismatch"
  | Corrupt msg -> "corrupt payload: " ^ msg

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Error (Corrupt msg))) fmt

(* CRC-32 (IEEE reflected polynomial), table-driven.  Plain ints: every
   intermediate stays below 2^32, well within OCaml's 63 bits. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let magic = "BWCSNAP"
let version = 1

let encode payload =
  Printf.sprintf "%s %d\nlen %d crc %08x\n%s" magic version
    (String.length payload) (crc32 payload) payload

let decode bytes =
  try
    let nl1 =
      match String.index_opt bytes '\n' with
      | Some i -> i
      | None ->
          (* no complete first line: a recognisable magic prefix means the
             file was cut short, anything else is not ours at all *)
          let m = String.length magic in
          if String.length bytes >= m && String.sub bytes 0 m = magic then
            raise (Error Truncated)
          else raise (Error Bad_magic)
    in
    (match String.split_on_char ' ' (String.sub bytes 0 nl1) with
    | [ m; v ] when m = magic -> (
        match int_of_string_opt v with
        | Some v when v = version -> ()
        | Some v -> raise (Error (Bad_version v))
        | None -> corrupt "unreadable version field")
    | _ -> raise (Error Bad_magic));
    let nl2 =
      match String.index_from_opt bytes (nl1 + 1) '\n' with
      | Some i -> i
      | None -> raise (Error Truncated)
    in
    let len, crc =
      match String.split_on_char ' ' (String.sub bytes (nl1 + 1) (nl2 - nl1 - 1)) with
      | [ "len"; l; "crc"; c ] when String.length c = 8 -> (
          match (int_of_string_opt l, int_of_string_opt ("0x" ^ c)) with
          | Some l, Some c when l >= 0 -> (l, c)
          | _ -> corrupt "unreadable length/checksum header")
      | _ -> corrupt "malformed length/checksum header"
    in
    let start = nl2 + 1 in
    let avail = String.length bytes - start in
    if avail < len then raise (Error Truncated);
    if avail > len then corrupt "%d trailing bytes after payload" (avail - len);
    let payload = String.sub bytes start len in
    if crc32 payload <> crc then raise (Error Bad_checksum);
    Ok payload
  with Error e -> Result.Error e

(* Crash-consistent file write: the bytes land in a sibling temp file
   first and are renamed into place, so a crash mid-write leaves either
   the old snapshot or the new one, never a torn file. *)
let write_file path bytes =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents = Buffer.contents
  let int w v = Buffer.add_string w ("i " ^ string_of_int v ^ "\n")
  let i64 w v = Buffer.add_string w (Printf.sprintf "I %Ld\n" v)
  let float w v = Buffer.add_string w (Printf.sprintf "f %h\n" v)
  let bool w v = Buffer.add_string w (if v then "b 1\n" else "b 0\n")

  let str w s =
    Buffer.add_string w (Printf.sprintf "s %d " (String.length s));
    Buffer.add_string w s;
    Buffer.add_char w '\n'

  let tag w name = Buffer.add_string w ("# " ^ name ^ "\n")
  let count w c = Buffer.add_string w ("n " ^ string_of_int c ^ "\n")

  let list w f items =
    count w (List.length items);
    List.iter f items

  let array w f items =
    count w (Array.length items);
    Array.iter f items

  let option w f = function
    | None -> bool w false
    | Some v ->
        bool w true;
        f v
end

module R = struct
  type t = { data : string; mutable pos : int }

  let create data = { data; pos = 0 }

  let line r =
    if r.pos >= String.length r.data then corrupt "unexpected end of payload";
    match String.index_from_opt r.data r.pos '\n' with
    | None -> corrupt "unterminated token at byte %d" r.pos
    | Some nl ->
        let s = String.sub r.data r.pos (nl - r.pos) in
        r.pos <- nl + 1;
        s

  let token r prefix =
    let l = line r in
    if String.length l < 2 || l.[0] <> prefix || l.[1] <> ' ' then
      corrupt "expected '%c' token, got %S" prefix l;
    String.sub l 2 (String.length l - 2)

  let int r =
    match int_of_string_opt (token r 'i') with
    | Some v -> v
    | None -> corrupt "unreadable int"

  let i64 r =
    match Int64.of_string_opt (token r 'I') with
    | Some v -> v
    | None -> corrupt "unreadable int64"

  let float r =
    match float_of_string_opt (token r 'f') with
    | Some v -> v
    | None -> corrupt "unreadable float"

  let bool r =
    match token r 'b' with
    | "1" -> true
    | "0" -> false
    | s -> corrupt "unreadable bool %S" s

  let count r =
    match int_of_string_opt (token r 'n') with
    | Some v when v >= 0 -> v
    | Some _ | None -> corrupt "unreadable count"

  let str r =
    (* "s <len> <raw bytes>\n" — the bytes may themselves contain
       newlines, so this one token is parsed by hand *)
    let d = r.data in
    let n = String.length d in
    if r.pos + 2 > n || d.[r.pos] <> 's' || d.[r.pos + 1] <> ' ' then
      corrupt "expected string token";
    let sp =
      match String.index_from_opt d (r.pos + 2) ' ' with
      | Some i -> i
      | None -> corrupt "unterminated string header"
    in
    let len =
      match int_of_string_opt (String.sub d (r.pos + 2) (sp - r.pos - 2)) with
      | Some l when l >= 0 -> l
      | Some _ | None -> corrupt "unreadable string length"
    in
    if sp + 1 + len >= n then corrupt "string overruns payload";
    if d.[sp + 1 + len] <> '\n' then corrupt "unterminated string";
    let s = String.sub d (sp + 1) len in
    r.pos <- sp + len + 2;
    s

  let tag r name =
    let l = line r in
    if l <> "# " ^ name then corrupt "expected section %S, got %S" name l

  (* explicit loops: OCaml leaves [List.init]/[Array.init] evaluation
     order unspecified, and token reads are order-sensitive effects *)
  let list r f =
    let c = count r in
    let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f () :: acc) in
    go c []

  let array r f =
    let c = count r in
    if c = 0 then [||]
    else begin
      let a = Array.make c (f ()) in
      for i = 1 to c - 1 do
        a.(i) <- f ()
      done;
      a
    end

  let option r f = if bool r then Some (f ()) else None

  let eof r =
    let extra = String.length r.data - r.pos in
    if extra <> 0 then corrupt "%d unread payload bytes" extra
end
