(* Whole-system snapshot encode/decode.

   Each layer of the stack exposes a validating [dump]/[of_dump] pair;
   this module is the single place that turns those dump records into
   bytes and back.  Decoding reverses the dependency order the system is
   built in: dataset -> classes -> ensemble (geometry) -> protocol
   (per-link state over the restored ensemble) -> optional centralized
   index -> facade assembly.  Spaces are closures and never serialize;
   they are rebuilt from the dataset matrix, which reproduces the exact
   same distances (pure arithmetic on the same floats).

   Deliberately absent from snapshots: metrics counters (a restored
   process starts its observability from zero) and in-flight engine
   messages (a crash loses the network; the seq/ACK + retransmission
   layer is the recovery mechanism for exactly that loss). *)

module Dataset = Bwc_dataset.Dataset
module Dmatrix = Bwc_metric.Dmatrix
module Space = Bwc_metric.Space
module Tree = Bwc_predtree.Tree
module Anchor = Bwc_predtree.Anchor
module Framework = Bwc_predtree.Framework
module Ensemble = Bwc_predtree.Ensemble
module Label = Bwc_predtree.Label
module Detector = Bwc_core.Detector
module Protocol = Bwc_core.Protocol
module Classes = Bwc_core.Classes
module Node_info = Bwc_core.Node_info
module Index = Bwc_core.Find_cluster.Index
module Coreset = Bwc_core.Find_cluster.Coreset
module System = Bwc_core.System
module Dynamic = Bwc_core.Dynamic
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module W = Codec.W
module R = Codec.R

type source = [ `System of System.t | `Dynamic of Dynamic.t ]
type restored = Restored_system of System.t | Restored_dynamic of Dynamic.t

(* ----- dataset: name + upper-triangular bandwidth matrix ----- *)

let enc_dataset w ds =
  W.tag w "dataset";
  W.str w ds.Dataset.name;
  let n = Dataset.size ds in
  W.int w n;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      W.float w (Dataset.bw ds i j)
    done
  done

let dec_dataset r =
  R.tag r "dataset";
  let name = R.str r in
  let n = R.int r in
  if n < 1 then Codec.corrupt "dataset size %d" n;
  let pairs = n * (n - 1) / 2 in
  let vals = Array.make (max 1 pairs) 0. in
  for k = 0 to pairs - 1 do
    vals.(k) <- R.float r
  done;
  (* row-major upper triangle: row i starts after the i longer rows
     above it *)
  let pos i j = (i * ((2 * n) - i - 1) / 2) + (j - i - 1) in
  Dataset.make ~name (Dmatrix.of_fun n ~diag:infinity (fun i j -> vals.(pos i j)))

(* ----- classes ----- *)

let enc_classes w cl =
  W.tag w "classes";
  W.float w (Classes.c cl);
  W.array w (W.float w) (Classes.bandwidths cl)

let dec_classes r =
  R.tag r "classes";
  let c = R.float r in
  let bws = R.array r (fun () -> R.float r) in
  Classes.make ~c (Array.to_list bws)

(* ----- prediction-tree geometry ----- *)

let enc_label w (lab : Label.t) =
  W.array w
    (fun (e : Label.entry) ->
      W.int w e.Label.host;
      W.float w e.Label.offset;
      W.float w e.Label.leaf)
    lab

let dec_label r : Label.t =
  R.array r (fun () ->
      let host = R.int r in
      let offset = R.float r in
      let leaf = R.float r in
      { Label.host; offset; leaf })

let enc_tree w (d : Tree.dump) =
  W.tag w "tree";
  W.array w (W.int w) d.Tree.d_kinds;
  W.list w
    (fun (e : Tree.edge_dump) ->
      W.int w e.Tree.e_a;
      W.int w e.Tree.e_b;
      W.float w e.Tree.e_weight;
      W.int w e.Tree.e_owner;
      W.bool w e.Tree.e_live)
    d.Tree.d_edges;
  W.list w
    (fun (h, v) ->
      W.int w h;
      W.int w v)
    d.Tree.d_hosts

let dec_tree r : Tree.dump =
  R.tag r "tree";
  let d_kinds = R.array r (fun () -> R.int r) in
  let d_edges =
    R.list r (fun () ->
        let e_a = R.int r in
        let e_b = R.int r in
        let e_weight = R.float r in
        let e_owner = R.int r in
        let e_live = R.bool r in
        { Tree.e_a; e_b; e_weight; e_owner; e_live })
  in
  let d_hosts =
    R.list r (fun () ->
        let h = R.int r in
        let v = R.int r in
        (h, v))
  in
  { Tree.d_kinds; d_edges; d_hosts }

let enc_anchor w (d : Anchor.dump) =
  W.tag w "anchor";
  W.option w (W.int w) d.Anchor.d_root;
  W.list w
    (fun (h, kids) ->
      W.int w h;
      W.list w (W.int w) kids)
    d.Anchor.d_nodes

let dec_anchor r : Anchor.dump =
  R.tag r "anchor";
  let d_root = R.option r (fun () -> R.int r) in
  let d_nodes =
    R.list r (fun () ->
        let h = R.int r in
        let kids = R.list r (fun () -> R.int r) in
        (h, kids))
  in
  { Anchor.d_root; d_nodes }

let enc_mode w (m : Framework.mode) =
  (match m.Framework.base with `Root -> W.int w 0 | `Random -> W.int w 1);
  match m.Framework.end_search with
  | `Exact -> W.int w 0
  | `Anchor_guided budget ->
      W.int w 1;
      W.int w budget

let dec_mode r : Framework.mode =
  let base =
    match R.int r with
    | 0 -> `Root
    | 1 -> `Random
    | v -> Codec.corrupt "unknown base strategy %d" v
  in
  let end_search =
    match R.int r with
    | 0 -> `Exact
    | 1 -> `Anchor_guided (R.int r)
    | v -> Codec.corrupt "unknown end strategy %d" v
  in
  { Framework.base; end_search }

let enc_framework w (d : Framework.dump) =
  W.tag w "framework";
  enc_mode w d.Framework.d_mode;
  enc_tree w d.Framework.d_tree;
  enc_anchor w d.Framework.d_anchor;
  W.list w
    (fun (h, lab) ->
      W.int w h;
      enc_label w lab)
    d.Framework.d_labels;
  W.list w (W.int w) d.Framework.d_rev_order

let dec_framework r : Framework.dump =
  R.tag r "framework";
  let d_mode = dec_mode r in
  let d_tree = dec_tree r in
  let d_anchor = dec_anchor r in
  let d_labels =
    R.list r (fun () ->
        let h = R.int r in
        let lab = dec_label r in
        (h, lab))
  in
  let d_rev_order = R.list r (fun () -> R.int r) in
  { Framework.d_mode; d_tree; d_anchor; d_labels; d_rev_order }

let enc_ensemble w (d : Ensemble.dump) =
  W.tag w "ensemble";
  W.array w (enc_framework w) d

let dec_ensemble r : Ensemble.dump =
  R.tag r "ensemble";
  R.array r (fun () -> dec_framework r)

(* ----- detector ----- *)

let enc_detector w (d : Detector.dump) =
  W.tag w "detector";
  W.int w d.Detector.d_config.Detector.heartbeat_every;
  W.int w d.Detector.d_config.Detector.suspect_after;
  W.int w d.Detector.d_config.Detector.confirm_after;
  W.int w d.Detector.d_config.Detector.jitter;
  W.i64 w d.Detector.d_rng;
  W.list w
    (fun (e : Detector.edge_dump) ->
      W.int w e.Detector.d_watcher;
      W.int w e.Detector.d_peer;
      W.int w e.Detector.d_last_heard;
      W.int w
        (match e.Detector.d_state with
        | Detector.Alive -> 0
        | Detector.Suspected -> 1
        | Detector.Confirmed -> 2);
      W.int w e.Detector.d_slack)
    d.Detector.d_edges

let dec_detector r : Detector.dump =
  R.tag r "detector";
  let heartbeat_every = R.int r in
  let suspect_after = R.int r in
  let confirm_after = R.int r in
  let jitter = R.int r in
  let d_rng = R.i64 r in
  let d_edges =
    R.list r (fun () ->
        let d_watcher = R.int r in
        let d_peer = R.int r in
        let d_last_heard = R.int r in
        let d_state =
          match R.int r with
          | 0 -> Detector.Alive
          | 1 -> Detector.Suspected
          | 2 -> Detector.Confirmed
          | v -> Codec.corrupt "unknown detector state %d" v
        in
        let d_slack = R.int r in
        { Detector.d_watcher; d_peer; d_last_heard; d_state; d_slack })
  in
  {
    Detector.d_config =
      { Detector.heartbeat_every; suspect_after; confirm_after; jitter };
    d_rng;
    d_edges;
  }

(* ----- protocol ----- *)

let enc_info w (ni : Node_info.t) =
  W.int w ni.Node_info.host;
  W.array w (enc_label w) ni.Node_info.labels

let dec_info r =
  let host = R.int r in
  let labels = R.array r (fun () -> dec_label r) in
  Node_info.make ~host ~labels

let enc_int_assoc w items =
  W.list w
    (fun (k, v) ->
      W.int w k;
      W.int w v)
    items

let dec_int_assoc r =
  R.list r (fun () ->
      let k = R.int r in
      let v = R.int r in
      (k, v))

let enc_protocol w (d : Protocol.dump) =
  W.tag w "protocol";
  W.int w d.Protocol.d_n_cut;
  W.int w d.Protocol.d_resend_timeout;
  W.int w d.Protocol.d_max_retransmits;
  W.int w d.Protocol.d_rounds;
  W.int w d.Protocol.d_epoch;
  W.int w d.Protocol.d_engine_round;
  W.i64 w d.Protocol.d_engine_rng;
  W.list w
    (fun (nd : Protocol.node_dump) ->
      W.int w nd.Protocol.nd_id;
      W.bool w nd.Protocol.nd_active;
      W.bool w nd.Protocol.nd_dirty;
      W.array w (W.int w) nd.Protocol.nd_own_row;
      W.list w
        (fun (peer, infos) ->
          W.int w peer;
          W.list w (enc_info w) infos)
        nd.Protocol.nd_aggr_node;
      W.list w
        (fun (peer, row) ->
          W.int w peer;
          W.array w (W.int w) row)
        nd.Protocol.nd_aggr_crt;
      W.list w
        (fun (o : Protocol.out_dump) ->
          W.int w o.Protocol.o_peer;
          W.int w o.Protocol.o_epoch;
          W.int w o.Protocol.o_seq;
          W.list w (enc_info w) o.Protocol.o_prop_node;
          W.array w (W.int w) o.Protocol.o_prop_crt;
          W.int w o.Protocol.o_sent_round;
          W.int w o.Protocol.o_tries;
          W.bool w o.Protocol.o_acked;
          W.bool w o.Protocol.o_gave_up)
        nd.Protocol.nd_out;
      enc_int_assoc w nd.Protocol.nd_seen_seq;
      enc_int_assoc w nd.Protocol.nd_link_epoch;
      enc_int_assoc w nd.Protocol.nd_last_sent)
    d.Protocol.d_nodes;
  W.option w (enc_detector w) d.Protocol.d_detector

let dec_protocol r : Protocol.dump =
  R.tag r "protocol";
  let d_n_cut = R.int r in
  let d_resend_timeout = R.int r in
  let d_max_retransmits = R.int r in
  let d_rounds = R.int r in
  let d_epoch = R.int r in
  let d_engine_round = R.int r in
  let d_engine_rng = R.i64 r in
  let d_nodes =
    R.list r (fun () ->
        let nd_id = R.int r in
        let nd_active = R.bool r in
        let nd_dirty = R.bool r in
        let nd_own_row = R.array r (fun () -> R.int r) in
        let nd_aggr_node =
          R.list r (fun () ->
              let peer = R.int r in
              let infos = R.list r (fun () -> dec_info r) in
              (peer, infos))
        in
        let nd_aggr_crt =
          R.list r (fun () ->
              let peer = R.int r in
              let row = R.array r (fun () -> R.int r) in
              (peer, row))
        in
        let nd_out =
          R.list r (fun () ->
              let o_peer = R.int r in
              let o_epoch = R.int r in
              let o_seq = R.int r in
              let o_prop_node = R.list r (fun () -> dec_info r) in
              let o_prop_crt = R.array r (fun () -> R.int r) in
              let o_sent_round = R.int r in
              let o_tries = R.int r in
              let o_acked = R.bool r in
              let o_gave_up = R.bool r in
              {
                Protocol.o_peer;
                o_epoch;
                o_seq;
                o_prop_node;
                o_prop_crt;
                o_sent_round;
                o_tries;
                o_acked;
                o_gave_up;
              })
        in
        let nd_seen_seq = dec_int_assoc r in
        let nd_link_epoch = dec_int_assoc r in
        let nd_last_sent = dec_int_assoc r in
        {
          Protocol.nd_id;
          nd_active;
          nd_dirty;
          nd_own_row;
          nd_aggr_node;
          nd_aggr_crt;
          nd_out;
          nd_seen_seq;
          nd_link_epoch;
          nd_last_sent;
        })
  in
  let d_detector = R.option r (fun () -> dec_detector r) in
  {
    Protocol.d_n_cut;
    d_resend_timeout;
    d_max_retransmits;
    d_rounds;
    d_epoch;
    d_engine_round;
    d_engine_rng;
    d_nodes;
    d_detector;
  }

(* ----- centralized index ----- *)

let enc_index w (d : Index.dump) =
  W.tag w "index";
  W.list w (W.int w) d.Index.d_members;
  W.array w (W.int w) d.Index.d_sizes

let dec_index r : Index.dump =
  R.tag r "index";
  let d_members = R.list r (fun () -> R.int r) in
  let d_sizes = R.array r (fun () -> R.int r) in
  { Index.d_members; d_sizes }

(* The coreset dump is topology-only (summaries are a pure function of
   space, k and topology, rebuilt deterministically on restore), so it
   reuses the anchor codec. *)
let enc_coreset w (d : Coreset.dump) =
  W.tag w "coreset";
  W.int w d.Coreset.d_k;
  enc_anchor w d.Coreset.d_anchor

let dec_coreset r : Coreset.dump =
  R.tag r "coreset";
  let d_k = R.int r in
  let d_anchor = dec_anchor r in
  { Coreset.d_k; d_anchor }

(* ----- whole systems ----- *)

let encode_payload (src : source) =
  let w = W.create () in
  W.tag w "snapshot";
  (match src with
  | `System sys ->
      W.str w "system";
      W.int w (System.seed sys);
      W.i64 w (System.rng_state sys);
      W.float w (System.c sys);
      enc_dataset w (System.dataset sys);
      enc_classes w (System.classes sys);
      enc_ensemble w (Ensemble.dump (System.framework sys));
      enc_protocol w (Protocol.dump (System.protocol sys));
      W.option w (fun i -> enc_index w (Index.dump i)) (System.index_opt sys);
      W.option w (fun c -> enc_coreset w (Coreset.dump c)) (System.coreset_opt sys)
  | `Dynamic dyn ->
      W.str w "dynamic";
      W.i64 w (Dynamic.rng_state dyn);
      W.float w (Dynamic.c dyn);
      enc_dataset w (Dynamic.dataset dyn);
      enc_classes w (Dynamic.classes dyn);
      enc_ensemble w (Ensemble.dump (Dynamic.ensemble dyn));
      enc_protocol w (Protocol.dump (Dynamic.protocol dyn));
      W.option w (fun i -> enc_index w (Index.dump i)) (Dynamic.index_opt dyn);
      (* the mode travels with the state: a restored daemon must keep
         serving the same kind of answers it was serving before the crash *)
      W.int w
        (match Dynamic.index_mode dyn with Dynamic.Exact -> 0 | Dynamic.Coreset k -> k);
      W.option w (fun c -> enc_coreset w (Coreset.dump c)) (Dynamic.coreset_opt dyn));
  Codec.encode (W.contents w)

let dec_system ?metrics ?trace r =
  let seed = R.int r in
  let rng_state = R.i64 r in
  let c = R.float r in
  let dataset = dec_dataset r in
  let classes = dec_classes r in
  let ens_dump = dec_ensemble r in
  let proto_dump = dec_protocol r in
  let index_dump = R.option r (fun () -> dec_index r) in
  let coreset_dump = R.option r (fun () -> dec_coreset r) in
  R.eof r;
  let fw = Ensemble.of_dump ?metrics (Dataset.metric ~c dataset) ens_dump in
  let protocol = Protocol.of_dump ?metrics ?trace ~classes fw proto_dump in
  let index =
    Option.map
      (fun d ->
        let predicted =
          Space.cached
            (Space.make ~n:(Dataset.size dataset) ~dist:(Ensemble.predicted fw))
        in
        Index.of_dump predicted d)
      index_dump
  in
  let coreset =
    Option.map
      (fun d ->
        (* same uncached predicted space System.coreset uses: summaries
           only ever evaluate O(n·k) of its distances *)
        let predicted =
          Space.make ~n:(Dataset.size dataset) ~dist:(Ensemble.predicted fw)
        in
        Coreset.of_dump ?metrics predicted d)
      coreset_dump
  in
  System.assemble ~seed ~dataset ~c ~fw ~protocol ~classes ~rng_state ~index ?coreset ()

let dec_dynamic ?metrics ?trace r =
  let rng_state = R.i64 r in
  let c = R.float r in
  let dataset = dec_dataset r in
  let classes = dec_classes r in
  let ens_dump = dec_ensemble r in
  let proto_dump = dec_protocol r in
  let index_dump = R.option r (fun () -> dec_index r) in
  let mode_int = R.int r in
  let coreset_dump = R.option r (fun () -> dec_coreset r) in
  R.eof r;
  let index_mode =
    if mode_int = 0 then Dynamic.Exact
    else if mode_int > 0 then Dynamic.Coreset mode_int
    else invalid_arg "Snapshot: negative index mode"
  in
  let fw = Ensemble.of_dump ?metrics (Dataset.metric ~c dataset) ens_dump in
  let protocol = Protocol.of_dump ?metrics ?trace ~classes fw proto_dump in
  let universe () = Space.cached (Dataset.metric ~c dataset) in
  let index = Option.map (fun d -> Index.of_dump (universe ()) d) index_dump in
  let coreset =
    Option.map (fun d -> Coreset.of_dump ?metrics (universe ()) d) coreset_dump
  in
  Dynamic.assemble ~dataset ~c ~fw ~protocol ~classes ~rng_state ~index ~index_mode
    ?coreset ()

let decode_payload ?metrics ?trace payload =
  try
    let r = R.create payload in
    R.tag r "snapshot";
    match R.str r with
    | "system" -> Ok (Restored_system (dec_system ?metrics ?trace r))
    | "dynamic" -> Ok (Restored_dynamic (dec_dynamic ?metrics ?trace r))
    | k -> Codec.corrupt "unknown snapshot kind %S" k
  with
  | Codec.Error e -> Error e
  | Invalid_argument msg | Failure msg -> Error (Codec.Corrupt msg)

(* ----- instrumented entry points ----- *)

let source_round = function
  | `System sys -> Protocol.current_round (System.protocol sys)
  | `Dynamic dyn -> Protocol.current_round (Dynamic.protocol dyn)

let restored_round = function
  | Restored_system sys -> Protocol.current_round (System.protocol sys)
  | Restored_dynamic dyn -> Protocol.current_round (Dynamic.protocol dyn)

let restored_protocol = function
  | Restored_system sys -> System.protocol sys
  | Restored_dynamic dyn -> Dynamic.protocol dyn

let bump metrics name =
  match metrics with
  | Some m -> Registry.Counter.incr (Registry.counter m name)
  | None -> ()

let emit trace ev = match trace with Some tr -> Trace.emit tr ev | None -> ()

let encode ?metrics ?trace (src : source) =
  let bytes = encode_payload src in
  bump metrics "persist.snapshots";
  emit trace
    (Trace.Snapshot_write
       { round = source_round src; bytes = String.length bytes });
  bytes

let decode ?metrics ?trace bytes =
  match
    match Codec.decode bytes with
    | Error e -> Error e
    | Ok payload -> decode_payload ?metrics ?trace payload
  with
  | Ok restored ->
      bump metrics "persist.restores";
      emit trace (Trace.Restore { round = restored_round restored; warm = true });
      Ok restored
  | Error e ->
      bump metrics "persist.restore_rejected";
      emit trace
        (Trace.Restore_rejected { round = 0; reason = Codec.error_to_string e });
      Error e

let save ?metrics ?trace src path =
  Codec.write_file path (encode ?metrics ?trace src)

let load ?metrics ?trace path = decode ?metrics ?trace (Codec.read_file path)

(* ----- rotated generations -----

   [path] is the newest image, [path.1] the previous one, ... up to
   [path.(keep-1)].  Rotation refuses bytes that fail container
   verification before touching the chain, so a buggy caller can never
   push the only valid image off the end with garbage. *)

let gen_path path g = if g = 0 then path else Printf.sprintf "%s.%d" path g

let rotate ?metrics ?(keep = 3) ~path bytes =
  if keep < 1 then invalid_arg "Snapshot.rotate: keep < 1";
  match Codec.decode bytes with
  | Error e ->
      bump metrics "persist.rotate_rejected";
      Error e
  | Ok (_ : string) ->
      for g = keep - 2 downto 0 do
        let src = gen_path path g and dst = gen_path path (g + 1) in
        if Sys.file_exists src then Sys.rename src dst
      done;
      Codec.write_file path bytes;
      bump metrics "persist.rotations";
      Ok ()

let load_any ?metrics ?trace ?(keep = 3) path =
  if keep < 1 then invalid_arg "Snapshot.load_any: keep < 1";
  let rec go g errs =
    if g >= keep then Error (List.rev errs)
    else
      let p = gen_path path g in
      if not (Sys.file_exists p) then go (g + 1) errs
      else
        match load ?metrics ?trace p with
        | Ok restored ->
            if g > 0 then bump metrics "persist.generation_fallbacks";
            Ok (restored, g)
        | Error e -> go (g + 1) ((g, e) :: errs)
  in
  go 0 []

let restore_or_cold ?metrics ?trace ~cold bytes =
  match decode ?metrics ?trace bytes with
  | Ok restored -> (restored, `Warm)
  | Error e ->
      let restored = cold () in
      bump metrics "persist.cold_starts";
      emit trace
        (Trace.Restore { round = restored_round restored; warm = false });
      (restored, `Cold e)
