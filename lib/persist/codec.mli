(** Snapshot container and token codec.

    A snapshot file is

    {v
BWCSNAP 1
len <payload bytes> crc <crc32, 8 hex digits>
<payload>
    v}

    {!decode} verifies magic, version, exact length and CRC-32 before
    returning the payload, so every way a file can rot on disk —
    truncation, bit flips, a stale or future format version — is
    classified into a typed {!error} here, and the structured decoders
    above this layer never crash on garbage.

    The payload is a stream of typed newline-terminated tokens written
    by {!W} and read back by {!R}.  Floats travel in hexadecimal
    ("%h") notation and round-trip bit-exactly, which is what makes
    snapshot → restore → re-snapshot byte-identical.  The format never
    uses [Marshal] (see the [no-marshal] lint rule): it is versioned,
    compiler-independent, and every read is validated. *)

type error =
  | Bad_magic  (** the file does not start with the snapshot magic *)
  | Bad_version of int  (** recognisably a snapshot, but not our version *)
  | Truncated  (** shorter than its header promises *)
  | Bad_checksum  (** payload CRC-32 disagrees with the header *)
  | Corrupt of string  (** payload structure or semantic validation failed *)

exception Error of error

val error_to_string : error -> string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Error}[ (Corrupt msg)].  Reader primitives
    and payload decoders use this for every structural violation. *)

val crc32 : string -> int
(** CRC-32 (IEEE), as used in the container header. *)

val magic : string
val version : int

val encode : string -> string
(** Wraps a payload in the container (header lines + checksum). *)

val decode : string -> (string, error) result
(** Verifies the container and returns the payload.  Never raises on any
    input bytes. *)

val write_file : string -> string -> unit
(** Crash-consistent write: the bytes go to [path ^ ".tmp"] first and
    are renamed into place, so a crash mid-write leaves either the old
    file or the new one, never a torn snapshot. *)

val read_file : string -> string
(** Whole file, binary.  Raises [Sys_error] like [open_in]. *)

(** Token writer. *)
module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val int : t -> int -> unit
  val i64 : t -> int64 -> unit

  val float : t -> float -> unit
  (** Hexadecimal notation: bit-exact round-trip, deterministic bytes. *)

  val bool : t -> bool -> unit
  val str : t -> string -> unit
  (** Length-prefixed; the string may contain any bytes. *)

  val tag : t -> string -> unit
  (** Section marker; {!R.tag} requires it verbatim, so reader/writer
      drift fails fast with a named section instead of a token soup. *)

  val count : t -> int -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  val array : t -> ('a -> unit) -> 'a array -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit
end

(** Token reader.  Every primitive raises {!Error}[ (Corrupt _)] on
    mismatch; nothing here ever raises anything else. *)
module R : sig
  type t

  val create : string -> t
  val int : t -> int
  val i64 : t -> int64
  val float : t -> float
  val bool : t -> bool
  val str : t -> string
  val tag : t -> string -> unit
  val count : t -> int

  val list : t -> (unit -> 'a) -> 'a list
  (** Reads a count then that many items, in stream order. *)

  val array : t -> (unit -> 'a) -> 'a array

  val option : t -> (unit -> 'a) -> 'a option

  val eof : t -> unit
  (** Requires the whole payload to have been consumed. *)
end
