type t = {
  n : int;
  cells : float array; (* upper triangle incl. diagonal, row-major *)
}

(* Index of (i, j) with i <= j in the flattened upper triangle. *)
let index n i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  (i * ((2 * n) - i - 1) / 2) + j

let create n ~diag ~off =
  if n <= 0 then invalid_arg "Dmatrix.create: n <= 0";
  let cells = Array.make (n * (n + 1) / 2) off in
  let m = { n; cells } in
  for i = 0 to n - 1 do
    cells.(index n i i) <- diag
  done;
  m

let of_fun n ~diag f =
  let m = create n ~diag ~off:0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      m.cells.(index n i j) <- f i j
    done
  done;
  m

let size t = t.n

let check t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Dmatrix: index out of range"

let get t i j =
  check t i j;
  t.cells.(index t.n i j)

let set t i j v =
  check t i j;
  t.cells.(index t.n i j) <- v

let map_off_diagonal t f =
  let m = { n = t.n; cells = Array.copy t.cells } in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      let k = index t.n i j in
      m.cells.(k) <- f i j t.cells.(k)
    done
  done;
  m

let sub t idx =
  let k = Array.length idx in
  Array.iter (fun i -> check t i i) idx;
  let seen = Hashtbl.create k in
  Array.iter
    (fun i ->
      if Hashtbl.mem seen i then invalid_arg "Dmatrix.sub: duplicate index";
      Hashtbl.add seen i ())
    idx;
  let m = create k ~diag:0.0 ~off:0.0 in
  for a = 0 to k - 1 do
    for b = a to k - 1 do
      m.cells.(index k a b) <- t.cells.(index t.n idx.(a) idx.(b))
    done
  done;
  m

let off_diagonal_values t =
  let out = Array.make (t.n * (t.n - 1) / 2) 0.0 in
  let pos = ref 0 in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      out.(!pos) <- t.cells.(index t.n i j);
      incr pos
    done
  done;
  out

let iter_pairs t f =
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      f i j t.cells.(index t.n i j)
    done
  done

let diameter_of t nodes =
  let rec loop acc = function
    | [] -> acc
    | x :: rest ->
        let acc = List.fold_left (fun a y -> Float.max a (get t x y)) acc rest in
        loop acc rest
  in
  loop 0.0 nodes

let max_symmetric_error a b =
  if a.n <> b.n then invalid_arg "Dmatrix.max_symmetric_error: size mismatch";
  let err = ref 0.0 in
  Array.iteri
    (fun k v ->
      let w = b.cells.(k) in
      (* identical entries (including equal infinities) differ by zero *)
      let diff = if v = w then 0.0 else Float.abs (v -. w) in
      err := Float.max !err diff)
    a.cells;
  !err

let copy t = { n = t.n; cells = Array.copy t.cells }

let metric_closure t =
  let r = copy t in
  for k = 0 to r.n - 1 do
    for i = 0 to r.n - 1 do
      for j = i + 1 to r.n - 1 do
        let via = get r i k +. get r k j in
        if via < get r i j then set r i j via
      done
    done
  done;
  r

let pp ppf t =
  if t.n > 12 then Format.fprintf ppf "<%dx%d matrix>" t.n t.n
  else
    for i = 0 to t.n - 1 do
      for j = 0 to t.n - 1 do
        Format.fprintf ppf "%8.2f " (get t i j)
      done;
      Format.fprintf ppf "@."
    done
