(** Bounded-size summaries of point sets with certified cluster-size bounds.

    A summary keeps at most [k] {e representatives}: real points of the
    space, each carrying the [weight] (number of summarised points it
    stands for) and a [radius] bounding the distance from the
    representative to every point it covers.  Summaries compose: merging
    the summaries of disjoint point sets yields a summary of the union,
    so per-subtree summaries can be folded bottom-up along an aggregation
    overlay without ever touching the O(n^2) pair structure.

    Queries return a two-sided interval [(lo, hi)] bracketing the exact
    cluster-search answer max_pq |S*_pq| over pairs with d(p,q) <= l:

    - [hi]: for representatives [a], [b] with
      [d(a,b) - eps_a - eps_b <= l], let
      [D = min l (d(a,b) + eps_a + eps_b)].  Any witness pair [(p,q)]
      covered by [(a,b)] has [d(p,q) <= D], and every member [x] of
      [S*_pq] satisfies [d(rep x, a) <= D + eps_a + eps_(rep x)] (two
      triangle steps), so summing the weights of representatives passing
      that test for both [a] and [b] over-counts [|S*_pq|].
    - [lo]: representatives are real points, so for a pair [(u,v)] of
      representatives with [d(u,v) <= l] the count of points certainly
      inside [S*_uv] — the full weight of any representative [r] whose
      ball fits ([d(r,u) + eps_r <= d(u,v)] and likewise for [v]), else
      [1] if the representative itself qualifies — under-counts the
      maximum.

    When no summary was ever reduced (e.g. [k >= n]) every point is its
    own representative with radius [0.] and the interval collapses to the
    exact answer.

    Both directions use the triangle inequality, so the bracket is
    certified on metric spaces (tree metrics, shortest-path closures).
    On near-metric data (raw bandwidth matrices) it is a heuristic;
    [find_certain] remains sound everywhere because it re-checks actual
    distances.

    Everything here is deterministic: ties break on point ids, merge
    canonicalises its input order, and no hash-table iteration order
    leaks into results. *)

type rep = {
  host : int;      (** the representative point (a real point id) *)
  weight : int;    (** points summarised by this representative, >= 1 *)
  radius : float;  (** max distance from [host] to a summarised point *)
}

type t
(** A summary.  Representatives are kept sorted by [host]. *)

type interval = { lo : int; hi : int }

val of_points : Space.t -> k:int -> int list -> t
(** [of_points space ~k hosts] summarises the (distinct) points [hosts]
    down to at most [k] representatives using deterministic
    farthest-point selection.  Raises [Invalid_argument] on [k < 1],
    duplicate or out-of-range hosts. *)

val merge : Space.t -> k:int -> t list -> t
(** [merge space ~k ts] summarises the union of the point sets described
    by [ts] (which must be pairwise disjoint — duplicate representative
    hosts raise [Invalid_argument]).  The result depends only on the
    multiset of input representatives, never on the order of [ts]:
    inputs are canonicalised by host id before reduction. *)

val k : t -> int
val size : t -> int
(** Number of representatives, [<= k]. *)

val weight : t -> int
(** Total summarised points. *)

val reps : t -> rep array
(** A copy of the representatives, sorted by host. *)

val hosts : t -> int list
(** Representative hosts, ascending. *)

val equal : t -> t -> bool

val max_size : Space.t -> t -> l:float -> interval
(** Bracket on the maximum cluster size over summarised point pairs
    within distance [l] (max over pairs [(p,q)] of the size of [S*_pq]), with
    the exact index's convention that a non-empty set answers at least
    [1].  [{lo = 0; hi = 0}] for the empty summary. *)

val exists : Space.t -> t -> k:int -> l:float -> [ `Yes | `No | `Maybe ]
(** Tri-state existence of a cluster of [k] points with diameter [<= l]:
    [`Yes] when [lo >= k], [`No] when [hi < k], [`Maybe] otherwise.
    Raises [Invalid_argument] for [k < 2]. *)

val find_certain : Space.t -> t -> k:int -> l:float -> int list option
(** A cluster of [k] representative points certified feasible by direct
    distance checks (sound on any space, metric or not); [None] is
    inconclusive, not proof of absence.  Deterministic scan order:
    representative pairs ascending, anchors first in the result.
    Raises [Invalid_argument] for [k < 2]. *)
