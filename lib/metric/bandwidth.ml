let default_c = 10_000.0

let to_distance ?(c = default_c) bw =
  if bw <= 0.0 then invalid_arg "Bandwidth.to_distance: non-positive bandwidth";
  if Float.equal bw Float.infinity then 0.0 else c /. bw

let of_distance ?(c = default_c) d =
  if d < 0.0 then invalid_arg "Bandwidth.of_distance: negative distance";
  if Float.equal d 0.0 then Float.infinity else c /. d

let linear_to_distance ~c bw = Float.max 0.0 (c -. bw)
let linear_of_distance ~c d = c -. d
let symmetrize fwd rev = (fwd +. rev) /. 2.0
