(** Transforms between bandwidth values and metric distances (Sec. II-B).

    Bandwidth is "higher is better" while a metric distance is "smaller is
    closer", so the paper represents bandwidth as a metric through the
    {e rational transform} [d(u,v) = C / BW(u,v)] with a positive constant
    [C].  The linear transform [d = C - BW], which prior work showed embeds
    poorly, is also provided for completeness. *)

val default_c : float
(** The constant [C] used throughout this library when none is supplied
    ([10_000.]).  Any positive constant yields the same clustering results:
    it only rescales distances. *)

val to_distance : ?c:float -> float -> float
(** [to_distance ~c bw] is [c /. bw].  [bw] must be positive; an infinite
    bandwidth (a node to itself) maps to distance [0.]. *)

val of_distance : ?c:float -> float -> float
(** [of_distance ~c d] is [c /. d], the inverse transform used for
    prediction: [BW_T(u,v) = C / d_T(u,v)].  A distance of [0.] maps to
    [infinity]. *)

val linear_to_distance : c:float -> float -> float
(** [linear_to_distance ~c bw] is [max 0. (c -. bw)]. *)

val linear_of_distance : c:float -> float -> float

val symmetrize : float -> float -> float
(** [symmetrize fwd rev] averages forward and reverse measurements, the
    paper's choice for satisfying metric symmetry (Sec. II-B). *)
