type report = {
  non_negative : bool;
  zero_diagonal : bool;
  symmetric : bool;
  triangle_violations : float;
  triples_checked : int;
}

let triple_count n = n * (n - 1) * (n - 2)

let verify ?(tol = 1e-9) ?(max_triples = 200_000) ~rng space =
  let n = space.Space.n in
  let d = space.Space.dist in
  let non_negative = ref true in
  let zero_diagonal = ref true in
  let symmetric = ref true in
  for i = 0 to n - 1 do
    if Float.abs (d i i) > 0.0 then zero_diagonal := false;
    for j = i + 1 to n - 1 do
      let dij = d i j and dji = d j i in
      if dij < 0.0 then non_negative := false;
      if Float.abs (dij -. dji) > tol *. Float.max 1.0 (Float.abs dij) then symmetric := false
    done
  done;
  let violations = ref 0 and checked = ref 0 in
  let check_triple u v w =
    if u <> v && v <> w && u <> w then begin
      incr checked;
      let lhs = d u w and rhs = d u v +. d v w in
      if lhs > rhs +. (tol *. Float.max 1.0 rhs) then incr violations
    end
  in
  if n >= 3 && triple_count n <= max_triples then
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        for w = 0 to n - 1 do
          check_triple u v w
        done
      done
    done
  else if n >= 3 then
    for _ = 1 to max_triples do
      let t = Bwc_stats.Rng.sample_without_replacement rng 3 n in
      check_triple t.(0) t.(1) t.(2)
    done;
  {
    non_negative = !non_negative;
    zero_diagonal = !zero_diagonal;
    symmetric = !symmetric;
    triangle_violations =
      (if !checked = 0 then 0.0 else float_of_int !violations /. float_of_int !checked);
    triples_checked = !checked;
  }

let is_metric r =
  r.non_negative && r.zero_diagonal && r.symmetric && Float.equal r.triangle_violations 0.0

let pp ppf r =
  Format.fprintf ppf
    "non_negative=%b zero_diagonal=%b symmetric=%b triangle_violations=%.4f (over %d triples)"
    r.non_negative r.zero_diagonal r.symmetric r.triangle_violations r.triples_checked
