let sums space w x y z =
  let d = space.Space.dist in
  let s_a = d w x +. d y z in
  let s_b = d w y +. d x z in
  let s_c = d w z +. d x y in
  let lo = Float.min s_a (Float.min s_b s_c) in
  let hi = Float.max s_a (Float.max s_b s_c) in
  let mid = s_a +. s_b +. s_c -. lo -. hi in
  (lo, mid, hi)

let epsilon space w x y z =
  let s1, s2, s3 = sums space w x y z in
  let gap = s3 -. s2 in
  if gap <= 0.0 then 0.0
  else if s1 <= 0.0 then Float.infinity
  else gap /. (2.0 *. s1)

let satisfies_4pc ?(tol = 1e-9) space w x y z =
  let _, s2, s3 = sums space w x y z in
  s3 -. s2 <= tol *. Float.max 1.0 s3

let iter_quadruples n f =
  for w = 0 to n - 4 do
    for x = w + 1 to n - 3 do
      for y = x + 1 to n - 2 do
        for z = y + 1 to n - 1 do
          f w x y z
        done
      done
    done
  done

let quadruple_count n =
  if n < 4 then 0 else n * (n - 1) * (n - 2) * (n - 3) / 24

let epsilon_avg_exact space =
  let n = space.Space.n in
  if n < 4 then 0.0
  else begin
    let acc = ref 0.0 and cnt = ref 0 in
    iter_quadruples n (fun w x y z ->
        let e = epsilon space w x y z in
        if Float.is_finite e then begin
          acc := !acc +. e;
          incr cnt
        end);
    if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt
  end

let epsilon_avg ?(samples = 100_000) ~rng space =
  let n = space.Space.n in
  if n < 4 then 0.0
  else if quadruple_count n <= samples then epsilon_avg_exact space
  else begin
    let acc = ref 0.0 and cnt = ref 0 in
    let drawn = ref 0 in
    while !drawn < samples do
      let q = Bwc_stats.Rng.sample_without_replacement rng 4 n in
      let e = epsilon space q.(0) q.(1) q.(2) q.(3) in
      if Float.is_finite e then begin
        acc := !acc +. e;
        incr cnt
      end;
      incr drawn
    done;
    if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt
  end

let epsilon_star e = 1.0 -. (1.0 /. (1.0 +. e))

let is_tree_metric ?tol space =
  let n = space.Space.n in
  let ok = ref true in
  iter_quadruples n (fun w x y z ->
      if not (satisfies_4pc ?tol space w x y z) then ok := false);
  !ok
