(** Dense symmetric matrices of pairwise values (distances or bandwidths).

    Storage is a flat upper-triangular array, so an [n]-node matrix costs
    [n*(n+1)/2] floats and [get m i j = get m j i] holds by construction.
    Diagonal entries are stored explicitly (distance matrices keep them at
    [0.]; bandwidth matrices conventionally hold [infinity], a node's
    bandwidth to itself). *)

type t

val create : int -> diag:float -> off:float -> t
(** [create n ~diag ~off] is the [n]x[n] matrix with [diag] on the diagonal
    and [off] elsewhere. *)

val of_fun : int -> diag:float -> (int -> int -> float) -> t
(** [of_fun n ~diag f] fills entry [(i, j)], [i < j], with [f i j]. *)

val size : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
(** [set m i j v] also sets [(j, i)].  Setting a diagonal entry is
    allowed. *)

val map_off_diagonal : t -> (int -> int -> float -> float) -> t
(** Fresh matrix with every off-diagonal entry transformed; the diagonal is
    copied unchanged. *)

val sub : t -> int array -> t
(** [sub m idx] is the principal submatrix on rows/columns [idx] (in that
    order).  Indices must be distinct and in range. *)

val off_diagonal_values : t -> float array
(** All entries above the diagonal, row-major: [n*(n-1)/2] values. *)

val iter_pairs : t -> (int -> int -> float -> unit) -> unit
(** Iterates over all [i < j] with the stored value. *)

val diameter_of : t -> int list -> float
(** Maximum pairwise entry over a set of indices; [0.] for sets smaller than
    two. *)

val max_symmetric_error : t -> t -> float
(** [max_symmetric_error a b] is the largest absolute difference over all
    entries; requires equal sizes. *)

val copy : t -> t

val metric_closure : t -> t
(** Floyd–Warshall shortest-path closure.  For a symmetric non-negative
    matrix with a zero diagonal the result satisfies the triangle
    inequality, turning a near-metric (e.g. a noised tree metric) into a
    genuine metric while preserving entries that were already shortest
    paths.  Deterministic; O(n^3). *)

val pp : Format.formatter -> t -> unit
(** Prints small matrices in full; larger ones as a size summary. *)
