type t = {
  n : int;
  dist : int -> int -> float;
}

let make ~n ~dist =
  if n <= 0 then invalid_arg "Space.make: n <= 0";
  { n; dist }

let of_dmatrix m = { n = Dmatrix.size m; dist = Dmatrix.get m }

let to_dmatrix t = Dmatrix.of_fun t.n ~diag:0.0 (fun i j -> t.dist i j)

let cached t = of_dmatrix (to_dmatrix t)

let restrict t idx =
  let k = Array.length idx in
  Array.iter
    (fun i -> if i < 0 || i >= t.n then invalid_arg "Space.restrict: index out of range")
    idx;
  { n = k; dist = (fun a b -> t.dist idx.(a) idx.(b)) }

let diameter t nodes =
  let rec loop acc = function
    | [] -> acc
    | x :: rest ->
        let acc = List.fold_left (fun a y -> Float.max a (t.dist x y)) acc rest in
        loop acc rest
  in
  loop 0.0 nodes

let of_bandwidth ?c bw =
  let n = Dmatrix.size bw in
  make ~n ~dist:(fun i j ->
      if i = j then 0.0 else Bandwidth.to_distance ?c (Dmatrix.get bw i j))
