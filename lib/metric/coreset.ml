type rep = {
  host : int;
  weight : int;
  radius : float;
}

type t = {
  k : int;
  reps : rep array; (* sorted by host, hosts distinct *)
}

type interval = { lo : int; hi : int }

let k t = t.k
let size t = Array.length t.reps
let weight t = Array.fold_left (fun acc r -> acc + r.weight) 0 t.reps
let reps t = Array.copy t.reps
let hosts t = Array.to_list (Array.map (fun r -> r.host) t.reps)

let rep_equal a b =
  a.host = b.host && a.weight = b.weight && Float.equal a.radius b.radius

let equal a b =
  a.k = b.k
  && Array.length a.reps = Array.length b.reps
  && (let ok = ref true in
      Array.iteri (fun i r -> if not (rep_equal r b.reps.(i)) then ok := false) a.reps;
      !ok)

let by_host a b = compare (a.host : int) b.host

let check_distinct reps =
  Array.iteri
    (fun i r ->
      if i > 0 && reps.(i - 1).host = r.host then
        invalid_arg "Coreset: duplicate host")
    reps

(* Deterministic farthest-point (Gonzalez) reduction of a set of weighted
   representatives down to [k].  [pts] is sorted by host.  The first centre
   is the heaviest representative (ties to the smallest host); each further
   centre maximises distance-to-nearest-centre plus its own radius, so a
   far-flung summarised ball cannot hide behind a nearby representative.
   Dropped representatives are absorbed by their nearest centre, whose
   radius grows to [d(p, centre) + radius p] — still a valid covering
   radius for every point [p] stood for. *)
let reduce (space : Space.t) ~k pts =
  let n = Array.length pts in
  if n <= k then pts
  else begin
    let is_center = Array.make n false in
    let centers = Array.make k 0 in
    let first = ref 0 in
    for i = 1 to n - 1 do
      if pts.(i).weight > pts.(!first).weight then first := i
    done;
    centers.(0) <- !first;
    is_center.(!first) <- true;
    (* nearest-centre distance (centre index, distance); ties on distance
       resolve to the earlier (smaller-host) centre because updates are
       strict improvements only. *)
    let d2c = Array.make n infinity in
    let assign = Array.make n !first in
    let relax c =
      let ch = pts.(c).host in
      for i = 0 to n - 1 do
        if not is_center.(i) then begin
          let d = space.Space.dist pts.(i).host ch in
          let cmp = Float.compare d d2c.(i) in
          if cmp < 0 || (cmp = 0 && pts.(c).host < pts.(assign.(i)).host) then begin
            d2c.(i) <- d;
            assign.(i) <- c
          end
        end
      done
    in
    relax !first;
    for slot = 1 to k - 1 do
      let next = ref (-1) in
      let best = ref neg_infinity in
      for i = 0 to n - 1 do
        if not is_center.(i) then begin
          let prio = d2c.(i) +. pts.(i).radius in
          if Float.compare prio !best > 0 then begin
            best := prio;
            next := i
          end
        end
      done;
      centers.(slot) <- !next;
      is_center.(!next) <- true;
      relax !next
    done;
    let out_weight = Array.make k 0 in
    let out_radius = Array.make k 0. in
    Array.iteri (fun slot c ->
        out_weight.(slot) <- pts.(c).weight;
        out_radius.(slot) <- pts.(c).radius)
      centers;
    let slot_of = Array.make n (-1) in
    Array.iteri (fun slot c -> slot_of.(c) <- slot) centers;
    for i = 0 to n - 1 do
      if not is_center.(i) then begin
        let slot = slot_of.(assign.(i)) in
        out_weight.(slot) <- out_weight.(slot) + pts.(i).weight;
        let r = d2c.(i) +. pts.(i).radius in
        if Float.compare r out_radius.(slot) > 0 then out_radius.(slot) <- r
      end
    done;
    let out =
      Array.init k (fun slot ->
          { host = pts.(centers.(slot)).host;
            weight = out_weight.(slot);
            radius = out_radius.(slot) })
    in
    Array.sort by_host out;
    out
  end

let of_points (space : Space.t) ~k points =
  if k < 1 then invalid_arg "Coreset.of_points: k < 1";
  let pts =
    Array.of_list
      (List.map
         (fun h ->
           if h < 0 || h >= space.Space.n then
             invalid_arg "Coreset.of_points: host out of range";
           { host = h; weight = 1; radius = 0. })
         points)
  in
  Array.sort by_host pts;
  check_distinct pts;
  { k; reps = reduce space ~k pts }

let merge (space : Space.t) ~k ts =
  if k < 1 then invalid_arg "Coreset.merge: k < 1";
  let pts = Array.concat (List.map (fun t -> t.reps) ts) in
  Array.sort by_host pts;
  check_distinct pts;
  { k; reps = reduce space ~k pts }

(* Upper bound: see the .mli.  The [i = j] diagonal covers witness pairs
   whose endpoints collapse onto the same representative. *)
let pair_hi (space : Space.t) t ~l =
  let reps = t.reps in
  let m = Array.length reps in
  let dist = space.Space.dist in
  let best = ref 0 in
  for i = 0 to m - 1 do
    for j = i to m - 1 do
      let a = reps.(i) and b = reps.(j) in
      let dab = dist a.host b.host in
      if dab -. a.radius -. b.radius <= l then begin
        let dcap = Float.min l (dab +. a.radius +. b.radius) in
        let sum = ref 0 in
        for r = 0 to m - 1 do
          let rp = reps.(r) in
          if dist rp.host a.host <= dcap +. a.radius +. rp.radius
             && dist rp.host b.host <= dcap +. b.radius +. rp.radius
          then sum := !sum + rp.weight
        done;
        if !sum > !best then best := !sum
      end
    done
  done;
  !best

(* Lower bound: representatives are real points, so any representative
   pair within [l] anchors a genuine cluster; fully-contained balls
   contribute their whole weight, representatives inside only themselves. *)
let pair_lo (space : Space.t) t ~l =
  let reps = t.reps in
  let m = Array.length reps in
  let dist = space.Space.dist in
  let best = ref 0 in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let u = reps.(i) and v = reps.(j) in
      let duv = dist u.host v.host in
      if duv <= l then begin
        let cnt = ref 0 in
        for r = 0 to m - 1 do
          let rp = reps.(r) in
          let dru = dist rp.host u.host and drv = dist rp.host v.host in
          if dru +. rp.radius <= duv && drv +. rp.radius <= duv then
            cnt := !cnt + rp.weight
          else if dru <= duv && drv <= duv then incr cnt
        done;
        if !cnt > !best then best := !cnt
      end
    done
  done;
  !best

let max_size space t ~l =
  if Array.length t.reps = 0 then { lo = 0; hi = 0 }
  else
    { lo = max 1 (pair_lo space t ~l); hi = max 1 (pair_hi space t ~l) }

let exists space t ~k ~l =
  if k < 2 then invalid_arg "Coreset.exists: k < 2";
  if Array.length t.reps = 0 then `No
  else begin
    let iv = max_size space t ~l in
    if iv.lo >= k then `Yes else if iv.hi < k then `No else `Maybe
  end

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let find_certain (space : Space.t) t ~k ~l =
  if k < 2 then invalid_arg "Coreset.find_certain: k < 2";
  let reps = t.reps in
  let m = Array.length reps in
  let dist = space.Space.dist in
  let result = ref None in
  (try
     for i = 0 to m - 1 do
       for j = i + 1 to m - 1 do
         let u = reps.(i).host and v = reps.(j).host in
         let duv = dist u v in
         if duv <= l then begin
           let others = ref [] in
           for r = m - 1 downto 0 do
             let h = reps.(r).host in
             if h <> u && h <> v && dist h u <= duv && dist h v <= duv then
               others := h :: !others
           done;
           if List.length !others >= k - 2 then begin
             result := Some (u :: v :: take (k - 2) !others);
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  !result
