(** Metric-property verification (Sec. II-B's four properties).

    Real bandwidth data only approximately satisfies the triangle
    inequality, so violations are reported as a fraction rather than a
    boolean. *)

type report = {
  non_negative : bool;          (** every distance [>= 0.] *)
  zero_diagonal : bool;         (** [d(i,i) = 0.] for all [i] *)
  symmetric : bool;             (** always true for {!Dmatrix}-backed spaces *)
  triangle_violations : float;  (** fraction of ordered triples violating
                                    [d(u,w) <= d(u,v) + d(v,w)] beyond [tol] *)
  triples_checked : int;
}

val verify : ?tol:float -> ?max_triples:int -> rng:Bwc_stats.Rng.t -> Space.t -> report
(** [verify ~tol ~max_triples ~rng s] checks the metric properties,
    sampling triples uniformly when the space has more than [max_triples]
    (default [200_000]) of them.  [tol] (default [1e-9]) is a relative
    slack on the triangle inequality. *)

val is_metric : report -> bool
(** True when all properties hold and no triangle violations were seen. *)

val pp : Format.formatter -> report -> unit
