(** A finite metric space: [n] points and a pairwise distance function.

    Every clustering algorithm in this repository is written against this
    abstraction, so the same code runs on real measurements, tree-predicted
    distances, Vivaldi coordinates, or synthetic metrics. *)

type t = private {
  n : int;
  dist : int -> int -> float;
}

val make : n:int -> dist:(int -> int -> float) -> t
(** [make ~n ~dist] wraps a distance function.  [dist] must be symmetric
    with a zero diagonal; this is the caller's responsibility (checked by
    {!Check.verify} in tests). *)

val of_dmatrix : Dmatrix.t -> t

val to_dmatrix : t -> Dmatrix.t
(** Materialises the space into a dense matrix (useful to cache an
    expensive [dist]). *)

val cached : t -> t
(** [cached s] evaluates every pair once and serves lookups from a dense
    matrix. *)

val restrict : t -> int array -> t
(** [restrict s idx] is the subspace on points [idx]; point [i] of the
    result is point [idx.(i)] of [s]. *)

val diameter : t -> int list -> float
(** Maximum pairwise distance over a point set ([0.] for fewer than two
    points). *)

val of_bandwidth : ?c:float -> Dmatrix.t -> t
(** [of_bandwidth ~c bw] applies the rational transform entry-wise:
    [dist i j = c / bw(i,j)] for [i <> j] and [0.] on the diagonal. *)
