(** The four-point condition and the treeness parameter epsilon
    (Sec. II-A, II-C and IV-C).

    For four points [w, x, y, z] consider the three pairings of the six
    pairwise distances into two-sums:
    [d(w,x)+d(y,z)], [d(w,y)+d(x,z)], [d(w,z)+d(x,y)].
    The metric is a tree metric iff for every quadruple the two largest
    sums are equal (Buneman, 1974).  Following Abraham et al. (PODC 2007),
    the quadruple's epsilon measures the 4PC violation:
    [(s3 - s2) / (2 * s1)] where [s1 <= s2 <= s3] are the sums — zero for a
    perfect tree metric, and the average over quadruples ([epsilon_avg]) is
    the paper's per-dataset treeness statistic. *)

val sums : Space.t -> int -> int -> int -> int -> float * float * float
(** The three pairing sums sorted ascending. *)

val epsilon : Space.t -> int -> int -> int -> int -> float
(** Epsilon of one quadruple, as defined above.  Returns [0.] when the
    smallest sum is zero and the metric is degenerate but consistent
    ([s3 = s2]); returns [infinity] if [s1 = 0.] yet [s3 > s2]. *)

val satisfies_4pc : ?tol:float -> Space.t -> int -> int -> int -> int -> bool
(** Whether the quadruple's two largest sums agree within relative
    tolerance [tol] (default [1e-9]). *)

val epsilon_avg : ?samples:int -> rng:Bwc_stats.Rng.t -> Space.t -> float
(** Average epsilon over quadruples.  Spaces with at most [~samples]
    (default [100_000]) quadruples are measured exhaustively; larger ones
    by uniform sampling of quadruples. *)

val epsilon_avg_exact : Space.t -> float
(** Exhaustive average over all [C(n,4)] quadruples; intended for small
    [n]. *)

val epsilon_star : float -> float
(** [epsilon_star e] maps [epsilon_avg] in [0, inf) to [0, 1):
    [1 - 1/(1+e)] (Sec. IV-C). *)

val is_tree_metric : ?tol:float -> Space.t -> bool
(** Exhaustive 4PC check, intended for small test fixtures. *)
