(* Daemon lifecycle: warm boot over rotated snapshot generations,
   periodic rotation, drain-then-snapshot shutdown.

   All file IO lives in Bwc_persist (Codec's atomic temp-and-rename
   write, Snapshot.rotate/load_any); this module only orchestrates, so
   lib/daemon stays free of blocking IO primitives (enforced by the
   no-blocking-io-in-daemon-core lint rule). *)

module Dynamic = Bwc_core.Dynamic
module Snapshot = Bwc_persist.Snapshot
module Codec = Bwc_persist.Codec
module Registry = Bwc_obs.Registry

type boot = {
  system : Dynamic.t;
  warm : bool;
  generation : int option;  (* which rotated image restored, when warm *)
  rejected : (int * Codec.error) list;  (* generations that failed verification *)
}

let bump metrics name =
  match metrics with
  | Some m -> Registry.Counter.incr (Registry.counter m name)
  | None -> ()

let boot ?metrics ?trace ?keep ~path ~cold () =
  match Snapshot.load_any ?metrics ?trace ?keep path with
  | Ok (Snapshot.Restored_dynamic dyn, g) ->
      { system = dyn; warm = true; generation = Some g; rejected = [] }
  | Ok (Snapshot.Restored_system _, g) ->
      (* wrong snapshot kind: a static System image cannot serve churn;
         treat it like any other rejected generation *)
      bump metrics "persist.cold_starts";
      {
        system = cold ();
        warm = false;
        generation = None;
        rejected = [ (g, Codec.Corrupt "snapshot holds a static system, not a dynamic one") ];
      }
  | Error rejected ->
      bump metrics "persist.cold_starts";
      { system = cold (); warm = false; generation = None; rejected }

let snapshot ?metrics ?trace ?keep ~path dyn =
  let bytes = Snapshot.encode ?metrics ?trace (`Dynamic dyn) in
  match Snapshot.rotate ?metrics ?keep ~path bytes with
  | Ok () -> Ok (String.length bytes)
  | Error e -> Error e

let drain_and_snapshot ?metrics ?trace ?keep ?(max_ticks = 10_000) ~path ~now
    ~on_output reactor =
  Reactor.drain reactor ~now;
  let tick = ref now in
  while (not (Reactor.drained reactor)) && !tick - now < max_ticks do
    incr tick;
    List.iter on_output (Reactor.tick reactor ~now:!tick)
  done;
  match snapshot ?metrics ?trace ?keep ~path (Reactor.system reactor) with
  | Ok bytes -> Ok (!tick, bytes)
  | Error e -> Error e
