(* Bounded, rate-limited, class-prioritized admission.

   Every request entering the reactor passes through one of three lanes
   — churn events, cluster queries, measurement gossip — each a bounded
   FIFO behind an integer token bucket.  Admission decisions are typed:
   a refused request is shed with a reason the client sees, never
   silently dropped.  Priority is enforced twice: at the door
   (measurement gossip is shed outright while the churn lane is under
   pressure — churn and queries matter more than gossip freshness) and
   at dequeue time (the reactor drains lanes in class-priority order,
   see Reactor). *)

module Registry = Bwc_obs.Registry

type cls = Churn | Query | Meas

let cls_name = function Churn -> "churn" | Query -> "query" | Meas -> "meas"
let all_classes = [ Churn; Query; Meas ]

type shed_reason = Queue_full | Rate_limited | Pressure | Draining

let shed_reason_name = function
  | Queue_full -> "queue_full"
  | Rate_limited -> "rate_limit"
  | Pressure -> "pressure"
  | Draining -> "draining"

type limits = { cap : int; rate : int; burst : int }

type config = { churn : limits; query : limits; meas : limits }

let default_config =
  {
    churn = { cap = 64; rate = 4; burst = 8 };
    query = { cap = 128; rate = 16; burst = 32 };
    meas = { cap = 256; rate = 32; burst = 64 };
  }

let limits_of config = function
  | Churn -> config.churn
  | Query -> config.query
  | Meas -> config.meas

type 'a lane = {
  limits : limits;
  q : 'a Queue.t;
  mutable tokens : int;
  depth_gauge : Registry.Gauge.t option;
}

type 'a t = {
  config : config;
  churn_lane : 'a lane;
  query_lane : 'a lane;
  meas_lane : 'a lane;
  metrics : Registry.t option;
}

let make_lane metrics config cls =
  let limits = limits_of config cls in
  if limits.cap < 1 then invalid_arg "Admission.create: cap < 1";
  if limits.rate < 0 || limits.burst < 1 then
    invalid_arg "Admission.create: bad token bucket";
  {
    limits;
    q = Queue.create ();
    tokens = limits.burst;
    depth_gauge =
      Option.map
        (fun m ->
          Registry.gauge m ~labels:[ ("class", cls_name cls) ] "daemon.queue_depth")
        metrics;
  }

let create ?metrics config =
  {
    config;
    churn_lane = make_lane metrics config Churn;
    query_lane = make_lane metrics config Query;
    meas_lane = make_lane metrics config Meas;
    metrics;
  }

let lane t = function
  | Churn -> t.churn_lane
  | Query -> t.query_lane
  | Meas -> t.meas_lane

let depth t cls = Queue.length (lane t cls).q
let backlog t = depth t Churn + depth t Query + depth t Meas

let bump t name labels =
  match t.metrics with
  | Some m -> Registry.Counter.incr (Registry.counter m ~labels name)
  | None -> ()

let set_depth l =
  match l.depth_gauge with
  | Some g -> Registry.Gauge.set g (Queue.length l.q)
  | None -> ()

(* churn backlog above half capacity is the storm signal: gossip yields
   to the classes that keep answers correct *)
let under_pressure t = depth t Churn > t.config.churn.cap / 2

let offer t cls item =
  let l = lane t cls in
  let verdict =
    if cls = Meas && under_pressure t then Error Pressure
    else if Queue.length l.q >= l.limits.cap then Error Queue_full
    else if l.tokens <= 0 then Error Rate_limited
    else Ok ()
  in
  (match verdict with
  | Ok () ->
      l.tokens <- l.tokens - 1;
      Queue.add item l.q;
      set_depth l;
      bump t "daemon.admitted" [ ("class", cls_name cls) ]
  | Error reason ->
      bump t "daemon.shed"
        [ ("class", cls_name cls); ("reason", shed_reason_name reason) ]);
  verdict

let take t cls =
  let l = lane t cls in
  match Queue.take_opt l.q with
  | None -> None
  | Some item ->
      set_depth l;
      Some item

let refill t =
  List.iter
    (fun cls ->
      let l = lane t cls in
      l.tokens <- min l.limits.burst (l.tokens + l.limits.rate))
    all_classes
