(** The deterministic in-memory transport.

    A script is a list of [(tick, conn, line)] entries.  {!run} feeds
    them through a reactor tick by tick, then drains it, so every
    admitted request resolves to exactly one response; the resulting
    event list (and its canonical {!transcript} rendering) is a pure
    function of the script and the reactor's seeds — the replay
    property in [test/prop.ml] and E17's same-seed rerun check compare
    transcripts byte for byte. *)

type entry = { at : int; conn : int; line : string }

val line : at:int -> conn:int -> string -> entry

type event = { tick : int; conn : int; response : Wire.response }

val run : ?drain_grace:int -> Reactor.t -> entry list -> event list
(** Deliver entries at their ticks (stable script order within a tick,
    each tick's deliveries before its {!Reactor.tick}), then
    {!Reactor.drain} and keep ticking until {!Reactor.drained} or
    [drain_grace] (default 1000) extra ticks elapse.  Responses are
    returned in emission order. *)

val transcript : event list -> string
(** Canonical rendering, one ["<tick> <conn> <response>"] line per
    event — the byte-comparable replay artifact. *)
