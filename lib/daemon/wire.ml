(* The bwclusterd line protocol.

   One request per line, one response line per request — the 1:1
   discipline is what lets a client know when it has heard everything
   it is owed (PING/HEALTH/STATS/SNAPSHOT/SHUTDOWN answer immediately;
   admitted work answers when the reactor reaches it; refused work
   answers SHED immediately).  Fields are space-separated tokens,
   options are [key=value].  Parsing and rendering are pure string
   functions: the same module serves the deterministic in-memory
   transport and the Unix-socket transport in bin/bwclusterd.ml. *)

type request =
  | Ping
  | Query of { id : string; k : int; b : float; deadline : int option }
  | Join of { id : string; host : int }
  | Leave of { id : string; host : int }
  | Measure of { id : string; src : int; dst : int; mbps : float }
  | Health
  | Stats
  | Snapshot_req
  | Shutdown

type served = Live | Index

let served_name = function Live -> "live" | Index -> "index"

type response =
  | Pong
  | Answer of {
      id : string;
      cluster : int list option;
      hops : int;
      served : served;
      degraded : bool;
      staleness : int;
      bounds : (int * int) option;
    }
  | Acked of { id : string; cls : string; applied : bool }
  | Shed of { id : string; cls : string; reason : string }
  | Timeout of { id : string; waited : int; deadline : int }
  | Rejected of { id : string; reason : string; attempts : int }
  | Health_report of {
      mode : string;
      members : int;
      staleness : int;
      depth_churn : int;
      depth_query : int;
      depth_meas : int;
    }
  | Stats_json of string
  | Snapshotting
  | Draining
  | Parse_error of { reason : string }

(* ----- parsing ----- *)

let split_words line =
  String.split_on_char ' ' line
  |> List.filter_map (fun w ->
         let w = String.trim w in
         if w = "" then None else Some w)

let opt_assoc words =
  List.filter_map
    (fun w ->
      match String.index_opt w '=' with
      | Some i when i > 0 ->
          Some (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
      | Some _ | None -> None)
    words

let valid_id id = id <> "" && not (String.contains id '=')

let int_field fields key =
  match List.assoc_opt key fields with
  | Some v -> int_of_string_opt v
  | None -> None

let float_field fields key =
  match List.assoc_opt key fields with
  | Some v -> float_of_string_opt v
  | None -> None

let parse line =
  match split_words line with
  | [] -> Error "empty line"
  | [ "PING" ] -> Ok Ping
  | [ "HEALTH" ] -> Ok Health
  | [ "STATS" ] -> Ok Stats
  | [ "SNAPSHOT" ] -> Ok Snapshot_req
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | "QUERY" :: id :: rest when valid_id id -> (
      let fields = opt_assoc rest in
      match (int_field fields "k", float_field fields "b") with
      | Some k, Some b -> Ok (Query { id; k; b; deadline = int_field fields "deadline" })
      | _ -> Error "QUERY needs k=<int> b=<float> [deadline=<ticks>]")
  | "JOIN" :: id :: rest when valid_id id -> (
      match int_field (opt_assoc rest) "host" with
      | Some host -> Ok (Join { id; host })
      | None -> Error "JOIN needs host=<int>")
  | "LEAVE" :: id :: rest when valid_id id -> (
      match int_field (opt_assoc rest) "host" with
      | Some host -> Ok (Leave { id; host })
      | None -> Error "LEAVE needs host=<int>")
  | "MEAS" :: id :: rest when valid_id id -> (
      let fields = opt_assoc rest in
      match
        (int_field fields "src", int_field fields "dst", float_field fields "bw")
      with
      | Some src, Some dst, Some mbps -> Ok (Measure { id; src; dst; mbps })
      | _ -> Error "MEAS needs src=<int> dst=<int> bw=<float>")
  | verb :: _ -> Error (Printf.sprintf "unknown or malformed request %S" verb)

(* ----- rendering ----- *)

let render = function
  | Pong -> "PONG"
  | Answer { id; cluster; hops; served; degraded; staleness; bounds } ->
      let members =
        match cluster with
        | None -> "none"
        | Some hosts -> String.concat "," (List.map string_of_int hosts)
      in
      let tail =
        match bounds with
        | None -> ""
        | Some (lo, hi) -> Printf.sprintf " lo=%d hi=%d" lo hi
      in
      Printf.sprintf "OK %s cluster=%s hops=%d served=%s degraded=%d staleness=%d%s" id
        members hops (served_name served)
        (if degraded then 1 else 0)
        staleness tail
  | Acked { id; cls; applied } ->
      Printf.sprintf "ACK %s class=%s applied=%d" id cls (if applied then 1 else 0)
  | Shed { id; cls; reason } ->
      Printf.sprintf "SHED %s class=%s reason=%s" id cls reason
  | Timeout { id; waited; deadline } ->
      Printf.sprintf "TIMEOUT %s waited=%d deadline=%d" id waited deadline
  | Rejected { id; reason; attempts } ->
      Printf.sprintf "REJECTED %s reason=%s attempts=%d" id reason attempts
  | Health_report { mode; members; staleness; depth_churn; depth_query; depth_meas }
    ->
      Printf.sprintf
        "HEALTH mode=%s members=%d staleness=%d q_churn=%d q_query=%d q_meas=%d" mode
        members staleness depth_churn depth_query depth_meas
  | Stats_json json -> "STATS " ^ json
  | Snapshotting -> "SNAPSHOTTING"
  | Draining -> "DRAINING"
  | Parse_error { reason } -> "ERR " ^ reason
