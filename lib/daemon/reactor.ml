(* The deterministic daemon core.

   A pure state machine over injected time: callers feed it protocol
   lines ([handle_line]) and clock ticks ([tick]); it never reads the
   wall clock, never touches a file descriptor, and draws randomness
   only from an explicitly seeded Rng — so the same script of (tick,
   line) inputs produces a byte-identical response stream and trace
   (test/prop.ml replays exactly this).  bin/bwclusterd.ml maps wall
   time and Unix sockets onto this interface; tests and E17 drive it
   with the in-memory Script transport.

   Robustness machinery, in the order a tick runs it:

   - token-bucket refill, then due retries (failed ingestions coming
     back with jittered exponential backoff);
   - budgeted queue work in class-priority order — churn first (up to
     [churn_share] of the budget, so queries cannot be starved by a
     storm), then queries (deadline-checked at dequeue: an expired
     query answers a typed TIMEOUT, it is never silently dropped),
     then measurement gossip;
   - budgeted stabilization: a topology refresh when membership moved,
     then at most [stabilize_budget] protocol rounds.  While the
     aggregation is stale, queries are served from the last consistent
     Find_cluster.Index — membership-fresh by delta maintenance — with
     an explicit staleness bound instead of blocking on reconvergence;
   - mode transitions (backlog-driven degraded mode) and the watchdog
     (stalled convergence fires a repair: forced refresh + degraded
     mode, consulting Detector.pending for overdue heartbeats);
   - snapshot scheduling ([take_snapshot_request] tells the driver to
     rotate one out through Lifecycle; the reactor itself does no IO). *)

module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Dynamic = Bwc_core.Dynamic
module Protocol = Bwc_core.Protocol
module Detector = Bwc_core.Detector
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace

type config = {
  admission : Admission.config;
  work_budget : int;
  churn_share : int;
  stabilize_budget : int;
  default_deadline : int;
  degrade_backlog : int;
  stall_after : int;
  meas_refresh : int;
  ingest_fail : float;
  retry_base : int;
  retry_cap : int;
  retry_jitter : int;
  max_attempts : int;
  snapshot_every : int option;
  seed : int;
}

let default_config =
  {
    admission =
      {
        Admission.churn = { Admission.cap = 64; rate = 4; burst = 8 };
        query = { Admission.cap = 48; rate = 16; burst = 32 };
        meas = { Admission.cap = 256; rate = 32; burst = 64 };
      };
    work_budget = 8;
    churn_share = 4;
    stabilize_budget = 4;
    default_deadline = 16;
    degrade_backlog = 32;
    stall_after = 12;
    meas_refresh = 32;
    ingest_fail = 0.;
    retry_base = 2;
    retry_cap = 16;
    retry_jitter = 2;
    max_attempts = 4;
    snapshot_every = None;
    seed = 0x5eed;
  }

type mode = Normal | Degraded | Draining

let mode_name = function
  | Normal -> "normal"
  | Degraded -> "degraded"
  | Draining -> "draining"

type ingest_op =
  | Op_join of int
  | Op_leave of int
  | Op_meas of { src : int; dst : int; mbps : float }

type item =
  | It_query of {
      id : string;
      conn : int;
      k : int;
      b : float;
      deadline : int;
      enq : int;
    }
  | It_ingest of {
      id : string;
      conn : int;
      cls : Admission.cls;
      op : ingest_op;
      enq : int;
      attempts : int;
    }

type output = { conn : int; response : Wire.response }

type t = {
  config : config;
  dyn : Dynamic.t;
  adm : item Admission.t;
  rng : Rng.t;
  metrics : Registry.t option;
  trace : Trace.t option;
  mutable mode : mode;
  mutable dirty : bool;
  mutable needs_refresh : bool;
  mutable dirty_since : int;
  mutable last_converged : int;
  mutable meas_accum : int;
  mutable retries : (int * int * item) list; (* (due, seq, ingest item), sorted *)
  mutable retry_seq : int;
  mutable last_snapshot : int;
  mutable snapshot_due : bool;
  mutable churn_this_tick : bool;
}

let bump t name labels =
  match t.metrics with
  | Some m -> Registry.Counter.incr (Registry.counter m ~labels name)
  | None -> ()

let observe t name labels v =
  match t.metrics with
  | Some m -> Registry.Histogram.observe (Registry.histogram m ~labels name) v
  | None -> ()

let set_gauge t name v =
  match t.metrics with
  | Some m -> Registry.Gauge.set (Registry.gauge m name) v
  | None -> ()

let emit t ev = match t.trace with Some tr -> Trace.emit tr ev | None -> ()

let create ?metrics ?trace config dyn =
  if config.work_budget < 1 || config.churn_share < 0 then
    invalid_arg "Reactor.create: bad work budget";
  if config.max_attempts < 1 || config.retry_base < 1 then
    invalid_arg "Reactor.create: bad retry policy";
  (* force the mode's structure now: the first degraded answer must not
     pay the initial build (O(n^3) exact, O(n·k^2) coreset) inside a
     single tick.  In coreset mode the exact index is deliberately left
     unbuilt — never paying O(n^2)-per-event maintenance is the mode's
     whole point *)
  (match Dynamic.index_mode dyn with
  | Dynamic.Exact -> ignore (Dynamic.index dyn : Bwc_core.Find_cluster.Index.t)
  | Dynamic.Coreset _ ->
      ignore (Dynamic.coreset dyn : Bwc_core.Find_cluster.Coreset.t));
  {
    config;
    dyn;
    adm = Admission.create ?metrics config.admission;
    rng = Rng.create config.seed;
    metrics;
    trace;
    mode = Normal;
    dirty = false;
    needs_refresh = false;
    dirty_since = 0;
    last_converged = 0;
    meas_accum = 0;
    retries = [];
    retry_seq = 0;
    last_snapshot = 0;
    snapshot_due = false;
    churn_this_tick = false;
  }

let system t = t.dyn
let mode t = t.mode
let staleness t ~now = if t.dirty then now - t.last_converged else 0

let backlog t =
  Admission.backlog t.adm + List.length t.retries

let drained t = t.mode = Draining && backlog t = 0

(* ----- admission ----- *)

let item_id = function It_query { id; _ } -> id | It_ingest { id; _ } -> id
let item_cls = function It_query _ -> Admission.Query | It_ingest { cls; _ } -> cls

let shed t ~now ~conn item reason =
  let cls = Admission.cls_name (item_cls item) in
  let reason = Admission.shed_reason_name reason in
  emit t (Trace.Daemon_shed { round = now; cls; reason });
  { conn; response = Wire.Shed { id = item_id item; cls; reason } }

(* shed outside Admission.offer (draining refusals) still counts in the
   same metric family, so shed accounting has one source of truth *)
let shed_draining t ~now ~conn item =
  bump t "daemon.shed"
    [
      ("class", Admission.cls_name (item_cls item));
      ("reason", Admission.shed_reason_name Admission.Draining);
    ];
  shed t ~now ~conn item Admission.Draining

let offer t ~now ~conn item =
  if t.mode = Draining then [ shed_draining t ~now ~conn item ]
  else
    match Admission.offer t.adm (item_cls item) item with
    | Ok () ->
        emit t
          (Trace.Daemon_admit
             { round = now; cls = Admission.cls_name (item_cls item); conn });
        []
    | Error reason -> [ shed t ~now ~conn item reason ]

(* ----- work processing ----- *)

let mark_dirty t ~now =
  if not t.dirty then begin
    t.dirty <- true;
    t.dirty_since <- now
  end

let enter_degraded t ~now =
  if t.mode = Normal then begin
    t.mode <- Degraded;
    bump t "daemon.degraded_entries" [];
    emit t
      (Trace.Daemon_degrade { round = now; entered = true; staleness = staleness t ~now })
  end

let exit_degraded t ~now =
  if t.mode = Degraded then begin
    t.mode <- Normal;
    emit t (Trace.Daemon_degrade { round = now; entered = false; staleness = 0 })
  end

let insert_retry t due item =
  let seq = t.retry_seq in
  t.retry_seq <- seq + 1;
  let entry = (due, seq, item) in
  let rec ins = function
    | [] -> [ entry ]
    | (d, s, _) as hd :: tl ->
        if due < d || (due = d && seq < s) then entry :: hd :: tl else hd :: ins tl
  in
  t.retries <- ins t.retries

let finish t ~now ~cls ~enq =
  observe t "daemon.latency_ticks" [ ("class", Admission.cls_name cls) ] (max 0 (now - enq))

let process_ingest t ~now ~out ~id ~conn ~cls ~op ~enq ~attempts =
  let push response = out := { conn; response } :: !out in
  let cls_n = Admission.cls_name cls in
  let fails = t.config.ingest_fail > 0. && Rng.float t.rng 1.0 < t.config.ingest_fail in
  if fails then begin
    let attempts = attempts + 1 in
    if attempts >= t.config.max_attempts then begin
      bump t "daemon.rejected" [ ("class", cls_n) ];
      finish t ~now ~cls ~enq;
      push (Wire.Rejected { id; reason = "ingest_failed"; attempts })
    end
    else begin
      let backoff =
        min t.config.retry_cap (t.config.retry_base * (1 lsl (attempts - 1)))
      in
      let jitter =
        if t.config.retry_jitter > 0 then Rng.int t.rng t.config.retry_jitter else 0
      in
      let due = now + backoff + jitter in
      bump t "daemon.retries" [ ("class", cls_n) ];
      emit t (Trace.Daemon_retry { round = now; cls = cls_n; attempt = attempts; due });
      insert_retry t due (It_ingest { id; conn; cls; op; enq; attempts })
    end
  end
  else begin
    (match op with
    | Op_join h ->
        let applied = Dynamic.apply_deferred t.dyn [ Bwc_sim.Churn.Join h ] > 0 in
        if applied then begin
          t.needs_refresh <- true;
          mark_dirty t ~now
        end;
        t.churn_this_tick <- true;
        push (Wire.Acked { id; cls = cls_n; applied })
    | Op_leave h ->
        let applied = Dynamic.apply_deferred t.dyn [ Bwc_sim.Churn.Leave h ] > 0 in
        if applied then begin
          t.needs_refresh <- true;
          mark_dirty t ~now
        end;
        t.churn_this_tick <- true;
        push (Wire.Acked { id; cls = cls_n; applied })
    | Op_meas _ ->
        (* the synthetic dataset is the measurement oracle, so a feed
           sample does not rewrite ground truth; what it costs the
           daemon is aggregation freshness — every [meas_refresh]
           accepted samples force the protocol to repropagate, which is
           the work a live feed creates *)
        t.meas_accum <- t.meas_accum + 1;
        if t.meas_accum >= t.config.meas_refresh then begin
          t.meas_accum <- 0;
          Protocol.mark_all_dirty (Dynamic.protocol t.dyn);
          mark_dirty t ~now
        end;
        push (Wire.Acked { id; cls = cls_n; applied = true }));
    finish t ~now ~cls ~enq
  end

let process_query t ~now ~out ~id ~conn ~k ~b ~deadline ~enq =
  let push response = out := { conn; response } :: !out in
  let waited = now - enq in
  finish t ~now ~cls:Admission.Query ~enq;
  if waited > deadline then begin
    bump t "daemon.timeouts" [];
    emit t (Trace.Daemon_timeout { round = now; waited; deadline });
    push (Wire.Timeout { id; waited; deadline })
  end
  else if t.dirty || t.mode = Degraded then begin
    (* stale aggregation: answer from the last consistent index — kept
       membership-fresh by delta — with an explicit staleness bound.  A
       coreset-mode daemon reports the certified size bracket alongside
       its (approximate) cluster; exact-mode answers carry no bounds and
       render byte-identically to previous releases *)
    let cluster, bounds =
      match Dynamic.index_mode t.dyn with
      | Dynamic.Exact -> (Dynamic.query_centralized t.dyn ~k ~b, None)
      | Dynamic.Coreset _ ->
          let cluster, iv = Dynamic.query_bounds t.dyn ~k ~b in
          (cluster, Some (iv.Bwc_core.Find_cluster.Coreset.lo, iv.hi))
    in
    let staleness = staleness t ~now in
    bump t "daemon.answers" [ ("served", "index") ];
    push
      (Wire.Answer
         { id; cluster; hops = 0; served = Wire.Index; degraded = true; staleness; bounds })
  end
  else begin
    let r = Dynamic.query t.dyn ~k ~b in
    bump t "daemon.answers" [ ("served", "live") ];
    push
      (Wire.Answer
         {
           id;
           cluster = r.Bwc_core.Query.cluster;
           hops = r.Bwc_core.Query.hops;
           served = Wire.Live;
           degraded = false;
           staleness = 0;
           bounds = None;
         })
  end

let process_item t ~now ~out = function
  | It_query { id; conn; k; b; deadline; enq } ->
      process_query t ~now ~out ~id ~conn ~k ~b ~deadline ~enq
  | It_ingest { id; conn; cls; op; enq; attempts } ->
      process_ingest t ~now ~out ~id ~conn ~cls ~op ~enq ~attempts

(* class-priority dequeue with a churn cap: churn outranks everything
   up to [churn_share] items per tick, queries outrank gossip, and
   leftover budget may return to churn once the other lanes are dry *)
let pick t used_churn =
  let take_churn () =
    match Admission.take t.adm Admission.Churn with
    | Some it ->
        incr used_churn;
        Some it
    | None -> None
  in
  let within_share = !used_churn < t.config.churn_share in
  match (if within_share then take_churn () else None) with
  | Some it -> Some it
  | None -> (
      match Admission.take t.adm Admission.Query with
      | Some it -> Some it
      | None -> (
          match Admission.take t.adm Admission.Meas with
          | Some it -> Some it
          | None -> if within_share then None else take_churn ()))

(* ----- the tick ----- *)

let stabilization t ~now =
  if t.dirty then begin
    let allowed =
      match t.mode with
      | Normal | Draining -> true
      (* degraded: reconvergence restarts on every membership change, so
         only attempt it on quiet ticks — the index serves meanwhile *)
      | Degraded -> not t.churn_this_tick
    in
    if allowed then begin
      if t.needs_refresh then begin
        Protocol.refresh_topology (Dynamic.protocol t.dyn);
        t.needs_refresh <- false
      end;
      let active = ref true in
      let rounds = ref 0 in
      while !active && !rounds < t.config.stabilize_budget do
        incr rounds;
        active := Protocol.run_round (Dynamic.protocol t.dyn)
      done;
      if not !active then begin
        t.dirty <- false;
        t.last_converged <- now
      end
    end
  end
  else t.last_converged <- now

let watchdog t ~now =
  if t.dirty && now - t.dirty_since >= t.config.stall_after then begin
    let p = Dynamic.protocol t.dyn in
    let pending =
      match Protocol.detector p with
      | Some d -> Detector.pending d ~round:(Protocol.current_round p)
      | None -> false
    in
    bump t "daemon.watchdog_fires" [];
    emit t
      (Trace.Daemon_watchdog { round = now; pending; stalled = now - t.dirty_since });
    (* repair: force a full topology refresh on the next stabilization
       pass and stop queries from waiting on it *)
    t.needs_refresh <- true;
    enter_degraded t ~now;
    t.dirty_since <- now
  end

let tick t ~now =
  let out = ref [] in
  t.churn_this_tick <- false;
  Admission.refill t.adm;
  (* overdue retries are admitted work: they run before fresh queue
     items and do not compete for this tick's budget *)
  let due, later = List.partition (fun (d, _, _) -> d <= now) t.retries in
  t.retries <- later;
  List.iter (fun (_, _, item) -> process_item t ~now ~out item) due;
  let budget = ref t.config.work_budget in
  let used_churn = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && !budget > 0 do
    match pick t used_churn with
    | None -> exhausted := true
    | Some item ->
        decr budget;
        process_item t ~now ~out item
  done;
  stabilization t ~now;
  (* backlog-driven degradation: enter when the queues say the reactor
     is behind, leave once converged and caught up *)
  let bl = backlog t in
  if t.mode = Normal && bl >= t.config.degrade_backlog then enter_degraded t ~now;
  if t.mode = Degraded && (not t.dirty) && bl * 2 <= t.config.degrade_backlog then
    exit_degraded t ~now;
  watchdog t ~now;
  (match t.config.snapshot_every with
  | Some every when every > 0 && now - t.last_snapshot >= every ->
      t.last_snapshot <- now;
      t.snapshot_due <- true
  | Some _ | None -> ());
  set_gauge t "daemon.staleness" (staleness t ~now);
  set_gauge t "daemon.backlog" bl;
  List.rev !out

(* ----- request entry ----- *)

let health t ~now =
  Wire.Health_report
    {
      mode = mode_name t.mode;
      members = Dynamic.member_count t.dyn;
      staleness = staleness t ~now;
      depth_churn = Admission.depth t.adm Admission.Churn;
      depth_query = Admission.depth t.adm Admission.Query;
      depth_meas = Admission.depth t.adm Admission.Meas;
    }

let stats t =
  match t.metrics with
  | Some m -> Wire.Stats_json (Registry.to_json (Registry.snapshot m))
  | None -> Wire.Stats_json "{}"

let drain t ~now =
  if t.mode <> Draining then begin
    if t.mode = Degraded then exit_degraded t ~now;
    t.mode <- Draining;
    bump t "daemon.drains" []
  end

let take_snapshot_request t =
  let due = t.snapshot_due in
  t.snapshot_due <- false;
  due

let host_ok t h = h >= 0 && h < Dataset.size (Dynamic.dataset t.dyn)

let handle_line t ~now ~conn line =
  match Wire.parse line with
  | Error reason ->
      bump t "daemon.parse_errors" [];
      [ { conn; response = Wire.Parse_error { reason } } ]
  | Ok req -> (
      match req with
      | Wire.Ping -> [ { conn; response = Wire.Pong } ]
      | Wire.Health -> [ { conn; response = health t ~now } ]
      | Wire.Stats -> [ { conn; response = stats t } ]
      | Wire.Snapshot_req ->
          t.snapshot_due <- true;
          [ { conn; response = Wire.Snapshotting } ]
      | Wire.Shutdown ->
          drain t ~now;
          [ { conn; response = Wire.Draining } ]
      | Wire.Query { id; k; b; deadline } ->
          if k < 2 || b <= 0. then
            [
              {
                conn;
                response = Wire.Rejected { id; reason = "bad_request"; attempts = 0 };
              };
            ]
          else
            let deadline =
              match deadline with
              | Some d when d > 0 -> d
              | Some _ | None -> t.config.default_deadline
            in
            offer t ~now ~conn (It_query { id; conn; k; b; deadline; enq = now })
      | Wire.Join { id; host } ->
          if not (host_ok t host) then
            [
              {
                conn;
                response = Wire.Rejected { id; reason = "bad_host"; attempts = 0 };
              };
            ]
          else
            offer t ~now ~conn
              (It_ingest
                 {
                   id;
                   conn;
                   cls = Admission.Churn;
                   op = Op_join host;
                   enq = now;
                   attempts = 0;
                 })
      | Wire.Leave { id; host } ->
          if not (host_ok t host) then
            [
              {
                conn;
                response = Wire.Rejected { id; reason = "bad_host"; attempts = 0 };
              };
            ]
          else
            offer t ~now ~conn
              (It_ingest
                 {
                   id;
                   conn;
                   cls = Admission.Churn;
                   op = Op_leave host;
                   enq = now;
                   attempts = 0;
                 })
      | Wire.Measure { id; src; dst; mbps } ->
          if (not (host_ok t src)) || (not (host_ok t dst)) || src = dst || mbps <= 0.
          then
            [
              {
                conn;
                response = Wire.Rejected { id; reason = "bad_measurement"; attempts = 0 };
              };
            ]
          else
            offer t ~now ~conn
              (It_ingest
                 {
                   id;
                   conn;
                   cls = Admission.Meas;
                   op = Op_meas { src; dst; mbps };
                   enq = now;
                   attempts = 0;
                 }))
