(* The deterministic in-memory transport: a scripted feed of (tick,
   conn, line) entries driven through a reactor, with a drain at the
   end so every admitted request resolves to exactly one response.
   The transcript rendering is the byte-comparable artifact the
   daemon-replay property and E17's same-seed rerun check diff. *)

type entry = { at : int; conn : int; line : string }

let line ~at ~conn line = { at; conn; line }

type event = { tick : int; conn : int; response : Wire.response }

let run ?(drain_grace = 1000) reactor entries =
  let entries =
    (* stable sort: same-tick entries keep script order *)
    List.stable_sort (fun a b -> compare a.at b.at) entries
  in
  let horizon = List.fold_left (fun acc e -> max acc e.at) 0 entries in
  let events = ref [] in
  let push now outs =
    List.iter
      (fun (o : Reactor.output) ->
        events := { tick = now; conn = o.Reactor.conn; response = o.Reactor.response } :: !events)
      outs
  in
  let rest = ref entries in
  for now = 0 to horizon do
    let today, later = List.partition (fun e -> e.at = now) !rest in
    rest := later;
    List.iter
      (fun (e : entry) ->
        push now (Reactor.handle_line reactor ~now ~conn:e.conn e.line))
      today;
    push now (Reactor.tick reactor ~now)
  done;
  (* drain: keep ticking until every admitted request has answered (or
     the grace bound trips — a bug, surfaced by the unresolved count) *)
  Reactor.drain reactor ~now:horizon;
  let now = ref horizon in
  while (not (Reactor.drained reactor)) && !now - horizon < drain_grace do
    incr now;
    push !now (Reactor.tick reactor ~now:!now)
  done;
  List.rev !events

let transcript events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %s\n" e.tick e.conn (Wire.render e.response)))
    events;
  Buffer.contents buf
