(** The [bwclusterd] line protocol: one request per line, one response
    line per request.

    Requests:
    {v
    PING
    QUERY <id> k=<int> b=<float> [deadline=<ticks>]
    JOIN <id> host=<int>
    LEAVE <id> host=<int>
    MEAS <id> src=<int> dst=<int> bw=<float>
    HEALTH
    STATS
    SNAPSHOT
    SHUTDOWN
    v}

    Responses (one of):
    {v
    PONG
    OK <id> cluster=<h1,h2,...|none> hops=<n> served=<live|index> degraded=<0|1> staleness=<ticks>[ lo=<n> hi=<n>]
    ACK <id> class=<churn|meas> applied=<0|1>
    SHED <id> class=<c> reason=<queue_full|rate_limit|pressure|draining>
    TIMEOUT <id> waited=<ticks> deadline=<ticks>
    REJECTED <id> reason=<r> attempts=<n>
    HEALTH mode=<normal|degraded|draining> members=<n> staleness=<ticks> q_churn=<n> q_query=<n> q_meas=<n>
    STATS <metrics-registry json>
    SNAPSHOTTING
    DRAINING
    ERR <reason>
    v}

    [<id>] is a client-chosen token (no spaces, no ['=']) echoed back on
    the response, which is how responses are matched to requests —
    admitted work answers out of order with respect to other classes.
    Parsing and rendering are pure; both transports share them. *)

type request =
  | Ping
  | Query of { id : string; k : int; b : float; deadline : int option }
  | Join of { id : string; host : int }
  | Leave of { id : string; host : int }
  | Measure of { id : string; src : int; dst : int; mbps : float }
  | Health
  | Stats
  | Snapshot_req
  | Shutdown

type served =
  | Live   (** routed through the decentralized protocol (Algorithm 4) *)
  | Index  (** answered from the last consistent centralized index *)

val served_name : served -> string

type response =
  | Pong
  | Answer of {
      id : string;
      cluster : int list option;
      hops : int;
      served : served;
      degraded : bool;
      staleness : int;  (** ticks since the aggregation last converged *)
      bounds : (int * int) option;
          (** certified [(lo, hi)] bracket on the maximum cluster size at
              the query's constraint, present only when the answer was
              served from a coreset index; [Exact]-mode answers render
              byte-identically to previous releases *)
    }
  | Acked of { id : string; cls : string; applied : bool }
      (** ingestion applied; [applied = false] means a no-op (already in
          the requested state) *)
  | Shed of { id : string; cls : string; reason : string }
  | Timeout of { id : string; waited : int; deadline : int }
  | Rejected of { id : string; reason : string; attempts : int }
      (** permanently failed ingestion (bad host, or retries exhausted) *)
  | Health_report of {
      mode : string;
      members : int;
      staleness : int;
      depth_churn : int;
      depth_query : int;
      depth_meas : int;
    }
  | Stats_json of string
  | Snapshotting
  | Draining
  | Parse_error of { reason : string }

val parse : string -> (request, string) result
(** [Error] carries the reason the reactor echoes back as [ERR]. *)

val render : response -> string
(** The canonical single-line rendering (no trailing newline). *)
