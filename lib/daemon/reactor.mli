(** The deterministic daemon core: a pure state machine over injected
    time and parsed protocol lines.

    The reactor never reads the wall clock, never touches a file or a
    socket, and draws randomness only from an explicitly seeded
    {!Bwc_stats.Rng}: the same script of [(tick, conn, line)] inputs
    yields a byte-identical response stream and trace.  Real time and
    Unix sockets exist only in [bin/bwclusterd.ml], which maps them
    onto this interface; tests and experiment E17 drive it through the
    deterministic in-memory {!Script} transport.

    A tick performs, in order: token-bucket refill; overdue ingest
    retries; budgeted queue work in class-priority order (churn up to
    [churn_share], then queries — deadline-checked at dequeue — then
    measurement gossip); budgeted stabilization (topology refresh when
    membership moved, then at most [stabilize_budget] protocol rounds);
    degraded-mode transitions; the stalled-convergence watchdog; and
    snapshot scheduling.

    While the aggregation is stale, queries are served from the last
    consistent {!Bwc_core.Find_cluster.Index} — kept membership-fresh
    by {!Bwc_core.Dynamic.apply_deferred} deltas — with an explicit
    [staleness] bound in the response, instead of blocking on
    reconvergence.  Every refused or expired request gets a typed
    response (SHED / TIMEOUT / REJECTED); nothing is dropped silently. *)

type config = {
  admission : Admission.config;
  work_budget : int;      (** queue items processed per tick *)
  churn_share : int;      (** churn items that may consume budget before
                              queries get the rest (anti-starvation) *)
  stabilize_budget : int; (** protocol rounds per tick while stale *)
  default_deadline : int; (** query deadline (ticks) when none given *)
  degrade_backlog : int;  (** backlog that flips to degraded mode *)
  stall_after : int;      (** stale ticks before the watchdog fires *)
  meas_refresh : int;     (** accepted samples per forced repropagation *)
  ingest_fail : float;    (** injected transient ingest failure rate
                              (deterministic, from [seed]) *)
  retry_base : int;       (** backoff base: [base * 2^(attempt-1)] *)
  retry_cap : int;        (** backoff ceiling (ticks) *)
  retry_jitter : int;     (** max seeded jitter added to each backoff *)
  max_attempts : int;     (** attempts before a typed REJECTED *)
  snapshot_every : int option;  (** periodic snapshot cadence (ticks) *)
  seed : int;             (** reactor-local rng (jitter, failure draws) *)
}

val default_config : config

type mode = Normal | Degraded | Draining

val mode_name : mode -> string

type t

val create :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  config ->
  Bwc_core.Dynamic.t ->
  t
(** Wraps a running system.  Forces the maintained index once so the
    first degraded answer never pays the initial O(n^3) build inside a
    tick.  With [?metrics]: [daemon.admitted{class}],
    [daemon.shed{class,reason}], [daemon.answers{served}],
    [daemon.timeouts], [daemon.rejected{class}], [daemon.retries{class}],
    [daemon.watchdog_fires], [daemon.degraded_entries], [daemon.drains],
    [daemon.parse_errors] counters, [daemon.queue_depth{class}],
    [daemon.staleness], [daemon.backlog] gauges and a
    [daemon.latency_ticks{class}] histogram.  With [?trace]: the
    [Daemon_*] events of {!Bwc_obs.Trace.event}. *)

type output = { conn : int; response : Wire.response }

val handle_line : t -> now:int -> conn:int -> string -> output list
(** Parse and admit one request line.  Immediate requests (PING, HEALTH,
    STATS, SNAPSHOT, SHUTDOWN), malformed lines, validation failures and
    admission refusals answer synchronously; admitted work answers from
    a later {!tick}. *)

val tick : t -> now:int -> output list
(** Advance the logical clock to [now] (call with strictly increasing
    values) and run one bounded slice of work; returns the responses
    completed this tick, in processing order. *)

val drain : t -> now:int -> unit
(** Enter draining mode: new work is shed with reason [draining] while
    queued and retrying work keeps being processed by {!tick}.  The
    SHUTDOWN request does exactly this. *)

val drained : t -> bool
(** Draining and nothing left queued or awaiting retry. *)

val take_snapshot_request : t -> bool
(** True when a snapshot is due (periodic cadence or an explicit
    SNAPSHOT request); reading it clears the flag.  The caller owns the
    actual write (see {!Lifecycle.snapshot}) — the reactor performs no
    IO. *)

val system : t -> Bwc_core.Dynamic.t
val mode : t -> mode

val staleness : t -> now:int -> int
(** Ticks since the aggregation last converged (0 when converged). *)

val backlog : t -> int
(** Queued items plus pending retries. *)
