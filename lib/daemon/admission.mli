(** Bounded, rate-limited, class-prioritized admission control.

    Three lanes — churn events, cluster queries, measurement gossip —
    each a bounded FIFO behind an integer token bucket refilled once per
    reactor tick.  Every refusal is typed ({!shed_reason}); the reactor
    turns it into an explicit SHED response, so overload never drops a
    request silently.

    Priority (churn > query > meas) is enforced at the door — gossip is
    shed while the churn lane is under pressure (above half capacity) —
    and again at dequeue time by the reactor's drain order. *)

type cls = Churn | Query | Meas

val cls_name : cls -> string
(** Wire name: ["churn"], ["query"], ["meas"]. *)

val all_classes : cls list

type shed_reason =
  | Queue_full    (** the lane's bounded FIFO is at capacity *)
  | Rate_limited  (** the lane's token bucket is empty this tick *)
  | Pressure      (** gossip shed while the churn lane is above half
                      capacity (a churn storm outranks freshness) *)
  | Draining      (** the reactor is shutting down and admits nothing
                      new (issued by the reactor, not by {!offer}) *)

val shed_reason_name : shed_reason -> string

type limits = {
  cap : int;    (** bounded queue capacity, [>= 1] *)
  rate : int;   (** tokens added per tick, [>= 0] *)
  burst : int;  (** token bucket ceiling, [>= 1] *)
}

type config = { churn : limits; query : limits; meas : limits }

val default_config : config

type 'a t

val create : ?metrics:Bwc_obs.Registry.t -> config -> 'a t
(** With [?metrics], maintains [daemon.admitted{class}],
    [daemon.shed{class,reason}] counters and a
    [daemon.queue_depth{class}] gauge.  Raises [Invalid_argument] on a
    non-positive capacity or burst. *)

val offer : 'a t -> cls -> 'a -> (unit, shed_reason) result
(** Admit [item] into the lane for [cls], or say exactly why not. *)

val take : 'a t -> cls -> 'a option
(** Dequeue the oldest admitted item of a class (FIFO within a lane). *)

val refill : 'a t -> unit
(** Add each lane's per-tick token allotment (clamped at [burst]).
    Call exactly once per reactor tick. *)

val depth : 'a t -> cls -> int
val backlog : 'a t -> int
(** Total queued items across all lanes. *)

val under_pressure : 'a t -> bool
(** The churn-storm signal: churn lane above half capacity. *)
