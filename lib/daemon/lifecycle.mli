(** Daemon lifecycle: warm boot across rotated snapshot generations,
    periodic rotation, drain-then-snapshot shutdown.

    All file IO is delegated to [Bwc_persist] (atomic temp-and-rename
    writes, container-verified rotation, newest-first generation
    fallback); this module only orchestrates. *)

type boot = {
  system : Bwc_core.Dynamic.t;
  warm : bool;
  generation : int option;
      (** the rotated generation that restored (0 = newest), when warm *)
  rejected : (int * Bwc_persist.Codec.error) list;
      (** generations that existed but failed verification *)
}

val boot :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  ?keep:int ->
  path:string ->
  cold:(unit -> Bwc_core.Dynamic.t) ->
  unit ->
  boot
(** Restore the newest verifiable generation of [path] (walking
    [path], [path.1], ... — see {!Bwc_persist.Snapshot.load_any}); any
    rejection falls back to [cold ()], reporting every generation's
    error.  A warm boot answers queries at the instant of restart; a
    cold boot pays full construction + reconvergence. *)

val snapshot :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  ?keep:int ->
  path:string ->
  Bwc_core.Dynamic.t ->
  (int, Bwc_persist.Codec.error) result
(** Encode and rotate one image in (crash-safe: verification before the
    chain moves, atomic final write).  Returns the image size in
    bytes. *)

val drain_and_snapshot :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  ?keep:int ->
  ?max_ticks:int ->
  path:string ->
  now:int ->
  on_output:(Reactor.output -> unit) ->
  Reactor.t ->
  (int * int, Bwc_persist.Codec.error) result
(** Graceful shutdown: {!Reactor.drain}, tick until {!Reactor.drained}
    (at most [max_ticks], default 10000) delivering late responses via
    [on_output], then {!snapshot}.  Returns [(final_tick, bytes)]. *)
