(** E12: robustness of the decentralized system under injected faults.

    For each (drop probability, crash rate) configuration the experiment
    rebuilds the {e same} ensemble and protocol (same seeds), runs the
    aggregation under a {!Bwc_sim.Fault} plan (message loss, duplication
    and reordering jitter plus randomly scheduled crash/restart windows),
    and compares against the fault-free baseline: did it converge, does
    it reach the identical CRT fixed point, how many extra rounds and
    messages did reliability cost, and how does the query recall rate
    move.  The CSV export is the machine-readable acceptance report. *)

type row = {
  drop : float;            (** per-message loss probability *)
  crash_rate : float;      (** per-host probability of one crash window *)
  crashes : int;           (** crash windows actually scheduled *)
  converged : bool;        (** quiescent before the round cap *)
  fixpoint_match : bool;   (** identical CRT tables to the fault-free run *)
  rounds : int;
  round_overhead : float;  (** rounds / fault-free rounds *)
  messages : int;
  message_overhead : float;(** messages / fault-free messages *)
  retries : int;           (** protocol retransmissions *)
  dup_suppressed : int;    (** duplicate updates discarded *)
  lost : int;              (** messages the fault plan dropped *)
  duplicated : int;        (** messages the fault plan duplicated *)
  delayed : int;           (** messages the fault plan jittered *)
  rr : float;              (** recall rate of the query workload *)
  rr_delta : float;        (** fault-free RR minus faulty RR *)
  query_retries : int;     (** hop retransmissions across the workload *)
}

type output = {
  dataset : string;
  n : int;
  duplicate : float;
  jitter : int;
  queries : int;
  clean_rounds : int;
  rr_clean : float;
  rows : row list;
}

val run :
  ?drops:float list ->
  ?crash_rates:float list ->
  ?duplicate:float ->
  ?jitter:int ->
  ?queries:int ->
  ?max_rounds:int ->
  ?n_cut:int ->
  ?class_count:int ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  output
(** Defaults: drops [0; 0.1; 0.2; 0.3], crash rates [0; 0.15],
    duplicate 0.1, jitter 2, 60 queries, round cap 600. *)

val print : output -> unit
val save_csv : output -> string -> unit
