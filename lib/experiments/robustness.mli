(** E12: robustness of the decentralized system under injected faults.

    For each (drop probability, crash rate) configuration the experiment
    rebuilds the {e same} ensemble and protocol (same seeds), runs the
    aggregation under a {!Bwc_sim.Fault} plan (message loss, duplication
    and reordering jitter plus randomly scheduled crash/restart windows),
    and compares against the fault-free baseline: did it converge, does
    it reach the identical CRT fixed point, how many extra rounds and
    messages did reliability cost, and how does the query recall rate
    move.  The CSV export is the machine-readable acceptance report. *)

type row = {
  drop : float;            (** per-message loss probability *)
  crash_rate : float;      (** per-host probability of one crash window *)
  crashes : int;           (** crash windows actually scheduled *)
  converged : bool;        (** quiescent before the round cap *)
  fixpoint_match : bool;   (** identical CRT tables to the fault-free run *)
  rounds : int;
  round_overhead : float;  (** rounds / fault-free rounds *)
  messages : int;
  message_overhead : float;(** messages / fault-free messages *)
  retries : int;           (** protocol retransmissions *)
  dup_suppressed : int;    (** duplicate updates discarded *)
  lost : int;              (** messages the fault plan dropped *)
  duplicated : int;        (** messages the fault plan duplicated *)
  delayed : int;           (** messages the fault plan jittered *)
  rr : float;              (** recall rate of the query workload *)
  rr_delta : float;        (** fault-free RR minus faulty RR *)
  query_retries : int;     (** hop retransmissions across the workload *)
}

type output = {
  dataset : string;
  n : int;
  duplicate : float;
  jitter : int;
  queries : int;
  clean_rounds : int;
  rr_clean : float;
  rows : row list;
}

val run :
  ?drops:float list ->
  ?crash_rates:float list ->
  ?duplicate:float ->
  ?jitter:int ->
  ?queries:int ->
  ?max_rounds:int ->
  ?n_cut:int ->
  ?class_count:int ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  output
(** Defaults: drops [0; 0.1; 0.2; 0.3], crash rates [0; 0.15],
    duplicate 0.1, jitter 2, 60 queries, round cap 600. *)

val print : output -> unit
val save_csv : output -> string -> unit

(** {1 E13: crash recovery}

    Kills a set of pairwise non-adjacent hosts silently and compares two
    ways of getting back to a correct fixed point, starting from the
    {e same} converged system (same seeds):

    - {b incremental}: the failure detector suspects, confirms, evicts
      and heals ({!Bwc_core.Protocol} with a detector config) — orphans
      regraft to their grandparent and only the state around the wound is
      re-propagated;
    - {b full stabilize}: an oracle evicts the victims immediately
      ({!Bwc_predtree.Ensemble.evict_host}), then
      {!Bwc_core.Protocol.refresh_topology} rebuilds every slot and the
      whole aggregation re-propagates from scratch.

    Both arms must land on the identical overlay and CRT fixed point
    ([overlay_match] / [fixpoint_match]); the incremental arm should get
    there with measurably fewer repair messages ([msgs_saved]).  During
    the detection-and-repair window one query per round is sampled at
    live hosts ([rr_during]) to watch availability degrade and recover
    ([rr_after]).  [repair_msgs] is net of heartbeat traffic (reported
    separately as [heartbeats]): the oracle arm pays for no detection, so
    only repair propagation is compared like for like. *)

type recovery_row = {
  victims : int;           (** hosts actually crashed this row *)
  healed : bool;           (** all victims repaired and quiescent in time *)
  detect_rounds : int;     (** rounds from crash until the last repair ran *)
  reconverge_rounds : int; (** rounds from crash to quiescence *)
  full_rounds : int;       (** oracle arm's re-propagation rounds *)
  repair_msgs : int;       (** incremental messages, net of heartbeats *)
  heartbeats : int;        (** heartbeat messages over the same window *)
  full_msgs : int;         (** oracle arm's re-propagation messages *)
  msgs_saved : float;      (** 1 - repair_msgs / full_msgs *)
  fixpoint_match : bool;   (** identical member CRT tables across arms *)
  overlay_match : bool;    (** identical repaired anchor overlays *)
  rr_during : float;       (** recall of queries sampled during repair *)
  rr_after : float;        (** recall of the replayed workload after *)
  suspects : int;          (** detector suspicion transitions *)
  give_ups : int;          (** updates retired unacknowledged *)
  regrafts : int;          (** orphans re-attached during repair *)
}

type recovery_output = {
  dataset : string;
  n : int;
  queries : int;
  base_rounds : int;       (** fault-free convergence rounds *)
  rr_clean : float;        (** fault-free recall of the same workload *)
  rows : recovery_row list;
}

val recovery :
  ?victim_counts:int list ->
  ?queries:int ->
  ?detector:Bwc_core.Detector.config ->
  ?max_rounds:int ->
  ?n_cut:int ->
  ?class_count:int ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  recovery_output
(** Defaults: victim counts [1; 2; 3], 60 queries,
    {!Bwc_core.Detector.default_config}, round cap 400. *)

val print_recovery : recovery_output -> unit
val save_recovery_csv : recovery_output -> string -> unit

(** {1 E15: crash-consistent restart}

    Converges a system once, snapshots it ({!Bwc_persist.Snapshot}), and
    compares what a whole-system restart costs under five arms, all
    replaying the same seeded query workload {e immediately} at restart
    (query availability while reconvergence is pending) and then running
    the aggregation to a fixed point:

    - {b warm}: restore from the verified snapshot.  Expected: the
      restart workload already matches the converged recall, the
      aggregation quiesces in one round with (almost) no messages, and
      the CRT fixed point is identical to the reference.
    - {b cold}: the same build with aggregation suppressed — the state a
      node restarts in with no snapshot.  Its post-restart rounds and
      messages are the denominator of every speedup column.
    - {b truncated} / {b bit-flip} / {b stale-version}: the snapshot
      image is corrupted ({!Bwc_sim.Fault.corrupt_snapshot}) while the
      system is down; the restore must reject it with the right typed
      error ([rejected_as]) and degrade gracefully to the cold path.

    The acceptance claim is the warm row: [round_speedup] and
    [msg_speedup] at least 5x at n >= 64, with [fixpoint_match]. *)

type restart_row = {
  mode : string;           (** warm | cold | truncated | bit-flip | stale-version *)
  restore_ok : bool;       (** the snapshot verified and restored warm *)
  rejected_as : string;    (** typed {!Bwc_persist.Codec.error} class, or "-" *)
  rr_at_restart : float;   (** recall of the workload replayed at restart *)
  post_rounds : int;       (** aggregation rounds to the fixed point after restart *)
  post_msgs : int;         (** aggregation messages after restart *)
  round_speedup : float;   (** cold post_rounds / this arm's post_rounds *)
  msg_speedup : float;     (** cold post_msgs / this arm's post_msgs *)
  fixpoint_match : bool;   (** identical CRT tables to the reference system *)
}

type restart_output = {
  dataset : string;
  n : int;
  queries : int;
  snapshot_bytes : int;    (** size of the encoded snapshot image *)
  base_rounds : int;       (** rounds the reference took to converge *)
  rr_clean : float;        (** recall of the workload on the converged reference *)
  rows : restart_row list;
}

val restart :
  ?queries:int ->
  ?max_rounds:int ->
  ?n_cut:int ->
  ?class_count:int ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  restart_output
(** Defaults: 60 queries, round cap 600, n_cut 4, 5 bandwidth classes. *)

val print_restart : restart_output -> unit
val save_restart_csv : restart_output -> string -> unit

val save_restart_json : restart_output -> seed:int -> string -> unit
(** The machine-readable form CI archives: one object with the run
    parameters and one row per arm. *)
