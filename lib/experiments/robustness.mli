(** E12: robustness of the decentralized system under injected faults.

    For each (drop probability, crash rate) configuration the experiment
    rebuilds the {e same} ensemble and protocol (same seeds), runs the
    aggregation under a {!Bwc_sim.Fault} plan (message loss, duplication
    and reordering jitter plus randomly scheduled crash/restart windows),
    and compares against the fault-free baseline: did it converge, does
    it reach the identical CRT fixed point, how many extra rounds and
    messages did reliability cost, and how does the query recall rate
    move.  The CSV export is the machine-readable acceptance report. *)

type row = {
  drop : float;            (** per-message loss probability *)
  crash_rate : float;      (** per-host probability of one crash window *)
  crashes : int;           (** crash windows actually scheduled *)
  converged : bool;        (** quiescent before the round cap *)
  fixpoint_match : bool;   (** identical CRT tables to the fault-free run *)
  rounds : int;
  round_overhead : float;  (** rounds / fault-free rounds *)
  messages : int;
  message_overhead : float;(** messages / fault-free messages *)
  retries : int;           (** protocol retransmissions *)
  dup_suppressed : int;    (** duplicate updates discarded *)
  lost : int;              (** messages the fault plan dropped *)
  duplicated : int;        (** messages the fault plan duplicated *)
  delayed : int;           (** messages the fault plan jittered *)
  rr : float;              (** recall rate of the query workload *)
  rr_delta : float;        (** fault-free RR minus faulty RR *)
  query_retries : int;     (** hop retransmissions across the workload *)
}

type output = {
  dataset : string;
  n : int;
  duplicate : float;
  jitter : int;
  queries : int;
  clean_rounds : int;
  rr_clean : float;
  rows : row list;
}

val run :
  ?drops:float list ->
  ?crash_rates:float list ->
  ?duplicate:float ->
  ?jitter:int ->
  ?queries:int ->
  ?max_rounds:int ->
  ?n_cut:int ->
  ?class_count:int ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  output
(** Defaults: drops [0; 0.1; 0.2; 0.3], crash rates [0; 0.15],
    duplicate 0.1, jitter 2, 60 queries, round cap 600. *)

val print : output -> unit
val save_csv : output -> string -> unit

(** {1 E13: crash recovery}

    Kills a set of pairwise non-adjacent hosts silently and compares two
    ways of getting back to a correct fixed point, starting from the
    {e same} converged system (same seeds):

    - {b incremental}: the failure detector suspects, confirms, evicts
      and heals ({!Bwc_core.Protocol} with a detector config) — orphans
      regraft to their grandparent and only the state around the wound is
      re-propagated;
    - {b full stabilize}: an oracle evicts the victims immediately
      ({!Bwc_predtree.Ensemble.evict_host}), then
      {!Bwc_core.Protocol.refresh_topology} rebuilds every slot and the
      whole aggregation re-propagates from scratch.

    Both arms must land on the identical overlay and CRT fixed point
    ([overlay_match] / [fixpoint_match]); the incremental arm should get
    there with measurably fewer repair messages ([msgs_saved]).  During
    the detection-and-repair window one query per round is sampled at
    live hosts ([rr_during]) to watch availability degrade and recover
    ([rr_after]).  [repair_msgs] is net of heartbeat traffic (reported
    separately as [heartbeats]): the oracle arm pays for no detection, so
    only repair propagation is compared like for like. *)

type recovery_row = {
  victims : int;           (** hosts actually crashed this row *)
  healed : bool;           (** all victims repaired and quiescent in time *)
  detect_rounds : int;     (** rounds from crash until the last repair ran *)
  reconverge_rounds : int; (** rounds from crash to quiescence *)
  full_rounds : int;       (** oracle arm's re-propagation rounds *)
  repair_msgs : int;       (** incremental messages, net of heartbeats *)
  heartbeats : int;        (** heartbeat messages over the same window *)
  full_msgs : int;         (** oracle arm's re-propagation messages *)
  msgs_saved : float;      (** 1 - repair_msgs / full_msgs *)
  fixpoint_match : bool;   (** identical member CRT tables across arms *)
  overlay_match : bool;    (** identical repaired anchor overlays *)
  rr_during : float;       (** recall of queries sampled during repair *)
  rr_after : float;        (** recall of the replayed workload after *)
  suspects : int;          (** detector suspicion transitions *)
  give_ups : int;          (** updates retired unacknowledged *)
  regrafts : int;          (** orphans re-attached during repair *)
}

type recovery_output = {
  dataset : string;
  n : int;
  queries : int;
  base_rounds : int;       (** fault-free convergence rounds *)
  rr_clean : float;        (** fault-free recall of the same workload *)
  rows : recovery_row list;
}

val recovery :
  ?victim_counts:int list ->
  ?queries:int ->
  ?detector:Bwc_core.Detector.config ->
  ?max_rounds:int ->
  ?n_cut:int ->
  ?class_count:int ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  recovery_output
(** Defaults: victim counts [1; 2; 3], 60 queries,
    {!Bwc_core.Detector.default_config}, round cap 400. *)

val print_recovery : recovery_output -> unit
val save_recovery_csv : recovery_output -> string -> unit
