module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble
module Framework = Bwc_predtree.Framework
module Anchor = Bwc_predtree.Anchor
module Fault = Bwc_sim.Fault
module Protocol = Bwc_core.Protocol
module Detector = Bwc_core.Detector
module Registry = Bwc_obs.Registry

type row = {
  drop : float;
  crash_rate : float;
  crashes : int;
  converged : bool;
  fixpoint_match : bool;
  rounds : int;
  round_overhead : float;
  messages : int;
  message_overhead : float;
  retries : int;
  dup_suppressed : int;
  lost : int;
  duplicated : int;
  delayed : int;
  rr : float;
  rr_delta : float;
  query_retries : int;
}

type output = {
  dataset : string;
  n : int;
  duplicate : float;
  jitter : int;
  queries : int;
  clean_rounds : int;
  rr_clean : float;
  rows : row list;
}

(* identical CRT tables: own rows and every neighbor column *)
let fixpoint_matches ~n ens a b =
  let same x v = Protocol.crt_row a x v = Protocol.crt_row b x v in
  let ok = ref true in
  for x = 0 to n - 1 do
    if not (same x x) then ok := false;
    List.iter
      (fun m -> if not (same x m) then ok := false)
      (Ensemble.anchor_neighbors ens x)
  done;
  !ok

(* every host except the root gets at most one crash window *)
let random_crashes ~rng ~n ~crash_rate =
  let crashes = ref [] in
  for host = 1 to n - 1 do
    if crash_rate > 0.0 && Rng.float rng 1.0 < crash_rate then begin
      let down_from = 2 + Rng.int rng 8 in
      let duration = 2 + Rng.int rng 6 in
      crashes :=
        { Fault.node = host; down_from; up_at = down_from + duration } :: !crashes
    end
  done;
  !crashes

(* the same seeded query stream is replayed against every configuration *)
let measure_rr ~seed ~queries ~n ~lo ~hi protocol =
  let rng = Rng.create seed in
  let found = ref 0 in
  let retries = ref 0 in
  for _ = 1 to queries do
    let at = Rng.int rng n in
    let k = 2 + Rng.int rng 6 in
    let b = Rng.uniform rng lo hi in
    let r = Protocol.query_bandwidth protocol ~at ~k ~b in
    if Bwc_core.Query.found r then incr found;
    retries := !retries + r.Bwc_core.Query.retries
  done;
  (float_of_int !found /. float_of_int queries, !retries)

let run ?(drops = [ 0.0; 0.1; 0.2; 0.3 ]) ?(crash_rates = [ 0.0; 0.15 ])
    ?(duplicate = 0.1) ?(jitter = 2) ?(queries = 60) ?(max_rounds = 600)
    ?(n_cut = 4) ?(class_count = 5) ~seed dataset =
  let n = Dataset.size dataset in
  let space = Dataset.metric dataset in
  let classes = Bwc_core.Classes.of_percentiles ~count:class_count dataset in
  let lo, hi = Workload.bandwidth_range dataset in
  (* identical ensemble and protocol seeds per configuration, so any
     difference in the outcome is attributable to the fault plan alone;
     each configuration gets its own registry so its snapshot is a
     self-contained record of what the whole stack did *)
  let build ?faults ~metrics () =
    let ens = Ensemble.build ~rng:(Rng.create (seed + 1)) ~metrics space in
    let p =
      Protocol.create ~rng:(Rng.create (seed + 2)) ~n_cut ?faults ~metrics ~classes ens
    in
    let rounds = Protocol.run_aggregation ~max_rounds p in
    (ens, p, rounds)
  in
  let ens, clean, clean_rounds = build ~metrics:(Registry.create ()) () in
  let clean_messages = Protocol.messages_sent clean in
  let rr_clean, _ = measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi clean in
  let rows =
    List.concat_map
      (fun drop ->
        List.map
          (fun crash_rate ->
            let crash_rng =
              Rng.create
                (seed + 7
                + int_of_float (drop *. 1000.0)
                + int_of_float (crash_rate *. 100_000.0))
            in
            let crashes = random_crashes ~rng:crash_rng ~n ~crash_rate in
            let metrics = Registry.create () in
            let faults =
              Fault.create ~drop ~duplicate ~jitter ~crashes ~metrics
                ~rng:(Rng.split crash_rng) ()
            in
            let _, p, rounds = build ~faults ~metrics () in
            let rr, query_retries =
              measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi p
            in
            (* the row is read off the configuration's registry snapshot:
               the same numbers `bwcluster metrics` would report *)
            let snap = Registry.snapshot metrics in
            let messages = Registry.get snap "engine.msgs_sent" in
            {
              drop;
              crash_rate;
              crashes = List.length crashes;
              converged = rounds < max_rounds;
              fixpoint_match = fixpoint_matches ~n ens clean p;
              rounds;
              round_overhead = float_of_int rounds /. float_of_int clean_rounds;
              messages;
              message_overhead =
                float_of_int messages /. float_of_int clean_messages;
              retries = Registry.get snap "protocol.retransmissions";
              dup_suppressed = Registry.get snap "protocol.dup_suppressed";
              lost = Registry.get snap "fault.lost";
              duplicated = Registry.get snap "fault.duplicated";
              delayed = Registry.get snap "fault.delayed";
              rr;
              rr_delta = rr_clean -. rr;
              query_retries;
            })
          crash_rates)
      drops
  in
  {
    dataset = dataset.Dataset.name;
    n;
    duplicate;
    jitter;
    queries;
    clean_rounds;
    rr_clean;
    rows;
  }

(* ----- E13: crash recovery through failure detection + self-healing ----- *)

type recovery_row = {
  victims : int;
  healed : bool;
  detect_rounds : int;
  reconverge_rounds : int;
  full_rounds : int;
  repair_msgs : int;
  heartbeats : int;
  full_msgs : int;
  msgs_saved : float;
  fixpoint_match : bool;
  overlay_match : bool;
  rr_during : float;
  rr_after : float;
  suspects : int;
  give_ups : int;
  regrafts : int;
}

type recovery_output = {
  dataset : string;
  n : int;
  queries : int;
  base_rounds : int;
  rr_clean : float;
  rows : recovery_row list;
}

(* the replayed query stream, restricted to the given submission points
   (post-repair, evicted hosts can no longer be queried at) *)
let measure_rr_at ~seed ~queries ~hosts ~lo ~hi protocol =
  let rng = Rng.create seed in
  let found = ref 0 in
  for _ = 1 to queries do
    let at = hosts.(Rng.int rng (Array.length hosts)) in
    let k = 2 + Rng.int rng 6 in
    let b = Rng.uniform rng lo hi in
    if Bwc_core.Query.found (Protocol.query_bandwidth protocol ~at ~k ~b) then
      incr found
  done;
  float_of_int !found /. float_of_int queries

(* [v] pairwise non-adjacent, non-root members of the primary anchor
   overlay: independent failures, so each repair is a local event *)
let pick_victims ~rng ens v =
  let anchor = Framework.anchor (Ensemble.primary ens) in
  let root = Anchor.root anchor in
  let rec pick chosen remaining k =
    if k = 0 || remaining = [] then List.rev chosen
    else begin
      let arr = Array.of_list remaining in
      let h = arr.(Rng.int rng (Array.length arr)) in
      let nbrs = Anchor.neighbors anchor h in
      let remaining =
        List.filter (fun x -> x <> h && not (List.mem x nbrs)) remaining
      in
      pick (h :: chosen) remaining (k - 1)
    end
  in
  pick [] (List.filter (fun h -> h <> root) (Ensemble.members ens)) v

let overlay_edges ens =
  let anchor = Framework.anchor (Ensemble.primary ens) in
  List.sort compare
    (List.concat_map
       (fun h -> List.map (fun c -> (h, c)) (Anchor.children anchor h))
       (Ensemble.members ens))

let recovery ?(victim_counts = [ 1; 2; 3 ]) ?(queries = 60)
    ?(detector = Detector.default_config) ?(max_rounds = 400) ?(n_cut = 4)
    ?(class_count = 5) ~seed dataset =
  let n = Dataset.size dataset in
  let space = Dataset.metric dataset in
  let classes = Bwc_core.Classes.of_percentiles ~count:class_count dataset in
  let lo, hi = Workload.bandwidth_range dataset in
  (* both arms of every row rebuild the same converged system (same
     ensemble and protocol seeds); the only difference is how the crash is
     handled: detector-driven incremental repair vs an oracle that evicts
     immediately and re-propagates everything *)
  let build ?detector () =
    let metrics = Registry.create () in
    let ens = Ensemble.build ~rng:(Rng.create (seed + 1)) ~metrics space in
    let p =
      Protocol.create ~rng:(Rng.create (seed + 2)) ~n_cut ?detector ~metrics
        ~classes ens
    in
    let rounds = Protocol.run_aggregation ~max_rounds p in
    (ens, p, rounds)
  in
  let _, clean, base_rounds = build ~detector () in
  let rr_clean, _ = measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi clean in
  let rows =
    List.map
      (fun v ->
        let ens_inc, p_inc, _ = build ~detector () in
        let ens_full, p_full, _ = build () in
        let victims = pick_victims ~rng:(Rng.create (seed + 11 + v)) ens_inc v in
        let vcount = List.length victims in
        List.iter (Protocol.crash_host p_inc) victims;
        List.iter (Protocol.crash_host p_full) victims;
        let crash_round = Protocol.rounds_run p_inc in
        let msgs0_inc = Protocol.messages_sent p_inc in
        let hb0 = Protocol.heartbeats_sent p_inc in
        (* drive the incremental arm to quiescence, sampling one query per
           round (at live hosts) to watch availability during repair *)
        let qrng = Rng.create (seed + 5 + v) in
        let live =
          Array.of_list
            (List.filter
               (fun h -> not (List.mem h victims))
               (Ensemble.members ens_inc))
        in
        let hits = ref 0 in
        let asked = ref 0 in
        let detect = ref 0 in
        let rec go i =
          if i >= max_rounds then false
          else begin
            let active = Protocol.run_round p_inc in
            if !detect = 0 && Protocol.repairs_run p_inc >= vcount then
              detect := i + 1;
            let at = live.(Rng.int qrng (Array.length live)) in
            let k = 2 + Rng.int qrng 6 in
            let b = Rng.uniform qrng lo hi in
            incr asked;
            if Bwc_core.Query.found (Protocol.query_bandwidth p_inc ~at ~k ~b)
            then incr hits;
            if active || Protocol.repairs_run p_inc < vcount then go (i + 1)
            else true
          end
        in
        let healed = go 0 in
        let reconverge_rounds = Protocol.rounds_run p_inc - crash_round in
        let heartbeats = Protocol.heartbeats_sent p_inc - hb0 in
        (* repair traffic proper: what healing re-propagated, net of the
           steady heartbeat cost (reported separately) — the number the
           full-stabilization arm, whose oracle pays no detection either,
           is comparable against *)
        let repair_msgs =
          Protocol.messages_sent p_inc - msgs0_inc - heartbeats
        in
        let rr_during = float_of_int !hits /. float_of_int (max 1 !asked) in
        (* oracle arm: told the victims immediately, evicts and rebuilds
           every slot, then re-propagates from scratch *)
        let msgs0_full = Protocol.messages_sent p_full in
        List.iter (fun h -> ignore (Ensemble.evict_host ens_full h)) victims;
        Protocol.refresh_topology p_full;
        let full_rounds = Protocol.run_aggregation ~max_rounds p_full in
        let full_msgs = Protocol.messages_sent p_full - msgs0_full in
        let overlay_match = overlay_edges ens_inc = overlay_edges ens_full in
        let fixpoint_match =
          overlay_match
          && List.for_all
               (fun x ->
                 Protocol.crt_row p_inc x x = Protocol.crt_row p_full x x
                 && List.for_all
                      (fun m ->
                        Protocol.crt_row p_inc x m = Protocol.crt_row p_full x m)
                      (Ensemble.anchor_neighbors ens_inc x))
               (Ensemble.members ens_inc)
        in
        let rr_after =
          measure_rr_at ~seed:(seed + 3) ~queries
            ~hosts:(Array.of_list (Ensemble.members ens_inc))
            ~lo ~hi p_inc
        in
        let snap = Registry.snapshot (Protocol.metrics p_inc) in
        {
          victims = vcount;
          healed;
          detect_rounds = !detect;
          reconverge_rounds;
          full_rounds;
          repair_msgs;
          heartbeats;
          full_msgs;
          msgs_saved =
            (if full_msgs = 0 then 0.0
             else 1.0 -. (float_of_int repair_msgs /. float_of_int full_msgs));
          fixpoint_match;
          overlay_match;
          rr_during;
          rr_after;
          suspects = Registry.get snap "detector.suspects";
          give_ups = Protocol.give_ups p_inc;
          regrafts = Protocol.regrafts_applied p_inc;
        })
      victim_counts
  in
  ({ dataset = dataset.Dataset.name; n; queries; base_rounds; rr_clean; rows }
    : recovery_output)

let b v = if v then "yes" else "no"

let print_recovery (output : recovery_output) =
  Report.table
    ~title:
      (Printf.sprintf
         "Crash recovery: incremental self-healing vs full stabilize (clean: %d \
          rounds, RR %.3f) -- %s n=%d"
         output.base_rounds output.rr_clean output.dataset output.n)
    ~headers:
      [
        "victims"; "healed"; "detect"; "reconv"; "full rds"; "repair msgs"; "hb";
        "full msgs"; "saved"; "fixpoint"; "overlay"; "RR during"; "RR after";
      ]
    (List.map
       (fun r ->
         [
           Report.i r.victims;
           b r.healed;
           Report.i r.detect_rounds;
           Report.i r.reconverge_rounds;
           Report.i r.full_rounds;
           Report.i r.repair_msgs;
           Report.i r.heartbeats;
           Report.i r.full_msgs;
           Report.f3 r.msgs_saved;
           b r.fixpoint_match;
           b r.overlay_match;
           Report.f3 r.rr_during;
           Report.f3 r.rr_after;
         ])
       output.rows)

let save_recovery_csv (output : recovery_output) path =
  Report.save_csv ~path
    ~headers:
      [
        "victims"; "healed"; "detect_rounds"; "reconverge_rounds"; "full_rounds";
        "repair_msgs"; "heartbeats"; "full_msgs"; "msgs_saved"; "fixpoint_match";
        "overlay_match"; "rr_during"; "rr_after"; "suspects"; "give_ups";
        "regrafts";
      ]
    (List.map
       (fun r ->
         [
           Report.i r.victims;
           b r.healed;
           Report.i r.detect_rounds;
           Report.i r.reconverge_rounds;
           Report.i r.full_rounds;
           Report.i r.repair_msgs;
           Report.i r.heartbeats;
           Report.i r.full_msgs;
           Report.f3 r.msgs_saved;
           b r.fixpoint_match;
           b r.overlay_match;
           Report.f3 r.rr_during;
           Report.f3 r.rr_after;
           Report.i r.suspects;
           Report.i r.give_ups;
           Report.i r.regrafts;
         ])
       output.rows)

let print (output : output) =
  Report.table
    ~title:
      (Printf.sprintf
         "Robustness under faults (dup=%.2f jitter=%d, clean: %d rounds, RR %.3f) -- %s \
          n=%d"
         output.duplicate output.jitter output.clean_rounds output.rr_clean
         output.dataset output.n)
    ~headers:
      [
        "drop"; "crash"; "windows"; "conv"; "fixpoint"; "rounds"; "x rounds"; "msgs";
        "x msgs"; "retries"; "RR"; "dRR";
      ]
    (List.map
       (fun r ->
         [
           Report.f3 r.drop;
           Report.f3 r.crash_rate;
           Report.i r.crashes;
           b r.converged;
           b r.fixpoint_match;
           Report.i r.rounds;
           Report.f3 r.round_overhead;
           Report.i r.messages;
           Report.f3 r.message_overhead;
           Report.i r.retries;
           Report.f3 r.rr;
           Report.f3 r.rr_delta;
         ])
       output.rows)

let save_csv (output : output) path =
  Report.save_csv ~path
    ~headers:
      [
        "drop"; "crash_rate"; "crash_windows"; "converged"; "fixpoint_match"; "rounds";
        "round_overhead"; "messages"; "message_overhead"; "retries"; "dup_suppressed";
        "lost"; "duplicated"; "delayed"; "rr"; "rr_delta"; "query_retries";
      ]
    (List.map
       (fun r ->
         [
           Report.f3 r.drop;
           Report.f3 r.crash_rate;
           Report.i r.crashes;
           b r.converged;
           b r.fixpoint_match;
           Report.i r.rounds;
           Report.f3 r.round_overhead;
           Report.i r.messages;
           Report.f3 r.message_overhead;
           Report.i r.retries;
           Report.i r.dup_suppressed;
           Report.i r.lost;
           Report.i r.duplicated;
           Report.i r.delayed;
           Report.f3 r.rr;
           Report.f3 r.rr_delta;
           Report.i r.query_retries;
         ])
       output.rows)

(* ----- E15: crash-consistent restart, warm restore vs cold reconvergence ----- *)

module System = Bwc_core.System
module Snapshot = Bwc_persist.Snapshot
module Codec = Bwc_persist.Codec

type restart_row = {
  mode : string;
  restore_ok : bool;
  rejected_as : string;
  rr_at_restart : float;
  post_rounds : int;
  post_msgs : int;
  round_speedup : float;
  msg_speedup : float;
  fixpoint_match : bool;
}

type restart_output = {
  dataset : string;
  n : int;
  queries : int;
  snapshot_bytes : int;
  base_rounds : int;
  rr_clean : float;
  rows : restart_row list;
}

let err_class = function
  | Codec.Bad_magic -> "bad-magic"
  | Codec.Bad_version _ -> "bad-version"
  | Codec.Truncated -> "truncated"
  | Codec.Bad_checksum -> "bad-checksum"
  | Codec.Corrupt _ -> "corrupt"

let restart ?(queries = 60) ?(max_rounds = 600) ?(n_cut = 4) ?(class_count = 5)
    ~seed dataset =
  let n = Dataset.size dataset in
  let lo, hi = Workload.bandwidth_range dataset in
  (* the reference system converges once; its image, taken at quiescence
     before any query runs, is what every restart arm starts from *)
  let reference =
    System.create ~seed ~n_cut ~class_count dataset
  in
  let ens = System.framework reference in
  let ref_p = System.protocol reference in
  let base_rounds = Protocol.rounds_run ref_p in
  let image = Snapshot.encode (`System reference) in
  let rr_clean, _ = measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi ref_p in
  (* a cold start is the same build with aggregation suppressed: the state
     a node has after a restart with no (or no usable) snapshot *)
  let cold_build () =
    System.create ~seed ~n_cut ~class_count ~aggregation_rounds:0 dataset
  in
  (* one arm: replay the query workload immediately at restart (query
     availability while reconvergence is still pending), then run the
     aggregation to a fixed point and count what it cost *)
  let arm ~mode ~restore_ok ~rejected_as sys =
    let p = System.protocol sys in
    let rr_at_restart, _ = measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi p in
    let msgs0 = Protocol.messages_sent p in
    let post_rounds = Protocol.run_aggregation ~max_rounds p in
    let post_msgs = Protocol.messages_sent p - msgs0 in
    let fixpoint_match = fixpoint_matches ~n ens ref_p p in
    (mode, restore_ok, rejected_as, rr_at_restart, post_rounds, post_msgs,
     fixpoint_match)
  in
  let unwrap = function
    | Snapshot.Restored_system s -> s
    | Snapshot.Restored_dynamic _ -> cold_build ()
  in
  let from_bytes ~mode bytes =
    let restored, status =
      Snapshot.restore_or_cold
        ~cold:(fun () -> Snapshot.Restored_system (cold_build ()))
        bytes
    in
    let restore_ok, rejected_as =
      match status with `Warm -> (true, "-") | `Cold e -> (false, err_class e)
    in
    arm ~mode ~restore_ok ~rejected_as (unwrap restored)
  in
  let corrupted ~mode ~salt corruption =
    from_bytes ~mode
      (Fault.corrupt_snapshot ~rng:(Rng.create (seed + salt)) corruption image)
  in
  let raw =
    [
      from_bytes ~mode:"warm" image;
      arm ~mode:"cold" ~restore_ok:false ~rejected_as:"-" (cold_build ());
      corrupted ~mode:"truncated" ~salt:13 (Fault.Truncate (String.length image / 3));
      corrupted ~mode:"bit-flip" ~salt:17 (Fault.Flip_bits 16);
      corrupted ~mode:"stale-version" ~salt:19 Fault.Stale_version;
    ]
  in
  (* the cold arm is the denominator: how much reconvergence a restart
     costs when the snapshot is absent or rejected *)
  let cold_rounds, cold_msgs =
    match List.nth raw 1 with _, _, _, _, r, m, _ -> (r, m)
  in
  let rows =
    List.map
      (fun (mode, restore_ok, rejected_as, rr_at_restart, post_rounds,
            post_msgs, fixpoint_match) ->
        {
          mode;
          restore_ok;
          rejected_as;
          rr_at_restart;
          post_rounds;
          post_msgs;
          round_speedup =
            float_of_int cold_rounds /. float_of_int (max 1 post_rounds);
          msg_speedup = float_of_int cold_msgs /. float_of_int (max 1 post_msgs);
          fixpoint_match;
        })
      raw
  in
  ({
     dataset = dataset.Dataset.name;
     n;
     queries;
     snapshot_bytes = String.length image;
     base_rounds;
     rr_clean;
     rows;
   }
    : restart_output)

let print_restart (output : restart_output) =
  Report.table
    ~title:
      (Printf.sprintf
         "Restart: warm restore vs cold reconvergence (snapshot %d bytes, \
          converged in %d rounds, RR %.3f) -- %s n=%d"
         output.snapshot_bytes output.base_rounds output.rr_clean output.dataset
         output.n)
    ~headers:
      [
        "mode"; "restored"; "rejected as"; "RR at restart"; "post rounds";
        "post msgs"; "x rounds"; "x msgs"; "fixpoint";
      ]
    (List.map
       (fun r ->
         [
           r.mode;
           b r.restore_ok;
           r.rejected_as;
           Report.f3 r.rr_at_restart;
           Report.i r.post_rounds;
           Report.i r.post_msgs;
           Report.f r.round_speedup;
           Report.f r.msg_speedup;
           b r.fixpoint_match;
         ])
       output.rows)

let save_restart_csv (output : restart_output) path =
  Report.save_csv ~path
    ~headers:
      [
        "mode"; "restore_ok"; "rejected_as"; "rr_at_restart"; "post_rounds";
        "post_msgs"; "round_speedup"; "msg_speedup"; "fixpoint_match";
      ]
    (List.map
       (fun r ->
         [
           r.mode;
           b r.restore_ok;
           r.rejected_as;
           Report.f3 r.rr_at_restart;
           Report.i r.post_rounds;
           Report.i r.post_msgs;
           Report.f r.round_speedup;
           Report.f r.msg_speedup;
           b r.fixpoint_match;
         ])
       output.rows)

let save_restart_json (output : restart_output) ~seed path =
  let oc = open_out path in
  let row_json r =
    Printf.sprintf
      "    {\"mode\": \"%s\", \"restore_ok\": %b, \"rejected_as\": \"%s\", \
       \"rr_at_restart\": %.3f, \"post_rounds\": %d, \"post_msgs\": %d, \
       \"round_speedup\": %.2f, \"msg_speedup\": %.2f, \"fixpoint_match\": %b}"
      r.mode r.restore_ok r.rejected_as r.rr_at_restart r.post_rounds
      r.post_msgs r.round_speedup r.msg_speedup r.fixpoint_match
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"restart\",\n\
    \  \"seed\": %d,\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n\": %d,\n\
    \  \"queries\": %d,\n\
    \  \"snapshot_bytes\": %d,\n\
    \  \"base_rounds\": %d,\n\
    \  \"rr_clean\": %.3f,\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    seed output.dataset output.n output.queries output.snapshot_bytes
    output.base_rounds output.rr_clean
    (String.concat ",\n" (List.map row_json output.rows));
  close_out oc
