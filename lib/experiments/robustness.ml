module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble
module Fault = Bwc_sim.Fault
module Protocol = Bwc_core.Protocol
module Registry = Bwc_obs.Registry

type row = {
  drop : float;
  crash_rate : float;
  crashes : int;
  converged : bool;
  fixpoint_match : bool;
  rounds : int;
  round_overhead : float;
  messages : int;
  message_overhead : float;
  retries : int;
  dup_suppressed : int;
  lost : int;
  duplicated : int;
  delayed : int;
  rr : float;
  rr_delta : float;
  query_retries : int;
}

type output = {
  dataset : string;
  n : int;
  duplicate : float;
  jitter : int;
  queries : int;
  clean_rounds : int;
  rr_clean : float;
  rows : row list;
}

(* identical CRT tables: own rows and every neighbor column *)
let fixpoint_matches ~n ens a b =
  let same x v = Protocol.crt_row a x v = Protocol.crt_row b x v in
  let ok = ref true in
  for x = 0 to n - 1 do
    if not (same x x) then ok := false;
    List.iter
      (fun m -> if not (same x m) then ok := false)
      (Ensemble.anchor_neighbors ens x)
  done;
  !ok

(* every host except the root gets at most one crash window *)
let random_crashes ~rng ~n ~crash_rate =
  let crashes = ref [] in
  for host = 1 to n - 1 do
    if crash_rate > 0.0 && Rng.float rng 1.0 < crash_rate then begin
      let down_from = 2 + Rng.int rng 8 in
      let duration = 2 + Rng.int rng 6 in
      crashes :=
        { Fault.node = host; down_from; up_at = down_from + duration } :: !crashes
    end
  done;
  !crashes

(* the same seeded query stream is replayed against every configuration *)
let measure_rr ~seed ~queries ~n ~lo ~hi protocol =
  let rng = Rng.create seed in
  let found = ref 0 in
  let retries = ref 0 in
  for _ = 1 to queries do
    let at = Rng.int rng n in
    let k = 2 + Rng.int rng 6 in
    let b = Rng.uniform rng lo hi in
    let r = Protocol.query_bandwidth protocol ~at ~k ~b in
    if Bwc_core.Query.found r then incr found;
    retries := !retries + r.Bwc_core.Query.retries
  done;
  (float_of_int !found /. float_of_int queries, !retries)

let run ?(drops = [ 0.0; 0.1; 0.2; 0.3 ]) ?(crash_rates = [ 0.0; 0.15 ])
    ?(duplicate = 0.1) ?(jitter = 2) ?(queries = 60) ?(max_rounds = 600)
    ?(n_cut = 4) ?(class_count = 5) ~seed dataset =
  let n = Dataset.size dataset in
  let space = Dataset.metric dataset in
  let classes = Bwc_core.Classes.of_percentiles ~count:class_count dataset in
  let lo, hi = Workload.bandwidth_range dataset in
  (* identical ensemble and protocol seeds per configuration, so any
     difference in the outcome is attributable to the fault plan alone;
     each configuration gets its own registry so its snapshot is a
     self-contained record of what the whole stack did *)
  let build ?faults ~metrics () =
    let ens = Ensemble.build ~rng:(Rng.create (seed + 1)) ~metrics space in
    let p =
      Protocol.create ~rng:(Rng.create (seed + 2)) ~n_cut ?faults ~metrics ~classes ens
    in
    let rounds = Protocol.run_aggregation ~max_rounds p in
    (ens, p, rounds)
  in
  let ens, clean, clean_rounds = build ~metrics:(Registry.create ()) () in
  let clean_messages = Protocol.messages_sent clean in
  let rr_clean, _ = measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi clean in
  let rows =
    List.concat_map
      (fun drop ->
        List.map
          (fun crash_rate ->
            let crash_rng =
              Rng.create
                (seed + 7
                + int_of_float (drop *. 1000.0)
                + int_of_float (crash_rate *. 100_000.0))
            in
            let crashes = random_crashes ~rng:crash_rng ~n ~crash_rate in
            let metrics = Registry.create () in
            let faults =
              Fault.create ~drop ~duplicate ~jitter ~crashes ~metrics
                ~rng:(Rng.split crash_rng) ()
            in
            let _, p, rounds = build ~faults ~metrics () in
            let rr, query_retries =
              measure_rr ~seed:(seed + 3) ~queries ~n ~lo ~hi p
            in
            (* the row is read off the configuration's registry snapshot:
               the same numbers `bwcluster metrics` would report *)
            let snap = Registry.snapshot metrics in
            let messages = Registry.get snap "engine.msgs_sent" in
            {
              drop;
              crash_rate;
              crashes = List.length crashes;
              converged = rounds < max_rounds;
              fixpoint_match = fixpoint_matches ~n ens clean p;
              rounds;
              round_overhead = float_of_int rounds /. float_of_int clean_rounds;
              messages;
              message_overhead =
                float_of_int messages /. float_of_int clean_messages;
              retries = Registry.get snap "protocol.retransmissions";
              dup_suppressed = Registry.get snap "protocol.dup_suppressed";
              lost = Registry.get snap "fault.lost";
              duplicated = Registry.get snap "fault.duplicated";
              delayed = Registry.get snap "fault.delayed";
              rr;
              rr_delta = rr_clean -. rr;
              query_retries;
            })
          crash_rates)
      drops
  in
  {
    dataset = dataset.Dataset.name;
    n;
    duplicate;
    jitter;
    queries;
    clean_rounds;
    rr_clean;
    rows;
  }

let b v = if v then "yes" else "no"

let print output =
  Report.table
    ~title:
      (Printf.sprintf
         "Robustness under faults (dup=%.2f jitter=%d, clean: %d rounds, RR %.3f) -- %s \
          n=%d"
         output.duplicate output.jitter output.clean_rounds output.rr_clean
         output.dataset output.n)
    ~headers:
      [
        "drop"; "crash"; "windows"; "conv"; "fixpoint"; "rounds"; "x rounds"; "msgs";
        "x msgs"; "retries"; "RR"; "dRR";
      ]
    (List.map
       (fun r ->
         [
           Report.f3 r.drop;
           Report.f3 r.crash_rate;
           Report.i r.crashes;
           b r.converged;
           b r.fixpoint_match;
           Report.i r.rounds;
           Report.f3 r.round_overhead;
           Report.i r.messages;
           Report.f3 r.message_overhead;
           Report.i r.retries;
           Report.f3 r.rr;
           Report.f3 r.rr_delta;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path
    ~headers:
      [
        "drop"; "crash_rate"; "crash_windows"; "converged"; "fixpoint_match"; "rounds";
        "round_overhead"; "messages"; "message_overhead"; "retries"; "dup_suppressed";
        "lost"; "duplicated"; "delayed"; "rr"; "rr_delta"; "query_retries";
      ]
    (List.map
       (fun r ->
         [
           Report.f3 r.drop;
           Report.f3 r.crash_rate;
           Report.i r.crashes;
           b r.converged;
           b r.fixpoint_match;
           Report.i r.rounds;
           Report.f3 r.round_overhead;
           Report.i r.messages;
           Report.f3 r.message_overhead;
           Report.i r.retries;
           Report.i r.dup_suppressed;
           Report.i r.lost;
           Report.i r.duplicated;
           Report.i r.delayed;
           Report.f3 r.rr;
           Report.f3 r.rr_delta;
           Report.i r.query_retries;
         ])
       output.rows)
