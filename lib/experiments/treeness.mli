(** E4 — Fig. 5: the effect of treeness on clustering accuracy.

    Six same-size datasets with swept treeness (measured [epsilon_avg])
    receive the same query workload; WPR is reported against [f_b] (the
    bandwidth CDF value at the constraint) both raw and normalized by
    [f_a*] — Sec. IV-C's Equation 1 analysis:

    {v WPR = f_b ^ ((1/eps_avg_star) * (1/f_a_star)) v}

    so {v WPR ^ f_a_star = f_b ^ (1/eps_avg_star) v}: after normalization, datasets with
    worse treeness (larger epsilon) must plot above datasets with better
    treeness.  [f_a] is the fraction of pairs with bandwidth within
    [+-window] of [b]; [f_a* = (alpha - 1/alpha) f_a + 1/alpha] with
    [alpha = 3.2] as in the paper. *)

type bin = {
  f_b : float;      (** mean CDF value of the bin's constraints *)
  wpr : float;
  f_a_star : float; (** mean normalization exponent of the bin *)
  wpr_norm : float; (** [wpr ** f_a_star] *)
  queries : int;
}

type curve = {
  sigma : float;       (** generator noise level *)
  epsilon_avg : float; (** measured treeness *)
  bins : bin list;     (** ascending f_b *)
}

type output = { curves : curve list }

val alpha : float
(** 3.2, the paper's constant. *)

val run :
  ?n:int -> ?sigmas:float list -> ?rounds:int -> ?queries_per_round:int ->
  ?k:int -> ?bins:int -> ?window:float -> seed:int -> unit -> output
(** Defaults: 100-node datasets, sigmas [0.02 .. 0.8], 2 rounds, 300
    queries per round, k = 5, 6 f_b bins, [window] 10 Mbps (the paper:
    six datasets, 10 rounds, 2000 queries). *)

val monotone_in_fb : curve -> bool
(** Whether WPR is non-decreasing along the curve's bins (the paper's
    first observation). *)

val print : output -> unit

val save_csv : output -> string -> unit
(** One row per (curve, bin), with the curve's sigma and epsilon. *)
