(** E2 — Fig. 3(b,d): CDFs of relative bandwidth-prediction error for the
    tree embedding (the prediction framework) versus the Vivaldi 2-d
    Euclidean embedding, pooled over rounds.  The paper's qualitative
    result: the tree CDF dominates (sits left of) the Euclidean CDF. *)

type output = {
  dataset : string;
  tree : Bwc_stats.Cdf.t;
  eucl : Bwc_stats.Cdf.t;
}

val run : ?rounds:int -> seed:int -> Bwc_dataset.Dataset.t -> output
(** Default 3 rounds (the paper pools 10). *)

val median_gap : output -> float
(** [median(eucl) - median(tree)]; positive when the tree embedding is
    more accurate. *)

val print : ?resolution:int -> output -> unit

val save_csv : ?resolution:int -> output -> string -> unit
(** Writes quantile rows of both CDFs as CSV. *)
