let default_out = Format.std_formatter

let table ?(out = default_out) ~title ~headers rows =
  let all = headers :: rows in
  let cols = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> cols then invalid_arg "Report.table: ragged row")
    rows;
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let total = Array.fold_left ( + ) 0 widths + (2 * (cols - 1)) in
  Format.fprintf out "@.%s@." title;
  Format.fprintf out "%s@." (String.make (Stdlib.max total (String.length title)) '-');
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i > 0 then Format.fprintf out "  ";
        Format.fprintf out "%s%s" pad cell)
      row;
    Format.fprintf out "@."
  in
  print_row headers;
  List.iter print_row rows;
  Format.fprintf out "@?"

let f x = Printf.sprintf "%.4g" x
let f3 x = Printf.sprintf "%.3f" x
let i n = string_of_int n

let series ?out ~title ~xlabel ~ylabels rows =
  let rows =
    List.map (fun (x, ys) -> f x :: List.map f ys) rows
  in
  table ?out ~title ~headers:(xlabel :: ylabels) rows

let cdf_series ?out ~title ~resolution cdfs =
  let fractions =
    List.init resolution (fun idx ->
        float_of_int (idx + 1) /. float_of_int resolution)
  in
  let rows =
    List.map
      (fun p -> f3 p :: List.map (fun (_, cdf) -> f (Bwc_stats.Cdf.quantile cdf p)) cdfs)
      fractions
  in
  table ?out ~title ~headers:("cum.frac" :: List.map fst cdfs) rows

let csv_escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let save_csv ~path ~headers rows =
  let cols = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> cols then invalid_arg "Report.save_csv: ragged row")
    rows;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let write_row row =
        output_string oc (String.concat "," (List.map csv_escape row));
        output_char oc '\n'
      in
      write_row headers;
      List.iter write_row rows)
