(** E10 — background cost accounting ("Scalable Search", Sec. I): how the
    protocol overhead grows with system size.

    Reported per system size:
    - construction measurements of the prediction framework (versus the
      full n-to-n probing it replaces);
    - aggregation messages until quiescence, total and per host;
    - rounds to quiescence (how quickly the overlay information settles);
    - the per-message node-information payload bound [n_cut].

    The paper's scalability claim corresponds to per-host message counts
    staying flat (total messages ~ linear in n) and rounds growing slowly
    with the anchor-tree depth. *)

type row = {
  n : int;
  measurements : int;
  full_mesh : int;
  rounds_to_quiescence : int;
  messages_total : int;
  messages_per_host : float;
  anchor_depth : int;
}

type output = {
  base_dataset : string;
  n_cut : int;
  rows : row list;
}

val run :
  ?sizes:int list -> ?repeats:int -> ?n_cut:int -> seed:int ->
  Bwc_dataset.Dataset.t -> output
(** Subsets of the base dataset; values averaged over [repeats]
    (default 2). *)

val print : output -> unit

val save_csv : output -> string -> unit
