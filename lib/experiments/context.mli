(** Per-round experiment context: everything the three compared approaches
    need, built once per (dataset, seed) — one "round" in the paper's
    methodology corresponds to one context with a fresh random seed.

    - TREE-DECENTRAL: the full decentralized system (Algorithms 2-4 over
      the prediction framework);
    - TREE-CENTRAL: Algorithm 1 over the same framework's predicted
      distances;
    - EUCL-CENTRAL: the adapted Aggarwal k-diameter algorithm over a
      Vivaldi 2-d embedding of the same measurements. *)

type t = {
  dataset : Bwc_dataset.Dataset.t;
  sys : Bwc_core.System.t;
  vivaldi : Bwc_vivaldi.Vivaldi.t;
  eucl_index : Bwc_euclid.Kdiam.Index.t;
}

val create :
  seed:int -> ?n_cut:int -> ?class_count:int -> Bwc_dataset.Dataset.t -> t

val c : t -> float

val tree_decentral : t -> Workload.query -> Bwc_core.Query.result
val tree_central : t -> Workload.query -> int list option
val eucl_central : t -> Workload.query -> int list option

val wrong_pairs : t -> b:float -> int list -> int
(** Number of pairs in the cluster whose real bandwidth is below [b]. *)

val pair_count : int list -> int
