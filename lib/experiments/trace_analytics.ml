module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble
module Framework = Bwc_predtree.Framework
module Anchor = Bwc_predtree.Anchor
module Fault = Bwc_sim.Fault
module Protocol = Bwc_core.Protocol
module Detector = Bwc_core.Detector
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module Causal = Bwc_obs.Causal

type kind_row = {
  kind : string;
  sends : int;
  bytes : int;
  delivered : int;
  dropped : int;
}

type row = {
  scenario : string;
  rounds : int;
  messages : int;
  delivered : int;
  dropped : int;
  query_hops : int;
  total_bytes : int;
  cp_len : int;
  cp_rounds : int;
  frac_explained : float;
  cp_kinds : string;
  send_sum_matches : bool;
  kinds : kind_row list;
}

type output = { dataset : string; n : int; seed : int; rows : row list }

(* same convention as Robustness.pick_victims: non-root, pairwise
   non-adjacent members of the primary anchor overlay *)
let pick_victims ~rng ens v =
  let anchor = Framework.anchor (Ensemble.primary ens) in
  let root = Anchor.root anchor in
  let rec pick chosen remaining k =
    if k = 0 || remaining = [] then List.rev chosen
    else begin
      let arr = Array.of_list remaining in
      let h = arr.(Rng.int rng (Array.length arr)) in
      let nbrs = Anchor.neighbors anchor h in
      let remaining =
        List.filter (fun x -> x <> h && not (List.mem x nbrs)) remaining
      in
      pick (h :: chosen) remaining (k - 1)
    end
  in
  pick [] (List.filter (fun h -> h <> root) (Ensemble.members ens)) v

(* queries land on live members only: crash recovery evicts victims *)
let replay_queries ~seed ~queries ~hosts ~lo ~hi protocol =
  let rng = Rng.create seed in
  for _ = 1 to queries do
    let at = hosts.(Rng.int rng (Array.length hosts)) in
    let k = 2 + Rng.int rng 6 in
    let b = Rng.uniform rng lo hi in
    ignore (Protocol.query_bandwidth protocol ~at ~k ~b)
  done

let row_of ~scenario ~engine_sends report =
  let kinds =
    List.map
      (fun (k, (s : Causal.kind_stat)) ->
        {
          kind = Trace.kind_to_string k;
          sends = s.k_sends;
          bytes = s.k_bytes;
          delivered = s.k_delivered;
          dropped = s.k_dropped;
        })
      report.Causal.by_kind
  in
  {
    scenario;
    rounds = report.Causal.rounds;
    messages = report.Causal.messages;
    delivered = report.Causal.delivered_events;
    dropped = report.Causal.dropped_events;
    query_hops = report.Causal.query_hops;
    total_bytes = report.Causal.total_bytes;
    cp_len = List.length report.Causal.critical_path;
    cp_rounds = report.Causal.cp_rounds;
    frac_explained = report.Causal.frac_explained;
    cp_kinds =
      String.concat "-"
        (List.map
           (fun (h : Causal.hop) -> Trace.kind_to_string h.h_kind)
           report.Causal.critical_path);
    send_sum_matches = Causal.engine_sends report = engine_sends;
    kinds;
  }

(* every scenario rebuilds the same system (same ensemble and protocol
   seeds) with an unbounded trace sink; the only variation is the fault
   plan, so the per-scenario attribution tables are directly comparable *)
let build_system ?faults ?detector ~n_cut ~class_count ~max_rounds ~seed dataset
    =
  let space = Dataset.metric dataset in
  let classes = Bwc_core.Classes.of_percentiles ~count:class_count dataset in
  let metrics = Registry.create () in
  let trace = Trace.create () in
  let ens = Ensemble.build ~rng:(Rng.create (seed + 1)) ~metrics space in
  let p =
    Protocol.create ~rng:(Rng.create (seed + 2)) ~n_cut ?faults ?detector
      ~metrics ~trace ~classes ens
  in
  let (_ : int) = Protocol.run_aggregation ~max_rounds p in
  (ens, p, trace)

let recovery_events ?(victims = 2) ?(queries = 40) ?(max_rounds = 400)
    ?(n_cut = 4) ?(class_count = 5) ~seed dataset =
  let lo, hi = Workload.bandwidth_range dataset in
  let ens, p, trace =
    build_system ~detector:Detector.default_config ~n_cut ~class_count
      ~max_rounds ~seed dataset
  in
  let chosen = pick_victims ~rng:(Rng.create (seed + 11)) ens victims in
  let vcount = List.length chosen in
  List.iter (Protocol.crash_host p) chosen;
  let rec heal i =
    if i < max_rounds then begin
      let active = Protocol.run_round p in
      if active || Protocol.repairs_run p < vcount then heal (i + 1)
    end
  in
  heal 0;
  let live = Array.of_list (Ensemble.members ens) in
  replay_queries ~seed:(seed + 3) ~queries ~hosts:live ~lo ~hi p;
  (Trace.events trace, Protocol.messages_sent p)

let run ?(drop = 0.1) ?(duplicate = 0.05) ?(jitter = 1) ?(victims = 2)
    ?(queries = 40) ?(max_rounds = 400) ?(n_cut = 4) ?(class_count = 5) ~seed
    dataset =
  let n = Dataset.size dataset in
  let lo, hi = Workload.bandwidth_range dataset in
  let all_hosts = Array.init n Fun.id in
  let finish ~scenario p trace =
    replay_queries ~seed:(seed + 3) ~queries ~hosts:all_hosts ~lo ~hi p;
    let report = Causal.analyze (Trace.events trace) in
    row_of ~scenario ~engine_sends:(Protocol.messages_sent p) report
  in
  let clean =
    let _, p, trace =
      build_system ~n_cut ~class_count ~max_rounds ~seed dataset
    in
    finish ~scenario:"clean" p trace
  in
  let faulty =
    let faults_metrics = Registry.create () in
    let faults =
      Fault.create ~drop ~duplicate ~jitter ~metrics:faults_metrics
        ~rng:(Rng.create (seed + 7)) ()
    in
    let _, p, trace =
      build_system ~faults ~n_cut ~class_count ~max_rounds ~seed dataset
    in
    finish ~scenario:"faulty" p trace
  in
  let recovery =
    let events, engine_sends =
      recovery_events ~victims ~queries ~max_rounds ~n_cut ~class_count ~seed
        dataset
    in
    row_of ~scenario:"recovery" ~engine_sends (Causal.analyze events)
  in
  ({ dataset = dataset.Dataset.name; n; seed; rows = [ clean; faulty; recovery ] }
    : output)

let b v = if v then "yes" else "no"

let print (output : output) =
  Report.table
    ~title:
      (Printf.sprintf
         "Trace analytics: critical path and attribution -- %s n=%d seed=%d"
         output.dataset output.n output.seed)
    ~headers:
      [
        "scenario"; "rounds"; "msgs"; "delivered"; "dropped"; "qhops"; "bytes";
        "cp len"; "cp rds"; "frac"; "sum ok";
      ]
    (List.map
       (fun r ->
         [
           r.scenario;
           Report.i r.rounds;
           Report.i r.messages;
           Report.i r.delivered;
           Report.i r.dropped;
           Report.i r.query_hops;
           Report.i r.total_bytes;
           Report.i r.cp_len;
           Report.i r.cp_rounds;
           Report.f3 r.frac_explained;
           b r.send_sum_matches;
         ])
       output.rows);
  List.iter
    (fun r ->
      Report.table
        ~title:
          (Printf.sprintf "Byte budget by kind -- %s (critical path: %s)"
             r.scenario
             (if r.cp_kinds = "" then "<empty>" else r.cp_kinds))
        ~headers:[ "kind"; "sends"; "bytes"; "delivered"; "dropped" ]
        (List.filter_map
           (fun k ->
             if k.sends = 0 && k.dropped = 0 then None
             else
               Some
                 [
                   k.kind; Report.i k.sends; Report.i k.bytes;
                   Report.i k.delivered; Report.i k.dropped;
                 ])
           r.kinds))
    output.rows

let save_csv (output : output) path =
  Report.save_csv ~path
    ~headers:
      [
        "scenario"; "rounds"; "messages"; "delivered"; "dropped"; "query_hops";
        "total_bytes"; "cp_len"; "cp_rounds"; "frac_explained"; "cp_kinds";
        "send_sum_matches";
      ]
    (List.map
       (fun r ->
         [
           r.scenario;
           Report.i r.rounds;
           Report.i r.messages;
           Report.i r.delivered;
           Report.i r.dropped;
           Report.i r.query_hops;
           Report.i r.total_bytes;
           Report.i r.cp_len;
           Report.i r.cp_rounds;
           Report.f3 r.frac_explained;
           r.cp_kinds;
           b r.send_sum_matches;
         ])
       output.rows)

let save_kinds_csv (output : output) path =
  Report.save_csv ~path
    ~headers:[ "scenario"; "kind"; "sends"; "bytes"; "delivered"; "dropped" ]
    (List.concat_map
       (fun r ->
         List.map
           (fun k ->
             [
               r.scenario; k.kind; Report.i k.sends; Report.i k.bytes;
               Report.i k.delivered; Report.i k.dropped;
             ])
           r.kinds)
       output.rows)
