(** E11 — routing-policy ablation.

    Algorithm 4 forwards to "any" neighbor whose CRT column promises a
    big-enough cluster.  This experiment compares the two natural
    instantiations — forward to the direction with the largest promised
    cluster versus the first qualifying neighbor — on hop counts and
    return rate.  Both are correct on converged tables; the interesting
    question is whether greed shortens paths. *)

type row = {
  k : int;
  queries : int;
  rr_best : float;
  rr_first : float;
  hops_best : float;  (** mean over answered queries *)
  hops_first : float;
}

type output = {
  dataset : string;
  rows : row list;
}

val run :
  ?ks:int list -> ?queries_per_k:int -> ?rounds:int -> seed:int ->
  Bwc_dataset.Dataset.t -> output

val print : output -> unit

val save_csv : output -> string -> unit
