module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Clique = Bwc_core.Clique
module Find_cluster = Bwc_core.Find_cluster

type row = {
  k : int;
  queries : int;
  oracle_feasible : int;
  oracle_unknown : int;
  alg1_found : int;
  missed : int;
  invalid : int;
}

type output = {
  dataset : string;
  epsilon_avg : float;
  rows : row list;
}

let run ?(ks = [ 3; 5; 8; 12 ]) ?(queries_per_k = 30) ?budget ~seed dataset =
  let space = Bwc_metric.Space.cached (Dataset.metric dataset) in
  (* harder constraints than the accuracy workload: the interesting
     disagreements appear near the top of the bandwidth distribution *)
  let lo, hi = Workload.bandwidth_range ~lo_pct:50.0 ~hi_pct:98.0 dataset in
  let epsilon_avg =
    Bwc_metric.Fourpoint.epsilon_avg ~samples:20_000 ~rng:(Rng.create seed) space
  in
  let rows =
    List.map
      (fun k ->
        let rng = Rng.create (seed + (31 * k)) in
        let oracle_feasible = ref 0 and oracle_unknown = ref 0 in
        let alg1_found = ref 0 and missed = ref 0 and invalid = ref 0 in
        for _ = 1 to queries_per_k do
          let b = Rng.uniform rng lo hi in
          let l = Bwc_metric.Bandwidth.to_distance b in
          let truth = Clique.exists_cluster ?budget space ~k ~l in
          (match truth with
          | Clique.Feasible _ -> incr oracle_feasible
          | Clique.Unknown -> incr oracle_unknown
          | Clique.Infeasible -> ());
          match Find_cluster.find space ~k ~l with
          | Some cluster ->
              incr alg1_found;
              if Bwc_metric.Space.diameter space cluster > l *. (1.0 +. 1e-9) then
                incr invalid
          | None -> (
              match truth with
              | Clique.Feasible _ -> incr missed
              | Clique.Infeasible | Clique.Unknown -> ())
        done;
        {
          k;
          queries = queries_per_k;
          oracle_feasible = !oracle_feasible;
          oracle_unknown = !oracle_unknown;
          alg1_found = !alg1_found;
          missed = !missed;
          invalid = !invalid;
        })
      (List.sort compare ks)
  in
  { dataset = dataset.Dataset.name; epsilon_avg; rows }

let print output =
  Report.table
    ~title:
      (Printf.sprintf
         "Ablation: Algorithm 1 on real data vs exact k-clique -- %s (eps_avg=%.4f)"
         output.dataset output.epsilon_avg)
    ~headers:
      [ "k"; "queries"; "oracle feasible"; "unknown"; "alg1 found"; "missed"; "invalid" ]
    (List.map
       (fun r ->
         [
           Report.i r.k;
           Report.i r.queries;
           Report.i r.oracle_feasible;
           Report.i r.oracle_unknown;
           Report.i r.alg1_found;
           Report.i r.missed;
           Report.i r.invalid;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path
    ~headers:
      [ "k"; "queries"; "oracle_feasible"; "oracle_unknown"; "alg1_found"; "missed"; "invalid" ]
    (List.map
       (fun r ->
         [
           Report.i r.k;
           Report.i r.queries;
           Report.i r.oracle_feasible;
           Report.i r.oracle_unknown;
           Report.i r.alg1_found;
           Report.i r.missed;
           Report.i r.invalid;
         ])
       output.rows)
