module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

type row = {
  k : int;
  queries : int;
  rr_best : float;
  rr_first : float;
  hops_best : float;
  hops_first : float;
}

type output = {
  dataset : string;
  rows : row list;
}

type acc = {
  mutable found : int;
  mutable hops : int;
}

let run ?ks ?(queries_per_k = 60) ?(rounds = 2) ~seed dataset =
  let n = Dataset.size dataset in
  let ks =
    match ks with
    | Some ks -> ks
    | None -> Workload.k_fraction_range ~n ~lo:0.08 ~hi:0.30 ~steps:4
  in
  let lo, hi = Workload.bandwidth_range dataset in
  let table = Hashtbl.create 8 in
  let acc_for k =
    match Hashtbl.find_opt table k with
    | Some pair -> pair
    | None ->
        let pair = ({ found = 0; hops = 0 }, { found = 0; hops = 0 }) in
        Hashtbl.add table k pair;
        pair
  in
  for round = 0 to rounds - 1 do
    let sys = Bwc_core.System.create ~seed:(seed + round) dataset in
    let protocol = Bwc_core.System.protocol sys in
    let rng = Rng.create (seed + (1000 * round) + 71) in
    List.iter
      (fun k ->
        let best, first = acc_for k in
        for _ = 1 to queries_per_k do
          let b = Rng.uniform rng lo hi in
          let at = Rng.int rng n in
          let record acc policy =
            let r = Bwc_core.Protocol.query_bandwidth ~policy protocol ~at ~k ~b in
            if Bwc_core.Query.found r then begin
              acc.found <- acc.found + 1;
              acc.hops <- acc.hops + r.Bwc_core.Query.hops
            end
          in
          record best `Best_crt;
          record first `First
        done)
      ks
  done;
  let total = rounds * queries_per_k in
  let rows =
    List.map
      (fun k ->
        let best, first = acc_for k in
        let rate acc = float_of_int acc.found /. float_of_int total in
        let mean acc =
          if acc.found = 0 then 0.0 else float_of_int acc.hops /. float_of_int acc.found
        in
        {
          k;
          queries = total;
          rr_best = rate best;
          rr_first = rate first;
          hops_best = mean best;
          hops_first = mean first;
        })
      (List.sort compare ks)
  in
  { dataset = dataset.Dataset.name; rows }

let print output =
  Report.table
    ~title:(Printf.sprintf "Ablation: forwarding policy -- %s" output.dataset)
    ~headers:[ "k"; "queries"; "RR best"; "RR first"; "hops best"; "hops first" ]
    (List.map
       (fun r ->
         [
           Report.i r.k;
           Report.i r.queries;
           Report.f3 r.rr_best;
           Report.f3 r.rr_first;
           Report.f3 r.hops_best;
           Report.f3 r.hops_first;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path
    ~headers:[ "k"; "queries"; "rr_best"; "rr_first"; "hops_best"; "hops_first" ]
    (List.map
       (fun r ->
         [
           Report.i r.k;
           Report.i r.queries;
           Report.f3 r.rr_best;
           Report.f3 r.rr_first;
           Report.f3 r.hops_best;
           Report.f3 r.hops_first;
         ])
       output.rows)
