module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

type bin = {
  f_b : float;
  wpr : float;
  f_a_star : float;
  wpr_norm : float;
  queries : int;
}

type curve = {
  sigma : float;
  epsilon_avg : float;
  bins : bin list;
}

type output = { curves : curve list }

let alpha = 3.2

let f_a_star f_a = ((alpha -. (1.0 /. alpha)) *. f_a) +. (1.0 /. alpha)

(* Bandwidth classes spanning nearly the whole distribution so that the
   decentralized system can quantise any constraint in the wide band this
   experiment sweeps; the fixed 20-80 band of Classes.of_percentiles is
   too narrow here. *)
let wide_classes ~count ds =
  let values = Dataset.bandwidth_values ds in
  Bwc_core.Classes.make
    (List.init count (fun idx ->
         let p = 2.0 +. (96.0 *. float_of_int idx /. float_of_int (count - 1)) in
         Bwc_stats.Summary.percentile values p))

type acc = {
  mutable wrong : int;
  mutable pairs : int;
  mutable fb_sum : float;
  mutable fa_sum : float;
  mutable count : int;
}

let run ?(n = 100) ?(sigmas = [ 0.02; 0.05; 0.1; 0.2; 0.4; 0.8 ]) ?(rounds = 2)
    ?(queries_per_round = 300) ?(k = 5) ?(bins = 6) ?(window = 10.0) ~seed () =
  let entries =
    Bwc_dataset.Treeness.sweep ~rng:(Rng.create seed) ~sigmas ~n ()
  in
  let curves =
    List.map
      (fun (entry : Bwc_dataset.Treeness.entry) ->
        let ds = entry.Bwc_dataset.Treeness.dataset in
        let cdf = Dataset.bandwidth_cdf ds in
        let classes = wide_classes ~count:24 ds in
        let accs = Array.init bins (fun _ ->
            { wrong = 0; pairs = 0; fb_sum = 0.0; fa_sum = 0.0; count = 0 })
        in
        let range = Workload.bandwidth_range ~lo_pct:3.0 ~hi_pct:97.0 ds in
        for round = 0 to rounds - 1 do
          let sys =
            Bwc_core.System.create ~seed:(seed + round) ~classes ds
          in
          let rng = Rng.create (seed + (1000 * round) + 29) in
          let queries =
            Workload.fixed_k ~rng ~range ~n ~k ~count:queries_per_round
          in
          List.iter
            (fun (q : Workload.query) ->
              let b = q.Workload.b in
              let fb = Bwc_stats.Cdf.eval cdf b in
              let fa = Bwc_stats.Cdf.fraction_in cdf ~lo:(b -. window) ~hi:(b +. window) in
              let bin = Stdlib.min (bins - 1) (int_of_float (fb *. float_of_int bins)) in
              let acc = accs.(bin) in
              match
                (Bwc_core.System.query ~at:q.Workload.at sys ~k:q.Workload.k ~b)
                  .Bwc_core.Query.cluster
              with
              | None -> ()
              | Some cluster ->
                  acc.count <- acc.count + 1;
                  acc.fb_sum <- acc.fb_sum +. fb;
                  acc.fa_sum <- acc.fa_sum +. fa;
                  acc.wrong <-
                    acc.wrong
                    + List.length (Bwc_core.System.verify_cluster sys ~b cluster);
                  acc.pairs <- acc.pairs + (List.length cluster * (List.length cluster - 1) / 2))
            queries
        done;
        let bins_out =
          Array.to_list accs
          |> List.filter_map (fun acc ->
                 if acc.count = 0 then None
                 else begin
                   let wpr =
                     if acc.pairs = 0 then 0.0
                     else float_of_int acc.wrong /. float_of_int acc.pairs
                   in
                   let fas = f_a_star (acc.fa_sum /. float_of_int acc.count) in
                   Some
                     {
                       f_b = acc.fb_sum /. float_of_int acc.count;
                       wpr;
                       f_a_star = fas;
                       wpr_norm = Float.pow wpr fas;
                       queries = acc.count;
                     }
                 end)
        in
        {
          sigma = entry.Bwc_dataset.Treeness.sigma;
          epsilon_avg = entry.Bwc_dataset.Treeness.epsilon_avg;
          bins = bins_out;
        })
      entries
  in
  { curves }

let monotone_in_fb curve =
  let rec check = function
    | a :: (b :: _ as rest) -> a.wpr <= b.wpr +. 0.05 && check rest
    | _ -> true
  in
  check curve.bins

let print output =
  List.iter
    (fun curve ->
      Report.table
        ~title:
          (Printf.sprintf "Fig.5 treeness: sigma=%.2f eps_avg=%.4f" curve.sigma
             curve.epsilon_avg)
        ~headers:[ "f_b"; "WPR"; "f_a*"; "WPR^f_a*"; "queries" ]
        (List.map
           (fun b ->
             [
               Report.f3 b.f_b;
               Report.f3 b.wpr;
               Report.f3 b.f_a_star;
               Report.f3 b.wpr_norm;
               Report.i b.queries;
             ])
           curve.bins))
    output.curves

let save_csv output path =
  let rows =
    List.concat_map
      (fun curve ->
        List.map
          (fun b ->
            [
              Printf.sprintf "%.2f" curve.sigma;
              Printf.sprintf "%.4f" curve.epsilon_avg;
              Report.f3 b.f_b;
              Report.f3 b.wpr;
              Report.f3 b.f_a_star;
              Report.f3 b.wpr_norm;
              Report.i b.queries;
            ])
          curve.bins)
      output.curves
  in
  Report.save_csv ~path
    ~headers:[ "sigma"; "epsilon_avg"; "f_b"; "wpr"; "f_a_star"; "wpr_norm"; "queries" ]
    rows
