(** E3 — Fig. 4: the tradeoff of decentralization.

    Sweeps the cluster-size constraint [k] and reports RR (Return Rate:
    found clusters over submitted queries) for the centralized and
    decentralized tree approaches.  The paper's qualitative results:
    decentralized RR is bounded by centralized RR at every [k]; the gap is
    negligible while [k] stays under ~20% of the system; both decay as
    queries get harder.  Also provides the E7 ablation over the [n_cut]
    knob that causes the gap. *)

type row = {
  k : int;
  rr_central : float;
  rr_decentral : float;
  queries : int;
}

type output = {
  dataset : string;
  n_cut : int;
  rows : row list; (** ascending k *)
}

val run :
  ?rounds:int -> ?per_k:int -> ?ks:int list -> ?n_cut:int -> seed:int ->
  Bwc_dataset.Dataset.t -> output
(** Defaults: 5 rounds, 4 queries per [k] per round, [ks] spanning 2 to
    ~half the dataset, [n_cut] 10 (the paper: 100 rounds, k up to 90/150,
    n_cut 10). *)

type ablation_row = {
  a_n_cut : int;
  a_rr : float; (** decentralized RR pooled over the k sweep *)
}

val ncut_ablation :
  ?rounds:int -> ?per_k:int -> ?ks:int list -> ?n_cuts:int list -> seed:int ->
  Bwc_dataset.Dataset.t -> ablation_row list

val print : output -> unit
val print_ablation : dataset:string -> ablation_row list -> unit

val save_csv : output -> string -> unit
