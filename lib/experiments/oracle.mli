(** E9 — ablation: what does the tree-metric assumption give up on real
    (noisy, non-tree) data?

    The clustering problem on real measurements is k-Clique (NP-complete,
    Sec. V); {!Bwc_core.Clique} decides it exactly.  This experiment runs
    Algorithm 1 directly on the measured distances (the tree assumption
    applied to data that is only approximately a tree metric) and
    compares against the exact oracle:

    - {b missed}: the oracle proves a cluster exists but Algorithm 1
      fails to find one (the [S*_pq] structure is incomplete off-tree);
    - {b invalid}: Algorithm 1 returns a cluster whose true diameter
      violates the constraint (Theorem 3.1's guarantee needs 4PC).

    Both rates should be small on nearly-tree data and grow with
    [epsilon_avg] — the structural explanation for Fig. 5. *)

type row = {
  k : int;
  queries : int;
  oracle_feasible : int; (** queries the exact solver proves feasible *)
  oracle_unknown : int;  (** oracle budget exhaustions (excluded from rates) *)
  alg1_found : int;
  missed : int;          (** oracle-feasible but Algorithm 1 found nothing *)
  invalid : int;         (** Algorithm 1 clusters violating the true constraint *)
}

type output = {
  dataset : string;
  epsilon_avg : float;
  rows : row list; (** ascending k *)
}

val run :
  ?ks:int list -> ?queries_per_k:int -> ?budget:int -> seed:int ->
  Bwc_dataset.Dataset.t -> output
(** Constraints are drawn uniformly from the 50th-98th percentile band
    (disagreements concentrate at demanding constraints); defaults: k in
    a small sweep, 30 queries per k. *)

val print : output -> unit

val save_csv : output -> string -> unit
