(** E1 — Fig. 3(a,c): clustering accuracy.

    Sends fixed-[k] queries with bandwidth constraints drawn uniformly
    from the dataset's 20th-80th percentile band and reports WPR (Wrong Pair Rate: wrong pairs over
    all pairs in all returned clusters) per constraint value, for the
    three approaches.  The paper's qualitative result: WPR grows with
    [b], and both tree approaches beat the Euclidean model at every
    [b]. *)

type row = {
  b : float;              (** mean constraint of the bin, Mbps *)
  wpr_tree_decentral : float;
  wpr_tree_central : float;
  wpr_eucl_central : float;
  queries : int;          (** queries contributing to this row *)
}

type output = {
  dataset : string;
  rows : row list;        (** ascending [b] *)
  rr_tree_decentral : float; (** overall return rates, for sanity *)
  rr_tree_central : float;
  rr_eucl_central : float;
}

val run :
  ?rounds:int -> ?queries_per_round:int -> ?k:int -> ?bins:int -> seed:int ->
  Bwc_dataset.Dataset.t -> output
(** Defaults: 3 rounds, 200 queries per round, [k] = 5% of the dataset,
    constraints uniform in the 20th-80th percentile band reported in
    [bins] = 6 bins (the paper: 10 rounds, 1000 queries, k = 5%). *)

val print : output -> unit

val save_csv : output -> string -> unit
(** Writes the per-bin series as CSV (for plotting). *)
