(** E8 — ablation of the prediction-framework construction choices: base
    selection (fixed root vs random leaf), end-node search (exact argmax
    vs budgeted anchor-guided), and ensemble size (median over trees).

    Reports embedding quality (median and 90th-percentile relative
    bandwidth error, and the rate of pairs whose bandwidth is
    over-predicted by 2x — the "false close" tail that poisons
    clustering) together with construction cost in measurements. *)

type row = {
  label : string;
  ensemble : int;
  p50 : float;
  p90 : float;
  over2x : float;        (** fraction of pairs with predicted >= 2x real *)
  measurements : int;
  full_mesh : int;       (** n*(n-1)/2, for comparison *)
}

val run :
  ?rounds:int -> ?sizes:int list -> seed:int -> Bwc_dataset.Dataset.t -> row list
(** Evaluates the four base/search mode combinations at ensemble size 1,
    plus the default decentralised mode at each ensemble size in [sizes]
    (default [1; 3; 5]), averaged over [rounds] (default 2). *)

val print : dataset:string -> row list -> unit
