(** E17: bwclusterd under overload.

    An offered-load sweep over the deterministic daemon reactor: each
    arm scripts [load x work_budget] requests per tick (two thirds
    queries, a quarter measurement gossip, a trickle of churn) through
    a fresh reactor via the in-memory {!Bwc_daemon.Script} transport,
    runs the same script twice, and accounts for every request.

    The acceptance claims:
    - goodput plateaus at service capacity instead of collapsing —
      overload is refused with typed queue_full/rate_limit sheds at
      admission, not absorbed into timeouts;
    - the accounting identity holds at every load: every well-formed
      request resolves to exactly one typed response — never a silent
      drop;
    - every degraded answer carries an explicit staleness bound
      ([max_staleness] reports the worst bound an arm served);
    - two same-seed runs are byte-identical (transcript and trace). *)

type row = {
  load : float;            (** offered load as a multiple of [work_budget] *)
  offered : int;           (** well-formed requests scripted *)
  answered_live : int;     (** answers served from the live path *)
  answered_degraded : int; (** index answers served while stale *)
  acked : int;             (** churn ingests acknowledged *)
  shed : int;              (** typed admission refusals *)
  timeouts : int;          (** typed deadline expiries *)
  rejected : int;          (** typed validation/ingest rejections *)
  goodput : float;         (** answers + acks per scripted tick *)
  shed_rate : float;       (** shed / offered *)
  max_staleness : int;     (** worst staleness bound any answer carried *)
  drain_ticks : int;       (** extra ticks past the horizon to drain *)
  deterministic : bool;    (** two same-seed runs byte-identical *)
  accounted : bool;        (** 1:1 request/response identity held *)
}

type t = {
  dataset : string;
  n : int;
  ticks : int;
  budget : int;            (** reactor work budget: items per tick *)
  seed : int;
  plateau : float;         (** max goodput over the sweep *)
  rows : row list;
}

val run :
  ?ticks:int ->
  ?loads:float list ->
  ?config:Bwc_daemon.Reactor.config ->
  seed:int ->
  Bwc_dataset.Dataset.t ->
  t
(** Defaults: 200 ticks per arm, loads [[0.5; 1.0; 2.0; 4.0]],
    {!Bwc_daemon.Reactor.default_config}. *)

val gate : ?tolerance:float -> t -> string list
(** Failure messages, empty when the gate passes: every arm accounted
    and byte-identical on replay, and the heaviest arm's goodput within
    [tolerance] (default 10%) of the sweep's plateau. *)

val print : t -> unit
val save_csv : t -> string -> unit

val save_json : t -> string -> unit
(** The machine-readable form CI archives and byte-compares across
    same-seed reruns. *)
