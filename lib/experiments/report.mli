(** Plain-text rendering of experiment outputs: aligned tables and simple
    series, printed by both the benchmark harness and the CLI. *)

val table :
  ?out:Format.formatter -> title:string -> headers:string list ->
  string list list -> unit
(** Column-aligned table with a title rule. *)

val f : float -> string
(** Standard float cell ([%.4g]). *)

val f3 : float -> string
(** Fixed three decimals, for rates in [0, 1]. *)

val i : int -> string

val series :
  ?out:Format.formatter -> title:string -> xlabel:string ->
  ylabels:string list -> (float * float list) list -> unit
(** A table whose first column is the x value. *)

val cdf_series :
  ?out:Format.formatter -> title:string -> resolution:int ->
  (string * Bwc_stats.Cdf.t) list -> unit
(** Quantile table for one or more CDFs side by side: rows are cumulative
    fractions, columns the corresponding value per CDF. *)

val save_csv : path:string -> headers:string list -> string list list -> unit
(** Writes a plain CSV file (header row first).  Cells containing commas
    or quotes are quoted. *)
