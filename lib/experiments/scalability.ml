module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

type row = {
  n : int;
  avg_hops : float;
  max_hops : int;
  rr : float;
  queries : int;
}

type output = {
  base_dataset : string;
  rows : row list;
}

let run ?(sizes = [ 50; 100; 150; 200; 250 ]) ?(subsets_per_size = 2)
    ?(queries_per_subset = 100) ?(rounds = 1) ~seed base =
  let base_n = Dataset.size base in
  let rows =
    List.map
      (fun n ->
        if n > base_n then
          invalid_arg "Scalability.run: subset size exceeds base dataset";
        let hops_sum = ref 0 and hops_max = ref 0 in
        let found = ref 0 and asked = ref 0 in
        for subset = 0 to subsets_per_size - 1 do
          let sub_rng = Rng.create (seed + (100 * n) + subset) in
          let ds = Dataset.random_subset base ~rng:sub_rng n in
          let lo, hi = Workload.bandwidth_range ds in
          for round = 0 to rounds - 1 do
            let sys = Bwc_core.System.create ~seed:(seed + (1000 * subset) + round) ds in
            let rng = Rng.create (seed + (10 * n) + (100 * subset) + round) in
            (* Queries: uniform k drawn from the 5%-30% range, constraint
               and submission host uniform. *)
            let ks_arr =
              Array.of_list (Workload.k_fraction_range ~n ~lo:0.05 ~hi:0.30 ~steps:6)
            in
            for _ = 1 to queries_per_subset do
              let k = ks_arr.(Rng.int rng (Array.length ks_arr)) in
              let b = Rng.uniform rng lo hi in
              let at = Rng.int rng n in
              let r = Bwc_core.System.query ~at sys ~k ~b in
              incr asked;
              if Bwc_core.Query.found r then begin
                incr found;
                hops_sum := !hops_sum + r.Bwc_core.Query.hops;
                hops_max := Stdlib.max !hops_max r.Bwc_core.Query.hops
              end
            done
          done
        done;
        {
          n;
          avg_hops =
            (if !found = 0 then 0.0 else float_of_int !hops_sum /. float_of_int !found);
          max_hops = !hops_max;
          rr = (if !asked = 0 then 0.0 else float_of_int !found /. float_of_int !asked);
          queries = !asked;
        })
      (List.sort compare sizes)
  in
  { base_dataset = base.Dataset.name; rows }

let concaveish output =
  match output.rows with
  | [] | [ _ ] | [ _; _ ] -> true
  | rows ->
      let arr = Array.of_list rows in
      let m = Array.length arr in
      let mid = m / 2 in
      let first = arr.(mid).avg_hops -. arr.(0).avg_hops in
      let second = arr.(m - 1).avg_hops -. arr.(mid).avg_hops in
      second <= first +. 0.75

let print output =
  Report.table
    ~title:(Printf.sprintf "Fig.6 query routing scalability -- %s" output.base_dataset)
    ~headers:[ "n"; "avg hops"; "max hops"; "RR"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.f3 r.avg_hops;
           Report.i r.max_hops;
           Report.f3 r.rr;
           Report.i r.queries;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path ~headers:[ "n"; "avg_hops"; "max_hops"; "rr"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.f3 r.avg_hops;
           Report.i r.max_hops;
           Report.f3 r.rr;
           Report.i r.queries;
         ])
       output.rows)
