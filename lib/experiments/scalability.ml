module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

type row = {
  n : int;
  avg_hops : float;
  max_hops : int;
  rr : float;
  queries : int;
}

type output = {
  base_dataset : string;
  rows : row list;
}

let run ?(sizes = [ 50; 100; 150; 200; 250 ]) ?(subsets_per_size = 2)
    ?(queries_per_subset = 100) ?(rounds = 1) ~seed base =
  let base_n = Dataset.size base in
  let rows =
    List.map
      (fun n ->
        if n > base_n then
          invalid_arg "Scalability.run: subset size exceeds base dataset";
        let hops_sum = ref 0 and hops_max = ref 0 in
        let found = ref 0 and asked = ref 0 in
        for subset = 0 to subsets_per_size - 1 do
          let sub_rng = Rng.create (seed + (100 * n) + subset) in
          let ds = Dataset.random_subset base ~rng:sub_rng n in
          let lo, hi = Workload.bandwidth_range ds in
          for round = 0 to rounds - 1 do
            let sys = Bwc_core.System.create ~seed:(seed + (1000 * subset) + round) ds in
            let rng = Rng.create (seed + (10 * n) + (100 * subset) + round) in
            (* Queries: uniform k drawn from the 5%-30% range, constraint
               and submission host uniform. *)
            let ks_arr =
              Array.of_list (Workload.k_fraction_range ~n ~lo:0.05 ~hi:0.30 ~steps:6)
            in
            for _ = 1 to queries_per_subset do
              let k = ks_arr.(Rng.int rng (Array.length ks_arr)) in
              let b = Rng.uniform rng lo hi in
              let at = Rng.int rng n in
              let r = Bwc_core.System.query ~at sys ~k ~b in
              incr asked;
              if Bwc_core.Query.found r then begin
                incr found;
                hops_sum := !hops_sum + r.Bwc_core.Query.hops;
                hops_max := Stdlib.max !hops_max r.Bwc_core.Query.hops
              end
            done
          done
        done;
        {
          n;
          avg_hops =
            (if !found = 0 then 0.0 else float_of_int !hops_sum /. float_of_int !found);
          max_hops = !hops_max;
          rr = (if !asked = 0 then 0.0 else float_of_int !found /. float_of_int !asked);
          queries = !asked;
        })
      (List.sort compare sizes)
  in
  { base_dataset = base.Dataset.name; rows }

let concaveish output =
  match output.rows with
  | [] | [ _ ] | [ _; _ ] -> true
  | rows ->
      let arr = Array.of_list rows in
      let m = Array.length arr in
      let mid = m / 2 in
      let first = arr.(mid).avg_hops -. arr.(0).avg_hops in
      let second = arr.(m - 1).avg_hops -. arr.(mid).avg_hops in
      second <= first +. 0.75

(* ----- E14: incremental index maintenance under churn ----- *)

module Index = Bwc_core.Find_cluster.Index
module Coreset = Bwc_core.Find_cluster.Coreset
module CSummary = Bwc_metric.Coreset
module Span = Bwc_obs.Span

type exact_arm = Full_with_rebuild | Full | Sampled of int

type churn_row = {
  cn : int;
  events : int;
  incremental_s : float;
  rebuild_s : float;
  coreset_s : float;
  speedup : float;
  coreset_speedup : float;
  checks : int;
  divergence : int;
  bound_checks : int;
  bound_violations : int;
  rel_width : float;
  exact_arm : string;
}

let arm_label = function
  | Full_with_rebuild -> "full+rebuild"
  | Full -> "full"
  | Sampled s -> Printf.sprintf "sampled/%d" s

(* drive one churn sequence over a fixed universe space.  Up to three
   arms run side by side depending on [arm]:
   - the coreset index always absorbs each event (O(k^2 * deg * depth));
   - [Full]/[Full_with_rebuild] also maintain the exact index as an
     O(n^2) delta and bracket-check every differential probe against
     the coreset's certified interval;
   - [Full_with_rebuild] additionally pays a fresh O(n^3)
     [Index.build_subset] per event — the original rebuild baseline,
     intractable past a few hundred points, hence gated by size;
   - [Sampled s] drops the exact index entirely (n in the thousands) and
     every [s]-th event spot-checks the interval against a ground truth
     restricted to summary-representative pairs: for reps u, v with
     d(u,v) <= l, |S*_uv| is computed by an O(k^2 * n) member scan, and
     lo <= max_pair |S*_uv| <= hi is a theorem on metric spaces (the
     certified lo comes from exactly those pairs; hi dominates all
     member pairs, reps included). *)
let churn_one ~rng ~space ~events ~checks_per_event ~coreset_k ~arm =
  let n = space.Bwc_metric.Space.n in
  let dist = space.Bwc_metric.Space.dist in
  let is_member = Array.make n false in
  let initial = Rng.sample_without_replacement rng (Stdlib.max 2 (3 * n / 4)) n in
  Array.iter (fun h -> is_member.(h) <- true) initial;
  let members () =
    List.filter (fun h -> is_member.(h)) (List.init n Fun.id)
  in
  let ds_values =
    Bwc_metric.Dmatrix.off_diagonal_values (Bwc_metric.Space.to_dmatrix space)
  in
  let lo = Bwc_stats.Summary.percentile ds_values 5.0
  and hi = Bwc_stats.Summary.percentile ds_values 95.0 in
  let inc_span = Span.create "incremental"
  and reb_span = Span.create "rebuild"
  and cor_span = Span.create "coreset" in
  let idx =
    match arm with
    | Sampled _ -> None
    | Full | Full_with_rebuild -> Some (Index.build_subset space (members ()))
  in
  let cor = Coreset.of_members ~k:coreset_k space (members ()) in
  let divergence = ref 0 and checks = ref 0 in
  let bound_checks = ref 0 and bound_violations = ref 0 in
  let width_sum = ref 0.0 in
  let record_interval (iv : Coreset.interval) =
    incr bound_checks;
    width_sum :=
      !width_sum
      +. (float_of_int (iv.hi - iv.lo) /. float_of_int (Stdlib.max 1 iv.hi))
  in
  (* exact max cluster size over summary-representative pairs only
     (diagonal included, so non-empty membership scores at least 1 —
     matching the interval's floor) *)
  let spot_exact ~l =
    let reps = CSummary.reps (Coreset.summary cor) in
    let m = Array.length reps in
    let best = ref 0 in
    for i = 0 to m - 1 do
      for j = i to m - 1 do
        let u = reps.(i).CSummary.host and v = reps.(j).CSummary.host in
        let duv = dist u v in
        if duv <= l then begin
          let count = ref 0 in
          for x = 0 to n - 1 do
            if is_member.(x) && dist x u <= duv && dist x v <= duv then
              incr count
          done;
          best := Stdlib.max !best !count
        end
      done
    done;
    !best
  in
  for event = 1 to events do
    let ins = List.filter (fun h -> not is_member.(h)) (List.init n Fun.id) in
    let outs = members () in
    (* joins and leaves alternate at random, never emptying the system
       or overfilling the universe *)
    let joining =
      match ins, outs with
      | [], _ -> false
      | _, ([] | [ _ ]) -> true
      | _ -> Rng.bool rng
    in
    let h = Rng.choose rng (Array.of_list (if joining then ins else outs)) in
    is_member.(h) <- joining;
    (match idx with
    | Some idx ->
        Span.time inc_span (fun () ->
            if joining then Index.add_host idx h else Index.remove_host idx h)
    | None -> ());
    Span.time cor_span (fun () ->
        if joining then Coreset.add cor h else Coreset.remove cor h);
    let rebuilt =
      match arm, idx with
      | Full_with_rebuild, Some _ ->
          Some (Span.time reb_span (fun () -> Index.build_subset space (members ())))
      | _ -> None
    in
    (match idx with
    | Some idx ->
        let a = Index.size idx in
        for _ = 1 to checks_per_event do
          incr checks;
          let k = 2 + Rng.int rng (Stdlib.max 1 (a - 1)) in
          let l = Rng.uniform rng lo hi in
          (match rebuilt with
          | Some rebuilt ->
              if Index.exists idx ~k ~l <> Index.exists rebuilt ~k ~l then
                incr divergence;
              if Index.max_size idx ~l <> Index.max_size rebuilt ~l then
                incr divergence;
              if Index.find idx ~k ~l <> Index.find rebuilt ~k ~l then
                incr divergence
          | None -> ());
          (* the coreset interval must bracket the exact answer *)
          let exact = Index.max_size idx ~l in
          let iv = Coreset.max_size cor ~l in
          record_interval iv;
          if not (iv.lo <= exact && exact <= iv.hi) then incr bound_violations;
          (match Coreset.exists cor ~k ~l with
          | `Yes -> if not (Index.exists idx ~k ~l) then incr bound_violations
          | `No -> if Index.exists idx ~k ~l then incr bound_violations
          | `Maybe -> ());
          match Coreset.find cor ~k ~l with
          | Some _ -> if not (Index.exists idx ~k ~l) then incr bound_violations
          | None -> ()
        done
    | None ->
        (match arm with
        | Sampled s when event mod s = 0 ->
            let a = Coreset.size cor in
            for _ = 1 to 2 do
              incr checks;
              let l = Rng.uniform rng lo hi in
              let iv = Coreset.max_size cor ~l in
              record_interval iv;
              let spot = spot_exact ~l in
              if not (iv.lo <= spot && spot <= iv.hi) then
                incr bound_violations;
              let k = 2 + Rng.int rng (Stdlib.max 1 (a - 1)) in
              match Coreset.find cor ~k ~l with
              | Some cl ->
                  if List.length cl < k || List.exists (fun x -> not is_member.(x)) cl
                  then incr bound_violations
              | None -> ()
            done
        | _ -> ()))
  done;
  let incremental_s = Span.total_s inc_span
  and rebuild_s = Span.total_s reb_span
  and coreset_s = Span.total_s cor_span in
  {
    cn = n;
    events;
    incremental_s;
    rebuild_s;
    coreset_s;
    speedup =
      (match arm with
      | Full_with_rebuild -> rebuild_s /. Float.max 1e-9 incremental_s
      | Full | Sampled _ -> 0.0);
    coreset_speedup =
      (match arm with
      | Full_with_rebuild | Full -> incremental_s /. Float.max 1e-9 coreset_s
      | Sampled _ -> 0.0);
    checks = !checks;
    divergence = !divergence;
    bound_checks = !bound_checks;
    bound_violations = !bound_violations;
    rel_width =
      (if !bound_checks = 0 then 0.0
       else !width_sum /. float_of_int !bound_checks);
    exact_arm = arm_label arm;
  }

let churn_sweep ?(sizes = [ 64; 128; 256 ]) ?(events_per_size = 16)
    ?(checks_per_event = 4) ?(coreset_k = Coreset.default_k)
    ?(rebuild_max = 256) ?(exact_max = 1024) ?(sample_stride = 4) ~seed () =
  List.map
    (fun n ->
      let rng = Rng.create (seed + (13 * n)) in
      let space =
        Bwc_metric.Space.of_dmatrix
          (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create (seed + n)) ~n ())
      in
      let arm =
        if n <= rebuild_max then Full_with_rebuild
        else if n <= exact_max then Full
        else Sampled sample_stride
      in
      churn_one ~rng ~space ~events:events_per_size ~checks_per_event
        ~coreset_k ~arm)
    (List.sort compare sizes)

let churn_divergence rows = List.fold_left (fun acc r -> acc + r.divergence) 0 rows

let churn_bound_violations rows =
  List.fold_left (fun acc r -> acc + r.bound_violations) 0 rows

let print_churn rows =
  let off = "-" in
  Report.table ~title:"E14 incremental index maintenance under churn"
    ~headers:
      [
        "n"; "events"; "exact arm"; "incremental"; "rebuild"; "coreset";
        "speedup"; "cs speedup"; "checks"; "diverged"; "bchecks"; "bviol";
        "width";
      ]
    (List.map
       (fun r ->
         let ms label s = if s then Printf.sprintf "%.2f ms" (1e3 *. label) else off in
         let have_rebuild = String.equal r.exact_arm "full+rebuild" in
         let have_exact = have_rebuild || String.equal r.exact_arm "full" in
         [
           Report.i r.cn;
           Report.i r.events;
           r.exact_arm;
           ms r.incremental_s have_exact;
           ms r.rebuild_s have_rebuild;
           Printf.sprintf "%.2f ms" (1e3 *. r.coreset_s);
           (if have_rebuild then Printf.sprintf "%.1fx" r.speedup else off);
           (if have_exact then Printf.sprintf "%.1fx" r.coreset_speedup else off);
           Report.i r.checks;
           (if have_rebuild then string_of_int r.divergence else off);
           Report.i r.bound_checks;
           Report.i r.bound_violations;
           Printf.sprintf "%.3f" r.rel_width;
         ])
       rows)

let save_churn_json rows ~seed path =
  let oc = open_out path in
  let row_json r =
    Printf.sprintf
      "    {\"n\": %d, \"events\": %d, \"exact_arm\": \"%s\", \
       \"incremental_s\": %.6f, \"rebuild_s\": %.6f, \"coreset_s\": %.6f, \
       \"speedup\": %.2f, \"coreset_speedup\": %.2f, \"checks\": %d, \
       \"divergence\": %d, \"bound_checks\": %d, \"bound_violations\": %d, \
       \"rel_width\": %.4f}"
      r.cn r.events r.exact_arm r.incremental_s r.rebuild_s r.coreset_s
      r.speedup r.coreset_speedup r.checks r.divergence r.bound_checks
      r.bound_violations r.rel_width
  in
  Printf.fprintf oc "{\n  \"bench\": \"index_churn\",\n  \"seed\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
    seed
    (String.concat ",\n" (List.map row_json rows));
  close_out oc

let print output =
  Report.table
    ~title:(Printf.sprintf "Fig.6 query routing scalability -- %s" output.base_dataset)
    ~headers:[ "n"; "avg hops"; "max hops"; "RR"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.f3 r.avg_hops;
           Report.i r.max_hops;
           Report.f3 r.rr;
           Report.i r.queries;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path ~headers:[ "n"; "avg_hops"; "max_hops"; "rr"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.f3 r.avg_hops;
           Report.i r.max_hops;
           Report.f3 r.rr;
           Report.i r.queries;
         ])
       output.rows)
