module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

type row = {
  n : int;
  avg_hops : float;
  max_hops : int;
  rr : float;
  queries : int;
}

type output = {
  base_dataset : string;
  rows : row list;
}

let run ?(sizes = [ 50; 100; 150; 200; 250 ]) ?(subsets_per_size = 2)
    ?(queries_per_subset = 100) ?(rounds = 1) ~seed base =
  let base_n = Dataset.size base in
  let rows =
    List.map
      (fun n ->
        if n > base_n then
          invalid_arg "Scalability.run: subset size exceeds base dataset";
        let hops_sum = ref 0 and hops_max = ref 0 in
        let found = ref 0 and asked = ref 0 in
        for subset = 0 to subsets_per_size - 1 do
          let sub_rng = Rng.create (seed + (100 * n) + subset) in
          let ds = Dataset.random_subset base ~rng:sub_rng n in
          let lo, hi = Workload.bandwidth_range ds in
          for round = 0 to rounds - 1 do
            let sys = Bwc_core.System.create ~seed:(seed + (1000 * subset) + round) ds in
            let rng = Rng.create (seed + (10 * n) + (100 * subset) + round) in
            (* Queries: uniform k drawn from the 5%-30% range, constraint
               and submission host uniform. *)
            let ks_arr =
              Array.of_list (Workload.k_fraction_range ~n ~lo:0.05 ~hi:0.30 ~steps:6)
            in
            for _ = 1 to queries_per_subset do
              let k = ks_arr.(Rng.int rng (Array.length ks_arr)) in
              let b = Rng.uniform rng lo hi in
              let at = Rng.int rng n in
              let r = Bwc_core.System.query ~at sys ~k ~b in
              incr asked;
              if Bwc_core.Query.found r then begin
                incr found;
                hops_sum := !hops_sum + r.Bwc_core.Query.hops;
                hops_max := Stdlib.max !hops_max r.Bwc_core.Query.hops
              end
            done
          done
        done;
        {
          n;
          avg_hops =
            (if !found = 0 then 0.0 else float_of_int !hops_sum /. float_of_int !found);
          max_hops = !hops_max;
          rr = (if !asked = 0 then 0.0 else float_of_int !found /. float_of_int !asked);
          queries = !asked;
        })
      (List.sort compare sizes)
  in
  { base_dataset = base.Dataset.name; rows }

let concaveish output =
  match output.rows with
  | [] | [ _ ] | [ _; _ ] -> true
  | rows ->
      let arr = Array.of_list rows in
      let m = Array.length arr in
      let mid = m / 2 in
      let first = arr.(mid).avg_hops -. arr.(0).avg_hops in
      let second = arr.(m - 1).avg_hops -. arr.(mid).avg_hops in
      second <= first +. 0.75

(* ----- E14: incremental index maintenance under churn ----- *)

module Index = Bwc_core.Find_cluster.Index
module Span = Bwc_obs.Span

type churn_row = {
  cn : int;
  events : int;
  incremental_s : float;
  rebuild_s : float;
  speedup : float;
  checks : int;
  divergence : int;
}

(* drive one churn sequence over a fixed universe space: the maintained
   index absorbs each membership event as an O(n^2) delta while the
   rebuild arm pays a fresh O(n^3) [Index.build_subset]; every event the
   two are differentially compared on random queries *)
let churn_one ~rng ~space ~events ~checks_per_event =
  let n = space.Bwc_metric.Space.n in
  let is_member = Array.make n false in
  let initial = Rng.sample_without_replacement rng (Stdlib.max 2 (3 * n / 4)) n in
  Array.iter (fun h -> is_member.(h) <- true) initial;
  let members () =
    List.filter (fun h -> is_member.(h)) (List.init n Fun.id)
  in
  let ds_values =
    Bwc_metric.Dmatrix.off_diagonal_values (Bwc_metric.Space.to_dmatrix space)
  in
  let lo = Bwc_stats.Summary.percentile ds_values 5.0
  and hi = Bwc_stats.Summary.percentile ds_values 95.0 in
  let inc_span = Span.create "incremental" and reb_span = Span.create "rebuild" in
  let idx = Index.build_subset space (members ()) in
  let divergence = ref 0 and checks = ref 0 in
  for _ = 1 to events do
    let ins = List.filter (fun h -> not is_member.(h)) (List.init n Fun.id) in
    let outs = members () in
    (* joins and leaves alternate at random, never emptying the system
       or overfilling the universe *)
    let joining =
      match ins, outs with
      | [], _ -> false
      | _, ([] | [ _ ]) -> true
      | _ -> Rng.bool rng
    in
    let h = Rng.choose rng (Array.of_list (if joining then ins else outs)) in
    is_member.(h) <- joining;
    Span.time inc_span (fun () ->
        if joining then Index.add_host idx h else Index.remove_host idx h);
    let rebuilt = Span.time reb_span (fun () -> Index.build_subset space (members ())) in
    let a = Index.size idx in
    for _ = 1 to checks_per_event do
      incr checks;
      let k = 2 + Rng.int rng (Stdlib.max 1 (a - 1)) in
      let l = Rng.uniform rng lo hi in
      if Index.exists idx ~k ~l <> Index.exists rebuilt ~k ~l then incr divergence;
      if Index.max_size idx ~l <> Index.max_size rebuilt ~l then incr divergence;
      if Index.find idx ~k ~l <> Index.find rebuilt ~k ~l then incr divergence
    done
  done;
  (Span.total_s inc_span, Span.total_s reb_span, !checks, !divergence)

let churn_sweep ?(sizes = [ 64; 128; 256 ]) ?(events_per_size = 16)
    ?(checks_per_event = 4) ~seed () =
  List.map
    (fun n ->
      let rng = Rng.create (seed + (13 * n)) in
      let space =
        Bwc_metric.Space.of_dmatrix
          (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create (seed + n)) ~n ())
      in
      let incremental_s, rebuild_s, checks, divergence =
        churn_one ~rng ~space ~events:events_per_size ~checks_per_event
      in
      {
        cn = n;
        events = events_per_size;
        incremental_s;
        rebuild_s;
        speedup = rebuild_s /. Float.max 1e-9 incremental_s;
        checks;
        divergence;
      })
    (List.sort compare sizes)

let churn_divergence rows = List.fold_left (fun acc r -> acc + r.divergence) 0 rows

let print_churn rows =
  Report.table ~title:"E14 incremental index maintenance under churn"
    ~headers:[ "n"; "events"; "incremental"; "rebuild"; "speedup"; "checks"; "diverged" ]
    (List.map
       (fun r ->
         [
           Report.i r.cn;
           Report.i r.events;
           Printf.sprintf "%.2f ms" (1e3 *. r.incremental_s);
           Printf.sprintf "%.2f ms" (1e3 *. r.rebuild_s);
           Printf.sprintf "%.1fx" r.speedup;
           Report.i r.checks;
           Report.i r.divergence;
         ])
       rows)

let save_churn_json rows ~seed path =
  let oc = open_out path in
  let row_json r =
    Printf.sprintf
      "    {\"n\": %d, \"events\": %d, \"incremental_s\": %.6f, \"rebuild_s\": %.6f, \
       \"speedup\": %.2f, \"checks\": %d, \"divergence\": %d}"
      r.cn r.events r.incremental_s r.rebuild_s r.speedup r.checks r.divergence
  in
  Printf.fprintf oc "{\n  \"bench\": \"index_churn\",\n  \"seed\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
    seed
    (String.concat ",\n" (List.map row_json rows));
  close_out oc

let print output =
  Report.table
    ~title:(Printf.sprintf "Fig.6 query routing scalability -- %s" output.base_dataset)
    ~headers:[ "n"; "avg hops"; "max hops"; "RR"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.f3 r.avg_hops;
           Report.i r.max_hops;
           Report.f3 r.rr;
           Report.i r.queries;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path ~headers:[ "n"; "avg_hops"; "max_hops"; "rr"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.f3 r.avg_hops;
           Report.i r.max_hops;
           Report.f3 r.rr;
           Report.i r.queries;
         ])
       output.rows)
