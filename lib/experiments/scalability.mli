(** E5 — Fig. 6: scalability of query routing.

    Random sub-datasets of increasing size [n] each get a fresh
    decentralized system; queries with [k] between 5% and 30% of [n]
    are submitted at random hosts and the mean number of routing hops is
    reported per [n].  The paper's qualitative result: hop counts are
    small (around 2-3) and grow slowly and concavely with [n]. *)

type row = {
  n : int;
  avg_hops : float;   (** over answered queries *)
  max_hops : int;
  rr : float;
  queries : int;
}

type output = {
  base_dataset : string;
  rows : row list; (** ascending n *)
}

val run :
  ?sizes:int list -> ?subsets_per_size:int -> ?queries_per_subset:int ->
  ?rounds:int -> seed:int -> Bwc_dataset.Dataset.t -> output
(** Draws subsets from the given base dataset (the paper uses
    UMD-PlanetLab, sizes 50-300, 10 subsets each, 1000 queries, 10
    rounds; defaults here: sizes 50-250 step 50, 2 subsets, 100 queries,
    1 round). *)

val concaveish : output -> bool
(** Growth sanity used by tests: the hop increment over the second half of
    the size range does not exceed the increment over the first half by
    more than a small slack. *)

val print : output -> unit

val save_csv : output -> string -> unit

(** {2 E14 — incremental index maintenance under churn}

    A fixed tree-metric universe per size [n]; membership churns through
    random joins and leaves.  The maintained {!Bwc_core.Find_cluster.Index}
    absorbs each event as an O(n^2) delta while a second arm rebuilds
    from scratch at O(n^3); both arms are timed (via {!Bwc_obs.Span}) and
    differentially compared on random [(k, l)] queries after every
    event.  Any divergence is a correctness bug; the timing ratio is the
    speedup the dynamic hot path gains from incremental maintenance. *)

type churn_row = {
  cn : int;             (** universe size *)
  events : int;         (** membership events applied *)
  incremental_s : float;(** wall seconds spent applying deltas *)
  rebuild_s : float;    (** wall seconds spent rebuilding per event *)
  speedup : float;      (** [rebuild_s /. incremental_s] *)
  checks : int;         (** differential query comparisons *)
  divergence : int;     (** disagreements — must be 0 *)
}

val churn_sweep :
  ?sizes:int list -> ?events_per_size:int -> ?checks_per_event:int ->
  seed:int -> unit -> churn_row list
(** Defaults: sizes 64/128/256, 16 events per size, 4 differential
    checks per event.  Rows ascend in [n]. *)

val churn_divergence : churn_row list -> int
(** Total disagreements across the sweep (the acceptance gate). *)

val print_churn : churn_row list -> unit

val save_churn_json : churn_row list -> seed:int -> string -> unit
(** Writes the sweep as JSON ([BENCH_index.json] schema; see
    EXPERIMENTS.md E14). *)
