(** E5 — Fig. 6: scalability of query routing.

    Random sub-datasets of increasing size [n] each get a fresh
    decentralized system; queries with [k] between 5% and 30% of [n]
    are submitted at random hosts and the mean number of routing hops is
    reported per [n].  The paper's qualitative result: hop counts are
    small (around 2-3) and grow slowly and concavely with [n]. *)

type row = {
  n : int;
  avg_hops : float;   (** over answered queries *)
  max_hops : int;
  rr : float;
  queries : int;
}

type output = {
  base_dataset : string;
  rows : row list; (** ascending n *)
}

val run :
  ?sizes:int list -> ?subsets_per_size:int -> ?queries_per_subset:int ->
  ?rounds:int -> seed:int -> Bwc_dataset.Dataset.t -> output
(** Draws subsets from the given base dataset (the paper uses
    UMD-PlanetLab, sizes 50-300, 10 subsets each, 1000 queries, 10
    rounds; defaults here: sizes 50-250 step 50, 2 subsets, 100 queries,
    1 round). *)

val concaveish : output -> bool
(** Growth sanity used by tests: the hop increment over the second half of
    the size range does not exceed the increment over the first half by
    more than a small slack. *)

val print : output -> unit

val save_csv : output -> string -> unit
