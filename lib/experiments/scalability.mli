(** E5 — Fig. 6: scalability of query routing.

    Random sub-datasets of increasing size [n] each get a fresh
    decentralized system; queries with [k] between 5% and 30% of [n]
    are submitted at random hosts and the mean number of routing hops is
    reported per [n].  The paper's qualitative result: hop counts are
    small (around 2-3) and grow slowly and concavely with [n]. *)

type row = {
  n : int;
  avg_hops : float;   (** over answered queries *)
  max_hops : int;
  rr : float;
  queries : int;
}

type output = {
  base_dataset : string;
  rows : row list; (** ascending n *)
}

val run :
  ?sizes:int list -> ?subsets_per_size:int -> ?queries_per_subset:int ->
  ?rounds:int -> seed:int -> Bwc_dataset.Dataset.t -> output
(** Draws subsets from the given base dataset (the paper uses
    UMD-PlanetLab, sizes 50-300, 10 subsets each, 1000 queries, 10
    rounds; defaults here: sizes 50-250 step 50, 2 subsets, 100 queries,
    1 round). *)

val concaveish : output -> bool
(** Growth sanity used by tests: the hop increment over the second half of
    the size range does not exceed the increment over the first half by
    more than a small slack. *)

val print : output -> unit

val save_csv : output -> string -> unit

(** {2 E14 — incremental index maintenance under churn}

    A fixed tree-metric universe per size [n]; membership churns through
    random joins and leaves.  Three arms run side by side, gated by size:

    - the approximate {!Bwc_core.Find_cluster.Coreset} index always
      absorbs each event (O(k^2 · degree · depth) per delta);
    - at [n <= exact_max] the exact {!Bwc_core.Find_cluster.Index} is
      also maintained as an O(n^2) delta, and after every event random
      [(k, l)] probes assert that the coreset's certified interval
      brackets the exact answer ([lo <= exact <= hi], tri-state [exists]
      consistent, [find] results feasible);
    - at [n <= rebuild_max] a third arm rebuilds the exact index from
      scratch at O(n^3) per event (the original rebuild baseline —
      intractable past a few hundred points, which is exactly why it is
      size-gated) and is differentially compared against the maintained
      exact index.

    Past [exact_max] the exact index is dropped entirely and every
    [sample_stride]-th event spot-checks the interval against a ground
    truth restricted to summary-representative pairs (an O(k^2 · n)
    member scan — [lo <= max |S*_uv| <= hi] over rep pairs is a theorem
    on metric spaces).  Any divergence or bound violation is a
    correctness bug; the timing ratios are the speedups of delta over
    rebuild and of coreset over exact delta. *)

type exact_arm = Full_with_rebuild | Full | Sampled of int
(** Which exact-side work runs at a given size; [Sampled s] spot-checks
    every [s]-th event. *)

type churn_row = {
  cn : int;              (** universe size *)
  events : int;          (** membership events applied *)
  incremental_s : float; (** exact-index delta seconds (0 when arm off) *)
  rebuild_s : float;     (** per-event rebuild seconds (0 when arm off) *)
  coreset_s : float;     (** coreset delta seconds *)
  speedup : float;       (** [rebuild_s /. incremental_s]; 0 when no rebuild arm *)
  coreset_speedup : float; (** [incremental_s /. coreset_s]; 0 when no exact arm *)
  checks : int;          (** differential / spot probes *)
  divergence : int;      (** exact-vs-rebuilt disagreements — must be 0 *)
  bound_checks : int;    (** certified intervals inspected *)
  bound_violations : int;(** bracket failures — must be 0 *)
  rel_width : float;     (** mean [(hi - lo) / max 1 hi] over bound checks *)
  exact_arm : string;    (** ["full+rebuild"], ["full"] or ["sampled/<s>"] *)
}

val arm_label : exact_arm -> string

val churn_sweep :
  ?sizes:int list -> ?events_per_size:int -> ?checks_per_event:int ->
  ?coreset_k:int -> ?rebuild_max:int -> ?exact_max:int ->
  ?sample_stride:int -> seed:int -> unit -> churn_row list
(** Defaults: sizes 64/128/256, 16 events per size, 4 differential
    checks per event, coreset size {!Bwc_core.Find_cluster.Coreset.default_k},
    rebuild arm up to n = 256, maintained exact arm up to n = 1024,
    spot-checks every 4th event beyond.  Rows ascend in [n]. *)

val churn_divergence : churn_row list -> int
(** Total exact-vs-rebuilt disagreements (acceptance gate #1). *)

val churn_bound_violations : churn_row list -> int
(** Total certified-interval bracket failures (acceptance gate #2). *)

val print_churn : churn_row list -> unit

val save_churn_json : churn_row list -> seed:int -> string -> unit
(** Writes the sweep as JSON ([BENCH_index.json] schema; see
    EXPERIMENTS.md E14). *)
