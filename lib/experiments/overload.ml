(* E17: bwclusterd under overload.

   An offered-load sweep over the deterministic reactor: each arm
   scripts [load x work_budget] requests per tick (queries, measurement
   gossip, a trickle of churn) through a fresh daemon via the in-memory
   Script transport, runs the same script twice, and accounts for every
   request.

   The claims under test:
   - goodput (answers per tick) rises with load, then plateaus at
     service capacity instead of collapsing — overload is shed with
     typed queue_full/rate_limit refusals at the door, not absorbed
     into timeouts;
   - the accounting identity holds at every load: every well-formed
     request resolves to exactly one typed response (answer, ack,
     shed, timeout, or rejection) — never a silent drop;
   - every degraded answer carries an explicit staleness bound, and the
     arm reports the worst bound it served;
   - the same seed replays byte-identically (transcript and trace). *)

module Rng = Bwc_stats.Rng
module Trace = Bwc_obs.Trace
module Dynamic = Bwc_core.Dynamic
module Reactor = Bwc_daemon.Reactor
module Script = Bwc_daemon.Script
module Wire = Bwc_daemon.Wire

type row = {
  load : float;            (* offered load as a multiple of work_budget *)
  offered : int;           (* well-formed requests scripted *)
  answered_live : int;     (* answers served from the live path *)
  answered_degraded : int; (* answers served from the index while stale *)
  acked : int;             (* churn ingests acknowledged *)
  shed : int;              (* typed admission refusals *)
  timeouts : int;          (* typed deadline expiries *)
  rejected : int;          (* typed validation/ingest rejections *)
  goodput : float;         (* answers + acks per scripted tick *)
  shed_rate : float;       (* shed / offered *)
  max_staleness : int;     (* worst staleness bound any answer carried *)
  drain_ticks : int;       (* extra ticks past the horizon to drain *)
  deterministic : bool;    (* two same-seed runs byte-identical *)
  accounted : bool;        (* 1:1 request/response identity held *)
}

type t = {
  dataset : string;
  n : int;
  ticks : int;
  budget : int;           (* reactor work_budget: items per tick *)
  seed : int;
  plateau : float;        (* max goodput over the sweep *)
  rows : row list;
}

(* request mix per scripted line: mostly queries, a quarter gossip, a
   trickle of churn so the daemon keeps re-dirtying under load *)
let scripted_line rng ~n ~id =
  let pick = Rng.int rng 100 in
  if pick < 66 then
    Printf.sprintf "QUERY %s k=%d b=%f" id (2 + Rng.int rng 3)
      (1. +. Rng.float rng 40.)
  else if pick < 92 then
    Printf.sprintf "MEAS %s src=%d dst=%d bw=%f" id (Rng.int rng n)
      (Rng.int rng n)
      (1. +. Rng.float rng 80.)
  else if pick < 96 then Printf.sprintf "JOIN %s host=%d" id (Rng.int rng n)
  else Printf.sprintf "LEAVE %s host=%d" id (Rng.int rng n)

(* the offered schedule: a fractional accumulator turns [load x budget]
   requests/tick into an integer count per tick without drift *)
let script ~rng ~n ~ticks ~per_tick =
  let acc = ref 0. in
  List.concat
    (List.init ticks (fun at ->
         acc := !acc +. per_tick;
         let k = int_of_float !acc in
         acc := !acc -. float_of_int k;
         List.init k (fun i ->
             Script.line ~at ~conn:(i mod 4)
               (scripted_line rng ~n ~id:(Printf.sprintf "r%d_%d" at i)))))

let run_once ~config ~seed ~ds entries =
  let trace = Trace.create () in
  let dyn = Dynamic.create ~seed ds in
  let reactor = Reactor.create ~trace config dyn in
  let events = Script.run reactor entries in
  (events, Script.transcript events, Trace.to_jsonl trace)

let arm ~config ~seed ~ds ~n ~ticks ~budget load =
  let entries =
    script
      ~rng:(Rng.create (seed + int_of_float (load *. 1000.)))
      ~n ~ticks
      ~per_tick:(load *. float_of_int budget)
  in
  let events, t1, tr1 = run_once ~config ~seed ~ds entries in
  let _, t2, tr2 = run_once ~config ~seed ~ds entries in
  let deterministic = String.equal t1 t2 && String.equal tr1 tr2 in
  let answered_live = ref 0
  and answered_degraded = ref 0
  and acked = ref 0
  and shed = ref 0
  and timeouts = ref 0
  and rejected = ref 0
  and max_staleness = ref 0
  and last_tick = ref 0 in
  let counts = Hashtbl.create 1024 in
  let count id =
    Hashtbl.replace counts id
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
  in
  List.iter
    (fun (e : Script.event) ->
      last_tick := max !last_tick e.Script.tick;
      match e.Script.response with
      | Wire.Answer { id; degraded; staleness; _ } ->
          if degraded then incr answered_degraded else incr answered_live;
          max_staleness := max !max_staleness staleness;
          count id
      | Wire.Acked { id; _ } ->
          incr acked;
          count id
      | Wire.Shed { id; _ } ->
          incr shed;
          count id
      | Wire.Timeout { id; _ } ->
          incr timeouts;
          count id
      | Wire.Rejected { id; _ } ->
          incr rejected;
          count id
      | _ -> ())
    events;
  let accounted =
    Hashtbl.length counts = List.length entries
    && List.for_all
         (fun (e : Script.entry) ->
           match String.split_on_char ' ' e.Script.line with
           | _ :: id :: _ -> Hashtbl.find_opt counts id = Some 1
           | _ -> false)
         entries
  in
  let offered = List.length entries in
  let served = !answered_live + !answered_degraded + !acked in
  {
    load;
    offered;
    answered_live = !answered_live;
    answered_degraded = !answered_degraded;
    acked = !acked;
    shed = !shed;
    timeouts = !timeouts;
    rejected = !rejected;
    goodput = float_of_int served /. float_of_int ticks;
    shed_rate =
      (if offered = 0 then 0. else float_of_int !shed /. float_of_int offered);
    max_staleness = !max_staleness;
    drain_ticks = max 0 (!last_tick - (ticks - 1));
    deterministic;
    accounted;
  }

let run ?(ticks = 200) ?(loads = [ 0.5; 1.0; 2.0; 4.0 ])
    ?(config = Reactor.default_config) ~seed ds =
  let n = Bwc_dataset.Dataset.size ds in
  let budget = config.Reactor.work_budget in
  let rows = List.map (arm ~config ~seed ~ds ~n ~ticks ~budget) loads in
  let plateau = List.fold_left (fun m r -> Float.max m r.goodput) 0. rows in
  { dataset = ds.Bwc_dataset.Dataset.name; n; ticks; budget; seed; plateau; rows }

let gate ?(tolerance = 0.10) (out : t) =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun r ->
      if not r.accounted then
        fail "load %.1fx: request/response accounting identity broken" r.load;
      if not r.deterministic then
        fail "load %.1fx: same-seed replay was not byte-identical" r.load)
    out.rows;
  (match List.rev out.rows with
  | heaviest :: _ when heaviest.load >= 2.0 ->
      if heaviest.goodput < (1. -. tolerance) *. out.plateau then
        fail
          "goodput %.2f/tick at %.1fx is below %.0f%% of the %.2f/tick \
           plateau (overload collapse)"
          heaviest.goodput heaviest.load
          ((1. -. tolerance) *. 100.)
          out.plateau
  | _ -> ());
  List.rev !failures

let b v = if v then "yes" else "no"

let print (out : t) =
  Report.table
    ~title:
      (Printf.sprintf
         "Overload: offered-load sweep through bwclusterd's reactor \
          (budget %d items/tick, %d ticks, plateau %.2f/tick) -- %s n=%d"
         out.budget out.ticks out.plateau out.dataset out.n)
    ~headers:
      [
        "load"; "offered"; "live"; "degraded"; "acked"; "shed"; "timeout";
        "rejected"; "goodput/tick"; "shed rate"; "max staleness"; "drain";
        "replay"; "accounted";
      ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.1fx" r.load;
           Report.i r.offered;
           Report.i r.answered_live;
           Report.i r.answered_degraded;
           Report.i r.acked;
           Report.i r.shed;
           Report.i r.timeouts;
           Report.i r.rejected;
           Report.f r.goodput;
           Report.f3 r.shed_rate;
           Report.i r.max_staleness;
           Report.i r.drain_ticks;
           b r.deterministic;
           b r.accounted;
         ])
       out.rows)

let save_csv (out : t) path =
  Report.save_csv ~path
    ~headers:
      [
        "load"; "offered"; "answered_live"; "answered_degraded"; "acked";
        "shed"; "timeouts"; "rejected"; "goodput"; "shed_rate";
        "max_staleness"; "drain_ticks"; "deterministic"; "accounted";
      ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.2f" r.load;
           Report.i r.offered;
           Report.i r.answered_live;
           Report.i r.answered_degraded;
           Report.i r.acked;
           Report.i r.shed;
           Report.i r.timeouts;
           Report.i r.rejected;
           Printf.sprintf "%.4f" r.goodput;
           Printf.sprintf "%.4f" r.shed_rate;
           Report.i r.max_staleness;
           Report.i r.drain_ticks;
           b r.deterministic;
           b r.accounted;
         ])
       out.rows)

let save_json (out : t) path =
  let oc = open_out path in
  let row_json r =
    Printf.sprintf
      "    {\"load\": %.2f, \"offered\": %d, \"answered_live\": %d, \
       \"answered_degraded\": %d, \"acked\": %d, \"shed\": %d, \
       \"timeouts\": %d, \"rejected\": %d, \"goodput\": %.4f, \
       \"shed_rate\": %.4f, \"max_staleness\": %d, \"drain_ticks\": %d, \
       \"deterministic\": %b, \"accounted\": %b}"
      r.load r.offered r.answered_live r.answered_degraded r.acked r.shed
      r.timeouts r.rejected r.goodput r.shed_rate r.max_staleness
      r.drain_ticks r.deterministic r.accounted
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"overload\",\n\
    \  \"seed\": %d,\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n\": %d,\n\
    \  \"ticks\": %d,\n\
    \  \"budget\": %d,\n\
    \  \"plateau\": %.4f,\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    out.seed out.dataset out.n out.ticks out.budget out.plateau
    (String.concat ",\n" (List.map row_json out.rows));
  close_out oc
