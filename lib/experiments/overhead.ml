module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble
module Registry = Bwc_obs.Registry

type row = {
  n : int;
  measurements : int;
  full_mesh : int;
  rounds_to_quiescence : int;
  messages_total : int;
  messages_per_host : float;
  anchor_depth : int;
}

type output = {
  base_dataset : string;
  n_cut : int;
  rows : row list;
}

let run ?(sizes = [ 40; 80; 120 ]) ?(repeats = 2) ?(n_cut = 10) ~seed base =
  let rows =
    List.map
      (fun n ->
        if n > Dataset.size base then
          invalid_arg "Overhead.run: subset size exceeds base dataset";
        let meas = ref 0 and rounds = ref 0 and msgs = ref 0 and depth = ref 0 in
        for rep = 0 to repeats - 1 do
          let rng = Rng.create (seed + (100 * n) + rep) in
          let ds = Dataset.random_subset base ~rng n in
          let space = Dataset.metric ds in
          (* one registry per repetition captures the whole stack: tree
             construction cost and protocol traffic land in the same
             snapshot *)
          let metrics = Registry.create () in
          let ens = Ensemble.build ~rng:(Rng.split rng) ~metrics space in
          let classes = Bwc_core.Classes.of_percentiles ~count:8 ds in
          let protocol =
            Bwc_core.Protocol.create ~rng:(Rng.split rng) ~n_cut ~metrics ~classes ens
          in
          let r = Bwc_core.Protocol.run_aggregation protocol in
          let snap = Registry.snapshot metrics in
          meas := !meas + Registry.sum_by_name snap "predtree.measurements";
          rounds := !rounds + r;
          msgs := !msgs + Registry.get snap "engine.msgs_sent";
          depth :=
            !depth
            + Bwc_predtree.Anchor.max_depth
                (Bwc_predtree.Framework.anchor (Ensemble.primary ens))
        done;
        {
          n;
          measurements = !meas / repeats;
          full_mesh = n * (n - 1) / 2;
          rounds_to_quiescence = !rounds / repeats;
          messages_total = !msgs / repeats;
          messages_per_host = float_of_int !msgs /. float_of_int (repeats * n);
          anchor_depth = !depth / repeats;
        })
      (List.sort compare sizes)
  in
  { base_dataset = base.Dataset.name; n_cut; rows }

let print output =
  Report.table
    ~title:
      (Printf.sprintf "Background overhead vs system size (n_cut=%d) -- %s" output.n_cut
         output.base_dataset)
    ~headers:
      [
        "n"; "predtree.measurements"; "full mesh"; "rounds"; "engine.msgs_sent";
        "msgs/host"; "anchor depth";
      ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.i r.measurements;
           Report.i r.full_mesh;
           Report.i r.rounds_to_quiescence;
           Report.i r.messages_total;
           Report.f r.messages_per_host;
           Report.i r.anchor_depth;
         ])
       output.rows)

let save_csv output path =
  Report.save_csv ~path
    ~headers:
      [
        "n"; "predtree_measurements"; "full_mesh"; "rounds"; "engine_msgs_sent";
        "msgs_per_host"; "anchor_depth";
      ]
    (List.map
       (fun r ->
         [
           Report.i r.n;
           Report.i r.measurements;
           Report.i r.full_mesh;
           Report.i r.rounds_to_quiescence;
           Report.i r.messages_total;
           Report.f r.messages_per_host;
           Report.i r.anchor_depth;
         ])
       output.rows)
