(** E16 — causal trace analytics over the standard fault scenarios.

    Reruns the E12-style faulty run and the E13-style crash-recovery run
    (plus a clean baseline) with an unbounded trace sink attached, then
    reconstructs happens-before and the convergence critical path with
    {!Bwc_obs.Causal}.  Each row reports how much of the run the witness
    chain explains ([frac_explained]) and the per-kind byte budget; the
    [send_sum_matches] column asserts the exact-attribution invariant:
    the non-query send counts in the by-kind table sum to the engine's
    own [msgs_sent] counter, message for message. *)

type kind_row = {
  kind : string;  (** canonical kind name ({!Bwc_obs.Trace.all_kinds} order) *)
  sends : int;
  bytes : int;
  delivered : int;
  dropped : int;
}

type row = {
  scenario : string;  (** ["clean"], ["faulty"] or ["recovery"] *)
  rounds : int;
  messages : int;  (** engine-level sends observed in the trace *)
  delivered : int;
  dropped : int;
  query_hops : int;
  total_bytes : int;
  cp_len : int;  (** hops on the critical path *)
  cp_rounds : int;  (** rounds the critical path spans *)
  frac_explained : float;
      (** [cp_rounds] over the quiesce round: the fraction of the
          convergence time the witness chain accounts for *)
  cp_kinds : string;  (** ["-"]-joined kind chain of the witness path *)
  send_sum_matches : bool;  (** non-query kind sends = engine msgs_sent *)
  kinds : kind_row list;
}

type output = { dataset : string; n : int; seed : int; rows : row list }

val recovery_events :
  ?victims:int -> ?queries:int -> ?max_rounds:int -> ?n_cut:int ->
  ?class_count:int -> seed:int -> Bwc_dataset.Dataset.t ->
  Bwc_obs.Trace.event list * int
(** The E13-style recovery scenario on its own: detector-watched system,
    [victims] non-adjacent crashes after convergence, healed to
    quiescence, then the seeded query stream.  Returns the full event
    list and the engine's final [msgs_sent] counter (for the exact-sum
    check).  This is the default scenario behind [bwcluster analyze]. *)

val run :
  ?drop:float -> ?duplicate:float -> ?jitter:int -> ?victims:int ->
  ?queries:int -> ?max_rounds:int -> ?n_cut:int -> ?class_count:int ->
  seed:int -> Bwc_dataset.Dataset.t -> output
(** Same seed conventions as {!Robustness}: ensemble [seed+1], protocol
    [seed+2], query stream [seed+3], fault plan [seed+7], victim choice
    [seed+11] — so the scenarios here line up with E12/E13 runs on the
    same seed. *)

val print : output -> unit
val save_csv : output -> string -> unit
val save_kinds_csv : output -> string -> unit
(** Long-format per-(scenario, kind) attribution table. *)
