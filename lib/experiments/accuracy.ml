module Rng = Bwc_stats.Rng

type row = {
  b : float;
  wpr_tree_decentral : float;
  wpr_tree_central : float;
  wpr_eucl_central : float;
  queries : int;
}

type output = {
  dataset : string;
  rows : row list;
  rr_tree_decentral : float;
  rr_tree_central : float;
  rr_eucl_central : float;
}

type acc = {
  mutable wrong : int;
  mutable pairs : int;
  mutable found : int;
  mutable asked : int;
}

let fresh () = { wrong = 0; pairs = 0; found = 0; asked = 0 }

let record ctx acc ~b = function
  | None -> acc.asked <- acc.asked + 1
  | Some cluster ->
      acc.asked <- acc.asked + 1;
      acc.found <- acc.found + 1;
      acc.wrong <- acc.wrong + Context.wrong_pairs ctx ~b cluster;
      acc.pairs <- acc.pairs + Context.pair_count cluster

let wpr acc = if acc.pairs = 0 then 0.0 else float_of_int acc.wrong /. float_of_int acc.pairs
let rr acc = if acc.asked = 0 then 0.0 else float_of_int acc.found /. float_of_int acc.asked

let run ?(rounds = 3) ?(queries_per_round = 200) ?k ?(bins = 6) ~seed dataset =
  let n = Bwc_dataset.Dataset.size dataset in
  let k = match k with Some k -> k | None -> Stdlib.max 2 (n / 20) in
  let ((lo, hi) as range) = Workload.bandwidth_range dataset in
  (* One accumulator triple per constraint bin, plus totals. *)
  let per_bin = Array.init bins (fun _ -> (fresh (), fresh (), fresh ())) in
  let bin_b_sum = Array.make bins 0.0 and bin_count = Array.make bins 0 in
  let totals = (fresh (), fresh (), fresh ()) in
  let bin_of b =
    let idx = int_of_float ((b -. lo) /. (hi -. lo) *. float_of_int bins) in
    Stdlib.max 0 (Stdlib.min (bins - 1) idx)
  in
  for round = 0 to rounds - 1 do
    let ctx = Context.create ~seed:(seed + round) dataset in
    let rng = Rng.create (seed + (1000 * round) + 7) in
    let queries = Workload.fixed_k ~rng ~range ~n ~k ~count:queries_per_round in
    List.iter
      (fun (q : Workload.query) ->
        let b = q.Workload.b in
        let idx = bin_of b in
        bin_b_sum.(idx) <- bin_b_sum.(idx) +. b;
        bin_count.(idx) <- bin_count.(idx) + 1;
        let dec, cen, euc = per_bin.(idx) in
        let tdec, tcen, teuc = totals in
        let dec_answer = (Context.tree_decentral ctx q).Bwc_core.Query.cluster in
        record ctx dec ~b dec_answer;
        record ctx tdec ~b dec_answer;
        let cen_answer = Context.tree_central ctx q in
        record ctx cen ~b cen_answer;
        record ctx tcen ~b cen_answer;
        let euc_answer = Context.eucl_central ctx q in
        record ctx euc ~b euc_answer;
        record ctx teuc ~b euc_answer)
      queries
  done;
  let rows =
    List.filter_map
      (fun idx ->
        if bin_count.(idx) = 0 then None
        else begin
          let dec, cen, euc = per_bin.(idx) in
          Some
            {
              b = bin_b_sum.(idx) /. float_of_int bin_count.(idx);
              wpr_tree_decentral = wpr dec;
              wpr_tree_central = wpr cen;
              wpr_eucl_central = wpr euc;
              queries = dec.asked;
            }
        end)
      (List.init bins (fun i -> i))
  in
  let tdec, tcen, teuc = totals in
  {
    dataset = dataset.Bwc_dataset.Dataset.name;
    rows;
    rr_tree_decentral = rr tdec;
    rr_tree_central = rr tcen;
    rr_eucl_central = rr teuc;
  }

let print output =
  Report.table
    ~title:(Printf.sprintf "Fig.3 accuracy (WPR vs b) -- %s" output.dataset)
    ~headers:[ "b (Mbps)"; "TREE-DECENTRAL"; "TREE-CENTRAL"; "EUCL-CENTRAL"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.f r.b;
           Report.f3 r.wpr_tree_decentral;
           Report.f3 r.wpr_tree_central;
           Report.f3 r.wpr_eucl_central;
           Report.i r.queries;
         ])
       output.rows);
  Report.table ~title:"  overall return rates"
    ~headers:[ "TREE-DECENTRAL"; "TREE-CENTRAL"; "EUCL-CENTRAL" ]
    [
      [
        Report.f3 output.rr_tree_decentral;
        Report.f3 output.rr_tree_central;
        Report.f3 output.rr_eucl_central;
      ];
    ]

let save_csv output path =
  Report.save_csv ~path
    ~headers:[ "b_mbps"; "wpr_tree_decentral"; "wpr_tree_central"; "wpr_eucl_central"; "queries" ]
    (List.map
       (fun r ->
         [
           Report.f r.b;
           Report.f3 r.wpr_tree_decentral;
           Report.f3 r.wpr_tree_central;
           Report.f3 r.wpr_eucl_central;
           Report.i r.queries;
         ])
       output.rows)
