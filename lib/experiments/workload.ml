module Rng = Bwc_stats.Rng

type query = {
  k : int;
  b : float;
  at : int;
}

let bandwidth_range ?(lo_pct = 20.0) ?(hi_pct = 80.0) ds =
  Bwc_dataset.Dataset.percentile_range ds ~lo:lo_pct ~hi:hi_pct

let one ~rng ~range:(lo, hi) ~n ~k =
  { k; b = Rng.uniform rng lo hi; at = Rng.int rng n }

let fixed_k ~rng ~range ~n ~k ~count =
  if count < 0 then invalid_arg "Workload.fixed_k: negative count";
  List.init count (fun _ -> one ~rng ~range ~n ~k)

let swept_k ~rng ~range ~n ~ks ~per_k =
  List.concat_map (fun k -> List.init per_k (fun _ -> one ~rng ~range ~n ~k)) ks

let k_fraction_range ~n ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Workload.k_fraction_range: steps < 1";
  let ks =
    List.init steps (fun idx ->
        let frac =
          if steps = 1 then lo
          else lo +. ((hi -. lo) *. float_of_int idx /. float_of_int (steps - 1))
        in
        Stdlib.max 2 (int_of_float (Float.round (frac *. float_of_int n))))
  in
  List.sort_uniq compare ks
