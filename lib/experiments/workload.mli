(** Query workload generation, following Sec. IV: bandwidth constraints
    are drawn uniformly from a percentile band of the dataset's bandwidth
    distribution (the paper uses the 20th-80th percentiles, e.g. 15-75
    Mbps for HP-PlanetLab), cluster sizes either fixed or swept, and the
    submission host uniform.

    The decentralized system quantises [b] to its bandwidth classes when
    answering — that is its designed-in flexibility limit, not the
    workload's concern. *)

type query = {
  k : int;
  b : float;  (** bandwidth constraint, Mbps (continuous) *)
  at : int;   (** submission host *)
}

val bandwidth_range :
  ?lo_pct:float -> ?hi_pct:float -> Bwc_dataset.Dataset.t -> float * float
(** The paper's constraint band: percentiles of the pairwise bandwidth
    distribution, defaults 20 and 80. *)

val fixed_k :
  rng:Bwc_stats.Rng.t -> range:float * float -> n:int -> k:int -> count:int ->
  query list
(** [count] queries with the given [k] (the Fig. 3 workload). *)

val swept_k :
  rng:Bwc_stats.Rng.t -> range:float * float -> n:int -> ks:int list ->
  per_k:int -> query list
(** [per_k] queries for every [k] in [ks] (the Fig. 4 workload). *)

val k_fraction_range : n:int -> lo:float -> hi:float -> steps:int -> int list
(** Evenly spaced cluster sizes between [lo*n] and [hi*n], deduplicated
    and clamped to [>= 2] (the Fig. 6 workload uses 0.05-0.30). *)
