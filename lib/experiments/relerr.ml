type output = {
  dataset : string;
  tree : Bwc_stats.Cdf.t;
  eucl : Bwc_stats.Cdf.t;
}

let run ?(rounds = 3) ~seed dataset =
  let tree_errs = ref [] and eucl_errs = ref [] in
  for round = 0 to rounds - 1 do
    let ctx = Context.create ~seed:(seed + round) dataset in
    tree_errs :=
      Bwc_predtree.Ensemble.relative_errors ~c:(Context.c ctx)
        (Bwc_core.System.framework ctx.Context.sys)
      :: !tree_errs;
    eucl_errs :=
      Bwc_vivaldi.Vivaldi.relative_errors ~c:(Context.c ctx) ctx.Context.vivaldi
        (Bwc_dataset.Dataset.metric ~c:(Context.c ctx) dataset)
      :: !eucl_errs
  done;
  {
    dataset = dataset.Bwc_dataset.Dataset.name;
    tree = Bwc_stats.Cdf.make (Array.concat !tree_errs);
    eucl = Bwc_stats.Cdf.make (Array.concat !eucl_errs);
  }

let median_gap output =
  Bwc_stats.Cdf.quantile output.eucl 0.5 -. Bwc_stats.Cdf.quantile output.tree 0.5

let print ?(resolution = 10) output =
  Report.cdf_series
    ~title:
      (Printf.sprintf "Fig.3 relative bandwidth-prediction error CDF -- %s" output.dataset)
    ~resolution
    [ ("TREE", output.tree); ("EUCL", output.eucl) ]

let save_csv ?(resolution = 100) output path =
  let rows =
    List.init resolution (fun idx ->
        let p = float_of_int (idx + 1) /. float_of_int resolution in
        [
          Printf.sprintf "%.4f" p;
          Printf.sprintf "%.6f" (Bwc_stats.Cdf.quantile output.tree p);
          Printf.sprintf "%.6f" (Bwc_stats.Cdf.quantile output.eucl p);
        ])
  in
  Report.save_csv ~path ~headers:[ "cum_frac"; "tree_rel_err"; "eucl_rel_err" ] rows
