module Rng = Bwc_stats.Rng
module Framework = Bwc_predtree.Framework
module Ensemble = Bwc_predtree.Ensemble

type row = {
  label : string;
  ensemble : int;
  p50 : float;
  p90 : float;
  over2x : float;
  measurements : int;
  full_mesh : int;
}

let over2x_rate ens space =
  let n = space.Bwc_metric.Space.n in
  let overs = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      (* distance under-prediction by 2x = bandwidth over-prediction by 2x *)
      if Ensemble.predicted ens i j *. 2.0 <= space.Bwc_metric.Space.dist i j then incr overs
    done
  done;
  float_of_int !overs /. float_of_int (Stdlib.max 1 !total)

let evaluate ~rounds ~seed ~label ~mode ~size space =
  let n = space.Bwc_metric.Space.n in
  let errs = ref [] and over = ref 0.0 and meas = ref 0 in
  for round = 0 to rounds - 1 do
    let ens = Ensemble.build ~rng:(Rng.create (seed + round)) ~mode ~size space in
    errs := Ensemble.relative_errors ens :: !errs;
    over := !over +. over2x_rate ens space;
    meas := !meas + Ensemble.measurements_total ens
  done;
  let cdf = Bwc_stats.Cdf.make (Array.concat !errs) in
  {
    label;
    ensemble = size;
    p50 = Bwc_stats.Cdf.quantile cdf 0.5;
    p90 = Bwc_stats.Cdf.quantile cdf 0.9;
    over2x = !over /. float_of_int rounds;
    measurements = !meas / rounds;
    full_mesh = n * (n - 1) / 2;
  }

let run ?(rounds = 2) ?(sizes = [ 1; 3; 5 ]) ~seed dataset =
  let space = Bwc_dataset.Dataset.metric dataset in
  let modes =
    [
      ("root+exact", Framework.centralized_mode);
      ("random+exact", { Framework.base = `Random; end_search = `Exact });
      ("root+anchor", { Framework.base = `Root; end_search = `Anchor_guided 16 });
      ("random+anchor", Framework.default_mode);
    ]
  in
  let mode_rows =
    List.map
      (fun (label, mode) -> evaluate ~rounds ~seed ~label ~mode ~size:1 space)
      modes
  in
  let size_rows =
    List.filter_map
      (fun size ->
        if size = 1 then None (* already covered by random+anchor above *)
        else
          Some
            (evaluate ~rounds ~seed
               ~label:(Printf.sprintf "random+anchor x%d" size)
               ~mode:Framework.default_mode ~size space))
      sizes
  in
  mode_rows @ size_rows

let print ~dataset rows =
  Report.table
    ~title:(Printf.sprintf "Ablation: embedding accuracy vs construction mode -- %s" dataset)
    ~headers:[ "mode"; "trees"; "rel.err p50"; "rel.err p90"; "over-2x"; "measurements"; "full mesh" ]
    (List.map
       (fun r ->
         [
           r.label;
           Report.i r.ensemble;
           Report.f3 r.p50;
           Report.f3 r.p90;
           Report.f r.over2x;
           Report.i r.measurements;
           Report.i r.full_mesh;
         ])
       rows)
