module System = Bwc_core.System
module Vivaldi = Bwc_vivaldi.Vivaldi
module Kdiam = Bwc_euclid.Kdiam

type t = {
  dataset : Bwc_dataset.Dataset.t;
  sys : System.t;
  vivaldi : Vivaldi.t;
  eucl_index : Kdiam.Index.t;
}

let create ~seed ?n_cut ?class_count dataset =
  let sys = System.create ~seed ?n_cut ?class_count dataset in
  let rng = Bwc_stats.Rng.create (seed + 0x5eed) in
  let vivaldi = Vivaldi.embed ~rng (Bwc_dataset.Dataset.metric ~c:(System.c sys) dataset) in
  let eucl_index = Kdiam.Index.build (Vivaldi.coords vivaldi) in
  { dataset; sys; vivaldi; eucl_index }

let c t = System.c t.sys

let tree_decentral t (q : Workload.query) =
  System.query ~at:q.Workload.at t.sys ~k:q.Workload.k ~b:q.Workload.b

let tree_central t (q : Workload.query) =
  System.query_centralized t.sys ~k:q.Workload.k ~b:q.Workload.b

let eucl_central t (q : Workload.query) =
  let l = Bwc_metric.Bandwidth.to_distance ~c:(c t) q.Workload.b in
  Kdiam.Index.find t.eucl_index ~k:q.Workload.k ~l

let wrong_pairs t ~b cluster =
  List.length (System.verify_cluster t.sys ~b cluster)

let pair_count cluster =
  let n = List.length cluster in
  n * (n - 1) / 2
