module Rng = Bwc_stats.Rng

type row = {
  k : int;
  rr_central : float;
  rr_decentral : float;
  queries : int;
}

type output = {
  dataset : string;
  n_cut : int;
  rows : row list;
}

let default_ks n =
  (* 2 up to ~47% of the system, matching the paper's ranges
     (k = 2..90 of 190, 2..150 of 317). *)
  Workload.k_fraction_range ~n ~lo:0.01 ~hi:0.47 ~steps:12

let sweep ~rounds ~per_k ~ks ~n_cut ~seed dataset =
  let n = Bwc_dataset.Dataset.size dataset in
  let found_c = Hashtbl.create 16 and found_d = Hashtbl.create 16 in
  let asked = Hashtbl.create 16 in
  let bump tbl k by =
    Hashtbl.replace tbl k (by + (Option.value ~default:0 (Hashtbl.find_opt tbl k)))
  in
  let range = Workload.bandwidth_range dataset in
  for round = 0 to rounds - 1 do
    let ctx = Context.create ~seed:(seed + round) ~n_cut dataset in
    let rng = Rng.create (seed + (1000 * round) + 13) in
    let queries = Workload.swept_k ~rng ~range ~n ~ks ~per_k in
    List.iter
      (fun (q : Workload.query) ->
        bump asked q.Workload.k 1;
        if Context.tree_central ctx q <> None then bump found_c q.Workload.k 1;
        if Bwc_core.Query.found (Context.tree_decentral ctx q) then
          bump found_d q.Workload.k 1)
      queries
  done;
  let rows =
    List.map
      (fun k ->
        let asked_k = Option.value ~default:0 (Hashtbl.find_opt asked k) in
        let rate tbl =
          if asked_k = 0 then 0.0
          else
            float_of_int (Option.value ~default:0 (Hashtbl.find_opt tbl k))
            /. float_of_int asked_k
        in
        { k; rr_central = rate found_c; rr_decentral = rate found_d; queries = asked_k })
      (List.sort compare ks)
  in
  { dataset = dataset.Bwc_dataset.Dataset.name; n_cut; rows }

let run ?(rounds = 5) ?(per_k = 4) ?ks ?(n_cut = 10) ~seed dataset =
  let ks =
    match ks with Some ks -> ks | None -> default_ks (Bwc_dataset.Dataset.size dataset)
  in
  sweep ~rounds ~per_k ~ks ~n_cut ~seed dataset

type ablation_row = {
  a_n_cut : int;
  a_rr : float;
}

let ncut_ablation ?(rounds = 3) ?(per_k = 3) ?ks ?(n_cuts = [ 2; 5; 10; 20 ]) ~seed dataset
    =
  let ks =
    match ks with Some ks -> ks | None -> default_ks (Bwc_dataset.Dataset.size dataset)
  in
  List.map
    (fun n_cut ->
      let out = sweep ~rounds ~per_k ~ks ~n_cut ~seed dataset in
      let found, asked =
        List.fold_left
          (fun (f, a) r ->
            (f +. (r.rr_decentral *. float_of_int r.queries), a + r.queries))
          (0.0, 0) out.rows
      in
      { a_n_cut = n_cut; a_rr = (if asked = 0 then 0.0 else found /. float_of_int asked) })
    n_cuts

let print output =
  Report.table
    ~title:
      (Printf.sprintf "Fig.4 tradeoff of decentralization (RR vs k, n_cut=%d) -- %s"
         output.n_cut output.dataset)
    ~headers:[ "k"; "RR central"; "RR decentral"; "queries" ]
    (List.map
       (fun r ->
         [ Report.i r.k; Report.f3 r.rr_central; Report.f3 r.rr_decentral; Report.i r.queries ])
       output.rows)

let print_ablation ~dataset rows =
  Report.table
    ~title:(Printf.sprintf "Ablation: decentralized RR vs n_cut -- %s" dataset)
    ~headers:[ "n_cut"; "RR decentral (pooled)" ]
    (List.map (fun r -> [ Report.i r.a_n_cut; Report.f3 r.a_rr ]) rows)

let save_csv output path =
  Report.save_csv ~path ~headers:[ "k"; "rr_central"; "rr_decentral"; "queries" ]
    (List.map
       (fun r ->
         [ Report.i r.k; Report.f3 r.rr_central; Report.f3 r.rr_decentral; Report.i r.queries ])
       output.rows)
