(** Diameter-constrained clustering in the 2-d Euclidean plane — the
    paper's comparison model (Sec. IV-A), adapted from the k-diameter
    algorithm of Aggarwal, Imai, Katoh & Suri (SoCG 1989).

    For each candidate pair [(p, q)] with [d(p,q) <= l], the points within
    [d(p,q)] of both endpoints form a lens; splitting the lens along the
    line [pq] gives two halves of diameter [<= d(p,q)], so the conflict
    graph (pairs farther than [d(p,q)]) is bipartite, and the largest
    pairwise-close subset is a maximum independent set obtained through
    König's theorem. *)

val find_cluster :
  points:Bwc_vivaldi.Coord.t array -> k:int -> l:float -> int list option
(** [find_cluster ~points ~k ~l] returns [k] point indices with pairwise
    Euclidean distance [<= l], or [None].  Pairs are scanned in ascending
    distance order, so the returned cluster tends to be the tightest
    available (mirroring the scan order used by the tree-metric
    Algorithm 1 in this repository, which keeps WPR comparisons fair).
    Requires [k >= 2]. *)

val max_cluster_size : points:Bwc_vivaldi.Coord.t array -> l:float -> int
(** Size of the largest subset with pairwise distance [<= l] (at least 1
    for a non-empty point set). *)

val lens_members :
  points:Bwc_vivaldi.Coord.t array -> p:int -> q:int -> int list
(** The candidate set of the pair: indices within [d(p,q)] of both [p] and
    [q] (including [p] and [q]); exposed for tests. *)

(** Precomputed pair index for repeated queries over a fixed point set. *)
module Index : sig
  type t

  val build : Bwc_vivaldi.Coord.t array -> t
  val find : t -> k:int -> l:float -> int list option
  (** Same result as {!find_cluster} on the indexed points. *)

  val max_size : t -> l:float -> int
end
