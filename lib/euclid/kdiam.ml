module Coord = Bwc_vivaldi.Coord

let dist points i j = Coord.dist points.(i) points.(j)

let lens_members ~points ~p ~q =
  let r = dist points p q in
  let n = Array.length points in
  let members = ref [] in
  for x = n - 1 downto 0 do
    if dist points x p <= r && dist points x q <= r then members := x :: !members
  done;
  !members

(* Largest subset of the lens of (p, q) with pairwise distance <= r,
   via the bipartite MIS construction. *)
let best_in_lens ~points ~p ~q =
  let r = dist points p q in
  let members = Array.of_list (lens_members ~points ~p ~q) in
  (* Split along the line pq; points on the line join the "upper" side. *)
  let pp = points.(p) and qq = points.(q) in
  let side x =
    let v = Coord.sub qq pp and w = Coord.sub points.(x) pp in
    (v.Coord.x *. w.Coord.y) -. (v.Coord.y *. w.Coord.x) >= 0.0
  in
  let upper = Array.of_list (List.filter side (Array.to_list members)) in
  let lower = Array.of_list (List.filter (fun x -> not (side x)) (Array.to_list members)) in
  let g = Bipartite.create ~left:(Array.length upper) ~right:(Array.length lower) in
  Array.iteri
    (fun iu u ->
      Array.iteri (fun il lo -> if dist points u lo > r then Bipartite.add_edge g iu il) lower)
    upper;
  let in_up, in_lo = Bipartite.max_independent_set g in
  let chosen = ref [] in
  Array.iteri (fun il lo -> if in_lo.(il) then chosen := lo :: !chosen) lower;
  Array.iteri (fun iu u -> if in_up.(iu) then chosen := u :: !chosen) upper;
  !chosen

let sorted_pairs points =
  let n = Array.length points in
  let pairs = Array.make (n * (n - 1) / 2) (0, 0, 0.0) in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs.(!pos) <- (i, j, dist points i j);
      incr pos
    done
  done;
  Array.sort (fun (_, _, a) (_, _, b) -> compare a b) pairs;
  pairs

let diameter points cluster =
  let rec loop acc = function
    | [] -> acc
    | x :: rest ->
        let acc = List.fold_left (fun a y -> Float.max a (dist points x y)) acc rest in
        loop acc rest
  in
  loop 0.0 cluster

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let index_pairs points =
  let n = Array.length points in
  let pairs = Array.make (n * (n - 1) / 2) (0, 0, 0.0) in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs.(!pos) <- (i, j, dist points i j);
      incr pos
    done
  done;
  pairs

(* Pairs are scanned in index order (see Find_cluster for why the order
   matters on imperfect embeddings); only pairs within the constraint are
   examined. *)
let find_cluster ~points ~k ~l =
  if k < 2 then invalid_arg "Kdiam.find_cluster: k < 2";
  let n = Array.length points in
  if n < k then None
  else begin
    let pairs = index_pairs points in
    let result = ref None in
    (try
       Array.iter
         (fun (p, q, r) ->
           if r <= l && List.length (lens_members ~points ~p ~q) >= k then begin
             let best = best_in_lens ~points ~p ~q in
             if List.length best >= k then begin
               let cluster = take k best in
               (* Guard against floating-point side-assignment artifacts:
                  accept only if the diameter constraint really holds. *)
               if diameter points cluster <= l *. (1.0 +. 1e-9) then begin
                 result := Some cluster;
                 raise Exit
               end
             end
           end)
         pairs
     with Exit -> ());
    !result
  end

let max_cluster_size ~points ~l =
  let n = Array.length points in
  if n = 0 then 0
  else begin
    let pairs = sorted_pairs points in
    let best = ref 1 in
    (try
       Array.iter
         (fun (p, q, r) ->
           if r > l then raise Exit;
           if List.length (lens_members ~points ~p ~q) > !best then begin
             let cand = best_in_lens ~points ~p ~q in
             let size = List.length cand in
             if size > !best && diameter points cand <= l *. (1.0 +. 1e-9) then best := size
           end)
         pairs
     with Exit -> ());
    !best
  end

module Index = struct
  type t = {
    points : Coord.t array;
    by_index : (int * int * float) array;
    by_dist : (int * int * float) array;
  }

  let build points =
    { points; by_index = index_pairs points; by_dist = sorted_pairs points }

  let find t ~k ~l =
    if k < 2 then invalid_arg "Kdiam.Index.find: k < 2";
    let points = t.points in
    if Array.length points < k then None
    else begin
      let result = ref None in
      (try
         Array.iter
           (fun (p, q, r) ->
             if r <= l && List.length (lens_members ~points ~p ~q) >= k then begin
               let best = best_in_lens ~points ~p ~q in
               if List.length best >= k then begin
                 let cluster = take k best in
                 if diameter points cluster <= l *. (1.0 +. 1e-9) then begin
                   result := Some cluster;
                   raise Exit
                 end
               end
             end)
           t.by_index
       with Exit -> ());
      !result
    end

  let max_size t ~l =
    let points = t.points in
    if Array.length points = 0 then 0
    else begin
      let best = ref 1 in
      (try
         Array.iter
           (fun (p, q, r) ->
             if r > l then raise Exit;
             if List.length (lens_members ~points ~p ~q) > !best then begin
               let cand = best_in_lens ~points ~p ~q in
               let size = List.length cand in
               if size > !best && diameter points cand <= l *. (1.0 +. 1e-9) then
                 best := size
             end)
           t.by_dist
       with Exit -> ());
      !best
    end
end
