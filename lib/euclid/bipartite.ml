type t = {
  nl : int;
  nr : int;
  adj : int list array; (* left vertex -> right neighbors *)
  mutable edges : int;
}

let create ~left ~right =
  if left < 0 || right < 0 then invalid_arg "Bipartite.create";
  { nl = left; nr = right; adj = Array.make (Stdlib.max 1 left) []; edges = 0 }

let add_edge g u v =
  if u < 0 || u >= g.nl || v < 0 || v >= g.nr then invalid_arg "Bipartite.add_edge";
  g.adj.(u) <- v :: g.adj.(u);
  g.edges <- g.edges + 1

let left_size g = g.nl
let right_size g = g.nr
let edge_count g = g.edges

let infinity_dist = Stdlib.max_int

(* Hopcroft-Karp.  [match_l.(u)] / [match_r.(v)] hold the partner or -1. *)
let run_matching g =
  let match_l = Array.make (Stdlib.max 1 g.nl) (-1) in
  let match_r = Array.make (Stdlib.max 1 g.nr) (-1) in
  let dist = Array.make (Stdlib.max 1 g.nl) infinity_dist in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    for u = 0 to g.nl - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          match match_r.(v) with
          | -1 -> found := true
          | u' ->
              if dist.(u') = infinity_dist then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' queue
              end)
        g.adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_neighbors = function
      | [] ->
          dist.(u) <- infinity_dist;
          false
      | v :: rest ->
          let ok =
            match match_r.(v) with
            | -1 -> true
            | u' -> dist.(u') = dist.(u) + 1 && dfs u'
          in
          if ok then begin
            match_l.(u) <- v;
            match_r.(v) <- u;
            true
          end
          else try_neighbors rest
    in
    try_neighbors g.adj.(u)
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to g.nl - 1 do
      if match_l.(u) = -1 && dfs u then incr size
    done
  done;
  (!size, match_l, match_r)

let max_matching g =
  let size, _, _ = run_matching g in
  size

let max_independent_set g =
  let _, match_l, match_r = run_matching g in
  (* König: from every unmatched left vertex, alternate non-matching edges
     (left to right) and matching edges (right to left).  The minimum
     vertex cover is (unvisited lefts) + (visited rights); the MIS is its
     complement. *)
  let vis_l = Array.make (Stdlib.max 1 g.nl) false in
  let vis_r = Array.make (Stdlib.max 1 g.nr) false in
  let rec explore u =
    if not vis_l.(u) then begin
      vis_l.(u) <- true;
      List.iter
        (fun v ->
          if match_l.(u) <> v && not vis_r.(v) then begin
            vis_r.(v) <- true;
            match match_r.(v) with
            | -1 -> ()
            | u' -> explore u'
          end)
        g.adj.(u)
    end
  in
  for u = 0 to g.nl - 1 do
    if match_l.(u) = -1 then explore u
  done;
  let in_left = Array.init g.nl (fun u -> vis_l.(u)) in
  let in_right = Array.init g.nr (fun v -> not vis_r.(v)) in
  (in_left, in_right)
