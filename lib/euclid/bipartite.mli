(** Bipartite graphs with maximum matching (Hopcroft-Karp) and maximum
    independent set extraction (König's theorem).

    The Euclidean k-diameter clustering algorithm reduces "largest subset
    of the lens with pairwise distance <= r" to a maximum independent set
    in a bipartite conflict graph; König turns the matching into the MIS
    exactly. *)

type t

val create : left:int -> right:int -> t
val add_edge : t -> int -> int -> unit
(** [add_edge g u v] connects left vertex [u] to right vertex [v]. *)

val left_size : t -> int
val right_size : t -> int
val edge_count : t -> int

val max_matching : t -> int
(** Size of a maximum matching (Hopcroft-Karp, O(E sqrt V)). *)

val max_independent_set : t -> bool array * bool array
(** [(in_left, in_right)] membership flags of a maximum independent set.
    Its size is [left + right - max_matching] (König). *)
