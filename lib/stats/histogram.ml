type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_of t x =
  let bins = Array.length t.counts in
  let raw = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins) in
  Stdlib.max 0 (Stdlib.min (bins - 1) raw)

let add t x =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
  t.total <- t.total + 1

let add_all t xs = Array.iter (add t) xs
let count t = t.total
let bin_count t i = t.counts.(i)
let bins t = Array.length t.counts

let bin_bounds t i =
  let bins = float_of_int (Array.length t.counts) in
  let w = (t.hi -. t.lo) /. bins in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let normalized t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

let pp ppf t =
  let fracs = normalized t in
  Array.iteri
    (fun i frac ->
      let lo, hi = bin_bounds t i in
      let bar = String.make (int_of_float (frac *. 50.0)) '#' in
      Format.fprintf ppf "[%8.2f, %8.2f) %6.3f %s@." lo hi frac bar)
    fracs
