(** Fixed-width binned histograms, used for reporting distributions in the
    benchmark harness. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [[lo, hi)] with [bins] equal-width bins.
    Samples outside the range are clamped into the first/last bin. *)

val add : t -> float -> unit
val add_all : t -> float array -> unit
val count : t -> int
val bin_count : t -> int -> int
val bin_bounds : t -> int -> float * float
val bins : t -> int
val normalized : t -> float array
(** Per-bin fraction of the total count (all zeros when empty). *)

val pp : Format.formatter -> t -> unit
(** A compact ASCII rendering, one line per bin. *)
