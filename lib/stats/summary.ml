let check xs = if Array.length xs = 0 then invalid_arg "Summary: empty sample"

let mean xs =
  check xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  check xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check xs;
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs p =
  check xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let mean_opt xs = if Array.length xs = 0 then None else Some (mean xs)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let of_array xs =
  if Array.length xs = 0 then None
  else
    Some
      {
        count = Array.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = min xs;
        max = max xs;
        p50 = percentile xs 50.0;
        p90 = percentile xs 90.0;
        p99 = percentile xs 99.0;
      }

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    t.count t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
