(* Deterministic traversal helpers for [Stdlib.Hashtbl].

   [Hashtbl.iter]/[Hashtbl.fold] visit bindings in bucket order, which
   depends on the hash function and resize history — letting that order
   reach protocol state, counters or reports silently breaks the
   bit-for-bit determinism contract the simulator relies on (see
   DESIGN.md, "Determinism contract").  These wrappers traverse in
   sorted key order instead; `bwclint`'s [no-unordered-hashtbl-iter]
   rule points offenders here.

   Only the most-recent binding of each key is visited (shadowed
   bindings created with [Hashtbl.add] are skipped). *)

let keys t =
  (* The one audited raw traversal: key collection is order-independent
     because the result is sorted (and deduplicated) before use. *)
  (* bwclint: allow no-unordered-hashtbl-iter -- key collection is order-independent: the result is sorted and deduplicated before any use *)
  Hashtbl.fold (fun k _ acc -> k :: acc) t []

let sorted_keys ?(cmp = Stdlib.compare) t = List.sort_uniq cmp (keys t)

let iter_sorted ?cmp f t =
  List.iter
    (fun k -> match Hashtbl.find_opt t k with Some v -> f k v | None -> ())
    (sorted_keys ?cmp t)

let fold_sorted ?cmp f t init =
  List.fold_left
    (fun acc k ->
      match Hashtbl.find_opt t k with Some v -> f k v acc | None -> acc)
    init
    (sorted_keys ?cmp t)

let sorted_bindings ?cmp t =
  List.rev (fold_sorted ?cmp (fun k v acc -> (k, v) :: acc) t [])
