(** Deterministic traversal helpers for [Stdlib.Hashtbl].

    [Hashtbl] iteration order depends on hashing and resize history;
    these wrappers visit bindings in sorted key order so traversal
    results are reproducible run-to-run.  The [no-unordered-hashtbl-iter]
    lint rule (see [bin/bwclint.ml]) directs offending call sites here.

    Only the most-recent binding of each key is visited; [cmp] defaults
    to [Stdlib.compare]. *)

val keys : ('k, 'v) Hashtbl.t -> 'k list
(** All keys, in unspecified order (possibly with duplicates when keys
    were shadowed via [Hashtbl.add]).  Sort before letting the result
    reach state or output. *)

val sorted_keys : ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Distinct keys in ascending [cmp] order. *)

val iter_sorted :
  ?cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted f t] applies [f] to each binding in ascending key order. *)

val fold_sorted :
  ?cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted f t init] folds over bindings in ascending key order. *)

val sorted_bindings :
  ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings as a list sorted by key. *)
