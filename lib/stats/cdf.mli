(** Empirical cumulative distribution functions.

    Used throughout the evaluation: bandwidth-distribution percentiles for
    query generation, the relative-error CDFs of Fig. 3, and the [f_b]
    (fraction of pairs around the bandwidth constraint) statistic of the
    treeness analysis (Sec. IV-C). *)

type t

val make : float array -> t
(** Builds the empirical CDF of the sample.  The input is copied. *)

val size : t -> int

val eval : t -> float -> float
(** [eval cdf x] is the fraction of samples [<= x], in [0, 1]. *)

val quantile : t -> float -> float
(** [quantile cdf p] with [p] in [0, 1]: smallest sample value [v] such that
    [eval cdf v >= p]. *)

val fraction_in : t -> lo:float -> hi:float -> float
(** Fraction of samples in the closed interval [[lo, hi]]. *)

val slope_at : t -> x:float -> halfwidth:float -> float
(** [slope_at cdf ~x ~halfwidth] is the local slope of the CDF at [x],
    estimated over [[x - halfwidth, x + halfwidth]] and normalised so that a
    uniform distribution over the sample's full range has slope [~1]:
    it returns [fraction_in / (2 * halfwidth / range)].  This is the paper's
    [f_a] ("how steep the slope of CDF at b is") made explicit. *)

val points : t -> resolution:int -> (float * float) array
(** [points cdf ~resolution] samples the CDF at [resolution] evenly spaced
    sample indexes, suitable for plotting: pairs [(value, cumulative)]. *)

val values : t -> float array
(** The sorted underlying sample (a fresh copy). *)
