(** Online mean/variance accumulation (Welford's algorithm), used by
    long-running simulation observers that cannot afford to retain every
    sample. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] for fewer than two samples. *)

val stddev : t -> float
val merge : t -> t -> t
(** Combines two accumulators as if all samples had been added to one. *)
