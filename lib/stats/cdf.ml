type t = { sorted : float array }

let make xs =
  if Array.length xs = 0 then invalid_arg "Cdf.make: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Number of samples <= x: index of the first element > x. *)
let count_le t x =
  let a = t.sorted in
  let n = Array.length a in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then search (mid + 1) hi else search lo mid
    end
  in
  search 0 n

let eval t x = float_of_int (count_le t x) /. float_of_int (size t)

let quantile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Cdf.quantile: p out of range";
  let n = size t in
  let idx = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) idx) in
  t.sorted.(idx)

let fraction_in t ~lo ~hi =
  if hi < lo then 0.0
  else begin
    let a = t.sorted in
    let n = Array.length a in
    (* first index >= lo *)
    let rec lower l h =
      if l >= h then l
      else begin
        let mid = (l + h) / 2 in
        if a.(mid) < lo then lower (mid + 1) h else lower l mid
      end
    in
    let first = lower 0 n in
    let last = count_le t hi in
    float_of_int (last - first) /. float_of_int n
  end

let slope_at t ~x ~halfwidth =
  let range = t.sorted.(size t - 1) -. t.sorted.(0) in
  if range <= 0.0 || halfwidth <= 0.0 then 0.0
  else begin
    let frac = fraction_in t ~lo:(x -. halfwidth) ~hi:(x +. halfwidth) in
    frac /. (2.0 *. halfwidth /. range)
  end

let points t ~resolution =
  let n = size t in
  let resolution = Stdlib.max 2 (Stdlib.min resolution n) in
  Array.init resolution (fun i ->
      let idx = i * (n - 1) / (resolution - 1) in
      (t.sorted.(idx), float_of_int (idx + 1) /. float_of_int n))

let values t = Array.copy t.sorted
