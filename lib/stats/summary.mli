(** Summary statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for fewer than two
    samples. *)

val stddev : float array -> float

val min : float array -> float
val max : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linearly interpolated between
    order statistics (the same convention as numpy's default).  The input
    need not be sorted.  Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val mean_opt : float array -> float option
(** [mean_opt xs] is [None] on an empty array. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** A one-shot digest of a sample. *)

val of_array : float array -> t option
val pp : Format.formatter -> t -> unit
