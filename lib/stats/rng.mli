(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator draws from an explicit [t]
    so that experiments are reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): fast,
    well-distributed, and trivially splittable into independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split rng] derives a new generator whose stream is statistically
    independent of further draws from [rng].  Used to hand independent
    streams to sub-components (one per simulation round, node, ...). *)

val copy : t -> t
(** [copy rng] duplicates the current state; both copies then produce the
    same stream. *)

val state : t -> int64
(** The full internal state (SplitMix64 keeps exactly one 64-bit word), so
    a generator can be persisted and resumed mid-stream. *)

val of_state : int64 -> t
(** [of_state (state rng)] continues [rng]'s stream exactly where it
    stopped.  Unlike {!create}, the argument is {e not} a seed: it is the
    raw state word. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float rng bound] draws uniformly from [0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] draws uniformly from [lo, hi). *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float

val log_normal : t -> mu:float -> sigma:float -> float
(** [log_normal rng ~mu ~sigma] is [exp (gaussian * sigma + mu)]. *)

val exponential : t -> rate:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement rng m n] draws [m] distinct values from
    [0..n-1], in random order.  Requires [m <= n]. *)
