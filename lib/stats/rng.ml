type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let state t = t.state
let of_state s = { state = s }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling keeps the draw exactly uniform: re-draw when [r]
     falls in the short biased tail above the largest multiple of [bound]. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.compare (Int64.sub r v) (Int64.sub Int64.max_int (Int64.sub b 1L)) > 0
    then loop ()
    else Int64.to_int v
  in
  loop ()

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Box-Muller; draws a fresh pair every call for simplicity. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let log_normal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let exponential t ~rate =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 1e-300 then nonzero () else u
  in
  -.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_without_replacement t m n =
  assert (m <= n);
  if m * 3 >= n then Array.sub (permutation t n) 0 m
  else begin
    (* Sparse Floyd sampling for small m over a large range. *)
    let seen = Hashtbl.create (2 * m) in
    let out = Array.make m 0 in
    for i = 0 to m - 1 do
      let j = n - m + i in
      let r = int t (j + 1) in
      let v = if Hashtbl.mem seen r then j else r in
      Hashtbl.replace seen v ();
      out.(i) <- v
    done;
    shuffle t out;
    out
  end
