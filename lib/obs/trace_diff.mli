(** First-divergence finder over two JSONL traces — the dynamic
    determinism-debugging tool complementing bwclint's static taint
    pass: when two identically-seeded runs stop being byte-identical,
    this names the first event where their histories fork.

    Deliberately line-based rather than event-based: the determinism
    contract is byte-identical JSONL, and raw lines stay meaningful
    even on traces the event parser cannot read. *)

type divergence = {
  line : int;  (** 1-based line number of the first difference *)
  left : string option;  (** [None]: the left trace ended before [line] *)
  right : string option;
}

type result = Identical | Diverges of divergence

val diff_strings : string -> string -> result
(** Compare two whole-file contents.  A single trailing newline on
    either side is not a line of its own. *)

val diff_files : string -> string -> result
(** [diff_files a b] reads both files and compares.  Raises [Sys_error]
    on unreadable paths. *)

val to_string : left_name:string -> right_name:string -> result -> string
(** Human-readable rendering, quoting both divergent lines. *)
