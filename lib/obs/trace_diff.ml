(* First-divergence finder over two JSONL traces.

   Purely line-based on purpose: the determinism contract is that two
   identically-seeded runs render byte-identical JSONL, so the first
   differing *line* is the first differing *event* — and reporting raw
   lines keeps the tool honest even on traces the event parser cannot
   read (foreign schema versions, truncation mid-line). *)

type divergence = {
  line : int; (* 1-based *)
  left : string option;  (* None = this side ended first *)
  right : string option;
}

type result = Identical | Diverges of divergence

let lines_of s =
  (* split dropping a single trailing newline, so "a\nb\n" is two lines
     like every line-oriented tool counts them *)
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s
  in
  if s = "" then [] else String.split_on_char '\n' s

let diff_strings a b =
  let rec go lineno la lb =
    match (la, lb) with
    | [], [] -> Identical
    | l :: la', r :: lb' ->
        if String.equal l r then go (lineno + 1) la' lb'
        else Diverges { line = lineno; left = Some l; right = Some r }
    | l :: _, [] -> Diverges { line = lineno; left = Some l; right = None }
    | [], r :: _ -> Diverges { line = lineno; left = None; right = Some r }
  in
  go 1 (lines_of a) (lines_of b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let diff_files a b = diff_strings (read_file a) (read_file b)

let to_string ~left_name ~right_name = function
  | Identical -> Printf.sprintf "traces identical (%s, %s)\n" left_name right_name
  | Diverges d ->
      let side name = function
        | Some l -> Printf.sprintf "  %s: %s\n" name l
        | None -> Printf.sprintf "  %s: <ended at line %d>\n" name (d.line - 1)
      in
      Printf.sprintf "traces diverge at line %d\n%s%s" d.line
        (side left_name d.left) (side right_name d.right)
