(* Round-clocked structured tracing.

   Events carry the simulation round, never wall time: the JSONL
   rendering of a run is a pure function of its seeds, which is what
   lets tests diff whole traces byte-for-byte.

   Schema v2: message events additionally carry a per-run monotone
   message id, a payload kind, an estimated wire size in bytes, and a
   Lamport stamp, so the happens-before DAG of a run is reconstructible
   from its trace alone (see Causal). *)

type drop_cause = Fault_loss | Partition | Dead_dst | Purge

type msg_kind =
  | Heartbeat
  | Aggregate
  | Invalidate
  | Ack
  | Retransmit
  | Query
  | Repair

let kind_to_string = function
  | Heartbeat -> "heartbeat"
  | Aggregate -> "aggregate"
  | Invalidate -> "invalidate"
  | Ack -> "ack"
  | Retransmit -> "retransmit"
  | Query -> "query"
  | Repair -> "repair"

let kind_of_string = function
  | "heartbeat" -> Some Heartbeat
  | "aggregate" -> Some Aggregate
  | "invalidate" -> Some Invalidate
  | "ack" -> Some Ack
  | "retransmit" -> Some Retransmit
  | "query" -> Some Query
  | "repair" -> Some Repair
  | _ -> None

let all_kinds = [ Heartbeat; Aggregate; Invalidate; Ack; Retransmit; Query; Repair ]

type event =
  | Round_start of { round : int }
  | Send of {
      round : int;
      msg : int;
      kind : msg_kind;
      bytes : int;
      lc : int;
      src : int;
      dst : int;
    }
  | Deliver of {
      round : int;
      msg : int;
      kind : msg_kind;
      bytes : int;
      lc : int;
      src : int;
      dst : int;
    }
  | Drop of {
      round : int;
      msg : int;
      kind : msg_kind;
      bytes : int;
      src : int;
      dst : int;
      cause : drop_cause;
    }
  | Retransmit of { round : int; src : int; dst : int }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Query_hop of { round : int; msg : int; bytes : int; src : int; dst : int }
  | Suspect of { round : int; by : int; node : int }
  | Confirm_dead of { round : int; by : int; node : int }
  | Regraft of { round : int; node : int; new_parent : int }
  | Quiesce of { round : int }
  | Snapshot_write of { round : int; bytes : int }
  | Restore of { round : int; warm : bool }
  | Restore_rejected of { round : int; reason : string }
  | Daemon_admit of { round : int; cls : string; conn : int }
  | Daemon_shed of { round : int; cls : string; reason : string }
  | Daemon_timeout of { round : int; waited : int; deadline : int }
  | Daemon_degrade of { round : int; entered : bool; staleness : int }
  | Daemon_retry of { round : int; cls : string; attempt : int; due : int }
  | Daemon_watchdog of { round : int; pending : bool; stalled : int }

type t = {
  capacity : int option;
  q : event Queue.t;
  mutable emitted : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Trace.create: capacity < 1"
  | Some _ | None -> ());
  { capacity; q = Queue.create (); emitted = 0 }

let emit t ev =
  t.emitted <- t.emitted + 1;
  Queue.add ev t.q;
  match t.capacity with
  | Some c when Queue.length t.q > c -> ignore (Queue.pop t.q)
  | Some _ | None -> ()

let events t = List.of_seq (Queue.to_seq t.q)
let emitted t = t.emitted
let clear t = Queue.clear t.q

let cause_to_string = function
  | Fault_loss -> "fault_loss"
  | Partition -> "partition"
  | Dead_dst -> "dead_dst"
  | Purge -> "purge"

let cause_of_string = function
  | "fault_loss" -> Some Fault_loss
  | "partition" -> Some Partition
  | "dead_dst" -> Some Dead_dst
  | "purge" -> Some Purge
  | _ -> None

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json = function
  | Round_start { round } -> Printf.sprintf "{\"ev\":\"round_start\",\"round\":%d}" round
  | Send { round; msg; kind; bytes; lc; src; dst } ->
      Printf.sprintf
        "{\"ev\":\"send\",\"round\":%d,\"msg\":%d,\"kind\":\"%s\",\"bytes\":%d,\"lc\":%d,\"src\":%d,\"dst\":%d}"
        round msg (kind_to_string kind) bytes lc src dst
  | Deliver { round; msg; kind; bytes; lc; src; dst } ->
      Printf.sprintf
        "{\"ev\":\"deliver\",\"round\":%d,\"msg\":%d,\"kind\":\"%s\",\"bytes\":%d,\"lc\":%d,\"src\":%d,\"dst\":%d}"
        round msg (kind_to_string kind) bytes lc src dst
  | Drop { round; msg; kind; bytes; src; dst; cause } ->
      Printf.sprintf
        "{\"ev\":\"drop\",\"round\":%d,\"msg\":%d,\"kind\":\"%s\",\"bytes\":%d,\"src\":%d,\"dst\":%d,\"cause\":\"%s\"}"
        round msg (kind_to_string kind) bytes src dst (cause_to_string cause)
  | Retransmit { round; src; dst } ->
      Printf.sprintf "{\"ev\":\"retransmit\",\"round\":%d,\"src\":%d,\"dst\":%d}" round src
        dst
  | Crash { round; node } ->
      Printf.sprintf "{\"ev\":\"crash\",\"round\":%d,\"node\":%d}" round node
  | Restart { round; node } ->
      Printf.sprintf "{\"ev\":\"restart\",\"round\":%d,\"node\":%d}" round node
  | Query_hop { round; msg; bytes; src; dst } ->
      Printf.sprintf
        "{\"ev\":\"query_hop\",\"round\":%d,\"msg\":%d,\"bytes\":%d,\"src\":%d,\"dst\":%d}"
        round msg bytes src dst
  | Suspect { round; by; node } ->
      Printf.sprintf "{\"ev\":\"suspect\",\"round\":%d,\"by\":%d,\"node\":%d}" round by
        node
  | Confirm_dead { round; by; node } ->
      Printf.sprintf "{\"ev\":\"confirm_dead\",\"round\":%d,\"by\":%d,\"node\":%d}" round
        by node
  | Regraft { round; node; new_parent } ->
      Printf.sprintf "{\"ev\":\"regraft\",\"round\":%d,\"node\":%d,\"new_parent\":%d}"
        round node new_parent
  | Quiesce { round } -> Printf.sprintf "{\"ev\":\"quiesce\",\"round\":%d}" round
  | Snapshot_write { round; bytes } ->
      Printf.sprintf "{\"ev\":\"snapshot_write\",\"round\":%d,\"bytes\":%d}" round bytes
  | Restore { round; warm } ->
      Printf.sprintf "{\"ev\":\"restore\",\"round\":%d,\"warm\":%b}" round warm
  | Restore_rejected { round; reason } ->
      Printf.sprintf "{\"ev\":\"restore_rejected\",\"round\":%d,\"reason\":\"%s\"}" round
        (escape_string reason)
  | Daemon_admit { round; cls; conn } ->
      Printf.sprintf "{\"ev\":\"daemon_admit\",\"round\":%d,\"cls\":\"%s\",\"conn\":%d}"
        round (escape_string cls) conn
  | Daemon_shed { round; cls; reason } ->
      Printf.sprintf
        "{\"ev\":\"daemon_shed\",\"round\":%d,\"cls\":\"%s\",\"reason\":\"%s\"}" round
        (escape_string cls) (escape_string reason)
  | Daemon_timeout { round; waited; deadline } ->
      Printf.sprintf
        "{\"ev\":\"daemon_timeout\",\"round\":%d,\"waited\":%d,\"deadline\":%d}" round
        waited deadline
  | Daemon_degrade { round; entered; staleness } ->
      Printf.sprintf
        "{\"ev\":\"daemon_degrade\",\"round\":%d,\"entered\":%b,\"staleness\":%d}" round
        entered staleness
  | Daemon_retry { round; cls; attempt; due } ->
      Printf.sprintf
        "{\"ev\":\"daemon_retry\",\"round\":%d,\"cls\":\"%s\",\"attempt\":%d,\"due\":%d}"
        round (escape_string cls) attempt due
  | Daemon_watchdog { round; pending; stalled } ->
      Printf.sprintf
        "{\"ev\":\"daemon_watchdog\",\"round\":%d,\"pending\":%b,\"stalled\":%d}" round
        pending stalled

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Queue.iter
    (fun ev ->
      Buffer.add_string buf (event_to_json ev);
      Buffer.add_char buf '\n')
    t.q;
  Buffer.contents buf

let pp_event ppf ev = Format.pp_print_string ppf (event_to_json ev)

(* ----- parsing (the analyzer's input path) -----

   A tiny flat-object JSON reader: every event renders as a single-line
   object whose values are ints, booleans or strings, so nothing more
   general is needed.  Mirrors Registry's hand-rolled reader — no JSON
   dependency. *)

type jval = Jint of int | Jstr of string | Jbool of bool

exception Bad of string

let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected '%c'" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 5 >= n then fail "short unicode escape";
              let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
              Buffer.add_char buf (Char.chr (code land 0xff));
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    skip_ws ();
    if !pos >= n then fail "missing value";
    match line.[!pos] with
    | '"' -> Jstr (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else fail "bad literal"
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else fail "bad literal"
    | '-' | '0' .. '9' ->
        let start = !pos in
        if line.[!pos] = '-' then incr pos;
        while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        if !pos = start then fail "empty number";
        Jint (int_of_string (String.sub line start (!pos - start)))
    | c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let event_of_json line =
  match parse_flat line with
  | exception Bad _ -> None
  | exception _ -> None
  | fields -> (
      let int k = match List.assoc_opt k fields with Some (Jint i) -> Some i | _ -> None in
      let str k = match List.assoc_opt k fields with Some (Jstr s) -> Some s | _ -> None in
      let bool k =
        match List.assoc_opt k fields with Some (Jbool b) -> Some b | _ -> None
      in
      let kind k = Option.bind (str k) kind_of_string in
      match str "ev" with
      | Some "round_start" -> (
          match int "round" with Some round -> Some (Round_start { round }) | None -> None)
      | Some "send" -> (
          match (int "round", int "msg", kind "kind", int "bytes", int "lc", int "src", int "dst") with
          | Some round, Some msg, Some kind, Some bytes, Some lc, Some src, Some dst ->
              Some (Send { round; msg; kind; bytes; lc; src; dst })
          | _ -> None)
      | Some "deliver" -> (
          match (int "round", int "msg", kind "kind", int "bytes", int "lc", int "src", int "dst") with
          | Some round, Some msg, Some kind, Some bytes, Some lc, Some src, Some dst ->
              Some (Deliver { round; msg; kind; bytes; lc; src; dst })
          | _ -> None)
      | Some "drop" -> (
          match
            ( int "round",
              int "msg",
              kind "kind",
              int "bytes",
              int "src",
              int "dst",
              Option.bind (str "cause") cause_of_string )
          with
          | Some round, Some msg, Some kind, Some bytes, Some src, Some dst, Some cause ->
              Some (Drop { round; msg; kind; bytes; src; dst; cause })
          | _ -> None)
      | Some "retransmit" -> (
          match (int "round", int "src", int "dst") with
          | Some round, Some src, Some dst -> Some (Retransmit { round; src; dst })
          | _ -> None)
      | Some "crash" -> (
          match (int "round", int "node") with
          | Some round, Some node -> Some (Crash { round; node })
          | _ -> None)
      | Some "restart" -> (
          match (int "round", int "node") with
          | Some round, Some node -> Some (Restart { round; node })
          | _ -> None)
      | Some "query_hop" -> (
          match (int "round", int "msg", int "bytes", int "src", int "dst") with
          | Some round, Some msg, Some bytes, Some src, Some dst ->
              Some (Query_hop { round; msg; bytes; src; dst })
          | _ -> None)
      | Some "suspect" -> (
          match (int "round", int "by", int "node") with
          | Some round, Some by, Some node -> Some (Suspect { round; by; node })
          | _ -> None)
      | Some "confirm_dead" -> (
          match (int "round", int "by", int "node") with
          | Some round, Some by, Some node -> Some (Confirm_dead { round; by; node })
          | _ -> None)
      | Some "regraft" -> (
          match (int "round", int "node", int "new_parent") with
          | Some round, Some node, Some new_parent ->
              Some (Regraft { round; node; new_parent })
          | _ -> None)
      | Some "quiesce" -> (
          match int "round" with Some round -> Some (Quiesce { round }) | None -> None)
      | Some "snapshot_write" -> (
          match (int "round", int "bytes") with
          | Some round, Some bytes -> Some (Snapshot_write { round; bytes })
          | _ -> None)
      | Some "restore" -> (
          match (int "round", bool "warm") with
          | Some round, Some warm -> Some (Restore { round; warm })
          | _ -> None)
      | Some "restore_rejected" -> (
          match (int "round", str "reason") with
          | Some round, Some reason -> Some (Restore_rejected { round; reason })
          | _ -> None)
      | Some "daemon_admit" -> (
          match (int "round", str "cls", int "conn") with
          | Some round, Some cls, Some conn -> Some (Daemon_admit { round; cls; conn })
          | _ -> None)
      | Some "daemon_shed" -> (
          match (int "round", str "cls", str "reason") with
          | Some round, Some cls, Some reason ->
              Some (Daemon_shed { round; cls; reason })
          | _ -> None)
      | Some "daemon_timeout" -> (
          match (int "round", int "waited", int "deadline") with
          | Some round, Some waited, Some deadline ->
              Some (Daemon_timeout { round; waited; deadline })
          | _ -> None)
      | Some "daemon_degrade" -> (
          match (int "round", bool "entered", int "staleness") with
          | Some round, Some entered, Some staleness ->
              Some (Daemon_degrade { round; entered; staleness })
          | _ -> None)
      | Some "daemon_retry" -> (
          match (int "round", str "cls", int "attempt", int "due") with
          | Some round, Some cls, Some attempt, Some due ->
              Some (Daemon_retry { round; cls; attempt; due })
          | _ -> None)
      | Some "daemon_watchdog" -> (
          match (int "round", bool "pending", int "stalled") with
          | Some round, Some pending, Some stalled ->
              Some (Daemon_watchdog { round; pending; stalled })
          | _ -> None)
      | Some _ | None -> None)

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (lineno + 1) acc rest
    | line :: rest -> (
        match event_of_json line with
        | Some ev -> go (lineno + 1) (ev :: acc) rest
        | None -> Error (Printf.sprintf "trace: unparseable event at line %d" lineno))
  in
  go 1 [] lines
