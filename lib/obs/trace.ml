(* Round-clocked structured tracing.

   Events carry the simulation round, never wall time: the JSONL
   rendering of a run is a pure function of its seeds, which is what
   lets tests diff whole traces byte-for-byte. *)

type drop_cause = Fault_loss | Partition | Dead_dst | Purge

type event =
  | Round_start of { round : int }
  | Send of { round : int; src : int; dst : int }
  | Deliver of { round : int; src : int; dst : int }
  | Drop of { round : int; src : int; dst : int; cause : drop_cause }
  | Retransmit of { round : int; src : int; dst : int }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Query_hop of { round : int; src : int; dst : int }
  | Suspect of { round : int; by : int; node : int }
  | Confirm_dead of { round : int; by : int; node : int }
  | Regraft of { round : int; node : int; new_parent : int }
  | Quiesce of { round : int }
  | Snapshot_write of { round : int; bytes : int }
  | Restore of { round : int; warm : bool }
  | Restore_rejected of { round : int; reason : string }

type t = {
  capacity : int option;
  q : event Queue.t;
  mutable emitted : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Trace.create: capacity < 1"
  | Some _ | None -> ());
  { capacity; q = Queue.create (); emitted = 0 }

let emit t ev =
  t.emitted <- t.emitted + 1;
  Queue.add ev t.q;
  match t.capacity with
  | Some c when Queue.length t.q > c -> ignore (Queue.pop t.q)
  | Some _ | None -> ()

let events t = List.of_seq (Queue.to_seq t.q)
let emitted t = t.emitted
let clear t = Queue.clear t.q

let cause_to_string = function
  | Fault_loss -> "fault_loss"
  | Partition -> "partition"
  | Dead_dst -> "dead_dst"
  | Purge -> "purge"

let event_to_json = function
  | Round_start { round } -> Printf.sprintf "{\"ev\":\"round_start\",\"round\":%d}" round
  | Send { round; src; dst } ->
      Printf.sprintf "{\"ev\":\"send\",\"round\":%d,\"src\":%d,\"dst\":%d}" round src dst
  | Deliver { round; src; dst } ->
      Printf.sprintf "{\"ev\":\"deliver\",\"round\":%d,\"src\":%d,\"dst\":%d}" round src dst
  | Drop { round; src; dst; cause } ->
      Printf.sprintf "{\"ev\":\"drop\",\"round\":%d,\"src\":%d,\"dst\":%d,\"cause\":\"%s\"}"
        round src dst (cause_to_string cause)
  | Retransmit { round; src; dst } ->
      Printf.sprintf "{\"ev\":\"retransmit\",\"round\":%d,\"src\":%d,\"dst\":%d}" round src
        dst
  | Crash { round; node } ->
      Printf.sprintf "{\"ev\":\"crash\",\"round\":%d,\"node\":%d}" round node
  | Restart { round; node } ->
      Printf.sprintf "{\"ev\":\"restart\",\"round\":%d,\"node\":%d}" round node
  | Query_hop { round; src; dst } ->
      Printf.sprintf "{\"ev\":\"query_hop\",\"round\":%d,\"src\":%d,\"dst\":%d}" round src
        dst
  | Suspect { round; by; node } ->
      Printf.sprintf "{\"ev\":\"suspect\",\"round\":%d,\"by\":%d,\"node\":%d}" round by
        node
  | Confirm_dead { round; by; node } ->
      Printf.sprintf "{\"ev\":\"confirm_dead\",\"round\":%d,\"by\":%d,\"node\":%d}" round
        by node
  | Regraft { round; node; new_parent } ->
      Printf.sprintf "{\"ev\":\"regraft\",\"round\":%d,\"node\":%d,\"new_parent\":%d}"
        round node new_parent
  | Quiesce { round } -> Printf.sprintf "{\"ev\":\"quiesce\",\"round\":%d}" round
  | Snapshot_write { round; bytes } ->
      Printf.sprintf "{\"ev\":\"snapshot_write\",\"round\":%d,\"bytes\":%d}" round bytes
  | Restore { round; warm } ->
      Printf.sprintf "{\"ev\":\"restore\",\"round\":%d,\"warm\":%b}" round warm
  | Restore_rejected { round; reason } ->
      let buf = Buffer.create (String.length reason + 8) in
      String.iter
        (fun ch ->
          match ch with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        reason;
      Printf.sprintf "{\"ev\":\"restore_rejected\",\"round\":%d,\"reason\":\"%s\"}" round
        (Buffer.contents buf)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Queue.iter
    (fun ev ->
      Buffer.add_string buf (event_to_json ev);
      Buffer.add_char buf '\n')
    t.q;
  Buffer.contents buf

let pp_event ppf ev = Format.pp_print_string ppf (event_to_json ev)
