(* Wall-clock span timers.

   The single audited wall-clock reader in lib/ (see the
   no-wall-clock-in-lib rule): spans profile hot paths for bench
   harnesses and must never feed Registry metrics or Trace events —
   wall time would break the byte-identical same-seed contract. *)

type t = {
  name : string;
  mutable count : int;
  mutable total_s : float;
  mutable max_s : float;
}

let create name = { name; count = 0; total_s = 0.0; max_s = 0.0 }
let name t = t.name

let record t elapsed =
  t.count <- t.count + 1;
  t.total_s <- t.total_s +. elapsed;
  if elapsed > t.max_s then t.max_s <- elapsed

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record t (Unix.gettimeofday () -. t0)) f

let count t = t.count
let total_s t = t.total_s
let mean_s t = if t.count = 0 then 0.0 else t.total_s /. float_of_int t.count
let max_s t = t.max_s

let reset t =
  t.count <- 0;
  t.total_s <- 0.0;
  t.max_s <- 0.0

let pp_duration ppf s =
  if s >= 1.0 then Format.fprintf ppf "%.3f s" s
  else if s >= 1e-3 then Format.fprintf ppf "%.3f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf ppf "%.3f us" (s *. 1e6)
  else Format.fprintf ppf "%.0f ns" (s *. 1e9)

let pp ppf t =
  Format.fprintf ppf "%s: total %a over %d run%s (mean %a, max %a)" t.name pp_duration
    t.total_s t.count
    (if t.count = 1 then "" else "s")
    pp_duration (mean_s t) pp_duration t.max_s
