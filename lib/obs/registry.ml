(* Deterministic metrics registry.

   Handles are resolved once and bumped on hot paths (a Counter.incr is
   one int store); snapshots and renderers traverse in sorted
   (name, labels) order so same-seed runs produce byte-identical
   reports.  Nothing here reads the clock or draws randomness. *)

type labels = (string * string) list

let normalize_labels labels = List.sort_uniq Stdlib.compare labels

(* 0 is its own bucket; bucket i >= 1 holds [2^(i-1), 2^i).  63 value
   buckets cover every non-negative OCaml int. *)
let n_buckets = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array;
}

type metric =
  | M_counter of int ref
  | M_gauge of int ref
  | M_hist of hist

type t = { tbl : (string * labels, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

module Counter = struct
  type t = int ref

  let incr ?(by = 1) c =
    if by < 0 then invalid_arg "Registry.Counter.incr: negative increment";
    c := !c + by

  let value c = !c
end

module Gauge = struct
  type t = int ref

  let set g v = g := v
  let add g d = g := !g + d
  let value g = !g
end

module Histogram = struct
  type t = hist

  let bucket_of v =
    (* v = 0 -> 0; otherwise 1 + floor(log2 v) = the bit width of v *)
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    width 0 v

  let observe h v =
    if v < 0 then invalid_arg "Registry.Histogram.observe: negative sample";
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1

  let count h = h.h_count
  let sum h = h.h_sum
  let max_value h = h.h_max

  let bucket_bounds i =
    if i <= 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)
end

let counter t ?(labels = []) name =
  let key = (name, normalize_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some (M_counter c) -> c
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Registry.counter: %s already registered with a different type" name)
  | None ->
      let c = ref 0 in
      Hashtbl.replace t.tbl key (M_counter c);
      c

let gauge t ?(labels = []) name =
  let key = (name, normalize_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some (M_gauge g) -> g
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Registry.gauge: %s already registered with a different type" name)
  | None ->
      let g = ref 0 in
      Hashtbl.replace t.tbl key (M_gauge g);
      g

let histogram t ?(labels = []) name =
  let key = (name, normalize_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some (M_hist h) -> h
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Registry.histogram: %s already registered with a different type"
           name)
  | None ->
      let h = { h_count = 0; h_sum = 0; h_max = 0; h_buckets = Array.make n_buckets 0 } in
      Hashtbl.replace t.tbl key (M_hist h);
      h

type sample =
  | Counter of int
  | Gauge of int
  | Histogram of {
      count : int;
      sum : int;
      max_value : int;
      buckets : (int * int) list;
    }

type snapshot = (string * labels * sample) list

let sample_of = function
  | M_counter c -> Counter !c
  | M_gauge g -> Gauge !g
  | M_hist h ->
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
      done;
      Histogram { count = h.h_count; sum = h.h_sum; max_value = h.h_max; buckets = !buckets }

let snapshot t =
  List.rev
    (Bwc_stats.Tbl.fold_sorted
       (fun (name, labels) m acc -> (name, labels, sample_of m) :: acc)
       t.tbl [])

let diff ~before ~after =
  let prior = Hashtbl.create (List.length before) in
  List.iter (fun (name, labels, s) -> Hashtbl.replace prior (name, labels) s) before;
  List.map
    (fun (name, labels, s) ->
      let s =
        match (s, Hashtbl.find_opt prior (name, labels)) with
        | Counter a, Some (Counter b) -> Counter (a - b)
        | Gauge a, _ -> Gauge a
        | Histogram a, Some (Histogram b) ->
            let old = Hashtbl.create 8 in
            List.iter (fun (i, c) -> Hashtbl.replace old i c) b.buckets;
            let buckets =
              List.filter_map
                (fun (i, c) ->
                  let c = c - Option.value ~default:0 (Hashtbl.find_opt old i) in
                  if c > 0 then Some (i, c) else None)
                a.buckets
            in
            Histogram
              {
                count = a.count - b.count;
                sum = a.sum - b.sum;
                max_value = a.max_value;
                buckets;
              }
        | s, _ -> s
      in
      (name, labels, s))
    after

let reset t =
  Bwc_stats.Tbl.iter_sorted
    (fun _ m ->
      match m with
      | M_counter c -> c := 0
      | M_gauge g -> g := 0
      | M_hist h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_max <- 0;
          Array.fill h.h_buckets 0 n_buckets 0)
    t.tbl

let find snap ?(labels = []) name =
  let labels = normalize_labels labels in
  List.find_map
    (fun (n, l, s) -> if n = name && l = labels then Some s else None)
    snap

let scalar = function
  | Counter v | Gauge v -> v
  | Histogram h -> h.count

let get snap ?labels name =
  match find snap ?labels name with Some s -> scalar s | None -> 0

let sum_by_name snap name =
  List.fold_left
    (fun acc (n, _, s) -> if n = name then acc + scalar s else acc)
    0 snap

(* ----- quantile estimation -----

   The log2 buckets already carry the data; the estimate walks the
   cumulative counts to the bucket covering the requested rank and
   interpolates linearly inside its bounds.  Integer arithmetic only
   (rank = ceil(pct * count / 100)), so renderings stay byte-stable. *)

let hist_quantile ~count ~max_value ~buckets ~pct =
  if pct < 0 || pct > 100 then invalid_arg "Registry.quantile: pct not in [0,100]";
  if count = 0 then 0
  else begin
    let rank = Stdlib.max 1 (((pct * count) + 99) / 100) in
    let rec go cum = function
      | [] -> max_value
      | (i, c) :: rest ->
          if cum + c >= rank then begin
            let lo, hi = Histogram.bucket_bounds i in
            let p = rank - cum in
            let v = if c <= 1 then hi else lo + ((hi - lo) * (p - 1) / (c - 1)) in
            Stdlib.min v max_value
          end
          else go (cum + c) rest
    in
    go 0 buckets
  end

let quantile s ~pct =
  match s with
  | Counter _ | Gauge _ -> None
  | Histogram { count; max_value; buckets; _ } ->
      Some (hist_quantile ~count ~max_value ~buckets ~pct)

(* ----- text rendering ----- *)

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let pp_sample ppf = function
  | Counter v -> Format.fprintf ppf "%d" v
  | Gauge v -> Format.fprintf ppf "%d gauge" v
  | Histogram h ->
      let q pct =
        hist_quantile ~count:h.count ~max_value:h.max_value ~buckets:h.buckets ~pct
      in
      Format.fprintf ppf "histogram count=%d sum=%d max=%d p50=%d p90=%d p99=%d"
        h.count h.sum h.max_value (q 50) (q 90) (q 99);
      if h.buckets <> [] then begin
        let bucket (i, c) =
          let lo, hi = Histogram.bucket_bounds i in
          if lo = hi then Printf.sprintf "%d:%d" lo c
          else Printf.sprintf "%d-%d:%d" lo hi c
        in
        Format.fprintf ppf " buckets=[%s]"
          (String.concat " " (List.map bucket h.buckets))
      end

let pp_text ppf snap =
  List.iter
    (fun (name, labels, s) ->
      Format.fprintf ppf "%s%a %a@." name pp_labels labels pp_sample s)
    snap

let to_text snap = Format.asprintf "%a" pp_text snap

(* ----- JSON rendering ----- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_entry buf (name, labels, s) =
  Buffer.add_string buf (Printf.sprintf "{\"name\":\"%s\",\"labels\":{" (json_escape name));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    labels;
  Buffer.add_string buf "},";
  (match s with
  | Counter v -> Buffer.add_string buf (Printf.sprintf "\"type\":\"counter\",\"value\":%d" v)
  | Gauge v -> Buffer.add_string buf (Printf.sprintf "\"type\":\"gauge\",\"value\":%d" v)
  | Histogram h ->
      let q pct =
        hist_quantile ~count:h.count ~max_value:h.max_value ~buckets:h.buckets ~pct
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"buckets\":["
           h.count h.sum h.max_value (q 50) (q 90) (q 99));
      List.iteri
        (fun i (b, c) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%d]" b c))
        h.buckets;
      Buffer.add_char buf ']');
  Buffer.add_char buf '}'

let to_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i entry ->
      if i > 0 then Buffer.add_char buf ',';
      json_of_entry buf entry)
    snap;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ----- JSON parsing (the subset [to_json] emits) ----- *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_int of int

exception Parse_error of string

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              if code > 0xff then fail "non-latin \\u escape unsupported";
              Buffer.add_char buf (Char.chr code);
              pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    J_int (int_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); J_obj [] end
        else begin
          let rec members acc =
            let key = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); J_arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          J_arr (elements [])
        end
    | Some '"' -> J_str (parse_string ())
    | _ -> parse_int ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function
  | J_obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" key)))
  | _ -> raise (Parse_error (Printf.sprintf "expected an object holding %S" key))

let as_int = function
  | J_int v -> v
  | _ -> raise (Parse_error "expected an integer")

let as_str = function
  | J_str v -> v
  | _ -> raise (Parse_error "expected a string")

let sample_of_json j =
  match as_str (member "type" j) with
  | "counter" -> Counter (as_int (member "value" j))
  | "gauge" -> Gauge (as_int (member "value" j))
  | "histogram" ->
      let buckets =
        match member "buckets" j with
        | J_arr pairs ->
            List.map
              (function
                | J_arr [ b; c ] -> (as_int b, as_int c)
                | _ -> raise (Parse_error "expected a [bucket, count] pair"))
              pairs
        | _ -> raise (Parse_error "expected a bucket array")
      in
      Histogram
        {
          count = as_int (member "count" j);
          sum = as_int (member "sum" j);
          max_value = as_int (member "max" j);
          buckets;
        }
  | other -> raise (Parse_error (Printf.sprintf "unknown metric type %S" other))

let of_json text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg
  | j -> (
      try
        match member "metrics" j with
        | J_arr entries ->
            Ok
              (List.map
                 (fun e ->
                   let labels =
                     match member "labels" e with
                     | J_obj fields -> List.map (fun (k, v) -> (k, as_str v)) fields
                     | _ -> raise (Parse_error "expected a labels object")
                   in
                   (as_str (member "name" e), labels, sample_of_json e))
                 entries)
        | _ -> Error "\"metrics\" is not an array"
      with Parse_error msg -> Error msg)
