(** Opt-in wall-clock span timers for profiling hot paths.

    This is the {e only} library module allowed to read the wall clock
    (enforced by the [no-wall-clock-in-lib] bwclint rule): spans exist
    for harnesses like [bench/main.ml] to attribute real time to
    Algorithm 1, tree construction and aggregation.  Wall time is
    inherently nondeterministic, so span readings must never feed
    {!Registry} metrics or {!Trace} events — keep them in
    benchmark-only reporting. *)

type t

val create : string -> t
(** A named span accumulator, initially empty. *)

val name : t -> string

val time : t -> (unit -> 'a) -> 'a
(** [time span f] runs [f ()] and charges its wall-clock duration to
    the span (also on exception). *)

val count : t -> int
(** Completed timings. *)

val total_s : t -> float
(** Accumulated wall-clock seconds. *)

val mean_s : t -> float
(** [total_s / count]; 0 when never timed. *)

val max_s : t -> float
(** Longest single timing. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** [name: total count mean max] with human units. *)

val pp_duration : Format.formatter -> float -> unit
(** Seconds rendered with an adaptive unit (ns/us/ms/s). *)
