(** Structured, round-clocked trace of engine and protocol activity.

    Events are typed and stamped with the {e simulation round} — never
    wall time — so two runs from the same seed and fault plan emit
    byte-identical traces ({!to_jsonl} is the canonical rendering, one
    JSON object per line).  Components emit into a sink resolved at
    construction time; the sink is either unbounded or a bounded ring
    that keeps the newest events. *)

type drop_cause =
  | Fault_loss  (** lost by the fault plan at send time *)
  | Partition   (** blocked by a scripted partition at send time *)
  | Dead_dst    (** destination inactive at delivery time *)
  | Purge       (** in-flight traffic purged by a crash/leave or
                    [clear_in_flight] *)

type event =
  | Round_start of { round : int }
  | Send of { round : int; src : int; dst : int }
  | Deliver of { round : int; src : int; dst : int }
  | Drop of { round : int; src : int; dst : int; cause : drop_cause }
  | Retransmit of { round : int; src : int; dst : int }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Query_hop of { round : int; src : int; dst : int }
  | Suspect of { round : int; by : int; node : int }
      (** watcher [by]'s failure detector started suspecting [node] *)
  | Confirm_dead of { round : int; by : int; node : int }
      (** watcher [by] confirmed [node] dead; self-healing repair follows *)
  | Regraft of { round : int; node : int; new_parent : int }
      (** overlay repair re-attached orphaned [node] under [new_parent] *)
  | Quiesce of { round : int }
  | Snapshot_write of { round : int; bytes : int }
      (** a snapshot of the whole system was encoded ([bytes] long) *)
  | Restore of { round : int; warm : bool }
      (** the system came back up — [warm] from a verified snapshot,
          cold from reconvergence *)
  | Restore_rejected of { round : int; reason : string }
      (** a snapshot failed verification (checksum/version/decode) and
          was discarded; a cold start follows *)

type t
(** A sink. *)

val create : ?capacity:int -> unit -> t
(** Unbounded by default; [capacity] turns the sink into a ring that
    retains only the newest [capacity] events ([capacity >= 1]). *)

val emit : t -> event -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val emitted : t -> int
(** Total events ever emitted (>= [List.length (events t)] for rings). *)

val clear : t -> unit
(** Drops retained events; [emitted] keeps counting from its old value. *)

val cause_to_string : drop_cause -> string

val event_to_json : event -> string
(** One canonical single-line JSON object, e.g.
    [{"ev":"drop","round":3,"src":0,"dst":5,"cause":"fault_loss"}]. *)

val to_jsonl : t -> string
(** Retained events as JSONL (one {!event_to_json} line per event,
    each terminated by ['\n']). *)

val pp_event : Format.formatter -> event -> unit
