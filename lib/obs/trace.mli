(** Structured, round-clocked trace of engine and protocol activity.

    Events are typed and stamped with the {e simulation round} — never
    wall time — so two runs from the same seed and fault plan emit
    byte-identical traces ({!to_jsonl} is the canonical rendering, one
    JSON object per line).  Components emit into a sink resolved at
    construction time; the sink is either unbounded or a bounded ring
    that keeps the newest events.

    Schema v2: {!Send}/{!Deliver}/{!Drop}/{!Query_hop} carry message
    identity (a per-run monotone id), a payload {!msg_kind}, an
    estimated wire size in bytes, and — on send/deliver — the emitting
    node's Lamport clock, making the happens-before DAG of a run
    reconstructible from the trace alone (see {!Causal}). *)

type drop_cause =
  | Fault_loss  (** lost by the fault plan at send time *)
  | Partition   (** blocked by a scripted partition at send time *)
  | Dead_dst    (** destination inactive at delivery time *)
  | Purge       (** in-flight traffic purged by a crash/leave or
                    [clear_in_flight] *)

type msg_kind =
  | Heartbeat   (** failure-detector lease renewal *)
  | Aggregate   (** steady-state Algorithm 2/3 update *)
  | Invalidate  (** update repropagated after a dead neighbor's state
                    was deleted *)
  | Ack         (** per-link cumulative acknowledgement *)
  | Retransmit  (** timeout-driven re-send of an unacked update *)
  | Query       (** Algorithm 4 routing hop *)
  | Repair      (** update triggered by overlay self-healing
                    (relink/regraft or root-path dirtying) *)

val kind_to_string : msg_kind -> string
(** Lowercase wire name, e.g. ["heartbeat"]. *)

val kind_of_string : string -> msg_kind option

val all_kinds : msg_kind list
(** Every kind once, in a fixed canonical order (the order reports
    enumerate attribution rows in). *)

type event =
  | Round_start of { round : int }
  | Send of {
      round : int;
      msg : int;    (** per-run monotone message id *)
      kind : msg_kind;
      bytes : int;  (** estimated wire size *)
      lc : int;     (** sender's Lamport clock after the send bump *)
      src : int;
      dst : int;
    }
  | Deliver of {
      round : int;
      msg : int;
      kind : msg_kind;
      bytes : int;
      lc : int;     (** receiver's Lamport clock after the merge bump *)
      src : int;
      dst : int;
    }
  | Drop of {
      round : int;
      msg : int;
      kind : msg_kind;
      bytes : int;
      src : int;
      dst : int;
      cause : drop_cause;
    }
  | Retransmit of { round : int; src : int; dst : int }
      (** retransmission decision marker; the re-sent update follows as
          a [Send] with [kind = Retransmit] *)
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Query_hop of { round : int; msg : int; bytes : int; src : int; dst : int }
      (** one synchronous Algorithm 4 routing hop; ids are drawn from
          the same per-run counter as engine sends *)
  | Suspect of { round : int; by : int; node : int }
      (** watcher [by]'s failure detector started suspecting [node] *)
  | Confirm_dead of { round : int; by : int; node : int }
      (** watcher [by] confirmed [node] dead; self-healing repair follows *)
  | Regraft of { round : int; node : int; new_parent : int }
      (** overlay repair re-attached orphaned [node] under [new_parent] *)
  | Quiesce of { round : int }
  | Snapshot_write of { round : int; bytes : int }
      (** a snapshot of the whole system was encoded ([bytes] long) *)
  | Restore of { round : int; warm : bool }
      (** the system came back up — [warm] from a verified snapshot,
          cold from reconvergence *)
  | Restore_rejected of { round : int; reason : string }
      (** a snapshot failed verification (checksum/version/decode) and
          was discarded; a cold start follows *)
  | Daemon_admit of { round : int; cls : string; conn : int }
      (** the daemon reactor admitted a request of class [cls]
          (["churn"], ["query"] or ["meas"]) from connection [conn];
          [round] is the reactor tick, the daemon's logical clock *)
  | Daemon_shed of { round : int; cls : string; reason : string }
      (** admission refused a request (["queue_full"], ["rate_limit"],
          ["pressure"] or ["draining"]); the client got a typed SHED
          response, never a silent drop *)
  | Daemon_timeout of { round : int; waited : int; deadline : int }
      (** a queued query exceeded its deadline budget before the reactor
          reached it and was answered with a typed TIMEOUT *)
  | Daemon_degrade of { round : int; entered : bool; staleness : int }
      (** the reactor entered ([entered = true]) or left degraded mode;
          while degraded, queries are served from the last consistent
          index with the given staleness bound (ticks) *)
  | Daemon_retry of { round : int; cls : string; attempt : int; due : int }
      (** a failed ingestion was scheduled for retry number [attempt]
          with jittered exponential backoff, due at tick [due] *)
  | Daemon_watchdog of { round : int; pending : bool; stalled : int }
      (** the watchdog fired: convergence has been stalled for [stalled]
          ticks; [pending] is whether the failure detector also reports
          overdue heartbeats ({!Bwc_core.Detector.pending}) *)

type t
(** A sink. *)

val create : ?capacity:int -> unit -> t
(** Unbounded by default; [capacity] turns the sink into a ring that
    retains only the newest [capacity] events ([capacity >= 1]). *)

val emit : t -> event -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val emitted : t -> int
(** Total events ever emitted (>= [List.length (events t)] for rings). *)

val clear : t -> unit
(** Drops retained events; [emitted] keeps counting from its old value. *)

val cause_to_string : drop_cause -> string
val cause_of_string : string -> drop_cause option

val event_to_json : event -> string
(** One canonical single-line JSON object, e.g.
    [{"ev":"drop","round":3,"msg":17,"kind":"aggregate","bytes":128,"src":0,"dst":5,"cause":"fault_loss"}]. *)

val to_jsonl : t -> string
(** Retained events as JSONL (one {!event_to_json} line per event,
    each terminated by ['\n']). *)

val event_of_json : string -> event option
(** Inverse of {!event_to_json}; [None] on malformed input or unknown
    event names (forward compatibility is deliberate — analyzers skip
    nothing, {!of_jsonl} rejects instead). *)

val of_jsonl : string -> (event list, string) result
(** Parse a whole JSONL trace (blank lines ignored).  [Error] names the
    first unparseable line. *)

val pp_event : Format.formatter -> event -> unit
