(** Happens-before reconstruction and convergence critical-path
    analysis over a schema-v2 {!Trace}.

    All functions are pure in the event list and render in canonical
    orders (message id, node id, link, {!Trace.all_kinds}), so
    identically-seeded runs analyze to byte-identical text and JSON.

    The happens-before model: each {!Trace.Send} is caused by the
    strongest causal chain already delivered at its source when it was
    emitted (trace order is causally consistent — the engine delivers a
    round's due messages before any node steps).  The {e critical path}
    is the longest such chain that ends in a delivery: the witness
    sequence of messages convergence actually waited for. *)

type msg_info = {
  m_id : int;
  m_kind : Trace.msg_kind;
  m_bytes : int;
  m_src : int;
  m_dst : int;
  m_send_round : int;
  m_send_lc : int;  (** sender Lamport stamp *)
  m_deliver_round : int option;  (** first delivery ([None] if lost) *)
  m_deliver_lc : int option;  (** receiver Lamport stamp at first delivery *)
  m_pred : int option;
      (** causal predecessor: the message whose delivery headed the
          strongest chain at the source when this one was sent *)
  m_chain : int;  (** length of the longest causal chain ending here *)
}

type dag = {
  msgs : msg_info list;  (** ascending [m_id] *)
  unmatched_delivers : int list;
      (** ids delivered without a visible send — empty on any complete
          (unbounded-sink) trace; non-empty means the ring dropped the
          send *)
}

val reconstruct : Trace.event list -> dag
(** Single O(events) scan.  Predecessor links form a forest (each
    message has at most one), so the reconstructed DAG is acyclic by
    construction; tests assert the stronger per-edge facts
    [pred.deliver_round <= succ.send_round] and
    [pred.deliver_lc < succ.send_lc]. *)

type hop = {
  h_msg : int;
  h_kind : Trace.msg_kind;
  h_src : int;
  h_dst : int;
  h_send_round : int;
  h_deliver_round : int;
  h_bytes : int;
}

type kind_stat = {
  k_sends : int;
  k_bytes : int;
  k_delivered : int;
  k_dropped : int;
}

type node_stat = {
  n_sent : int;
  n_sent_bytes : int;
  n_recv : int;
  n_recv_bytes : int;
}

type link_stat = { l_msgs : int; l_bytes : int }
type round_stat = { r_sends : int; r_delivers : int; r_bytes : int }

type report = {
  rounds : int;  (** highest round stamped on any event *)
  quiesce_round : int option;  (** first [Quiesce], if any *)
  messages : int;  (** [Send] events (1:1 with engine sends) *)
  delivered_events : int;
  dropped_events : int;
  query_hops : int;
  total_bytes : int;  (** sent bytes, query hops included *)
  critical_path : hop list;  (** causal order, root first *)
  cp_rounds : int;  (** rounds spanned: last delivery - first send *)
  frac_explained : float;
      (** [cp_rounds] over the quiesce round when the path ends inside the
          initial convergence, over the full traced span when it runs past
          it (e.g. crash recovery) — a genuine fraction in [0, 1] *)
  by_kind : (Trace.msg_kind * kind_stat) list;
      (** one row per kind in {!Trace.all_kinds} order; query hops are
          counted under [Query] as immediately-delivered sends *)
  by_node : (int * node_stat) list;  (** ascending node id *)
  by_link : ((int * int) * link_stat) list;  (** ascending (src, dst) *)
  per_round : (int * round_stat) list;  (** ascending round *)
}

val analyze : Trace.event list -> report

val to_text : report -> string
(** Human-readable report: summary, critical-path witness chain,
    per-kind byte budget, busiest links, ASCII round waterfall. *)

val to_json : report -> string
(** Canonical single-line JSON rendering of the whole report. *)

val kind_stat_of : report -> Trace.msg_kind -> kind_stat
(** The row for one kind (all-zero when the kind never appeared). *)

val engine_sends : report -> int
(** Sum of [k_sends] over every non-[Query] kind.  Equals the engine's
    [msgs_sent] counter exactly on any unbounded trace: every
    [Engine.send] emits exactly one [Send] event, and query hops never
    pass through the engine queue. *)
