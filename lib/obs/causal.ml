(* Happens-before reconstruction and convergence critical-path analysis
   over a schema-v2 trace (see trace.mli).

   Everything here is a pure function of the event list, and every
   output is rendered in a canonical order (message id, node id, link,
   kind order of Trace.all_kinds), so two identically-seeded runs
   analyze to byte-identical reports.

   The reconstruction is a single scan in trace order, which is
   causally consistent by construction: the engine delivers a round's
   due messages before any node steps, so every Deliver of round r
   precedes every Send of round r in the stream.  A send's causal
   predecessor is the strongest chain already delivered at its source —
   the same O(events) recurrence used for longest paths in DAGs. *)

module Tbl = Bwc_stats.Tbl

type msg_info = {
  m_id : int;
  m_kind : Trace.msg_kind;
  m_bytes : int;
  m_src : int;
  m_dst : int;
  m_send_round : int;
  m_send_lc : int;
  m_deliver_round : int option;
  m_deliver_lc : int option;
  m_pred : int option;
  m_chain : int;
}

type dag = {
  msgs : msg_info list;
  unmatched_delivers : int list;
}

(* mutable accumulator behind msg_info *)
type cell = {
  c_id : int;
  c_kind : Trace.msg_kind;
  c_bytes : int;
  c_src : int;
  c_dst : int;
  c_send_round : int;
  c_send_lc : int;
  mutable c_deliver_round : int option;
  mutable c_deliver_lc : int option;
  c_pred : int option;
  c_chain : int;
}

let reconstruct events =
  let cells : (int, cell) Hashtbl.t = Hashtbl.create 1024 in
  (* strongest delivered chain per node: length and the message id that
     achieves it (first achiever wins ties, which is the smallest-id one
     delivered earliest — deterministic) *)
  let best_len : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let best_msg : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let unmatched = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Send { round; msg; kind; bytes; lc; src; dst } ->
          let len = Option.value ~default:0 (Hashtbl.find_opt best_len src) in
          Hashtbl.replace cells msg
            {
              c_id = msg;
              c_kind = kind;
              c_bytes = bytes;
              c_src = src;
              c_dst = dst;
              c_send_round = round;
              c_send_lc = lc;
              c_deliver_round = None;
              c_deliver_lc = None;
              c_pred = Hashtbl.find_opt best_msg src;
              c_chain = len + 1;
            }
      | Trace.Deliver { round; msg; lc; dst; _ } -> (
          match Hashtbl.find_opt cells msg with
          | None -> unmatched := msg :: !unmatched
          | Some c ->
              (if c.c_deliver_round = None then begin
                 c.c_deliver_round <- Some round;
                 c.c_deliver_lc <- Some lc
               end);
              let cur = Option.value ~default:0 (Hashtbl.find_opt best_len dst) in
              if c.c_chain > cur then begin
                Hashtbl.replace best_len dst c.c_chain;
                Hashtbl.replace best_msg dst c.c_id
              end)
      | _ -> ())
    events;
  let msgs =
    List.map
      (fun id ->
        let c = Hashtbl.find cells id in
        {
          m_id = c.c_id;
          m_kind = c.c_kind;
          m_bytes = c.c_bytes;
          m_src = c.c_src;
          m_dst = c.c_dst;
          m_send_round = c.c_send_round;
          m_send_lc = c.c_send_lc;
          m_deliver_round = c.c_deliver_round;
          m_deliver_lc = c.c_deliver_lc;
          m_pred = c.c_pred;
          m_chain = c.c_chain;
        })
      (Tbl.sorted_keys cells)
  in
  { msgs; unmatched_delivers = List.sort_uniq compare !unmatched }

(* ----- attribution and the full report ----- *)

type hop = {
  h_msg : int;
  h_kind : Trace.msg_kind;
  h_src : int;
  h_dst : int;
  h_send_round : int;
  h_deliver_round : int;
  h_bytes : int;
}

type kind_stat = {
  k_sends : int;
  k_bytes : int;
  k_delivered : int;
  k_dropped : int;
}

type node_stat = {
  n_sent : int;
  n_sent_bytes : int;
  n_recv : int;
  n_recv_bytes : int;
}

type link_stat = { l_msgs : int; l_bytes : int }
type round_stat = { r_sends : int; r_delivers : int; r_bytes : int }

type report = {
  rounds : int;
  quiesce_round : int option;
  messages : int;
  delivered_events : int;
  dropped_events : int;
  query_hops : int;
  total_bytes : int;
  critical_path : hop list;
  cp_rounds : int;
  frac_explained : float;
  by_kind : (Trace.msg_kind * kind_stat) list;
  by_node : (int * node_stat) list;
  by_link : ((int * int) * link_stat) list;
  per_round : (int * round_stat) list;
}

let zero_kind = { k_sends = 0; k_bytes = 0; k_delivered = 0; k_dropped = 0 }
let zero_node = { n_sent = 0; n_sent_bytes = 0; n_recv = 0; n_recv_bytes = 0 }
let zero_link = { l_msgs = 0; l_bytes = 0 }
let zero_round = { r_sends = 0; r_delivers = 0; r_bytes = 0 }

let analyze events =
  let dag = reconstruct events in
  let by_msg : (int, msg_info) Hashtbl.t = Hashtbl.create 1024 in
  List.iter (fun m -> Hashtbl.replace by_msg m.m_id m) dag.msgs;
  let kinds : (Trace.msg_kind, kind_stat) Hashtbl.t = Hashtbl.create 8 in
  let nodes : (int, node_stat) Hashtbl.t = Hashtbl.create 64 in
  let links : (int * int, link_stat) Hashtbl.t = Hashtbl.create 256 in
  let rounds_tbl : (int, round_stat) Hashtbl.t = Hashtbl.create 64 in
  let upd tbl key zero f =
    Hashtbl.replace tbl key (f (Option.value ~default:zero (Hashtbl.find_opt tbl key)))
  in
  let last_round = ref 0 in
  let quiesce = ref None in
  let messages = ref 0 in
  let delivered = ref 0 in
  let dropped = ref 0 in
  let hops = ref 0 in
  let total_bytes = ref 0 in
  let record_send ~round ~kind ~bytes ~src ~dst =
    total_bytes := !total_bytes + bytes;
    upd kinds kind zero_kind (fun k ->
        { k with k_sends = k.k_sends + 1; k_bytes = k.k_bytes + bytes });
    upd nodes src zero_node (fun s ->
        { s with n_sent = s.n_sent + 1; n_sent_bytes = s.n_sent_bytes + bytes });
    upd links (src, dst) zero_link (fun l ->
        { l_msgs = l.l_msgs + 1; l_bytes = l.l_bytes + bytes });
    upd rounds_tbl round zero_round (fun r ->
        { r with r_sends = r.r_sends + 1; r_bytes = r.r_bytes + bytes })
  in
  let record_recv ~round ~kind ~bytes ~dst =
    upd kinds kind zero_kind (fun k -> { k with k_delivered = k.k_delivered + 1 });
    upd nodes dst zero_node (fun s ->
        { s with n_recv = s.n_recv + 1; n_recv_bytes = s.n_recv_bytes + bytes });
    upd rounds_tbl round zero_round (fun r -> { r with r_delivers = r.r_delivers + 1 })
  in
  List.iter
    (fun ev ->
      (match ev with
      | Trace.Round_start { round }
      | Trace.Send { round; _ }
      | Trace.Deliver { round; _ }
      | Trace.Drop { round; _ }
      | Trace.Retransmit { round; _ }
      | Trace.Crash { round; _ }
      | Trace.Restart { round; _ }
      | Trace.Query_hop { round; _ }
      | Trace.Suspect { round; _ }
      | Trace.Confirm_dead { round; _ }
      | Trace.Regraft { round; _ }
      | Trace.Quiesce { round }
      | Trace.Snapshot_write { round; _ }
      | Trace.Restore { round; _ }
      | Trace.Restore_rejected { round; _ }
      | Trace.Daemon_admit { round; _ }
      | Trace.Daemon_shed { round; _ }
      | Trace.Daemon_timeout { round; _ }
      | Trace.Daemon_degrade { round; _ }
      | Trace.Daemon_retry { round; _ }
      | Trace.Daemon_watchdog { round; _ } ->
          if round > !last_round then last_round := round);
      match ev with
      | Trace.Send { round; kind; bytes; src; dst; _ } ->
          incr messages;
          record_send ~round ~kind ~bytes ~src ~dst
      | Trace.Deliver { round; kind; bytes; dst; _ } ->
          incr delivered;
          record_recv ~round ~kind ~bytes ~dst
      | Trace.Drop { kind; _ } ->
          incr dropped;
          upd kinds kind zero_kind (fun k -> { k with k_dropped = k.k_dropped + 1 })
      | Trace.Query_hop { round; msg = _; bytes; src; dst } ->
          (* synchronous hop: counted as an immediately-delivered query
             message in every attribution table *)
          incr hops;
          record_send ~round ~kind:Trace.Query ~bytes ~src ~dst;
          record_recv ~round ~kind:Trace.Query ~bytes ~dst
      | Trace.Quiesce { round } -> if !quiesce = None then quiesce := Some round
      | _ -> ())
    events;
  (* critical path: the strongest delivered chain, ties to the smallest
     message id; walk the predecessor links back to a root send *)
  let terminal =
    List.fold_left
      (fun best m ->
        match m.m_deliver_round with
        | None -> best
        | Some _ -> (
            match best with
            | None -> Some m
            | Some b -> if m.m_chain > b.m_chain then Some m else best))
      None dag.msgs
  in
  let rec walk acc = function
    | None -> acc
    | Some m ->
        let hop =
          {
            h_msg = m.m_id;
            h_kind = m.m_kind;
            h_src = m.m_src;
            h_dst = m.m_dst;
            h_send_round = m.m_send_round;
            h_deliver_round = Option.value ~default:m.m_send_round m.m_deliver_round;
            h_bytes = m.m_bytes;
          }
        in
        walk (hop :: acc) (Option.bind m.m_pred (Hashtbl.find_opt by_msg))
  in
  let critical_path = walk [] terminal in
  let cp_rounds =
    match (critical_path, List.rev critical_path) with
    | first :: _, last :: _ -> last.h_deliver_round - first.h_send_round
    | _ -> 0
  in
  (* denominator: the quiesce round when the path ends inside the initial
     convergence, the full traced span when the chain runs past it (crash
     recovery keeps sending after the first quiesce) — so the figure is a
     genuine fraction in [0, 1] either way *)
  let total =
    match !quiesce with
    | Some q when cp_rounds <= q -> q
    | _ -> !last_round
  in
  let frac_explained =
    if total <= 0 then 0.0 else float_of_int cp_rounds /. float_of_int total
  in
  let collect tbl zero = List.map (fun k -> (k, Option.value ~default:zero (Hashtbl.find_opt tbl k))) in
  {
    rounds = !last_round;
    quiesce_round = !quiesce;
    messages = !messages;
    delivered_events = !delivered;
    dropped_events = !dropped;
    query_hops = !hops;
    total_bytes = !total_bytes;
    critical_path;
    cp_rounds;
    frac_explained;
    by_kind = collect kinds zero_kind Trace.all_kinds;
    by_node = List.map (fun k -> (k, Hashtbl.find nodes k)) (Tbl.sorted_keys nodes);
    by_link = List.map (fun k -> (k, Hashtbl.find links k)) (Tbl.sorted_keys links);
    per_round =
      List.map (fun k -> (k, Hashtbl.find rounds_tbl k)) (Tbl.sorted_keys rounds_tbl);
  }

(* ----- rendering ----- *)

let pct f = 100.0 *. f

let to_text r =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  p "trace analytics\n";
  p "  rounds      : %d%s\n" r.rounds
    (match r.quiesce_round with
    | Some q -> Printf.sprintf " (quiesce at %d)" q
    | None -> " (no quiesce)");
  p "  messages    : %d sends, %d delivered, %d dropped, %d query hops\n" r.messages
    r.delivered_events r.dropped_events r.query_hops;
  p "  bytes       : %d\n" r.total_bytes;
  p "\n";
  (match (r.critical_path, List.rev r.critical_path) with
  | [], _ | _, [] -> p "critical path: empty (no delivered messages)\n"
  | first :: _, last :: _ ->
      p "critical path (%d hops, rounds %d..%d, %.1f%% of %d rounds explained)\n"
        (List.length r.critical_path) first.h_send_round last.h_deliver_round
        (pct r.frac_explained)
        (match r.quiesce_round with
        | Some q when r.cp_rounds <= q -> q
        | _ -> r.rounds);
      p "  %4s  %6s  %-10s  %11s  %5s  %8s  %5s\n" "hop" "msg" "kind" "link" "sent"
        "delivered" "bytes";
      List.iteri
        (fun i h ->
          p "  %4d  %6d  %-10s  %4d -> %4d  %5d  %8d  %5d\n" (i + 1) h.h_msg
            (Trace.kind_to_string h.h_kind)
            h.h_src h.h_dst h.h_send_round h.h_deliver_round h.h_bytes)
        r.critical_path);
  p "\n";
  p "byte budget by kind\n";
  p "  %-10s  %7s  %9s  %9s  %7s\n" "kind" "sends" "bytes" "delivered" "dropped";
  List.iter
    (fun (k, s) ->
      if s.k_sends > 0 || s.k_dropped > 0 then
        p "  %-10s  %7d  %9d  %9d  %7d\n" (Trace.kind_to_string k) s.k_sends s.k_bytes
          s.k_delivered s.k_dropped)
    r.by_kind;
  p "\n";
  p "busiest links (top 10 by bytes)\n";
  let ranked =
    List.stable_sort
      (fun (_, a) (_, b) -> compare b.l_bytes a.l_bytes)
      r.by_link
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  p "  %11s  %7s  %9s\n" "link" "msgs" "bytes";
  List.iter
    (fun ((src, dst), l) -> p "  %4d -> %4d  %7d  %9d\n" src dst l.l_msgs l.l_bytes)
    (take 10 ranked);
  p "\n";
  p "round waterfall (sends per round)\n";
  let max_sends =
    List.fold_left (fun acc (_, s) -> Stdlib.max acc s.r_sends) 1 r.per_round
  in
  List.iter
    (fun (round, s) ->
      let width = s.r_sends * 40 / max_sends in
      p "  %4d |%s %d sends, %d bytes\n" round (String.make width '#') s.r_sends
        s.r_bytes)
    r.per_round;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  p "{\"rounds\":%d" r.rounds;
  (match r.quiesce_round with
  | Some q -> p ",\"quiesce_round\":%d" q
  | None -> p ",\"quiesce_round\":null");
  p ",\"messages\":%d,\"delivered\":%d,\"dropped\":%d,\"query_hops\":%d,\"total_bytes\":%d"
    r.messages r.delivered_events r.dropped_events r.query_hops r.total_bytes;
  p ",\"critical_path\":{\"hops\":%d,\"cp_rounds\":%d,\"frac_explained\":%.4f,\"chain\":["
    (List.length r.critical_path)
    r.cp_rounds r.frac_explained;
  List.iteri
    (fun i h ->
      if i > 0 then p ",";
      p
        "{\"msg\":%d,\"kind\":\"%s\",\"src\":%d,\"dst\":%d,\"send_round\":%d,\"deliver_round\":%d,\"bytes\":%d}"
        h.h_msg
        (Trace.kind_to_string h.h_kind)
        h.h_src h.h_dst h.h_send_round h.h_deliver_round h.h_bytes)
    r.critical_path;
  p "]}";
  p ",\"by_kind\":[";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then p ",";
      p "{\"kind\":\"%s\",\"sends\":%d,\"bytes\":%d,\"delivered\":%d,\"dropped\":%d}"
        (Trace.kind_to_string k) s.k_sends s.k_bytes s.k_delivered s.k_dropped)
    r.by_kind;
  p "],\"by_node\":[";
  List.iteri
    (fun i (node, s) ->
      if i > 0 then p ",";
      p "{\"node\":%d,\"sent\":%d,\"sent_bytes\":%d,\"recv\":%d,\"recv_bytes\":%d}" node
        s.n_sent s.n_sent_bytes s.n_recv s.n_recv_bytes)
    r.by_node;
  p "],\"by_link\":[";
  List.iteri
    (fun i ((src, dst), l) ->
      if i > 0 then p ",";
      p "{\"src\":%d,\"dst\":%d,\"msgs\":%d,\"bytes\":%d}" src dst l.l_msgs l.l_bytes)
    r.by_link;
  p "],\"per_round\":[";
  List.iteri
    (fun i (round, s) ->
      if i > 0 then p ",";
      p "{\"round\":%d,\"sends\":%d,\"delivers\":%d,\"bytes\":%d}" round s.r_sends
        s.r_delivers s.r_bytes)
    r.per_round;
  p "]}";
  Buffer.contents buf

let kind_stat_of r kind =
  match List.assoc_opt kind r.by_kind with Some s -> s | None -> zero_kind

let engine_sends r =
  List.fold_left
    (fun acc (k, s) -> if k = Trace.Query then acc else acc + s.k_sends)
    0 r.by_kind
