(** Deterministic metrics registry.

    Named counters, gauges and log-bucketed histograms, optionally
    carrying labels ([engine.drops{cause=fault_loss}]).  Instrumented
    components resolve a handle once at construction time and bump it on
    the hot path; experiments and the CLI take {!snapshot}s and render
    them as text or JSON.

    Determinism contract: a registry never reads the clock and never
    draws randomness — every value is a pure function of the
    instrumented run, and {!snapshot}, {!pp_text} and {!to_json} order
    metrics by (name, labels), so same-seed runs render byte-identical
    reports.  Wall-clock profiling lives in {!Span} and is kept out of
    the registry. *)

type t

type labels = (string * string) list
(** Label pairs; order is irrelevant (normalized by sorting). *)

val create : unit -> t

(** {2 Handles}

    [counter]/[gauge]/[histogram] get-or-create: the same (name, labels)
    always returns the same handle, and re-registering a name with a
    different metric type raises [Invalid_argument]. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  (** Monotone; negative [by] raises [Invalid_argument]. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Records a non-negative sample into log2 buckets: bucket 0 holds
      the value 0, bucket [i >= 1] holds values in [[2^(i-1), 2^i)].
      Negative samples raise [Invalid_argument]. *)

  val count : t -> int
  val sum : t -> int
  val max_value : t -> int

  val bucket_bounds : int -> int * int
  (** [bucket_bounds i] is the inclusive [(lo, hi)] value range of
      bucket [i]. *)
end

val counter : t -> ?labels:labels -> string -> Counter.t
val gauge : t -> ?labels:labels -> string -> Gauge.t
val histogram : t -> ?labels:labels -> string -> Histogram.t

(** {2 Snapshots} *)

type sample =
  | Counter of int
  | Gauge of int
  | Histogram of {
      count : int;
      sum : int;
      max_value : int;
      buckets : (int * int) list;  (** (bucket index, count), ascending, non-empty only *)
    }

type snapshot = (string * labels * sample) list
(** Sorted by (name, labels). *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-metric change from [before] to [after]: counters and histogram
    counts/sums/buckets subtract; gauges and histogram [max_value] keep
    the [after] value (a max cannot be un-observed).  Metrics absent
    from [before] appear unchanged; metrics absent from [after] are
    dropped. *)

val reset : t -> unit
(** Zeroes every registered metric in place (handles stay valid). *)

val find : snapshot -> ?labels:labels -> string -> sample option

val get : snapshot -> ?labels:labels -> string -> int
(** The scalar reading of a metric: counter/gauge value, histogram
    count.  0 when absent. *)

val sum_by_name : snapshot -> string -> int
(** Sum of {!get} over every label set registered under [name] — e.g.
    total [predtree.measurements] across [tree=i] labels. *)

val quantile : sample -> pct:int -> int option
(** [quantile s ~pct] estimates the [pct]-th percentile of a
    {!Histogram} sample from its log2 buckets: the covering bucket is
    found by cumulative rank (ceil(pct*count/100)) and interpolated
    linearly inside its bounds, clamped to the observed max.  Integer
    arithmetic only, so the estimate is byte-stable across runs.
    [None] on counters/gauges; 0 on an empty histogram.  Raises when
    [pct] is outside [0, 100].  The text and JSON renderings surface
    p50/p90/p99 computed this way. *)

(** {2 Rendering} *)

val pp_text : Format.formatter -> snapshot -> unit
(** One metric per line, [name{k=v} value]; histograms show
    count/sum/max, derived p50/p90/p99 and non-empty bucket ranges. *)

val to_text : snapshot -> string

val to_json : snapshot -> string
(** Canonical single-line JSON, metrics ordered as in the snapshot. *)

val of_json : string -> (snapshot, string) result
(** Parses {!to_json} output back; [to_json] and [of_json] round-trip
    exactly. *)
