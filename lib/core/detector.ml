module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module Rng = Bwc_stats.Rng

type config = {
  heartbeat_every : int;
  suspect_after : int;
  confirm_after : int;
  jitter : int;
}

let default_config =
  { heartbeat_every = 2; suspect_after = 6; confirm_after = 10; jitter = 0 }

type state = Alive | Suspected | Confirmed

(* One monitored directed edge of the anchor overlay: [watcher] keeps a
   lease on [peer] that every received message renews. *)
type edge = {
  mutable last_heard : int;
  mutable state : state;
  slack : int; (* seeded per-edge stretch of both thresholds *)
}

type t = {
  cfg : config;
  rng : Rng.t;
  edges : (int * int, edge) Hashtbl.t; (* (watcher, peer) *)
  trace : Trace.t option;
  c_suspects : Registry.Counter.t;
  c_confirms : Registry.Counter.t;
}

let validate cfg =
  if cfg.heartbeat_every < 1 then invalid_arg "Detector: heartbeat_every < 1";
  if cfg.suspect_after < cfg.heartbeat_every + 2 then
    invalid_arg "Detector: suspect_after must exceed heartbeat_every + 1";
  if cfg.confirm_after <= cfg.suspect_after then
    invalid_arg "Detector: confirm_after must exceed suspect_after";
  if cfg.jitter < 0 then invalid_arg "Detector: jitter < 0"

let create ?metrics ?trace ~rng cfg =
  validate cfg;
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  {
    cfg;
    rng;
    edges = Hashtbl.create 64;
    trace;
    c_suspects = Registry.counter metrics "detector.suspects";
    c_confirms = Registry.counter metrics "detector.confirms";
  }

let config t = t.cfg

let emit t ev = match t.trace with Some tr -> Trace.emit tr ev | None -> ()

let watch t ~watcher ~peer ~round =
  let slack = if t.cfg.jitter = 0 then 0 else Rng.int t.rng (t.cfg.jitter + 1) in
  Hashtbl.replace t.edges (watcher, peer) { last_heard = round; state = Alive; slack }

let unwatch t ~watcher ~peer = Hashtbl.remove t.edges (watcher, peer)
let clear t = Hashtbl.reset t.edges
let watched t = Hashtbl.length t.edges

let heard t ~watcher ~peer ~round =
  match Hashtbl.find_opt t.edges (watcher, peer) with
  | None -> ()
  | Some e ->
      if round > e.last_heard then e.last_heard <- round;
      (* any sign of life revives a suspected (or even confirmed but not
         yet repaired) peer *)
      e.state <- Alive

let state t ~watcher ~peer =
  match Hashtbl.find_opt t.edges (watcher, peer) with
  | Some e -> e.state
  | None -> Alive

let suspects t ~watcher ~peer =
  match state t ~watcher ~peer with
  | Suspected | Confirmed -> true
  | Alive -> false

let tick t ~round ~live =
  let confirmed = ref [] in
  (* sorted traversal: transition order decides trace-event order and the
     order repairs are applied in, so bucket order would leak hash-layout
     nondeterminism into the run *)
  Bwc_stats.Tbl.iter_sorted
    (fun (watcher, peer) e ->
      (* a dead watcher hears nothing by definition; its frozen leases
         must not let it "confirm" live peers dead from beyond the grave *)
      if live watcher then begin
        let silence = round - e.last_heard in
        match e.state with
        | Alive when silence >= t.cfg.suspect_after + e.slack ->
            e.state <- Suspected;
            Registry.Counter.incr t.c_suspects;
            emit t (Trace.Suspect { round; by = watcher; node = peer })
        | Suspected when silence >= t.cfg.confirm_after + e.slack ->
            e.state <- Confirmed;
            Registry.Counter.incr t.c_confirms;
            emit t (Trace.Confirm_dead { round; by = watcher; node = peer });
            confirmed := peer :: !confirmed
        | Alive | Suspected | Confirmed -> ()
      end)
    t.edges;
  List.sort_uniq compare !confirmed

(* ----- persistence ----- *)

type edge_dump = {
  d_watcher : int;
  d_peer : int;
  d_last_heard : int;
  d_state : state;
  d_slack : int;
}

type dump = {
  d_config : config;
  d_rng : int64;
  d_edges : edge_dump list; (* ascending (watcher, peer) *)
}

let dump t =
  let edges = ref [] in
  Bwc_stats.Tbl.iter_sorted
    (fun (watcher, peer) e ->
      edges :=
        {
          d_watcher = watcher;
          d_peer = peer;
          d_last_heard = e.last_heard;
          d_state = e.state;
          d_slack = e.slack;
        }
        :: !edges)
    t.edges;
  { d_config = t.cfg; d_rng = Rng.state t.rng; d_edges = List.rev !edges }

let of_dump ?metrics ?trace d =
  let t = create ?metrics ?trace ~rng:(Rng.of_state d.d_rng) d.d_config in
  List.iter
    (fun e ->
      if e.d_slack < 0 || e.d_slack > d.d_config.jitter then
        invalid_arg "Detector.of_dump: slack outside the jitter range";
      if Hashtbl.mem t.edges (e.d_watcher, e.d_peer) then
        invalid_arg "Detector.of_dump: duplicate edge";
      Hashtbl.replace t.edges (e.d_watcher, e.d_peer)
        { last_heard = e.d_last_heard; state = e.d_state; slack = e.d_slack })
    d.d_edges;
  t

let pending t ~round =
  let p = ref false in
  (* order-independent: a pure exists-scan (commutative OR) over the
     monitored edges; no state, counter or trace output depends on the
     visit order, and sorting every key each round would cost more than
     the scan itself *)
  (* bwclint: allow no-unordered-hashtbl-iter -- pure exists-scan (commutative OR); no state or trace depends on visit order *)
  Hashtbl.iter
    (fun _ e -> if round - e.last_heard > t.cfg.heartbeat_every + 1 then p := true)
    t.edges;
  !p
