type verdict =
  | Feasible of int list
  | Infeasible
  | Unknown

let threshold_adjacency space ~l i j =
  i <> j && space.Bwc_metric.Space.dist i j <= l

exception Found of int list
exception Budget_exhausted

(* Bron-Kerbosch with greedy pivoting over explicit candidate lists.  [r]
   is the clique under construction, [p] the candidates, [x] the excluded
   set.  Stops as soon as |r| reaches [k]; [worth r_size p_len] is the
   branch-and-bound prune (existence: can [k] still be reached; maximum:
   can the incumbent still be beaten). *)
let search ~adj ~k ~budget ~worth ~on_better p0 =
  let expansions = ref 0 in
  let rec bk r r_size p x =
    incr expansions;
    if !expansions > budget then raise Budget_exhausted;
    if r_size >= k then raise (Found r);
    on_better r r_size;
    if worth r_size (List.length p) then begin
      match (p, x) with
      | [], [] -> ()
      | _ ->
          (* pivot: candidate with most neighbors in p prunes best *)
          let pivot =
            let best = ref None in
            let consider u =
              let deg = List.length (List.filter (adj u) p) in
              match !best with
              | Some (_, d) when d >= deg -> ()
              | _ -> best := Some (u, deg)
            in
            List.iter consider p;
            List.iter consider x;
            !best
          in
          let expand =
            match pivot with
            | Some (u, _) -> List.filter (fun v -> not (adj u v)) p
            | None -> p
          in
          let p = ref p and x = ref x in
          List.iter
            (fun v ->
              bk (v :: r) (r_size + 1)
                (List.filter (adj v) !p)
                (List.filter (adj v) !x);
              p := List.filter (fun w -> w <> v) !p;
              x := v :: !x)
            expand
    end
  in
  bk [] 0 p0 []

let exists_clique ?(budget = 200_000) ~adj ~n ~k () =
  if k <= 0 then invalid_arg "Clique.exists_clique: k <= 0";
  if k = 1 then (if n >= 1 then Feasible [ 0 ] else Infeasible)
  else begin
    let vertices = List.init n (fun i -> i) in
    try
      search ~adj ~k ~budget
        ~worth:(fun r_size p_len -> r_size + p_len >= k)
        ~on_better:(fun _ _ -> ())
        vertices;
      Infeasible
    with
    | Found r -> Feasible r
    | Budget_exhausted -> Unknown
  end

let exists_cluster ?budget space ~k ~l =
  exists_clique ?budget
    ~adj:(threshold_adjacency space ~l)
    ~n:space.Bwc_metric.Space.n ~k ()

let max_clique_size ?(budget = 200_000) ~adj ~n () =
  if n = 0 then Ok 0
  else begin
    let best = ref 1 in
    let vertices = List.init n (fun i -> i) in
    try
      (* k = n + 1 can never be reached, so the search runs to completion;
         [best] tracks the incumbent and prunes branches that cannot beat
         it. *)
      search ~adj ~k:(n + 1) ~budget
        ~worth:(fun r_size p_len -> r_size + p_len > !best)
        ~on_better:(fun _ size -> if size > !best then best := size)
        vertices;
      Ok !best
    with
    | Found _ -> assert false
    | Budget_exhausted -> Error (`Budget !best)
  end
