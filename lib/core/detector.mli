(** Heartbeat/lease failure detection over anchor-tree edges.

    Each member {e watches} its overlay neighbors: a directed
    [(watcher, peer)] edge carries the round the watcher last heard from
    the peer.  Any received protocol message (update, ack or dedicated
    heartbeat) renews the lease.  A peer silent for [suspect_after]
    rounds becomes {e suspected} — queries detour around it but nothing
    is torn down; after [confirm_after] rounds of silence it is
    {e confirmed dead} and handed to the self-healing repair path.

    The detector is deterministic: state transitions are scanned in
    sorted edge order, and the only randomness is the optional per-edge
    [jitter] slack drawn from the seeded generator passed to {!create}
    (it staggers timeouts so repairs don't synchronise; [0] by default,
    keeping same-seed runs byte-identical). *)

type config = {
  heartbeat_every : int;
      (** send a heartbeat on a link idle this many rounds (>= 1) *)
  suspect_after : int;
      (** rounds of silence before suspicion; must exceed
          [heartbeat_every + 1] so one lost heartbeat cannot trigger it *)
  confirm_after : int;
      (** rounds of silence before the peer is confirmed dead; must
          exceed [suspect_after] *)
  jitter : int;  (** max extra per-edge slack on both thresholds (>= 0) *)
}

val default_config : config
(** [{ heartbeat_every = 2; suspect_after = 6; confirm_after = 10;
      jitter = 0 }]. *)

type state = Alive | Suspected | Confirmed

type t

val create :
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  rng:Bwc_stats.Rng.t ->
  config ->
  t
(** Validates the config (see field docs; [Invalid_argument] otherwise).
    Registers the [detector.suspects] and [detector.confirms] counters
    in [metrics]; emits [Suspect] / [Confirm_dead] trace events. *)

val config : t -> config

val watch : t -> watcher:int -> peer:int -> round:int -> unit
(** Start (or reset) monitoring of [peer] by [watcher], lease renewed as
    of [round]. *)

val unwatch : t -> watcher:int -> peer:int -> unit
val clear : t -> unit

val watched : t -> int
(** Number of monitored directed edges. *)

val heard : t -> watcher:int -> peer:int -> round:int -> unit
(** Renew the lease: [watcher] received a message from [peer] at
    [round].  Clears suspicion — any sign of life revives the peer. *)

val state : t -> watcher:int -> peer:int -> state
(** [Alive] for unmonitored edges. *)

val suspects : t -> watcher:int -> peer:int -> bool
(** [true] iff the edge is [Suspected] or [Confirmed]: the watcher
    should route around the peer. *)

val tick : t -> round:int -> live:(int -> bool) -> int list
(** Advance lease expiry at the end of [round].  Emits [Suspect] /
    [Confirm_dead] transitions in sorted edge order and returns the
    sorted, deduplicated list of peers newly confirmed dead this round
    (by any {e live} watcher).  Edges whose watcher is not [live] are
    frozen: a dead node's detector cannot observe or act, so its expired
    leases must not condemn its (live) peers. *)

val pending : t -> round:int -> bool
(** [true] while some lease is running towards expiry (a monitored peer
    has been silent past the heartbeat horizon): the protocol must keep
    running rounds for the detector to resolve the silence either way. *)

(** {2 Persistence} *)

type edge_dump = {
  d_watcher : int;
  d_peer : int;
  d_last_heard : int;
  d_state : state;
  d_slack : int;
}

type dump = {
  d_config : config;
  d_rng : int64;  (** jitter generator state *)
  d_edges : edge_dump list;  (** ascending (watcher, peer) *)
}

val dump : t -> dump

val of_dump : ?metrics:Bwc_obs.Registry.t -> ?trace:Bwc_obs.Trace.t -> dump -> t
(** Reconstructs the detector mid-lease: every edge keeps its last-heard
    round, suspicion state and per-edge slack, so leases that were
    running towards expiry keep running after a restore.  Validates the
    config and the per-edge slack range; raises [Invalid_argument]
    otherwise. *)
