(** The unit of information exchanged by Algorithm 2: a host id together
    with its distance labels (one per prediction tree of the ensemble).
    The labels are all a remote node needs to rank the host by predicted
    distance and to run Algorithm 1 locally, so this record is the entire
    "node information" payload of the aggregation protocol. *)

type t = {
  host : int;
  labels : Bwc_predtree.Label.t array;
}

val make : host:int -> labels:Bwc_predtree.Label.t array -> t

val dist : t -> t -> float
(** Median predicted tree distance across the ensemble. *)

val space_of : t array -> Bwc_metric.Space.t
(** The clustering space spanned by a set of node infos: point [i] of the
    space is [infos.(i)], distances are label distances (Algorithms 3 and
    4 run {!Find_cluster} on exactly this). *)

val equal : t -> t -> bool
(** Host identity (labels are per-host, so ids suffice). *)

val compare_host : t -> t -> int
val pp : Format.formatter -> t -> unit
