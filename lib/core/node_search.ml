module Space = Bwc_metric.Space

let best space ~targets ~exclude =
  if targets = [] then None
  else begin
    let forbidden = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace forbidden x ()) targets;
    List.iter (fun x -> Hashtbl.replace forbidden x ()) exclude;
    let best = ref None in
    for x = 0 to space.Space.n - 1 do
      if not (Hashtbl.mem forbidden x) then begin
        let radius =
          List.fold_left (fun acc s -> Float.max acc (space.Space.dist x s)) 0.0 targets
        in
        match !best with
        | Some (_, r) when r <= radius -> ()
        | _ -> best := Some (x, radius)
      end
    done;
    !best
  end

let best_bw ?c space ~targets =
  match best space ~targets ~exclude:[] with
  | None -> None
  | Some (x, radius) -> Some (x, Bwc_metric.Bandwidth.of_distance ?c radius)

let local protocol ~at ~targets =
  Bwc_obs.Registry.Counter.incr
    (Bwc_obs.Registry.counter (Protocol.metrics protocol) "node_search.calls");
  if targets = [] then None
  else begin
    let infos = Protocol.clustering_space protocol at in
    let target_hosts = List.map (fun i -> i.Node_info.host) targets in
    let best = ref None in
    Array.iter
      (fun cand ->
        if
          (not (List.mem cand.Node_info.host target_hosts))
          (* never hand out a host the local failure detector suspects *)
          && not (Protocol.routing_suspects protocol ~at cand.Node_info.host)
        then begin
          let radius =
            List.fold_left (fun acc s -> Float.max acc (Node_info.dist cand s)) 0.0 targets
          in
          match !best with
          | Some (_, r) when r <= radius -> ()
          | _ -> best := Some (cand.Node_info.host, radius)
        end)
      infos;
    !best
  end
