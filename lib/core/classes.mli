(** Bandwidth classes (Sec. III-B.3).

    The decentralized system trades flexibility of the bandwidth
    constraint [b] for routing-table size: queries must pick [b] from a
    fixed, predetermined set of {e bandwidth classes}, each of which maps
    to a distance class [l = C / b].  A node's cluster routing table has
    one column per class. *)

type t

val make : ?c:float -> float list -> t
(** [make ~c bws] from a list of distinct positive bandwidths (Mbps), in
    any order. *)

val of_percentiles : ?c:float -> ?count:int -> Bwc_dataset.Dataset.t -> t
(** Classes at evenly spaced percentiles of the dataset's bandwidth
    distribution between the 20th and 80th (the range the paper draws
    query constraints from); [count] defaults to 8. *)

val count : t -> int
val c : t -> float

val bandwidths : t -> float array
(** Ascending bandwidths. *)

val distances : t -> float array
(** The corresponding distance classes [l], index-aligned with
    {!bandwidths} (so {e descending}). *)

val bandwidth : t -> int -> float
val distance : t -> int -> float

val class_for : t -> b:float -> int option
(** The cheapest class that still guarantees the user's constraint: the
    smallest class bandwidth [>= b].  [None] when [b] exceeds every
    class (the decentralized system then cannot promise [b]; the paper's
    "limited flexibility" tradeoff). *)

val class_for_distance : t -> l:float -> int option
(** Same, in distance units: the largest class distance [<= l]. *)

val pp : Format.formatter -> t -> unit
