module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble

type t = {
  seed : int;
  dataset : Dataset.t;
  c : float;
  fw : Ensemble.t;
  protocol : Protocol.t;
  classes : Classes.t;
  rng : Rng.t; (* for random submission points *)
  mutable index : Find_cluster.Index.t option; (* lazy centralized index *)
  mutable coreset : Find_cluster.Coreset.t option; (* lazy summary index *)
}

let create ?(seed = 1) ?(c = Bwc_metric.Bandwidth.default_c) ?n_cut ?(class_count = 8)
    ?classes ?mode ?ensemble_size ?aggregation_rounds ?detector dataset =
  let rng = Rng.create seed in
  let space = Dataset.metric ~c dataset in
  let fw = Ensemble.build ~rng:(Rng.split rng) ?mode ?size:ensemble_size space in
  let classes =
    match classes with
    | Some cl -> cl
    | None -> Classes.of_percentiles ~c ~count:class_count dataset
  in
  let protocol = Protocol.create ~rng:(Rng.split rng) ?n_cut ?detector ~classes fw in
  let (_ : int) = Protocol.run_aggregation ?max_rounds:aggregation_rounds protocol in
  { seed; dataset; c; fw; protocol; classes; rng; index = None; coreset = None }

(* Persistence: bwc_persist decodes each layer (dataset, ensemble,
   protocol, optional index) and re-assembles the facade here.  No
   validation beyond what the layer decoders already did — this is pure
   plumbing. *)
let assemble ~seed ~dataset ~c ~fw ~protocol ~classes ~rng_state ~index ?coreset () =
  { seed; dataset; c; fw; protocol; classes; rng = Rng.of_state rng_state; index; coreset }

let seed t = t.seed
let rng_state t = Rng.state t.rng
let index_opt t = t.index
let dataset t = t.dataset
let framework t = t.fw
let protocol t = t.protocol
let classes t = t.classes
let c t = t.c
let size t = Dataset.size t.dataset

let predicted_space t =
  Bwc_metric.Space.make ~n:(size t) ~dist:(Ensemble.predicted t.fw)

let index t =
  match t.index with
  | Some i -> i
  | None ->
      let i = Find_cluster.Index.build (Bwc_metric.Space.cached (predicted_space t)) in
      t.index <- Some i;
      i

(* The coreset arm answers from the same predicted metric, but never
   caches it densely: summaries evaluate O(n·k) distances lazily, so the
   approximate path avoids both the O(n^2) cache and the O(n^3) build. *)
let coreset ?(k = Find_cluster.Coreset.default_k) t =
  match t.coreset with
  | Some c when Find_cluster.Coreset.k_param c = k -> c
  | Some _ | None ->
      let c =
        Find_cluster.Coreset.of_anchor ~k (predicted_space t)
          (Bwc_predtree.Framework.anchor (Ensemble.primary t.fw))
      in
      t.coreset <- Some c;
      c

let coreset_opt t = t.coreset

let query ?at t ~k ~b =
  let at = match at with Some a -> a | None -> Rng.int t.rng (size t) in
  Protocol.query_bandwidth t.protocol ~at ~k ~b

let query_centralized t ~k ~b =
  let l = Bwc_metric.Bandwidth.to_distance ~c:t.c b in
  Find_cluster.Index.find (index t) ~k ~l

let query_bounds ?coreset_k t ~k ~b =
  let l = Bwc_metric.Bandwidth.to_distance ~c:t.c b in
  let cor = coreset ?k:coreset_k t in
  (Find_cluster.Coreset.find cor ~k ~l, Find_cluster.Coreset.max_size cor ~l)

let real_bw t i j = Dataset.bw t.dataset i j
let predicted_bw t i j = Ensemble.predicted_bw ~c:t.c t.fw i j

let verify_cluster t ~b cluster =
  let rec pairs acc = function
    | [] -> acc
    | x :: rest ->
        let acc =
          List.fold_left (fun a y -> if real_bw t x y < b then (x, y) :: a else a) acc rest
        in
        pairs acc rest
  in
  List.rev (pairs [] cluster)

let find_feeder t ~targets =
  Node_search.best_bw ~c:t.c (predicted_space t) ~targets

let refresh ?(drift = 0.1) ~seed t =
  let rng = Rng.create seed in
  let dataset = Bwc_dataset.Noise.relative_clamp ~rng ~amplitude:drift t.dataset in
  create ~seed:t.seed ~c:t.c ~n_cut:(Protocol.n_cut t.protocol)
    ~ensemble_size:(Ensemble.size t.fw) ~classes:t.classes dataset
