(** The decentralized clustering system (Sec. III-B).

    Every host participating in the prediction framework runs two
    background aggregation mechanisms over its anchor-tree neighborhood:

    - {b Algorithm 2} ([DynAggrNodeInfo]): for each neighbor [m], host [x]
      maintains [aggrNode[m]] — the [n_cut] hosts closest to [x] among
      everything reachable via [m];
    - {b Algorithm 3} ([DynAggrMaxCluster]): for each neighbor [m] and
      each distance class [l], host [x] maintains [aggrCRT[m][l]] — the
      maximum cluster size achievable in the clustering space of any host
      reachable via [m].  The per-class row for [x] itself is the best
      cluster [x] can build from its own aggregated neighborhood.

    Queries ({b Algorithm 4}, [ProcessQuery]) may be submitted to any
    host: a host answers from its own clustering space when its own CRT
    row allows, otherwise forwards towards a neighbor whose CRT column
    promises a large-enough cluster, never returning to the sender.

    The implementation runs on the round-based {!Bwc_sim.Engine}; each
    round every host consumes its inbox, updates its tables, and
    (re)propagates to neighbors when something changed, so a static
    network reaches quiescence and [run_until_stable] detects it.

    Delivery is made reliable against an unreliable network
    ({!Bwc_sim.Fault}): every update carries a per-link sequence number,
    receivers acknowledge the highest sequence seen and discard
    duplicates and out-of-order copies (the merge is idempotent, which
    is asserted), and senders retransmit unacknowledged updates on a
    timeout.  The aggregation therefore converges to the same fixed
    point under message loss, duplication, reordering jitter and
    crash/restart windows as on a reliable network — it just takes more
    rounds and messages (tested; measured by the robustness
    experiment).  Retransmission is bounded: after [max_retransmits]
    fruitless tries the sender {e gives up} on the peer (counted under
    [protocol.give_up]) so quiescence never hinges on a host that is
    gone for good; any later sign of life from the peer revives the
    retired update.

    With a [detector] config the protocol additionally runs the
    {!Detector} failure detector over the anchor-tree edges (heartbeats
    fill silent links) and {e self-heals}: a confirmed-dead node is
    evicted from the ensemble ({!Bwc_predtree.Ensemble.evict_host},
    orphaned overlay children regraft to their grandparent), aggregate
    state about it is invalidated only at its ex-neighbors and along the
    regraft points' root paths (epoch-versioned links fence off in-flight
    state from before the repair), and the aggregation re-converges
    incrementally — no global rebuild, no full re-propagation.  Queries
    detour around {e suspected} (not yet confirmed) directions. *)

type t

val create :
  rng:Bwc_stats.Rng.t ->
  ?n_cut:int ->
  ?edge_delay:(src:int -> dst:int -> int) ->
  ?faults:Bwc_sim.Fault.t ->
  ?resend_timeout:int ->
  ?max_retransmits:int ->
  ?detector:Detector.config ->
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  classes:Classes.t ->
  Bwc_predtree.Ensemble.t ->
  t
(** [n_cut] (default 10) bounds the per-neighbor node-information payload
    — the decentralization knob of Sec. IV-B.  [edge_delay] gives overlay
    links heterogeneous (FIFO) delivery delays in rounds; the aggregation
    converges to the same tables regardless (tested), it just takes
    proportionally longer.  [faults] (default {!Bwc_sim.Fault.none})
    injects message loss, duplication, jitter, partitions and
    crash/restart windows.  [resend_timeout] (default 3) is how many
    rounds an update stays unacknowledged before it is retransmitted;
    [max_retransmits] (default 16) bounds how often before the sender
    gives up on the peer.  With a fault plan that never heals (a
    permanent crash or partition) and no [detector], the survivors give
    up and quiesce without the dead peer's state repaired; with a
    [detector] (off when omitted; see {!Detector.default_config}) the
    dead peer is detected, evicted and healed around.  The detector
    draws its (optional) jitter from a split of [rng]; omitting
    [detector] leaves the RNG stream — and therefore detector-less runs
    — untouched.

    [metrics] is the registry the protocol {e and} its engine write to
    ([protocol.retransmissions], [protocol.dup_suppressed],
    [protocol.stale_discarded], [protocol.give_up],
    [protocol.heartbeats], [protocol.epoch_discarded],
    [protocol.repairs], [protocol.regrafts], the [protocol.unacked]
    gauge, the [query.hops] histogram, [query.retries],
    [query.hits]/[query.misses], plus the engine's [engine.*] and the
    detector's [detector.*] series); a private registry is allocated
    when omitted.  Pass the same registry to {!Bwc_sim.Fault.create} and
    {!Bwc_predtree.Ensemble.build} to snapshot the whole stack at once.
    [trace] enables structured event emission — engine-level
    send/deliver/drop events plus protocol-level [Retransmit],
    [Query_hop], [Suspect], [Confirm_dead], [Regraft] and [Quiesce] —
    and is off when omitted. *)

val n : t -> int
(** Current member count. *)

val n_cut : t -> int
val classes : t -> Classes.t
val framework : t -> Bwc_predtree.Ensemble.t

val run_aggregation : ?max_rounds:int -> t -> int
(** Runs rounds until quiescent (returns the number of rounds) or until
    [max_rounds] (default [4 * n]). *)

val run_round : t -> bool
(** A single round; [true] while still active.  With a detector, the
    round also advances lease expiry and immediately repairs any nodes
    confirmed dead this round, and activity means: some node's state
    changed, updates await acks, or a detector lease is running out
    (heartbeat traffic alone does not count as activity). *)

val crash_host : t -> int -> unit
(** Silently kills a member host: it stops stepping, and traffic to and
    from it is purged/dropped.  Nothing else is told — with a detector
    the survivors find out through lease expiry; without one they give
    up on it after [max_retransmits].  Emits a [Crash] trace event.
    Raises [Invalid_argument] for non-members. *)

val repair : t -> dead:int list -> unit
(** Manually evict the given (presumed dead) members and heal around
    them, exactly as detector-driven repair would: ensemble eviction with
    grandparent regrafts, link-epoch bump, invalidation of the dead
    nodes' state at their ex-neighbors, root-path dirty marking.
    Re-converge with further rounds.  Non-members in [dead] are ignored.
    This is the incremental alternative to
    {!Bwc_predtree.Ensemble.evict_host} + {!refresh_topology}. *)

val set_on_evict : t -> (int -> unit) -> unit
(** Registers an observer called with each member evicted by {!repair}
    (manual or detector-driven), after the ensemble and overlay have been
    healed.  Lets owners of derived per-membership structures — e.g. a
    maintained {!Find_cluster.Index} — apply the eviction as an O(n^2)
    delta instead of rebuilding.  The previous observer is replaced;
    [create] installs a no-op. *)

val detector : t -> Detector.t option
(** The failure detector, when [create] was given a config. *)

val epoch : t -> int
(** The current repair epoch (bumped once per repair batch; 0 before any
    repair). *)

val routing_suspects : t -> at:int -> int -> bool
(** [routing_suspects t ~at h]: whether [at]'s failure detector currently
    suspects (or has confirmed) [h], i.e. whether query routing at [at]
    should detour around [h].  Always [false] without a detector. *)

val query :
  ?policy:[ `Best_crt | `First ] ->
  ?hop_budget:int ->
  ?retries:int ->
  t -> at:int -> k:int -> cls:int -> Query.result
(** Algorithm 4: submit the query for [k] hosts of class [cls] at host
    [at].  The paper forwards to "any" neighbor whose CRT column promises
    a big-enough cluster; [`Best_crt] (default) picks the most promising
    direction, [`First] the first qualifying neighbor (the routing-policy
    ablation compares them).

    Robustness: a hop to a dead or partitioned neighbor falls back to the
    next qualifying neighbor; a hop over a lossy link is retried up to
    [retries] times (default 2) before falling back; with a detector,
    directions the local failure detector suspects become last resorts
    (tried only when every healthy direction fails); [hop_budget]
    (default [n], unreachable on a simple tree path) caps the total
    number of forwardings.  A query submitted at a dead host is an
    immediate miss. *)

val query_bandwidth :
  ?policy:[ `Best_crt | `First ] ->
  ?hop_budget:int ->
  ?retries:int ->
  t -> at:int -> k:int -> b:float -> Query.result
(** Convenience: maps [b] to the cheapest class that guarantees it; a miss
    when no class covers [b]. *)

val clustering_space : t -> int -> Node_info.t array
(** [V_x]: the host itself plus everything aggregated from its neighbors
    (the space Algorithms 3 and 4 cluster in). *)

val aggregated_nodes : t -> int -> int -> Node_info.t list
(** [aggregated_nodes t x m]: [x]'s [aggrNode[m]] — the node information
    received from neighbor [m] (Algorithm 2's table; empty before any
    aggregation round).  Raises [Not_found] if [m] is not a neighbor of
    [x]. *)

val crt_row : t -> int -> int -> int array
(** [crt_row t x v]: [x]'s CRT column for neighbor (or self) [v]; one
    entry per class.  Raises [Not_found] if [v] is neither [x] nor a
    neighbor of [x]. *)

val max_reachable : t -> int -> cls:int -> int
(** The largest cluster size host [x] believes exists anywhere (its own
    row and every neighbor column). *)

val metrics : t -> Bwc_obs.Registry.t
(** The registry the protocol and its engine write to (the [?metrics]
    argument of {!create}, or the private registry).  Snapshot it with
    {!Bwc_obs.Registry.snapshot} to read every series at once. *)

val messages_sent : t -> int
val rounds_run : t -> int

val retries : t -> int
(** Timeout-triggered retransmissions of unacknowledged updates
    ([protocol.retransmissions]). *)

val duplicates_suppressed : t -> int
(** Updates received with an already-seen sequence number and discarded
    ([protocol.dup_suppressed]). *)

val stale_discarded : t -> int
(** Updates received out of order (older than the applied state) and
    discarded ([protocol.stale_discarded]). *)

val give_ups : t -> int
(** Updates retired unacknowledged after [max_retransmits] fruitless
    retransmissions ([protocol.give_up]). *)

val heartbeats_sent : t -> int
(** Detector heartbeats sent over idle links ([protocol.heartbeats]). *)

val epoch_discarded : t -> int
(** Messages fenced off by the link-epoch guard — in-flight leftovers
    from before a self-healing link reset ([protocol.epoch_discarded]). *)

val repairs_run : t -> int
(** Confirmed-dead nodes evicted and healed around
    ([protocol.repairs]). *)

val regrafts_applied : t -> int
(** Orphaned overlay children re-attached to their grandparent during
    repair ([protocol.regrafts]). *)

val pending_unacked : t -> int
(** Updates still awaiting acknowledgement and not yet given up (0 at
    quiescence). *)

val current_round : t -> int
(** The engine's round clock (survives snapshot/restore, unlike
    {!rounds_run} which counts rounds stepped by this process). *)

(** {2 Persistence}

    The dump captures the durable per-node state only.  In-flight engine
    traffic is deliberately absent: a whole-system crash loses the
    network, and that is exactly the loss the seq/ACK + retransmission
    layer already recovers from — restored unacked out-entries resume
    their resend timers.  Neighbor lists and node infos are not dumped
    either; they are re-derived from the ensemble, which must be
    restored alongside (see {!Bwc_predtree.Ensemble.of_dump}).  Metrics
    counters restart from zero. *)

type out_dump = {
  o_peer : int;
  o_epoch : int;
  o_seq : int;
  o_prop_node : Node_info.t list;
  o_prop_crt : int array;
  o_sent_round : int;
  o_tries : int;
  o_acked : bool;
  o_gave_up : bool;
}

type node_dump = {
  nd_id : int;
  nd_active : bool;
      (** engine liveness — a crashed-but-not-yet-evicted member restores
          as crashed *)
  nd_dirty : bool;
  nd_own_row : int array;
  nd_aggr_node : (int * Node_info.t list) list;  (** ascending neighbor id *)
  nd_aggr_crt : (int * int array) list;
  nd_out : out_dump list;
  nd_seen_seq : (int * int) list;
  nd_link_epoch : (int * int) list;
  nd_last_sent : (int * int) list;
}

type dump = {
  d_n_cut : int;
  d_resend_timeout : int;
  d_max_retransmits : int;
  d_rounds : int;
  d_epoch : int;
  d_engine_round : int;
  d_engine_rng : int64;
  d_nodes : node_dump list;  (** ascending host id, members only *)
  d_detector : Detector.dump option;
}

val dump : t -> dump

val of_dump :
  ?edge_delay:(src:int -> dst:int -> int) ->
  ?faults:Bwc_sim.Fault.t ->
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  classes:Classes.t ->
  Bwc_predtree.Ensemble.t ->
  dump ->
  t
(** Reconstructs a live protocol over the given (already restored)
    ensemble.  The engine restarts at the dumped round with the dumped
    RNG state, so a same-seed run resumed from a snapshot at quiescence
    is indistinguishable from one that never crashed.  Validates
    membership agreement with the ensemble, neighbor-keyed table
    integrity, arity of CRT rows and label vectors, and clock/epoch
    bounds; raises [Invalid_argument] on any violation.  [pending_unacked]
    is recomputed from the out-entries, never trusted from the file. *)

val mark_all_dirty : t -> unit
(** Forces every host to recompute and repropagate — used after the
    underlying framework is refreshed (dynamic network conditions). *)

val refresh_topology : t -> unit
(** Re-reads membership, labels and anchor neighborhoods from the
    framework (after joins, leaves, {!Bwc_predtree.Framework.refresh_host}
    or a rebuild), clears stale aggregation state, and marks everything
    dirty.  Aggregation then reconverges with further rounds.  With a
    detector, all lease state is reset and the fresh edges are watched
    from the current round.  Functions taking a host raise
    [Invalid_argument] for non-members. *)
