type t = {
  c : float;
  bws : float array; (* ascending *)
  ls : float array;  (* index-aligned: ls.(i) = c / bws.(i), descending *)
}

let make ?(c = Bwc_metric.Bandwidth.default_c) bws =
  if bws = [] then invalid_arg "Classes.make: empty class list";
  List.iter
    (fun b ->
      if b <= 0.0 || not (Float.is_finite b) then
        invalid_arg "Classes.make: bandwidths must be positive and finite")
    bws;
  let arr = Array.of_list (List.sort_uniq compare bws) in
  { c; bws = arr; ls = Array.map (fun b -> c /. b) arr }

let of_percentiles ?c ?(count = 8) ds =
  if count < 1 then invalid_arg "Classes.of_percentiles: count < 1";
  let values = Bwc_dataset.Dataset.bandwidth_values ds in
  let classes =
    List.init count (fun i ->
        let p =
          if count = 1 then 50.0
          else 20.0 +. (60.0 *. float_of_int i /. float_of_int (count - 1))
        in
        Bwc_stats.Summary.percentile values p)
  in
  make ?c classes

let count t = Array.length t.bws
let c t = t.c
let bandwidths t = Array.copy t.bws
let distances t = Array.copy t.ls
let bandwidth t i = t.bws.(i)
let distance t i = t.ls.(i)

let class_for t ~b =
  (* smallest class bandwidth >= b *)
  let n = Array.length t.bws in
  let rec search lo hi =
    if lo >= hi then if lo < n then Some lo else None
    else begin
      let mid = (lo + hi) / 2 in
      if t.bws.(mid) >= b then search lo mid else search (mid + 1) hi
    end
  in
  search 0 n

let class_for_distance t ~l =
  if l <= 0.0 then None else class_for t ~b:(t.c /. l)

let pp ppf t =
  Format.fprintf ppf "classes (C=%g):" t.c;
  Array.iteri (fun i b -> Format.fprintf ppf " [%d] %.1f Mbps (l=%.2f)" i b t.ls.(i)) t.bws
