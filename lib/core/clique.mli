(** Exact k-clique search on thresholded bandwidth graphs.

    Sec. V observes that bandwidth-constrained clustering in the {e real}
    world is exactly k-Clique on the graph with an edge wherever
    [BW(u,v) >= b] — NP-complete, which is why the paper retreats to tree
    metric spaces.  This module provides the exact (exponential
    worst-case) solver as the missing baseline: a budgeted
    Bron-Kerbosch-with-pivoting search.  It serves as ground truth for
    feasibility on real measurements (the E9 ablation quantifies how much
    the tree-metric assumption gives up) and as an oracle in tests.

    The budget bounds the number of recursive expansions; realistic
    threshold graphs are decided quickly, and [Unknown] is returned when
    the budget runs out rather than stalling the experiment (the SWORD
    system discussed in Sec. V behaves the same way with its timeout). *)

type verdict =
  | Feasible of int list (** a clique of the requested size *)
  | Infeasible
  | Unknown              (** budget exhausted *)

val threshold_adjacency :
  Bwc_metric.Space.t -> l:float -> int -> int -> bool
(** Edge predicate of the threshold graph: [dist i j <= l] (and [i <> j]). *)

val exists_clique :
  ?budget:int -> adj:(int -> int -> bool) -> n:int -> k:int -> unit -> verdict
(** [exists_clique ~adj ~n ~k ()] decides whether the graph has a clique
    of [k] vertices.  [budget] defaults to [200_000] expansions. *)

val exists_cluster :
  ?budget:int -> Bwc_metric.Space.t -> k:int -> l:float -> verdict
(** The clustering question on a space, via the threshold graph. *)

val max_clique_size :
  ?budget:int -> adj:(int -> int -> bool) -> n:int -> unit -> (int, [ `Budget of int ]) result
(** Exact maximum clique size, or [`Budget lower_bound] when the budget
    ran out ([lower_bound] is the best clique found so far). *)
