module Space = Bwc_metric.Space

(* Relative slack used whenever a cluster diameter is compared against the
   query constraint [l] — shared by the one-shot scan and the index so the
   two paths can never disagree on a borderline verification. *)
let diam_tol = 1e-9

let members space ~p ~q =
  let d = space.Space.dist in
  let dpq = d p q in
  let out = ref [] in
  for x = space.Space.n - 1 downto 0 do
    if d x p <= dpq && d x q <= dpq then out := x :: !out
  done;
  !out

(* |S*_pq| without materialising the member list: the scan hot path only
   needs the count, and allocating an O(n) list per pair turned the
   O(n^3) scan into an allocation storm. *)
let count_members space ~p ~q =
  let d = space.Space.dist in
  let dpq = d p q in
  let count = ref 0 in
  for x = 0 to space.Space.n - 1 do
    if d x p <= dpq && d x q <= dpq then incr count
  done;
  !count

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

(* Pick k members, always keeping p and q (the diameter-realising pair is
   certainly inside any wanted cluster of this group). *)
let pick_k ~p ~q k members =
  let others = List.filter (fun x -> x <> p && x <> q) members in
  p :: q :: take (k - 2) others

let cluster_ok ~verify space ~l cluster =
  (not verify) || Space.diameter space cluster <= l *. (1.0 +. diam_tol)

(* Pairs are scanned in plain index order, as in the paper's pseudocode
   ("foreach node pair (p,q)").  The order matters on approximate tree
   metrics: scanning by ascending predicted distance would systematically
   return the most over-confidently embedded pairs (the ones noise made
   look closest) and bias the accuracy evaluation; index order returns an
   arbitrary satisfying pair instead. *)
let iter_pairs_until n f =
  try
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        f p q
      done
    done
  with Exit -> ()

let find ?(verify = false) space ~k ~l =
  if k < 2 then invalid_arg "Find_cluster.find: k < 2";
  if space.Space.n < k then None
  else begin
    let result = ref None in
    iter_pairs_until space.Space.n (fun p q ->
        if space.Space.dist p q <= l then begin
          if count_members space ~p ~q >= k then begin
            let cluster = pick_k ~p ~q k (members space ~p ~q) in
            if cluster_ok ~verify space ~l cluster then begin
              result := Some cluster;
              raise Exit
            end
          end
        end);
    !result
  end

let exists space ~k ~l = find space ~k ~l <> None

let max_size space ~l =
  if space.Space.n = 0 then 0
  else begin
    let best = ref 1 in
    iter_pairs_until space.Space.n (fun p q ->
        if space.Space.dist p q <= l then begin
          let size = count_members space ~p ~q in
          if size > !best then best := size
        end);
    !best
  end

module Index = struct
  (* One active pair (u < v, host ids of the universe space).  [size] is
     |S*_uv| restricted to the current members and is the only mutable
     field: membership deltas never change a pair's distance, so the
     sorted query structure stays valid across updates. *)
  type pair = {
    u : int;
    v : int;
    d : float;
    mutable size : int;
  }

  type t = {
    space : Space.t;            (* fixed universe; distances never change *)
    active : bool array;        (* membership flag per universe point *)
    mutable members : int array;    (* active host ids, ascending *)
    pairs : (int, pair) Hashtbl.t;  (* key [u * space.n + v], u < v *)
    mutable sorted : pair array;    (* ascending (d, u, v) *)
    mutable prefix_max : int array; (* running max of sizes along sorted *)
  }

  let key t u v = (u * t.space.Space.n) + v

  (* Primary order is the distance (what the binary search needs); the
     (u, v) tie-break makes merges and rebuilds byte-deterministic. *)
  let pair_cmp a b =
    let c = Float.compare a.d b.d in
    if c <> 0 then c
    else begin
      let c = Stdlib.compare a.u b.u in
      if c <> 0 then c else Stdlib.compare a.v b.v
    end

  (* |S*_uv ∩ members| by counting loop (cf. [count_members]). *)
  let count_active t ~u ~v d =
    let dist = t.space.Space.dist in
    let count = ref 0 in
    Array.iter (fun x -> if dist x u <= d && dist x v <= d then incr count) t.members;
    !count

  let recompute_prefix_max t =
    let m = Array.length t.sorted in
    let prefix = Array.make m 0 in
    let run = ref 0 in
    for i = 0 to m - 1 do
      run := Stdlib.max !run t.sorted.(i).size;
      prefix.(i) <- !run
    done;
    t.prefix_max <- prefix

  let build_subset space hosts =
    let n = space.Space.n in
    let members = Array.of_list (List.sort_uniq compare hosts) in
    Array.iter
      (fun h ->
        if h < 0 || h >= n then invalid_arg "Find_cluster.Index: host out of range")
      members;
    let active = Array.make n false in
    Array.iter (fun h -> active.(h) <- true) members;
    let a = Array.length members in
    let count = a * (a - 1) / 2 in
    let t =
      {
        space;
        active;
        members;
        pairs = Hashtbl.create (Stdlib.max 16 count);
        sorted = [||];
        prefix_max = [||];
      }
    in
    let all = Array.make (Stdlib.max 1 count) { u = 0; v = 0; d = 0.0; size = 0 } in
    let pos = ref 0 in
    for i = 0 to a - 1 do
      for j = i + 1 to a - 1 do
        let u = members.(i) and v = members.(j) in
        let d = space.Space.dist u v in
        let pr = { u; v; d; size = count_active t ~u ~v d } in
        Hashtbl.replace t.pairs (key t u v) pr;
        all.(!pos) <- pr;
        incr pos
      done
    done;
    let all = if count = 0 then [||] else all in
    Array.sort pair_cmp all;
    t.sorted <- all;
    recompute_prefix_max t;
    t

  let build space = build_subset space (List.init space.Space.n Fun.id)

  let size t = Array.length t.members
  let members t = Array.to_list t.members
  let is_member t h = h >= 0 && h < t.space.Space.n && t.active.(h)

  (* ----- incremental maintenance ----- *)

  (* Sorted insertion of [h] into the member array: O(n). *)
  let insert_member t h =
    let a = Array.length t.members in
    let out = Array.make (a + 1) h in
    let i = ref 0 in
    while !i < a && t.members.(!i) < h do
      out.(!i) <- t.members.(!i);
      incr i
    done;
    Array.blit t.members !i out (!i + 1) (a - !i);
    t.members <- out

  let delete_member t h =
    t.members <- Array.of_list (List.filter (fun x -> x <> h) (Array.to_list t.members))

  (* Merge of two pair arrays each sorted by [pair_cmp]: O(m + f). *)
  let merge_sorted a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let out = Array.make (la + lb) a.(0) in
      let i = ref 0 and j = ref 0 in
      for k = 0 to la + lb - 1 do
        if !j >= lb || (!i < la && pair_cmp a.(!i) b.(!j) <= 0) then begin
          out.(k) <- a.(!i);
          incr i
        end
        else begin
          out.(k) <- b.(!j);
          incr j
        end
      done;
      out
    end

  let add_host t h =
    if h < 0 || h >= t.space.Space.n then
      invalid_arg "Find_cluster.Index.add_host: host out of range";
    if t.active.(h) then invalid_arg "Find_cluster.Index.add_host: already a member";
    let dist = t.space.Space.dist in
    (* 1. every existing pair whose ball the newcomer falls into grows *)
    Array.iter
      (fun pr -> if dist h pr.u <= pr.d && dist h pr.v <= pr.d then pr.size <- pr.size + 1)
      t.sorted;
    (* 2. the newcomer's own pairs, sized against the grown membership *)
    t.active.(h) <- true;
    insert_member t h;
    let fresh =
      Array.map
        (fun p ->
          let u = Stdlib.min p h and v = Stdlib.max p h in
          let d = dist u v in
          let pr = { u; v; d; size = count_active t ~u ~v d } in
          Hashtbl.replace t.pairs (key t u v) pr;
          pr)
        (Array.of_list (List.filter (fun p -> p <> h) (Array.to_list t.members)))
    in
    (* 3. incremental merge keeps the binary-searchable order without a
       full re-sort: the old run is already sorted and only the O(n)
       fresh pairs need sorting *)
    Array.sort pair_cmp fresh;
    t.sorted <- merge_sorted t.sorted fresh;
    recompute_prefix_max t

  let remove_host t h =
    if not (is_member t h) then invalid_arg "Find_cluster.Index.remove_host: not a member";
    if Array.length t.members = 1 then Hashtbl.reset t.pairs
    else
      Array.iter
        (fun p -> if p <> h then Hashtbl.remove t.pairs (key t (Stdlib.min p h) (Stdlib.max p h)))
        t.members;
    t.active.(h) <- false;
    delete_member t h;
    let dist = t.space.Space.dist in
    let kept =
      Array.of_list
        (List.filter (fun pr -> pr.u <> h && pr.v <> h) (Array.to_list t.sorted))
    in
    (* the departed host leaves every ball it was counted in *)
    Array.iter
      (fun pr -> if dist h pr.u <= pr.d && dist h pr.v <= pr.d then pr.size <- pr.size - 1)
      kept;
    t.sorted <- kept;
    recompute_prefix_max t

  (* ----- queries ----- *)

  (* Rank of the last sorted pair with distance <= l, or -1. *)
  let last_within t l =
    let n = Array.length t.sorted in
    let rec search lo hi =
      if lo >= hi then lo - 1
      else begin
        let mid = (lo + hi) / 2 in
        if t.sorted.(mid).d <= l then search (mid + 1) hi else search lo mid
      end
    in
    search 0 n

  (* S*_uv restricted to the active members, ascending host id. *)
  let members_active t ~u ~v d =
    let dist = t.space.Space.dist in
    List.filter
      (fun x -> dist x u <= d && dist x v <= d)
      (Array.to_list t.members)

  let find ?(verify = false) t ~k ~l =
    if k < 2 then invalid_arg "Find_cluster.Index.find: k < 2";
    let a = Array.length t.members in
    let result = ref None in
    (try
       for i = 0 to a - 1 do
         for j = i + 1 to a - 1 do
           let u = t.members.(i) and v = t.members.(j) in
           match Hashtbl.find_opt t.pairs (key t u v) with
           | None -> ()
           | Some pr ->
               if pr.d <= l && pr.size >= k then begin
                 let cluster = pick_k ~p:u ~q:v k (members_active t ~u ~v pr.d) in
                 if cluster_ok ~verify t.space ~l cluster then begin
                   result := Some cluster;
                   raise Exit
                 end
               end
         done
       done
     with Exit -> ());
    !result

  let exists t ~k ~l =
    if k < 2 then invalid_arg "Find_cluster.Index.exists: k < 2";
    let limit = last_within t l in
    limit >= 0 && t.prefix_max.(limit) >= k

  let max_size t ~l =
    if Array.length t.members = 0 then 0
    else begin
      let limit = last_within t l in
      if limit < 0 then 1 else Stdlib.max 1 t.prefix_max.(limit)
    end

  let max_sizes t ~ls = Array.map (fun l -> max_size t ~l) ls

  (* ----- persistence -----

     The universe space is a function and cannot be serialized; the dump
     carries the membership and the per-pair counts, and [of_dump]
     recomputes pair distances against the caller-provided space.  Using
     the stored counts (instead of recounting) keeps restore at
     O(a^2 log a) instead of the O(a^3) of [build_subset]. *)

  type dump = {
    d_members : int list; (* ascending *)
    d_sizes : int array; (* per (i, j), i < j over d_members, row-major *)
  }

  let dump t =
    let a = Array.length t.members in
    let sizes = Array.make (Stdlib.max 1 (a * (a - 1) / 2)) 0 in
    let pos = ref 0 in
    for i = 0 to a - 1 do
      for j = i + 1 to a - 1 do
        (match Hashtbl.find_opt t.pairs (key t t.members.(i) t.members.(j)) with
        | Some pr -> sizes.(!pos) <- pr.size
        | None -> assert false);
        incr pos
      done
    done;
    { d_members = Array.to_list t.members; d_sizes = Array.sub sizes 0 !pos }

  let of_dump space d =
    let fail msg = invalid_arg ("Find_cluster.Index.of_dump: " ^ msg) in
    let n = space.Space.n in
    let members = Array.of_list d.d_members in
    let a = Array.length members in
    Array.iteri
      (fun i h ->
        if h < 0 || h >= n then fail "host out of range";
        if i > 0 && members.(i - 1) >= h then fail "members not strictly ascending")
      members;
    if Array.length d.d_sizes <> a * (a - 1) / 2 then fail "size table arity mismatch";
    Array.iter (fun s -> if s < 0 || s > a then fail "count out of range") d.d_sizes;
    let active = Array.make n false in
    Array.iter (fun h -> active.(h) <- true) members;
    let count = a * (a - 1) / 2 in
    let t =
      {
        space;
        active;
        members;
        pairs = Hashtbl.create (Stdlib.max 16 count);
        sorted = [||];
        prefix_max = [||];
      }
    in
    let all = Array.make (Stdlib.max 1 count) { u = 0; v = 0; d = 0.0; size = 0 } in
    let pos = ref 0 in
    for i = 0 to a - 1 do
      for j = i + 1 to a - 1 do
        let u = members.(i) and v = members.(j) in
        let pr = { u; v; d = space.Space.dist u v; size = d.d_sizes.(!pos) } in
        Hashtbl.replace t.pairs (key t u v) pr;
        all.(!pos) <- pr;
        incr pos
      done
    done;
    let all = if count = 0 then [||] else all in
    Array.sort pair_cmp all;
    t.sorted <- all;
    recompute_prefix_max t;
    t
end

module Coreset = struct
  module CS = Bwc_metric.Coreset
  module Anchor = Bwc_predtree.Anchor
  module Registry = Bwc_obs.Registry

  type interval = CS.interval = { lo : int; hi : int }

  let default_k = 32

  type t = {
    space : Space.t;
    ck : int;
    mutable anchor : Anchor.t;
    summaries : (int, CS.t) Hashtbl.t;
    m_merge : Registry.Counter.t option;
    m_rebuild : Registry.Counter.t option;
    m_width : Registry.Histogram.t option;
  }

  let create ?(k = default_k) ?metrics space =
    if k < 1 then invalid_arg "Find_cluster.Coreset.create: k < 1";
    {
      space;
      ck = k;
      anchor = Anchor.create ();
      summaries = Hashtbl.create 64;
      m_merge = Option.map (fun m -> Registry.counter m "coreset.merge") metrics;
      m_rebuild = Option.map (fun m -> Registry.counter m "coreset.rebuild") metrics;
      m_width =
        Option.map (fun m -> Registry.histogram m "coreset.error_bound") metrics;
    }

  let k_param t = t.ck
  let size t = Anchor.size t.anchor
  let members t = Anchor.hosts t.anchor
  let is_member t h = Anchor.mem t.anchor h
  let bump = function Some c -> Registry.Counter.incr c | None -> ()

  let singleton t h = CS.of_points t.space ~k:t.ck [ h ]

  (* Invariant: [summaries] maps every current host [x] to the summary of
     the subtree rooted at [x] — a pure function of (space, k, subtree
     topology), because [CS.merge] canonicalises its inputs.  All
     maintenance below is "recompute the nodes whose child set changed,
     then their ancestors". *)
  let recompute t x =
    let inputs =
      singleton t x
      :: List.map (fun c -> Hashtbl.find t.summaries c) (Anchor.children t.anchor x)
    in
    Hashtbl.replace t.summaries x (CS.merge t.space ~k:t.ck inputs);
    bump t.m_merge

  let rec refresh_path t x =
    recompute t x;
    match Anchor.parent t.anchor x with
    | Some p -> refresh_path t p
    | None -> ()

  let rec rebuild_node t x =
    List.iter (rebuild_node t) (Anchor.children t.anchor x);
    recompute t x

  let rebuild t =
    Hashtbl.reset t.summaries;
    if Anchor.size t.anchor > 0 then rebuild_node t (Anchor.root t.anchor);
    bump t.m_rebuild

  (* Auto-placement keeps the internal overlay shallow: attach under the
     shallowest host that still has fewer than three children (ties to the
     emptier node, then the smallest id), giving O(log n) depth without
     consulting the protocol overlay. *)
  let fanout = 3

  let auto_parent t =
    let best = ref None in
    List.iter
      (fun h ->
        let c = List.length (Anchor.children t.anchor h) in
        if c < fanout then begin
          let key = (Anchor.depth t.anchor h, c, h) in
          match !best with
          | Some (bk, _) when compare bk key <= 0 -> ()
          | _ -> best := Some (key, h)
        end)
      (Anchor.hosts t.anchor);
    match !best with
    | Some (_, h) -> h
    | None -> Anchor.root t.anchor

  let add_no_refresh t ?parent h =
    if h < 0 || h >= t.space.Space.n then
      invalid_arg "Find_cluster.Coreset.add: host out of range";
    if Anchor.mem t.anchor h then
      invalid_arg "Find_cluster.Coreset.add: already a member";
    if Anchor.size t.anchor = 0 then Anchor.set_root t.anchor h
    else begin
      let p =
        match parent with
        | Some p ->
            if not (Anchor.mem t.anchor p) then
              invalid_arg "Find_cluster.Coreset.add: unknown parent";
            p
        | None -> auto_parent t
      in
      Anchor.add t.anchor ~parent:p h
    end;
    Hashtbl.replace t.summaries h (singleton t h)

  let add ?parent t h =
    add_no_refresh t ?parent h;
    match Anchor.parent t.anchor h with
    | Some p -> refresh_path t p
    | None -> ()

  let remove t h =
    if not (Anchor.mem t.anchor h) then
      invalid_arg "Find_cluster.Coreset.remove: not a member";
    if Anchor.size t.anchor = 1 then begin
      t.anchor <- Anchor.create ();
      Hashtbl.reset t.summaries
    end
    else begin
      let parent = Anchor.parent t.anchor h in
      Hashtbl.remove t.summaries h;
      if Anchor.children t.anchor h = [] then begin
        (match Anchor.remove_leaf t.anchor h with
        | Ok () -> ()
        | Error `Not_leaf -> assert false);
        match parent with Some p -> refresh_path t p | None -> assert false
      end
      else begin
        (match Anchor.remove_node t.anchor h with
        | Ok _moves -> ()
        | Error `Last_host -> assert false);
        (* Orphans regraft under [h]'s parent (or the promoted root), so
           only that node's child set — and its ancestors — changed. *)
        match parent with
        | Some p -> refresh_path t p
        | None -> refresh_path t (Anchor.root t.anchor)
      end
    end

  let of_members ?k ?metrics space hosts =
    let t = create ?k ?metrics space in
    List.iter (fun h -> add_no_refresh t h) hosts;
    rebuild t;
    t

  let of_anchor ?k ?metrics space anchor =
    let t = create ?k ?metrics space in
    t.anchor <- Anchor.of_dump (Anchor.dump anchor);
    List.iter
      (fun h ->
        if h < 0 || h >= space.Space.n then
          invalid_arg "Find_cluster.Coreset.of_anchor: host out of range")
      (Anchor.hosts t.anchor);
    rebuild t;
    t

  let summary t =
    if Anchor.size t.anchor = 0 then CS.of_points t.space ~k:t.ck []
    else Hashtbl.find t.summaries (Anchor.root t.anchor)

  let observe_width t (iv : interval) =
    match t.m_width with
    | Some h -> Registry.Histogram.observe h (iv.hi - iv.lo)
    | None -> ()

  let max_size t ~l =
    let iv = CS.max_size t.space (summary t) ~l in
    observe_width t iv;
    iv

  let max_sizes t ~ls = Array.map (fun l -> max_size t ~l) ls

  let exists t ~k ~l = CS.exists t.space (summary t) ~k ~l

  let find ?(verify = false) t ~k ~l =
    if k < 2 then invalid_arg "Find_cluster.Coreset.find: k < 2";
    let reps = CS.reps (summary t) in
    let m = Array.length reps in
    let dist = t.space.Space.dist in
    let result = ref None in
    (try
       for i = 0 to m - 1 do
         for j = i + 1 to m - 1 do
           let u = reps.(i).CS.host and v = reps.(j).CS.host in
           let duv = dist u v in
           if duv <= l then begin
             let certain = ref [] in
             for r = m - 1 downto 0 do
               let h = reps.(r).CS.host in
               if h <> u && h <> v && dist h u <= duv && dist h v <= duv then
                 certain := h :: !certain
             done;
             if List.length !certain >= k - 2 then begin
               let cluster = u :: v :: take (k - 2) !certain in
               if cluster_ok ~verify t.space ~l cluster then begin
                 result := Some cluster;
                 raise Exit
               end
             end
           end
         done
       done
     with Exit -> ());
    !result

  (* {2 Persistence}

     The summary cache is a pure function of (space, k, topology), so the
     dump is topology-only and restore is a deterministic rebuild. *)

  type dump = { d_k : int; d_anchor : Anchor.dump }

  let dump t = { d_k = t.ck; d_anchor = Anchor.dump t.anchor }

  let of_dump ?metrics space d =
    if d.d_k < 1 then invalid_arg "Find_cluster.Coreset.of_dump: k < 1";
    let t = create ~k:d.d_k ?metrics space in
    t.anchor <- Anchor.of_dump d.d_anchor;
    List.iter
      (fun h ->
        if h < 0 || h >= space.Space.n then
          invalid_arg "Find_cluster.Coreset.of_dump: host out of range")
      (Anchor.hosts t.anchor);
    rebuild t;
    t
end
