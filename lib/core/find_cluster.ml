module Space = Bwc_metric.Space

let members space ~p ~q =
  let d = space.Space.dist in
  let dpq = d p q in
  let out = ref [] in
  for x = space.Space.n - 1 downto 0 do
    if d x p <= dpq && d x q <= dpq then out := x :: !out
  done;
  !out

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

(* Pick k members, always keeping p and q (the diameter-realising pair is
   certainly inside any wanted cluster of this group). *)
let pick_k ~p ~q k members =
  let others = List.filter (fun x -> x <> p && x <> q) members in
  p :: q :: take (k - 2) others

let cluster_ok ~verify space ~l cluster =
  (not verify) || Space.diameter space cluster <= l *. (1.0 +. 1e-9)

(* Pairs are scanned in plain index order, as in the paper's pseudocode
   ("foreach node pair (p,q)").  The order matters on approximate tree
   metrics: scanning by ascending predicted distance would systematically
   return the most over-confidently embedded pairs (the ones noise made
   look closest) and bias the accuracy evaluation; index order returns an
   arbitrary satisfying pair instead. *)
let iter_pairs_until n f =
  try
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        f p q
      done
    done
  with Exit -> ()

let find ?(verify = false) space ~k ~l =
  if k < 2 then invalid_arg "Find_cluster.find: k < 2";
  if space.Space.n < k then None
  else begin
    let result = ref None in
    iter_pairs_until space.Space.n (fun p q ->
        if space.Space.dist p q <= l then begin
          let s = members space ~p ~q in
          if List.length s >= k then begin
            let cluster = pick_k ~p ~q k s in
            if cluster_ok ~verify space ~l cluster then begin
              result := Some cluster;
              raise Exit
            end
          end
        end);
    !result
  end

let exists space ~k ~l = find space ~k ~l <> None

let max_size space ~l =
  if space.Space.n = 0 then 0
  else begin
    let best = ref 1 in
    iter_pairs_until space.Space.n (fun p q ->
        if space.Space.dist p q <= l then begin
          let size = List.length (members space ~p ~q) in
          if size > !best then best := size
        end);
    !best
  end

module Index = struct
  type t = {
    space : Space.t;
    dists : float array;        (* pair distances, index order (p-major) *)
    sizes : int array;          (* |S*_pq| per pair, index order *)
    sorted_dists : float array; (* ascending distances *)
    prefix_max : int array;     (* running max of sizes along sorted_dists *)
  }

  (* Flat position of pair (p, q), p < q, in index order. *)
  let pair_pos n p q = (p * ((2 * n) - p - 1) / 2) + (q - p - 1)

  let build space =
    let n = space.Space.n in
    let count = n * (n - 1) / 2 in
    let dists = Array.make (Stdlib.max 1 count) 0.0 in
    let sizes = Array.make (Stdlib.max 1 count) 0 in
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        let pos = pair_pos n p q in
        dists.(pos) <- space.Space.dist p q;
        sizes.(pos) <- List.length (members space ~p ~q)
      done
    done;
    let order = Array.init count (fun i -> i) in
    Array.sort (fun a b -> compare dists.(a) dists.(b)) order;
    let sorted_dists = Array.map (fun i -> dists.(i)) order in
    let prefix_max = Array.make count 0 in
    let run = ref 0 in
    Array.iteri
      (fun rank i ->
        run := Stdlib.max !run sizes.(i);
        prefix_max.(rank) <- !run)
      order;
    { space; dists; sizes; sorted_dists; prefix_max }

  let size t = t.space.Space.n

  (* Rank of the last sorted pair with distance <= l, or -1. *)
  let last_within t l =
    let n = Array.length t.sorted_dists in
    let rec search lo hi =
      if lo >= hi then lo - 1
      else begin
        let mid = (lo + hi) / 2 in
        if t.sorted_dists.(mid) <= l then search (mid + 1) hi else search lo mid
      end
    in
    search 0 n

  let find ?(verify = false) t ~k ~l =
    if k < 2 then invalid_arg "Find_cluster.Index.find: k < 2";
    let n = t.space.Space.n in
    let result = ref None in
    (try
       for p = 0 to n - 1 do
         for q = p + 1 to n - 1 do
           let pos = pair_pos n p q in
           if t.dists.(pos) <= l && t.sizes.(pos) >= k then begin
             let cluster = pick_k ~p ~q k (members t.space ~p ~q) in
             if cluster_ok ~verify t.space ~l cluster then begin
               result := Some cluster;
               raise Exit
             end
           end
         done
       done
     with Exit -> ());
    !result

  let exists t ~k ~l =
    if k < 2 then invalid_arg "Find_cluster.Index.exists: k < 2";
    let limit = last_within t l in
    limit >= 0 && t.prefix_max.(limit) >= k

  let max_size t ~l =
    if t.space.Space.n = 0 then 0
    else begin
      let limit = last_within t l in
      if limit < 0 then 1 else Stdlib.max 1 t.prefix_max.(limit)
    end

  let max_sizes t ~ls = Array.map (fun l -> max_size t ~l) ls
end
