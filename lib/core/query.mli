(** Cluster queries and results.

    A query asks for [k] hosts whose pairwise bandwidth is at least [b]
    (Sec. I); under the rational transform it becomes a
    distance-constrained query: [k] hosts with pairwise distance at most
    [l = C / b] (Sec. III). *)

type t = {
  k : int;    (** cluster size; at least 2 *)
  l : float;  (** diameter constraint, in distance units *)
}

val make : k:int -> l:float -> t
val of_bandwidth : ?c:float -> k:int -> float -> t
(** [of_bandwidth ~c ~k b] converts the bandwidth constraint [b] (Mbps)
    with [l = c / b]. *)

val bandwidth_of : ?c:float -> t -> float
(** The bandwidth constraint this query's [l] corresponds to. *)

type result = {
  cluster : int list option; (** the [k] hosts, or [None] when not found *)
  hops : int;                (** query forwardings (0 = answered where submitted) *)
  retries : int;             (** hop retransmissions spent on lossy links *)
  path : int list;           (** hosts visited, submission point first *)
}

val found : result -> bool
val not_found_at : int -> result
(** A miss that never left the submission node. *)

val no_members : result
(** A miss with an empty path: the system had no member to submit the
    query at. *)

val pp : Format.formatter -> t -> unit
val pp_result : Format.formatter -> result -> unit
