(** Dynamic membership: hosts joining and leaving a running system
    (requirement 5 of Sec. I, "members of each cluster should adaptively
    change as network condition changes").

    A join inserts the host into every prediction tree of the ensemble
    (the same Gromov placement a bootstrap uses) and a leave splices it
    out (or rebuilds when other hosts anchor beneath it); after each batch
    of membership changes the aggregation protocols re-run to quiescence,
    so cluster routing tables always describe the current overlay.

    The system also keeps the centralized Algorithm-1 comparison alive
    under churn: a {!Bwc_core.Find_cluster.Index} over the measured metric
    (whose pair distances are fixed — only membership moves) is built
    lazily and then {e maintained by O(n^2) deltas} on every join, leave
    and detector-driven eviction, instead of being invalidated and
    rebuilt at O(n^3) per membership event.

    Churn schedules from {!Bwc_sim.Churn} drive whole scenarios. *)

type t

type index_mode =
  | Exact  (** the O(n^2)-per-event {!Find_cluster.Index} baseline *)
  | Coreset of int
      (** approximate {!Find_cluster.Coreset} summaries of size [k]:
          O(k^2 · depth) per event, interval answers *)

val create :
  ?seed:int ->
  ?c:float ->
  ?n_cut:int ->
  ?class_count:int ->
  ?ensemble_size:int ->
  ?initial_members:int list ->
  ?detector:Detector.config ->
  ?metrics:Bwc_obs.Registry.t ->
  ?trace:Bwc_obs.Trace.t ->
  ?index_mode:index_mode ->
  Bwc_dataset.Dataset.t ->
  t
(** [initial_members] defaults to all hosts of the dataset.
    [detector]/[metrics]/[trace] are threaded into the underlying
    {!Protocol.create} (and [metrics] into the ensemble build), so a
    long-running host such as [bwclusterd] observes the whole stack
    through one registry and one trace sink.  [index_mode] (default
    [Exact]) selects which centralized comparison structure churn
    maintains and {!query_bounds} serves from. *)

val assemble :
  dataset:Bwc_dataset.Dataset.t ->
  c:float ->
  fw:Bwc_predtree.Ensemble.t ->
  protocol:Protocol.t ->
  classes:Classes.t ->
  rng_state:int64 ->
  index:Find_cluster.Index.t option ->
  ?index_mode:index_mode ->
  ?coreset:Find_cluster.Coreset.t ->
  unit ->
  t
(** Snapshot restore only (see [Bwc_persist]): re-assembles a dynamic
    system from already-restored layers.  Rebuilds the measured-metric
    index universe from the dataset and re-installs the eviction hook
    that keeps the maintained structures valid under detector-driven
    repair.  A restored [coreset] must describe exactly the restored
    membership ([Invalid_argument] otherwise — a corrupt snapshot). *)

val dataset : t -> Bwc_dataset.Dataset.t
val c : t -> float

val rng_state : t -> int64
(** The submission/placement generator's state (see
    {!Bwc_stats.Rng.state}). *)

val index_opt : t -> Find_cluster.Index.t option
(** The maintained index if it has been forced, without forcing it. *)

val index_mode : t -> index_mode

val coreset_opt : t -> Find_cluster.Coreset.t option
(** The maintained coreset index if it has been forced, without forcing
    it. *)

val members : t -> int list
val member_count : t -> int
val is_member : t -> int -> bool
val protocol : t -> Protocol.t
val ensemble : t -> Bwc_predtree.Ensemble.t
val classes : t -> Classes.t

val join : t -> int -> unit
(** Adds the host and restabilises the aggregation.  The host must be a
    point of the dataset that is not currently a member. *)

val leave : t -> int -> unit
(** Removes the host and restabilises.  Refuses ([Invalid_argument]) to
    remove the last member. *)

val apply : t -> Bwc_sim.Churn.event list -> unit
(** Applies a batch of joins/leaves, restabilising once at the end —
    events for hosts already in the requested state are ignored, so
    schedules generated independently of the current state are safe. *)

val apply_deferred : t -> Bwc_sim.Churn.event list -> int
(** Like {!apply} but {e without} restabilising: membership and the
    maintained index are updated by delta, and the aggregation protocol
    is left stale until the caller runs {!stabilize} (or budgets rounds
    itself via {!Protocol.refresh_topology} + {!Protocol.run_round}).
    Returns the number of events actually applied (no-ops are skipped
    exactly as in {!apply}).  This is the daemon's deferred path:
    cluster answers from the index stay membership-fresh while
    reconvergence proceeds in bounded background steps. *)

val run_scenario :
  t -> churn:Bwc_sim.Churn.t -> rounds:int -> on_round:(int -> t -> unit) -> unit
(** Drives [rounds] epochs: each epoch applies the churn events scheduled
    for it, restabilises, then calls [on_round epoch t] (e.g. to submit
    queries). *)

val query : ?at:int -> t -> k:int -> b:float -> Query.result
(** Submits at a uniformly random current member by default.  When the
    member list is empty (churn removed everyone), answers
    {!Query.no_members} instead of raising. *)

val index : t -> Find_cluster.Index.t
(** The maintained centralized index over the measured metric restricted
    to the current members.  Built on first use (O(n^3)); every
    subsequent membership event repairs it in O(n^2). *)

val query_centralized : t -> k:int -> b:float -> int list option
(** Algorithm 1 over the maintained index with the exact constraint
    [l = C / b] — the centralized baseline the dynamic experiments
    compare the decentralized protocol against, kept valid under churn
    without rebuilds. *)

val coreset : t -> Find_cluster.Coreset.t
(** The maintained coreset index ([k] from the mode, or
    {!Find_cluster.Coreset.default_k} under [Exact]).  Built on first use
    from the primary anchor topology, then delta-maintained on every
    join, leave and eviction alongside the exact index. *)

val query_bounds :
  t -> k:int -> b:float -> int list option * Find_cluster.Coreset.interval
(** Mode-dispatched centralized answer with a certified size interval:
    under [Coreset _] the cluster comes from the summary index (feasible
    when [Some], inconclusive when [None]) and the interval brackets the
    exact maximum cluster size; under [Exact] the interval collapses to
    the exact point answer. *)

val stabilize : t -> int
(** Re-runs background aggregation until quiescent; returns rounds run.
    Normally called internally. *)
