module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble

type index_mode = Exact | Coreset of int

type t = {
  rng : Rng.t;
  c : float;
  dataset : Dataset.t;
  space : Bwc_metric.Space.t; (* measured metric, cached: the index universe *)
  fw : Ensemble.t;
  protocol : Protocol.t;
  classes : Classes.t;
  index_mode : index_mode;
  metrics : Bwc_obs.Registry.t option;
  mutable index : Find_cluster.Index.t option; (* lazy, then delta-maintained *)
  mutable coreset : Find_cluster.Coreset.t option; (* ditto, approximate arm *)
}

(* detector/manual repairs evict members underneath us; the maintained
   structures follow by delta instead of being rebuilt *)
let install_evict_hook t =
  Protocol.set_on_evict t.protocol (fun h ->
      (match t.index with
      | Some idx when Find_cluster.Index.is_member idx h ->
          Find_cluster.Index.remove_host idx h
      | Some _ | None -> ());
      match t.coreset with
      | Some cor when Find_cluster.Coreset.is_member cor h ->
          Find_cluster.Coreset.remove cor h
      | Some _ | None -> ())

let create ?(seed = 1) ?(c = Bwc_metric.Bandwidth.default_c) ?n_cut ?(class_count = 8)
    ?ensemble_size ?initial_members ?detector ?metrics ?trace
    ?(index_mode = Exact) dataset =
  let rng = Rng.create seed in
  let space = Dataset.metric ~c dataset in
  let fw =
    Ensemble.build ~rng:(Rng.split rng) ?size:ensemble_size ?members:initial_members
      ?metrics space
  in
  let classes = Classes.of_percentiles ~c ~count:class_count dataset in
  let protocol =
    Protocol.create ~rng:(Rng.split rng) ?n_cut ?detector ?metrics ?trace ~classes fw
  in
  let (_ : int) = Protocol.run_aggregation protocol in
  (match index_mode with
  | Exact -> ()
  | Coreset k ->
      if k < 1 then invalid_arg "Dynamic.create: Coreset k < 1");
  let t =
    {
      rng;
      c;
      dataset;
      space = Bwc_metric.Space.cached space;
      fw;
      protocol;
      classes;
      index_mode;
      metrics;
      index = None;
      coreset = None;
    }
  in
  install_evict_hook t;
  t

(* Persistence: bwc_persist decodes each layer and re-assembles here.
   The measured-metric universe is rebuilt from the (restored) dataset —
   spaces are closures and never serialize — and the eviction hook is
   re-installed, so a restored system keeps maintaining its index by
   delta exactly like the original. *)
let assemble ~dataset ~c ~fw ~protocol ~classes ~rng_state ~index ?(index_mode = Exact)
    ?coreset () =
  let space = Bwc_metric.Space.cached (Dataset.metric ~c dataset) in
  let t =
    {
      rng = Rng.of_state rng_state;
      c;
      dataset;
      space;
      fw;
      protocol;
      classes;
      index_mode;
      metrics = None;
      index;
      coreset;
    }
  in
  (* a restored coreset must describe exactly the restored membership;
     anything else is a corrupt snapshot, not a recoverable state *)
  (match coreset with
  | None -> ()
  | Some cor ->
      let ms = List.sort compare (Ensemble.members fw) in
      if Find_cluster.Coreset.members cor <> ms then
        invalid_arg "Dynamic.assemble: coreset members disagree with ensemble");
  install_evict_hook t;
  t

let dataset t = t.dataset
let c t = t.c
let rng_state t = Rng.state t.rng
let index_opt t = t.index
let index_mode t = t.index_mode
let coreset_opt t = t.coreset

let members t = Ensemble.members t.fw
let member_count t = List.length (members t)
let is_member t h = Ensemble.is_member t.fw h
let protocol t = t.protocol
let ensemble t = t.fw
let classes t = t.classes

let index t =
  match t.index with
  | Some i -> i
  | None ->
      let i = Find_cluster.Index.build_subset t.space (members t) in
      t.index <- Some i;
      i

let coreset_k t =
  match t.index_mode with
  | Coreset k -> k
  | Exact -> Find_cluster.Coreset.default_k

let coreset t =
  match t.coreset with
  | Some c -> c
  | None ->
      (* seed the summary overlay from the protocol's own anchor topology
         (deep-copied), so summary merges follow the same aggregation
         paths Algorithm 3 uses *)
      let c =
        Find_cluster.Coreset.of_anchor ~k:(coreset_k t) ?metrics:t.metrics t.space
          (Bwc_predtree.Framework.anchor (Ensemble.primary t.fw))
      in
      t.coreset <- Some c;
      c

(* apply one membership delta to the maintained structures, if
   materialised (a not-yet-demanded index is simply built over the
   members of the moment it is first used) *)
let index_join t h =
  (match t.index with
  | Some idx -> Find_cluster.Index.add_host idx h
  | None -> ());
  match t.coreset with
  | Some cor ->
      (* the newcomer's protocol anchor parent is already placed, so the
         summary overlay can mirror the real aggregation topology *)
      let parent =
        Bwc_predtree.Anchor.parent
          (Bwc_predtree.Framework.anchor (Ensemble.primary t.fw))
          h
      in
      Find_cluster.Coreset.add ?parent cor h
  | None -> ()

let index_leave t h =
  (match t.index with
  | Some idx -> Find_cluster.Index.remove_host idx h
  | None -> ());
  match t.coreset with
  | Some cor -> Find_cluster.Coreset.remove cor h
  | None -> ()

let stabilize t =
  Protocol.refresh_topology t.protocol;
  Protocol.run_aggregation t.protocol

let join t h =
  Ensemble.add_host ~rng:(Rng.split t.rng) t.fw h;
  index_join t h;
  let (_ : int) = stabilize t in
  ()

let leave t h =
  Ensemble.remove_host ~rng:(Rng.split t.rng) t.fw h;
  index_leave t h;
  let (_ : int) = stabilize t in
  ()

(* membership + index deltas only, no restabilisation: the daemon's
   deferred path, where aggregation work is budgeted across ticks and a
   storm of events must not block behind reconvergence *)
let apply_deferred t events =
  let applied = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Bwc_sim.Churn.Join h ->
          if not (is_member t h) then begin
            Ensemble.add_host ~rng:(Rng.split t.rng) t.fw h;
            index_join t h;
            incr applied
          end
      | Bwc_sim.Churn.Leave h ->
          if is_member t h && member_count t > 1 then begin
            Ensemble.remove_host ~rng:(Rng.split t.rng) t.fw h;
            index_leave t h;
            incr applied
          end)
    events;
  !applied

let apply t events =
  if apply_deferred t events > 0 then begin
    let (_ : int) = stabilize t in
    ()
  end

let run_scenario t ~churn ~rounds ~on_round =
  for epoch = 0 to rounds - 1 do
    apply t (Bwc_sim.Churn.events_at churn epoch);
    on_round epoch t
  done

let query ?at t ~k ~b =
  (* [Rng.choose] rejects an empty array, and churn can empty the member
     list — an empty system answers a miss, it does not crash *)
  match at, members t with
  | None, [] -> Query.no_members
  | None, ms -> Protocol.query_bandwidth t.protocol ~at:(Rng.choose t.rng (Array.of_list ms)) ~k ~b
  | Some at, _ -> Protocol.query_bandwidth t.protocol ~at ~k ~b

let query_centralized t ~k ~b =
  let l = Bwc_metric.Bandwidth.to_distance ~c:t.c b in
  Find_cluster.Index.find (index t) ~k ~l

let query_bounds t ~k ~b =
  let l = Bwc_metric.Bandwidth.to_distance ~c:t.c b in
  match t.index_mode with
  | Exact ->
      let idx = index t in
      let m = Find_cluster.Index.max_size idx ~l in
      (Find_cluster.Index.find idx ~k ~l, { Find_cluster.Coreset.lo = m; hi = m })
  | Coreset _ ->
      let cor = coreset t in
      (Find_cluster.Coreset.find cor ~k ~l, Find_cluster.Coreset.max_size cor ~l)
