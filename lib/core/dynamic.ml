module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Ensemble = Bwc_predtree.Ensemble

type t = {
  rng : Rng.t;
  c : float;
  dataset : Dataset.t;
  space : Bwc_metric.Space.t; (* measured metric, cached: the index universe *)
  fw : Ensemble.t;
  protocol : Protocol.t;
  classes : Classes.t;
  mutable index : Find_cluster.Index.t option; (* lazy, then delta-maintained *)
}

(* detector/manual repairs evict members underneath us; the maintained
   index follows by delta instead of being rebuilt *)
let install_evict_hook t =
  Protocol.set_on_evict t.protocol (fun h ->
      match t.index with
      | Some idx when Find_cluster.Index.is_member idx h ->
          Find_cluster.Index.remove_host idx h
      | Some _ | None -> ())

let create ?(seed = 1) ?(c = Bwc_metric.Bandwidth.default_c) ?n_cut ?(class_count = 8)
    ?ensemble_size ?initial_members ?detector ?metrics ?trace dataset =
  let rng = Rng.create seed in
  let space = Dataset.metric ~c dataset in
  let fw =
    Ensemble.build ~rng:(Rng.split rng) ?size:ensemble_size ?members:initial_members
      ?metrics space
  in
  let classes = Classes.of_percentiles ~c ~count:class_count dataset in
  let protocol =
    Protocol.create ~rng:(Rng.split rng) ?n_cut ?detector ?metrics ?trace ~classes fw
  in
  let (_ : int) = Protocol.run_aggregation protocol in
  let t =
    {
      rng;
      c;
      dataset;
      space = Bwc_metric.Space.cached space;
      fw;
      protocol;
      classes;
      index = None;
    }
  in
  install_evict_hook t;
  t

(* Persistence: bwc_persist decodes each layer and re-assembles here.
   The measured-metric universe is rebuilt from the (restored) dataset —
   spaces are closures and never serialize — and the eviction hook is
   re-installed, so a restored system keeps maintaining its index by
   delta exactly like the original. *)
let assemble ~dataset ~c ~fw ~protocol ~classes ~rng_state ~index =
  let space = Bwc_metric.Space.cached (Dataset.metric ~c dataset) in
  let t =
    { rng = Rng.of_state rng_state; c; dataset; space; fw; protocol; classes; index }
  in
  install_evict_hook t;
  t

let dataset t = t.dataset
let c t = t.c
let rng_state t = Rng.state t.rng
let index_opt t = t.index

let members t = Ensemble.members t.fw
let member_count t = List.length (members t)
let is_member t h = Ensemble.is_member t.fw h
let protocol t = t.protocol
let ensemble t = t.fw
let classes t = t.classes

let index t =
  match t.index with
  | Some i -> i
  | None ->
      let i = Find_cluster.Index.build_subset t.space (members t) in
      t.index <- Some i;
      i

(* apply one membership delta to the maintained index, if materialised
   (a not-yet-demanded index is simply built over the members of the
   moment it is first used) *)
let index_join t h =
  match t.index with
  | Some idx -> Find_cluster.Index.add_host idx h
  | None -> ()

let index_leave t h =
  match t.index with
  | Some idx -> Find_cluster.Index.remove_host idx h
  | None -> ()

let stabilize t =
  Protocol.refresh_topology t.protocol;
  Protocol.run_aggregation t.protocol

let join t h =
  Ensemble.add_host ~rng:(Rng.split t.rng) t.fw h;
  index_join t h;
  let (_ : int) = stabilize t in
  ()

let leave t h =
  Ensemble.remove_host ~rng:(Rng.split t.rng) t.fw h;
  index_leave t h;
  let (_ : int) = stabilize t in
  ()

(* membership + index deltas only, no restabilisation: the daemon's
   deferred path, where aggregation work is budgeted across ticks and a
   storm of events must not block behind reconvergence *)
let apply_deferred t events =
  let applied = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Bwc_sim.Churn.Join h ->
          if not (is_member t h) then begin
            Ensemble.add_host ~rng:(Rng.split t.rng) t.fw h;
            index_join t h;
            incr applied
          end
      | Bwc_sim.Churn.Leave h ->
          if is_member t h && member_count t > 1 then begin
            Ensemble.remove_host ~rng:(Rng.split t.rng) t.fw h;
            index_leave t h;
            incr applied
          end)
    events;
  !applied

let apply t events =
  if apply_deferred t events > 0 then begin
    let (_ : int) = stabilize t in
    ()
  end

let run_scenario t ~churn ~rounds ~on_round =
  for epoch = 0 to rounds - 1 do
    apply t (Bwc_sim.Churn.events_at churn epoch);
    on_round epoch t
  done

let query ?at t ~k ~b =
  (* [Rng.choose] rejects an empty array, and churn can empty the member
     list — an empty system answers a miss, it does not crash *)
  match at, members t with
  | None, [] -> Query.no_members
  | None, ms -> Protocol.query_bandwidth t.protocol ~at:(Rng.choose t.rng (Array.of_list ms)) ~k ~b
  | Some at, _ -> Protocol.query_bandwidth t.protocol ~at ~k ~b

let query_centralized t ~k ~b =
  let l = Bwc_metric.Bandwidth.to_distance ~c:t.c b in
  Find_cluster.Index.find (index t) ~k ~l
