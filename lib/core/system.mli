(** High-level facade: one call to stand up the whole stack — prediction
    framework, aggregation protocol, centralized index — over a bandwidth
    dataset.  This is the public API the examples use.

    {[
      let ds = Bwc_dataset.Planetlab.hp_like ~seed:1 in
      let sys = Bwc_core.System.create ~seed:1 ds in
      match Bwc_core.System.query sys ~k:10 ~b:40.0 with
      | { cluster = Some hosts; hops; _ } -> (* use hosts *)
      | _ -> (* relax the constraints *)
    ]} *)

type t

val create :
  ?seed:int ->
  ?c:float ->
  ?n_cut:int ->
  ?class_count:int ->
  ?classes:Classes.t ->
  ?mode:Bwc_predtree.Framework.mode ->
  ?ensemble_size:int ->
  ?aggregation_rounds:int ->
  ?detector:Detector.config ->
  Bwc_dataset.Dataset.t ->
  t
(** Builds the prediction framework over the dataset, creates the
    decentralized protocol and runs background aggregation to
    quiescence.  [class_count] (default 8) bandwidth classes are placed
    at percentiles of the dataset's bandwidth distribution; an explicit
    [classes] overrides both.  [detector] (off when omitted) runs the
    failure detector over the overlay, exactly as {!Protocol.create}
    would. *)

val assemble :
  seed:int ->
  dataset:Bwc_dataset.Dataset.t ->
  c:float ->
  fw:Bwc_predtree.Ensemble.t ->
  protocol:Protocol.t ->
  classes:Classes.t ->
  rng_state:int64 ->
  index:Find_cluster.Index.t option ->
  ?coreset:Find_cluster.Coreset.t ->
  unit ->
  t
(** Snapshot restore only (see [Bwc_persist]): re-assembles a system from
    already-restored layers without running any aggregation.  The callers
    are expected to have decoded each layer with its own validating
    [of_dump]. *)

val seed : t -> int
val rng_state : t -> int64
(** The submission-point generator's state (see {!Bwc_stats.Rng.state}). *)

val index_opt : t -> Find_cluster.Index.t option
(** The centralized index if it has been forced (by {!index} or a
    restore), without forcing it. *)

val coreset_opt : t -> Find_cluster.Coreset.t option
(** The summary index if it has been forced (by {!coreset} or a
    restore), without forcing it. *)

val dataset : t -> Bwc_dataset.Dataset.t
val framework : t -> Bwc_predtree.Ensemble.t
val protocol : t -> Protocol.t
val classes : t -> Classes.t
val c : t -> float
val size : t -> int

val query : ?at:int -> t -> k:int -> b:float -> Query.result
(** Decentralized query (Algorithm 4).  Submitted at host [at] (default: a
    uniformly random host, as in the paper's experiments).  [b] is mapped
    to the cheapest bandwidth class that guarantees it. *)

val query_centralized : t -> k:int -> b:float -> int list option
(** The centralized comparison (TREE-CENTRAL): Algorithm 1 over the full
    framework-predicted space, with the exact constraint [l = C / b]. *)

val index : t -> Find_cluster.Index.t
(** The centralized index over the cached framework-predicted space,
    built lazily on first use and shared by every subsequent centralized
    query.  A [System] has fixed membership, so no deltas ever apply
    here; the churn path ({!Dynamic.index}) is the one that maintains
    its index incrementally. *)

val coreset : ?k:int -> t -> Find_cluster.Coreset.t
(** The approximate summary index over the {e uncached} predicted space
    ([k] defaults to {!Find_cluster.Coreset.default_k}): seeded from the
    primary anchor topology, it evaluates only the O(n·k) distances the
    summaries touch, so it never pays the dense O(n^2) cache the exact
    {!index} needs.  Rebuilt when called with a different [k]. *)

val query_bounds :
  ?coreset_k:int -> t -> k:int -> b:float -> int list option * Find_cluster.Coreset.interval
(** Approximate centralized answer: a cluster certified feasible by
    direct distance checks (or [None], inconclusive) plus the certified
    interval on the maximum cluster size at [l = C / b]. *)

val real_bw : t -> int -> int -> float
val predicted_bw : t -> int -> int -> float

val verify_cluster : t -> b:float -> int list -> (int * int) list
(** The pairs of the cluster whose {e real} bandwidth is below [b] — the
    per-query ingredient of the WPR accuracy metric. *)

val find_feeder : t -> targets:int list -> (int * float) option
(** Node-search extension: host maximising its minimum real-predicted
    bandwidth to [targets], with that bandwidth. *)

val refresh : ?drift:float -> seed:int -> t -> t
(** Dynamic-network step: perturbs every pairwise bandwidth by up to
    [drift] (relative, default 0.1), rebuilds the prediction framework
    with the same insertion behaviour, re-runs aggregation, and returns
    the refreshed system.  Models requirement 5 of Sec. I (members adapt
    as conditions change). *)
