type t = {
  k : int;
  l : float;
}

let make ~k ~l =
  if k < 2 then invalid_arg "Query.make: k < 2";
  if l <= 0.0 then invalid_arg "Query.make: l <= 0";
  { k; l }

let of_bandwidth ?c ~k b =
  let l = Bwc_metric.Bandwidth.to_distance ?c b in
  make ~k ~l
let bandwidth_of ?c t = Bwc_metric.Bandwidth.of_distance ?c t.l

type result = {
  cluster : int list option;
  hops : int;
  retries : int;
  path : int list;
}

let found r = r.cluster <> None
let not_found_at node = { cluster = None; hops = 0; retries = 0; path = [ node ] }
let no_members = { cluster = None; hops = 0; retries = 0; path = [] }

let pp ppf t = Format.fprintf ppf "(k=%d, l=%.3f)" t.k t.l

let pp_result ppf r =
  let pp_retries ppf n = if n > 0 then Format.fprintf ppf " (%d retries)" n in
  match r.cluster with
  | None -> Format.fprintf ppf "not found after %d hops%a" r.hops pp_retries r.retries
  | Some c ->
      Format.fprintf ppf "found {%s} after %d hops%a"
        (String.concat ", " (List.map string_of_int c))
        r.hops pp_retries r.retries
