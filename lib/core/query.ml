type t = {
  k : int;
  l : float;
}

let make ~k ~l =
  if k < 2 then invalid_arg "Query.make: k < 2";
  if l <= 0.0 then invalid_arg "Query.make: l <= 0";
  { k; l }

let of_bandwidth ?c ~k b =
  let l = Bwc_metric.Bandwidth.to_distance ?c b in
  make ~k ~l
let bandwidth_of ?c t = Bwc_metric.Bandwidth.of_distance ?c t.l

type result = {
  cluster : int list option;
  hops : int;
  path : int list;
}

let found r = r.cluster <> None
let not_found_at node = { cluster = None; hops = 0; path = [ node ] }

let pp ppf t = Format.fprintf ppf "(k=%d, l=%.3f)" t.k t.l

let pp_result ppf r =
  match r.cluster with
  | None -> Format.fprintf ppf "not found after %d hops" r.hops
  | Some c ->
      Format.fprintf ppf "found {%s} after %d hops"
        (String.concat ", " (List.map string_of_int c))
        r.hops
