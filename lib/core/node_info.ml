type t = {
  host : int;
  labels : Bwc_predtree.Label.t array;
}

let make ~host ~labels = { host; labels }
let dist a b = Bwc_predtree.Ensemble.label_dist a.labels b.labels

let space_of infos =
  Bwc_metric.Space.make ~n:(Array.length infos) ~dist:(fun i j ->
      if i = j then 0.0 else dist infos.(i) infos.(j))

let equal a b = a.host = b.host
let compare_host a b = compare a.host b.host

let pp ppf t =
  Format.fprintf ppf "node %d (depth %d)" t.host
    (if Array.length t.labels = 0 then 0 else Bwc_predtree.Label.depth t.labels.(0))
