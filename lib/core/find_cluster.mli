(** Algorithm 1: centralized clustering in a tree metric space.

    For every node pair [(p, q)] the set
    [S*_pq = { x : d(x,p) <= d(p,q) && d(x,q) <= d(p,q) }]
    is the largest cluster whose diameter is realised by [(p, q)]
    (Theorem 3.1: in a tree metric, [diam S*_pq = d(p,q)]), so scanning
    pairs and checking [|S*_pq| >= k] with [d(p,q) <= l] decides the
    query in O(n^3).

    Pairs are scanned in plain index order, exactly as the paper's
    pseudocode iterates "foreach node pair (p,q)": any satisfying pair is
    a correct answer.  (Scanning by ascending predicted distance would
    systematically return the pairs an imperfect embedding placed
    over-confidently close and bias the accuracy evaluation.)

    On spaces that are only approximately tree metrics the guarantee
    [diam S*_pq = d(p,q)] can fail; [~verify:true] re-checks the returned
    cluster's diameter (the paper's evaluation does {e not} verify — the
    resulting wrong pairs are exactly what WPR measures). *)

val members : Bwc_metric.Space.t -> p:int -> q:int -> int list
(** [S*_pq], ascending node order ([p] and [q] are members). *)

val find :
  ?verify:bool -> Bwc_metric.Space.t -> k:int -> l:float -> int list option
(** One-shot Algorithm 1.  Returns [k] members of the first satisfying
    [S*_pq] ([p] and [q] always included).  [verify] defaults to
    [false]. *)

val exists : Bwc_metric.Space.t -> k:int -> l:float -> bool

val max_size : Bwc_metric.Space.t -> l:float -> int
(** Largest cluster size achievable with diameter [<= l]
    (the quantity aggregated into cluster routing tables by
    Algorithm 3); at least 1 when the space is non-empty. *)

(** Precomputed all-pairs index for repeated queries on a fixed space:
    O(n^3) once, then O(log n) feasibility and max-size lookups. *)
module Index : sig
  type t

  val build : Bwc_metric.Space.t -> t
  val size : t -> int

  val find : ?verify:bool -> t -> k:int -> l:float -> int list option
  (** Same result as {!find} on the indexed space. *)

  val exists : t -> k:int -> l:float -> bool
  val max_size : t -> l:float -> int
  val max_sizes : t -> ls:float array -> int array
  (** Vectorised {!max_size} for a whole set of distance classes. *)
end
