(** Algorithm 1: centralized clustering in a tree metric space.

    For every node pair [(p, q)] the set
    [S*_pq = { x : d(x,p) <= d(p,q) && d(x,q) <= d(p,q) }]
    is the largest cluster whose diameter is realised by [(p, q)]
    (Theorem 3.1: in a tree metric, [diam S*_pq = d(p,q)]), so scanning
    pairs and checking [|S*_pq| >= k] with [d(p,q) <= l] decides the
    query in O(n^3).

    Pairs are scanned in plain index order, exactly as the paper's
    pseudocode iterates "foreach node pair (p,q)": any satisfying pair is
    a correct answer.  (Scanning by ascending predicted distance would
    systematically return the pairs an imperfect embedding placed
    over-confidently close and bias the accuracy evaluation.)

    On spaces that are only approximately tree metrics the guarantee
    [diam S*_pq = d(p,q)] can fail; [~verify:true] re-checks the returned
    cluster's diameter (the paper's evaluation does {e not} verify — the
    resulting wrong pairs are exactly what WPR measures). *)

val diam_tol : float
(** Relative slack ([1e-9]) applied when a cluster diameter is verified
    against the constraint [l]; shared by every verification path. *)

val members : Bwc_metric.Space.t -> p:int -> q:int -> int list
(** [S*_pq], ascending node order ([p] and [q] are members). *)

val count_members : Bwc_metric.Space.t -> p:int -> q:int -> int
(** [|S*_pq|] by counting loop — the scan hot path never materialises the
    member list just to measure it. *)

val find :
  ?verify:bool -> Bwc_metric.Space.t -> k:int -> l:float -> int list option
(** One-shot Algorithm 1.  Returns [k] members of the first satisfying
    [S*_pq] ([p] and [q] always included).  [verify] defaults to
    [false]. *)

val exists : Bwc_metric.Space.t -> k:int -> l:float -> bool

val max_size : Bwc_metric.Space.t -> l:float -> int
(** Largest cluster size achievable with diameter [<= l]
    (the quantity aggregated into cluster routing tables by
    Algorithm 3); at least 1 when the space is non-empty. *)

(** Precomputed all-pairs index for repeated queries: O(n^3) once, then
    O(log n) feasibility and max-size lookups — and {e incrementally
    maintainable} under membership churn.

    The index is built over a fixed universe space whose distances never
    change; what changes is which points are {e members}.  A membership
    event only touches pairs the moving host participates in, plus the
    membership counts [|S*_pq|] of pairs whose ball it falls inside, so
    {!add_host} and {!remove_host} repair the index in O(n^2) — against
    O(n^3) for a rebuild — while keeping the sorted-distance/prefix-max
    query structures valid (pair distances are immutable, so mutating
    counts in place and merging the O(n) new pairs preserves both the
    sort order and the prefix-max invariant). *)
module Index : sig
  type t

  val build : Bwc_metric.Space.t -> t
  (** Index with every point of the space as a member. *)

  val build_subset : Bwc_metric.Space.t -> int list -> t
  (** Index over the given members only (deduplicated; order
      irrelevant).  Raises [Invalid_argument] for out-of-range hosts. *)

  val size : t -> int
  (** Current member count. *)

  val members : t -> int list
  (** Ascending host ids. *)

  val is_member : t -> int -> bool

  val add_host : t -> int -> unit
  (** O(n^2) incremental join: sizes every pair the newcomer forms with a
      current member and bumps [|S*_pq|] of every existing pair whose
      ball contains it; the new pairs are merged into the sorted query
      structure without re-sorting the old run.  Raises
      [Invalid_argument] if out of range or already a member. *)

  val remove_host : t -> int -> unit
  (** O(n^2) incremental leave: drops the host's own pairs and decrements
      [|S*_pq|] of every remaining pair whose ball contained it.  Raises
      [Invalid_argument] for non-members. *)

  val find : ?verify:bool -> t -> k:int -> l:float -> int list option
  (** Same result as {!find} on the space restricted to the current
      members (hosts are reported under their universe ids). *)

  val exists : t -> k:int -> l:float -> bool
  val max_size : t -> l:float -> int
  val max_sizes : t -> ls:float array -> int array
  (** Vectorised {!max_size} for a whole set of distance classes. *)

  (** {2 Persistence} *)

  type dump = {
    d_members : int list;  (** ascending host ids *)
    d_sizes : int array;
        (** per-pair [|S*_uv|] counts, row-major over [(i, j)], [i < j],
            of [d_members] *)
  }

  val dump : t -> dump

  val of_dump : Bwc_metric.Space.t -> dump -> t
  (** Reconstructs the index over the given universe space (pair
      distances are recomputed from it; the counts come from the dump, so
      restore is O(a^2 log a) instead of a O(a^3) rebuild).  Validates
      membership ordering/range and count bounds; raises
      [Invalid_argument] on any violation. *)
end

(** Approximate maintained index: per-subtree bounded summaries merged
    bottom-up along an anchor-shaped overlay (ROADMAP "sharded coreset"
    item; see {!Bwc_metric.Coreset} for the bound derivation).

    The structure owns an internal overlay topology — seeded from the
    protocol's anchor tree via {!of_anchor} or grown with the built-in
    shallow placement — and caches, per host, the summary of the subtree
    below it.  A membership event refreshes the event path only:
    O(k^2 · degree · depth) distance evaluations against the exact
    index's O(n^2), and O(n·k) memory against O(n^2).

    Queries answer with certified intervals rather than exact counts;
    intervals collapse to the exact answer whenever no summary ever
    exceeded [k] points (e.g. [k >= n]).  The two-sided guarantee holds on
    metric spaces; {!find} results are re-checked against real distances
    and are feasible on any space. *)
module Coreset : sig
  type t

  type interval = Bwc_metric.Coreset.interval = { lo : int; hi : int }

  val default_k : int
  (** [32] — the summary size used when [?k] is omitted. *)

  val create : ?k:int -> ?metrics:Bwc_obs.Registry.t -> Bwc_metric.Space.t -> t
  (** Empty index over a universe space.  With [metrics], bumps
      [coreset.merge] per summary recomputation, [coreset.rebuild] per
      full rebuild, and observes interval widths in
      [coreset.error_bound].  Raises [Invalid_argument] for [k < 1]. *)

  val of_members :
    ?k:int -> ?metrics:Bwc_obs.Registry.t -> Bwc_metric.Space.t -> int list -> t
  (** Members placed with the built-in shallow topology, summaries built
      bottom-up in one pass (O(n · k^2 · degree) instead of n path
      refreshes). *)

  val of_anchor :
    ?k:int ->
    ?metrics:Bwc_obs.Registry.t ->
    Bwc_metric.Space.t ->
    Bwc_predtree.Anchor.t ->
    t
  (** Snapshot of a live anchor tree's topology (deep-copied: later
      mutations of either side do not affect the other). *)

  val k_param : t -> int
  val size : t -> int
  val members : t -> int list
  val is_member : t -> int -> bool

  val add : ?parent:int -> t -> int -> unit
  (** Join: attach under [parent] (a current member — typically the
      newcomer's anchor parent in the protocol overlay) or under the
      built-in placement when omitted, then refresh summaries along the
      path to the root.  Raises [Invalid_argument] for out-of-range or
      duplicate hosts and unknown parents. *)

  val remove : t -> int -> unit
  (** Leave or eviction: interior hosts regraft their children to the
      grandparent (the anchor tree's crash repair), then the affected
      path refreshes.  Raises [Invalid_argument] for non-members. *)

  val summary : t -> Bwc_metric.Coreset.t
  (** The root (whole-membership) summary. *)

  val max_size : t -> l:float -> interval
  val max_sizes : t -> ls:float array -> interval array

  val exists : t -> k:int -> l:float -> [ `Yes | `No | `Maybe ]
  (** Raises [Invalid_argument] for [k < 2]. *)

  val find : ?verify:bool -> t -> k:int -> l:float -> int list option
  (** A feasible cluster certified by direct distance checks, or [None]
      (inconclusive — the exact index might still find one).  [~verify]
      additionally re-checks the cluster diameter like {!find}. *)

  (** {2 Persistence} *)

  type dump = { d_k : int; d_anchor : Bwc_predtree.Anchor.dump }
  (** Topology only: the summary cache is a pure function of
      (space, k, topology) and is rebuilt deterministically on restore. *)

  val dump : t -> dump

  val of_dump : ?metrics:Bwc_obs.Registry.t -> Bwc_metric.Space.t -> dump -> t
  (** Raises [Invalid_argument] on malformed topology or out-of-range
      hosts. *)
end
