(** Future-work extension (Sec. VI): given a set of hosts, find a single
    host with high bandwidth to {e all} of them — e.g. a data source to
    feed an already-chosen worker cluster.

    Under the rational transform this is the 1-center problem restricted
    to the given targets: minimise [max over s of d(x, s)]. *)

val best :
  Bwc_metric.Space.t -> targets:int list -> exclude:int list -> (int * float) option
(** [best space ~targets ~exclude] returns the host (not a target, not
    excluded) minimising the maximum distance to the targets, with that
    distance.  [None] when no candidate exists or [targets] is empty. *)

val best_bw :
  ?c:float -> Bwc_metric.Space.t -> targets:int list -> (int * float) option
(** Same, reported as minimum bandwidth to the target set. *)

val local : Protocol.t -> at:int -> targets:Node_info.t list -> (int * float) option
(** Decentralized approximation: the best candidate within the clustering
    space of host [at] (what a node can answer from local state).  The
    targets are given as node infos so distances are label-predicted.
    Candidates the local failure detector suspects
    ({!Protocol.routing_suspects}) are skipped.  Each call bumps
    [node_search.calls] in the protocol's registry. *)
