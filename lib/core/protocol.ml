module Ensemble = Bwc_predtree.Ensemble
module Engine = Bwc_sim.Engine
module Fault = Bwc_sim.Fault
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace

type payload = {
  prop_node : Node_info.t list;
  prop_crt : int array;
}

let payload_equal a b =
  a.prop_crt = b.prop_crt
  && List.compare Node_info.compare_host a.prop_node b.prop_node = 0

(* Updates carry a per-link sequence number so that receivers can discard
   duplicates and out-of-order copies (fault jitter breaks link FIFO-ness);
   acks echo the highest sequence seen so senders can retire their
   retransmission state. *)
type message =
  | Update of { seq : int; payload : payload }
  | Ack of { seq : int }

type out_entry = {
  mutable seq : int;
  mutable payload : payload;
  mutable sent_round : int;
  mutable acked : bool;
}

type node = {
  id : int;
  info : Node_info.t;
  neighbors : Node_info.t list;
  aggr_node : (int, Node_info.t list) Hashtbl.t;    (* neighbor -> received propNode *)
  aggr_crt : (int, int array) Hashtbl.t;            (* neighbor -> received propCRT *)
  mutable own_row : int array;                      (* aggrCRT[self] *)
  out : (int, out_entry) Hashtbl.t;                 (* neighbor -> last update sent *)
  seen_seq : (int, int) Hashtbl.t;                  (* neighbor -> highest seq received *)
  mutable dirty : bool;
}

type t = {
  fw : Ensemble.t;
  classes : Classes.t;
  n_cut : int;
  resend_timeout : int;
  mutable nodes : node option array; (* indexed by host id; None = not a member *)
  engine : message Engine.t;
  trace : Trace.t option;
  mutable rounds : int;
  mutable unacked : int;             (* out entries awaiting an ack, system-wide *)
  c_retransmissions : Registry.Counter.t;
  c_dup_suppressed : Registry.Counter.t;
  c_stale_discarded : Registry.Counter.t;
  g_unacked : Registry.Gauge.t;
  h_query_hops : Registry.Histogram.t;
  c_query_retries : Registry.Counter.t;
  c_query_hits : Registry.Counter.t;
  c_query_misses : Registry.Counter.t;
}

let node_of_host fw host = Node_info.make ~host ~labels:(Ensemble.labels fw host)

let neighbor_infos fw host =
  List.map (node_of_host fw) (Ensemble.anchor_neighbors fw host)

let fresh_node fw classes host =
  {
    id = host;
    info = node_of_host fw host;
    neighbors = neighbor_infos fw host;
    aggr_node = Hashtbl.create 8;
    aggr_crt = Hashtbl.create 8;
    own_row = Array.make (Classes.count classes) 1;
    out = Hashtbl.create 8;
    seen_seq = Hashtbl.create 8;
    dirty = true;
  }

let node_slots fw classes =
  Array.init (Ensemble.hosts fw) (fun h ->
      if Ensemble.is_member fw h then Some (fresh_node fw classes h) else None)

let sync_engine_active t =
  Array.iteri
    (fun h slot -> Engine.set_active t.engine h (slot <> None))
    t.nodes

let create ~rng ?(n_cut = 10) ?edge_delay ?faults ?(resend_timeout = 3) ?metrics
    ?trace ~classes fw =
  if n_cut < 1 then invalid_arg "Protocol.create: n_cut < 1";
  if resend_timeout < 1 then invalid_arg "Protocol.create: resend_timeout < 1";
  let n = Ensemble.hosts fw in
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  let t =
    {
      fw;
      classes;
      n_cut;
      resend_timeout;
      nodes = node_slots fw classes;
      engine = Engine.create ?edge_delay ?faults ~metrics ?trace ~rng n;
      trace;
      rounds = 0;
      unacked = 0;
      c_retransmissions = Registry.counter metrics "protocol.retransmissions";
      c_dup_suppressed = Registry.counter metrics "protocol.dup_suppressed";
      c_stale_discarded = Registry.counter metrics "protocol.stale_discarded";
      g_unacked = Registry.gauge metrics "protocol.unacked";
      h_query_hops = Registry.histogram metrics "query.hops";
      c_query_retries = Registry.counter metrics "query.retries";
      c_query_hits = Registry.counter metrics "query.hits";
      c_query_misses = Registry.counter metrics "query.misses";
    }
  in
  sync_engine_active t;
  t

let n t =
  Array.fold_left (fun acc slot -> if slot = None then acc else acc + 1) 0 t.nodes

let get_node t x =
  match t.nodes.(x) with
  | Some node -> node
  | None -> invalid_arg "Protocol: host is not a member"

let n_cut t = t.n_cut
let classes t = t.classes
let framework t = t.fw
let metrics t = Engine.metrics t.engine

let emit t ev = match t.trace with Some tr -> Trace.emit tr ev | None -> ()

(* ----- local state recomputation (Algorithm 3, lines 3-8) ----- *)

(* V_x = {x} union aggrNode[v] for every neighbor v, deduplicated. *)
let clustering_space_node node =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let consider info =
    if not (Hashtbl.mem seen info.Node_info.host) then begin
      Hashtbl.add seen info.Node_info.host ();
      acc := info :: !acc
    end
  in
  consider node.info;
  List.iter
    (fun nb ->
      match Hashtbl.find_opt node.aggr_node nb.Node_info.host with
      | Some infos -> List.iter consider infos
      | None -> ())
    node.neighbors;
  Array.of_list (List.rev !acc)

let recompute_own_row t node =
  let infos = clustering_space_node node in
  (* cache the pairwise label distances: the index scan evaluates each
     pair O(|V|) times and ensemble-median label distances are not
     cheap *)
  let space = Bwc_metric.Space.cached (Node_info.space_of infos) in
  let index = Find_cluster.Index.build space in
  node.own_row <- Find_cluster.Index.max_sizes index ~ls:(Classes.distances t.classes)

(* ----- message construction ----- *)

(* Algorithm 2: the n_cut hosts closest to the recipient among
   {x} union aggrNode[v] for v <> recipient. *)
let prop_node_for t node ~recipient =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let consider info =
    let h = info.Node_info.host in
    if h <> recipient.Node_info.host && not (Hashtbl.mem seen h) then begin
      Hashtbl.add seen h ();
      acc := info :: !acc
    end
  in
  consider node.info;
  List.iter
    (fun nb ->
      if nb.Node_info.host <> recipient.Node_info.host then
        match Hashtbl.find_opt node.aggr_node nb.Node_info.host with
        | Some infos -> List.iter consider infos
        | None -> ())
    node.neighbors;
  let cand = Array.of_list !acc in
  Array.sort
    (fun a b -> compare (Node_info.dist recipient a) (Node_info.dist recipient b))
    cand;
  Array.to_list (Array.sub cand 0 (Stdlib.min t.n_cut (Array.length cand)))

(* Algorithm 3, lines 9-10: max over own row and every other neighbor's
   aggregated column. *)
let prop_crt_for node ~recipient =
  let out = Array.copy node.own_row in
  List.iter
    (fun nb ->
      if nb.Node_info.host <> recipient.Node_info.host then
        match Hashtbl.find_opt node.aggr_crt nb.Node_info.host with
        | Some row ->
            Array.iteri (fun i v -> if v > out.(i) then out.(i) <- v) row
        | None -> ())
    node.neighbors;
  out

let send_updates t node =
  let now = Engine.round t.engine in
  List.iter
    (fun nb ->
      let payload =
        {
          prop_node = prop_node_for t node ~recipient:nb;
          prop_crt = prop_crt_for node ~recipient:nb;
        }
      in
      let h = nb.Node_info.host in
      match Hashtbl.find_opt node.out h with
      | Some entry when payload_equal entry.payload payload ->
          (* nothing new; if unacked the resend timer covers the loss *)
          ()
      | Some entry ->
          entry.seq <- entry.seq + 1;
          entry.payload <- payload;
          entry.sent_round <- now;
          if entry.acked then begin
            entry.acked <- false;
            t.unacked <- t.unacked + 1
          end;
          Engine.send t.engine ~src:node.id ~dst:h (Update { seq = entry.seq; payload })
      | None ->
          Hashtbl.replace node.out h
            { seq = 0; payload; sent_round = now; acked = false };
          t.unacked <- t.unacked + 1;
          Engine.send t.engine ~src:node.id ~dst:h (Update { seq = 0; payload }))
    node.neighbors

(* Timeout-based retransmission: an unacked update is re-sent verbatim
   every [resend_timeout] rounds until the receiver acknowledges it, so
   the aggregation survives message loss and crash windows. *)
let resend_pending t node =
  let now = Engine.round t.engine in
  (* sorted traversal: the send order decides in-flight FIFO order within
     a delivery round, so bucket order here would leak hash-layout
     nondeterminism into the protocol fixed point *)
  Bwc_stats.Tbl.iter_sorted
    (fun h entry ->
      if (not entry.acked) && now - entry.sent_round >= t.resend_timeout then begin
        entry.sent_round <- now;
        Registry.Counter.incr t.c_retransmissions;
        emit t (Trace.Retransmit { round = now; src = node.id; dst = h });
        Engine.send t.engine ~src:node.id ~dst:h (Update { seq = entry.seq; payload = entry.payload })
      end)
    node.out

(* ----- round driver ----- *)

let apply_update t node ~src ~seq payload =
  let seen = Option.value ~default:(-1) (Hashtbl.find_opt node.seen_seq src) in
  if seq < seen then begin
    (* out-of-order copy superseded by something already applied *)
    Registry.Counter.incr t.c_stale_discarded;
    Engine.send t.engine ~src:node.id ~dst:src (Ack { seq = seen });
    false
  end
  else if seq = seen then begin
    (* duplicate: the aggregation merge is idempotent, so re-applying
       must be a no-op — check that the stored state already equals the
       payload, then just re-ack (the previous ack may have been lost) *)
    Registry.Counter.incr t.c_dup_suppressed;
    assert (
      match Hashtbl.find_opt node.aggr_node src with
      | Some prev -> List.compare Node_info.compare_host prev payload.prop_node = 0
      | None -> false);
    assert (
      match Hashtbl.find_opt node.aggr_crt src with
      | Some prev -> prev = payload.prop_crt
      | None -> false);
    Engine.send t.engine ~src:node.id ~dst:src (Ack { seq = seen });
    false
  end
  else begin
    Hashtbl.replace node.seen_seq src seq;
    Engine.send t.engine ~src:node.id ~dst:src (Ack { seq });
    let node_diff =
      match Hashtbl.find_opt node.aggr_node src with
      | Some prev -> List.compare Node_info.compare_host prev payload.prop_node <> 0
      | None -> true
    in
    if node_diff then Hashtbl.replace node.aggr_node src payload.prop_node;
    let crt_diff =
      match Hashtbl.find_opt node.aggr_crt src with
      | Some prev -> prev <> payload.prop_crt
      | None -> true
    in
    if crt_diff then Hashtbl.replace node.aggr_crt src payload.prop_crt;
    node_diff || crt_diff
  end

let apply_ack t node ~src ~seq =
  match Hashtbl.find_opt node.out src with
  | Some entry when (not entry.acked) && seq = entry.seq ->
      entry.acked <- true;
      t.unacked <- t.unacked - 1
  | Some _ | None -> ()

let step t id inbox =
  match t.nodes.(id) with
  | None -> false
  | Some node ->
  let changed = ref node.dirty in
  List.iter
    (fun (src, msg) ->
      match msg with
      | Update { seq; payload } ->
          if apply_update t node ~src ~seq payload then changed := true
      | Ack { seq } -> apply_ack t node ~src ~seq)
    inbox;
  if !changed then begin
    recompute_own_row t node;
    send_updates t node;
    node.dirty <- false
  end;
  resend_pending t node;
  !changed

let run_round t =
  let active = Engine.run_round t.engine ~step:(step t) in
  t.rounds <- t.rounds + 1;
  Registry.Gauge.set t.g_unacked t.unacked;
  (* unacked updates keep the protocol live even across quiet rounds
     between retransmission timeouts *)
  active || t.unacked > 0

let run_aggregation ?max_rounds t =
  let max_rounds =
    match max_rounds with Some m -> m | None -> Stdlib.max 8 (4 * Array.length t.nodes)
  in
  let rec loop r =
    if r >= max_rounds then r
    else if run_round t then loop (r + 1)
    else begin
      emit t (Trace.Quiesce { round = Engine.round t.engine });
      r + 1
    end
  in
  loop 0

(* ----- queries (Algorithm 4) ----- *)

let clustering_space t x = clustering_space_node (get_node t x)

let local_find t node ~k ~cls =
  let infos = clustering_space_node node in
  let space = Bwc_metric.Space.cached (Node_info.space_of infos) in
  match Find_cluster.find space ~k ~l:(Classes.distance t.classes cls) with
  | None -> None
  | Some idxs -> Some (List.map (fun i -> infos.(i).Node_info.host) idxs)

let query ?(policy = `Best_crt) ?hop_budget ?(retries = 2) t ~at ~k ~cls =
  if k < 2 then invalid_arg "Protocol.query: k < 2";
  if cls < 0 || cls >= Classes.count t.classes then invalid_arg "Protocol.query: bad class";
  if retries < 0 then invalid_arg "Protocol.query: negative retries";
  let hop_budget =
    (* a routing path on the anchor tree is simple, so n hops is already
       unreachable — the default budget changes nothing on healthy runs *)
    match hop_budget with
    | Some h when h < 0 -> invalid_arg "Protocol.query: negative hop budget"
    | Some h -> h
    | None -> Array.length t.nodes
  in
  let faults = Engine.faults t.engine in
  let round = Engine.round t.engine in
  let retries_used = ref 0 in
  let result cluster ~path =
    let hops = List.length path - 1 in
    Registry.Histogram.observe t.h_query_hops hops;
    Registry.Counter.incr ~by:!retries_used t.c_query_retries;
    Registry.Counter.incr
      (if cluster = None then t.c_query_misses else t.c_query_hits);
    { Query.cluster; hops; retries = !retries_used; path = List.rev path }
  in
  (* A hop to a dead or partitioned neighbor fails outright; a lossy link
     gets up to [retries] retransmissions before the router falls back to
     the next qualifying neighbor. *)
  let rec first_reachable x = function
    | [] -> None
    | h :: rest ->
        if not (Engine.is_active t.engine h) then first_reachable x rest
        else if Fault.partitioned faults ~round ~src:x ~dst:h then first_reachable x rest
        else begin
          let rec attempt tries_left =
            if not (Fault.sample_loss faults) then true
            else if tries_left = 0 then false
            else begin
              incr retries_used;
              attempt (tries_left - 1)
            end
          in
          if attempt retries then Some h else first_reachable x rest
        end
  in
  let rec go x ~from ~path ~budget =
    let node = get_node t x in
    if node.own_row.(cls) >= k then result (local_find t node ~k ~cls) ~path
    else if budget = 0 then result None ~path
    else begin
      (* Forward to a neighbor claiming a big-enough cluster in its
         direction, never back to the sender.  The paper allows "any"
         such neighbor; `Best_crt orders directions by promised cluster
         size, `First keeps neighbor order.  Later candidates are
         fallbacks for dead, partitioned or persistently lossy hops. *)
      let qualifying =
        List.filter_map
          (fun nb ->
            let h = nb.Node_info.host in
            if Some h = from then None
            else
              match Hashtbl.find_opt node.aggr_crt h with
              | Some row when row.(cls) >= k -> Some (h, row.(cls))
              | Some _ | None -> None)
          node.neighbors
      in
      let ordered =
        match policy with
        | `First -> qualifying
        | `Best_crt ->
            (* stable sort: equal promises keep neighbor order *)
            List.stable_sort (fun (_, a) (_, b) -> compare b a) qualifying
      in
      match first_reachable x (List.map fst ordered) with
      | Some next ->
          emit t (Trace.Query_hop { round; src = x; dst = next });
          go next ~from:(Some x) ~path:(next :: path) ~budget:(budget - 1)
      | None -> result None ~path
    end
  in
  (* a non-member is a caller error (raises); a member that is merely
     crashed right now is a runtime condition (miss) *)
  let (_ : node) = get_node t at in
  if not (Engine.is_active t.engine at) then result None ~path:[ at ]
  else go at ~from:None ~path:[ at ] ~budget:hop_budget

let query_bandwidth ?policy ?hop_budget ?retries t ~at ~k ~b =
  match Classes.class_for t.classes ~b with
  | Some cls -> query ?policy ?hop_budget ?retries t ~at ~k ~cls
  | None -> Query.not_found_at at

let aggregated_nodes t x m =
  let node = get_node t x in
  if not (List.exists (fun nb -> nb.Node_info.host = m) node.neighbors) then
    raise Not_found
  else match Hashtbl.find_opt node.aggr_node m with Some l -> l | None -> []

let crt_row t x v =
  let node = get_node t x in
  if v = x then Array.copy node.own_row
  else if not (List.exists (fun nb -> nb.Node_info.host = v) node.neighbors) then
    raise Not_found
  else
    match Hashtbl.find_opt node.aggr_crt v with
    | Some row -> Array.copy row
    | None -> Array.make (Classes.count t.classes) 0

let max_reachable t x ~cls =
  let node = get_node t x in
  List.fold_left
    (fun acc nb ->
      match Hashtbl.find_opt node.aggr_crt nb.Node_info.host with
      | Some row -> Stdlib.max acc row.(cls)
      | None -> acc)
    node.own_row.(cls) node.neighbors

let messages_sent t = Engine.messages_sent t.engine
let rounds_run t = t.rounds
let retries t = Registry.Counter.value t.c_retransmissions
let duplicates_suppressed t = Registry.Counter.value t.c_dup_suppressed
let stale_discarded t = Registry.Counter.value t.c_stale_discarded
let pending_unacked t = t.unacked

let mark_all_dirty t =
  Array.iter (function Some node -> node.dirty <- true | None -> ()) t.nodes

(* Rebuilding the slots from scratch both refreshes labels/neighborhoods
   after a framework change and tracks membership changes (joins create a
   slot, leaves clear one).  In-flight traffic belongs to the old
   topology and sequence numbering, so it is discarded wholesale — the
   fresh slots repropagate everything anyway. *)
let refresh_topology t =
  t.nodes <- node_slots t.fw t.classes;
  t.unacked <- 0;
  Engine.clear_in_flight t.engine;
  sync_engine_active t
