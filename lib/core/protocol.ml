module Ensemble = Bwc_predtree.Ensemble
module Framework = Bwc_predtree.Framework
module Anchor = Bwc_predtree.Anchor
module Engine = Bwc_sim.Engine
module Fault = Bwc_sim.Fault
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module Rng = Bwc_stats.Rng

type payload = {
  prop_node : Node_info.t list;
  prop_crt : int array;
}

let payload_equal a b =
  a.prop_crt = b.prop_crt
  && List.compare Node_info.compare_host a.prop_node b.prop_node = 0

(* Updates carry a per-link sequence number so that receivers can discard
   duplicates and out-of-order copies (fault jitter breaks link FIFO-ness);
   acks echo the highest sequence seen so senders can retire their
   retransmission state.  Both additionally carry the link's repair epoch:
   self-healing resets a link's state, and anything still in flight from
   before the reset must not be applied against the fresh numbering.
   Heartbeats carry nothing — they only renew failure-detector leases. *)
type message =
  | Update of { epoch : int; seq : int; payload : payload }
  | Ack of { epoch : int; seq : int }
  | Heartbeat

type out_entry = {
  mutable epoch : int;
  mutable seq : int;
  mutable payload : payload;
  mutable sent_round : int;
  mutable tries : int; (* retransmissions spent on the current seq *)
  mutable acked : bool;
  mutable gave_up : bool; (* retired unacked after max_retransmits *)
}

type node = {
  id : int;
  info : Node_info.t;
  mutable neighbors : Node_info.t list;
  aggr_node : (int, Node_info.t list) Hashtbl.t;    (* neighbor -> received propNode *)
  aggr_crt : (int, int array) Hashtbl.t;            (* neighbor -> received propCRT *)
  mutable own_row : int array;                      (* aggrCRT[self] *)
  out : (int, out_entry) Hashtbl.t;                 (* neighbor -> last update sent *)
  seen_seq : (int, int) Hashtbl.t;                  (* neighbor -> highest seq received *)
  link_epoch : (int, int) Hashtbl.t;                (* neighbor -> link repair epoch *)
  last_sent : (int, int) Hashtbl.t;                 (* neighbor -> round of last send *)
  mutable dirty : bool;
  (* what flavour of traffic the next dirty flush is: Aggregate in steady
     state, escalated to Invalidate/Repair by self-healing so trace
     attribution can split the byte budget by cause *)
  mutable dirty_kind : Trace.msg_kind;
}

type t = {
  fw : Ensemble.t;
  classes : Classes.t;
  n_cut : int;
  resend_timeout : int;
  max_retransmits : int;
  mutable nodes : node option array; (* indexed by host id; None = not a member *)
  engine : message Engine.t;
  detector : Detector.t option;
  trace : Trace.t option;
  mutable rounds : int;
  mutable epoch : int;               (* bumped by every repair round *)
  mutable on_evict : int -> unit;    (* observer of detector/repair evictions *)
  mutable unacked : int;             (* live out entries awaiting an ack, system-wide *)
  mutable step_changed : bool;       (* any node changed state this round *)
  c_retransmissions : Registry.Counter.t;
  c_dup_suppressed : Registry.Counter.t;
  c_stale_discarded : Registry.Counter.t;
  c_give_up : Registry.Counter.t;
  c_heartbeats : Registry.Counter.t;
  c_epoch_discarded : Registry.Counter.t;
  c_repairs : Registry.Counter.t;
  c_regrafts : Registry.Counter.t;
  g_unacked : Registry.Gauge.t;
  h_query_hops : Registry.Histogram.t;
  c_query_retries : Registry.Counter.t;
  c_query_hits : Registry.Counter.t;
  c_query_misses : Registry.Counter.t;
}

let node_of_host fw host = Node_info.make ~host ~labels:(Ensemble.labels fw host)

let neighbor_infos fw host =
  List.map (node_of_host fw) (Ensemble.anchor_neighbors fw host)

let fresh_node fw classes host =
  {
    id = host;
    info = node_of_host fw host;
    neighbors = neighbor_infos fw host;
    aggr_node = Hashtbl.create 8;
    aggr_crt = Hashtbl.create 8;
    own_row = Array.make (Classes.count classes) 1;
    out = Hashtbl.create 8;
    seen_seq = Hashtbl.create 8;
    link_epoch = Hashtbl.create 8;
    last_sent = Hashtbl.create 8;
    dirty = true;
    dirty_kind = Trace.Aggregate;
  }

let node_slots fw classes =
  Array.init (Ensemble.hosts fw) (fun h ->
      if Ensemble.is_member fw h then Some (fresh_node fw classes h) else None)

let sync_engine_active t =
  Array.iteri
    (fun h slot -> Engine.set_active t.engine h (slot <> None))
    t.nodes

let watch_all t =
  match t.detector with
  | None -> ()
  | Some d ->
      let round = Engine.round t.engine in
      Array.iter
        (function
          | Some node ->
              List.iter
                (fun nb ->
                  Detector.watch d ~watcher:node.id ~peer:nb.Node_info.host ~round)
                node.neighbors
          | None -> ())
        t.nodes

let create ~rng ?(n_cut = 10) ?edge_delay ?faults ?(resend_timeout = 3)
    ?(max_retransmits = 16) ?detector ?metrics ?trace ~classes fw =
  if n_cut < 1 then invalid_arg "Protocol.create: n_cut < 1";
  if resend_timeout < 1 then invalid_arg "Protocol.create: resend_timeout < 1";
  if max_retransmits < 1 then invalid_arg "Protocol.create: max_retransmits < 1";
  let n = Ensemble.hosts fw in
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  let detector =
    (* the split keeps the engine's stream untouched relative to
       detector-less runs only when no detector is requested *)
    match detector with
    | None -> None
    | Some cfg -> Some (Detector.create ~metrics ?trace ~rng:(Rng.split rng) cfg)
  in
  let t =
    {
      fw;
      classes;
      n_cut;
      resend_timeout;
      max_retransmits;
      nodes = node_slots fw classes;
      engine = Engine.create ?edge_delay ?faults ~metrics ?trace ~rng n;
      detector;
      trace;
      rounds = 0;
      epoch = 0;
      on_evict = ignore;
      unacked = 0;
      step_changed = false;
      c_retransmissions = Registry.counter metrics "protocol.retransmissions";
      c_dup_suppressed = Registry.counter metrics "protocol.dup_suppressed";
      c_stale_discarded = Registry.counter metrics "protocol.stale_discarded";
      c_give_up = Registry.counter metrics "protocol.give_up";
      c_heartbeats = Registry.counter metrics "protocol.heartbeats";
      c_epoch_discarded = Registry.counter metrics "protocol.epoch_discarded";
      c_repairs = Registry.counter metrics "protocol.repairs";
      c_regrafts = Registry.counter metrics "protocol.regrafts";
      g_unacked = Registry.gauge metrics "protocol.unacked";
      h_query_hops = Registry.histogram metrics "query.hops";
      c_query_retries = Registry.counter metrics "query.retries";
      c_query_hits = Registry.counter metrics "query.hits";
      c_query_misses = Registry.counter metrics "query.misses";
    }
  in
  sync_engine_active t;
  watch_all t;
  t

let n t =
  Array.fold_left (fun acc slot -> if slot = None then acc else acc + 1) 0 t.nodes

let get_node t x =
  match t.nodes.(x) with
  | Some node -> node
  | None -> invalid_arg "Protocol: host is not a member"

let n_cut t = t.n_cut
let classes t = t.classes
let framework t = t.fw
let metrics t = Engine.metrics t.engine
let detector t = t.detector
let epoch t = t.epoch

let emit t ev = match t.trace with Some tr -> Trace.emit tr ev | None -> ()

let link_epoch_of node h =
  Option.value ~default:0 (Hashtbl.find_opt node.link_epoch h)

(* ----- traffic labelling (trace attribution) -----

   Estimated wire sizes, a deterministic function of the message alone:
   8 bytes per scalar (host ids, CRT entries, epoch/seq), 24 per label
   entry (host + two geometry floats), 24 of framing on updates/acks.
   The absolute scale is nominal; what the analyzer cares about is the
   relative split across kinds. *)

let heartbeat_bytes = 8
let ack_bytes = 24
let query_hop_bytes = 16

let info_bytes (i : Node_info.t) =
  Array.fold_left (fun acc l -> acc + (24 * Array.length l)) 8 i.Node_info.labels

let payload_bytes p =
  List.fold_left
    (fun acc i -> acc + info_bytes i)
    (8 * Array.length p.prop_crt)
    p.prop_node

let message_bytes = function
  | Heartbeat -> heartbeat_bytes
  | Ack _ -> ack_bytes
  | Update { payload; _ } -> 24 + payload_bytes payload

(* dirty-kind escalation: self-healing outranks steady-state aggregation
   (Repair > Invalidate > Aggregate); point kinds never travel here *)
let kind_rank = function
  | Trace.Repair -> 2
  | Trace.Invalidate -> 1
  | Trace.Aggregate | Trace.Heartbeat | Trace.Ack | Trace.Retransmit | Trace.Query -> 0

let mark_dirty node kind =
  node.dirty <- true;
  if kind_rank kind > kind_rank node.dirty_kind then node.dirty_kind <- kind

(* every protocol send renews the sender-side idle clock that gates
   heartbeats, so heartbeats only fill genuinely silent gaps *)
let send_msg t node ~kind ~dst msg =
  Hashtbl.replace node.last_sent dst (Engine.round t.engine);
  Engine.send t.engine ~src:node.id ~dst ~kind ~bytes:(message_bytes msg) msg

(* ----- local state recomputation (Algorithm 3, lines 3-8) ----- *)

(* V_x = {x} union aggrNode[v] for every neighbor v, deduplicated. *)
let clustering_space_node node =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let consider info =
    if not (Hashtbl.mem seen info.Node_info.host) then begin
      Hashtbl.add seen info.Node_info.host ();
      acc := info :: !acc
    end
  in
  consider node.info;
  List.iter
    (fun nb ->
      match Hashtbl.find_opt node.aggr_node nb.Node_info.host with
      | Some infos -> List.iter consider infos
      | None -> ())
    node.neighbors;
  Array.of_list (List.rev !acc)

let recompute_own_row t node =
  let infos = clustering_space_node node in
  (* cache the pairwise label distances: the index scan evaluates each
     pair O(|V|) times and ensemble-median label distances are not
     cheap *)
  let space = Bwc_metric.Space.cached (Node_info.space_of infos) in
  let index = Find_cluster.Index.build space in
  node.own_row <- Find_cluster.Index.max_sizes index ~ls:(Classes.distances t.classes)

(* ----- message construction ----- *)

(* Algorithm 2: the n_cut hosts closest to the recipient among
   {x} union aggrNode[v] for v <> recipient. *)
let prop_node_for t node ~recipient =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let consider info =
    let h = info.Node_info.host in
    if h <> recipient.Node_info.host && not (Hashtbl.mem seen h) then begin
      Hashtbl.add seen h ();
      acc := info :: !acc
    end
  in
  consider node.info;
  List.iter
    (fun nb ->
      if nb.Node_info.host <> recipient.Node_info.host then
        match Hashtbl.find_opt node.aggr_node nb.Node_info.host with
        | Some infos -> List.iter consider infos
        | None -> ())
    node.neighbors;
  let cand = Array.of_list !acc in
  Array.sort
    (fun a b -> compare (Node_info.dist recipient a) (Node_info.dist recipient b))
    cand;
  Array.to_list (Array.sub cand 0 (Stdlib.min t.n_cut (Array.length cand)))

(* Algorithm 3, lines 9-10: max over own row and every other neighbor's
   aggregated column. *)
let prop_crt_for node ~recipient =
  let out = Array.copy node.own_row in
  List.iter
    (fun nb ->
      if nb.Node_info.host <> recipient.Node_info.host then
        match Hashtbl.find_opt node.aggr_crt nb.Node_info.host with
        | Some row ->
            Array.iteri (fun i v -> if v > out.(i) then out.(i) <- v) row
        | None -> ())
    node.neighbors;
  out

let send_updates t node =
  let now = Engine.round t.engine in
  List.iter
    (fun nb ->
      let payload =
        {
          prop_node = prop_node_for t node ~recipient:nb;
          prop_crt = prop_crt_for node ~recipient:nb;
        }
      in
      let h = nb.Node_info.host in
      let le = link_epoch_of node h in
      match Hashtbl.find_opt node.out h with
      | Some entry when entry.epoch = le && payload_equal entry.payload payload ->
          (* nothing new; if unacked the resend timer covers the loss *)
          ()
      | Some entry ->
          entry.seq <- (if entry.epoch = le then entry.seq + 1 else 0);
          entry.epoch <- le;
          entry.payload <- payload;
          entry.sent_round <- now;
          entry.tries <- 0;
          if entry.gave_up then begin
            (* fresh content revives a given-up link: the peer may only
               have been unreachable, and the bound restarts per update *)
            entry.gave_up <- false;
            t.unacked <- t.unacked + 1
          end
          else if entry.acked then t.unacked <- t.unacked + 1;
          entry.acked <- false;
          send_msg t node ~kind:node.dirty_kind ~dst:h
            (Update { epoch = le; seq = entry.seq; payload })
      | None ->
          Hashtbl.replace node.out h
            {
              epoch = le;
              seq = 0;
              payload;
              sent_round = now;
              tries = 0;
              acked = false;
              gave_up = false;
            };
          t.unacked <- t.unacked + 1;
          send_msg t node ~kind:node.dirty_kind ~dst:h
            (Update { epoch = le; seq = 0; payload }))
    node.neighbors

(* Timeout-based retransmission: an unacked update is re-sent verbatim
   every [resend_timeout] rounds, so the aggregation survives message
   loss and crash windows.  After [max_retransmits] fruitless tries the
   sender gives up — the entry is retired from the unacked count (the
   peer is presumed dead; quiescence must not hinge on it) but kept, so
   any later sign of life from the peer revives it. *)
let resend_pending t node =
  let now = Engine.round t.engine in
  (* sorted traversal: the send order decides in-flight FIFO order within
     a delivery round, so bucket order here would leak hash-layout
     nondeterminism into the protocol fixed point *)
  Bwc_stats.Tbl.iter_sorted
    (fun h entry ->
      if
        (not entry.acked)
        && (not entry.gave_up)
        && now - entry.sent_round >= t.resend_timeout
      then
        if entry.tries >= t.max_retransmits then begin
          entry.gave_up <- true;
          t.unacked <- t.unacked - 1;
          Registry.Counter.incr t.c_give_up
        end
        else begin
          entry.tries <- entry.tries + 1;
          entry.sent_round <- now;
          Registry.Counter.incr t.c_retransmissions;
          emit t (Trace.Retransmit { round = now; src = node.id; dst = h });
          send_msg t node ~kind:Trace.Retransmit ~dst:h
            (Update { epoch = entry.epoch; seq = entry.seq; payload = entry.payload })
        end)
    node.out

(* a message from a peer we had given up on proves it alive: restore the
   entry to the unacked pool and let the resend timer fire immediately *)
let revive_given_up t node src =
  match Hashtbl.find_opt node.out src with
  | Some entry when entry.gave_up ->
      entry.gave_up <- false;
      entry.tries <- 0;
      entry.sent_round <- Engine.round t.engine - t.resend_timeout;
      t.unacked <- t.unacked + 1
  | Some _ | None -> ()

let send_heartbeats t node =
  match t.detector with
  | None -> ()
  | Some d ->
      let hb = (Detector.config d).Detector.heartbeat_every in
      let now = Engine.round t.engine in
      List.iter
        (fun nb ->
          let h = nb.Node_info.host in
          let last =
            Option.value ~default:(Stdlib.min_int / 2)
              (Hashtbl.find_opt node.last_sent h)
          in
          if now - last >= hb then begin
            Registry.Counter.incr t.c_heartbeats;
            send_msg t node ~kind:Trace.Heartbeat ~dst:h Heartbeat
          end)
        node.neighbors

(* ----- round driver ----- *)

let is_neighbor node h =
  List.exists (fun nb -> nb.Node_info.host = h) node.neighbors

let apply_update t node ~src ~epoch ~seq payload =
  if not (is_neighbor node src) then begin
    (* in-flight leftover of a link self-healing already tore down *)
    Registry.Counter.incr t.c_epoch_discarded;
    false
  end
  else begin
    let link_e = link_epoch_of node src in
    if epoch < link_e then begin
      (* predates the link's last repair reset: the fresh numbering must
         not be contaminated by the old epoch's sequence space *)
      Registry.Counter.incr t.c_epoch_discarded;
      false
    end
    else begin
      if epoch > link_e then begin
        (* the sender re-established the link first; adopt its epoch and
           restart the per-link numbering *)
        Hashtbl.replace node.link_epoch src epoch;
        Hashtbl.remove node.seen_seq src
      end;
      let seen = Option.value ~default:(-1) (Hashtbl.find_opt node.seen_seq src) in
      if seq < seen then begin
        (* out-of-order copy superseded by something already applied *)
        Registry.Counter.incr t.c_stale_discarded;
        send_msg t node ~kind:Trace.Ack ~dst:src (Ack { epoch; seq = seen });
        false
      end
      else if seq = seen then begin
        (* duplicate: the aggregation merge is idempotent, so re-applying
           must be a no-op — check that the stored state already equals the
           payload, then just re-ack (the previous ack may have been lost) *)
        Registry.Counter.incr t.c_dup_suppressed;
        assert (
          match Hashtbl.find_opt node.aggr_node src with
          | Some prev -> List.compare Node_info.compare_host prev payload.prop_node = 0
          | None -> false);
        assert (
          match Hashtbl.find_opt node.aggr_crt src with
          | Some prev -> prev = payload.prop_crt
          | None -> false);
        send_msg t node ~kind:Trace.Ack ~dst:src (Ack { epoch; seq = seen });
        false
      end
      else begin
        Hashtbl.replace node.seen_seq src seq;
        send_msg t node ~kind:Trace.Ack ~dst:src (Ack { epoch; seq });
        let node_diff =
          match Hashtbl.find_opt node.aggr_node src with
          | Some prev -> List.compare Node_info.compare_host prev payload.prop_node <> 0
          | None -> true
        in
        if node_diff then Hashtbl.replace node.aggr_node src payload.prop_node;
        let crt_diff =
          match Hashtbl.find_opt node.aggr_crt src with
          | Some prev -> prev <> payload.prop_crt
          | None -> true
        in
        if crt_diff then Hashtbl.replace node.aggr_crt src payload.prop_crt;
        node_diff || crt_diff
      end
    end
  end

let apply_ack t node ~src ~epoch ~seq =
  match Hashtbl.find_opt node.out src with
  | Some entry when (not entry.acked) && epoch = entry.epoch && seq = entry.seq ->
      entry.acked <- true;
      if entry.gave_up then entry.gave_up <- false
      else t.unacked <- t.unacked - 1
  | Some _ | None -> ()

let step t id inbox =
  match t.nodes.(id) with
  | None -> false
  | Some node ->
  let now = Engine.round t.engine in
  let changed = ref node.dirty in
  List.iter
    (fun (src, msg) ->
      (match t.detector with
      | Some d -> Detector.heard d ~watcher:id ~peer:src ~round:now
      | None -> ());
      revive_given_up t node src;
      match msg with
      | Update { epoch; seq; payload } ->
          if apply_update t node ~src ~epoch ~seq payload then changed := true
      | Ack { epoch; seq } -> apply_ack t node ~src ~epoch ~seq
      | Heartbeat -> ())
    inbox;
  if !changed then begin
    recompute_own_row t node;
    send_updates t node;
    node.dirty <- false;
    node.dirty_kind <- Trace.Aggregate;
    t.step_changed <- true
  end;
  resend_pending t node;
  send_heartbeats t node;
  !changed

(* ----- self-healing repair (confirmed-dead eviction) ----- *)

(* ancestors aggregate the dead node's subtree through max-merged CRT
   columns; marking the root path dirty forces them to recompute and
   repropagate instead of waiting for the decrease to trickle up *)
let rec mark_root_path t x =
  (match t.nodes.(x) with
  | Some node -> mark_dirty node Trace.Repair
  | None -> ());
  match Anchor.parent (Framework.anchor (Ensemble.primary t.fw)) x with
  | Some p -> mark_root_path t p
  | None -> ()

(* forget an unacked live entry towards [peer] before dropping it *)
let drop_out_entry t node peer =
  (match Hashtbl.find_opt node.out peer with
  | Some e when (not e.acked) && not e.gave_up -> t.unacked <- t.unacked - 1
  | Some _ | None -> ());
  Hashtbl.remove node.out peer

(* (re-)establish the live link [a]<->[b] at the current repair epoch:
   per-link delivery state restarts from scratch on both sides *)
let relink t ~round a b =
  let half x y =
    match t.nodes.(x) with
    | None -> ()
    | Some node ->
        drop_out_entry t node y;
        Hashtbl.remove node.seen_seq y;
        Hashtbl.remove node.last_sent y;
        Hashtbl.replace node.link_epoch y t.epoch;
        node.neighbors <- neighbor_infos t.fw x;
        mark_dirty node Trace.Repair;
        (match t.detector with
        | Some d -> Detector.watch d ~watcher:x ~peer:y ~round
        | None -> ())
  in
  half a b;
  half b a

let repair_one t dead_h =
  match t.nodes.(dead_h) with
  | None -> ()
  | Some dnode ->
      let now = Engine.round t.engine in
      Registry.Counter.incr t.c_repairs;
      (* retire the dead node's own pending output from the global count *)
      Bwc_stats.Tbl.iter_sorted
        (fun _ e -> if (not e.acked) && not e.gave_up then t.unacked <- t.unacked - 1)
        dnode.out;
      let old_nbrs =
        List.sort compare (List.map (fun nb -> nb.Node_info.host) dnode.neighbors)
      in
      (* local overlay repair: orphans regraft to the grandparent *)
      let regrafts = Ensemble.evict_host t.fw dead_h in
      t.nodes.(dead_h) <- None;
      Engine.set_active t.engine dead_h false;
      (match t.detector with
      | Some d ->
          List.iter
            (fun x ->
              Detector.unwatch d ~watcher:x ~peer:dead_h;
              Detector.unwatch d ~watcher:dead_h ~peer:x)
            old_nbrs
      | None -> ());
      (* incremental invalidation: only the dead node's ex-neighbors hold
         direct state about it; on a tree nothing else can echo it back
         (recompute-and-replace propagation overwrites downstream copies),
         so deleting here and re-propagating re-converges the overlay *)
      List.iter
        (fun x ->
          match t.nodes.(x) with
          | None -> ()
          | Some node ->
              drop_out_entry t node dead_h;
              Hashtbl.remove node.aggr_node dead_h;
              Hashtbl.remove node.aggr_crt dead_h;
              Hashtbl.remove node.seen_seq dead_h;
              Hashtbl.remove node.link_epoch dead_h;
              Hashtbl.remove node.last_sent dead_h;
              node.neighbors <- neighbor_infos t.fw x;
              mark_dirty node Trace.Invalidate)
        old_nbrs;
      List.iter
        (fun (c, p) ->
          Registry.Counter.incr t.c_regrafts;
          emit t (Trace.Regraft { round = now; node = c; new_parent = p });
          relink t ~round:now c p;
          mark_root_path t p)
        regrafts;
      (* membership observers (e.g. a maintained clustering index) apply
         the same eviction as a delta instead of rebuilding *)
      t.on_evict dead_h

let repair t ~dead =
  let dead = List.sort_uniq compare (List.filter (fun h -> t.nodes.(h) <> None) dead) in
  if dead <> [] then begin
    t.epoch <- t.epoch + 1;
    List.iter (repair_one t) dead;
    (* the repair itself is protocol progress: re-aggregation must run *)
    t.step_changed <- true
  end

let set_on_evict t f = t.on_evict <- f

let crash_host t h =
  let (_ : node) = get_node t h in
  emit t (Trace.Crash { round = Engine.round t.engine; node = h });
  Engine.set_active t.engine h false

let run_round t =
  t.step_changed <- false;
  let active = Engine.run_round t.engine ~step:(step t) in
  t.rounds <- t.rounds + 1;
  Registry.Gauge.set t.g_unacked t.unacked;
  match t.detector with
  | None ->
      (* unacked updates keep the protocol live even across quiet rounds
         between retransmission timeouts *)
      active || t.unacked > 0
  | Some d ->
      let round = Engine.round t.engine in
      let confirmed = Detector.tick d ~round ~live:(Engine.is_active t.engine) in
      repair t ~dead:confirmed;
      (* heartbeats keep the engine's in-flight count permanently
         non-zero, so the engine's own activity notion is useless here:
         the protocol is live while state changed, updates await acks, or
         a detector lease is running out *)
      t.step_changed || t.unacked > 0 || Detector.pending d ~round

let run_aggregation ?max_rounds t =
  let max_rounds =
    match max_rounds with Some m -> m | None -> Stdlib.max 8 (4 * Array.length t.nodes)
  in
  let rec loop r =
    if r >= max_rounds then r
    else if run_round t then loop (r + 1)
    else begin
      emit t (Trace.Quiesce { round = Engine.round t.engine });
      r + 1
    end
  in
  loop 0

(* ----- queries (Algorithm 4) ----- *)

let clustering_space t x = clustering_space_node (get_node t x)

let routing_suspects t ~at h =
  match t.detector with
  | None -> false
  | Some d -> Detector.suspects d ~watcher:at ~peer:h

(* failure-detector detour: directions under suspicion become last
   resorts — probably dead, but not yet written off *)
let detour t x ordered =
  match t.detector with
  | None -> ordered
  | Some d ->
      let suspected, healthy =
        List.partition (fun (h, _) -> Detector.suspects d ~watcher:x ~peer:h) ordered
      in
      healthy @ suspected

let local_find t node ~k ~cls =
  let infos = clustering_space_node node in
  let space = Bwc_metric.Space.cached (Node_info.space_of infos) in
  match Find_cluster.find space ~k ~l:(Classes.distance t.classes cls) with
  | None -> None
  | Some idxs -> Some (List.map (fun i -> infos.(i).Node_info.host) idxs)

let query ?(policy = `Best_crt) ?hop_budget ?(retries = 2) t ~at ~k ~cls =
  if k < 2 then invalid_arg "Protocol.query: k < 2";
  if cls < 0 || cls >= Classes.count t.classes then invalid_arg "Protocol.query: bad class";
  if retries < 0 then invalid_arg "Protocol.query: negative retries";
  let hop_budget =
    (* a routing path on the anchor tree is simple, so n hops is already
       unreachable — the default budget changes nothing on healthy runs *)
    match hop_budget with
    | Some h when h < 0 -> invalid_arg "Protocol.query: negative hop budget"
    | Some h -> h
    | None -> Array.length t.nodes
  in
  let faults = Engine.faults t.engine in
  let round = Engine.round t.engine in
  let retries_used = ref 0 in
  let result cluster ~path =
    let hops = List.length path - 1 in
    Registry.Histogram.observe t.h_query_hops hops;
    Registry.Counter.incr ~by:!retries_used t.c_query_retries;
    Registry.Counter.incr
      (if cluster = None then t.c_query_misses else t.c_query_hits);
    { Query.cluster; hops; retries = !retries_used; path = List.rev path }
  in
  (* A hop to a dead or partitioned neighbor fails outright; a lossy link
     gets up to [retries] retransmissions before the router falls back to
     the next qualifying neighbor. *)
  let rec first_reachable x = function
    | [] -> None
    | h :: rest ->
        if not (Engine.is_active t.engine h) then first_reachable x rest
        else if Fault.partitioned faults ~round ~src:x ~dst:h then first_reachable x rest
        else begin
          let rec attempt tries_left =
            if not (Fault.sample_loss faults) then true
            else if tries_left = 0 then false
            else begin
              incr retries_used;
              attempt (tries_left - 1)
            end
          in
          if attempt retries then Some h else first_reachable x rest
        end
  in
  let rec go x ~from ~path ~budget =
    let node = get_node t x in
    if node.own_row.(cls) >= k then result (local_find t node ~k ~cls) ~path
    else if budget = 0 then result None ~path
    else begin
      (* Forward to a neighbor claiming a big-enough cluster in its
         direction, never back to the sender.  The paper allows "any"
         such neighbor; `Best_crt orders directions by promised cluster
         size, `First keeps neighbor order.  Later candidates are
         fallbacks for dead, partitioned or persistently lossy hops. *)
      let qualifying =
        List.filter_map
          (fun nb ->
            let h = nb.Node_info.host in
            if Some h = from then None
            else
              match Hashtbl.find_opt node.aggr_crt h with
              | Some row when row.(cls) >= k -> Some (h, row.(cls))
              | Some _ | None -> None)
          node.neighbors
      in
      let ordered =
        match policy with
        | `First -> qualifying
        | `Best_crt ->
            (* stable sort: equal promises keep neighbor order *)
            List.stable_sort (fun (_, a) (_, b) -> compare b a) qualifying
      in
      match first_reachable x (List.map fst (detour t x ordered)) with
      | Some next ->
          emit t
            (Trace.Query_hop
               { round; msg = Engine.fresh_msg_id t.engine;
                 bytes = query_hop_bytes; src = x; dst = next });
          go next ~from:(Some x) ~path:(next :: path) ~budget:(budget - 1)
      | None -> result None ~path
    end
  in
  (* a non-member is a caller error (raises); a member that is merely
     crashed right now is a runtime condition (miss) *)
  let (_ : node) = get_node t at in
  if not (Engine.is_active t.engine at) then result None ~path:[ at ]
  else go at ~from:None ~path:[ at ] ~budget:hop_budget

let query_bandwidth ?policy ?hop_budget ?retries t ~at ~k ~b =
  match Classes.class_for t.classes ~b with
  | Some cls -> query ?policy ?hop_budget ?retries t ~at ~k ~cls
  | None -> Query.not_found_at at

let aggregated_nodes t x m =
  let node = get_node t x in
  if not (List.exists (fun nb -> nb.Node_info.host = m) node.neighbors) then
    raise Not_found
  else match Hashtbl.find_opt node.aggr_node m with Some l -> l | None -> []

let crt_row t x v =
  let node = get_node t x in
  if v = x then Array.copy node.own_row
  else if not (List.exists (fun nb -> nb.Node_info.host = v) node.neighbors) then
    raise Not_found
  else
    match Hashtbl.find_opt node.aggr_crt v with
    | Some row -> Array.copy row
    | None -> Array.make (Classes.count t.classes) 0

let max_reachable t x ~cls =
  let node = get_node t x in
  List.fold_left
    (fun acc nb ->
      match Hashtbl.find_opt node.aggr_crt nb.Node_info.host with
      | Some row -> Stdlib.max acc row.(cls)
      | None -> acc)
    node.own_row.(cls) node.neighbors

let messages_sent t = Engine.messages_sent t.engine
let rounds_run t = t.rounds
let retries t = Registry.Counter.value t.c_retransmissions
let duplicates_suppressed t = Registry.Counter.value t.c_dup_suppressed
let stale_discarded t = Registry.Counter.value t.c_stale_discarded
let give_ups t = Registry.Counter.value t.c_give_up
let heartbeats_sent t = Registry.Counter.value t.c_heartbeats
let epoch_discarded t = Registry.Counter.value t.c_epoch_discarded
let repairs_run t = Registry.Counter.value t.c_repairs
let regrafts_applied t = Registry.Counter.value t.c_regrafts
let pending_unacked t = t.unacked

let mark_all_dirty t =
  Array.iter (function Some node -> node.dirty <- true | None -> ()) t.nodes

(* ----- persistence -----

   The dump is the durable per-node state only.  In-flight engine traffic
   is deliberately absent: a whole-system crash loses the network, and
   that is exactly the loss the seq/ACK + retransmission layer already
   recovers from — unacked out entries resume their resend timers after a
   restore.  Neighbor lists and node infos are {e not} dumped either;
   they are always derived from the ensemble, which travels alongside. *)

type out_dump = {
  o_peer : int;
  o_epoch : int;
  o_seq : int;
  o_prop_node : Node_info.t list;
  o_prop_crt : int array;
  o_sent_round : int;
  o_tries : int;
  o_acked : bool;
  o_gave_up : bool;
}

type node_dump = {
  nd_id : int;
  nd_active : bool; (* engine liveness: a crashed-but-not-evicted member *)
  nd_dirty : bool;
  nd_own_row : int array;
  nd_aggr_node : (int * Node_info.t list) list; (* ascending neighbor id *)
  nd_aggr_crt : (int * int array) list;
  nd_out : out_dump list;
  nd_seen_seq : (int * int) list;
  nd_link_epoch : (int * int) list;
  nd_last_sent : (int * int) list;
}

type dump = {
  d_n_cut : int;
  d_resend_timeout : int;
  d_max_retransmits : int;
  d_rounds : int;
  d_epoch : int;
  d_engine_round : int;
  d_engine_rng : int64;
  d_nodes : node_dump list; (* ascending host id, members only *)
  d_detector : Detector.dump option;
}

let sorted_assoc tbl = List.map (fun k -> (k, Hashtbl.find tbl k)) (Bwc_stats.Tbl.sorted_keys tbl)

let dump t =
  let nodes = ref [] in
  for id = Array.length t.nodes - 1 downto 0 do
    match t.nodes.(id) with
    | None -> ()
    | Some node ->
        let out =
          List.map
            (fun (peer, (e : out_entry)) ->
              {
                o_peer = peer;
                o_epoch = e.epoch;
                o_seq = e.seq;
                o_prop_node = e.payload.prop_node;
                o_prop_crt = e.payload.prop_crt;
                o_sent_round = e.sent_round;
                o_tries = e.tries;
                o_acked = e.acked;
                o_gave_up = e.gave_up;
              })
            (sorted_assoc node.out)
        in
        nodes :=
          {
            nd_id = id;
            nd_active = Engine.is_active t.engine id;
            nd_dirty = node.dirty;
            nd_own_row = Array.copy node.own_row;
            nd_aggr_node = sorted_assoc node.aggr_node;
            nd_aggr_crt = sorted_assoc node.aggr_crt;
            nd_out = out;
            nd_seen_seq = sorted_assoc node.seen_seq;
            nd_link_epoch = sorted_assoc node.link_epoch;
            nd_last_sent = sorted_assoc node.last_sent;
          }
          :: !nodes
  done;
  {
    d_n_cut = t.n_cut;
    d_resend_timeout = t.resend_timeout;
    d_max_retransmits = t.max_retransmits;
    d_rounds = t.rounds;
    d_epoch = t.epoch;
    d_engine_round = Engine.round t.engine;
    d_engine_rng = Engine.rng_state t.engine;
    d_nodes = !nodes;
    d_detector = Option.map Detector.dump t.detector;
  }

let of_dump ?edge_delay ?faults ?metrics ?trace ~classes fw d =
  let fail msg = invalid_arg ("Protocol.of_dump: " ^ msg) in
  if d.d_n_cut < 1 then fail "n_cut < 1";
  if d.d_resend_timeout < 1 then fail "resend_timeout < 1";
  if d.d_max_retransmits < 1 then fail "max_retransmits < 1";
  if d.d_rounds < 0 || d.d_engine_round < 0 || d.d_epoch < 0 then fail "negative clock";
  let n = Ensemble.hosts fw in
  let n_classes = Classes.count classes in
  let n_trees = Ensemble.size fw in
  let metrics = match metrics with Some m -> m | None -> Registry.create () in
  let engine =
    Engine.create ?edge_delay ?faults ~metrics ?trace
      ~rng:(Rng.of_state d.d_engine_rng) n
  in
  Engine.restore_round engine d.d_engine_round;
  let detector = Option.map (Detector.of_dump ~metrics ?trace) d.d_detector in
  (* membership must match the ensemble exactly: every dumped node a
     member, every member dumped *)
  let dumped_ids = List.map (fun nd -> nd.nd_id) d.d_nodes in
  if List.sort_uniq compare dumped_ids <> dumped_ids then
    fail "node dumps not strictly ascending";
  if dumped_ids <> List.sort compare (Ensemble.members fw) then
    fail "membership disagrees with the ensemble";
  let check_info (info : Node_info.t) =
    if info.Node_info.host < 0 || info.Node_info.host >= n then fail "info host out of range";
    if Array.length info.Node_info.labels <> n_trees then fail "info label arity mismatch"
  in
  let check_row row = if Array.length row <> n_classes then fail "CRT row arity mismatch" in
  let nodes = Array.make n None in
  let unacked = ref 0 in
  List.iter
    (fun nd ->
      let nbrs = Ensemble.anchor_neighbors fw nd.nd_id in
      let check_peer p = if not (List.mem p nbrs) then fail "state keyed by a non-neighbor" in
      check_row nd.nd_own_row;
      Array.iter (fun v -> if v < 0 then fail "negative cluster size") nd.nd_own_row;
      let node = fresh_node fw classes nd.nd_id in
      node.own_row <- Array.copy nd.nd_own_row;
      node.dirty <- nd.nd_dirty;
      List.iter
        (fun (p, infos) ->
          check_peer p;
          List.iter check_info infos;
          Hashtbl.replace node.aggr_node p infos)
        nd.nd_aggr_node;
      List.iter
        (fun (p, row) ->
          check_peer p;
          check_row row;
          Hashtbl.replace node.aggr_crt p (Array.copy row))
        nd.nd_aggr_crt;
      List.iter
        (fun o ->
          check_peer o.o_peer;
          if o.o_epoch < 0 || o.o_epoch > d.d_epoch then fail "out entry epoch out of range";
          if o.o_seq < 0 || o.o_tries < 0 then fail "negative out entry field";
          if o.o_sent_round > d.d_engine_round then fail "out entry from the future";
          check_row o.o_prop_crt;
          List.iter check_info o.o_prop_node;
          if (not o.o_acked) && not o.o_gave_up then incr unacked;
          Hashtbl.replace node.out o.o_peer
            {
              epoch = o.o_epoch;
              seq = o.o_seq;
              payload = { prop_node = o.o_prop_node; prop_crt = Array.copy o.o_prop_crt };
              sent_round = o.o_sent_round;
              tries = o.o_tries;
              acked = o.o_acked;
              gave_up = o.o_gave_up;
            })
        nd.nd_out;
      List.iter
        (fun (p, s) ->
          check_peer p;
          if s < 0 then fail "negative seen seq";
          Hashtbl.replace node.seen_seq p s)
        nd.nd_seen_seq;
      List.iter
        (fun (p, e) ->
          check_peer p;
          if e < 0 || e > d.d_epoch then fail "link epoch out of range";
          Hashtbl.replace node.link_epoch p e)
        nd.nd_link_epoch;
      List.iter
        (fun (p, r) ->
          check_peer p;
          if r > d.d_engine_round then fail "send stamp from the future";
          Hashtbl.replace node.last_sent p r)
        nd.nd_last_sent;
      nodes.(nd.nd_id) <- Some node)
    d.d_nodes;
  let t =
    {
      fw;
      classes;
      n_cut = d.d_n_cut;
      resend_timeout = d.d_resend_timeout;
      max_retransmits = d.d_max_retransmits;
      nodes;
      engine;
      detector;
      trace;
      rounds = d.d_rounds;
      epoch = d.d_epoch;
      on_evict = ignore;
      unacked = !unacked;
      step_changed = false;
      c_retransmissions = Registry.counter metrics "protocol.retransmissions";
      c_dup_suppressed = Registry.counter metrics "protocol.dup_suppressed";
      c_stale_discarded = Registry.counter metrics "protocol.stale_discarded";
      c_give_up = Registry.counter metrics "protocol.give_up";
      c_heartbeats = Registry.counter metrics "protocol.heartbeats";
      c_epoch_discarded = Registry.counter metrics "protocol.epoch_discarded";
      c_repairs = Registry.counter metrics "protocol.repairs";
      c_regrafts = Registry.counter metrics "protocol.regrafts";
      g_unacked = Registry.gauge metrics "protocol.unacked";
      h_query_hops = Registry.histogram metrics "query.hops";
      c_query_retries = Registry.counter metrics "query.retries";
      c_query_hits = Registry.counter metrics "query.hits";
      c_query_misses = Registry.counter metrics "query.misses";
    }
  in
  (* liveness from the dump, not from membership: a crashed-but-not-yet-
     evicted member restores as crashed *)
  Array.iteri
    (fun h slot -> if slot = None then Engine.set_active t.engine h false)
    t.nodes;
  List.iter
    (fun nd -> if not nd.nd_active then Engine.set_active t.engine nd.nd_id false)
    d.d_nodes;
  t

let current_round t = Engine.round t.engine

(* Rebuilding the slots from scratch both refreshes labels/neighborhoods
   after a framework change and tracks membership changes (joins create a
   slot, leaves clear one).  In-flight traffic belongs to the old
   topology and sequence numbering, so it is discarded wholesale — the
   fresh slots repropagate everything anyway. *)
let refresh_topology t =
  t.nodes <- node_slots t.fw t.classes;
  t.unacked <- 0;
  Engine.clear_in_flight t.engine;
  sync_engine_active t;
  match t.detector with
  | None -> ()
  | Some d ->
      Detector.clear d;
      watch_all t
