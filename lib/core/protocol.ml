module Ensemble = Bwc_predtree.Ensemble
module Engine = Bwc_sim.Engine

type message = {
  prop_node : Node_info.t list;
  prop_crt : int array;
}

let message_equal a b =
  a.prop_crt = b.prop_crt
  && List.compare Node_info.compare_host a.prop_node b.prop_node = 0

type node = {
  id : int;
  mutable info : Node_info.t;
  mutable neighbors : Node_info.t list;
  aggr_node : (int, Node_info.t list) Hashtbl.t;    (* neighbor -> received propNode *)
  aggr_crt : (int, int array) Hashtbl.t;            (* neighbor -> received propCRT *)
  mutable own_row : int array;                      (* aggrCRT[self] *)
  last_sent : (int, message) Hashtbl.t;
  mutable dirty : bool;
}

type t = {
  fw : Ensemble.t;
  classes : Classes.t;
  n_cut : int;
  mutable nodes : node option array; (* indexed by host id; None = not a member *)
  engine : message Engine.t;
  mutable rounds : int;
}

let node_of_host fw host = Node_info.make ~host ~labels:(Ensemble.labels fw host)

let neighbor_infos fw host =
  List.map (node_of_host fw) (Ensemble.anchor_neighbors fw host)

let fresh_node fw classes host =
  {
    id = host;
    info = node_of_host fw host;
    neighbors = neighbor_infos fw host;
    aggr_node = Hashtbl.create 8;
    aggr_crt = Hashtbl.create 8;
    own_row = Array.make (Classes.count classes) 1;
    last_sent = Hashtbl.create 8;
    dirty = true;
  }

let node_slots fw classes =
  Array.init (Ensemble.hosts fw) (fun h ->
      if Ensemble.is_member fw h then Some (fresh_node fw classes h) else None)

let sync_engine_active t =
  Array.iteri
    (fun h slot -> Engine.set_active t.engine h (slot <> None))
    t.nodes

let create ~rng ?(n_cut = 10) ?edge_delay ~classes fw =
  if n_cut < 1 then invalid_arg "Protocol.create: n_cut < 1";
  let n = Ensemble.hosts fw in
  let t =
    {
      fw;
      classes;
      n_cut;
      nodes = node_slots fw classes;
      engine = Engine.create ?edge_delay ~rng n;
      rounds = 0;
    }
  in
  sync_engine_active t;
  t

let n t =
  Array.fold_left (fun acc slot -> if slot = None then acc else acc + 1) 0 t.nodes

let get_node t x =
  match t.nodes.(x) with
  | Some node -> node
  | None -> invalid_arg "Protocol: host is not a member"

let n_cut t = t.n_cut
let classes t = t.classes
let framework t = t.fw

(* ----- local state recomputation (Algorithm 3, lines 3-8) ----- *)

(* V_x = {x} union aggrNode[v] for every neighbor v, deduplicated. *)
let clustering_space_node node =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let consider info =
    if not (Hashtbl.mem seen info.Node_info.host) then begin
      Hashtbl.add seen info.Node_info.host ();
      acc := info :: !acc
    end
  in
  consider node.info;
  List.iter
    (fun nb ->
      match Hashtbl.find_opt node.aggr_node nb.Node_info.host with
      | Some infos -> List.iter consider infos
      | None -> ())
    node.neighbors;
  Array.of_list (List.rev !acc)

let recompute_own_row t node =
  let infos = clustering_space_node node in
  (* cache the pairwise label distances: the index scan evaluates each
     pair O(|V|) times and ensemble-median label distances are not
     cheap *)
  let space = Bwc_metric.Space.cached (Node_info.space_of infos) in
  let index = Find_cluster.Index.build space in
  node.own_row <- Find_cluster.Index.max_sizes index ~ls:(Classes.distances t.classes)

(* ----- message construction ----- *)

(* Algorithm 2: the n_cut hosts closest to the recipient among
   {x} union aggrNode[v] for v <> recipient. *)
let prop_node_for t node ~recipient =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let consider info =
    let h = info.Node_info.host in
    if h <> recipient.Node_info.host && not (Hashtbl.mem seen h) then begin
      Hashtbl.add seen h ();
      acc := info :: !acc
    end
  in
  consider node.info;
  List.iter
    (fun nb ->
      if nb.Node_info.host <> recipient.Node_info.host then
        match Hashtbl.find_opt node.aggr_node nb.Node_info.host with
        | Some infos -> List.iter consider infos
        | None -> ())
    node.neighbors;
  let cand = Array.of_list !acc in
  Array.sort
    (fun a b -> compare (Node_info.dist recipient a) (Node_info.dist recipient b))
    cand;
  Array.to_list (Array.sub cand 0 (Stdlib.min t.n_cut (Array.length cand)))

(* Algorithm 3, lines 9-10: max over own row and every other neighbor's
   aggregated column. *)
let prop_crt_for node ~recipient =
  let out = Array.copy node.own_row in
  List.iter
    (fun nb ->
      if nb.Node_info.host <> recipient.Node_info.host then
        match Hashtbl.find_opt node.aggr_crt nb.Node_info.host with
        | Some row ->
            Array.iteri (fun i v -> if v > out.(i) then out.(i) <- v) row
        | None -> ())
    node.neighbors;
  out

let send_updates t node =
  List.iter
    (fun nb ->
      let msg =
        {
          prop_node = prop_node_for t node ~recipient:nb;
          prop_crt = prop_crt_for node ~recipient:nb;
        }
      in
      let unchanged =
        match Hashtbl.find_opt node.last_sent nb.Node_info.host with
        | Some prev -> message_equal prev msg
        | None -> false
      in
      if not unchanged then begin
        Hashtbl.replace node.last_sent nb.Node_info.host msg;
        Engine.send t.engine ~src:node.id ~dst:nb.Node_info.host msg
      end)
    node.neighbors

(* ----- round driver ----- *)

let step t id inbox =
  match t.nodes.(id) with
  | None -> false
  | Some node ->
  let changed = ref node.dirty in
  List.iter
    (fun (src, msg) ->
      let node_diff =
        match Hashtbl.find_opt node.aggr_node src with
        | Some prev -> List.compare Node_info.compare_host prev msg.prop_node <> 0
        | None -> true
      in
      if node_diff then begin
        Hashtbl.replace node.aggr_node src msg.prop_node;
        changed := true
      end;
      let crt_diff =
        match Hashtbl.find_opt node.aggr_crt src with
        | Some prev -> prev <> msg.prop_crt
        | None -> true
      in
      if crt_diff then begin
        Hashtbl.replace node.aggr_crt src msg.prop_crt;
        changed := true
      end)
    inbox;
  if !changed then begin
    recompute_own_row t node;
    send_updates t node;
    node.dirty <- false
  end;
  !changed

let run_round t =
  let active = Engine.run_round t.engine ~step:(step t) in
  t.rounds <- t.rounds + 1;
  active

let run_aggregation ?max_rounds t =
  let max_rounds =
    match max_rounds with Some m -> m | None -> Stdlib.max 8 (4 * Array.length t.nodes)
  in
  let rec loop r =
    if r >= max_rounds then r
    else if run_round t then loop (r + 1)
    else r + 1
  in
  loop 0

(* ----- queries (Algorithm 4) ----- *)

let clustering_space t x = clustering_space_node (get_node t x)

let local_find t node ~k ~cls =
  let infos = clustering_space_node node in
  let space = Bwc_metric.Space.cached (Node_info.space_of infos) in
  match Find_cluster.find space ~k ~l:(Classes.distance t.classes cls) with
  | None -> None
  | Some idxs -> Some (List.map (fun i -> infos.(i).Node_info.host) idxs)

let query ?(policy = `Best_crt) t ~at ~k ~cls =
  if k < 2 then invalid_arg "Protocol.query: k < 2";
  if cls < 0 || cls >= Classes.count t.classes then invalid_arg "Protocol.query: bad class";
  let rec go x ~from ~path =
    let node = get_node t x in
    if node.own_row.(cls) >= k then
      { Query.cluster = local_find t node ~k ~cls; hops = List.length path - 1;
        path = List.rev path }
    else begin
      (* Forward to a neighbor claiming a big-enough cluster in its
         direction, never back to the sender.  The paper allows "any"
         such neighbor; `Best_crt picks the direction promising the
         largest cluster, `First the first in neighbor order. *)
      let best = ref None in
      (try
         List.iter
           (fun nb ->
             let h = nb.Node_info.host in
             if Some h <> from then
               match Hashtbl.find_opt node.aggr_crt h with
               | Some row when row.(cls) >= k -> (
                   match policy with
                   | `First ->
                       best := Some (h, row.(cls));
                       raise Exit
                   | `Best_crt -> (
                       match !best with
                       | Some (_, best_size) when best_size >= row.(cls) -> ()
                       | _ -> best := Some (h, row.(cls))))
               | Some _ | None -> ())
           node.neighbors
       with Exit -> ());
      match !best with
      | Some (next, _) -> go next ~from:(Some x) ~path:(next :: path)
      | None -> { Query.cluster = None; hops = List.length path - 1; path = List.rev path }
    end
  in
  go at ~from:None ~path:[ at ]

let query_bandwidth ?policy t ~at ~k ~b =
  match Classes.class_for t.classes ~b with
  | Some cls -> query ?policy t ~at ~k ~cls
  | None -> Query.not_found_at at

let aggregated_nodes t x m =
  let node = get_node t x in
  if not (List.exists (fun nb -> nb.Node_info.host = m) node.neighbors) then
    raise Not_found
  else match Hashtbl.find_opt node.aggr_node m with Some l -> l | None -> []

let crt_row t x v =
  let node = get_node t x in
  if v = x then Array.copy node.own_row
  else if not (List.exists (fun nb -> nb.Node_info.host = v) node.neighbors) then
    raise Not_found
  else
    match Hashtbl.find_opt node.aggr_crt v with
    | Some row -> Array.copy row
    | None -> Array.make (Classes.count t.classes) 0

let max_reachable t x ~cls =
  let node = get_node t x in
  List.fold_left
    (fun acc nb ->
      match Hashtbl.find_opt node.aggr_crt nb.Node_info.host with
      | Some row -> Stdlib.max acc row.(cls)
      | None -> acc)
    node.own_row.(cls) node.neighbors

let messages_sent t = Engine.messages_sent t.engine
let rounds_run t = t.rounds

let mark_all_dirty t =
  Array.iter (function Some node -> node.dirty <- true | None -> ()) t.nodes

(* Rebuilding the slots from scratch both refreshes labels/neighborhoods
   after a framework change and tracks membership changes (joins create a
   slot, leaves clear one). *)
let refresh_topology t =
  t.nodes <- node_slots t.fw t.classes;
  sync_engine_active t
