(* Dynamic clustering (requirement 5 of Sec. I): cluster membership must
   adapt as network conditions change.

   The example lets the pairwise bandwidths drift over several epochs.  A
   system that refreshes its prediction framework keeps answering with
   valid clusters, while a stale system that keeps using epoch-0
   predictions accumulates constraint violations.

     dune exec examples/dynamic_network.exe *)

module Rng = Bwc_stats.Rng

let epochs = 4
let queries_per_epoch = 60
let drift = 1.5 (* access-link load drift per epoch *)

let measure_wpr ~label sys current_truth =
  let rng = Rng.create 77 in
  let lo, hi =
    Bwc_dataset.Dataset.percentile_range current_truth ~lo:20.0 ~hi:80.0
  in
  let wrong = ref 0 and pairs = ref 0 and found = ref 0 in
  for _ = 1 to queries_per_epoch do
    let b = Rng.uniform rng lo hi in
    match (Bwc_core.System.query sys ~k:8 ~b).Bwc_core.Query.cluster with
    | None -> ()
    | Some cluster ->
        incr found;
        List.iteri
          (fun i x ->
            List.iteri
              (fun j y ->
                if j > i then begin
                  incr pairs;
                  if Bwc_dataset.Dataset.bw current_truth x y < b then incr wrong
                end)
              cluster)
          cluster
  done;
  Format.printf "  %-9s RR=%.2f  WPR(vs current network)=%.3f@." label
    (float_of_int !found /. float_of_int queries_per_epoch)
    (if !pairs = 0 then 0.0 else float_of_int !wrong /. float_of_int !pairs)

let () =
  let initial =
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create 31) ~name:"dynamic-net"
      { Bwc_dataset.Planetlab.hp_target with n = 100 }
  in
  let stale_sys = Bwc_core.System.create ~seed:2 initial in
  let truth = ref initial in
  let fresh_sys = ref stale_sys in
  for epoch = 0 to epochs - 1 do
    Format.printf "@.epoch %d:@." epoch;
    measure_wpr ~label:"refreshed" !fresh_sys !truth;
    measure_wpr ~label:"stale" stale_sys !truth;
    if epoch < epochs - 1 then begin
      (* The network drifts... *)
      truth :=
        Bwc_dataset.Noise.host_drift
          ~rng:(Rng.create (500 + epoch))
          ~amplitude:drift !truth;
      (* ...and the refreshed system rebuilds its prediction framework
         and re-runs aggregation on the new measurements. *)
      fresh_sys := Bwc_core.System.create ~seed:2 !truth
    end
  done;
  Format.printf
    "@.the refreshed system tracks the drifting network; the stale one degrades.@."
