(* P2P desktop grid job placement -- the paper's motivating scenario
   (Sec. I): a data-intensive scientific workflow (CyberShake-style) runs
   much faster on workers with high pairwise bandwidth, because stages
   exchange intermediate files all-to-all.

   This example schedules the same workflow three ways -- on a
   bandwidth-constrained cluster found by the decentralized system, on a
   random worker set, and on a latency-agnostic "first k idle" set -- and
   compares estimated data-exchange times computed from the ground-truth
   bandwidth matrix.

     dune exec examples/desktop_grid.exe *)

module Rng = Bwc_stats.Rng

type workflow = {
  workers_needed : int;
  stage_exchanges : float list; (** per-stage all-to-all payload, Mbit per pair *)
}

let cybershake_like =
  {
    workers_needed = 12;
    (* three exchange-heavy stages: mesh generation, strain Green tensor
       broadcast, seismogram reduction *)
    stage_exchanges = [ 400.0; 1200.0; 250.0 ];
  }

(* Time for one all-to-all stage: every pair moves [mbit]; the stage ends
   when the slowest pair finishes. *)
let stage_time ds mbit workers =
  let slowest = ref 0.0 in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if j > i then begin
            let bw = Bwc_dataset.Dataset.bw ds x y in
            slowest := Float.max !slowest (mbit /. bw)
          end)
        workers)
    workers;
  !slowest

let workflow_time ds wf workers =
  List.fold_left (fun acc mbit -> acc +. stage_time ds mbit workers) 0.0 wf.stage_exchanges

let () =
  let dataset =
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create 3) ~name:"desktop-grid"
      { Bwc_dataset.Planetlab.hp_target with n = 150 }
  in
  let n = Bwc_dataset.Dataset.size dataset in
  let wf = cybershake_like in
  Format.printf "desktop grid of %d hosts; workflow needs %d workers@." n wf.workers_needed;

  let sys = Bwc_core.System.create ~seed:11 dataset in

  (* 1. Bandwidth-constrained placement: ask for pairwise >= 40 Mbps. *)
  let smart =
    match Bwc_core.System.query sys ~k:wf.workers_needed ~b:40.0 with
    | { Bwc_core.Query.cluster = Some hosts; hops; _ } ->
        Format.printf "cluster placement found after %d hops@." hops;
        hosts
    | _ -> failwith "Desktop_grid.smart: no cluster found; try a smaller b"
  in

  (* 2. Random placement (what a naive scheduler does). *)
  let rng = Rng.create 99 in
  let random_set =
    Array.to_list (Rng.sample_without_replacement rng wf.workers_needed n)
  in

  (* 3. "First idle" placement: the k lowest host ids. *)
  let first_idle = List.init wf.workers_needed (fun i -> i) in

  let t_smart = workflow_time dataset wf smart in
  let t_random = workflow_time dataset wf random_set in
  let t_first = workflow_time dataset wf first_idle in
  Format.printf "@.estimated data-exchange time per run:@.";
  Format.printf "  bandwidth-constrained cluster : %8.1f s@." t_smart;
  Format.printf "  random workers                : %8.1f s  (%.1fx slower)@." t_random
    (t_random /. t_smart);
  Format.printf "  first-k-idle workers          : %8.1f s  (%.1fx slower)@." t_first
    (t_first /. t_smart);

  (* Bonus: pick a data-staging node with high bandwidth to the whole
     cluster (the node-search extension of Sec. VI). *)
  match Bwc_core.System.find_feeder sys ~targets:smart with
  | Some (feeder, bw) ->
      Format.printf "@.data-staging node: host %d (predicted >= %.1f Mbps to every worker)@."
        feeder bw
  | None -> ()
