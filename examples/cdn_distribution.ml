(* Content distribution (Sec. I and Sec. V): partition subscribers into
   bandwidth-constrained clusters, deploy the content to one
   representative per cluster, and let it spread within each cluster over
   the fast intra-cluster links.

   The example greedily peels clusters off the system (query, remove the
   returned hosts, repeat), then compares the estimated distribution time
   of this two-stage scheme against direct unicast from the origin.

     dune exec examples/cdn_distribution.exe *)

module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

let content_mbit = 4000.0 (* a 500 MB release *)

(* Greedy partition: repeatedly find a b-constrained cluster among the
   remaining subscribers; hosts that fit no cluster become singletons. *)
let partition ~b ~max_cluster dataset =
  let rec peel remaining clusters =
    let m = Array.length remaining in
    if m < 2 then (clusters, Array.to_list remaining)
    else begin
      let sub = Dataset.subset dataset remaining in
      let sys =
        Bwc_core.System.create ~seed:(1000 + m) ~class_count:4 sub
      in
      let k = Stdlib.min max_cluster (Stdlib.max 2 (m / 4)) in
      match Bwc_core.System.query sys ~k ~b with
      | { Bwc_core.Query.cluster = Some local_hosts; _ } ->
          (* indices are relative to [sub]; map back *)
          let cluster = List.map (fun i -> remaining.(i)) local_hosts in
          let member = Hashtbl.create 16 in
          List.iter (fun h -> Hashtbl.replace member h ()) cluster;
          let rest =
            Array.of_list
              (List.filter
                 (fun h -> not (Hashtbl.mem member h))
                 (Array.to_list remaining))
          in
          peel rest (cluster :: clusters)
      | _ -> (clusters, Array.to_list remaining)
    end
  in
  peel (Array.init (Dataset.size dataset) (fun i -> i)) []

(* Distribution time estimates from the ground-truth matrix.  The origin
   is host 0.  Intra-cluster spread is a chain of unicasts over the
   slowest intra-cluster link (pessimistic for the CDN scheme). *)
let direct_time ds subscribers =
  List.fold_left
    (fun acc h -> if h = 0 then acc else acc +. (content_mbit /. Dataset.bw ds 0 h))
    0.0 subscribers

let two_stage_time ds clusters singletons =
  let cluster_time cluster =
    match cluster with
    | [] -> 0.0
    | rep :: rest ->
        let to_rep = content_mbit /. Dataset.bw ds 0 rep in
        let slowest =
          List.fold_left
            (fun acc h -> Float.max acc (content_mbit /. Dataset.bw ds rep h))
            0.0 rest
        in
        to_rep +. slowest
  in
  let cluster_part =
    List.fold_left (fun acc c -> Float.max acc (cluster_time c)) 0.0 clusters
  in
  (* Singletons still get direct unicast, in parallel with the clusters. *)
  let singleton_part =
    List.fold_left
      (fun acc h -> if h = 0 then acc else Float.max acc (content_mbit /. Dataset.bw ds 0 h))
      0.0 singletons
  in
  Float.max cluster_part singleton_part

let () =
  let dataset =
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create 17) ~name:"cdn-subscribers"
      { Bwc_dataset.Planetlab.hp_target with n = 120 }
  in
  let n = Dataset.size dataset in
  Format.printf "CDN with %d subscribers, %.0f Mbit content@." n content_mbit;
  let clusters, singletons = partition ~b:35.0 ~max_cluster:20 dataset in
  Format.printf "partitioned into %d clusters (+%d singletons):@." (List.length clusters)
    (List.length singletons);
  List.iteri
    (fun i c -> Format.printf "  cluster %d: %d hosts@." (i + 1) (List.length c))
    clusters;
  let everyone = List.init n (fun i -> i) in
  let t_direct = direct_time dataset everyone in
  let t_two = two_stage_time dataset clusters singletons in
  Format.printf "@.estimated completion (sequential origin unicast): %8.1f s@." t_direct;
  Format.printf "estimated completion (cluster representatives)   : %8.1f s  (%.1fx faster)@."
    t_two (t_direct /. t_two)
