(* P2P storage replica placement (Sec. V mentions PAST-style systems):
   replicas of an object must synchronise with each other constantly, so
   placing all r replicas inside a bandwidth-constrained cluster keeps
   maintenance cheap; the node-search extension then picks a writer-side
   ingest node with high bandwidth to every replica.

   The example places replicas for several objects, estimates steady-state
   synchronisation cost from the ground-truth matrix, and shows how the
   placement survives network drift by re-querying after conditions
   change.

     dune exec examples/replica_placement.exe *)

module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset

let replicas = 5
let sync_mbit = 80.0 (* anti-entropy round payload per replica pair *)

(* steady-state sync time: slowest pair dominates the anti-entropy round *)
let sync_time ds nodes =
  let worst = ref 0.0 in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if j > i then worst := Float.max !worst (sync_mbit /. Dataset.bw ds x y))
        nodes)
    nodes;
  !worst

let place sys label =
  match Bwc_core.System.query sys ~k:replicas ~b:45.0 with
  | { Bwc_core.Query.cluster = Some nodes; hops; _ } ->
      Format.printf "%s: replicas on {%s} (found after %d hops)@." label
        (String.concat ", " (List.map string_of_int nodes))
        hops;
      Some nodes
  | _ ->
      Format.printf "%s: no 45 Mbps cluster of %d@." label replicas;
      None

let () =
  let dataset =
    Bwc_dataset.Planetlab.generate ~rng:(Rng.create 41) ~name:"storage-peers"
      { Bwc_dataset.Planetlab.hp_target with n = 130 }
  in
  let sys = Bwc_core.System.create ~seed:9 dataset in
  match place sys "initial placement" with
  | None -> ()
  | Some nodes ->
      Format.printf "  anti-entropy round: %.1f s@." (sync_time dataset nodes);
      (match Bwc_core.System.find_feeder sys ~targets:nodes with
      | Some (ingest, bw) ->
          Format.printf "  ingest node: host %d (>= %.0f Mbps to every replica)@."
            ingest bw
      | None -> ());
      (* a naive placement for contrast: the r lowest host ids *)
      let naive = List.init replicas (fun i -> i) in
      Format.printf "  naive placement sync round: %.1f s (%.1fx slower)@."
        (sync_time dataset naive)
        (sync_time dataset naive /. sync_time dataset nodes);
      (* the network drifts; the refreshed system re-places if needed *)
      let drifted =
        Bwc_dataset.Noise.host_drift ~rng:(Rng.create 42) ~amplitude:2.0 dataset
      in
      let sys' = Bwc_core.System.create ~seed:9 drifted in
      Format.printf "@.after access-link drift:@.";
      Format.printf "  old placement sync round on new network: %.1f s@."
        (sync_time drifted nodes);
      (match place sys' "re-placement" with
      | Some nodes' ->
          Format.printf "  new placement sync round: %.1f s@." (sync_time drifted nodes')
      | None -> ())
