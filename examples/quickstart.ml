(* Quickstart: stand up a bandwidth-constrained clustering system over a
   synthetic PlanetLab-like testbed and ask it for a cluster.

     dune exec examples/quickstart.exe *)

let () =
  (* A 120-host testbed whose pairwise bandwidth distribution mimics the
     paper's HP-PlanetLab dataset (20th-80th percentile: 15-75 Mbps). *)
  let dataset =
    Bwc_dataset.Planetlab.generate
      ~rng:(Bwc_stats.Rng.create 42)
      ~name:"quickstart-testbed"
      { Bwc_dataset.Planetlab.hp_target with n = 120 }
  in
  Format.printf "testbed: %d hosts@." (Bwc_dataset.Dataset.size dataset);

  (* One call builds the whole stack: the decentralized bandwidth
     prediction framework (prediction trees + anchor overlay), then runs
     the background aggregation protocols to quiescence. *)
  let sys = Bwc_core.System.create ~seed:7 dataset in
  let protocol = Bwc_core.System.protocol sys in
  Format.printf "aggregation: %d rounds, %d messages@."
    (Bwc_core.Protocol.rounds_run protocol)
    (Bwc_core.Protocol.messages_sent protocol);

  (* Ask any host for 10 nodes with pairwise bandwidth of at least
     40 Mbps.  The query routes itself through the overlay. *)
  let result = Bwc_core.System.query sys ~k:10 ~b:40.0 in
  (match result.Bwc_core.Query.cluster with
  | Some hosts ->
      Format.printf "cluster found after %d hops: {%s}@." result.Bwc_core.Query.hops
        (String.concat ", " (List.map string_of_int hosts));
      (* Check the answer against the ground-truth bandwidth matrix. *)
      let violations = Bwc_core.System.verify_cluster sys ~b:40.0 hosts in
      Format.printf "ground truth: %d of %d pairs below 40 Mbps@."
        (List.length violations)
        (List.length hosts * (List.length hosts - 1) / 2)
  | None -> Format.printf "no cluster found -- relax k or b@.");

  (* The centralized Algorithm 1 over the same predicted distances, for
     comparison. *)
  match Bwc_core.System.query_centralized sys ~k:10 ~b:40.0 with
  | Some hosts ->
      Format.printf "centralized algorithm agrees: {%s}@."
        (String.concat ", " (List.map string_of_int hosts))
  | None -> Format.printf "centralized algorithm found nothing@."
