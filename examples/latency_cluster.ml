(* Latency-constrained clustering -- the paper's future-work direction
   (Sec. VI): latency also embeds well into tree metrics, so the same
   machinery answers "find k hosts within d ms of each other".

   The trick is a change of units: feed the system a "bandwidth" matrix
   whose value for a pair is [C / latency_ms], so that the rational
   transform recovers distances proportional to latency, and a latency
   bound of [d] ms becomes a bandwidth constraint of [C / d].

     dune exec examples/latency_cluster.exe *)

module Rng = Bwc_stats.Rng

let () =
  let rng = Rng.create 23 in
  (* A hierarchical ISP topology measured in milliseconds: metro links of
     a few ms, long-haul up to ~60 ms, with measurement jitter. *)
  let dataset = Bwc_dataset.Latency.generate ~rng ~n:140 ~name:"latency-140" () in
  let sys = Bwc_core.System.create ~seed:5 dataset in

  let find_within_ms ~k ~ms =
    Bwc_core.System.query sys ~k ~b:(Bwc_dataset.Latency.bandwidth_constraint_for ms)
  in

  List.iter
    (fun (k, ms) ->
      match find_within_ms ~k ~ms with
      | { Bwc_core.Query.cluster = Some hosts; hops; _ } ->
          let worst =
            List.fold_left
              (fun acc x ->
                List.fold_left
                  (fun acc y ->
                    if x = y then acc
                    else Float.max acc (Bwc_dataset.Latency.latency_ms dataset x y))
                  acc hosts)
              0.0 hosts
          in
          Format.printf
            "k=%2d within %5.1f ms: found after %d hops, real worst pair = %5.1f ms@." k ms
            hops worst
      | _ -> Format.printf "k=%2d within %5.1f ms: no cluster@." k ms)
    [ (5, 15.0); (10, 30.0); (15, 60.0); (25, 60.0); (25, 120.0) ]
