(* Tests for bwc_core: Algorithm 1 and its theorems (3.1), the
   precomputed index, bandwidth classes, the decentralized protocol
   (Theorems 3.2 and 3.3 checked against ground truth computed from the
   anchor topology), query routing (Algorithm 4), node search, and the
   system facade. *)

module Rng = Bwc_stats.Rng
module Space = Bwc_metric.Space
module Find_cluster = Bwc_core.Find_cluster
module Classes = Bwc_core.Classes
module Node_info = Bwc_core.Node_info
module Protocol = Bwc_core.Protocol
module System = Bwc_core.System
module Query = Bwc_core.Query
module Ensemble = Bwc_predtree.Ensemble
module Anchor = Bwc_predtree.Anchor

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

let tree_space ~seed n =
  Space.of_dmatrix (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create seed) ~n ())

let small_dataset ~seed n =
  Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed) ~name:"test-ds"
    { Bwc_dataset.Planetlab.hp_target with n }

(* brute force: does a k-subset with diameter <= l exist in the space? *)
let brute_exists space k l =
  let n = space.Space.n in
  let rec choose start acc count =
    if count = k then begin
      let ok = ref true in
      List.iteri
        (fun i x ->
          List.iteri (fun j y -> if j > i && space.Space.dist x y > l then ok := false) acc)
        acc;
      !ok
    end
    else if start >= n then false
    else choose (start + 1) (start :: acc) (count + 1) || choose (start + 1) acc count
  in
  choose 0 [] 0

(* ----- Algorithm 1 ----- *)

let test_members_definition () =
  let space = tree_space ~seed:1 12 in
  for p = 0 to 11 do
    for q = p + 1 to 11 do
      let dpq = space.Space.dist p q in
      let s = Find_cluster.members space ~p ~q in
      Alcotest.(check bool) "p in S" true (List.mem p s);
      Alcotest.(check bool) "q in S" true (List.mem q s);
      for x = 0 to 11 do
        let belongs = space.Space.dist x p <= dpq && space.Space.dist x q <= dpq in
        if belongs <> List.mem x s then Alcotest.failf "membership wrong for %d" x
      done
    done
  done

let test_theorem_3_1_diameter () =
  (* in a tree metric, diam S*_pq = d(p,q) *)
  let space = tree_space ~seed:2 15 in
  for p = 0 to 14 do
    for q = p + 1 to 14 do
      let s = Find_cluster.members space ~p ~q in
      let diam = Space.diameter space s in
      if not (feq ~eps:1e-6 diam (space.Space.dist p q)) then
        Alcotest.failf "diam %g <> d(p,q) %g" diam (space.Space.dist p q)
    done
  done

let test_find_returns_valid_cluster () =
  let space = tree_space ~seed:3 20 in
  let l = Bwc_stats.Summary.median (Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space)) in
  match Find_cluster.find space ~k:5 ~l with
  | None -> Alcotest.fail "median-l query should be feasible"
  | Some cluster ->
      Alcotest.(check int) "size" 5 (List.length cluster);
      Alcotest.(check bool) "diameter" true (Space.diameter space cluster <= l *. (1.0 +. 1e-9));
      let sorted = List.sort_uniq compare cluster in
      Alcotest.(check int) "distinct" 5 (List.length sorted)

let test_find_vs_brute_force () =
  for seed = 10 to 25 do
    let n = 8 in
    let space = tree_space ~seed n in
    let values = Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space) in
    List.iter
      (fun pct ->
        let l = Bwc_stats.Summary.percentile values pct in
        List.iter
          (fun k ->
            let found = Find_cluster.find space ~k ~l <> None in
            let expected = brute_exists space k l in
            if found <> expected then
              Alcotest.failf "seed=%d k=%d pct=%.0f: alg1 %b brute %b" seed k pct found
                expected)
          [ 2; 3; 4; 6 ])
      [ 20.0; 50.0; 80.0 ]
  done

let test_max_size_vs_brute_force () =
  for seed = 30 to 38 do
    let space = tree_space ~seed 7 in
    let values = Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space) in
    let l = Bwc_stats.Summary.percentile values 50.0 in
    let rec largest k = if k < 2 then 1 else if brute_exists space k l then k else largest (k - 1) in
    Alcotest.(check int) "max size" (largest 7) (Find_cluster.max_size space ~l)
  done

let test_find_infeasible () =
  let space = tree_space ~seed:4 10 in
  Alcotest.(check bool) "tiny l fails for k=3" true
    (Find_cluster.find space ~k:3 ~l:1e-12 = None);
  Alcotest.(check bool) "k > n fails" true (Find_cluster.find space ~k:11 ~l:1e12 = None)

let test_index_consistency () =
  let space = tree_space ~seed:5 18 in
  let index = Find_cluster.Index.build space in
  let values = Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space) in
  List.iter
    (fun pct ->
      let l = Bwc_stats.Summary.percentile values pct in
      List.iter
        (fun k ->
          let direct = Find_cluster.find space ~k ~l in
          let indexed = Find_cluster.Index.find index ~k ~l in
          Alcotest.(check bool) "feasibility agrees" (direct <> None) (indexed <> None);
          Alcotest.(check bool) "exists agrees" (direct <> None)
            (Find_cluster.Index.exists index ~k ~l);
          (* identical scan order must give identical clusters *)
          Alcotest.(check (option (list int))) "same cluster" direct indexed)
        [ 2; 4; 7 ];
      Alcotest.(check int) "max size agrees"
        (Find_cluster.max_size space ~l)
        (Find_cluster.Index.max_size index ~l))
    [ 10.0; 40.0; 70.0; 95.0 ]

let test_index_max_sizes_vector () =
  let space = tree_space ~seed:6 14 in
  let index = Find_cluster.Index.build space in
  let ls = [| 1.0; 50.0; 500.0; 5000.0 |] in
  let sizes = Find_cluster.Index.max_sizes index ~ls in
  Array.iteri
    (fun i l -> Alcotest.(check int) "entry" (Find_cluster.Index.max_size index ~l) sizes.(i))
    ls;
  (* max size is monotone in l *)
  for i = 1 to Array.length sizes - 1 do
    if sizes.(i) < sizes.(i - 1) then Alcotest.fail "max size must grow with l"
  done

let test_index_incremental_grow_shrink () =
  (* grow one host at a time from empty to full, then shrink back: every
     intermediate incremental index must be indistinguishable from a
     fresh build over the same membership *)
  let n = 14 in
  let space = tree_space ~seed:7 n in
  let values = Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space) in
  let probes =
    List.map (fun pct -> Bwc_stats.Summary.percentile values pct) [ 15.0; 50.0; 85.0 ]
  in
  let agree idx members =
    let fresh = Find_cluster.Index.build_subset space members in
    Alcotest.(check (list int)) "members" (Find_cluster.Index.members fresh)
      (Find_cluster.Index.members idx);
    List.iter
      (fun l ->
        Alcotest.(check int) "max_size" (Find_cluster.Index.max_size fresh ~l)
          (Find_cluster.Index.max_size idx ~l);
        List.iter
          (fun k ->
            Alcotest.(check (option (list int))) "find"
              (Find_cluster.Index.find fresh ~k ~l)
              (Find_cluster.Index.find idx ~k ~l))
          [ 2; 3; 5 ])
      probes
  in
  let idx = Find_cluster.Index.build_subset space [] in
  for h = 0 to n - 1 do
    Find_cluster.Index.add_host idx h;
    agree idx (List.init (h + 1) Fun.id)
  done;
  (* full incremental index equals a from-scratch full build *)
  agree idx (List.init n Fun.id);
  for h = n - 1 downto 1 do
    Find_cluster.Index.remove_host idx h;
    agree idx (List.init h Fun.id)
  done;
  Alcotest.(check int) "one member left" 1 (Find_cluster.Index.size idx)

let test_index_delta_contract () =
  let space = tree_space ~seed:8 10 in
  let idx = Find_cluster.Index.build_subset space [ 0; 2; 4 ] in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "double add rejected" true
    (raises (fun () -> Find_cluster.Index.add_host idx 2));
  Alcotest.(check bool) "non-member remove rejected" true
    (raises (fun () -> Find_cluster.Index.remove_host idx 3));
  Alcotest.(check bool) "out-of-range add rejected" true
    (raises (fun () -> Find_cluster.Index.add_host idx 10));
  (* leave then re-join lands back on the identical index state *)
  let before = Find_cluster.Index.max_sizes idx ~ls:[| 1.0; 100.0; 1e4 |] in
  Find_cluster.Index.remove_host idx 2;
  Find_cluster.Index.add_host idx 2;
  Alcotest.(check (list int)) "members restored" [ 0; 2; 4 ]
    (Find_cluster.Index.members idx);
  Alcotest.(check (array int)) "answers restored" before
    (Find_cluster.Index.max_sizes idx ~ls:[| 1.0; 100.0; 1e4 |])

(* ----- Classes ----- *)

let test_classes_mapping () =
  let classes = Classes.make ~c:1000.0 [ 10.0; 20.0; 40.0; 80.0 ] in
  Alcotest.(check int) "count" 4 (Classes.count classes);
  (* cheapest class guaranteeing b *)
  Alcotest.(check (option int)) "b=15 -> 20" (Some 1) (Classes.class_for classes ~b:15.0);
  Alcotest.(check (option int)) "b=10 -> 10" (Some 0) (Classes.class_for classes ~b:10.0);
  Alcotest.(check (option int)) "b=80 -> 80" (Some 3) (Classes.class_for classes ~b:80.0);
  Alcotest.(check (option int)) "b beyond classes" None (Classes.class_for classes ~b:81.0);
  (* distances are index-aligned inverses *)
  Alcotest.(check (float 1e-9)) "distance" 50.0 (Classes.distance classes 1);
  Alcotest.(check (option int)) "distance mapping" (Some 1)
    (Classes.class_for_distance classes ~l:50.0)

let test_classes_guarantee () =
  (* the mapped class always guarantees the requested bandwidth *)
  let classes = Classes.make ~c:1000.0 [ 12.0; 33.0; 57.0; 91.0 ] in
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    let b = Rng.uniform rng 1.0 91.0 in
    match Classes.class_for classes ~b with
    | None -> Alcotest.fail "b within range must map"
    | Some i -> Alcotest.(check bool) "guarantee" true (Classes.bandwidth classes i >= b)
  done

let test_classes_of_percentiles () =
  let ds = small_dataset ~seed:8 40 in
  let classes = Classes.of_percentiles ~count:6 ds in
  Alcotest.(check bool) "at most 6 (dedup)" true (Classes.count classes <= 6);
  let bws = Classes.bandwidths classes in
  for i = 1 to Array.length bws - 1 do
    if bws.(i) <= bws.(i - 1) then Alcotest.fail "ascending"
  done

(* ----- Protocol: aggregation correctness (Theorems 3.2 / 3.3) ----- *)

let build_protocol ?ensemble_size ~seed n =
  let ds = small_dataset ~seed n in
  let space = Bwc_dataset.Dataset.metric ds in
  let ens = Ensemble.build ~rng:(Rng.create (seed + 1)) ?size:ensemble_size space in
  let classes = Classes.of_percentiles ~count:5 ds in
  let protocol = Protocol.create ~rng:(Rng.create (seed + 2)) ~n_cut:4 ~classes ens in
  let (_ : int) = Protocol.run_aggregation protocol in
  (ds, ens, protocol)

(* hosts reachable from x via neighbor m on the anchor tree *)
let reachable_via anchor ~x ~m =
  let rec collect h blocked acc =
    List.fold_left
      (fun acc nb -> if nb = blocked || List.mem nb acc then acc else collect nb h acc)
      (h :: acc) (Anchor.neighbors anchor h)
  in
  List.filter (fun h -> h <> x) (collect m x [])

let test_theorem_3_2_aggr_node () =
  (* Theorem 3.2 is stated for a single prediction tree: with an ensemble
     the ranking distance (median over trees) is not additive along the
     tree, so exact top-n_cut optimality only holds at ensemble size 1. *)
  let _, ens, protocol = build_protocol ~ensemble_size:1 ~seed:9 28 in
  let anchor_tree = Bwc_predtree.Framework.anchor (Ensemble.primary ens) in
  let n_cut = Protocol.n_cut protocol in
  for x = 0 to 27 do
    List.iter
      (fun m ->
        let got = Protocol.aggregated_nodes protocol x m in
        let u = reachable_via anchor_tree ~x ~m in
        let labels_x = Ensemble.labels ens x in
        let dist_to_x h = Ensemble.label_dist labels_x (Ensemble.labels ens h) in
        (* size: exactly min n_cut |U| *)
        Alcotest.(check int)
          (Printf.sprintf "size of aggrNode[%d->%d]" x m)
          (Stdlib.min n_cut (List.length u))
          (List.length got);
        (* membership and top-n_cut optimality *)
        let got_hosts = List.map (fun i -> i.Node_info.host) got in
        List.iter
          (fun h ->
            if not (List.mem h u) then Alcotest.failf "host %d not reachable via %d" h m)
          got_hosts;
        let worst_kept =
          List.fold_left (fun acc h -> Float.max acc (dist_to_x h)) 0.0 got_hosts
        in
        List.iter
          (fun h ->
            if not (List.mem h got_hosts) && dist_to_x h +. 1e-9 < worst_kept then
              Alcotest.failf
                "host %d (d=%.3f) beats kept worst (%.3f) in aggrNode[%d->%d]" h
                (dist_to_x h) worst_kept x m)
          u)
      (Ensemble.anchor_neighbors ens x)
  done

let test_theorem_3_2_weak_for_ensembles () =
  (* with the median ensemble the aggregated sets must still be correct
     subsets of the reachable hosts with the right cardinality *)
  let _, ens, protocol = build_protocol ~seed:9 22 in
  let anchor_tree = Bwc_predtree.Framework.anchor (Ensemble.primary ens) in
  let n_cut = Protocol.n_cut protocol in
  for x = 0 to 21 do
    List.iter
      (fun m ->
        let got = Protocol.aggregated_nodes protocol x m in
        let u = reachable_via anchor_tree ~x ~m in
        Alcotest.(check int) "cardinality" (Stdlib.min n_cut (List.length u))
          (List.length got);
        List.iter
          (fun info ->
            if not (List.mem info.Node_info.host u) then
              Alcotest.failf "host %d not reachable via %d" info.Node_info.host m)
          got)
      (Ensemble.anchor_neighbors ens x)
  done

let test_payload_bounded_by_ncut () =
  (* the n_cut knob really bounds what travels in every aggregation
     message, for every node and neighbor *)
  let _, ens, protocol = build_protocol ~seed:35 30 in
  let n_cut = Protocol.n_cut protocol in
  for x = 0 to 29 do
    List.iter
      (fun m ->
        let got = Protocol.aggregated_nodes protocol x m in
        if List.length got > n_cut then
          Alcotest.failf "aggrNode[%d->%d] exceeds n_cut" x m)
      (Ensemble.anchor_neighbors ens x)
  done

let test_theorem_3_3_aggr_crt () =
  let _, ens, protocol = build_protocol ~seed:10 24 in
  let anchor_tree = Bwc_predtree.Framework.anchor (Ensemble.primary ens) in
  let classes = Protocol.classes protocol in
  for x = 0 to 23 do
    List.iter
      (fun m ->
        let got = Protocol.crt_row protocol x m in
        let u = reachable_via anchor_tree ~x ~m in
        (* ground truth: max over reachable hosts' own rows *)
        for cls = 0 to Classes.count classes - 1 do
          let expected =
            List.fold_left
              (fun acc w -> Stdlib.max acc (Protocol.crt_row protocol w w).(cls))
              0 u
          in
          if got.(cls) <> expected then
            Alcotest.failf "aggrCRT[%d->%d][%d] = %d, ground truth %d" x m cls got.(cls)
              expected
        done)
      (Ensemble.anchor_neighbors ens x)
  done

let test_global_max_agrees_everywhere () =
  (* the CRT aggregation propagates the max cluster size across the whole
     anchor tree, so after convergence every host believes the same
     global maximum per class *)
  let _, _, protocol = build_protocol ~seed:31 26 in
  let classes = Protocol.classes protocol in
  for cls = 0 to Classes.count classes - 1 do
    let values =
      List.init 26 (fun x -> Protocol.max_reachable protocol x ~cls)
    in
    match values with
    | first :: rest ->
        List.iteri
          (fun i v ->
            if v <> first then
              Alcotest.failf "host %d sees %d for class %d, host 0 sees %d" (i + 1) v cls
                first)
          rest
    | [] -> Alcotest.fail "no hosts"
  done

let test_convergence_rounds_bounded () =
  (* information must cross the anchor tree once in each direction, so
     quiescence arrives within ~2x the tree depth (plus slack for the
     initial flush) *)
  let ds = small_dataset ~seed:32 30 in
  let space = Bwc_dataset.Dataset.metric ds in
  let ens = Ensemble.build ~rng:(Rng.create 33) space in
  let classes = Classes.of_percentiles ~count:5 ds in
  let protocol = Protocol.create ~rng:(Rng.create 34) ~n_cut:4 ~classes ens in
  let rounds = Protocol.run_aggregation protocol in
  let depth = Anchor.max_depth (Bwc_predtree.Framework.anchor (Ensemble.primary ens)) in
  if rounds > (2 * depth) + 4 then
    Alcotest.failf "converged in %d rounds, depth only %d" rounds depth

let test_delays_reach_same_fixpoint () =
  (* heterogeneous FIFO link delays slow convergence but must not change
     what the aggregation converges to *)
  let ds = small_dataset ~seed:36 22 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let make ?edge_delay () =
    let ens = Ensemble.build ~rng:(Rng.create 37) space in
    let p = Protocol.create ~rng:(Rng.create 38) ~n_cut:4 ?edge_delay ~classes ens in
    let (_ : int) = Protocol.run_aggregation ~max_rounds:400 p in
    (ens, p)
  in
  let ens, fast = make () in
  let delay_rng = Rng.create 39 in
  let delays = Hashtbl.create 64 in
  let edge_delay ~src ~dst =
    match Hashtbl.find_opt delays (src, dst) with
    | Some d -> d
    | None ->
        let d = 1 + Rng.int delay_rng 4 in
        Hashtbl.add delays (src, dst) d;
        d
  in
  let _, slow = make ~edge_delay () in
  for x = 0 to 21 do
    (* own rows agree *)
    Alcotest.(check (array int))
      (Printf.sprintf "own row of %d" x)
      (Protocol.crt_row fast x x) (Protocol.crt_row slow x x);
    (* neighbor columns agree *)
    List.iter
      (fun m ->
        Alcotest.(check (array int))
          (Printf.sprintf "column %d->%d" x m)
          (Protocol.crt_row fast x m) (Protocol.crt_row slow x m))
      (Ensemble.anchor_neighbors ens x)
  done

let test_aggregation_quiescence () =
  let _, _, protocol = build_protocol ~seed:11 20 in
  (* a further round on a static network must be a no-op *)
  Alcotest.(check bool) "quiescent" false (Protocol.run_round protocol)

(* ----- Robustness: faults must not change the fixed point ----- *)

let check_same_fixpoint ~n ens clean faulty =
  for x = 0 to n - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "own row of %d" x)
      (Protocol.crt_row clean x x) (Protocol.crt_row faulty x x);
    List.iter
      (fun m ->
        Alcotest.(check (array int))
          (Printf.sprintf "column %d->%d" x m)
          (Protocol.crt_row clean x m) (Protocol.crt_row faulty x m))
      (Ensemble.anchor_neighbors ens x)
  done

let test_faults_reach_same_fixpoint () =
  (* message loss, duplication and reordering jitter slow convergence but
     must not change what the aggregation converges to (the acceptance
     property of the reliable-delivery layer) *)
  let ds = small_dataset ~seed:70 20 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let make ?faults () =
    let ens = Ensemble.build ~rng:(Rng.create 71) space in
    let p = Protocol.create ~rng:(Rng.create 72) ~n_cut:4 ?faults ~classes ens in
    let rounds = Protocol.run_aggregation ~max_rounds:600 p in
    (ens, p, rounds)
  in
  let ens, clean, clean_rounds = make () in
  let faults =
    Bwc_sim.Fault.create ~drop:0.2 ~duplicate:0.1 ~jitter:2 ~rng:(Rng.create 73) ()
  in
  let _, faulty, faulty_rounds = make ~faults () in
  Alcotest.(check bool) "converged under faults" true (faulty_rounds < 600);
  (* overhead is bounded: retransmission paces recovery at resend_timeout
     rounds per lost hop, nowhere near the cap *)
  Alcotest.(check bool)
    (Printf.sprintf "round overhead bounded (%d clean, %d faulty)" clean_rounds
       faulty_rounds)
    true
    (faulty_rounds <= (8 * clean_rounds) + 40);
  check_same_fixpoint ~n:20 ens clean faulty;
  Alcotest.(check bool) "losses were injected" true (Bwc_sim.Fault.lost faults > 0);
  Alcotest.(check bool) "duplicates were injected" true
    (Bwc_sim.Fault.duplicated faults > 0);
  Alcotest.(check bool) "retransmissions happened" true (Protocol.retries faulty > 0);
  Alcotest.(check bool) "duplicates suppressed" true
    (Protocol.duplicates_suppressed faulty > 0);
  Alcotest.(check int) "nothing pending at quiescence" 0
    (Protocol.pending_unacked faulty)

let test_crash_restart_converges () =
  (* hosts that crash mid-aggregation and restart later: retransmission
     repairs the tables and the fixed point is unchanged *)
  let ds = small_dataset ~seed:74 18 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let make ?faults () =
    let ens = Ensemble.build ~rng:(Rng.create 75) space in
    let p = Protocol.create ~rng:(Rng.create 76) ~n_cut:4 ?faults ~classes ens in
    let rounds = Protocol.run_aggregation ~max_rounds:600 p in
    (ens, p, rounds)
  in
  let ens, clean, _ = make () in
  let faults =
    Bwc_sim.Fault.create
      ~crashes:
        [
          { Bwc_sim.Fault.node = 5; down_from = 2; up_at = 8 };
          { Bwc_sim.Fault.node = 11; down_from = 4; up_at = 10 };
        ]
      ~rng:(Rng.create 77) ()
  in
  let _, faulty, rounds = make ~faults () in
  Alcotest.(check bool) "converged after restarts" true (rounds < 600);
  check_same_fixpoint ~n:18 ens clean faulty;
  Alcotest.(check int) "nothing pending at quiescence" 0
    (Protocol.pending_unacked faulty)

let test_partition_heals_and_queries_succeed () =
  (* a scripted partition splits the overlay for a window; once it heals,
     retransmission repairs the aggregation and every promised query is
     answered again *)
  let ds = small_dataset ~seed:78 20 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let make ?faults () =
    let ens = Ensemble.build ~rng:(Rng.create 79) space in
    let p = Protocol.create ~rng:(Rng.create 80) ~n_cut:4 ?faults ~classes ens in
    let rounds = Protocol.run_aggregation ~max_rounds:600 p in
    (ens, p, rounds)
  in
  let ens, clean, _ = make () in
  let faults =
    Bwc_sim.Fault.create
      ~partitions:[ Bwc_sim.Fault.isolate ~starts:2 ~heals:9 ~group:[ 3; 7 ] ]
      ~rng:(Rng.create 81) ()
  in
  let _, faulty, rounds = make ~faults () in
  Alcotest.(check bool) "converged after heal" true (rounds < 600);
  Alcotest.(check bool) "partition actually cut traffic" true
    (Bwc_sim.Fault.partition_dropped faults > 0);
  check_same_fixpoint ~n:20 ens clean faulty;
  for x = 0 to 19 do
    for cls = 0 to Classes.count classes - 1 do
      let promised = Protocol.max_reachable faulty x ~cls in
      if promised >= 2 then begin
        let r = Protocol.query faulty ~at:x ~k:promised ~cls in
        if not (Query.found r) then
          Alcotest.failf "host %d: promised k=%d missed after heal" x promised
      end
    done
  done

let test_query_hop_budget () =
  let _, _, protocol = build_protocol ~seed:82 24 in
  let classes = Protocol.classes protocol in
  let forwarding_needed = ref 0 in
  for x = 0 to 23 do
    for cls = 0 to Classes.count classes - 1 do
      let own = (Protocol.crt_row protocol x x).(cls) in
      let promised = Protocol.max_reachable protocol x ~cls in
      if promised >= 2 then begin
        let r = Protocol.query protocol ~hop_budget:0 ~at:x ~k:promised ~cls in
        Alcotest.(check int) "budget 0 never forwards" 0 r.Query.hops;
        (* with no budget the query can only be answered from the local
           clustering space *)
        if promised > own then begin
          incr forwarding_needed;
          if Query.found r then
            Alcotest.failf "host %d answered k=%d locally with own row %d" x promised
              own
        end
      end
    done
  done;
  Alcotest.(check bool) "the budget constrained at least one query" true
    (!forwarding_needed > 0)

let test_query_skips_dead_hosts () =
  let ds = small_dataset ~seed:83 20 in
  let space = Bwc_dataset.Dataset.metric ds in
  let ens = Ensemble.build ~rng:(Rng.create 84) space in
  let classes = Classes.of_percentiles ~count:5 ds in
  (* crash an anchor-tree leaf permanently *)
  let dead =
    let rec find x =
      if x >= 20 then Alcotest.fail "no leaf found"
      else if List.length (Ensemble.anchor_neighbors ens x) = 1 then x
      else find (x + 1)
    in
    find 1
  in
  let faults =
    Bwc_sim.Fault.create
      ~crashes:[ { Bwc_sim.Fault.node = dead; down_from = 1; up_at = max_int } ]
      ~rng:(Rng.create 85) ()
  in
  let protocol = Protocol.create ~rng:(Rng.create 86) ~n_cut:4 ~faults ~classes ens in
  (* updates to the dead host are never acknowledged; after
     [max_retransmits] tries the neighbor gives up on it, so the system
     reaches quiescence anyway — the retransmission bound in action *)
  let (_ : int) = Protocol.run_aggregation ~max_rounds:60 protocol in
  Alcotest.(check bool) "some update was given up on" true
    (Protocol.give_ups protocol > 0);
  Alcotest.(check int) "given-up updates leave the unacked pool" 0
    (Protocol.pending_unacked protocol);
  for x = 0 to 19 do
    if x <> dead then
      for cls = 0 to Classes.count classes - 1 do
        let r = Protocol.query protocol ~at:x ~k:2 ~cls in
        if List.mem dead r.Query.path then
          Alcotest.failf "query from %d routed through dead host %d" x dead
      done
  done;
  (* a query submitted at the dead host is an immediate miss *)
  let r = Protocol.query protocol ~at:dead ~k:2 ~cls:0 in
  Alcotest.(check bool) "miss at dead host" false (Query.found r);
  Alcotest.(check (list int)) "path is just the dead host" [ dead ] r.Query.path

(* ----- Failure detection and self-healing ----- *)

module Detector = Bwc_core.Detector
module Framework = Bwc_predtree.Framework
module Trace = Bwc_obs.Trace

(* fixed-point equality restricted to current members (the dead host has
   no rows any more) *)
let check_members_fixpoint ens a b =
  List.iter
    (fun x ->
      Alcotest.(check (array int))
        (Printf.sprintf "own row of %d" x)
        (Protocol.crt_row a x x) (Protocol.crt_row b x x);
      List.iter
        (fun m ->
          Alcotest.(check (array int))
            (Printf.sprintf "column %d->%d" x m)
            (Protocol.crt_row a x m) (Protocol.crt_row b x m))
        (Ensemble.anchor_neighbors ens x))
    (Ensemble.members ens)

(* the detector needs rounds of silence before it acts, and the protocol
   looks quiescent in the blind window right after a crash — keep driving
   until [until_repairs] repairs have happened AND the system is quiet *)
let drive_until_healed ?(cap = 300) p ~until_repairs =
  let rec go i =
    if i >= cap then Alcotest.failf "no quiescence within %d rounds" cap
    else begin
      let active = Protocol.run_round p in
      if active || Protocol.repairs_run p < until_repairs then go (i + 1) else i + 1
    end
  in
  go 0

(* a member of the primary anchor overlay that has both a parent and
   children: its death orphans a subtree *)
let find_midtree_victim ens =
  let anchor = Framework.anchor (Ensemble.primary ens) in
  match
    List.find_opt
      (fun h -> Anchor.parent anchor h <> None && Anchor.children anchor h <> [])
      (Ensemble.members ens)
  with
  | Some h -> h
  | None -> Alcotest.fail "no mid-tree host found"

let test_detector_clean_run_quiet () =
  (* on a healthy network the detector must never fire: same fixed point
     as a detector-less run, zero suspicions, and clean quiescence even
     though heartbeats keep flowing *)
  let ds = small_dataset ~seed:87 20 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let make ?detector () =
    let ens = Ensemble.build ~rng:(Rng.create 88) space in
    let p = Protocol.create ~rng:(Rng.create 89) ~n_cut:4 ?detector ~classes ens in
    let rounds = Protocol.run_aggregation ~max_rounds:600 p in
    (ens, p, rounds)
  in
  let ens, plain, _ = make () in
  let _, detected, rounds = make ~detector:Detector.default_config () in
  Alcotest.(check bool) "converged with detector" true (rounds < 600);
  Alcotest.(check bool) "stays quiescent" false (Protocol.run_round detected);
  check_same_fixpoint ~n:20 ens plain detected;
  Alcotest.(check bool) "heartbeats flowed" true (Protocol.heartbeats_sent detected > 0);
  Alcotest.(check int) "no repairs" 0 (Protocol.repairs_run detected);
  (match Protocol.detector detected with
  | None -> Alcotest.fail "detector missing"
  | Some d -> Alcotest.(check bool) "edges watched" true (Detector.watched d > 0));
  Alcotest.(check int) "nothing given up" 0 (Protocol.give_ups detected)

let test_detector_heals_crash () =
  (* kill a mid-tree node silently: the detector must suspect, confirm,
     evict it and regraft its orphans to the grandparent, and incremental
     re-aggregation must land on the fixed point a fresh protocol
     computes on the repaired overlay *)
  let ds = small_dataset ~seed:90 20 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let ens = Ensemble.build ~rng:(Rng.create 91) space in
  let trace = Trace.create () in
  let p =
    Protocol.create ~rng:(Rng.create 92) ~n_cut:4 ~detector:Detector.default_config
      ~trace ~classes ens
  in
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p in
  let victim = find_midtree_victim ens in
  let anchor = Framework.anchor (Ensemble.primary ens) in
  let orphans = List.sort compare (Anchor.children anchor victim) in
  let grandparent =
    match Anchor.parent anchor victim with
    | Some g -> g
    | None -> Alcotest.fail "victim should have a parent"
  in
  Protocol.crash_host p victim;
  let (_ : int) = drive_until_healed p ~until_repairs:1 in
  Alcotest.(check int) "one repair" 1 (Protocol.repairs_run p);
  Alcotest.(check int) "all orphans regrafted"
    (List.length orphans)
    (Protocol.regrafts_applied p);
  Alcotest.(check bool) "victim evicted" false (Ensemble.is_member ens victim);
  List.iter
    (fun c ->
      Alcotest.(check (option int))
        (Printf.sprintf "orphan %d under grandparent" c)
        (Some grandparent) (Anchor.parent anchor c))
    orphans;
  Alcotest.(check int) "repair bumped the epoch" 1 (Protocol.epoch p);
  (* the healed state is the fixed point, not an approximation: a fresh
     protocol on the already-repaired ensemble must agree everywhere *)
  let fresh = Protocol.create ~rng:(Rng.create 93) ~n_cut:4 ~classes ens in
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 fresh in
  check_members_fixpoint ens fresh p;
  (* the failure story is visible in the trace *)
  let events = Trace.events trace in
  let has f = List.exists f events in
  Alcotest.(check bool) "crash traced" true
    (has (function Trace.Crash { node; _ } -> node = victim | _ -> false));
  Alcotest.(check bool) "suspicion traced" true
    (has (function Trace.Suspect { node; _ } -> node = victim | _ -> false));
  Alcotest.(check bool) "confirmation traced" true
    (has (function Trace.Confirm_dead { node; _ } -> node = victim | _ -> false));
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "regraft of %d traced" c)
        true
        (has (function
          | Trace.Regraft { node; new_parent; _ } -> node = c && new_parent = grandparent
          | _ -> false)))
    orphans

let test_eviction_drives_index_delta () =
  (* the wiring Dynamic relies on: a clustering index registered through
     [Protocol.set_on_evict] follows a detector-driven eviction as an
     incremental delta and matches a fresh build over the survivors *)
  let ds = small_dataset ~seed:97 20 in
  let space = Bwc_metric.Space.cached (Bwc_dataset.Dataset.metric ds) in
  let classes = Classes.of_percentiles ~count:5 ds in
  let ens = Ensemble.build ~rng:(Rng.create 98) space in
  let p =
    Protocol.create ~rng:(Rng.create 99) ~n_cut:4 ~detector:Detector.default_config
      ~classes ens
  in
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p in
  let idx = Find_cluster.Index.build_subset space (Ensemble.members ens) in
  Protocol.set_on_evict p (fun h ->
      if Find_cluster.Index.is_member idx h then Find_cluster.Index.remove_host idx h);
  let victim = find_midtree_victim ens in
  Protocol.crash_host p victim;
  let (_ : int) = drive_until_healed p ~until_repairs:1 in
  Alcotest.(check bool) "victim left the index" false
    (Find_cluster.Index.is_member idx victim);
  let fresh = Find_cluster.Index.build_subset space (Ensemble.members ens) in
  Alcotest.(check (list int)) "members match survivors"
    (Find_cluster.Index.members fresh)
    (Find_cluster.Index.members idx);
  let ls = [| 10.0; 100.0; 1000.0 |] in
  Alcotest.(check (array int)) "answers match a fresh build"
    (Find_cluster.Index.max_sizes fresh ~ls)
    (Find_cluster.Index.max_sizes idx ~ls)

let test_incremental_repair_matches_full () =
  (* the tentpole property: manual incremental repair reaches the same
     fixed point as eviction + full re-propagation, in fewer messages *)
  let ds = small_dataset ~seed:94 24 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let make () =
    let ens = Ensemble.build ~rng:(Rng.create 95) space in
    let p = Protocol.create ~rng:(Rng.create 96) ~n_cut:4 ~classes ens in
    let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p in
    (ens, p)
  in
  let ens_inc, p_inc = make () in
  let ens_full, p_full = make () in
  let victim = find_midtree_victim ens_inc in
  (* incremental arm: evict + heal locally, reconverge *)
  Protocol.crash_host p_inc victim;
  let msgs0_inc = Protocol.messages_sent p_inc in
  Protocol.repair p_inc ~dead:[ victim ];
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p_inc in
  let repair_msgs = Protocol.messages_sent p_inc - msgs0_inc in
  (* full arm: same eviction, then rebuild every slot and repropagate *)
  Protocol.crash_host p_full victim;
  let msgs0_full = Protocol.messages_sent p_full in
  let (_ : (int * int) list) = Ensemble.evict_host ens_full victim in
  Protocol.refresh_topology p_full;
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p_full in
  let full_msgs = Protocol.messages_sent p_full - msgs0_full in
  (* both arms repaired the overlay identically (the nearest-live-ancestor
     rule does not depend on how the repair was driven) *)
  let edges ens =
    let anchor = Framework.anchor (Ensemble.primary ens) in
    List.sort compare
      (List.concat_map
         (fun h -> List.map (fun c -> (h, c)) (Anchor.children anchor h))
         (Ensemble.members ens))
  in
  Alcotest.(check (list (pair int int))) "same repaired overlay" (edges ens_full)
    (edges ens_inc);
  check_members_fixpoint ens_inc p_full p_inc;
  Alcotest.(check bool)
    (Printf.sprintf "incremental cheaper (%d vs %d msgs)" repair_msgs full_msgs)
    true
    (repair_msgs < full_msgs)

let test_routing_detours_suspects () =
  (* while a node is suspected but not yet confirmed, local node search
     must stop handing it out (and queries prefer healthy directions) *)
  let ds = small_dataset ~seed:97 20 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let ens = Ensemble.build ~rng:(Rng.create 98) space in
  let p =
    Protocol.create ~rng:(Rng.create 99) ~n_cut:4 ~detector:Detector.default_config
      ~classes ens
  in
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p in
  let victim = find_midtree_victim ens in
  let watcher =
    match Ensemble.anchor_neighbors ens victim with
    | w :: _ -> w
    | [] -> Alcotest.fail "victim has no neighbors"
  in
  Alcotest.(check bool) "not suspected while alive" false
    (Protocol.routing_suspects p ~at:watcher victim);
  Protocol.crash_host p victim;
  (* run rounds until suspicion sets in, stopping before confirmation *)
  let d =
    match Protocol.detector p with
    | Some d -> d
    | None -> Alcotest.fail "detector missing"
  in
  let rec wait i =
    if i > 2 * (Detector.config d).Detector.suspect_after + 4 then
      Alcotest.fail "never suspected"
    else if Detector.state d ~watcher ~peer:victim <> Detector.Suspected then begin
      let (_ : bool) = Protocol.run_round p in
      wait (i + 1)
    end
  in
  wait 0;
  Alcotest.(check int) "suspected, not yet repaired" 0 (Protocol.repairs_run p);
  Alcotest.(check bool) "suspect flagged for routing" true
    (Protocol.routing_suspects p ~at:watcher victim);
  (* node search at the watcher: make every live member a target, so the
     only possible answer would be the suspected victim — it must refuse *)
  let targets =
    List.filter_map
      (fun h ->
        if h = victim then None
        else Some (Node_info.make ~host:h ~labels:(Ensemble.labels ens h)))
      (Ensemble.members ens)
  in
  Alcotest.(check bool) "node search skips the suspect" true
    (Bwc_core.Node_search.local p ~at:watcher ~targets = None)

let test_detector_config_validation () =
  (* satellite coverage: every config field boundary.  The thresholds are
     ordered (heartbeat_every + 1 < suspect_after < confirm_after) so a
     single lost heartbeat can never look like a death *)
  let mk ?(heartbeat_every = 2) ?(suspect_after = 6) ?(confirm_after = 10)
      ?(jitter = 0) () =
    { Detector.heartbeat_every; suspect_after; confirm_after; jitter }
  in
  let rejects name cfg =
    match Detector.create ~rng:(Rng.create 1) cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: invalid config accepted" name
  in
  rejects "zero heartbeat interval" (mk ~heartbeat_every:0 ());
  rejects "negative heartbeat interval" (mk ~heartbeat_every:(-3) ());
  rejects "zero suspect_after" (mk ~suspect_after:0 ());
  rejects "negative suspect_after" (mk ~suspect_after:(-1) ());
  rejects "suspect_after = heartbeat_every + 1"
    (mk ~heartbeat_every:2 ~suspect_after:3 ());
  rejects "confirm_after = suspect_after" (mk ~suspect_after:6 ~confirm_after:6 ());
  rejects "confirm_after < suspect_after" (mk ~suspect_after:6 ~confirm_after:5 ());
  rejects "negative jitter" (mk ~jitter:(-1) ());
  (* the tightest ordering that satisfies every constraint is accepted *)
  let d =
    Detector.create ~rng:(Rng.create 1)
      (mk ~heartbeat_every:1 ~suspect_after:3 ~confirm_after:4 ())
  in
  Alcotest.(check int) "tightest valid config accepted" 1
    (Detector.config d).Detector.heartbeat_every;
  (* the System facade forwards the config to the same validation *)
  let ds = small_dataset ~seed:44 10 in
  match Bwc_core.System.create ~seed:45 ~detector:(mk ~confirm_after:3 ()) ds with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "System.create accepted a bad detector config"

let test_epoch_monotone_across_repairs () =
  (* satellite coverage: the repair epoch over repeated crash/repair
     cycles.  It must bump exactly once per repair batch, never stall and
     never wrap, and it must survive a dump/of_dump round trip so a
     restart cannot resurrect pre-repair link state *)
  let ds = small_dataset ~seed:93 24 in
  let space = Bwc_dataset.Dataset.metric ds in
  let classes = Classes.of_percentiles ~count:5 ds in
  let ens = Ensemble.build ~rng:(Rng.create 94) space in
  let p =
    Protocol.create ~rng:(Rng.create 95) ~n_cut:4
      ~detector:Detector.default_config ~classes ens
  in
  let (_ : int) = Protocol.run_aggregation ~max_rounds:600 p in
  Alcotest.(check int) "epoch starts at 0" 0 (Protocol.epoch p);
  let cycles = 4 in
  let last = ref 0 in
  for i = 1 to cycles do
    Protocol.crash_host p (find_midtree_victim ens);
    let (_ : int) = drive_until_healed p ~until_repairs:i in
    let e = Protocol.epoch p in
    Alcotest.(check bool)
      (Printf.sprintf "epoch grew at cycle %d" i)
      true (e > !last);
    last := e
  done;
  Alcotest.(check int) "one epoch bump per repair batch" cycles (Protocol.epoch p);
  Alcotest.(check int) "all victims repaired" cycles (Protocol.repairs_run p);
  (* a query at a surviving member still routes on the repaired overlay *)
  let survivor = List.hd (Ensemble.members ens) in
  let (_ : Query.result) = Protocol.query p ~at:survivor ~k:2 ~cls:0 in
  (* the epoch clock is part of the durable state *)
  let p2 = Protocol.of_dump ~classes ens (Protocol.dump p) in
  Alcotest.(check int) "epoch preserved by dump round trip" (Protocol.epoch p)
    (Protocol.epoch p2)

let test_dynamic_empty_members_query () =
  (* satellite regression: a query against an empty membership must be a
     clean miss, not an Rng.choose crash *)
  let ds = small_dataset ~seed:100 8 in
  let dyn = Bwc_core.Dynamic.create ~seed:101 ~initial_members:[] ds in
  Alcotest.(check int) "no members" 0 (Bwc_core.Dynamic.member_count dyn);
  let r = Bwc_core.Dynamic.query dyn ~k:2 ~b:10.0 in
  Alcotest.(check bool) "miss" false (Query.found r);
  Alcotest.(check (list int)) "empty path" [] r.Query.path;
  Alcotest.(check int) "no hops" 0 r.Query.hops

(* ----- Algorithm 4: query routing ----- *)

let test_query_finds_promised_clusters () =
  let _, _, protocol = build_protocol ~seed:12 26 in
  let classes = Protocol.classes protocol in
  for x = 0 to 25 do
    for cls = 0 to Classes.count classes - 1 do
      let promised = Protocol.max_reachable protocol x ~cls in
      if promised >= 2 then begin
        let r = Protocol.query protocol ~at:x ~k:promised ~cls in
        match r.Query.cluster with
        | Some cluster ->
            Alcotest.(check int) "cluster size" promised (List.length cluster)
        | None ->
            Alcotest.failf "host %d promised k=%d for class %d but query missed" x
              promised cls
      end
    done
  done

let test_query_miss_beyond_promise () =
  let _, _, protocol = build_protocol ~seed:13 20 in
  let classes = Protocol.classes protocol in
  for x = 0 to 19 do
    let cls = Classes.count classes - 1 in
    let promised = Protocol.max_reachable protocol x ~cls in
    let r = Protocol.query protocol ~at:x ~k:(promised + 1) ~cls in
    (* the aggregated maxima are exact (Theorem 3.3), so k beyond the
       promise must miss *)
    if Query.found r then Alcotest.failf "host %d found more than promised" x
  done

let test_query_cluster_satisfies_predicted_constraint () =
  let _, ens, protocol = build_protocol ~seed:14 26 in
  let classes = Protocol.classes protocol in
  let rng = Rng.create 15 in
  for _ = 1 to 60 do
    let at = Rng.int rng 26 in
    let cls = Rng.int rng (Classes.count classes) in
    let r = Protocol.query protocol ~at ~k:3 ~cls in
    match r.Query.cluster with
    | None -> ()
    | Some cluster ->
        let l = Classes.distance classes cls in
        List.iteri
          (fun i x ->
            List.iteri
              (fun j y ->
                if j > i then begin
                  let d = Ensemble.label_dist (Ensemble.labels ens x) (Ensemble.labels ens y) in
                  if d > l *. (1.0 +. 1e-6) then
                    Alcotest.failf "pair (%d,%d) predicted %.3f > l %.3f" x y d l
                end)
              cluster)
          cluster
  done

let test_query_hops_bounded () =
  let _, ens, protocol = build_protocol ~seed:16 30 in
  let anchor_tree = Bwc_predtree.Framework.anchor (Ensemble.primary ens) in
  let bound = 2 * Anchor.max_depth anchor_tree in
  let rng = Rng.create 17 in
  let classes = Protocol.classes protocol in
  for _ = 1 to 100 do
    let at = Rng.int rng 30 in
    let cls = Rng.int rng (Classes.count classes) in
    let r = Protocol.query protocol ~at ~k:(2 + Rng.int rng 8) ~cls in
    if r.Query.hops > bound then Alcotest.failf "hops %d exceed bound %d" r.Query.hops bound;
    (* the path is simple: no host visited twice *)
    let sorted = List.sort_uniq compare r.Query.path in
    Alcotest.(check int) "simple path" (List.length r.Query.path) (List.length sorted)
  done

let test_decentral_rr_bounded_by_central () =
  let ds = small_dataset ~seed:18 40 in
  let sys = System.create ~seed:19 ds in
  let rng = Rng.create 20 in
  let lo, hi = Bwc_dataset.Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  for _ = 1 to 80 do
    let k = 2 + Rng.int rng 20 in
    let b = Rng.uniform rng lo hi in
    let dec = Query.found (System.query sys ~k ~b) in
    let cen = System.query_centralized sys ~k ~b <> None in
    (* decentralized spaces are subsets of the full space *)
    if dec && not cen then Alcotest.fail "decentralized found what centralized cannot"
  done

(* ----- Query module ----- *)

let test_query_constructors () =
  let q = Query.of_bandwidth ~c:1000.0 ~k:5 40.0 in
  Alcotest.(check (float 1e-9)) "l" 25.0 q.Query.l;
  Alcotest.(check (float 1e-9)) "roundtrip" 40.0 (Query.bandwidth_of ~c:1000.0 q);
  Alcotest.(check bool) "k<2 rejected" true
    (try
       ignore (Query.make ~k:1 ~l:1.0);
       false
     with Invalid_argument _ -> true)

(* ----- Clique oracle ----- *)

(* brute force max clique on tiny graphs *)
let brute_max_clique ~adj ~n =
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let vertices = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    let is_clique =
      List.for_all
        (fun u -> List.for_all (fun v -> u = v || adj u v) vertices)
        vertices
    in
    if is_clique then best := Stdlib.max !best (List.length vertices)
  done;
  !best

let test_clique_vs_brute () =
  let rng = Rng.create 40 in
  for _ = 1 to 60 do
    let n = 3 + Rng.int rng 8 in
    let edges = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.float rng 1.0 < 0.5 then begin
          edges.(i).(j) <- true;
          edges.(j).(i) <- true
        end
      done
    done;
    let adj i j = i <> j && edges.(i).(j) in
    let expected = Stdlib.max 1 (brute_max_clique ~adj ~n) in
    (match Bwc_core.Clique.max_clique_size ~adj ~n () with
    | Ok got -> if got <> expected then Alcotest.failf "max clique %d, brute %d" got expected
    | Error (`Budget _) -> Alcotest.fail "budget too small for tiny graph");
    for k = 2 to n do
      match Bwc_core.Clique.exists_clique ~adj ~n ~k () with
      | Bwc_core.Clique.Feasible clique ->
          if k > expected then Alcotest.failf "claimed clique of %d > max %d" k expected;
          Alcotest.(check int) "clique size" k (List.length clique);
          List.iter
            (fun u ->
              List.iter
                (fun v -> if u <> v && not (adj u v) then Alcotest.fail "not a clique")
                clique)
            clique
      | Bwc_core.Clique.Infeasible ->
          if k <= expected then Alcotest.failf "missed clique of %d (max %d)" k expected
      | Bwc_core.Clique.Unknown -> Alcotest.fail "budget too small for tiny graph"
    done
  done

let test_clique_budget_exhaustion () =
  (* a complete graph with a tiny budget must report Unknown, not hang *)
  let adj i j = i <> j in
  (match Bwc_core.Clique.exists_clique ~budget:3 ~adj ~n:40 ~k:40 () with
  | Bwc_core.Clique.Unknown -> ()
  | Bwc_core.Clique.Feasible _ | Bwc_core.Clique.Infeasible ->
      Alcotest.fail "expected budget exhaustion");
  (* k beyond the vertex count is decided instantly *)
  match Bwc_core.Clique.exists_clique ~budget:3 ~adj ~n:40 ~k:41 () with
  | Bwc_core.Clique.Infeasible -> ()
  | Bwc_core.Clique.Feasible _ | Bwc_core.Clique.Unknown ->
      Alcotest.fail "k > n must be infeasible"

let test_clique_threshold_matches_space () =
  let space = tree_space ~seed:41 10 in
  let values = Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space) in
  let l = Bwc_stats.Summary.percentile values 50.0 in
  (* exact oracle feasibility must match the brute-force subset search *)
  for k = 2 to 6 do
    let oracle =
      match Bwc_core.Clique.exists_cluster space ~k ~l with
      | Bwc_core.Clique.Feasible _ -> true
      | Bwc_core.Clique.Infeasible -> false
      | Bwc_core.Clique.Unknown -> Alcotest.fail "budget"
    in
    Alcotest.(check bool) "oracle = brute" (brute_exists space k l) oracle
  done

(* ----- Dynamic membership ----- *)

let test_dynamic_join_leave () =
  let ds = small_dataset ~seed:42 30 in
  let dyn =
    Bwc_core.Dynamic.create ~seed:43 ~initial_members:(List.init 20 Fun.id) ds
  in
  Alcotest.(check int) "initial" 20 (Bwc_core.Dynamic.member_count dyn);
  Bwc_core.Dynamic.join dyn 25;
  Alcotest.(check bool) "joined" true (Bwc_core.Dynamic.is_member dyn 25);
  Alcotest.(check int) "count up" 21 (Bwc_core.Dynamic.member_count dyn);
  Bwc_core.Dynamic.leave dyn 5;
  Alcotest.(check bool) "left" false (Bwc_core.Dynamic.is_member dyn 5);
  (* queries keep working and never include non-members *)
  let r = Bwc_core.Dynamic.query dyn ~k:4 ~b:25.0 in
  (match r.Query.cluster with
  | Some cluster ->
      List.iter
        (fun h ->
          if not (Bwc_core.Dynamic.is_member dyn h) then
            Alcotest.failf "non-member %d in cluster" h)
        cluster
  | None -> Alcotest.fail "easy query after churn must succeed");
  (* the protocol refuses queries at departed hosts *)
  Alcotest.(check bool) "departed host rejected" true
    (try
       ignore (Bwc_core.Dynamic.query ~at:5 dyn ~k:4 ~b:25.0);
       false
     with Invalid_argument _ -> true)

let test_dynamic_maintained_index () =
  let ds = small_dataset ~seed:52 24 in
  let dyn =
    Bwc_core.Dynamic.create ~seed:53 ~initial_members:(List.init 16 Fun.id) ds
  in
  let check_tracks () =
    Alcotest.(check (list int)) "index tracks membership"
      (List.sort compare (Bwc_core.Dynamic.members dyn))
      (Find_cluster.Index.members (Bwc_core.Dynamic.index dyn))
  in
  (* materialise the index, then churn: joins and leaves must flow into
     it as deltas *)
  check_tracks ();
  Bwc_core.Dynamic.join dyn 20;
  Bwc_core.Dynamic.leave dyn 3;
  Bwc_core.Dynamic.apply dyn [ Bwc_sim.Churn.Join 21; Bwc_sim.Churn.Leave 7 ];
  check_tracks ();
  (* the centralized query path answers from the maintained index with a
     cluster that satisfies the converted bandwidth constraint *)
  let b = 25.0 in
  match Bwc_core.Dynamic.query_centralized dyn ~k:4 ~b with
  | None -> Alcotest.fail "easy centralized query must succeed"
  | Some cluster ->
      Alcotest.(check int) "size" 4 (List.length cluster);
      List.iter
        (fun h ->
          if not (Bwc_core.Dynamic.is_member dyn h) then
            Alcotest.failf "non-member %d in centralized cluster" h)
        cluster;
      let space = Bwc_dataset.Dataset.metric ds in
      let l = Bwc_metric.Bandwidth.to_distance b in
      Alcotest.(check bool) "diameter within constraint" true
        (Space.diameter space cluster <= l *. (1.0 +. Find_cluster.diam_tol))

let test_dynamic_theorem_3_3_after_churn () =
  (* aggregated CRT entries stay exact on the surviving overlay *)
  let ds = small_dataset ~seed:44 24 in
  let dyn = Bwc_core.Dynamic.create ~seed:45 ds in
  Bwc_core.Dynamic.apply dyn
    [ Bwc_sim.Churn.Leave 3; Bwc_sim.Churn.Leave 11; Bwc_sim.Churn.Leave 17 ];
  let protocol = Bwc_core.Dynamic.protocol dyn in
  let ens = Bwc_core.Dynamic.ensemble dyn in
  let anchor_tree = Bwc_predtree.Framework.anchor (Ensemble.primary ens) in
  let classes = Bwc_core.Dynamic.classes dyn in
  List.iter
    (fun x ->
      List.iter
        (fun m ->
          let got = Protocol.crt_row protocol x m in
          let u = reachable_via anchor_tree ~x ~m in
          for cls = 0 to Classes.count classes - 1 do
            let expected =
              List.fold_left
                (fun acc w -> Stdlib.max acc (Protocol.crt_row protocol w w).(cls))
                0 u
            in
            if got.(cls) <> expected then
              Alcotest.failf "stale CRT after churn at %d->%d" x m
          done)
        (Ensemble.anchor_neighbors ens x))
    (Bwc_core.Dynamic.members dyn)

let test_dynamic_random_churn_invariants () =
  let ds = small_dataset ~seed:46 25 in
  let dyn = Bwc_core.Dynamic.create ~seed:47 ds in
  let churn =
    Bwc_sim.Churn.random ~rng:(Rng.create 48) ~n:25 ~rounds:5 ~leave_prob:0.15
      ~rejoin_prob:0.4
  in
  Bwc_core.Dynamic.run_scenario dyn ~churn ~rounds:5 ~on_round:(fun _ dyn ->
      let members = Bwc_core.Dynamic.members dyn in
      Alcotest.(check bool) "nonempty" true (members <> []);
      (* the primary prediction tree stays structurally sound *)
      let tree =
        Bwc_predtree.Framework.tree (Ensemble.primary (Bwc_core.Dynamic.ensemble dyn))
      in
      Alcotest.(check bool) "tree invariant" true (Bwc_predtree.Tree.is_tree tree);
      (* label arity stays aligned across members *)
      let ens = Bwc_core.Dynamic.ensemble dyn in
      List.iter
        (fun h ->
          Alcotest.(check int) "label arity" (Ensemble.size ens)
            (Array.length (Ensemble.labels ens h)))
        members)

let test_framework_add_remove_roundtrip () =
  let space = tree_space ~seed:49 16 in
  let fw =
    Bwc_predtree.Framework.build ~rng:(Rng.create 50)
      ~members:(List.init 12 Fun.id) space
  in
  Alcotest.(check int) "partial build" 12 (Bwc_predtree.Framework.size fw);
  Bwc_predtree.Framework.add_host ~rng:(Rng.create 51) fw 14;
  Alcotest.(check bool) "added" true (Bwc_predtree.Framework.is_member fw 14);
  (* distances involving the new host are defined and consistent *)
  let tree = Bwc_predtree.Framework.tree fw in
  List.iter
    (fun h ->
      if h <> 14 then begin
        let via_label = Bwc_predtree.Framework.predicted fw 14 h in
        let via_tree = Bwc_predtree.Tree.host_dist tree 14 h in
        if not (feq ~eps:1e-6 via_label via_tree) then Alcotest.fail "label mismatch"
      end)
    (Bwc_predtree.Framework.members fw);
  Bwc_predtree.Framework.remove_host ~rng:(Rng.create 52) fw 14;
  Alcotest.(check bool) "removed" false (Bwc_predtree.Framework.is_member fw 14);
  Alcotest.(check int) "count restored" 12 (Bwc_predtree.Framework.size fw)

(* ----- Node search ----- *)

let test_node_search_brute_force () =
  let space = tree_space ~seed:21 15 in
  let targets = [ 2; 7; 11 ] in
  match Bwc_core.Node_search.best space ~targets ~exclude:[] with
  | None -> Alcotest.fail "candidates exist"
  | Some (best, radius) ->
      Alcotest.(check bool) "not a target" false (List.mem best targets);
      let radius_of x =
        List.fold_left (fun acc s -> Float.max acc (space.Space.dist x s)) 0.0 targets
      in
      Alcotest.(check bool) "radius consistent" true (feq radius (radius_of best));
      for x = 0 to 14 do
        if not (List.mem x targets) && radius_of x +. 1e-9 < radius then
          Alcotest.failf "host %d is better" x
      done

let test_node_search_empty_targets () =
  let space = tree_space ~seed:22 8 in
  Alcotest.(check bool) "none" true
    (Bwc_core.Node_search.best space ~targets:[] ~exclude:[] = None)

(* ----- System facade ----- *)

let test_system_end_to_end () =
  let ds = small_dataset ~seed:23 50 in
  let sys = System.create ~seed:24 ds in
  Alcotest.(check int) "size" 50 (System.size sys);
  let r = System.query sys ~at:3 ~k:5 ~b:30.0 in
  (match r.Query.cluster with
  | Some cluster ->
      Alcotest.(check int) "k" 5 (List.length cluster);
      (* verify_cluster agrees with a manual recount *)
      let manual = ref 0 in
      List.iteri
        (fun i x ->
          List.iteri
            (fun j y -> if j > i && System.real_bw sys x y < 30.0 then incr manual)
            cluster)
        cluster;
      Alcotest.(check int) "verify_cluster" !manual
        (List.length (System.verify_cluster sys ~b:30.0 cluster))
  | None -> Alcotest.fail "easy query must succeed");
  (* predicted_bw is symmetric with infinite diagonal *)
  Alcotest.(check bool) "pred symmetric" true
    (feq (System.predicted_bw sys 1 2) (System.predicted_bw sys 2 1));
  Alcotest.(check bool) "pred diagonal" true (Float.equal (System.predicted_bw sys 4 4) Float.infinity)

let test_system_deterministic () =
  let ds = small_dataset ~seed:25 30 in
  let a = System.create ~seed:26 ds in
  let b = System.create ~seed:26 ds in
  for i = 0 to 29 do
    for j = i + 1 to 29 do
      if not (feq (System.predicted_bw a i j) (System.predicted_bw b i j)) then
        Alcotest.fail "same seed, same predictions"
    done
  done

let test_system_refresh () =
  let ds = small_dataset ~seed:27 25 in
  let sys = System.create ~seed:28 ds in
  let sys' = System.refresh ~drift:0.2 ~seed:29 sys in
  Alcotest.(check int) "size preserved" (System.size sys) (System.size sys');
  let r = System.query sys' ~k:4 ~b:25.0 in
  Alcotest.(check bool) "refreshed system answers" true (Query.found r)

let test_protocol_refresh_topology () =
  let _, _, protocol = build_protocol ~seed:30 18 in
  Protocol.refresh_topology protocol;
  let rounds = Protocol.run_aggregation protocol in
  Alcotest.(check bool) "reconverges" true (rounds > 0);
  (* quiescent again afterwards *)
  Alcotest.(check bool) "stable" false (Protocol.run_round protocol)

(* ----- end-to-end exactness on perfect tree metrics ----- *)

let test_exact_pipeline_zero_wpr () =
  (* access-link dataset = perfect tree metric; exact-mode single-tree
     framework embeds it losslessly; therefore every returned cluster
     must satisfy the real constraint (WPR = 0) and the centralized
     search must agree with brute force feasibility. *)
  let ds = Bwc_dataset.Access_link.generate ~rng:(Rng.create 60) ~n:40 () in
  let sys =
    System.create ~seed:61 ~mode:Bwc_predtree.Framework.centralized_mode
      ~ensemble_size:1 ds
  in
  let rng = Rng.create 62 in
  let lo, hi = Bwc_dataset.Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  for _ = 1 to 60 do
    let b = Rng.uniform rng lo hi in
    let k = 2 + Rng.int rng 8 in
    (match System.query_centralized sys ~k ~b with
    | Some cluster ->
        Alcotest.(check int) "no real violations" 0
          (List.length (System.verify_cluster sys ~b cluster))
    | None -> ());
    match (System.query sys ~k ~b).Query.cluster with
    | Some cluster ->
        Alcotest.(check int) "decentral: no real violations" 0
          (List.length (System.verify_cluster sys ~b cluster))
    | None -> ()
  done

let test_minimal_system () =
  (* the smallest meaningful system: two hosts *)
  let bwm = Bwc_metric.Dmatrix.create 2 ~diag:Float.infinity ~off:50.0 in
  let ds = Bwc_dataset.Dataset.make ~name:"pair" bwm in
  let sys = System.create ~seed:63 ~class_count:2 ds in
  let r = System.query sys ~at:0 ~k:2 ~b:30.0 in
  (match r.Query.cluster with
  | Some [ _; _ ] -> ()
  | Some _ | None -> Alcotest.fail "the pair itself is the cluster");
  Alcotest.(check bool) "infeasible beyond classes" true
    (not (Query.found (System.query sys ~at:1 ~k:2 ~b:500.0)))

let test_protocol_single_class () =
  let ds = small_dataset ~seed:64 15 in
  let sys = System.create ~seed:65 ~class_count:1 ds in
  Alcotest.(check int) "one class" 1 (Classes.count (System.classes sys));
  let r = System.query sys ~k:3 ~b:1.0 in
  Alcotest.(check bool) "low constraint maps to the single class" true (Query.found r)

let test_query_path_starts_at_submission () =
  let _, _, protocol = build_protocol ~seed:66 20 in
  let r = Protocol.query protocol ~at:7 ~k:2 ~cls:0 in
  match r.Query.path with
  | first :: _ -> Alcotest.(check int) "starts at submission" 7 first
  | [] -> Alcotest.fail "path cannot be empty"

(* ----- qcheck ----- *)

let qcheck_protocol_tests =
  let open QCheck in
  [
    Test.make ~name:"routing invariants hold under random link delays" ~count:8
      (pair (int_range 10 20) (int_range 0 1000))
      (fun (n, seed) ->
        let ds = small_dataset ~seed:(seed + 5000) n in
        let space = Bwc_dataset.Dataset.metric ds in
        let ens = Ensemble.build ~rng:(Rng.create seed) space in
        let classes = Classes.of_percentiles ~count:4 ds in
        let delay_rng = Rng.create (seed + 1) in
        let delays = Hashtbl.create 32 in
        let edge_delay ~src ~dst =
          match Hashtbl.find_opt delays (src, dst) with
          | Some d -> d
          | None ->
              let d = 1 + Rng.int delay_rng 3 in
              Hashtbl.add delays (src, dst) d;
              d
        in
        let protocol =
          Protocol.create ~rng:(Rng.create (seed + 2)) ~n_cut:4 ~edge_delay ~classes ens
        in
        let (_ : int) = Protocol.run_aggregation ~max_rounds:600 protocol in
        (* every promised cluster is found, nothing beyond is *)
        let ok = ref true in
        for x = 0 to n - 1 do
          for cls = 0 to Classes.count classes - 1 do
            let promised = Protocol.max_reachable protocol x ~cls in
            if promised >= 2 then begin
              let r = Protocol.query protocol ~at:x ~k:promised ~cls in
              if not (Bwc_core.Query.found r) then ok := false
            end;
            if
              Bwc_core.Query.found
                (Protocol.query protocol ~at:x ~k:(promised + 1) ~cls)
            then ok := false
          done
        done;
        !ok);
  ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Theorem 3.1 on random tree metrics" ~count:20
      (pair (int_range 5 14) (int_range 0 10_000))
      (fun (n, seed) ->
        let space = tree_space ~seed n in
        let ok = ref true in
        for p = 0 to n - 1 do
          for q = p + 1 to n - 1 do
            let s = Find_cluster.members space ~p ~q in
            if not (feq ~eps:1e-6 (Space.diameter space s) (space.Space.dist p q)) then
              ok := false
          done
        done;
        !ok);
    Test.make ~name:"Algorithm 1 feasibility = brute force (tree metrics)" ~count:20
      (pair (int_range 5 9) (int_range 0 10_000))
      (fun (n, seed) ->
        let space = tree_space ~seed n in
        let values =
          Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space)
        in
        let l = Bwc_stats.Summary.percentile values 60.0 in
        let ok = ref true in
        for k = 2 to n - 1 do
          if (Find_cluster.find space ~k ~l <> None) <> brute_exists space k l then
            ok := false
        done;
        !ok);
    Test.make ~name:"found clusters always satisfy the constraint" ~count:30
      (pair (int_range 6 16) (int_range 0 10_000))
      (fun (n, seed) ->
        let space = tree_space ~seed n in
        let values =
          Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space)
        in
        let l = Bwc_stats.Summary.percentile values 70.0 in
        match Find_cluster.find space ~k:4 ~l with
        | None -> true
        | Some cluster -> Space.diameter space cluster <= l *. (1.0 +. 1e-6));
  ]

let () =
  Alcotest.run "bwc_core"
    [
      ( "algorithm1",
        [
          Alcotest.test_case "members definition" `Quick test_members_definition;
          Alcotest.test_case "Theorem 3.1 diameter" `Quick test_theorem_3_1_diameter;
          Alcotest.test_case "valid cluster" `Quick test_find_returns_valid_cluster;
          Alcotest.test_case "feasibility vs brute force" `Quick test_find_vs_brute_force;
          Alcotest.test_case "max size vs brute force" `Quick test_max_size_vs_brute_force;
          Alcotest.test_case "infeasible cases" `Quick test_find_infeasible;
          Alcotest.test_case "index consistency" `Quick test_index_consistency;
          Alcotest.test_case "index max_sizes" `Quick test_index_max_sizes_vector;
          Alcotest.test_case "index incremental grow/shrink" `Quick
            test_index_incremental_grow_shrink;
          Alcotest.test_case "index delta contract" `Quick test_index_delta_contract;
        ] );
      ( "classes",
        [
          Alcotest.test_case "mapping" `Quick test_classes_mapping;
          Alcotest.test_case "guarantee" `Quick test_classes_guarantee;
          Alcotest.test_case "of_percentiles" `Quick test_classes_of_percentiles;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "Theorem 3.2 (aggrNode)" `Quick test_theorem_3_2_aggr_node;
          Alcotest.test_case "Theorem 3.2 weak form (ensemble)" `Quick
            test_theorem_3_2_weak_for_ensembles;
          Alcotest.test_case "Theorem 3.3 (aggrCRT)" `Quick test_theorem_3_3_aggr_crt;
          Alcotest.test_case "payload bounded by n_cut" `Quick
            test_payload_bounded_by_ncut;
          Alcotest.test_case "quiescence" `Quick test_aggregation_quiescence;
          Alcotest.test_case "convergence bounded by depth" `Quick
            test_convergence_rounds_bounded;
          Alcotest.test_case "same fixpoint under link delays" `Quick
            test_delays_reach_same_fixpoint;
          Alcotest.test_case "global max agreed everywhere" `Quick
            test_global_max_agrees_everywhere;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "same fixpoint under loss/dup/jitter" `Quick
            test_faults_reach_same_fixpoint;
          Alcotest.test_case "crash/restart converges" `Quick
            test_crash_restart_converges;
          Alcotest.test_case "partition heals, queries succeed" `Quick
            test_partition_heals_and_queries_succeed;
          Alcotest.test_case "detector quiet on healthy net" `Quick
            test_detector_clean_run_quiet;
          Alcotest.test_case "detector heals a crash" `Quick test_detector_heals_crash;
          Alcotest.test_case "incremental repair matches full" `Quick
            test_incremental_repair_matches_full;
          Alcotest.test_case "eviction drives index delta" `Quick
            test_eviction_drives_index_delta;
          Alcotest.test_case "routing detours suspects" `Quick
            test_routing_detours_suspects;
          Alcotest.test_case "detector config validation" `Quick
            test_detector_config_validation;
          Alcotest.test_case "epoch monotone across repairs" `Quick
            test_epoch_monotone_across_repairs;
          Alcotest.test_case "query on empty membership" `Quick
            test_dynamic_empty_members_query;
          Alcotest.test_case "hop budget caps forwarding" `Quick test_query_hop_budget;
          Alcotest.test_case "routing skips dead hosts" `Quick
            test_query_skips_dead_hosts;
        ] );
      ( "query",
        [
          Alcotest.test_case "finds promised clusters" `Quick
            test_query_finds_promised_clusters;
          Alcotest.test_case "misses beyond promise" `Quick test_query_miss_beyond_promise;
          Alcotest.test_case "clusters satisfy predicted constraint" `Quick
            test_query_cluster_satisfies_predicted_constraint;
          Alcotest.test_case "hops bounded, path simple" `Quick test_query_hops_bounded;
          Alcotest.test_case "decentral RR <= central RR" `Quick
            test_decentral_rr_bounded_by_central;
          Alcotest.test_case "query constructors" `Quick test_query_constructors;
        ] );
      ( "clique",
        [
          Alcotest.test_case "vs brute force" `Quick test_clique_vs_brute;
          Alcotest.test_case "budget exhaustion" `Quick test_clique_budget_exhaustion;
          Alcotest.test_case "threshold graph" `Quick test_clique_threshold_matches_space;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "join and leave" `Quick test_dynamic_join_leave;
          Alcotest.test_case "maintained index under churn" `Quick
            test_dynamic_maintained_index;
          Alcotest.test_case "Theorem 3.3 after churn" `Quick
            test_dynamic_theorem_3_3_after_churn;
          Alcotest.test_case "random churn invariants" `Quick
            test_dynamic_random_churn_invariants;
          Alcotest.test_case "framework add/remove" `Quick
            test_framework_add_remove_roundtrip;
        ] );
      ( "node_search",
        [
          Alcotest.test_case "brute force optimality" `Quick test_node_search_brute_force;
          Alcotest.test_case "empty targets" `Quick test_node_search_empty_targets;
        ] );
      ( "system",
        [
          Alcotest.test_case "end to end" `Quick test_system_end_to_end;
          Alcotest.test_case "exact pipeline: zero WPR on tree metric" `Quick
            test_exact_pipeline_zero_wpr;
          Alcotest.test_case "two-host system" `Quick test_minimal_system;
          Alcotest.test_case "single class" `Quick test_protocol_single_class;
          Alcotest.test_case "path starts at submission" `Quick
            test_query_path_starts_at_submission;
          Alcotest.test_case "deterministic" `Quick test_system_deterministic;
          Alcotest.test_case "refresh" `Quick test_system_refresh;
          Alcotest.test_case "protocol refresh_topology" `Quick
            test_protocol_refresh_topology;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest (qcheck_tests @ qcheck_protocol_tests) );
    ]
